// Dirsweep reproduces the paper's headline comparison on one workload:
// execution time of the conventional sparse directory versus the stash
// directory as the directory shrinks from 2x coverage down to 1/16.
//
//	go run ./examples/dirsweep [workload]
package main

import (
	"fmt"
	"log"
	"os"

	stashsim "repro"
)

func main() {
	workload := "canneal"
	if len(os.Args) > 1 {
		workload = os.Args[1]
	}

	coverages := []float64{2, 1, 0.5, 0.25, 0.125, 0.0625}

	run := func(kind string, coverage float64) *stashsim.Results {
		cfg := stashsim.QuickConfig(workload)
		cfg.DirKind = kind
		cfg.Coverage = coverage
		res, err := stashsim.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	base := run(stashsim.DirSparse, 1)
	fmt.Printf("workload %s: execution time normalized to sparse @ 1x (%d cycles)\n\n", workload, base.Cycles)
	fmt.Printf("%-10s %-10s %-10s %-16s %-14s\n", "coverage", "sparse", "stash", "sparse-recalls", "stash-recalls")
	for _, cov := range coverages {
		sp := run(stashsim.DirSparse, cov)
		st := run(stashsim.DirStash, cov)
		fmt.Printf("%-10.4g %-10.3f %-10.3f %-16d %-14d\n",
			cov,
			float64(sp.Cycles)/float64(base.Cycles),
			float64(st.Cycles)/float64(base.Cycles),
			sp.InvsRecall, st.InvsRecall)
	}
	fmt.Println("\nThe paper's claim: the stash column stays ~1.0 all the way to 1/8.")
}
