// Protocoltrace walks a 4-core machine through the stash directory's
// signature sequence with every protocol message annotated:
//
//  1. core 0 writes block A (GetM, Modified in its L1),
//  2. core 1 touches another block that conflicts in the (1-entry)
//     directory slice — A's entry is *stashed*: dropped without
//     invalidating core 0's dirty copy; the LLC line gets the hidden bit,
//  3. core 2 reads A — the directory misses, sees the hidden bit, and
//     broadcasts a discovery probe that finds core 0's modified data.
//
// This example drives the fabric layer directly (internal packages) to get
// at the message hook; everyday users stay on the stashsim facade.
package main

import (
	"fmt"
	"log"

	"repro/internal/cache"
	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/noc"
)

func main() {
	fab, err := coherence.NewFabric(coherence.BuildConfig{
		Params: coherence.DefaultParams(4),
		Mesh:   noc.DefaultConfig(2, 2),
		L1:     cache.Config{Name: "l1", Sets: 4, Ways: 2},
		LLC:    cache.Config{Name: "llc", Sets: 16, Ways: 4, IndexShift: 2},
		NewDirectory: func(bank int) (core.Directory, error) {
			// One entry per bank: the second block homed on a bank evicts
			// the first, which is exactly what we want to show.
			return core.NewStash(core.StashConfig{
				AssocConfig: core.AssocConfig{Sets: 1, Ways: 1, IndexShift: 2},
			})
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	fab.OnMessage = func(src, dst noc.NodeID, m *coherence.Msg) {
		fmt.Printf("  [cycle %4d] node %d -> node %d  %v\n", fab.Engine.Now(), src, dst, m)
	}

	access := func(coreID int, block mem.Block, write bool, what string) {
		fmt.Printf("\n%s\n", what)
		done := false
		fab.L1s[coreID].Access(mem.Access{Addr: mem.AddrOf(block), Write: write}, func() { done = true })
		fab.Engine.Run(0)
		if !done {
			log.Fatal("access did not complete")
		}
	}

	const blockA = mem.Block(0) // homed on bank 0
	const blockB = mem.Block(4) // also homed on bank 0 (4 % 4 == 0)

	access(0, blockA, true, "1) core 0 writes block A: GetM, installed Modified, tracked by bank 0")
	access(1, blockB, false, "2) core 1 reads block B: bank 0's single entry is full -> A's entry is STASHED\n   (no invalidation message to core 0; the LLC line for A gets the hidden bit)")
	access(2, blockA, false, "3) core 2 reads block A: directory miss + hidden bit -> DISCOVERY broadcast;\n   core 0 answers with its modified data and downgrades to Shared")

	bank := fab.Banks[0]
	fmt.Printf("\noutcome: stash-evictions=%d discovery-broadcasts=%d discovery-found=%d recall-invalidations=%d\n",
		bank.Directory().Stats().Counter("stash_evictions").Value(),
		bank.Stats().Counter("discovery_broadcasts").Value(),
		bank.Stats().Counter("discovery_found").Value(),
		bank.Stats().Counter("inv_sent.recall").Value())
	if errs := coherence.Audit(fab); len(errs) > 0 {
		log.Fatalf("audit failed: %v", errs)
	}
	fmt.Println("post-run invariant audit: clean")
}
