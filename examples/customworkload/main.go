// Customworkload shows how to define a workload mix of your own through
// the public API and compare directory organizations on it: a database-like
// pattern with a hot shared index (read-mostly), per-connection private
// state, and a migratory lock word.
package main

import (
	"fmt"
	"log"

	stashsim "repro"
)

func main() {
	mix := &stashsim.Mix{
		Name: "oltp-like",

		PrivateFrac:    0.60, // per-connection working state
		SharedReadFrac: 0.25, // B-tree index upper levels: read by everyone
		SharedRWFrac:   0.05, // row buffer updates
		MigratoryFrac:  0.10, // lock words / log tail bouncing core to core
		WriteFrac:      0.30,

		PrivateBlocks:   1024,
		SharedBlocks:    512,
		MigratoryBlocks: 16,
		MigratoryPhase:  10,
		ZipfS:           1.4,
	}

	for _, kind := range []string{stashsim.DirSparse, stashsim.DirCuckoo, stashsim.DirStash} {
		cfg := stashsim.QuickConfig("")
		cfg.Workload = ""
		cfg.CustomMix = mix
		cfg.DirKind = kind
		cfg.Coverage = 0.125

		res, err := stashsim.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s cycles=%-9d l1-miss-rate=%.4f conflict-invalidations=%-7d discovery/1kLLC=%.2f\n",
			kind, res.Cycles, res.L1MissRate, res.InvalidationsConflict(), res.DiscoveryPer1kLLCAccesses())
	}
}
