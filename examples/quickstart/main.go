// Quickstart: run the paper's 16-core model with a stash directory at 1/8
// of the conventional size and print what happened.
package main

import (
	"fmt"
	"log"

	stashsim "repro"
)

func main() {
	cfg := stashsim.QuickConfig("canneal")
	cfg.DirKind = stashsim.DirStash
	cfg.Coverage = 0.125 // directory is 1/8 of aggregate L1 capacity
	cfg.SamplePeriod = 20_000

	res, err := stashsim.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Summary())

	fmt.Printf("\nThe stash directory evicted %d entries silently (stashed) and "+
		"recalled only %d;\na conventional sparse directory would have invalidated "+
		"live cache blocks for every one of them.\n",
		res.StashEvictions, res.RecallEvictions)
}
