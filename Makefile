# Repo verification targets. `make ci` is what the verify step runs: it
# lints everything (go vet plus the stashvet analyzers), runs the full
# suite under the race detector (which exercises the concurrent paths of
# internal/runner and cmd/stashd), and runs the engine benchmarks once as
# a compile-and-smoke check.

GO ?= go

.PHONY: ci build test race vet lint bench bench-engine bench-protocol bench-smoke

ci: lint race bench-smoke bench-protocol

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint is vet plus the repo's own analyzers (cmd/stashvet): pool
# ownership (poolcheck), hot-path zero-alloc (hotpath) and simulation
# determinism (determinism). A finding fails the build.
lint: vet
	$(GO) run ./cmd/stashvet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench records the engine scheduler benchmarks into BENCH_engine.json
# (the repo's perf trajectory), then runs the figure/table suite.
bench: bench-engine bench-protocol
	$(GO) test -bench=. -benchmem

bench-engine:
	$(GO) test -run '^$$' -bench BenchmarkEngine -benchmem ./internal/sim | $(GO) run ./cmd/benchjson -o BENCH_engine.json

# bench-protocol records the coherence hot-path benchmarks into
# BENCH_protocol.json and fails if any steady-state protocol path
# allocates: the pooled-message/pooled-TBE design is a zero-allocs/op
# contract, enforced here in CI. When it fails, start with the static
# picture: `make lint` — the hotpath analyzer usually names the exact
# allocation site that broke the contract.
bench-protocol:
	@$(GO) test -run '^$$' -bench BenchmarkProtocol -benchmem ./internal/coherence | $(GO) run ./cmd/benchjson -o BENCH_protocol.json -max-allocs 0 || \
		{ echo "bench-protocol: allocation contract broken; run 'make lint' — the hotpath analyzer pinpoints allocation sites in //stash:hotpath functions" >&2; exit 1; }

# bench-smoke executes every engine benchmark exactly once so ci catches
# benchmark bit-rot without paying full measurement time.
bench-smoke:
	$(GO) test -run '^$$' -bench BenchmarkEngine -benchtime=1x -benchmem ./internal/sim
