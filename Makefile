# Repo verification targets. `make ci` is what the verify step runs: it
# lints everything (go vet plus the stashvet analyzers), runs the full
# suite under the race detector (which exercises the concurrent paths of
# internal/runner and cmd/stashd), and runs the engine benchmarks once as
# a compile-and-smoke check.

GO ?= go

.PHONY: ci build test race vet lint lint-fast ignore-budget parallel-budget share-budget bench bench-engine bench-protocol bench-psim bench-trace bench-smoke bench-psim-smoke bench-trace-smoke race-psim race-fleet

ci: lint race race-psim race-fleet bench-smoke bench-psim-smoke bench-trace-smoke bench-protocol

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint is vet plus the repo's own analyzers (cmd/stashvet), all eight:
# pool ownership (poolcheck), hot-path zero-alloc (hotpath), simulation
# determinism (determinism), the service-layer concurrency family — lock
# discipline (lockcheck), cancellable blocking (ctxcheck), goroutine-send
# leaks (chanleak), mixed atomic access (atomiccheck) — and parallel-
# engine tile isolation (sharecheck). A finding fails the build, as does
# any suppression or sanction count above its committed budget.
lint: vet ignore-budget parallel-budget share-budget
	$(GO) run ./cmd/stashvet ./...

# lint-fast skips go vet: just the stashvet analyzers, for tight
# edit-check loops. Use `go run ./cmd/stashvet -run=<name> ./...` to
# narrow further to one analyzer. Fact recomputation is not skipped:
# facts live in memory for one driver run (no on-disk fact cache), so
# sharecheck/atomiccheck re-derive dependency summaries every time.
# Measured cost of the whole facts layer is ~0.1s on this repo (see
# DESIGN.md "Static analysis"), which is noise next to go vet — hence
# lint-fast drops vet, not facts.
lint-fast:
	$(GO) run ./cmd/stashvet ./...

# ignore-budget fails when the number of //stash:ignore escapes for the
# concurrency analyzers grows beyond the committed baseline
# (.stashvet-ignore-budget). Raising the budget is a reviewed change;
# silently accreting suppressions is not.
ignore-budget:
	@count=$$(grep -rnE '^[^/"]*//stash:ignore (lockcheck|ctxcheck|chanleak|sharecheck|atomiccheck)' --include='*.go' internal cmd 2>/dev/null | grep -v testdata | wc -l); \
	budget=$$(cat .stashvet-ignore-budget); \
	if [ "$$count" -gt "$$budget" ]; then \
		echo "ignore-budget: $$count //stash:ignore escapes for concurrency analyzers exceed the budget of $$budget; fix the findings or review a budget raise in .stashvet-ignore-budget" >&2; \
		grep -rnE '^[^/"]*//stash:ignore (lockcheck|ctxcheck|chanleak|sharecheck|atomiccheck)' --include='*.go' internal cmd | grep -v testdata >&2; \
		exit 1; \
	fi

# parallel-budget bounds the //stash:parallel goroutine sanctions the same
# way ignore-budget bounds analyzer suppressions: the parallel engine is
# allowed its worker spawn, and growth beyond the committed baseline
# (.stashvet-parallel-budget) is a reviewed change. Test files are out of
# scope (the determinism analyzer's own hygiene tests embed directives in
# string fixtures), as are testdata fixtures.
parallel-budget:
	@count=$$(grep -rnE '^[^/"]*//stash:parallel ' --include='*.go' --exclude='*_test.go' internal cmd 2>/dev/null | grep -v testdata | wc -l); \
	budget=$$(cat .stashvet-parallel-budget); \
	if [ "$$count" -gt "$$budget" ]; then \
		echo "parallel-budget: $$count //stash:parallel sanctions exceed the budget of $$budget; every new worker spawn in simulation code is a reviewed change (.stashvet-parallel-budget)" >&2; \
		grep -rnE '^[^/"]*//stash:parallel ' --include='*.go' --exclude='*_test.go' internal cmd | grep -v testdata >&2; \
		exit 1; \
	fi

# share-budget bounds sharecheck's mediation vocabulary: every
# //stash:fold sanction and //stash:shared classification carries a
# reason and counts against the committed baseline
# (.stashvet-share-budget). Tile-owned state is the unbudgeted default;
# declaring state shared or a function a mediation point widens the
# trust boundary, so growth is a reviewed change.
share-budget:
	@count=$$(grep -rnE '^[^/"]*//stash:(fold|shared) ' --include='*.go' --exclude='*_test.go' internal cmd 2>/dev/null | grep -v testdata | wc -l); \
	budget=$$(cat .stashvet-share-budget); \
	if [ "$$count" -gt "$$budget" ]; then \
		echo "share-budget: $$count //stash:fold + //stash:shared sanctions exceed the budget of $$budget; every new shared alias or mediation point in simulation code is a reviewed change (.stashvet-share-budget)" >&2; \
		grep -rnE '^[^/"]*//stash:(fold|shared) ' --include='*.go' --exclude='*_test.go' internal cmd | grep -v testdata >&2; \
		exit 1; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# race-psim runs the parallel-engine packages under the race detector on
# their own so a full-suite race run is never the only thing standing
# between a barrier bug and main.
race-psim:
	$(GO) test -race -count=1 ./internal/psim ./internal/system

# race-fleet runs the service tier — coordinator, worker HTTP layer, and
# runner — under the race detector with caching disabled, so the fleet's
# cross-process coordination paths (dedup, failover, shedding, streaming)
# are re-raced even when the full-suite run hits its test cache.
race-fleet:
	$(GO) test -race -count=1 ./internal/fleet ./internal/stashd ./internal/runner

# bench records the engine scheduler benchmarks into BENCH_engine.json
# (the repo's perf trajectory), then runs the figure/table suite.
bench: bench-engine bench-protocol
	$(GO) test -bench=. -benchmem

bench-engine:
	$(GO) test -run '^$$' -bench BenchmarkEngine -benchmem ./internal/sim | $(GO) run ./cmd/benchjson -o BENCH_engine.json

# bench-protocol records the coherence hot-path benchmarks into
# BENCH_protocol.json and fails if any steady-state protocol path
# allocates: the pooled-message/pooled-TBE design is a zero-allocs/op
# contract, enforced here in CI. When it fails, start with the static
# picture: `make lint` — the hotpath analyzer usually names the exact
# allocation site that broke the contract.
bench-protocol:
	@$(GO) test -run '^$$' -bench BenchmarkProtocol -benchmem ./internal/coherence | $(GO) run ./cmd/benchjson -o BENCH_protocol.json -max-allocs 0 || \
		{ echo "bench-protocol: allocation contract broken; run 'make lint' — the hotpath analyzer pinpoints allocation sites in //stash:hotpath functions" >&2; exit 1; }

# bench-psim records the serial-vs-parallel engine sweep (16-core model,
# shards 0/2/4/8) into BENCH_psim.json. The events/sec ratio between the
# shards=N and serial entries is the parallel speedup; it needs host
# parallelism (GOMAXPROCS > 1) to exceed 1, and the benchmark names embed
# the host core count so recorded sweeps compare like with like.
bench-psim:
	$(GO) test -run '^$$' -bench BenchmarkPsim -benchmem ./internal/system | $(GO) run ./cmd/benchjson -o BENCH_psim.json

# bench-trace records the trace-pipeline benchmarks into BENCH_trace.json:
# the text-vs-binary replay comparison (internal/trace, 1M-access streams)
# and the 16-to-256-core binary-replay scaling sweep (internal/system).
# The zero-alloc gate applies only to the ReplayBinary entries — the
# binary hot path's contract — since the text baseline and the
# full-system scaling runs allocate by design.
bench-trace:
	@$(GO) test -run '^$$' -bench BenchmarkTrace -benchmem ./internal/trace ./internal/system | $(GO) run ./cmd/benchjson -o BENCH_trace.json -max-allocs 0 -max-allocs-filter 'ReplayBinary' || \
		{ echo "bench-trace: binary replay hot path allocates; run 'make lint' — the hotpath analyzer pinpoints allocation sites in //stash:hotpath functions" >&2; exit 1; }

# bench-smoke executes every engine benchmark exactly once so ci catches
# benchmark bit-rot without paying full measurement time.
bench-smoke:
	$(GO) test -run '^$$' -bench BenchmarkEngine -benchtime=1x -benchmem ./internal/sim

bench-psim-smoke:
	$(GO) test -run '^$$' -bench BenchmarkPsim -benchtime=1x -benchmem ./internal/system

bench-trace-smoke:
	@$(GO) test -run '^$$' -bench BenchmarkTrace -benchtime=1x -benchmem ./internal/trace ./internal/system | $(GO) run ./cmd/benchjson -max-allocs 0 -max-allocs-filter 'ReplayBinary' > /dev/null || \
		{ echo "bench-trace-smoke: binary replay hot path allocates; run 'make lint'" >&2; exit 1; }
