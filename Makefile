# Repo verification targets. `make ci` is what the verify step runs: it
# vets everything and runs the full suite under the race detector, which
# exercises the concurrent paths of internal/runner and cmd/stashd.

GO ?= go

.PHONY: ci build test race vet bench

ci: vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem
