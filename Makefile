# Repo verification targets. `make ci` is what the verify step runs: it
# vets everything, runs the full suite under the race detector (which
# exercises the concurrent paths of internal/runner and cmd/stashd), and
# runs the engine benchmarks once as a compile-and-smoke check.

GO ?= go

.PHONY: ci build test race vet bench bench-engine bench-protocol bench-smoke

ci: vet race bench-smoke bench-protocol

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench records the engine scheduler benchmarks into BENCH_engine.json
# (the repo's perf trajectory), then runs the figure/table suite.
bench: bench-engine bench-protocol
	$(GO) test -bench=. -benchmem

bench-engine:
	$(GO) test -run '^$$' -bench BenchmarkEngine -benchmem ./internal/sim | $(GO) run ./cmd/benchjson -o BENCH_engine.json

# bench-protocol records the coherence hot-path benchmarks into
# BENCH_protocol.json and fails if any steady-state protocol path
# allocates: the pooled-message/pooled-TBE design is a zero-allocs/op
# contract, enforced here in CI.
bench-protocol:
	$(GO) test -run '^$$' -bench BenchmarkProtocol -benchmem ./internal/coherence | $(GO) run ./cmd/benchjson -o BENCH_protocol.json -max-allocs 0

# bench-smoke executes every engine benchmark exactly once so ci catches
# benchmark bit-rot without paying full measurement time.
bench-smoke:
	$(GO) test -run '^$$' -bench BenchmarkEngine -benchtime=1x -benchmem ./internal/sim
