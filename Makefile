# Repo verification targets. `make ci` is what the verify step runs: it
# lints everything (go vet plus the stashvet analyzers), runs the full
# suite under the race detector (which exercises the concurrent paths of
# internal/runner and cmd/stashd), and runs the engine benchmarks once as
# a compile-and-smoke check.

GO ?= go

.PHONY: ci build test race vet lint lint-fast mcheck mcheck-smoke fuzz-smoke proto-table proto-table-check bench bench-engine bench-protocol bench-psim bench-trace bench-smoke bench-psim-smoke bench-trace-smoke race-psim race-fleet

ci: lint race race-psim race-fleet mcheck-smoke fuzz-smoke proto-table-check bench-smoke bench-psim-smoke bench-trace-smoke bench-protocol

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint is vet plus the repo's own analyzers (cmd/stashvet), all eight:
# pool ownership (poolcheck), hot-path zero-alloc (hotpath), simulation
# determinism (determinism), the service-layer concurrency family — lock
# discipline (lockcheck), cancellable blocking (ctxcheck), goroutine-send
# leaks (chanleak), mixed atomic access (atomiccheck) — and parallel-
# engine tile isolation (sharecheck). A finding fails the build (exit 1),
# as does any //stash: directive count above its committed baseline in
# .stashvet-budget (exit 3, so CI can tell "fix the code" from "review
# the budget raise").
lint: vet
	$(GO) run ./cmd/stashvet -budget .stashvet-budget ./...

# lint-fast skips go vet: just the stashvet analyzers, for tight
# edit-check loops. Use `go run ./cmd/stashvet -run=<name> ./...` to
# narrow further to one analyzer. Fact recomputation is not skipped:
# facts live in memory for one driver run (no on-disk fact cache), so
# sharecheck/atomiccheck re-derive dependency summaries every time.
# Measured cost of the whole facts layer is ~0.1s on this repo (see
# DESIGN.md "Static analysis"), which is noise next to go vet — hence
# lint-fast drops vet, not facts.
lint-fast:
	$(GO) run ./cmd/stashvet ./...

# The three per-class budget gates (ignore-budget, parallel-budget,
# share-budget) that used to live here as shell arithmetic moved into
# stashvet itself: `-budget .stashvet-budget` (see internal/analysis/
# budget.go for the class definitions and semantics).

# mcheck exhaustively model-checks the protocol on the 2-core/1-address
# configuration for every directory organization, then runs the bounded
# 2-core/2-address conflict exploration for the two organizations whose
# transition tables PROTOCOL.md carries. See internal/mcheck.
mcheck:
	$(GO) run ./cmd/stashmc -cores 2 -addrs 1 -kind all
	$(GO) run ./cmd/stashmc -cores 2 -addrs 2 -depth 4 -kind sparse
	$(GO) run ./cmd/stashmc -cores 2 -addrs 2 -depth 4 -kind stash

# mcheck-smoke is the CI slice of mcheck: the exhaustive 2x1 sweep over
# all organizations (~1s per kind). The deeper conflict configurations
# are exercised by the mcheck package tests and proto-table-check.
mcheck-smoke:
	$(GO) run ./cmd/stashmc -cores 2 -addrs 1 -kind all

# fuzz-smoke runs the binary-trace decoder fuzzer for a few seconds so CI
# keeps the fuzz target compiling and covers the seeded corruption corpus
# plus whatever mutations fit the time box.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzBinarySource -fuzztime 10s ./internal/trace

# proto-table regenerates the model-checked transition tables embedded in
# PROTOCOL.md; proto-table-check (in ci) fails when they have drifted
# from what the protocol actually does.
proto-table:
	$(GO) run ./cmd/stashmc -table PROTOCOL.md

proto-table-check:
	$(GO) run ./cmd/stashmc -table PROTOCOL.md -check

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# race-psim runs the parallel-engine packages under the race detector on
# their own so a full-suite race run is never the only thing standing
# between a barrier bug and main.
race-psim:
	$(GO) test -race -count=1 ./internal/psim ./internal/system

# race-fleet runs the service tier — coordinator, worker HTTP layer, and
# runner — under the race detector with caching disabled, so the fleet's
# cross-process coordination paths (dedup, failover, shedding, streaming)
# are re-raced even when the full-suite run hits its test cache.
race-fleet:
	$(GO) test -race -count=1 ./internal/fleet ./internal/stashd ./internal/runner

# bench records the engine scheduler benchmarks into BENCH_engine.json
# (the repo's perf trajectory), then runs the figure/table suite.
bench: bench-engine bench-protocol
	$(GO) test -bench=. -benchmem

bench-engine:
	$(GO) test -run '^$$' -bench BenchmarkEngine -benchmem ./internal/sim | $(GO) run ./cmd/benchjson -o BENCH_engine.json

# bench-protocol records the coherence hot-path benchmarks into
# BENCH_protocol.json and fails if any steady-state protocol path
# allocates: the pooled-message/pooled-TBE design is a zero-allocs/op
# contract, enforced here in CI. When it fails, start with the static
# picture: `make lint` — the hotpath analyzer usually names the exact
# allocation site that broke the contract.
bench-protocol:
	@$(GO) test -run '^$$' -bench BenchmarkProtocol -benchmem ./internal/coherence | $(GO) run ./cmd/benchjson -o BENCH_protocol.json -max-allocs 0 || \
		{ echo "bench-protocol: allocation contract broken; run 'make lint' — the hotpath analyzer pinpoints allocation sites in //stash:hotpath functions" >&2; exit 1; }

# bench-psim records the serial-vs-parallel engine sweep (16-core model,
# shards 0/2/4/8) into BENCH_psim.json. The events/sec ratio between the
# shards=N and serial entries is the parallel speedup; it needs host
# parallelism (GOMAXPROCS > 1) to exceed 1, and the benchmark names embed
# the host core count so recorded sweeps compare like with like.
bench-psim:
	$(GO) test -run '^$$' -bench BenchmarkPsim -benchmem ./internal/system | $(GO) run ./cmd/benchjson -o BENCH_psim.json

# bench-trace records the trace-pipeline benchmarks into BENCH_trace.json:
# the text-vs-binary replay comparison (internal/trace, 1M-access streams)
# and the 16-to-256-core binary-replay scaling sweep (internal/system).
# The zero-alloc gate applies only to the ReplayBinary entries — the
# binary hot path's contract — since the text baseline and the
# full-system scaling runs allocate by design.
bench-trace:
	@$(GO) test -run '^$$' -bench BenchmarkTrace -benchmem ./internal/trace ./internal/system | $(GO) run ./cmd/benchjson -o BENCH_trace.json -max-allocs 0 -max-allocs-filter 'ReplayBinary' || \
		{ echo "bench-trace: binary replay hot path allocates; run 'make lint' — the hotpath analyzer pinpoints allocation sites in //stash:hotpath functions" >&2; exit 1; }

# bench-smoke executes every engine benchmark exactly once so ci catches
# benchmark bit-rot without paying full measurement time.
bench-smoke:
	$(GO) test -run '^$$' -bench BenchmarkEngine -benchtime=1x -benchmem ./internal/sim

bench-psim-smoke:
	$(GO) test -run '^$$' -bench BenchmarkPsim -benchtime=1x -benchmem ./internal/system

bench-trace-smoke:
	@$(GO) test -run '^$$' -bench BenchmarkTrace -benchtime=1x -benchmem ./internal/trace ./internal/system | $(GO) run ./cmd/benchjson -max-allocs 0 -max-allocs-filter 'ReplayBinary' > /dev/null || \
		{ echo "bench-trace-smoke: binary replay hot path allocates; run 'make lint'" >&2; exit 1; }
