package stashsim_test

import (
	"strings"
	"testing"

	stashsim "repro"
)

// tinyConfig is a fast facade-level configuration.
func tinyConfig(workload, kind string, coverage float64) stashsim.Config {
	cfg := stashsim.QuickConfig(workload)
	cfg.DirKind = kind
	cfg.Coverage = coverage
	cfg.Cores = 4
	cfg.AccessesPerCore = 2000
	cfg.WorkloadScale = 0.1
	return cfg
}

func TestFacadeRun(t *testing.T) {
	res, err := stashsim.Run(tinyConfig("canneal", stashsim.DirStash, 0.25))
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles == 0 {
		t.Fatal("no cycles simulated")
	}
	if !strings.Contains(res.Summary(), "stash") {
		t.Fatalf("summary missing directory kind: %s", res.Summary())
	}
}

func TestFacadeWorkloads(t *testing.T) {
	names := stashsim.Workloads()
	if len(names) < 10 {
		t.Fatalf("expected >= 10 workloads, got %d", len(names))
	}
	for _, n := range names {
		mix, err := stashsim.Workload(n)
		if err != nil {
			t.Errorf("Workload(%q): %v", n, err)
		}
		if err := mix.Validate(); err != nil {
			t.Errorf("workload %q invalid: %v", n, err)
		}
	}
	if _, err := stashsim.Workload("nope"); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestFacadeDirKinds(t *testing.T) {
	kinds := stashsim.DirKinds()
	want := map[string]bool{
		stashsim.DirFullMap: true, stashsim.DirSparse: true,
		stashsim.DirStash: true, stashsim.DirStashSS: true, stashsim.DirCuckoo: true,
	}
	if len(kinds) != len(want) {
		t.Fatalf("kinds = %v", kinds)
	}
	for _, k := range kinds {
		if !want[k] {
			t.Errorf("unexpected kind %q", k)
		}
	}
}

func TestFacadeCustomMix(t *testing.T) {
	cfg := tinyConfig("", stashsim.DirStash, 0.5)
	cfg.Workload = ""
	cfg.CustomMix = &stashsim.Mix{
		Name:        "mine",
		PrivateFrac: 1.0, WriteFrac: 0.2, PrivateBlocks: 128,
	}
	if _, err := stashsim.Run(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeRejectsBadConfig(t *testing.T) {
	cfg := tinyConfig("canneal", "no-such-dir", 0.25)
	if _, err := stashsim.Run(cfg); err == nil {
		t.Fatal("bad directory kind accepted")
	}
}

// TestHeadlineClaim verifies, at facade level and test scale, the
// abstract's core claim: stash at 1/8 the directory size does not
// compromise performance relative to the conventional sparse baseline.
func TestHeadlineClaim(t *testing.T) {
	base, err := stashsim.Run(tinyConfig("canneal", stashsim.DirSparse, 1))
	if err != nil {
		t.Fatal(err)
	}
	stash, err := stashsim.Run(tinyConfig("canneal", stashsim.DirStash, 0.125))
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(stash.Cycles) / float64(base.Cycles)
	if ratio > 1.10 {
		t.Errorf("stash@1/8 runs at %.3fx the sparse@1x time, want <= 1.10", ratio)
	}
}
