package benchfmt

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro/internal/sim
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkEngineAfter1            	100000000	        23.07 ns/op	       0 B/op	       0 allocs/op
BenchmarkEngineThroughput        	      43	  59853959 ns/op	   2917184 events/sec	15883548 B/op	  387899 allocs/op
--- some stray test log line
PASS
ok  	repro/internal/sim	22.562s
`

func TestParse(t *testing.T) {
	rep, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if rep.GoOS != "linux" || rep.GoArch != "amd64" || rep.Pkg != "repro/internal/sim" {
		t.Fatalf("header = %+v", rep)
	}
	if !strings.Contains(rep.CPU, "Xeon") {
		t.Fatalf("cpu = %q", rep.CPU)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(rep.Benchmarks))
	}
	a := rep.Benchmarks[0]
	if a.Name != "BenchmarkEngineAfter1" || a.Iterations != 100000000 {
		t.Fatalf("bench[0] = %+v", a)
	}
	if a.Metrics["ns/op"] != 23.07 || a.Metrics["allocs/op"] != 0 {
		t.Fatalf("bench[0] metrics = %v", a.Metrics)
	}
	e2e := rep.Benchmarks[1]
	if e2e.Metrics["events/sec"] != 2917184 {
		t.Fatalf("custom metric lost: %v", e2e.Metrics)
	}
	if e2e.Metrics["B/op"] != 15883548 {
		t.Fatalf("alloc metric lost: %v", e2e.Metrics)
	}
}

func TestParseRejectsEmpty(t *testing.T) {
	if _, err := Parse(strings.NewReader("PASS\nok x 1s\n")); err == nil {
		t.Fatal("empty input did not error")
	}
}
