// Package benchfmt parses the text output of `go test -bench` into a
// structured report, so the Makefile can persist benchmark runs as JSON
// (BENCH_engine.json) and the repo records its performance trajectory
// across PRs.
package benchfmt

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	// Name is the benchmark name with the leading "Benchmark" and any
	// -cpu suffix kept verbatim (e.g. "BenchmarkEngineAfter1-8").
	Name string `json:"name"`
	// Iterations is the b.N the reported averages were taken over.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit -> value, e.g. "ns/op": 23.07, "allocs/op": 0,
	// plus any custom b.ReportMetric units such as "events/sec".
	Metrics map[string]float64 `json:"metrics"`
}

// Report is one benchmark run: the environment header lines plus every
// benchmark result in input order.
type Report struct {
	GeneratedAt time.Time   `json:"generatedAt"`
	GoOS        string      `json:"goos,omitempty"`
	GoArch      string      `json:"goarch,omitempty"`
	Pkg         string      `json:"pkg,omitempty"`
	CPU         string      `json:"cpu,omitempty"`
	Benchmarks  []Benchmark `json:"benchmarks"`
}

// Parse reads `go test -bench` text output. Unrecognized lines (PASS, ok,
// test logs) are skipped; a stream with no benchmark lines is an error.
func Parse(r io.Reader) (*Report, error) {
	rep := &Report{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.GoOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.GoArch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			rep.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := parseBenchLine(line)
			if ok {
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(rep.Benchmarks) == 0 {
		return nil, fmt.Errorf("benchfmt: no benchmark result lines in input")
	}
	return rep, nil
}

// parseBenchLine parses "BenchmarkName  N  v1 unit1  v2 unit2 ...".
func parseBenchLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	// Need at least name, iterations and one value/unit pair.
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Iterations: iters, Metrics: make(map[string]float64)}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, true
}
