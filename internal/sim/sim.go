// Package sim implements the deterministic discrete-event simulation engine
// that drives the CMP model. Components schedule callbacks at future cycles;
// the engine executes them in (cycle, insertion-order) order, so two runs of
// the same configuration produce bit-identical results.
//
// The engine is intentionally single-threaded: coherence-protocol debugging
// and reproducible experiments both depend on a total, stable event order.
package sim

import (
	"container/heap"
	"fmt"
)

// Cycle is a point in simulated time, measured in core clock cycles.
type Cycle uint64

// Event is a callback scheduled to run at a particular cycle.
type Event func()

type queuedEvent struct {
	at   Cycle
	seq  uint64 // tie-break: FIFO among events at the same cycle
	tie  uint64 // actual tie-break key (== seq, or a keyed hash when fuzzing)
	run  Event
	name string // optional, for tracing
}

type eventQueue []*queuedEvent

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].tie < q[j].tie
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*queuedEvent)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}

// Engine owns the event queue and the simulated clock.
type Engine struct {
	now     Cycle
	seq     uint64
	queue   eventQueue
	ran     uint64
	Trace   func(at Cycle, name string) // optional event trace hook
	halted  bool
	shuffle uint64
}

// NewEngine returns an engine at cycle 0 with an empty queue.
func NewEngine() *Engine {
	return &Engine{}
}

// SetShuffleSeed switches same-cycle tie-breaking from FIFO to a
// deterministic pseudo-random permutation keyed by seed (0 restores FIFO).
// Component models must not depend on the accidental ordering of unrelated
// events within one cycle; the protocol fuzz tests sweep seeds through this
// knob to prove it. It must be set before any events are scheduled.
func (e *Engine) SetShuffleSeed(seed uint64) {
	if len(e.queue) != 0 {
		panic("sim: SetShuffleSeed with events already queued")
	}
	e.shuffle = seed
}

// mix64 is the splitmix64 finalizer, used to derive shuffle tie-break keys.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Now returns the current simulated cycle.
func (e *Engine) Now() Cycle { return e.now }

// EventsRun returns the number of events executed so far.
func (e *Engine) EventsRun() uint64 { return e.ran }

// Pending returns the number of scheduled, not-yet-run events.
func (e *Engine) Pending() int { return len(e.queue) }

// At schedules fn to run at the absolute cycle at, which must not be in the
// past. Events at the same cycle run in scheduling order.
func (e *Engine) At(at Cycle, name string, fn Event) {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event %q at cycle %d, before now (%d)", name, at, e.now))
	}
	e.seq++
	tie := e.seq
	if e.shuffle != 0 {
		tie = mix64(e.seq ^ e.shuffle)
	}
	heap.Push(&e.queue, &queuedEvent{at: at, seq: e.seq, tie: tie, run: fn, name: name})
}

// After schedules fn to run delay cycles from now.
func (e *Engine) After(delay Cycle, name string, fn Event) {
	e.At(e.now+delay, name, fn)
}

// Halt stops Run after the current event completes, leaving any remaining
// events queued. Used by watchdogs and by tests that inject failures.
func (e *Engine) Halt() { e.halted = true }

// Run executes events until the queue drains, limit events have run
// (limit 0 means no limit), or Halt is called. It returns the number of
// events executed by this call.
func (e *Engine) Run(limit uint64) uint64 {
	var n uint64
	e.halted = false
	for len(e.queue) > 0 && !e.halted {
		if limit != 0 && n >= limit {
			break
		}
		ev := heap.Pop(&e.queue).(*queuedEvent)
		if ev.at < e.now {
			panic("sim: time went backwards")
		}
		e.now = ev.at
		if e.Trace != nil {
			e.Trace(e.now, ev.name)
		}
		ev.run()
		e.ran++
		n++
	}
	return n
}

// RunUntil executes events with timestamps up to and including cycle end.
// Events scheduled beyond end remain queued; the clock is left at the
// timestamp of the last event executed (not advanced to end).
func (e *Engine) RunUntil(end Cycle) uint64 {
	var n uint64
	e.halted = false
	for len(e.queue) > 0 && !e.halted && e.queue[0].at <= end {
		ev := heap.Pop(&e.queue).(*queuedEvent)
		e.now = ev.at
		if e.Trace != nil {
			e.Trace(e.now, ev.name)
		}
		ev.run()
		e.ran++
		n++
	}
	return n
}
