// Package sim implements the deterministic discrete-event simulation engine
// that drives the CMP model. Components schedule callbacks at future cycles;
// the engine executes them in (cycle, insertion-order) order, so two runs of
// the same configuration produce bit-identical results.
//
// The engine is intentionally single-threaded: coherence-protocol debugging
// and reproducible experiments both depend on a total, stable event order.
//
// The scheduler is hand-specialized for the protocol's traffic shape and is
// allocation-free on the steady-state path:
//
//   - Events due within the next wheelSize (256) cycles — every protocol
//     latency and virtually every NoC arrival — go to a timing wheel of
//     per-cycle FIFO ring buffers and never touch the heap. A 4-word
//     occupancy bitmap finds the next non-empty bucket with a couple of
//     trailing-zero counts.
//   - Everything else goes to a flat 4-ary min-heap of 24-byte inline keys
//     (cycle, tie, slot index); the callback payloads live out-of-line in a
//     free-listed arena so sift operations move small values and nothing is
//     boxed through an interface.
//
// Both structures recycle their storage, so after warm-up the engine
// performs zero allocations per event. The total execution order is
// bit-identical to the original container/heap implementation (the
// property tests in legacy_test.go replay randomized schedules through
// both): with FIFO tie-breaking, an event lands in the wheel only once
// `at - now < wheelSize`, so every wheel event due at cycle T was
// scheduled strictly after every heap event due at T (which needed
// `at - now >= wheelSize`, i.e. an earlier now and hence a smaller seq);
// draining the heap's same-cycle entries before the wheel bucket therefore
// preserves (cycle, seq) order exactly. When a shuffle seed permutes
// same-cycle ties, all events take the heap path, reproducing the original
// order for every seed.
package sim

import (
	"fmt"
	"math/bits"
)

// Cycle is a point in simulated time, measured in core clock cycles.
type Cycle uint64

// Event is a callback scheduled to run at a particular cycle.
type Event func()

// eventSlot is an event's payload, stored out-of-line from the heap keys
// (and inline in the rings, which are never sifted). An event is either a
// plain closure (run) or an arg-passing pair (argFn, arg) scheduled through
// AtArg/AfterArg; the latter lets callers reuse one long-lived func value
// and avoid allocating a fresh closure per event.
type eventSlot struct {
	run   Event
	argFn func(any)
	arg   any
	name  string // optional, for tracing
}

// fire executes whichever form of callback the slot carries.
//
//stash:hotpath
func (s *eventSlot) fire() {
	if s.argFn != nil {
		s.argFn(s.arg)
		return
	}
	s.run()
}

// heapEntry is one 4-ary-heap key: the ordering fields plus the index of
// the payload in the arena.
type heapEntry struct {
	at   Cycle
	tie  uint64 // FIFO seq, or a keyed hash when shuffle-fuzzing
	slot int32
}

func (a heapEntry) less(b heapEntry) bool {
	return a.at < b.at || (a.at == b.at && a.tie < b.tie)
}

// ring is a growable power-of-two circular FIFO of events all due at one
// cycle. Storage is reused across cycles, so steady-state pushes do not
// allocate.
type ring struct {
	buf  []eventSlot
	head int
	n    int
}

//stash:hotpath
func (r *ring) push(s eventSlot) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = s
	r.n++
}

//stash:hotpath
func (r *ring) pop() eventSlot {
	// The popped slot is left stale rather than cleared: clearing a
	// pointer-bearing struct costs a write barrier per event, and the slot
	// is overwritten on reuse anyway, so at most one buffer's worth of dead
	// callbacks is retained.
	s := r.buf[r.head]
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return s
}

func (r *ring) grow() {
	newCap := 2 * len(r.buf)
	if newCap == 0 {
		newCap = 16
	}
	buf := make([]eventSlot, newCap)
	for i := 0; i < r.n; i++ {
		buf[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
	}
	r.buf = buf
	r.head = 0
}

// Timing-wheel geometry: one FIFO bucket per cycle for the next wheelSize
// cycles. Must be a power of two, and large enough to cover the protocol's
// fixed latencies (memory reads at 160 cycles are the longest) so that the
// heap only sees the rare congestion-delayed NoC arrival.
const (
	wheelSize  = 256
	wheelMask  = wheelSize - 1
	wheelWords = wheelSize / 64
)

// Engine owns the event queue and the simulated clock.
type Engine struct {
	now     Cycle
	seq     uint64
	ran     uint64
	Trace   func(at Cycle, name string) // optional event trace hook
	halted  bool
	shuffle uint64

	// 4-ary min-heap of far-future events; payloads live in arena, with
	// recycled slots threaded through free.
	heap  []heapEntry
	arena []eventSlot
	free  []int32

	// Timing wheel of near-future events (FIFO ties only): bucket
	// wheel[t & wheelMask] holds the events due at cycle t for
	// t - now < wheelSize. wheelOcc is the per-bucket occupancy bitmap.
	wheel      [wheelSize]ring
	wheelOcc   [wheelWords]uint64
	wheelCount int
}

// NewEngine returns an engine at cycle 0 with an empty queue.
func NewEngine() *Engine {
	return &Engine{}
}

// SetShuffleSeed switches same-cycle tie-breaking from FIFO to a
// deterministic pseudo-random permutation keyed by seed (0 restores FIFO).
// Component models must not depend on the accidental ordering of unrelated
// events within one cycle; the protocol fuzz tests sweep seeds through this
// knob to prove it. It must be set before any events are scheduled.
func (e *Engine) SetShuffleSeed(seed uint64) {
	if e.Pending() != 0 {
		panic("sim: SetShuffleSeed with events already queued")
	}
	e.shuffle = seed
}

// mix64 is the splitmix64 finalizer, used to derive shuffle tie-break keys.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Now returns the current simulated cycle.
func (e *Engine) Now() Cycle { return e.now }

// EventsRun returns the number of events executed so far.
func (e *Engine) EventsRun() uint64 { return e.ran }

// Pending returns the number of scheduled, not-yet-run events.
func (e *Engine) Pending() int { return len(e.heap) + e.wheelCount }

// At schedules fn to run at the absolute cycle at, which must not be in the
// past. Events at the same cycle run in scheduling order.
//
//stash:hotpath
func (e *Engine) At(at Cycle, name string, fn Event) {
	e.schedule(at, eventSlot{run: fn, name: name})
}

// AtArg schedules fn(arg) at the absolute cycle at. It shares At's sequence
// counter and routing, so interleaved At/AtArg calls preserve scheduling
// order exactly; the point of the arg form is that a long-lived fn plus a
// pointer-shaped arg schedules without allocating a closure. Ownership of a
// pooled arg moves to the event queue until fn runs.
//
//stash:transfer
//stash:hotpath
func (e *Engine) AtArg(at Cycle, name string, fn func(any), arg any) {
	e.schedule(at, eventSlot{argFn: fn, arg: arg, name: name})
}

// After schedules fn to run delay cycles from now.
//
//stash:hotpath
func (e *Engine) After(delay Cycle, name string, fn Event) {
	e.schedule(e.now+delay, eventSlot{run: fn, name: name})
}

// AfterArg schedules fn(arg) delay cycles from now (see AtArg). Ownership
// of a pooled arg moves to the event queue until fn runs.
//
//stash:transfer
//stash:hotpath
func (e *Engine) AfterArg(delay Cycle, name string, fn func(any), arg any) {
	e.schedule(e.now+delay, eventSlot{argFn: fn, arg: arg, name: name})
}

//stash:hotpath
func (e *Engine) schedule(at Cycle, s eventSlot) {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event %q at cycle %d, before now (%d)", s.name, at, e.now))
	}
	e.seq++
	if e.shuffle != 0 {
		// Shuffled ties permute whole cycles, so the FIFO wheel cannot be
		// used; every event takes the heap path with a hashed tie key.
		e.heapPush(at, mix64(e.seq^e.shuffle), s)
		return
	}
	if at-e.now < wheelSize {
		b := int(at) & wheelMask
		e.wheel[b].push(s)
		e.wheelOcc[b>>6] |= 1 << (b & 63)
		e.wheelCount++
		return
	}
	e.heapPush(at, e.seq, s)
}

// Halt stops Run after the current event completes, leaving any remaining
// events queued. Used by watchdogs and by tests that inject failures.
func (e *Engine) Halt() { e.halted = true }

//stash:hotpath
func (e *Engine) heapPush(at Cycle, tie uint64, s eventSlot) {
	var idx int32
	if n := len(e.free); n > 0 {
		idx = e.free[n-1]
		e.free = e.free[:n-1]
		e.arena[idx] = s
	} else {
		idx = int32(len(e.arena))
		e.arena = append(e.arena, s)
	}
	// Sift up.
	i := len(e.heap)
	e.heap = append(e.heap, heapEntry{})
	ent := heapEntry{at: at, tie: tie, slot: idx}
	for i > 0 {
		p := (i - 1) >> 2
		if !ent.less(e.heap[p]) {
			break
		}
		e.heap[i] = e.heap[p]
		i = p
	}
	e.heap[i] = ent
}

// heapPop removes the heap minimum and returns its payload, recycling the
// arena slot.
//
//stash:hotpath
func (e *Engine) heapPop() eventSlot {
	top := e.heap[0]
	n := len(e.heap) - 1
	last := e.heap[n]
	e.heap = e.heap[:n]
	if n > 0 {
		// Sift last down from the root.
		i := 0
		for {
			c := i<<2 + 1
			if c >= n {
				break
			}
			m := c
			end := c + 4
			if end > n {
				end = n
			}
			for j := c + 1; j < end; j++ {
				if e.heap[j].less(e.heap[m]) {
					m = j
				}
			}
			if !e.heap[m].less(last) {
				break
			}
			e.heap[i] = e.heap[m]
			i = m
		}
		e.heap[i] = last
	}
	s := e.arena[top.slot]
	e.arena[top.slot] = eventSlot{} // release the closure for GC
	e.free = append(e.free, top.slot)
	return s
}

// nextWheel returns the cycle of the earliest wheel event; it must only be
// called with wheelCount > 0. The circular bitmap scan starts at now's
// bucket and costs at most wheelWords+1 trailing-zero counts.
//
//stash:hotpath
func (e *Engine) nextWheel() Cycle {
	start := int(e.now) & wheelMask
	wi, b0 := start>>6, uint(start&63)
	if w := e.wheelOcc[wi] >> b0; w != 0 {
		return e.now + Cycle(bits.TrailingZeros64(w))
	}
	off := 64 - int(b0)
	for k := 1; k < wheelWords; k++ {
		if w := e.wheelOcc[(wi+k)&(wheelWords-1)]; w != 0 {
			return e.now + Cycle(off+(k-1)*64+bits.TrailingZeros64(w))
		}
	}
	w := e.wheelOcc[wi] & (1<<b0 - 1)
	return e.now + Cycle(off+(wheelWords-1)*64+bits.TrailingZeros64(w))
}

// nextTime returns the cycle of the earliest pending event.
//
//stash:hotpath
func (e *Engine) nextTime() (Cycle, bool) {
	if e.wheelCount > 0 {
		t := e.nextWheel()
		if len(e.heap) > 0 && e.heap[0].at < t {
			t = e.heap[0].at
		}
		return t, true
	}
	if len(e.heap) > 0 {
		return e.heap[0].at, true
	}
	return 0, false
}

// popNext removes the globally earliest event and advances the clock to
// it. Heap entries due at the current cycle drain before the wheel bucket:
// they were necessarily scheduled before anything in the wheel (schedule
// routes a request into the wheel only once its cycle is fewer than
// wheelSize cycles out), so this is exactly (cycle, seq) order.
// Precondition: at least one event is pending.
//
//stash:hotpath
func (e *Engine) popNext() eventSlot {
	for {
		if len(e.heap) > 0 && e.heap[0].at == e.now {
			return e.heapPop()
		}
		b := int(e.now) & wheelMask
		if r := &e.wheel[b]; r.n > 0 {
			s := r.pop()
			e.wheelCount--
			if r.n == 0 {
				e.wheelOcc[b>>6] &^= 1 << (b & 63)
			}
			return s
		}
		// Nothing left at the current cycle: advance the clock.
		t, _ := e.nextTime()
		if t < e.now {
			panic("sim: time went backwards")
		}
		e.now = t
	}
}

// Run executes events until the queue drains, limit events have run
// (limit 0 means no limit), or Halt is called. It returns the number of
// events executed by this call.
//
//stash:hotpath
func (e *Engine) Run(limit uint64) uint64 {
	var n uint64
	e.halted = false
	for e.Pending() > 0 && !e.halted {
		if limit != 0 && n >= limit {
			break
		}
		ev := e.popNext()
		if e.Trace != nil {
			e.Trace(e.now, ev.name)
		}
		ev.fire()
		e.ran++
		n++
	}
	return n
}

// RunUntil executes events with timestamps up to and including cycle end.
// Events scheduled beyond end remain queued; the clock is left at the
// timestamp of the last event executed (not advanced to end).
//
//stash:hotpath
func (e *Engine) RunUntil(end Cycle) uint64 {
	var n uint64
	e.halted = false
	for !e.halted {
		t, ok := e.nextTime()
		if !ok || t > end {
			break
		}
		if t < e.now {
			panic("sim: time went backwards")
		}
		ev := e.popNext()
		if e.Trace != nil {
			e.Trace(e.now, ev.name)
		}
		ev.fire()
		e.ran++
		n++
	}
	return n
}
