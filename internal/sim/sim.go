// Package sim implements the deterministic discrete-event simulation engine
// that drives the CMP model. Components schedule callbacks at future cycles;
// the engine executes them in (cycle, insertion-order) order, so two runs of
// the same configuration produce bit-identical results.
//
// The engine is intentionally single-threaded: coherence-protocol debugging
// and reproducible experiments both depend on a total, stable event order.
//
// The scheduler is hand-specialized for the protocol's traffic shape and is
// allocation-free on the steady-state path:
//
//   - Events due at the current cycle (After(0)) and the next cycle
//     (After(1)) — the overwhelming majority of protocol messages — go to
//     two FIFO ring buffers and never touch the heap.
//   - Everything else goes to a flat 4-ary min-heap of 24-byte inline keys
//     (cycle, tie, slot index); the callback payloads live out-of-line in a
//     free-listed arena so sift operations move small values and nothing is
//     boxed through an interface.
//
// Both structures recycle their storage, so after warm-up the engine
// performs zero allocations per event. The total execution order is
// bit-identical to the original container/heap implementation (the
// property tests in legacy_test.go replay randomized schedules through
// both): with FIFO tie-breaking, every ring event was necessarily
// scheduled after every heap event due at the same cycle, so draining the
// heap's same-cycle entries first preserves (cycle, seq) order exactly.
// When a shuffle seed permutes same-cycle ties, all events take the heap
// path, reproducing the original order for every seed.
package sim

import "fmt"

// Cycle is a point in simulated time, measured in core clock cycles.
type Cycle uint64

// Event is a callback scheduled to run at a particular cycle.
type Event func()

// eventSlot is an event's payload, stored out-of-line from the heap keys
// (and inline in the rings, which are never sifted).
type eventSlot struct {
	run  Event
	name string // optional, for tracing
}

// heapEntry is one 4-ary-heap key: the ordering fields plus the index of
// the payload in the arena.
type heapEntry struct {
	at   Cycle
	tie  uint64 // FIFO seq, or a keyed hash when shuffle-fuzzing
	slot int32
}

func (a heapEntry) less(b heapEntry) bool {
	return a.at < b.at || (a.at == b.at && a.tie < b.tie)
}

// ring is a growable power-of-two circular FIFO of events all due at one
// cycle. Storage is reused across cycles, so steady-state pushes do not
// allocate.
type ring struct {
	buf  []eventSlot
	head int
	n    int
}

func (r *ring) push(s eventSlot) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = s
	r.n++
}

func (r *ring) pop() eventSlot {
	s := r.buf[r.head]
	r.buf[r.head] = eventSlot{} // release the closure for GC
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return s
}

func (r *ring) grow() {
	newCap := 2 * len(r.buf)
	if newCap == 0 {
		newCap = 16
	}
	buf := make([]eventSlot, newCap)
	for i := 0; i < r.n; i++ {
		buf[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
	}
	r.buf = buf
	r.head = 0
}

// Engine owns the event queue and the simulated clock.
type Engine struct {
	now     Cycle
	seq     uint64
	ran     uint64
	Trace   func(at Cycle, name string) // optional event trace hook
	halted  bool
	shuffle uint64

	// 4-ary min-heap of far-future events; payloads live in arena, with
	// recycled slots threaded through free.
	heap  []heapEntry
	arena []eventSlot
	free  []int32

	cur  ring // events due at cycle now (only used with FIFO ties)
	next ring // events due at cycle now+1
}

// NewEngine returns an engine at cycle 0 with an empty queue.
func NewEngine() *Engine {
	return &Engine{}
}

// SetShuffleSeed switches same-cycle tie-breaking from FIFO to a
// deterministic pseudo-random permutation keyed by seed (0 restores FIFO).
// Component models must not depend on the accidental ordering of unrelated
// events within one cycle; the protocol fuzz tests sweep seeds through this
// knob to prove it. It must be set before any events are scheduled.
func (e *Engine) SetShuffleSeed(seed uint64) {
	if e.Pending() != 0 {
		panic("sim: SetShuffleSeed with events already queued")
	}
	e.shuffle = seed
}

// mix64 is the splitmix64 finalizer, used to derive shuffle tie-break keys.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Now returns the current simulated cycle.
func (e *Engine) Now() Cycle { return e.now }

// EventsRun returns the number of events executed so far.
func (e *Engine) EventsRun() uint64 { return e.ran }

// Pending returns the number of scheduled, not-yet-run events.
func (e *Engine) Pending() int { return len(e.heap) + e.cur.n + e.next.n }

// At schedules fn to run at the absolute cycle at, which must not be in the
// past. Events at the same cycle run in scheduling order.
func (e *Engine) At(at Cycle, name string, fn Event) {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event %q at cycle %d, before now (%d)", name, at, e.now))
	}
	e.seq++
	if e.shuffle != 0 {
		// Shuffled ties permute whole cycles, so the FIFO rings cannot be
		// used; every event takes the heap path with a hashed tie key.
		e.heapPush(at, mix64(e.seq^e.shuffle), eventSlot{run: fn, name: name})
		return
	}
	switch at {
	case e.now:
		e.cur.push(eventSlot{run: fn, name: name})
	case e.now + 1:
		e.next.push(eventSlot{run: fn, name: name})
	default:
		e.heapPush(at, e.seq, eventSlot{run: fn, name: name})
	}
}

// After schedules fn to run delay cycles from now.
func (e *Engine) After(delay Cycle, name string, fn Event) {
	e.At(e.now+delay, name, fn)
}

// Halt stops Run after the current event completes, leaving any remaining
// events queued. Used by watchdogs and by tests that inject failures.
func (e *Engine) Halt() { e.halted = true }

func (e *Engine) heapPush(at Cycle, tie uint64, s eventSlot) {
	var idx int32
	if n := len(e.free); n > 0 {
		idx = e.free[n-1]
		e.free = e.free[:n-1]
		e.arena[idx] = s
	} else {
		idx = int32(len(e.arena))
		e.arena = append(e.arena, s)
	}
	// Sift up.
	i := len(e.heap)
	e.heap = append(e.heap, heapEntry{})
	ent := heapEntry{at: at, tie: tie, slot: idx}
	for i > 0 {
		p := (i - 1) >> 2
		if !ent.less(e.heap[p]) {
			break
		}
		e.heap[i] = e.heap[p]
		i = p
	}
	e.heap[i] = ent
}

// heapPop removes the heap minimum and returns its payload, recycling the
// arena slot.
func (e *Engine) heapPop() eventSlot {
	top := e.heap[0]
	n := len(e.heap) - 1
	last := e.heap[n]
	e.heap = e.heap[:n]
	if n > 0 {
		// Sift last down from the root.
		i := 0
		for {
			c := i<<2 + 1
			if c >= n {
				break
			}
			m := c
			end := c + 4
			if end > n {
				end = n
			}
			for j := c + 1; j < end; j++ {
				if e.heap[j].less(e.heap[m]) {
					m = j
				}
			}
			if !e.heap[m].less(last) {
				break
			}
			e.heap[i] = e.heap[m]
			i = m
		}
		e.heap[i] = last
	}
	s := e.arena[top.slot]
	e.arena[top.slot] = eventSlot{} // release the closure for GC
	e.free = append(e.free, top.slot)
	return s
}

// nextTime returns the cycle of the earliest pending event.
func (e *Engine) nextTime() (Cycle, bool) {
	if e.cur.n > 0 {
		return e.now, true
	}
	if len(e.heap) > 0 {
		t := e.heap[0].at
		if e.next.n > 0 && e.now+1 < t {
			t = e.now + 1
		}
		return t, true
	}
	if e.next.n > 0 {
		return e.now + 1, true
	}
	return 0, false
}

// popNext removes the globally earliest event and advances the clock to
// it. Heap entries due at the current cycle drain before the ring: they
// were necessarily scheduled before anything in the rings (At routes every
// same- and next-cycle request to the rings once the clock reaches the
// relevant cycle), so this is exactly (cycle, seq) order.
// Precondition: at least one event is pending.
func (e *Engine) popNext() eventSlot {
	for {
		if len(e.heap) > 0 && e.heap[0].at == e.now {
			return e.heapPop()
		}
		if e.cur.n > 0 {
			return e.cur.pop()
		}
		// Nothing left at the current cycle: advance the clock.
		t, _ := e.nextTime()
		if t < e.now {
			panic("sim: time went backwards")
		}
		if t == e.now+1 {
			// cur is empty; its storage becomes the new next ring.
			e.cur, e.next = e.next, e.cur
		}
		e.now = t
	}
}

// Run executes events until the queue drains, limit events have run
// (limit 0 means no limit), or Halt is called. It returns the number of
// events executed by this call.
func (e *Engine) Run(limit uint64) uint64 {
	var n uint64
	e.halted = false
	for e.Pending() > 0 && !e.halted {
		if limit != 0 && n >= limit {
			break
		}
		ev := e.popNext()
		if e.Trace != nil {
			e.Trace(e.now, ev.name)
		}
		ev.run()
		e.ran++
		n++
	}
	return n
}

// RunUntil executes events with timestamps up to and including cycle end.
// Events scheduled beyond end remain queued; the clock is left at the
// timestamp of the last event executed (not advanced to end).
func (e *Engine) RunUntil(end Cycle) uint64 {
	var n uint64
	e.halted = false
	for !e.halted {
		t, ok := e.nextTime()
		if !ok || t > end {
			break
		}
		if t < e.now {
			panic("sim: time went backwards")
		}
		ev := e.popNext()
		if e.Trace != nil {
			e.Trace(e.now, ev.name)
		}
		ev.run()
		e.ran++
		n++
	}
	return n
}
