// Package sim implements the deterministic discrete-event simulation engine
// that drives the CMP model. Components schedule callbacks at future cycles;
// the engine executes them in (cycle, insertion-order) order, so two runs of
// the same configuration produce bit-identical results.
//
// The serial engine is single-threaded: coherence-protocol debugging and
// reproducible experiments both depend on a total, stable event order. The
// scheduling core (EventQueue, in queue.go) is factored out of Engine so
// that internal/psim can run one queue per tile under a conservative epoch
// protocol; Engine embeds a queue and remains the serial façade.
//
// The scheduler is hand-specialized for the protocol's traffic shape and is
// allocation-free on the steady-state path:
//
//   - Events due within the next wheelSize (256) cycles — every protocol
//     latency and virtually every NoC arrival — go to a timing wheel of
//     per-cycle FIFO ring buffers and never touch the heap. A 4-word
//     occupancy bitmap finds the next non-empty bucket with a couple of
//     trailing-zero counts.
//   - Everything else goes to a flat 4-ary min-heap of 24-byte inline keys
//     (cycle, tie, slot index); the callback payloads live out-of-line in a
//     free-listed arena so sift operations move small values and nothing is
//     boxed through an interface.
//
// Both structures recycle their storage, so after warm-up the engine
// performs zero allocations per event. The total execution order is
// bit-identical to the original container/heap implementation (the
// property tests in legacy_test.go replay randomized schedules through
// both): with FIFO tie-breaking, an event lands in the wheel only once
// `at - now < wheelSize`, so every wheel event due at cycle T was
// scheduled strictly after every heap event due at T (which needed
// `at - now >= wheelSize`, i.e. an earlier now and hence a smaller seq);
// draining the heap's same-cycle entries before the wheel bucket therefore
// preserves (cycle, seq) order exactly. When a shuffle seed permutes
// same-cycle ties, all events take the heap path, reproducing the original
// order for every seed.
package sim

// Cycle is a point in simulated time, measured in core clock cycles.
type Cycle uint64

// Event is a callback scheduled to run at a particular cycle.
type Event func()

// Engine owns an event queue and the simulated clock, and adds the run
// loop, tracing and event accounting on top of the embedded EventQueue
// (which contributes Now, Pending, At/After and their Arg forms,
// NextEventTime and SetShuffleSeed).
//
//stash:tileowned
type Engine struct {
	EventQueue

	ran    uint64
	Trace  func(at Cycle, name string) // optional event trace hook
	halted bool
}

// NewEngine returns an engine at cycle 0 with an empty queue.
func NewEngine() *Engine {
	return &Engine{}
}

// EventsRun returns the number of events executed so far.
func (e *Engine) EventsRun() uint64 { return e.ran }

// Halt stops Run after the current event completes, leaving any remaining
// events queued. Used by watchdogs and by tests that inject failures.
func (e *Engine) Halt() { e.halted = true }

// Step pops the earliest pending event, advances the clock to it, and
// fires it. Precondition: at least one event is pending (Pending() > 0).
// It is the single-event granule the parallel engine's workers interleave
// across the queues they own; Run is equivalent to Step in a loop.
//
//stash:hotpath
func (e *Engine) Step() {
	ev := e.popNext()
	if e.Trace != nil {
		e.Trace(e.now, ev.name)
	}
	ev.fire()
	e.ran++
}

// Run executes events until the queue drains, limit events have run
// (limit 0 means no limit), or Halt is called. It returns the number of
// events executed by this call.
//
//stash:hotpath
func (e *Engine) Run(limit uint64) uint64 {
	var n uint64
	e.halted = false
	for e.Pending() > 0 && !e.halted {
		if limit != 0 && n >= limit {
			break
		}
		ev := e.popNext()
		if e.Trace != nil {
			e.Trace(e.now, ev.name)
		}
		ev.fire()
		e.ran++
		n++
	}
	return n
}

// RunUntil executes events with timestamps up to and including cycle end.
// Events scheduled beyond end remain queued; the clock is left at the
// timestamp of the last event executed (not advanced to end).
//
//stash:hotpath
func (e *Engine) RunUntil(end Cycle) uint64 {
	var n uint64
	e.halted = false
	for !e.halted {
		t, ok := e.nextTime()
		if !ok || t > end {
			break
		}
		if t < e.now {
			panic("sim: time went backwards")
		}
		ev := e.popNext()
		if e.Trace != nil {
			e.Trace(e.now, ev.name)
		}
		ev.fire()
		e.ran++
		n++
	}
	return n
}
