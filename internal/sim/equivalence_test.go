package sim

import (
	"fmt"
	"math/rand"
	"testing"
)

// scheduler is the API surface shared by the rewritten Engine and the
// original container/heap legacyEngine, so the equivalence tests can
// replay one schedule through both.
type scheduler interface {
	At(Cycle, string, Event)
	After(Cycle, string, Event)
	Now() Cycle
	Run(uint64) uint64
	RunUntil(Cycle) uint64
	SetShuffleSeed(uint64)
	Pending() int
	Halt()
}

// driveRandom executes a randomized self-similar schedule on s and returns
// the execution order as "(cycle,id)" strings. The schedule is derived
// only from the rng seed and from the engine's execution order, so two
// engines with identical ordering semantics produce identical logs. Delays
// are biased toward 0/1/2 to stress the ring fast path and its merge with
// the heap.
func driveRandom(s scheduler, seed int64, shuffle uint64, stepped bool) []string {
	rng := rand.New(rand.NewSource(seed))
	s.SetShuffleSeed(shuffle)
	var log []string
	id := 0
	var spawn func(depth int) Event
	spawn = func(depth int) Event {
		myID := id
		id++
		return func() {
			log = append(log, fmt.Sprintf("(%d,%d)", s.Now(), myID))
			if depth == 0 {
				return
			}
			kids := rng.Intn(4)
			for i := 0; i < kids; i++ {
				var d Cycle
				switch rng.Intn(8) {
				case 0, 1, 2:
					d = 0
				case 3, 4:
					d = 1
				case 5:
					d = 2
				case 6:
					d = Cycle(rng.Intn(10))
				default:
					d = Cycle(rng.Intn(200))
				}
				s.After(d, "kid", spawn(depth-1))
			}
		}
	}
	for i := 0; i < 12; i++ {
		s.At(Cycle(rng.Intn(30)), "root", spawn(4))
	}
	if stepped {
		// Alternate bounded Run and RunUntil calls to cover the stepping
		// entry points, then drain.
		for end := Cycle(25); s.Pending() > 0; end += 40 {
			s.RunUntil(end)
			s.Run(7)
		}
	} else {
		s.Run(0)
	}
	return log
}

// TestEngineMatchesLegacyOrdering is the rewrite's equivalence proof:
// randomized (cycle, seq) schedules — including shuffle-seeded tie
// permutation and stepped Run/RunUntil driving — must execute in exactly
// the same total order on the flat 4-ary engine as on the original
// container/heap implementation.
func TestEngineMatchesLegacyOrdering(t *testing.T) {
	shuffles := []uint64{0, 1, 7, 0xdeadbeef}
	for trial := int64(0); trial < 25; trial++ {
		for _, shuffle := range shuffles {
			for _, stepped := range []bool{false, true} {
				got := driveRandom(NewEngine(), trial, shuffle, stepped)
				want := driveRandom(newLegacyEngine(), trial, shuffle, stepped)
				if len(got) != len(want) {
					t.Fatalf("trial %d shuffle %d stepped %v: ran %d events, legacy ran %d",
						trial, shuffle, stepped, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("trial %d shuffle %d stepped %v: order diverged at event %d: %s vs legacy %s",
							trial, shuffle, stepped, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestRunUntilTimeBackwardsGuard covers the guard RunUntil shares with
// Run: a clock that would move backwards is a scheduler invariant
// violation and must panic rather than corrupt event order.
func TestRunUntilTimeBackwardsGuard(t *testing.T) {
	e := NewEngine()
	e.At(10, "a", func() {})
	e.RunUntil(20)
	// Corrupt the clock the only way external code could observe it: an
	// already-queued heap entry behind the clock.
	e.arena = append(e.arena, eventSlot{run: func() {}})
	e.heap = append(e.heap, heapEntry{at: 3, tie: 1, slot: int32(len(e.arena) - 1)})
	defer func() {
		if recover() == nil {
			t.Fatal("RunUntil executed an event behind the clock without panicking")
		}
	}()
	e.RunUntil(100)
}

// TestArenaRecycling proves the steady-state path reuses storage: after
// warm-up, a long self-rescheduling workload keeps the arena and free
// list bounded.
func TestArenaRecycling(t *testing.T) {
	e := NewEngine()
	var fn Event
	n := 0
	fn = func() {
		n++
		if n < 10000 {
			e.After(farDelays[n&7], "t", fn)
		}
	}
	e.After(5, "t", fn)
	e.Run(0)
	if n != 10000 {
		t.Fatalf("ran %d events, want 10000", n)
	}
	if len(e.arena) > 64 {
		t.Fatalf("arena grew to %d slots for a 1-deep workload; free list not recycling", len(e.arena))
	}
}
