package sim

import (
	"math/rand"
	"sort"
	"testing"
)

func TestEventsRunInTimeOrder(t *testing.T) {
	e := NewEngine()
	var order []Cycle
	for _, at := range []Cycle{30, 10, 20, 10, 5} {
		at := at
		e.At(at, "t", func() { order = append(order, at) })
	}
	e.Run(0)
	if !sort.SliceIsSorted(order, func(i, j int) bool { return order[i] < order[j] }) {
		t.Fatalf("events ran out of order: %v", order)
	}
	if len(order) != 5 {
		t.Fatalf("ran %d events, want 5", len(order))
	}
	if e.Now() != 30 {
		t.Fatalf("clock = %d, want 30", e.Now())
	}
}

func TestSameCycleFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(7, "t", func() { order = append(order, i) })
	}
	e.Run(0)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-cycle events not FIFO: %v", order)
		}
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	e := NewEngine()
	var hit Cycle
	e.At(100, "outer", func() {
		e.After(5, "inner", func() { hit = e.Now() })
	})
	e.Run(0)
	if hit != 105 {
		t.Fatalf("inner event at %d, want 105", hit)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(10, "late", func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(5, "past", func() {})
	})
	e.Run(0)
}

func TestRunLimit(t *testing.T) {
	e := NewEngine()
	n := 0
	for i := 0; i < 10; i++ {
		e.At(Cycle(i), "t", func() { n++ })
	}
	ran := e.Run(4)
	if ran != 4 || n != 4 {
		t.Fatalf("ran %d events (callback saw %d), want 4", ran, n)
	}
	if e.Pending() != 6 {
		t.Fatalf("pending = %d, want 6", e.Pending())
	}
	e.Run(0)
	if n != 10 {
		t.Fatalf("total = %d, want 10", n)
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	var ran []Cycle
	for _, at := range []Cycle{1, 5, 10, 15} {
		at := at
		e.At(at, "t", func() { ran = append(ran, at) })
	}
	e.RunUntil(10)
	if len(ran) != 3 {
		t.Fatalf("RunUntil(10) executed %v", ran)
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
}

func TestHalt(t *testing.T) {
	e := NewEngine()
	n := 0
	e.At(1, "a", func() { n++; e.Halt() })
	e.At(2, "b", func() { n++ })
	e.Run(0)
	if n != 1 {
		t.Fatalf("halt did not stop the run; n = %d", n)
	}
	// A later Run resumes.
	e.Run(0)
	if n != 2 {
		t.Fatalf("resume failed; n = %d", n)
	}
}

func TestTraceHook(t *testing.T) {
	e := NewEngine()
	var names []string
	e.Trace = func(at Cycle, name string) { names = append(names, name) }
	e.At(1, "alpha", func() {})
	e.At(2, "beta", func() {})
	e.Run(0)
	if len(names) != 2 || names[0] != "alpha" || names[1] != "beta" {
		t.Fatalf("trace = %v", names)
	}
}

func TestDeterminismUnderRandomLoad(t *testing.T) {
	run := func(seed int64) []Cycle {
		e := NewEngine()
		rng := rand.New(rand.NewSource(seed))
		var log []Cycle
		var spawn func(depth int)
		spawn = func(depth int) {
			log = append(log, e.Now())
			if depth == 0 {
				return
			}
			for i := 0; i < 3; i++ {
				d := Cycle(rng.Intn(50))
				e.After(d, "x", func() { spawn(depth - 1) })
			}
		}
		e.At(0, "root", func() { spawn(4) })
		e.Run(0)
		return log
	}
	a := run(42)
	b := run(42)
	if len(a) != len(b) {
		t.Fatalf("non-deterministic event count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("divergence at event %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestEventsRunCounter(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 5; i++ {
		e.At(Cycle(i), "t", func() {})
	}
	e.Run(0)
	if e.EventsRun() != 5 {
		t.Fatalf("EventsRun = %d, want 5", e.EventsRun())
	}
}

func TestShuffleSeedPermutesSameCycleEvents(t *testing.T) {
	order := func(seed uint64) []int {
		e := NewEngine()
		e.SetShuffleSeed(seed)
		var got []int
		for i := 0; i < 16; i++ {
			i := i
			e.At(5, "t", func() { got = append(got, i) })
		}
		e.Run(0)
		return got
	}
	fifo := order(0)
	for i, v := range fifo {
		if v != i {
			t.Fatalf("seed 0 must keep FIFO, got %v", fifo)
		}
	}
	a, b := order(1), order(2)
	sameAsFIFO := true
	for i := range a {
		if a[i] != i {
			sameAsFIFO = false
		}
	}
	if sameAsFIFO {
		t.Fatal("seed 1 did not permute same-cycle events")
	}
	diff := false
	for i := range a {
		if a[i] != b[i] {
			diff = true
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical permutations (suspicious)")
	}
	// Reproducible per seed.
	c := order(1)
	for i := range a {
		if a[i] != c[i] {
			t.Fatal("same seed produced different permutations")
		}
	}
}

func TestShuffleSeedPreservesTimeOrder(t *testing.T) {
	e := NewEngine()
	e.SetShuffleSeed(7)
	var got []Cycle
	for _, at := range []Cycle{9, 3, 3, 7, 1, 9} {
		at := at
		e.At(at, "t", func() { got = append(got, at) })
	}
	e.Run(0)
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("time order violated: %v", got)
		}
	}
}

func TestShuffleSeedAfterSchedulingPanics(t *testing.T) {
	e := NewEngine()
	e.At(1, "t", func() {})
	defer func() {
		if recover() == nil {
			t.Fatal("SetShuffleSeed with queued events did not panic")
		}
	}()
	e.SetShuffleSeed(3)
}
