package sim

import "testing"

// The BenchmarkEngine* benchmarks measure the scheduling hot paths the
// coherence protocol hits constantly; the BenchmarkEngineLegacy* twins run
// the identical workloads through the original container/heap queue so one
// `go test -bench BenchmarkEngine -benchmem` run prints the before/after
// comparison recorded in DESIGN.md.

// benchDelays mixes the common short hops (0, 1, 2) with occasional long
// latencies (bank, memory) the way protocol traffic does.
var benchDelays = [16]Cycle{0, 1, 1, 2, 1, 0, 3, 1, 8, 1, 0, 21, 2, 1, 5, 97}

// farDelays avoids the 0/1 fast path entirely, forcing every event
// through the heap.
var farDelays = [8]Cycle{13, 97, 29, 211, 53, 7, 151, 23}

func BenchmarkEngineAfter1(b *testing.B) {
	e := NewEngine()
	var fn Event
	fn = func() { e.After(1, "tick", fn) }
	e.After(1, "tick", fn)
	b.ReportAllocs()
	b.ResetTimer()
	e.Run(uint64(b.N))
}

func BenchmarkEngineAfter0Burst(b *testing.B) {
	e := NewEngine()
	worker := Event(func() {})
	var driver Event
	driver = func() {
		for i := 0; i < 8; i++ {
			e.After(0, "w", worker)
		}
		e.After(1, "d", driver)
	}
	e.After(1, "d", driver)
	b.ReportAllocs()
	b.ResetTimer()
	e.Run(uint64(b.N))
}

func BenchmarkEngineMixed(b *testing.B) {
	e := NewEngine()
	var i int
	var fn Event
	fn = func() {
		d := benchDelays[i&15]
		i++
		e.After(d, "m", fn)
	}
	for j := 0; j < 16; j++ {
		e.After(Cycle(j), "m", fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	e.Run(uint64(b.N))
}

func BenchmarkEngineFarFuture(b *testing.B) {
	e := NewEngine()
	var i int
	var fn Event
	fn = func() {
		d := farDelays[i&7]
		i++
		e.After(d, "f", fn)
	}
	for j := 0; j < 64; j++ {
		e.After(Cycle(j), "f", fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	e.Run(uint64(b.N))
}

func BenchmarkEngineLegacyAfter1(b *testing.B) {
	e := newLegacyEngine()
	var fn Event
	fn = func() { e.After(1, "tick", fn) }
	e.After(1, "tick", fn)
	b.ReportAllocs()
	b.ResetTimer()
	e.Run(uint64(b.N))
}

func BenchmarkEngineLegacyAfter0Burst(b *testing.B) {
	e := newLegacyEngine()
	worker := Event(func() {})
	var driver Event
	driver = func() {
		for i := 0; i < 8; i++ {
			e.After(0, "w", worker)
		}
		e.After(1, "d", driver)
	}
	e.After(1, "d", driver)
	b.ReportAllocs()
	b.ResetTimer()
	e.Run(uint64(b.N))
}

func BenchmarkEngineLegacyMixed(b *testing.B) {
	e := newLegacyEngine()
	var i int
	var fn Event
	fn = func() {
		d := benchDelays[i&15]
		i++
		e.After(d, "m", fn)
	}
	for j := 0; j < 16; j++ {
		e.After(Cycle(j), "m", fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	e.Run(uint64(b.N))
}

func BenchmarkEngineLegacyFarFuture(b *testing.B) {
	e := newLegacyEngine()
	var i int
	var fn Event
	fn = func() {
		d := farDelays[i&7]
		i++
		e.After(d, "f", fn)
	}
	for j := 0; j < 64; j++ {
		e.After(Cycle(j), "f", fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	e.Run(uint64(b.N))
}
