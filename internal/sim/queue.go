package sim

import (
	"fmt"
	"math/bits"
)

// eventSlot is an event's payload, stored out-of-line from the heap keys
// (and inline in the rings, which are never sifted). An event is either a
// plain closure (run) or an arg-passing pair (argFn, arg) scheduled through
// AtArg/AfterArg; the latter lets callers reuse one long-lived func value
// and avoid allocating a fresh closure per event.
type eventSlot struct {
	run   Event
	argFn func(any)
	arg   any
	name  string // optional, for tracing
}

// fire executes whichever form of callback the slot carries.
//
//stash:hotpath
func (s *eventSlot) fire() {
	if s.argFn != nil {
		s.argFn(s.arg)
		return
	}
	s.run()
}

// heapEntry is one 4-ary-heap key: the ordering fields plus the index of
// the payload in the arena.
type heapEntry struct {
	at   Cycle
	tie  uint64 // FIFO seq, or a keyed hash when shuffle-fuzzing
	slot int32
}

func (a heapEntry) less(b heapEntry) bool {
	return a.at < b.at || (a.at == b.at && a.tie < b.tie)
}

// ring is a growable power-of-two circular FIFO of events all due at one
// cycle. Storage is reused across cycles, so steady-state pushes do not
// allocate.
//
//stash:tileowned
type ring struct {
	buf  []eventSlot
	head int
	n    int
}

//stash:hotpath
func (r *ring) push(s eventSlot) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = s
	r.n++
}

//stash:hotpath
func (r *ring) pop() eventSlot {
	// The popped slot is left stale rather than cleared: clearing a
	// pointer-bearing struct costs a write barrier per event, and the slot
	// is overwritten on reuse anyway, so at most one buffer's worth of dead
	// callbacks is retained.
	s := r.buf[r.head]
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return s
}

func (r *ring) grow() {
	newCap := 2 * len(r.buf)
	if newCap == 0 {
		newCap = 16
	}
	buf := make([]eventSlot, newCap)
	for i := 0; i < r.n; i++ {
		buf[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
	}
	r.buf = buf
	r.head = 0
}

// Timing-wheel geometry: one FIFO bucket per cycle for the next wheelSize
// cycles. Must be a power of two, and large enough to cover the protocol's
// fixed latencies (memory reads at 160 cycles are the longest) so that the
// heap only sees the rare congestion-delayed NoC arrival.
const (
	wheelSize  = 256
	wheelMask  = wheelSize - 1
	wheelWords = wheelSize / 64
)

// EventQueue is the scheduling core an Engine is built on: a per-shard
// clock plus the wheel-and-heap priority queue. It was extracted from
// Engine so the parallel engine (internal/psim) can give every shard its
// own timing wheel while Engine remains the serial façade; Engine embeds
// one, so all queue methods appear on Engine unchanged.
//
// Ordering contract: events fire in (cycle, sequence) order, where the
// sequence is this queue's own insertion counter — a local property that
// does not depend on any other queue's history. That locality is what lets
// psim run one EventQueue per tile and still define a total event order
// (cycle, tile, sequence) that is independent of how tiles are grouped
// into worker shards.
//
//stash:tileowned
type EventQueue struct {
	now     Cycle
	seq     uint64
	shuffle uint64

	// 4-ary min-heap of far-future events; payloads live in arena, with
	// recycled slots threaded through free.
	heap  []heapEntry
	arena []eventSlot
	free  []int32

	// Timing wheel of near-future events (FIFO ties only): bucket
	// wheel[t & wheelMask] holds the events due at cycle t for
	// t - now < wheelSize. wheelOcc is the per-bucket occupancy bitmap.
	wheel      [wheelSize]ring
	wheelOcc   [wheelWords]uint64
	wheelCount int

	// slab seeds ring buffers: one allocation covers every bucket's
	// initial buffer, so bringing a wheel up costs 1 allocation instead of
	// wheelSize. This matters most to the parallel engine, which builds
	// one EventQueue per tile per run.
	slab []eventSlot
}

// ringSeed is the initial per-bucket ring capacity carved from the slab.
// Must be a power of two (ring indexing masks by capacity).
const ringSeed = 8

// seedRing hands out one initial ring buffer from the queue's slab.
func (q *EventQueue) seedRing() []eventSlot {
	if len(q.slab) < ringSeed {
		q.slab = make([]eventSlot, wheelSize*ringSeed)
	}
	buf := q.slab[:ringSeed:ringSeed]
	q.slab = q.slab[ringSeed:]
	return buf
}

// SetShuffleSeed switches same-cycle tie-breaking from FIFO to a
// deterministic pseudo-random permutation keyed by seed (0 restores FIFO).
// Component models must not depend on the accidental ordering of unrelated
// events within one cycle; the protocol fuzz tests sweep seeds through this
// knob to prove it. It must be set before any events are scheduled.
func (q *EventQueue) SetShuffleSeed(seed uint64) {
	if q.Pending() != 0 {
		panic("sim: SetShuffleSeed with events already queued")
	}
	q.shuffle = seed
}

// mix64 is the splitmix64 finalizer, used to derive shuffle tie-break keys.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Now returns the current simulated cycle.
func (q *EventQueue) Now() Cycle { return q.now }

// Pending returns the number of scheduled, not-yet-run events.
func (q *EventQueue) Pending() int { return len(q.heap) + q.wheelCount }

// At schedules fn to run at the absolute cycle at, which must not be in the
// past. Events at the same cycle run in scheduling order.
//
//stash:hotpath
func (q *EventQueue) At(at Cycle, name string, fn Event) {
	q.schedule(at, eventSlot{run: fn, name: name})
}

// AtArg schedules fn(arg) at the absolute cycle at. It shares At's sequence
// counter and routing, so interleaved At/AtArg calls preserve scheduling
// order exactly; the point of the arg form is that a long-lived fn plus a
// pointer-shaped arg schedules without allocating a closure. Ownership of a
// pooled arg moves to the event queue until fn runs.
//
//stash:transfer
//stash:hotpath
func (q *EventQueue) AtArg(at Cycle, name string, fn func(any), arg any) {
	q.schedule(at, eventSlot{argFn: fn, arg: arg, name: name})
}

// After schedules fn to run delay cycles from now.
//
//stash:hotpath
func (q *EventQueue) After(delay Cycle, name string, fn Event) {
	q.schedule(q.now+delay, eventSlot{run: fn, name: name})
}

// AfterArg schedules fn(arg) delay cycles from now (see AtArg). Ownership
// of a pooled arg moves to the event queue until fn runs.
//
//stash:transfer
//stash:hotpath
func (q *EventQueue) AfterArg(delay Cycle, name string, fn func(any), arg any) {
	q.schedule(q.now+delay, eventSlot{argFn: fn, arg: arg, name: name})
}

//stash:hotpath
func (q *EventQueue) schedule(at Cycle, s eventSlot) {
	if at < q.now {
		panic(fmt.Sprintf("sim: scheduling event %q at cycle %d, before now (%d)", s.name, at, q.now))
	}
	q.seq++
	if q.shuffle != 0 {
		// Shuffled ties permute whole cycles, so the FIFO wheel cannot be
		// used; every event takes the heap path with a hashed tie key.
		q.heapPush(at, mix64(q.seq^q.shuffle), s)
		return
	}
	if at-q.now < wheelSize {
		b := int(at) & wheelMask
		r := &q.wheel[b]
		if r.buf == nil {
			r.buf = q.seedRing()
		}
		r.push(s)
		q.wheelOcc[b>>6] |= 1 << (b & 63)
		q.wheelCount++
		return
	}
	q.heapPush(at, q.seq, s)
}

//stash:hotpath
func (q *EventQueue) heapPush(at Cycle, tie uint64, s eventSlot) {
	var idx int32
	if n := len(q.free); n > 0 {
		idx = q.free[n-1]
		q.free = q.free[:n-1]
		q.arena[idx] = s
	} else {
		idx = int32(len(q.arena))
		q.arena = append(q.arena, s)
	}
	// Sift up.
	i := len(q.heap)
	q.heap = append(q.heap, heapEntry{})
	ent := heapEntry{at: at, tie: tie, slot: idx}
	for i > 0 {
		p := (i - 1) >> 2
		if !ent.less(q.heap[p]) {
			break
		}
		q.heap[i] = q.heap[p]
		i = p
	}
	q.heap[i] = ent
}

// heapPop removes the heap minimum and returns its payload, recycling the
// arena slot.
//
//stash:hotpath
func (q *EventQueue) heapPop() eventSlot {
	top := q.heap[0]
	n := len(q.heap) - 1
	last := q.heap[n]
	q.heap = q.heap[:n]
	if n > 0 {
		// Sift last down from the root.
		i := 0
		for {
			c := i<<2 + 1
			if c >= n {
				break
			}
			m := c
			end := c + 4
			if end > n {
				end = n
			}
			for j := c + 1; j < end; j++ {
				if q.heap[j].less(q.heap[m]) {
					m = j
				}
			}
			if !q.heap[m].less(last) {
				break
			}
			q.heap[i] = q.heap[m]
			i = m
		}
		q.heap[i] = last
	}
	s := q.arena[top.slot]
	q.arena[top.slot] = eventSlot{} // release the closure for GC
	q.free = append(q.free, top.slot)
	return s
}

// nextWheel returns the cycle of the earliest wheel event; it must only be
// called with wheelCount > 0. The circular bitmap scan starts at now's
// bucket and costs at most wheelWords+1 trailing-zero counts.
//
//stash:hotpath
func (q *EventQueue) nextWheel() Cycle {
	start := int(q.now) & wheelMask
	wi, b0 := start>>6, uint(start&63)
	if w := q.wheelOcc[wi] >> b0; w != 0 {
		return q.now + Cycle(bits.TrailingZeros64(w))
	}
	off := 64 - int(b0)
	for k := 1; k < wheelWords; k++ {
		if w := q.wheelOcc[(wi+k)&(wheelWords-1)]; w != 0 {
			return q.now + Cycle(off+(k-1)*64+bits.TrailingZeros64(w))
		}
	}
	w := q.wheelOcc[wi] & (1<<b0 - 1)
	return q.now + Cycle(off+(wheelWords-1)*64+bits.TrailingZeros64(w))
}

// nextTime returns the cycle of the earliest pending event.
//
//stash:hotpath
func (q *EventQueue) nextTime() (Cycle, bool) {
	if q.wheelCount > 0 {
		t := q.nextWheel()
		if len(q.heap) > 0 && q.heap[0].at < t {
			t = q.heap[0].at
		}
		return t, true
	}
	if len(q.heap) > 0 {
		return q.heap[0].at, true
	}
	return 0, false
}

// NextEventTime returns the cycle of the earliest pending event, or false
// when the queue is empty. The parallel engine's workers use it to pick,
// among the queues they own, which one to step next — and the conservative
// epoch driver uses the global minimum to skip idle epochs.
//
//stash:hotpath
func (q *EventQueue) NextEventTime() (Cycle, bool) {
	return q.nextTime()
}

// popNext removes the globally earliest event and advances the clock to
// it. Heap entries due at the current cycle drain before the wheel bucket:
// they were necessarily scheduled before anything in the wheel (schedule
// routes a request into the wheel only once its cycle is fewer than
// wheelSize cycles out), so this is exactly (cycle, seq) order.
// Precondition: at least one event is pending.
//
//stash:hotpath
func (q *EventQueue) popNext() eventSlot {
	for {
		if len(q.heap) > 0 && q.heap[0].at == q.now {
			return q.heapPop()
		}
		b := int(q.now) & wheelMask
		if r := &q.wheel[b]; r.n > 0 {
			s := r.pop()
			q.wheelCount--
			if r.n == 0 {
				q.wheelOcc[b>>6] &^= 1 << (b & 63)
			}
			return s
		}
		// Nothing left at the current cycle: advance the clock.
		t, _ := q.nextTime()
		if t < q.now {
			panic("sim: time went backwards")
		}
		q.now = t
	}
}
