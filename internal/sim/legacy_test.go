package sim

import (
	"container/heap"
	"fmt"
)

// legacyEngine is the original container/heap event queue, kept verbatim
// as the reference implementation: the property tests replay identical
// schedules through it and the rewritten Engine and require identical
// execution orders, and the BenchmarkEngineLegacy* benchmarks measure the
// baseline the rewrite is compared against in DESIGN.md.
type legacyEngine struct {
	now     Cycle
	seq     uint64
	queue   legacyQueue
	ran     uint64
	Trace   func(at Cycle, name string)
	halted  bool
	shuffle uint64
}

type legacyQueued struct {
	at   Cycle
	seq  uint64
	tie  uint64
	run  Event
	name string
}

type legacyQueue []*legacyQueued

func (q legacyQueue) Len() int { return len(q) }
func (q legacyQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].tie < q[j].tie
}
func (q legacyQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *legacyQueue) Push(x any)   { *q = append(*q, x.(*legacyQueued)) }
func (q *legacyQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}

func newLegacyEngine() *legacyEngine { return &legacyEngine{} }

func (e *legacyEngine) SetShuffleSeed(seed uint64) {
	if len(e.queue) != 0 {
		panic("sim: SetShuffleSeed with events already queued")
	}
	e.shuffle = seed
}

func (e *legacyEngine) Now() Cycle        { return e.now }
func (e *legacyEngine) EventsRun() uint64 { return e.ran }
func (e *legacyEngine) Pending() int      { return len(e.queue) }
func (e *legacyEngine) Halt()             { e.halted = true }

func (e *legacyEngine) At(at Cycle, name string, fn Event) {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event %q at cycle %d, before now (%d)", name, at, e.now))
	}
	e.seq++
	tie := e.seq
	if e.shuffle != 0 {
		tie = mix64(e.seq ^ e.shuffle)
	}
	heap.Push(&e.queue, &legacyQueued{at: at, seq: e.seq, tie: tie, run: fn, name: name})
}

func (e *legacyEngine) After(delay Cycle, name string, fn Event) {
	e.At(e.now+delay, name, fn)
}

func (e *legacyEngine) Run(limit uint64) uint64 {
	var n uint64
	e.halted = false
	for len(e.queue) > 0 && !e.halted {
		if limit != 0 && n >= limit {
			break
		}
		ev := heap.Pop(&e.queue).(*legacyQueued)
		if ev.at < e.now {
			panic("sim: time went backwards")
		}
		e.now = ev.at
		if e.Trace != nil {
			e.Trace(e.now, ev.name)
		}
		ev.run()
		e.ran++
		n++
	}
	return n
}

func (e *legacyEngine) RunUntil(end Cycle) uint64 {
	var n uint64
	e.halted = false
	for len(e.queue) > 0 && !e.halted && e.queue[0].at <= end {
		ev := heap.Pop(&e.queue).(*legacyQueued)
		e.now = ev.at
		if e.Trace != nil {
			e.Trace(e.now, ev.name)
		}
		ev.run()
		e.ran++
		n++
	}
	return n
}
