package sim_test

import (
	"testing"

	"repro/internal/system"
)

// BenchmarkEngineThroughput drives a full 16-core sweep point end to end
// and reports sustained engine throughput in events per second — the
// figure-of-merit `make bench` records into BENCH_engine.json. It lives in
// the sim package's external test so engine regressions show up next to
// the micro-benchmarks they explain.
func BenchmarkEngineThroughput(b *testing.B) {
	cfg := system.QuickConfig("blackscholes")
	cfg.Cores = 16
	cfg.AccessesPerCore = 5000
	cfg.WorkloadScale = 0.25
	cfg.Checker = false
	var events uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := system.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		events += res.EventsRun
	}
	b.StopTimer()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(events)/sec, "events/sec")
	}
}
