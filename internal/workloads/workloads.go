// Package workloads defines the named workload suite the experiments run:
// ten synthetic mixes whose sharing behavior approximates the PARSEC and
// SPLASH-2 programs the paper evaluates. The parameters were chosen so the
// measured fraction of private (single-sharer) tracked blocks spans the
// 70–95% range the paper's motivation data reports, with working sets large
// enough to pressure under-provisioned directories.
//
// Mapping rationale (see DESIGN.md for the substitution argument):
//
//   - blackscholes, swaptions: embarrassingly parallel, tiny sharing.
//   - bodytrack, ferret: pipeline parallelism → producer-consumer flavor.
//   - canneal: huge, irregular working set with random fine-grain sharing.
//   - dedup: pipeline + hashed shared pool.
//   - fluidanimate: neighbor (boundary) sharing.
//   - streamcluster: large read-shared centers table.
//   - barnes, ocean: SPLASH-2 style migratory and read-write sharing.
//   - radiosity: task-stealing over a shared scene graph (mixed sharing).
//   - water: mostly-private molecular dynamics with a migratory reduction.
package workloads

import (
	"fmt"
	"sort"

	"repro/internal/trace"
)

// suite is the named workload table.
var suite = map[string]trace.Mix{
	"blackscholes": {
		Name:        "blackscholes",
		PrivateFrac: 0.95, SharedReadFrac: 0.04, SharedRWFrac: 0.01,
		WriteFrac:     0.25,
		PrivateBlocks: 3072, SharedBlocks: 256,
		ZipfS: 1.9,
	},
	"swaptions": {
		Name:        "swaptions",
		PrivateFrac: 0.92, SharedReadFrac: 0.07, SharedRWFrac: 0.01,
		WriteFrac:     0.30,
		PrivateBlocks: 2048, SharedBlocks: 192,
		ZipfS: 1.8,
	},
	"bodytrack": {
		Name:        "bodytrack",
		PrivateFrac: 0.70, SharedReadFrac: 0.18, SharedRWFrac: 0.04, ProdConsFrac: 0.08,
		WriteFrac:     0.25,
		PrivateBlocks: 2048, SharedBlocks: 512, ProdConsBlocks: 128,
		ZipfS: 1.6,
	},
	"ferret": {
		Name:        "ferret",
		PrivateFrac: 0.62, SharedReadFrac: 0.15, SharedRWFrac: 0.03, ProdConsFrac: 0.20,
		WriteFrac:     0.20,
		PrivateBlocks: 2560, SharedBlocks: 384, ProdConsBlocks: 192,
		ZipfS: 1.5,
	},
	"canneal": {
		Name:        "canneal",
		PrivateFrac: 0.55, SharedReadFrac: 0.20, SharedRWFrac: 0.25,
		WriteFrac:     0.30,
		PrivateBlocks: 6144, SharedBlocks: 4096,
		// Uniform: canneal's pointer chasing has almost no locality.
		ZipfS: 0,
	},
	"dedup": {
		Name:        "dedup",
		PrivateFrac: 0.60, SharedReadFrac: 0.12, SharedRWFrac: 0.08, ProdConsFrac: 0.20,
		WriteFrac:     0.30,
		PrivateBlocks: 3072, SharedBlocks: 1024, ProdConsBlocks: 256,
		ZipfS: 1.5,
	},
	"fluidanimate": {
		Name:        "fluidanimate",
		PrivateFrac: 0.72, SharedReadFrac: 0.06, SharedRWFrac: 0.04, ProdConsFrac: 0.18,
		WriteFrac:     0.35,
		PrivateBlocks: 2560, SharedBlocks: 384, ProdConsBlocks: 160,
		ZipfS: 1.6,
	},
	"streamcluster": {
		Name:        "streamcluster",
		PrivateFrac: 0.48, SharedReadFrac: 0.45, SharedRWFrac: 0.07,
		WriteFrac:     0.20,
		PrivateBlocks: 2048, SharedBlocks: 2048,
		ZipfS: 1.5,
	},
	"barnes": {
		Name:        "barnes",
		PrivateFrac: 0.55, SharedReadFrac: 0.15, SharedRWFrac: 0.10, MigratoryFrac: 0.20,
		WriteFrac:     0.30,
		PrivateBlocks: 2048, SharedBlocks: 768, MigratoryBlocks: 96,
		MigratoryPhase: 12,
		ZipfS:          1.5,
	},
	"radiosity": {
		Name:        "radiosity",
		PrivateFrac: 0.50, SharedReadFrac: 0.25, SharedRWFrac: 0.10, MigratoryFrac: 0.15,
		WriteFrac:     0.25,
		PrivateBlocks: 2048, SharedBlocks: 1536, MigratoryBlocks: 128,
		MigratoryPhase: 10,
		ZipfS:          1.4,
	},
	"water": {
		Name:        "water",
		PrivateFrac: 0.80, SharedReadFrac: 0.10, SharedRWFrac: 0.05, MigratoryFrac: 0.05,
		WriteFrac:     0.30,
		PrivateBlocks: 1536, SharedBlocks: 512, MigratoryBlocks: 48,
		MigratoryPhase: 14,
		ZipfS:          1.6,
	},
	"ocean": {
		Name:        "ocean",
		PrivateFrac: 0.62, SharedReadFrac: 0.10, SharedRWFrac: 0.12, ProdConsFrac: 0.10, MigratoryFrac: 0.06,
		WriteFrac:     0.35,
		PrivateBlocks: 4096, SharedBlocks: 1024, ProdConsBlocks: 192, MigratoryBlocks: 64,
		MigratoryPhase: 16,
		ZipfS:          1.45,
	},
}

// Names returns the workload names in sorted order.
func Names() []string {
	names := make([]string, 0, len(suite))
	for n := range suite {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Get returns the named workload mix.
func Get(name string) (trace.Mix, error) {
	m, ok := suite[name]
	if !ok {
		return trace.Mix{}, fmt.Errorf("workloads: unknown workload %q (have %v)", name, Names())
	}
	return m, nil
}

// MustGet is Get for known-valid names; it panics on error.
func MustGet(name string) trace.Mix {
	m, err := Get(name)
	if err != nil {
		panic(err)
	}
	return m
}
