package workloads

import (
	"testing"
)

func TestSuiteCompleteAndValid(t *testing.T) {
	names := Names()
	if len(names) != 12 {
		t.Fatalf("suite has %d workloads, want 12", len(names))
	}
	for _, n := range names {
		m, err := Get(n)
		if err != nil {
			t.Fatalf("Get(%q): %v", n, err)
		}
		if m.Name != n {
			t.Errorf("workload %q has mismatched Name %q", n, m.Name)
		}
		if err := m.Validate(); err != nil {
			t.Errorf("workload %q invalid: %v", n, err)
		}
	}
}

func TestNamesSorted(t *testing.T) {
	names := Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("names not sorted: %v", names)
		}
	}
}

func TestUnknown(t *testing.T) {
	if _, err := Get("nope"); err == nil {
		t.Fatal("unknown workload accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustGet did not panic")
		}
	}()
	MustGet("nope")
}

func TestSuiteCoversSharingSpectrum(t *testing.T) {
	// The suite must include near-embarrassingly-parallel, pipeline,
	// migratory and read-shared behaviors for the experiments to span the
	// space the paper's suite spans.
	var maxPrivate, maxProdCons, maxMigratory, maxSharedRead float64
	for _, n := range Names() {
		m := MustGet(n)
		if m.PrivateFrac > maxPrivate {
			maxPrivate = m.PrivateFrac
		}
		if m.ProdConsFrac > maxProdCons {
			maxProdCons = m.ProdConsFrac
		}
		if m.MigratoryFrac > maxMigratory {
			maxMigratory = m.MigratoryFrac
		}
		if m.SharedReadFrac > maxSharedRead {
			maxSharedRead = m.SharedReadFrac
		}
	}
	if maxPrivate < 0.9 {
		t.Error("no highly private workload in the suite")
	}
	if maxProdCons < 0.15 {
		t.Error("no pipeline-flavored workload in the suite")
	}
	if maxMigratory < 0.15 {
		t.Error("no migratory workload in the suite")
	}
	if maxSharedRead < 0.4 {
		t.Error("no read-shared workload in the suite")
	}
}
