package trace

import (
	"math"
	"testing"

	"repro/internal/mem"
)

func validMix() Mix {
	return Mix{
		Name:        "t",
		PrivateFrac: 0.5, SharedReadFrac: 0.2, SharedRWFrac: 0.1,
		ProdConsFrac: 0.1, MigratoryFrac: 0.1,
		WriteFrac:     0.3,
		PrivateBlocks: 100, SharedBlocks: 50, ProdConsBlocks: 20, MigratoryBlocks: 10,
		MigratoryPhase: 8,
		ZipfS:          1.5,
	}
}

func TestMixValidate(t *testing.T) {
	if err := validMix().Validate(); err != nil {
		t.Fatalf("valid mix rejected: %v", err)
	}
	corrupt := []func(*Mix){
		func(m *Mix) { m.PrivateFrac = 0.9 },                        // sums to 1.4
		func(m *Mix) { m.WriteFrac = 1.5 },                          // out of range
		func(m *Mix) { m.PrivateBlocks = 0 },                        // used but empty
		func(m *Mix) { m.SharedBlocks = 0 },                         // used but empty
		func(m *Mix) { m.ProdConsBlocks = 0 },                       // used but empty
		func(m *Mix) { m.MigratoryBlocks = 0 },                      // used but empty
		func(m *Mix) { m.ZipfS = 0.5 },                              // must be >1 or 0
		func(m *Mix) { m.PrivateFrac, m.SharedReadFrac = 0.1, 0.1 }, // sums to 0.5
	}
	for i, f := range corrupt {
		m := validMix()
		f(&m)
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: invalid mix accepted: %+v", i, m)
		}
	}
}

func TestScaled(t *testing.T) {
	m := validMix().Scaled(0.5)
	if m.PrivateBlocks != 50 || m.SharedBlocks != 25 || m.ProdConsBlocks != 10 || m.MigratoryBlocks != 5 {
		t.Fatalf("scaled sizes wrong: %+v", m)
	}
	tiny := validMix().Scaled(0.0001)
	if tiny.PrivateBlocks < 1 || tiny.MigratoryBlocks < 1 {
		t.Fatal("scaling must floor at 1 block")
	}
	// Fractions untouched.
	if tiny.PrivateFrac != 0.5 {
		t.Fatal("scaling changed fractions")
	}
}

func TestStreamLengthAndDeterminism(t *testing.T) {
	mk := func() *Stream {
		s, err := NewStream(validMix(), 2, 8, 500, 42)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, b := mk(), mk()
	n := 0
	for {
		x, ok1 := a.Next()
		y, ok2 := b.Next()
		if ok1 != ok2 {
			t.Fatal("streams diverged in length")
		}
		if !ok1 {
			break
		}
		if x != y {
			t.Fatalf("streams diverged at %d: %v vs %v", n, x, y)
		}
		n++
	}
	if n != 500 {
		t.Fatalf("stream produced %d accesses, want 500", n)
	}
}

// TestMemoReplayMatchesFreshGeneration pins the memoization contract: a
// stream served from the memo must be access-for-access identical to the
// seeded generation it replaced. (TestStreamLengthAndDeterminism compares
// two fresh generations — both streams there are built before either
// publishes — so the replay path needs its own equivalence check.)
func TestMemoReplayMatchesFreshGeneration(t *testing.T) {
	// A seed no other test uses, so the first stream is guaranteed to
	// generate rather than replay.
	const seed = 987_653
	fresh, err := NewStream(validMix(), 3, 8, 400, seed)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.replay != nil {
		t.Fatal("first stream unexpectedly served from the memo")
	}
	var want []mem.Access
	for {
		a, ok := fresh.Next()
		if !ok {
			break
		}
		want = append(want, a)
	}
	replayed, err := NewStream(validMix(), 3, 8, 400, seed)
	if err != nil {
		t.Fatal(err)
	}
	if replayed.replay == nil {
		t.Fatal("second stream with the same key did not hit the memo")
	}
	for i := 0; ; i++ {
		a, ok := replayed.Next()
		if !ok {
			if i != len(want) {
				t.Fatalf("replay ended after %d accesses, fresh produced %d", i, len(want))
			}
			break
		}
		if i >= len(want) || a != want[i] {
			t.Fatalf("replay diverged from fresh generation at access %d", i)
		}
	}
}

func TestStreamSeedsAndCoresDiffer(t *testing.T) {
	collect := func(core int, seed int64) []mem.Access {
		s, _ := NewStream(validMix(), core, 8, 200, seed)
		var out []mem.Access
		for {
			a, ok := s.Next()
			if !ok {
				return out
			}
			out = append(out, a)
		}
	}
	same := func(a, b []mem.Access) bool {
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if same(collect(0, 1), collect(1, 1)) {
		t.Error("different cores produced identical streams")
	}
	if same(collect(0, 1), collect(0, 2)) {
		t.Error("different seeds produced identical streams")
	}
}

func TestStreamRegionFractions(t *testing.T) {
	m := validMix()
	s, _ := NewStream(m, 0, 4, 50_000, 7)
	counts := map[Region]int{}
	total := 0
	for {
		a, ok := s.Next()
		if !ok {
			break
		}
		counts[RegionOf(a.Block())]++
		total++
	}
	want := map[Region]float64{
		RegionPrivate:    m.PrivateFrac,
		RegionSharedRead: m.SharedReadFrac,
		RegionSharedRW:   m.SharedRWFrac,
		RegionProdCons:   m.ProdConsFrac,
		RegionMigratory:  m.MigratoryFrac,
	}
	for r, frac := range want {
		got := float64(counts[r]) / float64(total)
		if math.Abs(got-frac) > 0.02 {
			t.Errorf("region %v: fraction %.3f, want %.3f±0.02", r, got, frac)
		}
	}
}

func TestPrivateRegionsDisjointAcrossCores(t *testing.T) {
	m := Mix{Name: "p", PrivateFrac: 1, WriteFrac: 0.5, PrivateBlocks: 5000}
	blocks := make([]map[mem.Block]bool, 4)
	for c := 0; c < 4; c++ {
		blocks[c] = map[mem.Block]bool{}
		s, _ := NewStream(m, c, 4, 20_000, 3)
		for {
			a, ok := s.Next()
			if !ok {
				break
			}
			blocks[c][a.Block()] = true
		}
	}
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			for b := range blocks[i] {
				if blocks[j][b] {
					t.Fatalf("cores %d and %d share private block %#x", i, j, uint64(b))
				}
			}
		}
	}
}

func TestSharedReadIsReadOnly(t *testing.T) {
	m := Mix{Name: "sr", SharedReadFrac: 1, SharedBlocks: 64}
	s, _ := NewStream(m, 0, 4, 5000, 1)
	for {
		a, ok := s.Next()
		if !ok {
			break
		}
		if a.Write {
			t.Fatal("shared-read region produced a store")
		}
		if RegionOf(a.Block()) != RegionSharedRead {
			t.Fatalf("access outside shared-read region: %v", a)
		}
	}
}

func TestZipfConcentratesAccesses(t *testing.T) {
	count := func(zipfS float64) int {
		m := Mix{Name: "z", PrivateFrac: 1, WriteFrac: 0, PrivateBlocks: 1000, ZipfS: zipfS}
		s, _ := NewStream(m, 0, 1, 20_000, 5)
		distinct := map[mem.Block]bool{}
		for {
			a, ok := s.Next()
			if !ok {
				break
			}
			distinct[a.Block()] = true
		}
		return len(distinct)
	}
	uniform, skewed := count(0), count(1.8)
	if skewed >= uniform {
		t.Fatalf("zipf (%d distinct) not more concentrated than uniform (%d)", skewed, uniform)
	}
}

func TestMigratoryTokenAdvances(t *testing.T) {
	m := Mix{Name: "m", MigratoryFrac: 1, MigratoryBlocks: 4, MigratoryPhase: 8}
	s, _ := NewStream(m, 0, 2, 64, 1)
	var blocks []mem.Block
	for {
		a, ok := s.Next()
		if !ok {
			break
		}
		blocks = append(blocks, a.Block())
	}
	// Within a phase the block is constant; across the run it must change.
	first, changed := blocks[0], false
	for _, b := range blocks {
		if b != first {
			changed = true
		}
	}
	if !changed {
		t.Fatal("migratory token never advanced")
	}
}

func TestRemaining(t *testing.T) {
	s, _ := NewStream(validMix(), 0, 4, 10, 1)
	if s.Remaining() != 10 {
		t.Fatalf("Remaining = %d, want 10", s.Remaining())
	}
	s.Next()
	if s.Remaining() != 9 {
		t.Fatalf("Remaining = %d, want 9", s.Remaining())
	}
}

func TestNewStreamValidation(t *testing.T) {
	if _, err := NewStream(Mix{Name: "bad"}, 0, 4, 10, 1); err == nil {
		t.Error("empty mix accepted")
	}
	if _, err := NewStream(validMix(), 9, 4, 10, 1); err == nil {
		t.Error("out-of-range core accepted")
	}
}

func TestRegionNames(t *testing.T) {
	for r := RegionPrivate; r < numRegions; r++ {
		if r.String() == "" {
			t.Fatal("empty region name")
		}
	}
}
