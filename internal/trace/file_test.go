package trace

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/mem"
)

func TestWriteParseRoundTrip(t *testing.T) {
	in := []mem.Access{
		{Addr: 0x40},
		{Addr: 0x1234c0, Write: true},
		{Addr: 0},
		{Addr: 0xffff_ffff_ffc0, Write: true},
	}
	var buf bytes.Buffer
	if err := WriteAccesses(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ParseAccesses(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("got %d accesses, want %d", len(out), len(in))
	}
	for i := range in {
		if in[i] != out[i] {
			t.Fatalf("access %d: %v != %v", i, in[i], out[i])
		}
	}
}

func TestWriteStreamRoundTrip(t *testing.T) {
	mk := func() *Stream {
		s, err := NewStream(validMix(), 0, 4, 100, 3)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	var buf bytes.Buffer
	if err := WriteStream(&buf, mk()); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseAccesses(&buf)
	if err != nil {
		t.Fatal(err)
	}
	ref := mk()
	for i := 0; ; i++ {
		a, ok := ref.Next()
		if !ok {
			if i != len(parsed) {
				t.Fatalf("length mismatch: %d vs %d", i, len(parsed))
			}
			break
		}
		if parsed[i] != a {
			t.Fatalf("access %d: %v != %v", i, parsed[i], a)
		}
	}
}

func TestFileSourceSkipsCommentsAndBlank(t *testing.T) {
	src := NewFileSource(strings.NewReader("# header\n\nL 40\n  # indented comment\nS 80\n"))
	var got []mem.Access
	for {
		a, ok := src.Next()
		if !ok {
			break
		}
		got = append(got, a)
	}
	if src.Err() != nil {
		t.Fatal(src.Err())
	}
	if len(got) != 2 || got[0].Write || !got[1].Write {
		t.Fatalf("parsed %v", got)
	}
}

func TestFileSourceAcceptsHexPrefixAndLowercase(t *testing.T) {
	accs, err := ParseAccesses(strings.NewReader("l 0x40\ns FF00\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(accs) != 2 || accs[0].Addr != 0x40 || accs[1].Addr != 0xff00 {
		t.Fatalf("parsed %v", accs)
	}
}

func TestFileSourceErrors(t *testing.T) {
	bad := []string{
		"X 40\n",       // unknown op
		"L\n",          // missing address
		"L zz\n",       // bad hex
		"L 40 extra\n", // trailing junk
	}
	for _, text := range bad {
		if _, err := ParseAccesses(strings.NewReader(text)); err == nil {
			t.Errorf("accepted malformed line %q", strings.TrimSpace(text))
		}
	}
}

func TestFileSourceStopsAfterError(t *testing.T) {
	src := NewFileSource(strings.NewReader("L 40\nbogus line here\nL 80\n"))
	if _, ok := src.Next(); !ok {
		t.Fatal("first line should parse")
	}
	if _, ok := src.Next(); ok {
		t.Fatal("malformed line should end the stream")
	}
	if src.Err() == nil {
		t.Fatal("no error reported")
	}
	if _, ok := src.Next(); ok {
		t.Fatal("stream resumed after error")
	}
}
