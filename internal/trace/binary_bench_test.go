package trace

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// benchAccessCount is the 1M-access trace size the acceptance bar is
// measured at: binary mmap replay must be >= 5x the text FileSource.
const benchAccessCount = 1_000_000

func benchStream(b *testing.B) *Stream {
	b.Helper()
	mix := Mix{
		Name:        "bench",
		PrivateFrac: 0.5, SharedReadFrac: 0.2, SharedRWFrac: 0.1,
		ProdConsFrac: 0.1, MigratoryFrac: 0.1,
		WriteFrac:     0.3,
		PrivateBlocks: 4096, SharedBlocks: 2048, ProdConsBlocks: 256, MigratoryBlocks: 64,
		MigratoryPhase: 8,
		ZipfS:          1.5,
	}
	s, err := NewStream(mix, 0, 1, benchAccessCount, 42)
	if err != nil {
		b.Fatal(err)
	}
	return s
}

func benchTraceFiles(b *testing.B) (textPath, binPath string) {
	b.Helper()
	dir := b.TempDir()

	textPath = filepath.Join(dir, "bench.trace")
	tf, err := os.Create(textPath)
	if err != nil {
		b.Fatal(err)
	}
	if err := WriteStream(tf, benchStream(b)); err != nil {
		b.Fatal(err)
	}
	if err := tf.Close(); err != nil {
		b.Fatal(err)
	}

	binPath = filepath.Join(dir, "bench.btrace")
	bf, err := os.Create(binPath)
	if err != nil {
		b.Fatal(err)
	}
	if err := WriteBinarySource(bf, benchStream(b)); err != nil {
		b.Fatal(err)
	}
	if err := bf.Close(); err != nil {
		b.Fatal(err)
	}
	return textPath, binPath
}

// BenchmarkTraceReplayText is the baseline: the line-oriented ASCII
// format through FileSource, one alloc-heavy parse per access.
func BenchmarkTraceReplayText(b *testing.B) {
	textPath, _ := benchTraceFiles(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := os.Open(textPath)
		if err != nil {
			b.Fatal(err)
		}
		src := NewFileSource(f)
		n := 0
		for {
			if _, ok := src.Next(); !ok {
				break
			}
			n++
		}
		if src.Err() != nil {
			b.Fatal(src.Err())
		}
		f.Close()
		if n != benchAccessCount {
			b.Fatalf("replayed %d accesses, want %d", n, benchAccessCount)
		}
	}
	b.ReportMetric(float64(benchAccessCount), "accesses/op")
}

// BenchmarkTraceReplayBinary replays the same trace through the
// mmap-backed zero-copy BinarySource.
func BenchmarkTraceReplayBinary(b *testing.B) {
	_, binPath := benchTraceFiles(b)
	src, err := OpenBinary(binPath)
	if err != nil {
		b.Fatal(err)
	}
	defer src.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src.Reset()
		n := 0
		for {
			if _, ok := src.Next(); !ok {
				break
			}
			n++
		}
		if src.Err() != nil {
			b.Fatal(src.Err())
		}
		if n != benchAccessCount {
			b.Fatalf("replayed %d accesses, want %d", n, benchAccessCount)
		}
	}
	b.ReportMetric(float64(benchAccessCount), "accesses/op")
}

// BenchmarkTraceReplayBinaryReaderAt measures the windowed io.ReaderAt
// fallback used when mmap is unavailable.
func BenchmarkTraceReplayBinaryReaderAt(b *testing.B) {
	_, binPath := benchTraceFiles(b)
	payload, err := os.ReadFile(binPath)
	if err != nil {
		b.Fatal(err)
	}
	src, err := NewBinaryReaderAt(bytes.NewReader(payload), int64(len(payload)))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src.Reset()
		n := 0
		for {
			if _, ok := src.Next(); !ok {
				break
			}
			n++
		}
		if src.Err() != nil {
			b.Fatal(src.Err())
		}
		if n != benchAccessCount {
			b.Fatalf("replayed %d accesses, want %d", n, benchAccessCount)
		}
	}
	b.ReportMetric(float64(benchAccessCount), "accesses/op")
}
