package trace

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/mem"
)

// encodeBinary is a test helper: accesses -> binary bytes.
func encodeBinary(t *testing.T, accs []mem.Access) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteBinaryAccesses(&buf, accs); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// drain pulls a source dry and returns the accesses plus its Err.
func drain(s *BinarySource) ([]mem.Access, error) {
	var out []mem.Access
	for {
		a, ok := s.Next()
		if !ok {
			break
		}
		out = append(out, a)
	}
	return out, s.Err()
}

func sampleAccesses() []mem.Access {
	return []mem.Access{
		{Addr: 0x1000, Write: false},
		{Addr: 0x1040, Write: true},
		{Addr: 0x0, Write: false},
		{Addr: 0xdead_beef_00, Write: true},
		{Addr: 0x1000, Write: false},
		{Addr: (1 << 62) - 64, Write: true}, // largest encodable block start
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	want := sampleAccesses()
	b := encodeBinary(t, want)
	got, err := ReadBinaryAccesses(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d accesses, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("access %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

// TestBinaryRoundTripProperty fuzzes text -> binary -> text over random
// streams: the three representations must agree access for access.
func TestBinaryRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(2000)
		accs := make([]mem.Access, n)
		for i := range accs {
			// Mix nearby and far addresses to exercise short and long deltas.
			var addr uint64
			if rng.Intn(2) == 0 && i > 0 {
				addr = uint64(accs[i-1].Addr) + uint64(rng.Intn(1<<12))
			} else {
				addr = rng.Uint64() % binaryMaxAddr
			}
			accs[i] = mem.Access{Addr: mem.Addr(addr), Write: rng.Intn(2) == 0}
		}

		var text bytes.Buffer
		if err := WriteAccesses(&text, accs); err != nil {
			t.Fatal(err)
		}
		parsed, err := ParseAccesses(bytes.NewReader(text.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		decoded, err := ReadBinaryAccesses(encodeBinary(t, accs))
		if err != nil {
			t.Fatal(err)
		}
		if len(parsed) != len(decoded) {
			t.Fatalf("trial %d: text got %d accesses, binary got %d", trial, len(parsed), len(decoded))
		}
		for i := range parsed {
			if parsed[i] != decoded[i] {
				t.Fatalf("trial %d access %d: text %v, binary %v", trial, i, parsed[i], decoded[i])
			}
		}
	}
}

func TestBinaryWriterRejectsHugeAddress(t *testing.T) {
	w := NewBinaryWriter(&bytes.Buffer{})
	if err := w.Write(mem.Access{Addr: 1 << 62}); err == nil {
		t.Fatal("want an error for an address outside the 2^62 format range")
	}
}

func TestBinaryEmptyTrace(t *testing.T) {
	b := encodeBinary(t, nil)
	if len(b) != binaryHeaderLen {
		t.Fatalf("empty trace is %d bytes, want the bare %d-byte header", len(b), binaryHeaderLen)
	}
	s, err := NewBinaryBytes(b)
	if err != nil {
		t.Fatal(err)
	}
	got, err := drain(s)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty trace: got %d accesses, err %v; want 0, nil", len(got), err)
	}
}

func TestBinaryCorruptHeader(t *testing.T) {
	cases := map[string][]byte{
		"zero-byte file":   {},
		"truncated header": binaryMagic[:3],
		"bad magic":        []byte("NOPE\x01\x00\x00\x00"),
		"bad version":      {'S', 'T', 'R', 'B', 99, 0, 0, 0},
	}
	for name, b := range cases {
		if _, err := NewBinaryBytes(b); err == nil {
			t.Errorf("%s: want a header error", name)
		}
	}
}

func TestBinaryMidRecordEOF(t *testing.T) {
	// A multi-byte varint cut after its continuation byte.
	full := encodeBinary(t, []mem.Access{{Addr: 0x12345678, Write: true}})
	cut := full[:len(full)-1]
	s, err := NewBinaryBytes(cut)
	if err != nil {
		t.Fatal(err)
	}
	got, err := drain(s)
	if err == nil {
		t.Fatalf("want a mid-record error, got %d accesses and nil", len(got))
	}
	if !strings.Contains(err.Error(), "mid-record") {
		t.Fatalf("error %q does not name the mid-record truncation", err)
	}
}

func TestBinaryOverflowRecord(t *testing.T) {
	// Ten 0xff bytes: a varint past 64 bits.
	b := append(encodeBinary(t, nil), bytes.Repeat([]byte{0xff}, 10)...)
	s, err := NewBinaryBytes(b)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := drain(s); err == nil || !strings.Contains(err.Error(), "overflows") {
		t.Fatalf("want an overflow error, got %v", err)
	}
}

// TestBinaryRangeRecord pins the decoder's address-range check (found by
// FuzzBinarySource): two in-format deltas whose sum crosses the writer's
// 2^62 ceiling must be rejected, not silently decoded into an address the
// writer could never have produced.
func TestBinaryRangeRecord(t *testing.T) {
	b := encodeBinary(t, nil)
	for i := 0; i < 2; i++ {
		b = binary.AppendUvarint(b, zigzag(1<<61)<<1) // read at prev + 2^61
	}
	s, err := NewBinaryBytes(b)
	if err != nil {
		t.Fatal(err)
	}
	got, err := drain(s)
	if err == nil || !strings.Contains(err.Error(), "range") {
		t.Fatalf("want a range error, got %d accesses and %v", len(got), err)
	}
}

// TestBinaryReaderAtMatchesBytes runs the streaming window path over the
// same payload, including one sized to split records across window refills.
func TestBinaryReaderAtMatchesBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	accs := make([]mem.Access, 10_000)
	for i := range accs {
		accs[i] = mem.Access{Addr: mem.Addr(rng.Uint64() % binaryMaxAddr), Write: rng.Intn(2) == 0}
	}
	b := encodeBinary(t, accs)

	s, err := NewBinaryReaderAt(bytes.NewReader(b), int64(len(b)))
	if err != nil {
		t.Fatal(err)
	}
	got, err := drain(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(accs) {
		t.Fatalf("streamed %d accesses, want %d", len(got), len(accs))
	}
	for i := range accs {
		if got[i] != accs[i] {
			t.Fatalf("access %d: got %v, want %v", i, got[i], accs[i])
		}
	}
}

func TestBinaryReaderAtMidRecordEOF(t *testing.T) {
	full := encodeBinary(t, []mem.Access{{Addr: 0x1234567890, Write: true}})
	cut := full[:len(full)-1]
	s, err := NewBinaryReaderAt(bytes.NewReader(cut), int64(len(cut)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := drain(s); err == nil || !strings.Contains(err.Error(), "mid-record") {
		t.Fatalf("want a mid-record error, got %v", err)
	}
}

func TestOpenBinaryMmapAndDetect(t *testing.T) {
	dir := t.TempDir()
	accs := sampleAccesses()

	binPath := filepath.Join(dir, "bin.trace")
	if err := os.WriteFile(binPath, encodeBinary(t, accs), 0o644); err != nil {
		t.Fatal(err)
	}
	textPath := filepath.Join(dir, "text.trace")
	var text bytes.Buffer
	if err := WriteAccesses(&text, accs); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(textPath, text.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	if ok, err := IsBinaryTrace(binPath); err != nil || !ok {
		t.Fatalf("IsBinaryTrace(bin) = %v, %v; want true, nil", ok, err)
	}
	if ok, err := IsBinaryTrace(textPath); err != nil || ok {
		t.Fatalf("IsBinaryTrace(text) = %v, %v; want false, nil", ok, err)
	}

	s, err := OpenBinary(binPath)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	got, err := drain(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(accs) {
		t.Fatalf("mmap replay got %d accesses, want %d", len(got), len(accs))
	}
	for i := range accs {
		if got[i] != accs[i] {
			t.Fatalf("access %d: got %v, want %v", i, got[i], accs[i])
		}
	}

	// Reset rewinds to the first record.
	s.Reset()
	again, err := drain(s)
	if err != nil || len(again) != len(accs) {
		t.Fatalf("after Reset: %d accesses, err %v", len(again), err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestBinaryReplayAllocFree pins the replay hot path at zero allocations
// per access, for both the in-memory (mmap) and streaming window paths.
func TestBinaryReplayAllocFree(t *testing.T) {
	accs := make([]mem.Access, 50_000)
	rng := rand.New(rand.NewSource(3))
	for i := range accs {
		accs[i] = mem.Access{Addr: mem.Addr(rng.Uint64() % (1 << 32)), Write: rng.Intn(2) == 0}
	}
	var buf bytes.Buffer
	if err := WriteBinaryAccesses(&buf, accs); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()

	check := func(name string, mk func() *BinarySource) {
		s := mk()
		n := 0
		allocs := testing.AllocsPerRun(10, func() {
			s.Reset()
			for {
				if _, ok := s.Next(); !ok {
					break
				}
				n++
			}
			if s.Err() != nil {
				t.Fatal(s.Err())
			}
		})
		if n == 0 {
			t.Fatalf("%s: replayed nothing", name)
		}
		if allocs != 0 {
			t.Errorf("%s: %v allocs per full replay, want 0", name, allocs)
		}
	}
	check("bytes", func() *BinarySource {
		s, err := NewBinaryBytes(b)
		if err != nil {
			t.Fatal(err)
		}
		return s
	})
	check("reader-at", func() *BinarySource {
		s, err := NewBinaryReaderAt(bytes.NewReader(b), int64(len(b)))
		if err != nil {
			t.Fatal(err)
		}
		return s
	})
}
