package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"syscall"

	"repro/internal/mem"
)

// Binary trace format. The text format (file.go) costs an allocation and a
// strconv parse per access — fine for inspection, hostile to big-config
// replay. The binary format is the hot-path twin: a fixed header followed by
// one varint-delta record per access, decoded in batches with zero
// allocations per access, so trace replay is never the bottleneck of a
// 128/256-core run.
//
// Layout:
//
//	offset 0: magic "STRB" (4 bytes)
//	offset 4: version (1 byte, currently 1)
//	offset 5: reserved (3 bytes, zero)
//	offset 8: records until EOF
//
// Each record is a single unsigned varint (binary.Uvarint) encoding
//
//	u = zigzag(addr - prevAddr) << 1 | writeBit
//
// where prevAddr starts at 0 and zigzag is the usual signed-to-unsigned
// fold (0,-1,1,-2 → 0,1,2,3). Consecutive accesses are close in the address
// space, so most records are 1-3 bytes — about 4x smaller than the text
// form. The op bit rides in the varint's low bit, which caps addresses at
// 2^62; the writer rejects anything larger (no simulated machine comes
// close). A record split by EOF is a hard error: truncation never passes as
// a short trace.

// binaryMagic identifies a binary trace file.
var binaryMagic = [4]byte{'S', 'T', 'R', 'B'}

const (
	// binaryVersion is the current format version.
	binaryVersion = 1
	// binaryHeaderLen is the fixed header size in bytes.
	binaryHeaderLen = 8
	// binaryMaxAddr bounds encodable addresses: the op bit occupies the
	// varint's low bit, leaving 63 bits for the zigzag delta, which covers
	// signed deltas of magnitude < 2^62.
	binaryMaxAddr = 1 << 62
	// binaryBatch is how many records a BinarySource decodes per refill.
	binaryBatch = 512
)

// zigzag folds a signed delta into an unsigned varint-friendly value.
func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

// unzigzag inverts zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// BinaryWriter encodes accesses into the binary trace format. Create one
// with NewBinaryWriter, Write each access, then Flush.
type BinaryWriter struct {
	bw      *bufio.Writer
	prev    uint64
	started bool
	scratch [binary.MaxVarintLen64]byte
}

// NewBinaryWriter returns a writer; the header is emitted on the first
// Write (or Flush), so an abandoned writer leaves w untouched.
func NewBinaryWriter(w io.Writer) *BinaryWriter {
	return &BinaryWriter{bw: bufio.NewWriter(w)}
}

// header emits the magic/version header once.
func (w *BinaryWriter) header() error {
	if w.started {
		return nil
	}
	w.started = true
	var h [binaryHeaderLen]byte
	copy(h[:], binaryMagic[:])
	h[4] = binaryVersion
	_, err := w.bw.Write(h[:])
	return err
}

// Write appends one access.
func (w *BinaryWriter) Write(a mem.Access) error {
	if uint64(a.Addr) >= binaryMaxAddr {
		return fmt.Errorf("trace: address %#x exceeds the binary format's 2^62 range", uint64(a.Addr))
	}
	if err := w.header(); err != nil {
		return err
	}
	u := zigzag(int64(uint64(a.Addr)-w.prev)) << 1
	if a.Write {
		u |= 1
	}
	w.prev = uint64(a.Addr)
	n := binary.PutUvarint(w.scratch[:], u)
	_, err := w.bw.Write(w.scratch[:n])
	return err
}

// Flush writes any buffered records (and the header, so an empty trace is
// still a well-formed file).
func (w *BinaryWriter) Flush() error {
	if err := w.header(); err != nil {
		return err
	}
	return w.bw.Flush()
}

// WriteBinaryAccesses writes accesses as one binary trace.
func WriteBinaryAccesses(w io.Writer, accs []mem.Access) error {
	bw := NewBinaryWriter(w)
	for _, a := range accs {
		if err := bw.Write(a); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Source is the access-stream contract shared by generators, text replay
// and binary replay (it mirrors coherence.AccessSource, which this package
// cannot import).
type Source interface {
	Next() (mem.Access, bool)
}

// WriteBinarySource drains any access source into w as a binary trace.
func WriteBinarySource(w io.Writer, src Source) error {
	bw := NewBinaryWriter(w)
	for {
		a, ok := src.Next()
		if !ok {
			break
		}
		if err := bw.Write(a); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// checkBinaryHeader validates the magic and version of a header block.
func checkBinaryHeader(h []byte) error {
	if len(h) < binaryHeaderLen {
		return fmt.Errorf("trace: truncated binary trace: %d-byte file, want at least the %d-byte header", len(h), binaryHeaderLen)
	}
	if [4]byte(h[:4]) != binaryMagic {
		return fmt.Errorf("trace: bad magic %q, want %q", h[:4], binaryMagic[:])
	}
	if h[4] != binaryVersion {
		return fmt.Errorf("trace: unsupported binary trace version %d (want %d)", h[4], binaryVersion)
	}
	return nil
}

// IsBinaryTrace sniffs whether the file at path starts with the binary
// trace magic. Files too short to carry the magic are not binary (they are
// handed to the text parser, which reports its own error).
func IsBinaryTrace(path string) (bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return false, err
	}
	defer f.Close()
	var m [4]byte
	if _, err := io.ReadFull(f, m[:]); err != nil {
		return false, nil // shorter than the magic: not binary
	}
	return m == binaryMagic, nil
}

// BinarySource replays a binary trace as an access source, decoding records
// in batches with zero allocations per access. The fast path serves whole
// files mapped (or held) in memory; the io.ReaderAt fallback streams chunks
// through a fixed window buffer, so either way Next never allocates.
//
//stash:tileowned
type BinarySource struct {
	// data is the decode window: the whole payload in mapped/bytes mode, a
	// sliding chunk in ReaderAt mode.
	data []byte
	off  int

	// ReaderAt streaming state. r == nil means data holds the whole payload.
	r      io.ReaderAt
	roff   int64 // file offset of data[len(data)] (next byte to fetch)
	rsize  int64 // total file size
	window []byte

	prev  uint64
	batch [binaryBatch]mem.Access
	bi    int
	bn    int
	err   error
	done  bool

	// mapped and f hold mmap-mode resources for Close.
	mapped []byte
	f      *os.File
}

// NewBinaryBytes replays a binary trace held in memory. The source aliases
// b; the caller must keep it immutable until the source is drained.
func NewBinaryBytes(b []byte) (*BinarySource, error) {
	if err := checkBinaryHeader(b); err != nil {
		return nil, err
	}
	return &BinarySource{data: b[binaryHeaderLen:]}, nil
}

// NewBinaryReaderAt replays a binary trace through an io.ReaderAt of the
// given total size — the fallback for platforms or files where mmap is
// unavailable. It reads fixed-size chunks into one reusable window buffer.
func NewBinaryReaderAt(r io.ReaderAt, size int64) (*BinarySource, error) {
	const windowSize = 1 << 20
	var h [binaryHeaderLen]byte
	if size < binaryHeaderLen {
		return nil, fmt.Errorf("trace: truncated binary trace: %d-byte file, want at least the %d-byte header", size, binaryHeaderLen)
	}
	if _, err := r.ReadAt(h[:], 0); err != nil {
		return nil, fmt.Errorf("trace: reading binary trace header: %w", err)
	}
	if err := checkBinaryHeader(h[:]); err != nil {
		return nil, err
	}
	return &BinarySource{
		r:      r,
		roff:   binaryHeaderLen,
		rsize:  size,
		window: make([]byte, 0, windowSize),
	}, nil
}

// OpenBinary opens the binary trace at path for zero-copy replay: the file
// is mapped read-only (syscall.Mmap) and decoded in place; when mapping
// fails (exotic filesystems, empty payloads) it degrades to the ReaderAt
// window path over the same descriptor. Close releases the mapping and the
// file.
func OpenBinary(path string) (*BinarySource, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	size := st.Size()
	if size >= binaryHeaderLen {
		if m, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED); err == nil {
			s, err := NewBinaryBytes(m)
			if err != nil {
				syscall.Munmap(m)
				f.Close()
				return nil, fmt.Errorf("trace: %s: %w", path, err)
			}
			s.mapped = m
			s.f = f
			return s, nil
		}
	}
	s, err := NewBinaryReaderAt(f, size)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("trace: %s: %w", path, err)
	}
	s.f = f
	return s, nil
}

// Next implements the access-source contract. A decode error ends the
// stream; Err reports it.
//
//stash:hotpath
func (s *BinarySource) Next() (mem.Access, bool) {
	if s.bi < s.bn {
		a := s.batch[s.bi]
		s.bi++
		return a, true
	}
	if s.done || s.err != nil {
		return mem.Access{}, false
	}
	s.fill()
	if s.bi < s.bn {
		a := s.batch[s.bi]
		s.bi++
		return a, true
	}
	return mem.Access{}, false
}

// fill decodes the next batch of records from the window, refilling it from
// the ReaderAt when streaming. The varint decode is inlined (the loop from
// binary.Uvarint) so the whole batch runs without a call per record.
//
//stash:hotpath
func (s *BinarySource) fill() {
	s.bi, s.bn = 0, 0
	for s.bn < binaryBatch {
		if s.off >= len(s.data) {
			if !s.refill() {
				return
			}
		}
		var u uint64
		var shift uint
		i := s.off
		ok := false
		for i < len(s.data) {
			b := s.data[i]
			i++
			if b < 0x80 {
				if shift == 63 && b > 1 {
					s.failOverflow(s.off)
					return
				}
				u |= uint64(b) << shift
				ok = true
				break
			}
			u |= uint64(b&0x7f) << shift
			shift += 7
			if shift >= 64 {
				s.failOverflow(s.off)
				return
			}
		}
		if !ok {
			// The window ended mid-varint. Streaming mode may just need more
			// bytes; a whole-payload window means the file was cut short.
			if s.refill() {
				continue
			}
			if s.err == nil {
				s.failTruncated(s.off)
			}
			return
		}
		start := s.off
		s.off = i
		s.prev += uint64(unzigzag(u >> 1))
		// The writer never emits an address at or beyond binaryMaxAddr, so
		// an accumulated delta landing there (including any wrap through
		// zero) is corruption, not data.
		if s.prev >= binaryMaxAddr {
			s.failRange(start)
			return
		}
		s.batch[s.bn] = mem.Access{Addr: mem.Addr(s.prev), Write: u&1 != 0}
		s.bn++
	}
}

// refill slides the streaming window forward, carrying over any partial
// record tail. It reports whether new bytes are available; in
// whole-payload mode it only marks the stream done.
//
//stash:hotpath
func (s *BinarySource) refill() bool {
	if s.r == nil {
		if s.off >= len(s.data) {
			s.done = true
		}
		return false
	}
	if s.roff >= s.rsize && s.off >= len(s.data) {
		s.done = true
		return false
	}
	if s.roff >= s.rsize {
		return false // tail bytes remain but no more file: caller reports mid-record EOF
	}
	// Move the undecoded tail to the front of the window and top up.
	tail := len(s.data) - s.off
	copy(s.window[:cap(s.window)], s.data[s.off:])
	want := cap(s.window) - tail
	if max := s.rsize - s.roff; int64(want) > max {
		want = int(max)
	}
	n, err := s.r.ReadAt(s.window[tail:tail+want], s.roff)
	if err != nil && (err != io.EOF || n != want) {
		s.failRead(s.roff, err)
		return false
	}
	s.roff += int64(n)
	s.data = s.window[:tail+n]
	s.off = 0
	return n > 0
}

// The fail helpers build decode errors off the annotated hot path (error
// construction boxes its operands; it only ever runs once, on a corrupt
// trace).

func (s *BinarySource) failOverflow(off int) {
	s.err = fmt.Errorf("trace: binary record at payload offset %d overflows 64 bits", off)
}

func (s *BinarySource) failRange(off int) {
	s.err = fmt.Errorf("trace: binary record at payload offset %d decodes to an address outside the format's 2^62 range", off)
}

func (s *BinarySource) failTruncated(off int) {
	s.err = fmt.Errorf("trace: binary trace ends mid-record at payload offset %d", off)
}

func (s *BinarySource) failRead(off int64, err error) {
	s.err = fmt.Errorf("trace: reading binary trace at offset %d: %w", off, err)
}

// Err returns the first decode or read error, or nil at a clean end.
func (s *BinarySource) Err() error { return s.err }

// Close unmaps and closes the underlying file, if any. The source must not
// be used afterwards.
func (s *BinarySource) Close() error {
	var err error
	if s.mapped != nil {
		err = syscall.Munmap(s.mapped)
		s.mapped = nil
		s.data = nil
	}
	if s.f != nil {
		if cerr := s.f.Close(); err == nil {
			err = cerr
		}
		s.f = nil
	}
	return err
}

// Reset rewinds the source to the first record, clearing any error. Used
// by benchmarks that replay one trace repeatedly.
func (s *BinarySource) Reset() {
	s.prev, s.bi, s.bn, s.err, s.done = 0, 0, 0, nil, false
	if s.r != nil {
		s.roff = binaryHeaderLen
		s.data = s.window[:0]
		s.off = 0
		return
	}
	if s.mapped != nil {
		s.data = s.mapped[binaryHeaderLen:]
	}
	s.off = 0
}

// ReadBinaryAccesses decodes a whole binary trace into memory; tests and
// small tools use it.
func ReadBinaryAccesses(b []byte) ([]mem.Access, error) {
	s, err := NewBinaryBytes(b)
	if err != nil {
		return nil, err
	}
	var out []mem.Access
	for {
		a, ok := s.Next()
		if !ok {
			break
		}
		out = append(out, a)
	}
	return out, s.Err()
}
