// Package trace generates the synthetic multi-core memory reference streams
// that drive the simulator. The generators substitute for the PARSEC and
// SPLASH-2 binaries the paper runs (see DESIGN.md): what the directory
// experiments depend on is the *sharing mix* of the access stream — how much
// of it is core-private, read-shared, write-shared, producer-consumer or
// migratory, over what working-set size and with what locality — and the Mix
// type exposes exactly those knobs.
//
// Streams are deterministic functions of (mix, core id, seed), so every
// experiment is reproducible.
package trace

import (
	"fmt"
	"math/rand"

	"repro/internal/mem"
)

// Region classifies the target of one generated access.
type Region uint8

// The generated sharing regions.
const (
	RegionPrivate    Region = iota // per-core data, never shared
	RegionSharedRead               // read-mostly data shared by all cores
	RegionSharedRW                 // read-write data shared by all cores
	RegionProdCons                 // written by core i, read by core i+1
	RegionMigratory                // read-modify-written by cores in turn
	numRegions
)

// String names the region.
func (r Region) String() string {
	switch r {
	case RegionPrivate:
		return "private"
	case RegionSharedRead:
		return "shared-read"
	case RegionSharedRW:
		return "shared-rw"
	case RegionProdCons:
		return "producer-consumer"
	case RegionMigratory:
		return "migratory"
	}
	return fmt.Sprintf("Region(%d)", uint8(r))
}

// Mix parameterizes a workload's sharing behavior. The five fractions must
// sum to 1 (±1e-6).
type Mix struct {
	Name string

	// Region selection probabilities.
	PrivateFrac    float64
	SharedReadFrac float64
	SharedRWFrac   float64
	ProdConsFrac   float64
	MigratoryFrac  float64

	// WriteFrac is the store probability within the private and shared-RW
	// regions (shared-read is always loads; producer-consumer and
	// migratory have their own fixed read/write structure).
	WriteFrac float64

	// Working-set sizes in blocks.
	PrivateBlocks   int // per core
	SharedBlocks    int // each of shared-read and shared-RW
	ProdConsBlocks  int // per producer-consumer channel
	MigratoryBlocks int

	// ZipfS skews block popularity within each region (rand.Zipf s
	// parameter, > 1). Zero selects uniformly.
	ZipfS float64

	// MigratoryPhase is how many accesses a core performs before the
	// migratory token advances; it controls hand-off frequency.
	MigratoryPhase int
}

// Validate checks the mix.
func (m Mix) Validate() error {
	sum := m.PrivateFrac + m.SharedReadFrac + m.SharedRWFrac + m.ProdConsFrac + m.MigratoryFrac
	if sum < 1-1e-6 || sum > 1+1e-6 {
		return fmt.Errorf("trace: %s: region fractions sum to %v, want 1", m.Name, sum)
	}
	if m.WriteFrac < 0 || m.WriteFrac > 1 {
		return fmt.Errorf("trace: %s: write fraction %v out of [0,1]", m.Name, m.WriteFrac)
	}
	if m.PrivateFrac > 0 && m.PrivateBlocks < 1 {
		return fmt.Errorf("trace: %s: private region used but empty", m.Name)
	}
	if (m.SharedReadFrac > 0 || m.SharedRWFrac > 0) && m.SharedBlocks < 1 {
		return fmt.Errorf("trace: %s: shared region used but empty", m.Name)
	}
	if m.ProdConsFrac > 0 && m.ProdConsBlocks < 1 {
		return fmt.Errorf("trace: %s: producer-consumer region used but empty", m.Name)
	}
	if m.MigratoryFrac > 0 && m.MigratoryBlocks < 1 {
		return fmt.Errorf("trace: %s: migratory region used but empty", m.Name)
	}
	if m.ZipfS != 0 && m.ZipfS <= 1 {
		return fmt.Errorf("trace: %s: ZipfS must be > 1 (or 0 for uniform), got %v", m.Name, m.ZipfS)
	}
	return nil
}

// Scaled returns a copy of the mix with every working-set size multiplied
// by f (minimum 1 block). Experiments use it to shrink workloads for quick
// benches without changing the sharing shape.
func (m Mix) Scaled(f float64) Mix {
	scale := func(n int) int {
		v := int(float64(n) * f)
		if v < 1 {
			v = 1
		}
		return v
	}
	s := m
	s.PrivateBlocks = scale(m.PrivateBlocks)
	s.SharedBlocks = scale(m.SharedBlocks)
	s.ProdConsBlocks = scale(m.ProdConsBlocks)
	s.MigratoryBlocks = scale(m.MigratoryBlocks)
	return s
}

// Address-space layout: regions are laid out at fixed block offsets far
// enough apart that no realistic scaling overlaps them. The per-core and
// per-channel strides are deliberately odd (not multiples of any power of
// two a cache could index with): a power-of-two stride would collapse every
// core's private block k onto the same LLC/directory set, manufacturing
// conflict behavior no real address-space layout exhibits.
const (
	baseSharedRead mem.Block = 0x0010_0000
	baseSharedRW   mem.Block = 0x0020_0000
	baseMigratory  mem.Block = 0x0030_0000
	baseProdCons   mem.Block = 0x0040_0000 // + channel * prodConsStride
	basePrivate    mem.Block = 0x0100_0000 // + core * privateStride
	prodConsStride mem.Block = 0x0001_0037
	privateStride  mem.Block = 0x0001_4CB5
)

// Stream generates one core's access sequence. It implements the
// coherence.AccessSource contract (Next).
//
//stash:tileowned
type Stream struct {
	mix    Mix
	core   int
	cores  int
	length int
	pos    int
	rng    *rand.Rand

	zipfPrivate  *rand.Zipf
	zipfShared   *rand.Zipf
	zipfProdCons *rand.Zipf

	// Memoization (see memo.go): replay is a previously recorded identical
	// stream to serve instead of generating; rec accumulates this stream's
	// output for publication once fully consumed.
	replay []mem.Access
	rec    []mem.Access
	key    streamKey
}

// NewStream builds core's stream of length accesses. The same (mix, core,
// cores, length, seed) tuple always produces the same stream.
func NewStream(mix Mix, core, cores, length int, seed int64) (*Stream, error) {
	if err := mix.Validate(); err != nil {
		return nil, err
	}
	if core < 0 || core >= cores {
		return nil, fmt.Errorf("trace: core %d out of range [0,%d)", core, cores)
	}
	key := streamKey{mix: mix, core: core, cores: cores, length: length, seed: seed}
	if t := memoLookup(key); t != nil {
		return &Stream{mix: mix, core: core, cores: cores, length: length, replay: t}, nil
	}
	rng := rand.New(rand.NewSource(seed*1_000_003 + int64(core)*7919 + 1))
	s := &Stream{mix: mix, core: core, cores: cores, length: length, rng: rng, key: key}
	if length > 0 && length <= memoMaxStream {
		s.rec = make([]mem.Access, 0, length)
	}
	if mix.ZipfS > 1 {
		if mix.PrivateBlocks > 0 {
			s.zipfPrivate = rand.NewZipf(rng, mix.ZipfS, 1, uint64(mix.PrivateBlocks-1))
		}
		if mix.SharedBlocks > 0 {
			s.zipfShared = rand.NewZipf(rng, mix.ZipfS, 1, uint64(mix.SharedBlocks-1))
		}
		if mix.ProdConsBlocks > 0 {
			s.zipfProdCons = rand.NewZipf(rng, mix.ZipfS, 1, uint64(mix.ProdConsBlocks-1))
		}
	}
	return s, nil
}

// pick returns an index in [0, n) — Zipf-skewed when configured.
//
//stash:hotpath
func (s *Stream) pick(n int, z *rand.Zipf) int {
	if z != nil {
		return int(z.Uint64()) % n
	}
	return s.rng.Intn(n)
}

// Next implements the access-source contract.
//
//stash:hotpath
func (s *Stream) Next() (mem.Access, bool) {
	if s.pos >= s.length {
		return mem.Access{}, false
	}
	step := s.pos
	s.pos++
	if s.replay != nil {
		return s.replay[step], true
	}

	r := s.rng.Float64()
	m := &s.mix
	var a mem.Access
	switch {
	case r < m.PrivateFrac:
		b := basePrivate + mem.Block(s.core)*privateStride + mem.Block(s.pick(m.PrivateBlocks, s.zipfPrivate))
		a = mem.Access{Addr: mem.AddrOf(b), Write: s.rng.Float64() < m.WriteFrac}

	case r < m.PrivateFrac+m.SharedReadFrac:
		b := baseSharedRead + mem.Block(s.pick(m.SharedBlocks, s.zipfShared))
		a = mem.Access{Addr: mem.AddrOf(b)}

	case r < m.PrivateFrac+m.SharedReadFrac+m.SharedRWFrac:
		b := baseSharedRW + mem.Block(s.pick(m.SharedBlocks, s.zipfShared))
		a = mem.Access{Addr: mem.AddrOf(b), Write: s.rng.Float64() < m.WriteFrac}

	case r < m.PrivateFrac+m.SharedReadFrac+m.SharedRWFrac+m.ProdConsFrac:
		// Each core produces into its own channel and consumes its left
		// neighbor's; half the references produce, half consume.
		if s.rng.Intn(2) == 0 {
			ch := mem.Block(s.core)
			b := baseProdCons + ch*prodConsStride + mem.Block(s.pick(m.ProdConsBlocks, s.zipfProdCons))
			a = mem.Access{Addr: mem.AddrOf(b), Write: true}
		} else {
			ch := mem.Block((s.core + s.cores - 1) % s.cores)
			b := baseProdCons + ch*prodConsStride + mem.Block(s.pick(m.ProdConsBlocks, s.zipfProdCons))
			a = mem.Access{Addr: mem.AddrOf(b)}
		}

	default:
		// Migratory: a token advances every MigratoryPhase steps; all
		// cores track the same schedule, so each block is read-modify-
		// written by (roughly) one core at a time and then hands off.
		phase := m.MigratoryPhase
		if phase <= 0 {
			phase = 8
		}
		slot := step / phase
		b := baseMigratory + mem.Block(slot%m.MigratoryBlocks)
		// Alternate read/write to form the RMW pattern.
		a = mem.Access{Addr: mem.AddrOf(b), Write: step%2 == 1}
	}
	if s.rec != nil {
		s.rec = append(s.rec, a)
		if len(s.rec) == s.length {
			memoPublish(s.key, s.rec)
			s.rec = nil
		}
	}
	return a, true
}

// Remaining returns how many accesses the stream will still produce.
//
//stash:hotpath
func (s *Stream) Remaining() int { return s.length - s.pos }

// RegionOf classifies a generated block address back into its region;
// profiling and tests use it.
func RegionOf(b mem.Block) Region {
	switch {
	case b >= basePrivate:
		return RegionPrivate
	case b >= baseProdCons:
		return RegionProdCons
	case b >= baseMigratory:
		return RegionMigratory
	case b >= baseSharedRW:
		return RegionSharedRW
	default:
		return RegionSharedRead
	}
}
