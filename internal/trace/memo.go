package trace

import (
	"sync"

	"repro/internal/mem"
)

// Trace memoization. A Stream is a pure function of (mix, core, cores,
// length, seed), and the simulator replays identical streams constantly:
// every directory organization in a sweep runs the same workload, and
// benchmarks re-run one configuration back to back. Zipf sampling is the
// expensive part (an exp and a log per draw), so the first full generation
// of a stream records the emitted accesses and later streams with the same
// key replay the recording verbatim. Replay is bit-identical by
// construction — Next has no observable effect besides the accesses it
// returns.
//
// Only streams that are consumed to completion are published; a partially
// drained stream (e.g. a halted simulation) records nothing. The cache is
// bounded and evicts whole traces FIFO, so long-lived processes cannot
// grow it without limit.

// streamKey identifies one deterministic stream. Mix contains only
// comparable fields, so the struct is a valid map key.
type streamKey struct {
	mix    Mix
	core   int
	cores  int
	length int
	seed   int64
}

const (
	// memoMaxStream is the longest stream worth recording (accesses).
	memoMaxStream = 1 << 20
	// memoBudget bounds the total accesses retained across all cached
	// traces (~64 MiB at 16 bytes per access).
	memoBudget = 1 << 22
)

// memoCache is the process-wide trace cache. It is deliberately global —
// every fabric in the process replays the same workloads — and therefore
// shared across parallel tiles; the embedded mutex serializes access.
//
//stash:shared process-wide cache guarded by its embedded Mutex; replayed content is identical to generated content
type memoCache struct {
	sync.Mutex
	traces map[streamKey][]mem.Access
	order  []streamKey // insertion order, for FIFO eviction
	held   int         // total accesses currently cached
}

var memo memoCache

// memoLookup returns the recorded trace for key, or nil.
func memoLookup(key streamKey) []mem.Access {
	memo.Lock()
	t := memo.traces[key]
	memo.Unlock()
	return t
}

// memoPublish stores a fully generated trace, evicting oldest entries to
// stay within budget.
//
//stash:fold mutex-serialized and order-commutative: replay equals generation, so which tile publishes first is unobservable
func memoPublish(key streamKey, t []mem.Access) {
	if len(t) > memoBudget {
		return
	}
	memo.Lock()
	defer memo.Unlock()
	if memo.traces == nil {
		memo.traces = make(map[streamKey][]mem.Access)
	}
	if _, ok := memo.traces[key]; ok {
		return
	}
	for memo.held+len(t) > memoBudget && len(memo.order) > 0 {
		old := memo.order[0]
		memo.order = memo.order[1:]
		memo.held -= len(memo.traces[old])
		delete(memo.traces, old)
	}
	memo.traces[key] = t
	memo.order = append(memo.order, key)
	memo.held += len(t)
}
