package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/mem"
)

// Trace file format: one access per line, `L <hex-addr>` or `S <hex-addr>`
// (load/store), with `#`-prefixed comment lines and blank lines ignored.
// The format is what cmd/tracegen -raw emits and what FileSource consumes,
// so externally captured traces can drive the simulator.

// WriteAccesses writes accesses in the trace file format.
func WriteAccesses(w io.Writer, accs []mem.Access) error {
	bw := bufio.NewWriter(w)
	for _, a := range accs {
		op := byte('L')
		if a.Write {
			op = 'S'
		}
		if _, err := fmt.Fprintf(bw, "%c %x\n", op, uint64(a.Addr)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteStream drains a stream into w in the trace file format.
func WriteStream(w io.Writer, s *Stream) error {
	bw := bufio.NewWriter(w)
	for {
		a, ok := s.Next()
		if !ok {
			break
		}
		op := byte('L')
		if a.Write {
			op = 'S'
		}
		if _, err := fmt.Fprintf(bw, "%c %x\n", op, uint64(a.Addr)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// FileSource replays a trace file as an access source. It reads lazily, so
// arbitrarily long traces stream without being held in memory.
type FileSource struct {
	sc   *bufio.Scanner
	line int
	err  error
}

// NewFileSource wraps a reader of trace-format text.
func NewFileSource(r io.Reader) *FileSource {
	return &FileSource{sc: bufio.NewScanner(r)}
}

// Next implements the access-source contract. A malformed line ends the
// stream; Err reports it.
func (f *FileSource) Next() (mem.Access, bool) {
	if f.err != nil {
		return mem.Access{}, false
	}
	for f.sc.Scan() {
		f.line++
		text := strings.TrimSpace(f.sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		a, err := parseLine(text)
		if err != nil {
			f.err = fmt.Errorf("trace: line %d: %w", f.line, err)
			return mem.Access{}, false
		}
		return a, true
	}
	f.err = f.sc.Err()
	return mem.Access{}, false
}

// Err returns the first parse or read error, or nil at a clean end.
func (f *FileSource) Err() error { return f.err }

func parseLine(text string) (mem.Access, error) {
	fields := strings.Fields(text)
	if len(fields) != 2 {
		return mem.Access{}, fmt.Errorf("want %q, got %q", "L|S <hex-addr>", text)
	}
	var write bool
	switch fields[0] {
	case "L", "l":
		write = false
	case "S", "s":
		write = true
	default:
		return mem.Access{}, fmt.Errorf("unknown op %q (want L or S)", fields[0])
	}
	addr, err := strconv.ParseUint(strings.TrimPrefix(fields[1], "0x"), 16, 64)
	if err != nil {
		return mem.Access{}, fmt.Errorf("bad address %q: %v", fields[1], err)
	}
	return mem.Access{Addr: mem.Addr(addr), Write: write}, nil
}

// ParseAccesses reads a whole trace into memory; tests and small tools use
// it.
func ParseAccesses(r io.Reader) ([]mem.Access, error) {
	f := NewFileSource(r)
	var out []mem.Access
	for {
		a, ok := f.Next()
		if !ok {
			break
		}
		out = append(out, a)
	}
	return out, f.Err()
}
