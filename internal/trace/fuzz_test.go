package trace

import (
	"bytes"
	"testing"

	"repro/internal/mem"
)

// FuzzBinarySource hammers the .btrace decoder with arbitrary bytes. The
// corpus seeds are the corruption cases the unit tests pin (bad magic,
// bad version, truncated header, mid-record cut, varint overflow) plus
// well-formed traces, so mutation starts from both sides of the validity
// boundary. Properties:
//
//   - decoding never panics, whatever the input;
//   - the in-memory decoder and the windowed ReaderAt decoder agree on
//     both the decoded accesses and whether the input is in error;
//   - anything the decoder accepts survives a re-encode/re-decode round
//     trip unchanged (decode is a left inverse of encode on its image).
func FuzzBinarySource(f *testing.F) {
	mustEncode := func(accs []mem.Access) []byte {
		var buf bytes.Buffer
		if err := WriteBinaryAccesses(&buf, accs); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}

	f.Add([]byte{})
	f.Add([]byte(binaryMagic[:3]))
	f.Add([]byte("NOPE\x01\x00\x00\x00"))
	f.Add([]byte{'S', 'T', 'R', 'B', 99, 0, 0, 0})
	f.Add(mustEncode(nil))
	valid := mustEncode([]mem.Access{
		{Addr: 0x1000, Write: false},
		{Addr: 0x1040, Write: true},
		{Addr: 0xdead_beef_00, Write: true},
		{Addr: (1 << 62) - 64, Write: true},
	})
	f.Add(valid)
	f.Add(valid[:len(valid)-1])                                  // mid-record cut
	f.Add(append(mustEncode(nil), bytes.Repeat([]byte{0xff}, 10)...)) // varint overflow

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := NewBinaryBytes(data)
		if err != nil {
			// Header rejection must be mirrored by the windowed path.
			if _, raErr := NewBinaryReaderAt(bytes.NewReader(data), int64(len(data))); raErr == nil {
				t.Fatalf("NewBinaryBytes rejected the header (%v) but NewBinaryReaderAt accepted it", err)
			}
			return
		}
		var accs []mem.Access
		for {
			a, ok := s.Next()
			if !ok {
				break
			}
			accs = append(accs, a)
		}
		decErr := s.Err()

		// Differential check: the streaming-window decoder must agree.
		ra, err := NewBinaryReaderAt(bytes.NewReader(data), int64(len(data)))
		if err != nil {
			t.Fatalf("NewBinaryBytes accepted the header but NewBinaryReaderAt rejected it: %v", err)
		}
		var raAccs []mem.Access
		for {
			a, ok := ra.Next()
			if !ok {
				break
			}
			raAccs = append(raAccs, a)
		}
		if (decErr == nil) != (ra.Err() == nil) {
			t.Fatalf("decoders disagree on validity: bytes err %v, readerAt err %v", decErr, ra.Err())
		}
		if len(accs) != len(raAccs) {
			t.Fatalf("decoders disagree on length: bytes %d, readerAt %d", len(accs), len(raAccs))
		}
		for i := range accs {
			if accs[i] != raAccs[i] {
				t.Fatalf("access %d: bytes decoder %v, readerAt decoder %v", i, accs[i], raAccs[i])
			}
		}
		if decErr != nil {
			return
		}

		// Accepted input: re-encode and re-decode must reproduce it.
		var buf bytes.Buffer
		if err := WriteBinaryAccesses(&buf, accs); err != nil {
			t.Fatalf("decoder emitted accesses the writer rejects: %v", err)
		}
		again, err := ReadBinaryAccesses(buf.Bytes())
		if err != nil {
			t.Fatalf("re-decode of a re-encoded trace failed: %v", err)
		}
		if len(again) != len(accs) {
			t.Fatalf("round trip changed length: %d -> %d", len(accs), len(again))
		}
		for i := range accs {
			if again[i] != accs[i] {
				t.Fatalf("round trip changed access %d: %v -> %v", i, accs[i], again[i])
			}
		}
	})
}
