package profiling

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

func TestProfilesWriteFiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.out")
	mem := filepath.Join(dir, "mem.out")

	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	p := AddFlags(fs)
	if err := fs.Parse([]string{"-cpuprofile", cpu, "-memprofile", mem}); err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has something to record.
	x := 0
	for i := 0; i < 1_000_000; i++ {
		x += i * i
	}
	_ = x
	p.Stop()
	p.Stop() // idempotent

	for _, f := range []string{cpu, mem} {
		st, err := os.Stat(f)
		if err != nil {
			t.Fatalf("%s not written: %v", f, err)
		}
		if st.Size() == 0 {
			t.Errorf("%s is empty", f)
		}
	}
}

func TestProfilesDisabled(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	p := AddFlags(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	p.Stop() // must be a no-op without flags
}
