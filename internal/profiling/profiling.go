// Package profiling wires the standard -cpuprofile/-memprofile flags into
// the repo's binaries so hot-path work (see DESIGN.md, "Protocol hot
// path") can be measured on real sweeps, not only in microbenchmarks.
package profiling

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Profiles holds the flag values and the in-flight CPU profile.
type Profiles struct {
	cpuPath *string
	memPath *string
	cpuFile *os.File
}

// AddFlags registers -cpuprofile and -memprofile on fs (use flag.CommandLine
// in main). Call Start after parsing and Stop (or Exit) before returning.
func AddFlags(fs *flag.FlagSet) *Profiles {
	p := &Profiles{}
	p.cpuPath = fs.String("cpuprofile", "", "write a CPU profile to this file")
	p.memPath = fs.String("memprofile", "", "write a heap profile to this file on exit")
	return p
}

// Start begins CPU profiling if -cpuprofile was given.
func (p *Profiles) Start() error {
	if *p.cpuPath == "" {
		return nil
	}
	f, err := os.Create(*p.cpuPath)
	if err != nil {
		return fmt.Errorf("profiling: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return fmt.Errorf("profiling: %w", err)
	}
	p.cpuFile = f
	return nil
}

// Stop finishes the CPU profile and writes the heap profile, if requested.
// It is idempotent, so both a defer and an explicit pre-exit call are safe.
func (p *Profiles) Stop() {
	if p.cpuFile != nil {
		pprof.StopCPUProfile()
		p.cpuFile.Close()
		p.cpuFile = nil
	}
	if *p.memPath != "" {
		path := *p.memPath
		*p.memPath = ""
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "profiling:", err)
			return
		}
		runtime.GC() // settle the heap so the profile shows live data
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "profiling:", err)
		}
		f.Close()
	}
}

// Exit flushes any profiles and terminates with code. Binaries use it in
// place of os.Exit, which would skip the deferred Stop.
func (p *Profiles) Exit(code int) {
	p.Stop()
	os.Exit(code)
}
