package psim_test

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/psim"
	"repro/internal/sim"
	"repro/internal/testutil/leakcheck"
)

// The tests drive a toy multi-LP model through psim and through an
// independently-coded serial executor of the same epoch discipline, and
// demand bit-identical traces. The model is adversarial on purpose: LPs
// schedule bursts of same-cycle events, exchange cross-LP messages at
// exactly the lookahead bound, and fold every event into an order-
// sensitive hash, so any deviation in the total order — a worker stepping
// the wrong LP first, a merge replayed out of order — changes the hash.

const lookahead = 7

// toyLP is one logical process: a seeded self-scheduling event source
// whose state hashes every event it executes in order.
type toyLP struct {
	rank  int
	eng   *sim.Engine
	out   *psim.Mailbox[toyMsg]
	hash  uint64
	count int
	limit int
	rng   uint64
	fn    func(any) // bound once; arg is the delivered value
}

type toyMsg struct {
	dst int
	val uint64
}

func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func (lp *toyLP) next() uint64 {
	lp.rng = mix(lp.rng)
	return lp.rng
}

// tick is the LP's only event body: record the event in the hash, then
// maybe self-schedule (possibly at the same cycle) and maybe emit a
// cross-LP message.
func (lp *toyLP) tick(arg any) {
	v := arg.(uint64)
	now := uint64(lp.eng.Now())
	lp.hash = mix(lp.hash ^ now ^ v ^ uint64(lp.rank))
	lp.count++
	if lp.count >= lp.limit {
		return
	}
	r := lp.next()
	// Same-cycle and near-future self events stress intra-LP ordering.
	delay := sim.Cycle(r % 3)
	lp.eng.AtArg(lp.eng.Now()+delay, "toy.tick", lp.fn, lp.next())
	if r%4 == 0 {
		lp.out.Push(now, toyMsg{dst: int(r>>8) % cap(lpDsts), val: lp.next()})
	}
}

// lpDsts only exists to give the message destination a stable modulus.
var lpDsts = make([]struct{}, 8)

// buildToy constructs n LPs with seeded initial events; each LP stops
// self-scheduling after limit ticks.
func buildToy(n int, seed uint64, limit int) ([]*toyLP, []*sim.Engine, []*psim.Mailbox[toyMsg]) {
	lps := make([]*toyLP, n)
	engines := make([]*sim.Engine, n)
	boxes := make([]*psim.Mailbox[toyMsg], n)
	for i := range lps {
		lp := &toyLP{rank: i, eng: sim.NewEngine(), out: &psim.Mailbox[toyMsg]{}, limit: limit, rng: mix(seed + uint64(i)*977)}
		lp.fn = lp.tick
		lps[i] = lp
		engines[i] = lp.eng
		boxes[i] = lp.out
		for k := 0; k < 3; k++ {
			lp.eng.AtArg(sim.Cycle(lp.next()%20), "toy.seed", lp.fn, lp.next())
		}
	}
	return lps, engines, boxes
}

// merge replays one epoch's cross-LP messages: delivery at the first cycle
// of the next epoch plus a deterministic jitter derived from the payload.
func mergeToy(lps []*toyLP, boxes []*psim.Mailbox[toyMsg], mergeHash *uint64) func(end sim.Cycle) {
	return func(end sim.Cycle) {
		psim.Drain(boxes, func(src int, at uint64, m toyMsg) {
			*mergeHash = mix(*mergeHash ^ at ^ m.val ^ uint64(src))
			dst := lps[m.dst%len(lps)]
			dst.eng.AtArg(end+sim.Cycle(m.val%5), "toy.deliver", dst.fn, m.val)
		})
	}
}

// runParallel executes the toy model under psim with the given shard count
// and returns the per-LP hashes plus the merge-order hash.
func runParallel(t *testing.T, n, shards int, seed uint64) ([]uint64, uint64, uint64) {
	t.Helper()
	lps, engines, boxes := buildToy(n, seed, 400)
	eng, err := psim.New(psim.Config{Shards: shards, Lookahead: lookahead}, engines)
	if err != nil {
		t.Fatal(err)
	}
	var mergeHash uint64
	total, err := eng.Run(mergeToy(lps, boxes, &mergeHash))
	if err != nil {
		t.Fatal(err)
	}
	hashes := make([]uint64, n)
	for i, lp := range lps {
		hashes[i] = lp.hash
	}
	return hashes, mergeHash, total
}

// runReference executes the same model and epoch discipline with a direct
// single-threaded loop — no workers, no barrier — as the oracle for the
// concurrency machinery.
func runReference(t *testing.T, n int, seed uint64) ([]uint64, uint64, uint64) {
	t.Helper()
	lps, engines, boxes := buildToy(n, seed, 400)
	var mergeHash uint64
	merge := mergeToy(lps, boxes, &mergeHash)
	var total uint64
	for {
		minT, any := sim.Cycle(0), false
		for _, e := range engines {
			if tc, ok := e.NextEventTime(); ok && (!any || tc < minT) {
				minT, any = tc, true
			}
		}
		if !any {
			break
		}
		start := minT - minT%lookahead
		end := start + lookahead
		for {
			best := -1
			var bt sim.Cycle
			for i, e := range engines {
				if tc, ok := e.NextEventTime(); ok && tc < end && (best < 0 || tc < bt) {
					best, bt = i, tc
				}
			}
			if best < 0 {
				break
			}
			engines[best].Step()
			total++
		}
		merge(end)
	}
	hashes := make([]uint64, n)
	for i, lp := range lps {
		hashes[i] = lp.hash
	}
	return hashes, mergeHash, total
}

// TestShardCountInvariance is the core determinism property: every shard
// count produces the trace the independent serial reference produces.
func TestShardCountInvariance(t *testing.T) {
	leakcheck.Check(t)
	for _, n := range []int{1, 3, 8} {
		for seed := uint64(1); seed <= 5; seed++ {
			wantH, wantM, wantN := runReference(t, n, seed)
			for _, shards := range []int{1, 2, 4, 8} {
				if shards > n {
					continue
				}
				name := fmt.Sprintf("n%d_seed%d_shards%d", n, seed, shards)
				gotH, gotM, gotN := runParallel(t, n, shards, seed)
				if gotN != wantN {
					t.Fatalf("%s: ran %d events, reference ran %d", name, gotN, wantN)
				}
				if gotM != wantM {
					t.Fatalf("%s: merge-order hash %#x, reference %#x", name, gotM, wantM)
				}
				for i := range gotH {
					if gotH[i] != wantH[i] {
						t.Fatalf("%s: LP %d hash %#x, reference %#x", name, i, gotH[i], wantH[i])
					}
				}
			}
		}
	}
}

// TestRunTwiceIdentical reruns one configuration and demands identical
// hashes — determinism without reference to the oracle.
func TestRunTwiceIdentical(t *testing.T) {
	leakcheck.Check(t)
	aH, aM, aN := runParallel(t, 8, 4, 42)
	bH, bM, bN := runParallel(t, 8, 4, 42)
	if aN != bN || aM != bM {
		t.Fatalf("two runs diverged: events %d vs %d, merge hash %#x vs %#x", aN, bN, aM, bM)
	}
	for i := range aH {
		if aH[i] != bH[i] {
			t.Fatalf("LP %d diverged across runs", i)
		}
	}
}

// TestEventLimit exercises the budget path: Run must stop with
// ErrEventLimit and still join its workers (leakcheck enforces that).
func TestEventLimit(t *testing.T) {
	leakcheck.Check(t)
	_, engines, boxes := buildToy(8, 7, 400)
	eng, err := psim.New(psim.Config{Shards: 4, Lookahead: lookahead, MaxEvents: 50}, engines)
	if err != nil {
		t.Fatal(err)
	}
	_, err = eng.Run(func(end sim.Cycle) {
		psim.Drain(boxes, func(int, uint64, toyMsg) {})
	})
	if !errors.Is(err, psim.ErrEventLimit) {
		t.Fatalf("want ErrEventLimit, got %v", err)
	}
}

// TestConfigValidation covers New's rejection paths.
func TestConfigValidation(t *testing.T) {
	leakcheck.Check(t)
	_, engines, _ := buildToy(4, 1, 400)
	if _, err := psim.New(psim.Config{Shards: 5, Lookahead: 1}, engines); err == nil {
		t.Fatal("accepted more shards than LPs")
	}
	if _, err := psim.New(psim.Config{Shards: 0, Lookahead: 1}, engines); err == nil {
		t.Fatal("accepted zero shards")
	}
	if _, err := psim.New(psim.Config{Shards: 2, Lookahead: 0}, engines); err == nil {
		t.Fatal("accepted zero lookahead")
	}
	if _, err := psim.New(psim.Config{Shards: 1, Lookahead: 1}, nil); err == nil {
		t.Fatal("accepted empty LP set")
	}
}

// TestMailboxOrder pins Drain's canonical order directly: cycle first,
// then source rank, then push order.
func TestMailboxOrder(t *testing.T) {
	leakcheck.Check(t)
	a, b := &psim.Mailbox[int]{}, &psim.Mailbox[int]{}
	a.Push(5, 1)
	a.Push(5, 2)
	a.Push(9, 3)
	b.Push(4, 10)
	b.Push(5, 11)
	b.Push(9, 12)
	type rec struct {
		src int
		at  uint64
		v   int
	}
	var got []rec
	psim.Drain([]*psim.Mailbox[int]{a, b}, func(src int, at uint64, v int) {
		got = append(got, rec{src, at, v})
	})
	want := []rec{{1, 4, 10}, {0, 5, 1}, {0, 5, 2}, {1, 5, 11}, {0, 9, 3}, {1, 9, 12}}
	if len(got) != len(want) {
		t.Fatalf("drained %d entries, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("entry %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if a.Len() != 0 || b.Len() != 0 {
		t.Fatal("mailboxes not empty after drain")
	}
}
