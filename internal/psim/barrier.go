package psim

import (
	"runtime"
	"sync/atomic"
)

// barrier is a reusable sense-reversing spin barrier for n participants.
// Epochs are short (a handful of events per shard), so parking on a
// channel or sync.Cond per epoch would dominate the run time; arrivals
// spin on a generation counter and yield to the scheduler only after a
// bounded burst, which keeps the barrier in the tens of nanoseconds when
// all participants are runnable while staying polite when the machine is
// oversubscribed.
//
// The atomics carry the happens-before edges the engine relies on: every
// write a participant made before arriving (epoch window, queue contents,
// mailbox appends, step counts) is visible to every participant after the
// release.
type barrier struct {
	n     int32
	burst int
	count atomic.Int32
	gen   atomic.Uint32
}

func (b *barrier) init(n int32) {
	b.n = n
	// Spinning only pays when another participant can make progress on a
	// different CPU; on a single-CPU host yield immediately instead.
	b.burst = 64
	if runtime.GOMAXPROCS(0) <= 1 {
		b.burst = 1
	}
}

// await blocks until all n participants have arrived. sense is the
// caller's private phase counter; it must start at 0 and be passed to
// every await on this barrier.
//
//stash:hotpath
func (b *barrier) await(sense *uint32) {
	g := *sense + 1
	*sense = g
	if b.count.Add(1) == b.n {
		// Last arriver: reset for the next phase and release everyone.
		b.count.Store(0)
		b.gen.Store(g)
		return
	}
	spins := 0
	for b.gen.Load() != g {
		spins++
		if spins >= b.burst {
			spins = 0
			runtime.Gosched()
		}
	}
}
