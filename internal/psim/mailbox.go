package psim

// Mailbox is one LP's outgoing cross-LP message buffer: a growable FIFO
// ring of (cycle, value) entries, appended by the owning LP during an
// epoch and drained by the driver at the barrier. One mailbox per source
// LP, with the destination carried inside T, is the flattened form of a
// per-(source, destination) mailbox matrix: entries for one destination
// appear in send order because the whole ring is in send order.
//
// Only the owning LP pushes and only the barrier-holding driver drains, so
// the mailbox needs no internal synchronization — the epoch barrier is the
// synchronization.
//
//stash:tileowned
type Mailbox[T any] struct {
	buf  []entry[T]
	head int
	n    int
}

// entry keys are plain uint64 cycles rather than sim.Cycle so the generic
// container does not force the sim dependency on non-engine users.
type entry[T any] struct {
	at uint64 // send cycle; nondecreasing within one epoch's pushes
	v  T
}

// Push appends v, sent at cycle at. Sends within an epoch happen in the
// source LP's execution order, so at is nondecreasing between drains —
// Drain relies on that to merge by scanning only ring heads.
//
//stash:hotpath
func (m *Mailbox[T]) Push(at uint64, v T) {
	if m.n == len(m.buf) {
		m.grow()
	}
	m.buf[(m.head+m.n)&(len(m.buf)-1)] = entry[T]{at: at, v: v}
	m.n++
}

// Len returns the number of buffered entries.
func (m *Mailbox[T]) Len() int { return m.n }

func (m *Mailbox[T]) grow() {
	newCap := 2 * len(m.buf)
	if newCap == 0 {
		newCap = 16
	}
	buf := make([]entry[T], newCap)
	for i := 0; i < m.n; i++ {
		buf[i] = m.buf[(m.head+i)&(len(m.buf)-1)]
	}
	m.buf = buf
	m.head = 0
}

// pop removes the oldest entry; precondition n > 0. The slot is left
// stale, exactly like sim's event rings: it is overwritten on reuse.
//
//stash:hotpath
func (m *Mailbox[T]) pop() entry[T] {
	e := m.buf[m.head]
	m.head = (m.head + 1) & (len(m.buf) - 1)
	m.n--
	return e
}

// Drain empties the mailboxes in the canonical cross-LP merge order —
// (cycle, source rank, send order) — invoking visit for each entry. Each
// ring is already sorted by cycle (sends follow the source's clock), so a
// k-way head scan suffices; ties on cycle resolve to the lowest source
// rank, and entries from one source preserve ring (send) order. This is
// the merge front of the epoch protocol: it runs single-threaded on the
// driver with every worker parked, and its order is a pure function of
// the epoch's sends, never of the shard layout.
//
//stash:hotpath
func Drain[T any](boxes []*Mailbox[T], visit func(src int, at uint64, v T)) {
	for {
		best := -1
		var bt uint64
		for i, b := range boxes {
			if b.n == 0 {
				continue
			}
			if at := b.buf[b.head].at; best < 0 || at < bt {
				best, bt = i, at
			}
		}
		if best < 0 {
			return
		}
		e := boxes[best].pop()
		visit(best, e.at, e.v)
	}
}
