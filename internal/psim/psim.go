// Package psim is the deterministic parallel discrete-event engine: it
// advances many sim.EventQueue-backed shards concurrently under a
// conservative (lookahead-bounded) epoch protocol and still produces a
// bit-identical event order at every worker count.
//
// # Model
//
// The system is partitioned into logical processes (LPs) — in the CMP
// model, one LP per NoC tile — each owning a private *sim.Engine (its own
// timing wheel, heap, clock and insertion-sequence counter; see
// sim.EventQueue). During an epoch an LP may only schedule onto itself;
// everything that crosses LPs is deferred into a per-source Mailbox and
// merged by the single-threaded driver at the epoch barrier. Epochs are
// aligned windows [k·L, (k+1)·L) whose width L (the lookahead) must not
// exceed the minimum latency of any cross-LP interaction — for the NoC,
// the minimum cross-tile hop latency — so a message emitted during epoch k
// can never be due before epoch k+1 begins, and executing the epochs of
// different LPs concurrently is safe.
//
// # Determinism
//
// The engine realizes the fixed total order
//
//	(cycle, LP rank, LP-local sequence)
//
// independent of how LPs are grouped into worker shards:
//
//   - Within one LP, events fire in the LP's own (cycle, sequence) order —
//     a property of its private queue, untouched by parallelism.
//   - Across LPs, same-cycle events commute: they touch disjoint LP state,
//     and all cross-LP effects are mailbox appends that the driver replays
//     in the canonical (cycle, source rank, send order) order at the
//     barrier, on one thread. The shard layout therefore cannot leak into
//     any simulation-visible value.
//
// Note what this does *not* promise: the legacy serial engine's order is
// (cycle, global insertion sequence), a history-dependent interleaving of
// all components that no partitioned execution can reproduce in general.
// psim's order is a different, equally valid serial schedule — Shards=1
// executes it exactly, and every Shards=N run is bit-identical to that.
// DESIGN.md's "Parallel engine" section carries the full argument.
package psim

import (
	"errors"
	"fmt"

	"repro/internal/sim"
)

// ErrEventLimit is returned (wrapped) by Run when the event budget is
// exhausted before the queues drain.
var ErrEventLimit = errors.New("psim: event limit reached")

// Config parameterizes a parallel engine.
type Config struct {
	// Shards is the number of worker goroutines; LPs are split across them
	// in contiguous rank blocks. Must be in [1, len(lps)].
	Shards int
	// Lookahead is the epoch width L in cycles: the guaranteed minimum
	// delay of any cross-LP interaction. Must be >= 1.
	Lookahead sim.Cycle
	// MaxEvents, when nonzero, bounds the total events executed; Run
	// returns ErrEventLimit once an epoch ends past the budget.
	MaxEvents uint64
}

// Engine drives a set of per-LP event queues through conservative epochs.
type Engine struct {
	cfg Config
	lps []*sim.Engine

	workers     []worker
	start       barrier
	driverSense uint32
	stop        bool

	// Epoch window, written by the driver between barriers (the barrier's
	// happens-before edges publish them to the workers).
	epochEnd sim.Cycle

	// OnEpoch, when set, runs on the driver thread at each epoch barrier,
	// after the workers have drained the epoch and before the cross-LP
	// merge. start and end are the epoch window. Samplers hook here: the
	// barrier grid is part of the deterministic schedule, so observations
	// taken at it are shard-count-invariant too.
	OnEpoch func(start, end sim.Cycle)
}

// worker owns a contiguous block of LPs and steps them through one epoch
// at a time. next/has cache each LP's earliest event time so the inner
// loop's min scan does not re-query drained queues.
//
//stash:tileowned
type worker struct {
	eng     *Engine
	engines []*sim.Engine
	next    []sim.Cycle
	has     []bool
	sense   uint32
	steps   uint64
}

// New builds a parallel engine over the given LP queues. LP rank is the
// slice index; ranks are the cross-LP tie-break, so callers must use a
// stable, meaningful order (the CMP model uses NoC tile id).
func New(cfg Config, lps []*sim.Engine) (*Engine, error) {
	if len(lps) == 0 {
		return nil, fmt.Errorf("psim: no LPs")
	}
	if cfg.Shards < 1 || cfg.Shards > len(lps) {
		return nil, fmt.Errorf("psim: shards must be in [1,%d], got %d", len(lps), cfg.Shards)
	}
	if cfg.Lookahead < 1 {
		return nil, fmt.Errorf("psim: lookahead must be >= 1 cycle, got %d", cfg.Lookahead)
	}
	e := &Engine{cfg: cfg, lps: lps}
	e.workers = make([]worker, cfg.Shards)
	// Contiguous block partition: neighbors on the mesh tend to land in
	// the same shard, and the assignment is a pure function of (len(lps),
	// Shards) — though correctness never depends on the layout.
	per := (len(lps) + cfg.Shards - 1) / cfg.Shards
	for i := range e.workers {
		lo := i * per
		hi := lo + per
		if hi > len(lps) {
			hi = len(lps)
		}
		w := &e.workers[i]
		w.eng = e
		w.engines = lps[lo:hi]
		w.next = make([]sim.Cycle, len(w.engines))
		w.has = make([]bool, len(w.engines))
	}
	e.start.init(int32(cfg.Shards + 1)) // workers + driver
	return e, nil
}

// Pending returns the total events queued across all LPs. Only meaningful
// outside Run (the driver owns all queues between epochs).
func (e *Engine) Pending() int {
	n := 0
	for _, lp := range e.lps {
		n += lp.Pending()
	}
	return n
}

// EventsRun returns the total events executed across all LPs.
func (e *Engine) EventsRun() uint64 {
	var n uint64
	for _, lp := range e.lps {
		n += lp.EventsRun()
	}
	return n
}

// Cycles returns the furthest LP clock — the parallel analogue of the
// serial engine's final Now().
func (e *Engine) Cycles() sim.Cycle {
	var max sim.Cycle
	for _, lp := range e.lps {
		if t := lp.Now(); t > max {
			max = t
		}
	}
	return max
}

// Run executes epochs until every queue drains and merge produces no new
// work, or the event budget runs out. merge is called on the driver thread
// at each epoch boundary with all workers parked at the barrier; it must
// replay the epoch's cross-LP messages into the destination queues (in
// canonical order — see Drain) and may schedule at any cycle >= the epoch
// end. Worker goroutines live strictly inside this call: they are spawned
// on entry and joined before it returns, so a completed Run leaks nothing.
func (e *Engine) Run(merge func(epochEnd sim.Cycle)) (uint64, error) {
	e.stop = false
	for i := range e.workers {
		// Workers and driver rendezvous on a sense-reversing barrier twice
		// per epoch (epoch start, epoch end); between barriers each worker
		// touches only the LP queues it owns.
		//stash:parallel conservative PDES workers; joined before Run returns
		go e.workers[i].loop()
	}
	var total uint64
	err := e.drive(merge, &total)
	// Park-and-release one last time with stop set so every worker exits
	// its loop; the final barrier doubles as the join.
	e.stop = true
	e.start.await(&e.driverSense)
	return total, err
}

// drive is Run's epoch loop, split out so Run can unconditionally park
// and join the workers whether drive returns cleanly or on a budget
// error.
func (e *Engine) drive(merge func(epochEnd sim.Cycle), total *uint64) error {
	L := e.cfg.Lookahead
	for {
		minT, any := e.nextEvent()
		if !any {
			return nil
		}
		// Skip-ahead: jump straight to the epoch window containing the
		// earliest event. Windows stay aligned to the L grid, so the
		// barrier schedule — and anything observing it — is a pure
		// function of the event timeline, not of how many idle epochs a
		// particular implementation would have cycled through.
		start := minT - minT%L
		end := start + L
		e.epochEnd = end

		e.start.await(&e.driverSense) // release workers into the epoch
		e.start.await(&e.driverSense) // wait for them to drain it

		*total = 0
		for i := range e.workers {
			*total += e.workers[i].steps
		}
		if e.cfg.MaxEvents != 0 && *total >= e.cfg.MaxEvents {
			return fmt.Errorf("%w: %d events run, budget %d", ErrEventLimit, *total, e.cfg.MaxEvents)
		}
		if e.OnEpoch != nil {
			e.OnEpoch(start, end)
		}
		merge(end)
	}
}

// nextEvent returns the earliest pending cycle across all LPs.
func (e *Engine) nextEvent() (sim.Cycle, bool) {
	var min sim.Cycle
	any := false
	for _, lp := range e.lps {
		if t, ok := lp.NextEventTime(); ok && (!any || t < min) {
			min, any = t, true
		}
	}
	return min, any
}

// loop is a worker goroutine's life: epochs bracketed by barriers until
// the driver raises stop.
func (w *worker) loop() {
	for {
		w.eng.start.await(&w.sense)
		if w.eng.stop {
			return
		}
		w.runEpoch(w.eng.epochEnd)
		w.eng.start.await(&w.sense)
	}
}

// runEpoch drains every event strictly before end from the worker's LPs,
// always stepping the (cycle, rank)-minimal one. The next-event cache is
// refreshed once on entry — the merge may have scheduled onto any LP — and
// then maintained incrementally: during an epoch an LP's queue only
// changes when that LP itself runs.
//
//stash:hotpath
func (w *worker) runEpoch(end sim.Cycle) {
	for i, lp := range w.engines {
		w.next[i], w.has[i] = lp.NextEventTime()
	}
	for {
		best := -1
		var bt sim.Cycle
		for i := range w.engines {
			// Strict less keeps the earliest rank on cycle ties, matching
			// the canonical (cycle, LP rank) order.
			if w.has[i] && w.next[i] < end && (best < 0 || w.next[i] < bt) {
				best, bt = i, w.next[i]
			}
		}
		if best < 0 {
			return
		}
		lp := w.engines[best]
		lp.Step()
		w.steps++
		w.next[best], w.has[best] = lp.NextEventTime()
	}
}
