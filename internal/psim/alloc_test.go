package psim_test

import (
	"testing"

	"repro/internal/psim"
	"repro/internal/sim"
	"repro/internal/testutil/leakcheck"
)

// TestMergeFrontZeroAlloc pins the mailbox merge front at zero
// steady-state allocations: once the rings have grown to their working
// size, a full push-and-drain round allocates nothing. This is the
// parallel counterpart of the serial engine's zero-allocs/event contract
// (the hotpath analyzer checks the same property statically via the
// //stash:hotpath annotations on Push, pop and Drain).
func TestMergeFrontZeroAlloc(t *testing.T) {
	leakcheck.Check(t)
	boxes := make([]*psim.Mailbox[int], 8)
	for i := range boxes {
		boxes[i] = &psim.Mailbox[int]{}
	}
	sink := 0
	visit := func(src int, at uint64, v int) { sink += v }
	round := func() {
		for i, b := range boxes {
			for k := 0; k < 32; k++ {
				b.Push(uint64(100+k), i+k)
			}
		}
		psim.Drain(boxes, visit)
	}
	round() // grow the rings to steady state
	if allocs := testing.AllocsPerRun(50, round); allocs != 0 {
		t.Fatalf("merge front allocated %.1f times per round, want 0", allocs)
	}
	_ = sink
}

// leanLP is the allocation test's LP: like psim_test's toyLP but its event
// argument is the LP pointer itself (pointer-shaped args box into `any`
// without allocating, exactly like the protocol's pooled *Msg), so every
// per-event allocation the test observes is the engine's, not the model's.
type leanLP struct {
	rank  int
	eng   *sim.Engine
	out   *psim.Mailbox[leanMsg]
	self  any // lp pointer pre-boxed once
	fn    func(any)
	hash  uint64
	rng   uint64
	count int
	limit int
}

type leanMsg struct {
	dst int
	val uint64
}

func (lp *leanLP) tick(any) {
	lp.rng = mix(lp.rng)
	r := lp.rng
	lp.hash = mix(lp.hash ^ uint64(lp.eng.Now()) ^ r)
	lp.count++
	if lp.count >= lp.limit {
		return
	}
	lp.eng.AtArg(lp.eng.Now()+sim.Cycle(r%3), "lean.tick", lp.fn, lp.self)
	if r%4 == 0 {
		lp.out.Push(uint64(lp.eng.Now()), leanMsg{dst: int(r>>8) & 7, val: r})
	}
}

// TestEpochLoopAllocsConstant bounds the whole parallel run path — barrier
// crossings, worker epoch loops, merge replay — to allocations independent
// of event count: a run executing ~19x the events may allocate only a
// fixed setup-and-warmup amount more (engine arenas, rings and goroutine
// stacks all reach steady state). If the per-event path allocated even
// once per event, the delta would be tens of thousands.
func TestEpochLoopAllocsConstant(t *testing.T) {
	leakcheck.Check(t)
	run := func(limit int) (events uint64) {
		lps := make([]*leanLP, 8)
		engines := make([]*sim.Engine, 8)
		boxes := make([]*psim.Mailbox[leanMsg], 8)
		for i := range lps {
			lp := &leanLP{rank: i, eng: sim.NewEngine(), out: &psim.Mailbox[leanMsg]{}, limit: limit, rng: mix(uint64(i) + 3)}
			lp.fn = lp.tick
			lp.self = lp
			lps[i] = lp
			engines[i] = lp.eng
			boxes[i] = lp.out
			lp.eng.AtArg(sim.Cycle(i%5), "lean.seed", lp.fn, lp.self)
		}
		eng, err := psim.New(psim.Config{Shards: 4, Lookahead: lookahead}, engines)
		if err != nil {
			t.Fatal(err)
		}
		n, err := eng.Run(func(end sim.Cycle) {
			psim.Drain(boxes, func(src int, at uint64, m leanMsg) {
				dst := lps[m.dst]
				dst.eng.AtArg(end+sim.Cycle(m.val%5), "lean.deliver", dst.fn, dst.self)
			})
		})
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	small := testing.AllocsPerRun(5, func() { run(1000) })
	big := testing.AllocsPerRun(5, func() { run(10_000) })
	nSmall, nBig := run(1000), run(10_000)
	if nBig < 5*nSmall {
		t.Fatalf("scaling assumption broken: %d vs %d events", nSmall, nBig)
	}
	// The marginal allocation rate must be warm-up noise only: the small
	// run has already populated most wheel buckets and pool rings, so the
	// extra ~9x events may add at most a residual trickle of one-time
	// ring growth. A single allocation per event would read as 1.0 here.
	rate := (big - small) / float64(nBig-nSmall)
	t.Logf("allocs: %.0f for %d events, %.0f for %d events (marginal %.4f/event)", small, nSmall, big, nBig, rate)
	if rate > 0.02 {
		t.Fatalf("parallel hot loop allocates %.4f times per event, want warm-up-only (<= 0.02)", rate)
	}
}
