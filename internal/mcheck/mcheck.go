// Package mcheck is an explicit-state model checker for the coherence
// protocol in internal/coherence. It does not re-model the protocol: it
// builds a tiny but complete fabric (a few cores, a few addresses, any
// directory organization) and drives the real controllers through every
// reachable interleaving of message deliveries, bank retries, and injected
// processor loads, stores and evictions.
//
// Exploration is a breadth-first search over canonical state encodings
// (coherence.StateEncoder plus the checker's own channel and retry state),
// so each distinct machine state is expanded once and the first violation
// found is a minimal-length counterexample. Store values are renamed to
// first-encounter order during encoding (the protocol is data-independent),
// which makes the reachable state space finite even under unbounded
// injection: exploration terminates by exhaustion rather than by bound
// when no depth limit is set.
//
// Nodes are reconstructed by replay — re-building the fabric and re-running
// the action path from the root — rather than by snapshotting the
// controllers' object graphs. Replay keeps the checker honest: the only
// state that matters is state the real protocol can rebuild
// deterministically.
package mcheck

import (
	"fmt"
	"sort"

	"repro/internal/cache"
	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/noc"
)

// Kinds lists the directory organizations the checker can explore.
func Kinds() []string { return []string{"fullmap", "sparse", "cuckoo", "stash", "stash-ss"} }

// Config parameterizes one exploration.
type Config struct {
	Cores int    // cores (tiles); default 2
	Addrs int    // distinct blocks, all homed on bank 0; default 1
	Kind  string // directory organization (see Kinds); default "stash"

	// MaxDepth bounds the number of injected stimuli (loads, stores,
	// evictions) per path; 0 explores without bound, which still
	// terminates (see the package comment) and is exact. A nonzero bound
	// truncates: states reachable only with more stimuli are missed.
	MaxDepth int
	// MaxStates bounds the number of distinct states expanded; 0 means
	// the default (2,000,000).
	MaxStates int
	// MaxEvents bounds engine events per action; exceeding it is reported
	// as a suspected livelock. 0 means the default (100,000).
	MaxEvents int
	// MaxViolations stops the search after this many violations; 0 means
	// the default (1): stop at the first, minimal counterexample.
	MaxViolations int

	ThreeHop    bool // enable three-hop (owner→requester) forwarding
	SilentEvict bool // enable silent clean evictions

	RecordEdges bool // keep the full transition graph (for DOT export)
	RecordTable bool // record (receiver, message, pre, post) transition rows

	// NewDropFilter, when set, installs a fresh message-drop filter per
	// replayed world (the filter must be deterministic along a path, so
	// stateful filters get a fresh instance each replay). A true return
	// drops the message. Mutation tests use it to model protocol bugs.
	NewDropFilter func() func(src, dst noc.NodeID, m *coherence.Msg) bool
	// WrapDirectory, when set, wraps each bank's directory organization.
	// Mutation tests use it to corrupt allocation outcomes.
	WrapDirectory func(d core.Directory) core.Directory
}

func (c *Config) setDefaults() {
	if c.Cores == 0 {
		c.Cores = 2
	}
	if c.Addrs == 0 {
		c.Addrs = 1
	}
	if c.Kind == "" {
		c.Kind = "stash"
	}
	if c.MaxStates == 0 {
		c.MaxStates = 2_000_000
	}
	if c.MaxEvents == 0 {
		c.MaxEvents = 100_000
	}
	if c.MaxViolations == 0 {
		c.MaxViolations = 1
	}
}

func (c *Config) validate() error {
	if c.Cores < 1 || c.Cores > 4 {
		return fmt.Errorf("mcheck: cores must be in [1,4], got %d", c.Cores)
	}
	if c.Addrs < 1 || c.Addrs > 4 {
		return fmt.Errorf("mcheck: addrs must be in [1,4], got %d", c.Addrs)
	}
	found := false
	for _, k := range Kinds() {
		if k == c.Kind {
			found = true
		}
	}
	if !found {
		return fmt.Errorf("mcheck: unknown directory kind %q (want one of %v)", c.Kind, Kinds())
	}
	return nil
}

// Violation is one safety failure with its minimal reproducing trace.
type Violation struct {
	Kind    string   // "invariant", "value", "deadlock", "livelock", "audit", "leak", "event-budget"
	Message string
	Trace   []string // action descriptions from the initial state
}

func (v Violation) String() string {
	s := fmt.Sprintf("%s: %s", v.Kind, v.Message)
	for i, step := range v.Trace {
		s += fmt.Sprintf("\n  %2d. %s", i+1, step)
	}
	return s
}

// Edge is one transition of the explored graph (RecordEdges only).
type Edge struct {
	From, To int32
	Label    string
}

// TableRow is one observed protocol transition: receiver kind, delivered
// message type, and the receiver's per-block state before the delivery and
// after the fabric re-quiesced.
type TableRow struct {
	Receiver string // "L1" or "bank"
	Msg      string
	Pre, Post string
}

// Result summarizes one exploration.
type Result struct {
	Kind         string
	Cores, Addrs int

	States      int // distinct canonical states reached
	Transitions int // actions applied (including ones hitting visited states)
	Quiescent   int // states with no in-flight work at all
	Depth       int // longest action path to a distinct state

	Truncated  string // nonempty when a budget cut the search short
	Violations []Violation

	Edges []Edge     // RecordEdges only
	Table []TableRow // RecordTable only
}

// Summary is the one-line human rendering.
func (r *Result) Summary() string {
	s := fmt.Sprintf("%s cores=%d addrs=%d: %d states, %d transitions, %d quiescent, depth %d, %d violation(s)",
		r.Kind, r.Cores, r.Addrs, r.States, r.Transitions, r.Quiescent, r.Depth, len(r.Violations))
	if r.Truncated != "" {
		s += " [truncated: " + r.Truncated + "]"
	}
	return s
}

// ---------------------------------------------------------------------------
// Actions and worlds
// ---------------------------------------------------------------------------

type actionKind uint8

const (
	aDeliver actionKind = iota
	aRetry
	aLoad
	aStore
	aEvict
)

// action names one scheduler choice. Deliver is identified by channel (the
// head of a per-(src,dst) FIFO is the only deliverable message on it: the
// real NoC preserves point-to-point order, so out-of-order delivery within
// a channel would explore states the machine cannot reach). Retries are
// identified by (bank, kind, block), injections by (core, addr).
type action struct {
	kind     actionKind
	src, dst noc.NodeID            // aDeliver
	bank     int                   // aRetry
	rkind    coherence.RetryKind   // aRetry
	block    mem.Block             // aRetry
	core     int                   // aLoad/aStore/aEvict
	addr     int                   // aLoad/aStore/aEvict: block index
}

// channel is one point-to-point FIFO of captured messages.
type channel struct {
	src, dst noc.NodeID
	q        []*coherence.Msg
}

// world is one concrete machine along one path: the fabric plus the
// checker-owned transport and stimulus state.
type world struct {
	f           *coherence.Fabric
	chans       []*channel // sorted by (src, dst); empty channels stay in place
	parked      []coherence.ParkedRetry
	outstanding []bool // per core: an injected access has not completed
	injections  int
	dropped     int // messages eaten by the drop filter
}

func (w *world) channelFor(src, dst noc.NodeID) *channel {
	i := sort.Search(len(w.chans), func(i int) bool {
		c := w.chans[i]
		return c.src > src || (c.src == src && c.dst >= dst)
	})
	if i < len(w.chans) && w.chans[i].src == src && w.chans[i].dst == dst {
		return w.chans[i]
	}
	c := &channel{src: src, dst: dst}
	w.chans = append(w.chans, nil)
	copy(w.chans[i+1:], w.chans[i:])
	w.chans[i] = c
	return c
}

// inflight reports whether any captured message or parked retry concerns b.
func (w *world) inflight(b mem.Block) bool {
	for _, ch := range w.chans {
		for _, m := range ch.q {
			if m.Block == b {
				return true
			}
		}
	}
	for _, p := range w.parked {
		if p.Block() == b {
			return true
		}
	}
	return false
}

// quiescent reports whether nothing at all is in flight.
func (w *world) quiescent() bool {
	for _, ch := range w.chans {
		if len(ch.q) > 0 {
			return false
		}
	}
	if len(w.parked) > 0 || w.f.OpenWork() {
		return false
	}
	for _, o := range w.outstanding {
		if o {
			return false
		}
	}
	return true
}

func newDirectory(kind string) (core.Directory, error) {
	assoc := core.AssocConfig{Sets: 1, Ways: 1, Policy: cache.LRU}
	switch kind {
	case "fullmap":
		return core.NewFullMap(), nil
	case "sparse":
		return core.NewSparse(assoc)
	case "cuckoo":
		return core.NewCuckoo(core.CuckooConfig{Ways: 2, SlotsPerWay: 1, Seed: 1})
	case "stash":
		return core.NewStash(core.StashConfig{AssocConfig: assoc})
	case "stash-ss":
		return core.NewStash(core.StashConfig{AssocConfig: assoc, StashSingletonShared: true})
	}
	return nil, fmt.Errorf("mcheck: unknown directory kind %q", kind)
}

func bankBound(t coherence.MsgType) bool {
	switch t {
	case coherence.MsgGetS, coherence.MsgGetM, coherence.MsgPutS, coherence.MsgPutE,
		coherence.MsgPutM, coherence.MsgInvAck, coherence.MsgFetchResp,
		coherence.MsgDiscoverResp, coherence.MsgUnblock:
		return true
	}
	return false
}

// ---------------------------------------------------------------------------
// Explorer
// ---------------------------------------------------------------------------

type node struct {
	parent int32
	depth  int32
	act    action
}

// Explorer runs one bounded or exhaustive exploration.
type Explorer struct {
	cfg     Config
	blocks  []mem.Block
	enc     *coherence.StateEncoder
	nodes   []node
	visited map[string]int32
	res     *Result
	rows    map[TableRow]struct{}
}

// Run explores cfg's configuration and returns the result. An error means
// the checker itself failed (bad configuration, replay divergence) — a
// protocol bug is not an error, it is a Violation in the result.
func Run(cfg Config) (*Result, error) {
	cfg.setDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	e := &Explorer{
		cfg:     cfg,
		enc:     coherence.NewStateEncoder(),
		visited: make(map[string]int32),
		res:     &Result{Kind: cfg.Kind, Cores: cfg.Cores, Addrs: cfg.Addrs},
	}
	if cfg.RecordTable {
		e.rows = make(map[TableRow]struct{})
	}
	// Every block is a multiple of the core count, so all of them home on
	// bank 0: the interesting directory-conflict interleavings need the
	// competing blocks to collide on one directory slice.
	e.blocks = make([]mem.Block, cfg.Addrs)
	for i := range e.blocks {
		e.blocks[i] = mem.Block(i * cfg.Cores)
	}
	if err := e.search(); err != nil {
		return nil, err
	}
	if cfg.RecordTable {
		for r := range e.rows {
			e.res.Table = append(e.res.Table, r)
		}
		sort.Slice(e.res.Table, func(i, j int) bool {
			a, b := e.res.Table[i], e.res.Table[j]
			if a.Receiver != b.Receiver {
				return a.Receiver < b.Receiver
			}
			if a.Msg != b.Msg {
				return a.Msg < b.Msg
			}
			if a.Pre != b.Pre {
				return a.Pre < b.Pre
			}
			return a.Post < b.Post
		})
	}
	return e.res, nil
}

// newWorld builds a fresh fabric at the initial state with the capture
// hooks installed.
func (e *Explorer) newWorld() (*world, error) {
	p := coherence.Params{
		Cores:        e.cfg.Cores,
		L1HitLatency: 1, L2HitLatency: 1, BankLatency: 1, MemLatency: 1,
		ThinkTime: 1, RetryDelay: 1, MSHRs: 1,
		SilentCleanEvictions: e.cfg.SilentEvict,
		ThreeHopForwarding:   e.cfg.ThreeHop,
	}
	// Sets=1 with Ways=Addrs everywhere: every block has a free way, so
	// victim selection always takes the deterministic invalid-way fast
	// path and replacement-policy state never influences behavior (it is
	// excluded from the canonical encoding).
	bc := coherence.BuildConfig{
		Params: p,
		Mesh:   noc.Config{Width: e.cfg.Cores, Height: 1, RouterLatency: 1, LinkLatency: 1, LinkBandwidth: 1},
		L1:     cache.Config{Name: "l1", Sets: 1, Ways: e.cfg.Addrs, Policy: cache.LRU},
		LLC:    cache.Config{Name: "llc", Sets: 1, Ways: e.cfg.Addrs, Policy: cache.LRU},
		NewDirectory: func(bank int) (core.Directory, error) {
			d, err := newDirectory(e.cfg.Kind)
			if err == nil && e.cfg.WrapDirectory != nil {
				d = e.cfg.WrapDirectory(d)
			}
			return d, err
		},
	}
	f, err := coherence.NewFabric(bc)
	if err != nil {
		return nil, err
	}
	w := &world{f: f, outstanding: make([]bool, e.cfg.Cores)}
	var drop func(src, dst noc.NodeID, m *coherence.Msg) bool
	if e.cfg.NewDropFilter != nil {
		drop = e.cfg.NewDropFilter()
	}
	f.SetSendHook(func(src, dst noc.NodeID, m *coherence.Msg) bool {
		if drop != nil && drop(src, dst, m) {
			w.dropped++
			f.RecycleMsg(m)
			return true
		}
		ch := w.channelFor(src, dst)
		ch.q = append(ch.q, m)
		return true
	})
	f.SetRetryHook(func(p coherence.ParkedRetry) { w.parked = append(w.parked, p) })
	return w, nil
}

// drain runs the engine to quiescence after an action; its internal timer
// chains are deterministic, so all nondeterminism stays in the action
// choice.
func (e *Explorer) drain(w *world) error {
	w.f.Engine.Run(uint64(e.cfg.MaxEvents))
	if n := w.f.Engine.Pending(); n != 0 {
		return fmt.Errorf("event budget (%d) exhausted with %d events still pending — livelock suspected",
			e.cfg.MaxEvents, n)
	}
	return nil
}

// errDiverged marks replay divergence: an action recorded as enabled was
// not enabled when re-executed, i.e. the checker (not the protocol) is
// broken.
type errDiverged struct{ msg string }

func (d errDiverged) Error() string { return "replay divergence: " + d.msg }

// apply executes one action on w, drains the engine, and returns a human
// description of what happened.
func (e *Explorer) apply(w *world, a action) (string, error) {
	switch a.kind {
	case aDeliver:
		ch := w.channelFor(a.src, a.dst)
		if len(ch.q) == 0 {
			return "", errDiverged{fmt.Sprintf("channel %d->%d empty", a.src, a.dst)}
		}
		m := ch.q[0]
		ch.q = ch.q[1:]
		desc := fmt.Sprintf("deliver %v(blk %#x) node%d->node%d", m.Type, uint64(m.Block), a.src, a.dst)
		var row TableRow
		if e.rows != nil {
			if bankBound(m.Type) {
				row = TableRow{Receiver: "bank", Msg: m.Type.String(), Pre: w.f.BankBlockState(int(a.dst), m.Block)}
			} else {
				row = TableRow{Receiver: "L1", Msg: m.Type.String(), Pre: w.f.L1BlockState(int(a.dst), m.Block)}
			}
		}
		blk := m.Block
		w.f.DeliverDirect(a.dst, m)
		if err := e.drain(w); err != nil {
			return desc, err
		}
		if e.rows != nil {
			if row.Receiver == "bank" {
				row.Post = w.f.BankBlockState(int(a.dst), blk)
			} else {
				row.Post = w.f.L1BlockState(int(a.dst), blk)
			}
			e.rows[row] = struct{}{}
		}
		return desc, nil

	case aRetry:
		idx := -1
		for i, p := range w.parked {
			if p.BankID() == a.bank && p.Kind() == a.rkind && p.Block() == a.block {
				idx = i
				break
			}
		}
		if idx < 0 {
			return "", errDiverged{fmt.Sprintf("no parked %v for blk %#x at bank %d", a.rkind, uint64(a.block), a.bank)}
		}
		p := w.parked[idx]
		w.parked = append(w.parked[:idx], w.parked[idx+1:]...)
		desc := fmt.Sprintf("fire %v(blk %#x) at bank %d", a.rkind, uint64(a.block), a.bank)
		p.Fire()
		return desc, e.drain(w)

	case aLoad, aStore:
		blk := e.blocks[a.addr]
		op := "load"
		if a.kind == aStore {
			op = "store"
		}
		desc := fmt.Sprintf("core %d: %s blk %#x", a.core, op, uint64(blk))
		if w.outstanding[a.core] {
			return "", errDiverged{desc + " while outstanding"}
		}
		w.injections++
		w.outstanding[a.core] = true
		c := a.core
		w.f.L1s[c].Access(mem.Access{Addr: mem.AddrOf(blk), Write: a.kind == aStore},
			func() { w.outstanding[c] = false })
		return desc, e.drain(w)

	case aEvict:
		blk := e.blocks[a.addr]
		desc := fmt.Sprintf("core %d: evict blk %#x", a.core, uint64(blk))
		w.injections++
		if !w.f.L1s[a.core].ForceEvict(blk) {
			return "", errDiverged{desc + " not evictable"}
		}
		return desc, e.drain(w)
	}
	return "", errDiverged{fmt.Sprintf("unknown action kind %d", a.kind)}
}

// enabled enumerates w's actions in canonical order: deliveries (channel
// order), parked retries (sorted), then injections per (core, addr).
func (e *Explorer) enabled(w *world) []action {
	var out []action
	for _, ch := range w.chans {
		if len(ch.q) > 0 {
			out = append(out, action{kind: aDeliver, src: ch.src, dst: ch.dst})
		}
	}
	parked := make([]coherence.ParkedRetry, len(w.parked))
	copy(parked, w.parked)
	sort.Slice(parked, func(i, j int) bool {
		a, b := parked[i], parked[j]
		if a.BankID() != b.BankID() {
			return a.BankID() < b.BankID()
		}
		if a.Block() != b.Block() {
			return a.Block() < b.Block()
		}
		return a.Kind() < b.Kind()
	})
	for _, p := range parked {
		out = append(out, action{kind: aRetry, bank: p.BankID(), rkind: p.Kind(), block: p.Block()})
	}
	if e.cfg.MaxDepth > 0 && w.injections >= e.cfg.MaxDepth {
		e.res.Truncated = "depth budget"
		return out
	}
	for c := 0; c < e.cfg.Cores; c++ {
		if w.outstanding[c] {
			continue
		}
		for a := range e.blocks {
			out = append(out,
				action{kind: aLoad, core: c, addr: a},
				action{kind: aStore, core: c, addr: a})
		}
	}
	for c := 0; c < e.cfg.Cores; c++ {
		for a, blk := range e.blocks {
			if w.f.L1s[c].CanForceEvict(blk) {
				out = append(out, action{kind: aEvict, core: c, addr: a})
			}
		}
	}
	return out
}

// encode renders w's complete canonical state: transport, parked retries,
// stimulus bookkeeping, then the fabric itself (one shared stamp renamer
// across all of it).
func (e *Explorer) encode(w *world) string {
	enc := e.enc
	enc.Reset()
	for _, ch := range w.chans {
		if len(ch.q) == 0 {
			continue
		}
		enc.Byte('C')
		enc.U64(uint64(ch.src))
		enc.U64(uint64(ch.dst))
		enc.U64(uint64(len(ch.q)))
		for _, m := range ch.q {
			enc.Msg(m)
		}
	}
	enc.Byte('R')
	parked := make([]coherence.ParkedRetry, len(w.parked))
	copy(parked, w.parked)
	sort.Slice(parked, func(i, j int) bool {
		a, b := parked[i], parked[j]
		if a.BankID() != b.BankID() {
			return a.BankID() < b.BankID()
		}
		if a.Block() != b.Block() {
			return a.Block() < b.Block()
		}
		return a.Kind() < b.Kind()
	})
	enc.U64(uint64(len(parked)))
	for _, p := range parked {
		enc.U64(uint64(p.BankID()))
		enc.Byte(byte(p.Kind()))
		enc.U64(uint64(p.Block()))
	}
	for _, o := range w.outstanding {
		if o {
			enc.Byte(1)
		} else {
			enc.Byte(0)
		}
	}
	enc.Fabric(w.f)
	return string(enc.Bytes())
}

// path returns the action sequence from the root to node id.
func (e *Explorer) path(id int32) []action {
	var rev []action
	for n := id; n > 0; n = e.nodes[n].parent {
		rev = append(rev, e.nodes[n].act)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// replay rebuilds node id's world from scratch.
func (e *Explorer) replay(id int32) (*world, error) {
	w, err := e.newWorld()
	if err != nil {
		return nil, err
	}
	if err := e.drain(w); err != nil {
		return nil, err
	}
	for _, a := range e.path(id) {
		if _, err := e.apply(w, a); err != nil {
			return nil, fmt.Errorf("replaying node %d: %w", id, err)
		}
	}
	return w, nil
}

// trace renders node id's path as human-readable steps (by replaying it).
func (e *Explorer) trace(id int32) []string {
	w, err := e.newWorld()
	if err != nil {
		return []string{fmt.Sprintf("<trace unavailable: %v>", err)}
	}
	_ = e.drain(w)
	var out []string
	for _, a := range e.path(id) {
		d, err := e.apply(w, a)
		out = append(out, d)
		if err != nil {
			out = append(out, fmt.Sprintf("<%v>", err))
			break
		}
	}
	return out
}

func (e *Explorer) violation(kind, msg string, id int32) {
	e.res.Violations = append(e.res.Violations, Violation{Kind: kind, Message: msg, Trace: e.trace(id)})
}

func (e *Explorer) done() bool {
	return len(e.res.Violations) >= e.cfg.MaxViolations
}

// checkState runs the per-state safety checks on a freshly reached state.
// prevChk is how many checker violations the parent state had already
// accumulated along this path (the value oracle records them during
// execution; older ones were reported when their state was reached).
func (e *Explorer) checkState(w *world, id int32, prevChk int) {
	for _, v := range w.f.Checker.Violations()[prevChk:] {
		e.violation("value", v, id)
	}
	for _, v := range coherence.StepInvariants(w.f, w.inflight) {
		e.violation("invariant", v, id)
	}
	if w.quiescent() {
		e.res.Quiescent++
		for _, v := range coherence.Audit(w.f) {
			e.violation("audit", v, id)
		}
		if inUse, _ := w.f.MsgPoolStats(); inUse != 0 {
			e.violation("leak", fmt.Sprintf("%d pooled messages still live at quiescence", inUse), id)
		}
		for _, bk := range w.f.Banks {
			if inUse, _ := bk.TBEPoolUse(); inUse != 0 {
				e.violation("leak", fmt.Sprintf("%d bank TBEs still live at quiescence", inUse), id)
			}
		}
	}
}

// search is the BFS over canonical states.
func (e *Explorer) search() error {
	w0, err := e.newWorld()
	if err != nil {
		return err
	}
	if err := e.drain(w0); err != nil {
		return err
	}
	e.nodes = []node{{parent: -1}}
	e.visited[e.encode(w0)] = 0
	e.res.States = 1
	e.checkState(w0, 0, 0)

	queue := []int32{0}
	for qi := 0; qi < len(queue) && !e.done(); qi++ {
		if e.res.States >= e.cfg.MaxStates {
			e.res.Truncated = "state budget"
			break
		}
		id := queue[qi]
		pw, err := e.replay(id)
		if err != nil {
			return err
		}
		parentKey := e.encode(pw)
		parentChk := len(pw.f.Checker.Violations())
		acts := e.enabled(pw)

		// Deadlock: open protocol work with nothing deliverable and no
		// retry to fire means some required message was never sent (or
		// was dropped).
		hasDeliver, retries := false, 0
		for _, a := range acts {
			switch a.kind {
			case aDeliver:
				hasDeliver = true
			case aRetry:
				retries++
			}
		}
		if pw.f.OpenWork() && !hasDeliver && retries == 0 {
			e.violation("deadlock", "open transactions with no deliverable message and no retry to fire", id)
			continue
		}

		retrySelfLoops := 0
		for _, a := range acts {
			if e.done() {
				break
			}
			cw, err := e.replay(id)
			if err != nil {
				return err
			}
			desc, aerr := e.apply(cw, a)
			e.res.Transitions++
			if aerr != nil {
				if _, ok := aerr.(errDiverged); ok {
					return aerr
				}
				// Event-budget blowout: report it with the offending step
				// appended to the parent's trace.
				v := Violation{Kind: "event-budget", Message: aerr.Error(), Trace: append(e.trace(id), desc)}
				e.res.Violations = append(e.res.Violations, v)
				continue
			}
			k := e.encode(cw)
			if a.kind == aRetry && k == parentKey {
				retrySelfLoops++
			}
			if prev, ok := e.visited[k]; ok {
				if e.cfg.RecordEdges {
					e.res.Edges = append(e.res.Edges, Edge{From: id, To: prev, Label: desc})
				}
				continue
			}
			nid := int32(len(e.nodes))
			e.visited[k] = nid
			d := e.nodes[id].depth + 1
			e.nodes = append(e.nodes, node{parent: id, depth: d, act: a})
			if int(d) > e.res.Depth {
				e.res.Depth = int(d)
			}
			e.res.States++
			if e.cfg.RecordEdges {
				e.res.Edges = append(e.res.Edges, Edge{From: id, To: nid, Label: desc})
			}
			e.checkState(cw, nid, parentChk)
			queue = append(queue, nid)
		}

		// Livelock: protocol work is stuck behind retries whose firing
		// changes nothing, and no delivery can unblock them — the blocked
		// allocations will spin forever no matter what else is injected.
		if pw.f.OpenWork() && !hasDeliver && retries > 0 && retrySelfLoops == retries && !e.done() {
			e.violation("livelock", "all enabled retries loop back to the same state with open transactions", id)
		}
	}
	return nil
}
