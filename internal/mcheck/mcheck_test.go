package mcheck

import (
	"strings"
	"testing"

	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/noc"
)

// TestExhaustiveClean is the protocol gate: every directory organization
// must exhaust the 2-core/1-address state space with zero violations and
// no truncation.
func TestExhaustiveClean(t *testing.T) {
	for _, kind := range Kinds() {
		kind := kind
		t.Run(kind, func(t *testing.T) {
			t.Parallel()
			res, err := Run(Config{Cores: 2, Addrs: 1, Kind: kind})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			for _, v := range res.Violations {
				t.Errorf("violation:\n%s", v)
			}
			if res.Truncated != "" {
				t.Errorf("search truncated (%s); the 2x1 space must be exhaustible", res.Truncated)
			}
			if res.States < 100 {
				t.Errorf("suspiciously small state space: %d states", res.States)
			}
			if res.Quiescent == 0 {
				t.Errorf("no quiescent states reached; audits never ran")
			}
			t.Logf("%s", res.Summary())
		})
	}
}

// TestConflictBounded drives two cores over two blocks that collide on a
// one-entry directory slice — the configuration where sparse recalls and
// stash stashing actually fire — under a depth bound.
func TestConflictBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("bounded conflict exploration is a few seconds per kind")
	}
	for _, kind := range []string{"sparse", "stash", "stash-ss", "cuckoo"} {
		kind := kind
		t.Run(kind, func(t *testing.T) {
			t.Parallel()
			res, err := Run(Config{Cores: 2, Addrs: 2, Kind: kind, MaxDepth: 3})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			for _, v := range res.Violations {
				t.Errorf("violation:\n%s", v)
			}
			t.Logf("%s", res.Summary())
		})
	}
}

// TestSilentAndThreeHopVariants covers the protocol's two optional modes
// on the exhaustible configuration.
func TestSilentAndThreeHopVariants(t *testing.T) {
	if testing.Short() {
		t.Skip("variant exploration is a few seconds")
	}
	for _, tc := range []struct {
		name   string
		silent bool
		three  bool
	}{{"silent-evict", true, false}, {"three-hop", false, true}} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			res, err := Run(Config{Cores: 2, Addrs: 1, Kind: "stash", SilentEvict: tc.silent, ThreeHop: tc.three})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			for _, v := range res.Violations {
				t.Errorf("violation:\n%s", v)
			}
			t.Logf("%s", res.Summary())
		})
	}
}

// TestDroppedInvAckYieldsDeadlock mutates the protocol at the transport
// boundary — the first invalidation acknowledgment is silently dropped —
// and demands that the checker produce a deadlock counterexample: the
// bank's transaction waits for an ack that never arrives.
func TestDroppedInvAckYieldsDeadlock(t *testing.T) {
	res, err := Run(Config{
		Cores: 2, Addrs: 1, Kind: "stash",
		NewDropFilter: func() func(src, dst noc.NodeID, m *coherence.Msg) bool {
			dropped := false
			return func(src, dst noc.NodeID, m *coherence.Msg) bool {
				if !dropped && m.Type == coherence.MsgInvAck {
					dropped = true
					return true
				}
				return false
			}
		},
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Violations) == 0 {
		t.Fatalf("dropped InvAck went undetected: %s", res.Summary())
	}
	v := res.Violations[0]
	if v.Kind != "deadlock" {
		t.Errorf("first violation kind = %q, want deadlock:\n%s", v.Kind, v)
	}
	if len(v.Trace) == 0 {
		t.Errorf("counterexample has no trace")
	}
	if len(v.Trace) > 10 {
		t.Errorf("counterexample is not minimal: %d steps\n%s", len(v.Trace), v)
	}
	t.Logf("minimal counterexample (%d steps):\n%s", len(v.Trace), v)
}

// forgetfulStash wraps the stash directory and reports its stash
// evictions as plain allocations, modeling a bank that forgets to set the
// hidden bit: the dropped entry's private copy becomes untrackable.
type forgetfulStash struct{ core.Directory }

func (d forgetfulStash) Allocate(b mem.Block, busy func(mem.Block) bool) core.AllocResult {
	res := d.Directory.Allocate(b, busy)
	if res.Outcome == core.AllocStashed {
		res.Outcome = core.AllocOK
	}
	return res
}

// TestForgottenHiddenBitYieldsViolation mutates the stash path — a stashed
// entry's hidden bit is never set — and demands a tracking-lost
// counterexample from the per-state invariants.
func TestForgottenHiddenBitYieldsViolation(t *testing.T) {
	res, err := Run(Config{
		Cores: 2, Addrs: 2, Kind: "stash", MaxDepth: 3,
		WrapDirectory: func(d core.Directory) core.Directory { return forgetfulStash{d} },
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Violations) == 0 {
		t.Fatalf("forgotten hidden bit went undetected: %s", res.Summary())
	}
	v := res.Violations[0]
	if !strings.Contains(v.Message, "tracking lost") {
		t.Errorf("first violation = %q, want a tracking-lost report:\n%s", v.Message, v)
	}
	if len(v.Trace) == 0 || len(v.Trace) > 8 {
		t.Errorf("counterexample trace has %d steps, want short and nonempty:\n%s", len(v.Trace), v)
	}
	t.Logf("minimal counterexample (%d steps):\n%s", len(v.Trace), v)
}

// TestEncodingCanonical checks that two independently built initial worlds
// encode identically (the dedup key must be history-free), and that the
// encoder actually distinguishes a perturbed state.
func TestEncodingCanonical(t *testing.T) {
	e1 := &Explorer{cfg: Config{Cores: 2, Addrs: 2, Kind: "stash"}, enc: coherence.NewStateEncoder()}
	e1.cfg.setDefaults()
	e1.blocks = []mem.Block{0, 2}
	w1, err := e1.newWorld()
	if err != nil {
		t.Fatal(err)
	}
	k1 := e1.encode(w1)

	e2 := &Explorer{cfg: e1.cfg, enc: coherence.NewStateEncoder(), blocks: e1.blocks}
	w2, err := e2.newWorld()
	if err != nil {
		t.Fatal(err)
	}
	k2 := e2.encode(w2)
	if k1 != k2 {
		t.Errorf("fresh worlds encode differently (%d vs %d bytes)", len(k1), len(k2))
	}

	if _, err := e2.apply(w2, action{kind: aLoad, core: 0, addr: 0}); err != nil {
		t.Fatalf("apply: %v", err)
	}
	if e2.encode(w2) == k1 {
		t.Errorf("state changed by a load encodes identically to the initial state")
	}
}
