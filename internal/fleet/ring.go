// Package fleet scales the run service across processes: a coordinator
// stashd consistent-hashes job keys (the runner's truncated-SHA-256
// canonical-config hash) across N worker stashds, streams sweep results
// back with backpressure, deduplicates identical in-flight configs
// fleet-wide, and probes the shared content-addressed result store before
// dispatching at all. Overload degrades instead of collapsing: per-client
// token buckets and pending-job bounds shed with 429/503 + Retry-After on
// the coordinator tier exactly as they do on the workers.
package fleet

import (
	"fmt"
	"sort"
)

// defaultReplicas is the virtual-node count per worker. 128 points per
// worker keeps the largest/smallest ownership ratio within a few percent
// for small fleets, and construction is O(workers·replicas·log) once.
const defaultReplicas = 128

// Ring is an immutable consistent-hash ring over worker names. Keys are the
// runner's canonical config hashes — already uniformly distributed, which
// is what makes them a perfect shard key — and each maps to a preference
// order of distinct workers: the owner first, then the failover sequence.
// Immutability after construction is what lets every lookup run lock-free.
type Ring struct {
	workers []string
	points  []point // sorted by hash
}

// point is one virtual node: a position on the ring owned by a worker.
type point struct {
	hash   uint64
	worker int // index into workers
}

// NewRing places each worker at replicas points on the ring. replicas <= 0
// selects the default.
func NewRing(workers []string, replicas int) *Ring {
	if replicas <= 0 {
		replicas = defaultReplicas
	}
	r := &Ring{workers: append([]string(nil), workers...)}
	r.points = make([]point, 0, len(workers)*replicas)
	for wi, w := range r.workers {
		for v := 0; v < replicas; v++ {
			r.points = append(r.points, point{hash: hash64(fmt.Sprintf("%s#%d", w, v)), worker: wi})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Ties (vanishingly rare with 64-bit points) break by worker index
		// so construction order never changes ownership.
		return r.points[i].worker < r.points[j].worker
	})
	return r
}

// Workers returns the ring's members in construction order.
func (r *Ring) Workers() []string {
	return append([]string(nil), r.workers...)
}

// Owner returns the worker owning key: the first point at or clockwise from
// the key's position.
func (r *Ring) Owner(key string) string {
	return r.workers[r.points[r.succ(key)].worker]
}

// Preference returns every worker in failover order for key: the owner,
// then each distinct worker encountered walking the ring clockwise. Every
// node computes the same order from the same membership, so the coordinator
// and any future peer agree on where a key lives and where it moves when a
// worker is down.
func (r *Ring) Preference(key string) []string {
	out := make([]string, 0, len(r.workers))
	seen := make([]bool, len(r.workers))
	for i, n := r.succ(key), 0; n < len(r.points) && len(out) < len(r.workers); i, n = (i+1)%len(r.points), n+1 {
		w := r.points[i].worker
		if !seen[w] {
			seen[w] = true
			out = append(out, r.workers[w])
		}
	}
	return out
}

// succ returns the index of the first point at or after key's hash,
// wrapping at the top of the ring.
func (r *Ring) succ(key string) int {
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}

// hash64 is FNV-1a over s, inlined so a lookup never allocates. The job
// keys fed to it are themselves truncated SHA-256 hex, so the ring needs
// dispersion, not cryptographic strength.
func hash64(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}
