package fleet

import (
	"context"
	"sync"

	"repro/internal/stashd"
)

// outcome is what one dispatch produced: the worker's reply (or one
// fabricated from the shared store), shared by however many clients joined
// the call.
type outcome struct {
	resp   stashd.RunResponse
	worker string // which worker served it; "" for shared-store hits
}

// call is one in-flight dispatch shared by every submitter of the same job
// key — the runner's coalescing lifted to the fleet tier. Its execution is
// detached from any single submitter: each joins as a waiter, and the
// shared dispatch context is cancelled only when the last waiter has left.
// One client disconnecting therefore cannot fail a dispatch another client
// is still waiting on.
type call struct {
	key    string
	done   chan struct{}
	cancel context.CancelFunc

	waiters  int  //stash:guardedby dedup.mu
	finished bool //stash:guardedby dedup.mu

	// out and err are written once, before done closes, and only read
	// after; the close is the publication barrier.
	out *outcome
	err error
}

// dedup is the fleet-wide in-flight table. A key appears at most once; a
// submission for a present key joins the existing call instead of
// dispatching its own.
type dedup struct {
	mu        sync.Mutex
	calls     map[string]*call //stash:guardedby mu
	coalesced int64            //stash:guardedby mu
}

func newDedup() *dedup {
	return &dedup{calls: make(map[string]*call)}
}

// do runs fn for key exactly once across every concurrent caller: the first
// caller becomes the leader and executes fn on a goroutine with a context
// that lives as long as any waiter remains; the rest join its call. Every
// caller blocks until the shared dispatch finishes or its own ctx is
// cancelled — and a caller abandoning the wait drops its registration, so
// the dispatch itself is cancelled only when nobody is left wanting it.
func (d *dedup) do(ctx context.Context, key string, fn func(ctx context.Context) (*outcome, error)) (*outcome, error) {
	d.mu.Lock()
	c, ok := d.calls[key]
	if ok {
		c.waiters++
		d.coalesced++
		d.mu.Unlock()
	} else {
		execCtx, cancel := context.WithCancel(context.Background())
		c = &call{key: key, done: make(chan struct{}), cancel: cancel, waiters: 1}
		d.calls[key] = c
		d.mu.Unlock()
		go func() {
			out, err := fn(execCtx)
			d.mu.Lock()
			c.finished = true
			if d.calls[key] == c {
				delete(d.calls, key)
			}
			d.mu.Unlock()
			c.out, c.err = out, err
			close(c.done)
			cancel() // release the context's resources; waiters are published
		}()
	}

	select {
	case <-c.done:
		return c.out, c.err
	case <-ctx.Done():
		d.drop(c)
		return nil, ctx.Err()
	}
}

// drop releases one waiter registration; the last live waiter to leave an
// unfinished call cancels its dispatch and retires the table entry so a
// later identical submission starts fresh.
func (d *dedup) drop(c *call) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if c.finished {
		return
	}
	if c.waiters > 0 {
		c.waiters--
	}
	if c.waiters == 0 {
		c.cancel()
		if d.calls[c.key] == c {
			delete(d.calls, c.key)
		}
	}
}

// coalescedCount reports how many submissions joined an existing call.
func (d *dedup) coalescedCount() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.coalesced
}
