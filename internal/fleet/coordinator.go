package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/runner"
	"repro/internal/stashd"
	"repro/internal/system"
)

// Defaults for CoordinatorOptions zero values.
const (
	defaultMaxPerWorker = 4
	defaultDownCooldown = 2 * time.Second
)

// CoordinatorOptions configure a coordinator. Workers is the only mandatory
// field.
type CoordinatorOptions struct {
	// Workers are the base URLs of the worker stashds (e.g.
	// "http://10.0.0.1:8080"). Job keys consistent-hash across them.
	Workers []string
	// Replicas is the virtual-node count per worker; 0 picks the default.
	Replicas int
	// StoreDir, when set, is the shared content-addressed result store (the
	// workers' disk-cache directory). The coordinator probes it before
	// dispatching and answers hits itself with provenance "remote".
	StoreDir string
	// MaxPerWorker bounds outstanding dispatches per worker — the
	// backpressure that keeps a slow worker from absorbing the whole sweep's
	// concurrency; 0 picks the default.
	MaxPerWorker int
	// MaxPending sheds new requests (503 + Retry-After) once this many
	// admitted jobs are unfinished fleet-wide; 0 disables shedding.
	MaxPending int
	// RatePerSec and Burst mirror stashd.Options: the per-client token
	// bucket, refusing with 429 + Retry-After. 0 disables rate limiting.
	RatePerSec float64
	Burst      float64
	// DownCooldown is how long a worker stays deprioritized after a
	// transport failure; 0 picks the default.
	DownCooldown time.Duration
	// Client issues the dispatch requests; nil uses a plain http.Client
	// (dispatches are cancelled through their contexts, not a client
	// timeout).
	Client *http.Client
}

// Coordinator is the fleet front door: an http.Handler exposing the same
// POST /run and POST /sweep surface as a single stashd, implemented by
// consistent-hashing each job's canonical config key across worker stashds.
// Identical in-flight configs collapse to one dispatch fleet-wide, the
// shared store answers repeats without touching a worker, and a down worker
// fails over along the ring's preference order.
type Coordinator struct {
	opts    CoordinatorOptions
	ring    *Ring
	workers map[string]*workerState // immutable after construction
	store   *runner.Store           // nil when StoreDir is unset
	dedup   *dedup
	limiter *stashd.Limiter
	client  *http.Client
	mux     *http.ServeMux
	start   time.Time

	pending    atomic.Int64 // admitted, unfinished jobs
	proxied    atomic.Int64 // dispatches answered by a worker
	remoteHits atomic.Int64 // jobs answered from the shared store
	failovers  atomic.Int64 // dispatch attempts beyond a key's first choice
	shedRate   atomic.Int64 // 429s issued
	shedQueue  atomic.Int64 // 503s issued

	mu           sync.Mutex
	activeSweeps int //stash:guardedby mu
}

// workerState is the coordinator's view of one worker: a dispatch-slot
// semaphore for backpressure and a health cooldown for failover ordering.
type workerState struct {
	name string        // base URL; also the ring member name
	sem  chan struct{} // one slot per allowed outstanding dispatch

	outstanding atomic.Int64 // dispatches in flight right now
	dispatched  atomic.Int64 // dispatches ever answered by this worker

	mu        sync.Mutex
	downUntil time.Time //stash:guardedby mu
}

func (w *workerState) healthy(now time.Time) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return !now.Before(w.downUntil)
}

func (w *workerState) markDown(until time.Time) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if until.After(w.downUntil) {
		w.downUntil = until
	}
}

// NewCoordinator validates the options and builds the handler.
func NewCoordinator(opts CoordinatorOptions) (*Coordinator, error) {
	if len(opts.Workers) == 0 {
		return nil, fmt.Errorf("fleet: a coordinator needs at least one worker")
	}
	seen := map[string]bool{}
	for _, w := range opts.Workers {
		if w == "" {
			return nil, fmt.Errorf("fleet: empty worker URL")
		}
		if seen[w] {
			return nil, fmt.Errorf("fleet: duplicate worker %s", w)
		}
		seen[w] = true
	}
	if opts.MaxPerWorker <= 0 {
		opts.MaxPerWorker = defaultMaxPerWorker
	}
	if opts.DownCooldown <= 0 {
		opts.DownCooldown = defaultDownCooldown
	}
	c := &Coordinator{
		opts:    opts,
		ring:    NewRing(opts.Workers, opts.Replicas),
		workers: make(map[string]*workerState, len(opts.Workers)),
		dedup:   newDedup(),
		limiter: stashd.NewLimiter(opts.RatePerSec, opts.Burst),
		client:  opts.Client,
		mux:     http.NewServeMux(),
		start:   time.Now(),
	}
	if c.client == nil {
		c.client = &http.Client{}
	}
	if opts.StoreDir != "" {
		c.store = runner.OpenStore(opts.StoreDir)
	}
	for _, w := range opts.Workers {
		c.workers[w] = &workerState{name: w, sem: make(chan struct{}, opts.MaxPerWorker)}
	}
	c.mux.HandleFunc("POST /run", c.handleRun)
	c.mux.HandleFunc("POST /sweep", c.handleSweep)
	c.mux.HandleFunc("GET /metrics", c.handleMetrics)
	c.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return c, nil
}

// ServeHTTP implements http.Handler.
func (c *Coordinator) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	c.mux.ServeHTTP(w, req)
}

// admitRate applies the per-client token bucket; a refusal writes the 429
// itself and returns false. The contract matches the worker tier's, so a
// client retries identically whichever tier shed it.
func (c *Coordinator) admitRate(w http.ResponseWriter, req *http.Request) bool {
	if c.limiter == nil {
		return true
	}
	ok, retry := c.limiter.Allow(stashd.ClientKey(req), time.Now())
	if ok {
		return true
	}
	c.shedRate.Add(1)
	w.Header().Set("Retry-After", strconv.Itoa(int(retry/time.Second)))
	httpError(w, http.StatusTooManyRequests,
		fmt.Errorf("fleet: client %s over rate limit; retry after %v", stashd.ClientKey(req), retry))
	return false
}

// admitPending sheds a request whose jobs would push the fleet-wide pending
// count past the bound; a refusal writes the 503 itself and returns false.
// On admission the jobs are already counted — every admitted job must
// eventually pass through one finishJob.
func (c *Coordinator) admitPending(w http.ResponseWriter, jobs int) bool {
	if c.opts.MaxPending <= 0 {
		c.pending.Add(int64(jobs))
		return true
	}
	depth := c.pending.Load()
	if depth+int64(jobs) > int64(c.opts.MaxPending) {
		c.shedQueue.Add(1)
		// The coordinator has no run-latency estimate of its own; scale the
		// wait with how far over the bound we are, clamped like the workers'.
		retry := time.Duration(depth/int64(c.opts.MaxPending)+1) * time.Second
		if retry > time.Minute {
			retry = time.Minute
		}
		w.Header().Set("Retry-After", strconv.Itoa(int(retry/time.Second)))
		httpError(w, http.StatusServiceUnavailable,
			fmt.Errorf("fleet: %d pending jobs + %d new exceeds limit %d; retry after %v",
				depth, jobs, c.opts.MaxPending, retry))
		return false
	}
	c.pending.Add(int64(jobs))
	return true
}

func (c *Coordinator) finishJob() {
	c.pending.Add(-1)
}

func (c *Coordinator) handleRun(w http.ResponseWriter, req *http.Request) {
	if !c.admitRate(w, req) {
		return
	}
	var rr stashd.RunRequest
	if err := json.NewDecoder(req.Body).Decode(&rr); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("fleet: bad request body: %w", err))
		return
	}
	cfg, err := rr.Config()
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	key, err := runner.Key(cfg)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if !c.admitPending(w, 1) {
		return
	}
	defer c.finishJob()
	out, err := c.runJob(req.Context(), key, cfg)
	if err != nil {
		if req.Context().Err() != nil {
			return // the client is gone; nothing useful to write
		}
		httpError(w, http.StatusBadGateway, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out.resp)
}

func (c *Coordinator) handleSweep(w http.ResponseWriter, req *http.Request) {
	if !c.admitRate(w, req) {
		return
	}
	var sr stashd.SweepRequest
	if err := json.NewDecoder(req.Body).Decode(&sr); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("fleet: bad request body: %w", err))
		return
	}
	cfgs, err := sr.Configs()
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	keys := make([]string, len(cfgs))
	for i, cfg := range cfgs {
		if keys[i], err = runner.Key(cfg); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
	}
	if !c.admitPending(w, len(cfgs)) {
		return
	}

	c.beginSweep()
	defer c.endSweep()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	start := time.Now()

	// One goroutine per config, each sending exactly one line; the buffer
	// covers them all, so an early return (client disconnect) strands
	// nobody. The per-worker semaphores, not this fan-out, bound how much
	// actually runs at once — a slow worker backpressures only its own
	// share of the sweep.
	lines := make(chan stashd.SweepLine, len(cfgs))
	for i, cfg := range cfgs {
		go func(i int, cfg system.Config) {
			out, err := c.runJob(req.Context(), keys[i], cfg)
			c.finishJob()
			line := stashd.SweepLine{
				Type:     "job",
				Workload: cfg.Workload,
				DirKind:  cfg.DirKind,
				Coverage: cfg.Coverage,
			}
			if err != nil {
				line.Error = err.Error()
			} else {
				line.JobID = out.resp.JobID
				line.CacheHit = out.resp.CacheHit
				line.DurationMS = out.resp.DurationMS
				if res := out.resp.Result; res != nil {
					line.Cycles = res.Cycles
					line.AccessesPerKCycle = res.AccessesPerKCycle
				}
			}
			lines <- line
		}(i, cfg)
	}

	var done stashd.SweepLine
	done.Type = "done"
	for range cfgs {
		var line stashd.SweepLine
		select {
		case line = <-lines:
		case <-req.Context().Done():
			// The client is gone. The buffered channel lets the remaining
			// goroutines deliver and exit; their dedup registrations drop as
			// their contexts cancel.
			return
		}
		done.Jobs++
		if line.CacheHit != "" {
			done.CacheHits++
		}
		if line.Error != "" {
			done.Failures++
		}
		if err := enc.Encode(line); err != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	done.ElapsedMS = float64(time.Since(start)) / float64(time.Millisecond)
	// Same contract as the worker tier: the done line terminates the stream,
	// so it is encoded with its error checked and explicitly flushed.
	if err := enc.Encode(done); err != nil {
		return
	}
	if flusher != nil {
		flusher.Flush()
	}
}

// runJob resolves one job: fleet-wide dedup wrapping a shared-store probe
// and, on a miss, a ring-ordered dispatch. Concurrent identical configs —
// even from different clients — share one execution.
func (c *Coordinator) runJob(ctx context.Context, key string, cfg system.Config) (*outcome, error) {
	return c.dedup.do(ctx, key, func(execCtx context.Context) (*outcome, error) {
		if c.store != nil {
			if res, _, ok := c.store.Get(key); ok {
				c.remoteHits.Add(1)
				return &outcome{resp: stashd.RunResponse{
					JobID:    "store-" + key,
					CacheHit: runner.HitRemote,
					Result:   res,
				}}, nil
			}
		}
		return c.dispatch(execCtx, key, cfg)
	})
}

// dispatch tries the key's workers in preference order — healthy owners
// first, then the clockwise failover sequence, then deprioritized workers
// as a last resort — until one answers.
func (c *Coordinator) dispatch(ctx context.Context, key string, cfg system.Config) (*outcome, error) {
	body, err := json.Marshal(stashd.InternalRunRequest{Config: cfg})
	if err != nil {
		return nil, fmt.Errorf("fleet: encode dispatch: %w", err)
	}
	var lastErr error
	for i, ws := range c.preference(key) {
		if i > 0 {
			c.failovers.Add(1)
		}
		out, retryable, err := c.dispatchTo(ctx, ws, body)
		if err == nil {
			c.proxied.Add(1)
			return out, nil
		}
		if ctx.Err() != nil {
			return nil, err // every waiter left, or the deadline passed
		}
		if !retryable {
			return nil, err
		}
		lastErr = err
	}
	return nil, fmt.Errorf("fleet: job %s failed on every worker: %w", key, lastErr)
}

// preference orders the key's workers for dispatch: the ring's failover
// sequence, stably partitioned so workers inside a down cooldown sink to
// the back (still tried — a cooldown is a hint, not an eviction).
func (c *Coordinator) preference(key string) []*workerState {
	names := c.ring.Preference(key)
	now := time.Now()
	out := make([]*workerState, 0, len(names))
	down := make([]*workerState, 0, len(names))
	for _, n := range names {
		ws := c.workers[n]
		if ws.healthy(now) {
			out = append(out, ws)
		} else {
			down = append(down, ws)
		}
	}
	return append(out, down...)
}

// dispatchTo runs one attempt against one worker. retryable reports whether
// the failure is the worker's (unreachable, shedding) rather than the
// job's: a 4xx or a simulation failure would reproduce identically
// anywhere, so failing over would only burn another worker's time.
func (c *Coordinator) dispatchTo(ctx context.Context, ws *workerState, body []byte) (*outcome, bool, error) {
	select {
	case ws.sem <- struct{}{}:
	case <-ctx.Done():
		return nil, false, ctx.Err()
	}
	ws.outstanding.Add(1)
	defer func() {
		ws.outstanding.Add(-1)
		<-ws.sem //stash:blocking releasing the slot this dispatch holds never blocks
	}()

	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ws.name+"/internal/run", bytes.NewReader(body))
	if err != nil {
		return nil, false, fmt.Errorf("fleet: build dispatch to %s: %w", ws.name, err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			// The dispatch was cancelled from our side (every waiter left);
			// that says nothing about the worker's health.
			return nil, false, ctx.Err()
		}
		ws.markDown(time.Now().Add(c.opts.DownCooldown))
		return nil, true, fmt.Errorf("fleet: worker %s unreachable: %w", ws.name, err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		var rr stashd.RunResponse
		if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
			ws.markDown(time.Now().Add(c.opts.DownCooldown))
			return nil, true, fmt.Errorf("fleet: worker %s sent a bad response: %w", ws.name, err)
		}
		ws.dispatched.Add(1)
		return &outcome{resp: rr, worker: ws.name}, false, nil
	case http.StatusServiceUnavailable:
		// The worker is shedding: alive but full. Fail over without a
		// cooldown — its queue may drain before its neighbor's.
		return nil, true, fmt.Errorf("fleet: worker %s shedding: %s", ws.name, readErrorBody(resp.Body))
	default:
		// 400s are malformed dispatches, 500s are deterministic simulation
		// failures; both reproduce on every worker.
		return nil, false, fmt.Errorf("fleet: worker %s rejected the job (HTTP %d): %s",
			ws.name, resp.StatusCode, readErrorBody(resp.Body))
	}
}

// readErrorBody extracts the worker's JSON error message, falling back to
// the raw (bounded) body.
func readErrorBody(r io.Reader) string {
	b, _ := io.ReadAll(io.LimitReader(r, 4096))
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(b, &e) == nil && e.Error != "" {
		return e.Error
	}
	return strings.TrimSpace(string(b))
}

// httpError writes a JSON error body with the given status (the same shape
// the worker tier writes, so clients parse one schema).
func httpError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

func (c *Coordinator) beginSweep() {
	c.mu.Lock()
	c.activeSweeps++
	c.mu.Unlock()
}

func (c *Coordinator) endSweep() {
	c.mu.Lock()
	c.activeSweeps--
	c.mu.Unlock()
}

func (c *Coordinator) activeSweepCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.activeSweeps
}

func (c *Coordinator) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	now := time.Now()
	healthy := 0
	for _, name := range c.ring.Workers() {
		if c.workers[name].healthy(now) {
			healthy++
		}
	}
	fmt.Fprintf(w, "stashd_fleet_workers %d\n", len(c.workers))
	fmt.Fprintf(w, "stashd_fleet_workers_healthy %d\n", healthy)
	fmt.Fprintf(w, "stashd_fleet_pending_jobs %d\n", c.pending.Load())
	fmt.Fprintf(w, "stashd_fleet_proxied_total %d\n", c.proxied.Load())
	fmt.Fprintf(w, "stashd_fleet_coalesced_total %d\n", c.dedup.coalescedCount())
	fmt.Fprintf(w, "stashd_fleet_remote_hits_total %d\n", c.remoteHits.Load())
	fmt.Fprintf(w, "stashd_fleet_failovers_total %d\n", c.failovers.Load())
	fmt.Fprintf(w, "stashd_shed_rate_total %d\n", c.shedRate.Load())
	fmt.Fprintf(w, "stashd_shed_queue_total %d\n", c.shedQueue.Load())
	fmt.Fprintf(w, "stashd_active_sweeps %d\n", c.activeSweepCount())
	// Per-worker gauges in ring construction order, so scrapes are stable.
	for _, name := range c.ring.Workers() {
		ws := c.workers[name]
		up := 0
		if ws.healthy(now) {
			up = 1
		}
		fmt.Fprintf(w, "stashd_fleet_worker_healthy{worker=%q} %d\n", name, up)
		fmt.Fprintf(w, "stashd_fleet_worker_outstanding{worker=%q} %d\n", name, ws.outstanding.Load())
		fmt.Fprintf(w, "stashd_fleet_worker_dispatched_total{worker=%q} %d\n", name, ws.dispatched.Load())
	}
	fmt.Fprintf(w, "stashd_uptime_seconds %.0f\n", time.Since(c.start).Seconds())
}
