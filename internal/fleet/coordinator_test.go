package fleet

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/runner"
	"repro/internal/stashd"
	"repro/internal/system"
	"repro/internal/testutil/leakcheck"
)

// tinyBase is a request base small enough that one simulation takes a few
// milliseconds (mirrors the stashd test suite).
func tinyBase() stashd.RunRequest {
	return stashd.RunRequest{
		Quick:           true,
		Cores:           4,
		AccessesPerCore: 1500,
		WorkloadScale:   0.25,
	}
}

func tinySweep() stashd.SweepRequest {
	return stashd.SweepRequest{
		Base:      tinyBase(),
		Workloads: []string{"blackscholes"},
		DirKinds:  []string{system.DirSparse, system.DirStash},
		Coverages: []float64{1, 0.5},
	}
}

// startWorker runs a real stashd worker (runner + HTTP layer) for the
// coordinator to dispatch to.
func startWorker(t *testing.T, cacheDir, origin string) *httptest.Server {
	t.Helper()
	r := runner.New(runner.Options{Workers: 2, CacheDir: cacheDir, Origin: origin})
	ts := httptest.NewServer(stashd.NewServer(r))
	t.Cleanup(func() {
		ts.Close()
		r.Close()
	})
	return ts
}

// startCoordinator builds a coordinator over the given worker URLs and
// serves it.
func startCoordinator(t *testing.T, opts CoordinatorOptions) (*httptest.Server, *Coordinator) {
	t.Helper()
	co, err := NewCoordinator(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(co)
	t.Cleanup(ts.Close)
	return ts, co
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// readSweep decodes a /sweep ndjson stream into job lines plus the final
// done line.
func readSweep(t *testing.T, resp *http.Response) ([]stashd.SweepLine, stashd.SweepLine) {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep status = %d", resp.StatusCode)
	}
	var jobs []stashd.SweepLine
	var done stashd.SweepLine
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var line stashd.SweepLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad sweep line %q: %v", sc.Text(), err)
		}
		if line.Type == "done" {
			done = line
		} else {
			jobs = append(jobs, line)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return jobs, done
}

// canonicalSweep renders job lines with every scheduling artifact (job IDs,
// wall-clock durations, cache provenance, arrival order) stripped, leaving
// only the simulation results. Two correct services must produce these
// bytes identically.
func canonicalSweep(t *testing.T, jobs []stashd.SweepLine) []byte {
	t.Helper()
	norm := append([]stashd.SweepLine(nil), jobs...)
	for i := range norm {
		norm[i].JobID = ""
		norm[i].DurationMS = 0
		norm[i].CacheHit = ""
	}
	sort.Slice(norm, func(i, j int) bool {
		a, b := norm[i], norm[j]
		if a.Workload != b.Workload {
			return a.Workload < b.Workload
		}
		if a.DirKind != b.DirKind {
			return a.DirKind < b.DirKind
		}
		return a.Coverage < b.Coverage
	})
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, line := range norm {
		if err := enc.Encode(line); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// metricValue scrapes one counter from a /metrics page.
func metricValue(t *testing.T, url, name string) float64 {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 2 && fields[0] == name {
			v, err := strconv.ParseFloat(fields[1], 64)
			if err != nil {
				t.Fatalf("bad metric line %q: %v", sc.Text(), err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not found on %s/metrics", name, url)
	return 0
}

// stubWorker is a scripted /internal/run endpoint for exercising the
// coordinator's dispatch machinery without paying for simulations.
func stubWorker(t *testing.T, handler http.HandlerFunc) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("POST /internal/run", handler)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

func stubResponse(w http.ResponseWriter, jobID string) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(stashd.RunResponse{
		JobID:  jobID,
		Result: &system.Results{Cycles: 4242, AccessesPerKCycle: 1.5},
	})
}

func TestFleetSweepMatchesSingleStashd(t *testing.T) {
	leakcheck.Check(t)

	single := startWorker(t, "", "")
	resp := postJSON(t, single.URL+"/sweep", tinySweep())
	singleJobs, singleDone := readSweep(t, resp)

	w1 := startWorker(t, "", "w1")
	w2 := startWorker(t, "", "w2")
	fleetTS, _ := startCoordinator(t, CoordinatorOptions{Workers: []string{w1.URL, w2.URL}})
	resp = postJSON(t, fleetTS.URL+"/sweep", tinySweep())
	fleetJobs, fleetDone := readSweep(t, resp)

	if singleDone.Jobs != 4 || fleetDone.Jobs != 4 {
		t.Fatalf("done lines report %d and %d jobs, want 4 each", singleDone.Jobs, fleetDone.Jobs)
	}
	if singleDone.Failures != 0 || fleetDone.Failures != 0 {
		t.Fatalf("failures: single=%d fleet=%d", singleDone.Failures, fleetDone.Failures)
	}
	got, want := canonicalSweep(t, fleetJobs), canonicalSweep(t, singleJobs)
	if !bytes.Equal(got, want) {
		t.Fatalf("fleet sweep differs from single stashd:\nfleet:\n%s\nsingle:\n%s", got, want)
	}
	// Every job ran on exactly one worker: the two workers' completion
	// counters sum to the sweep size — no duplicated dispatches, no drops.
	d1 := metricValue(t, w1.URL, "stashd_jobs_completed_total")
	d2 := metricValue(t, w2.URL, "stashd_jobs_completed_total")
	if d1+d2 != 4 {
		t.Fatalf("workers completed %v + %v jobs, want 4 total", d1, d2)
	}
}

func TestFleetRunDedupesInFlight(t *testing.T) {
	leakcheck.Check(t)
	const clients = 5

	var hits atomic.Int64
	release := make(chan struct{})
	ws := stubWorker(t, func(w http.ResponseWriter, req *http.Request) {
		hits.Add(1)
		select {
		case <-release:
		case <-req.Context().Done():
			return
		}
		stubResponse(w, "stub-1")
	})
	fleetTS, co := startCoordinator(t, CoordinatorOptions{Workers: []string{ws.URL}})

	body := tinyBase()
	body.Workload = "blackscholes"
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	results := make(chan *http.Response, clients)
	for i := 0; i < clients; i++ {
		go func() {
			resp, err := http.Post(fleetTS.URL+"/run", "application/json", bytes.NewReader(b))
			if err != nil {
				t.Error(err)
				results <- nil
				return
			}
			results <- resp
		}()
	}
	// Release the single dispatch once every client has joined the shared
	// call.
	deadline := time.Now().Add(5 * time.Second)
	for {
		co.dedup.mu.Lock()
		joined := 0
		for _, c := range co.dedup.calls {
			joined += c.waiters
		}
		co.dedup.mu.Unlock()
		if joined == clients {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d clients joined the in-flight call", joined, clients)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)

	for i := 0; i < clients; i++ {
		resp := <-results
		if resp == nil {
			t.Fatalf("client %d: request failed", i)
		}
		var rr stashd.RunResponse
		if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || rr.JobID != "stub-1" {
			t.Fatalf("client %d: status %d jobID %q", i, resp.StatusCode, rr.JobID)
		}
	}
	if got := hits.Load(); got != 1 {
		t.Fatalf("worker saw %d dispatches for %d identical in-flight clients, want 1", got, clients)
	}
	if got := metricValue(t, fleetTS.URL, "stashd_fleet_coalesced_total"); got != clients-1 {
		t.Fatalf("stashd_fleet_coalesced_total = %v, want %d", got, clients-1)
	}
	if got := metricValue(t, fleetTS.URL, "stashd_fleet_proxied_total"); got != 1 {
		t.Fatalf("stashd_fleet_proxied_total = %v, want 1", got)
	}
}

func TestFleetFailoverWhenWorkerIsDown(t *testing.T) {
	leakcheck.Check(t)

	alive := stubWorker(t, func(w http.ResponseWriter, req *http.Request) {
		stubResponse(w, "served-by-alive")
	})
	dead := stubWorker(t, func(w http.ResponseWriter, req *http.Request) {})
	dead.Close() // unreachable from the start

	workers := []string{dead.URL, alive.URL}
	ring := NewRing(workers, 0)

	// Find a request whose key the ring assigns to the dead worker, so the
	// dispatch must fail over.
	var body stashd.RunRequest
	found := false
	for seed := int64(1); seed <= 64 && !found; seed++ {
		req := tinyBase()
		req.Workload = "blackscholes"
		req.Seed = seed
		cfg, err := req.Config()
		if err != nil {
			t.Fatal(err)
		}
		key, err := runner.Key(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if ring.Owner(key) == dead.URL {
			body, found = req, true
		}
	}
	if !found {
		t.Fatal("no seed in 1..64 hashed to the dead worker; the ring is not splitting keys")
	}

	fleetTS, _ := startCoordinator(t, CoordinatorOptions{Workers: workers})
	resp := postJSON(t, fleetTS.URL+"/run", body)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run through failover: status %d", resp.StatusCode)
	}
	var rr stashd.RunResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	if rr.JobID != "served-by-alive" {
		t.Fatalf("jobID = %q, want the surviving worker's", rr.JobID)
	}
	if got := metricValue(t, fleetTS.URL, "stashd_fleet_failovers_total"); got < 1 {
		t.Fatalf("stashd_fleet_failovers_total = %v, want >= 1", got)
	}
	if got := metricValue(t, fleetTS.URL, "stashd_fleet_workers_healthy"); got != 1 {
		t.Fatalf("stashd_fleet_workers_healthy = %v, want 1", got)
	}
}

func TestFleetSweepClientDisconnectMidStream(t *testing.T) {
	leakcheck.Check(t)

	var served atomic.Int64
	release := make(chan struct{})
	ws := stubWorker(t, func(w http.ResponseWriter, req *http.Request) {
		if served.Add(1) == 1 {
			stubResponse(w, "first")
			return
		}
		// Later jobs hang until the coordinator abandons them.
		select {
		case <-release:
			stubResponse(w, "late")
		case <-req.Context().Done():
		}
	})
	fleetTS, co := startCoordinator(t, CoordinatorOptions{Workers: []string{ws.URL}})

	b, err := json.Marshal(tinySweep())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, fleetTS.URL+"/sweep", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	// Read one streamed line, then walk away mid-sweep.
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatalf("no first line before disconnect: %v", sc.Err())
	}
	var first stashd.SweepLine
	if err := json.Unmarshal(sc.Bytes(), &first); err != nil {
		t.Fatalf("bad first line %q: %v", sc.Text(), err)
	}
	if first.Type != "job" {
		t.Fatalf("first line type = %q, want job", first.Type)
	}
	cancel()

	// The abandoned jobs must unwind completely: the pending gauge returns
	// to zero without the stub ever being released (the coordinator's own
	// cancellation propagates through the dispatches), and leakcheck holds
	// the goroutine side of the same claim.
	deadline := time.Now().Add(10 * time.Second)
	for co.pending.Load() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("pending = %d long after client disconnect", co.pending.Load())
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(release)
}

func TestFleetShedsWithRetryAfter(t *testing.T) {
	leakcheck.Check(t)

	t.Run("rate", func(t *testing.T) {
		leakcheck.Check(t)
		ws := stubWorker(t, func(w http.ResponseWriter, req *http.Request) {
			stubResponse(w, "ok")
		})
		fleetTS, _ := startCoordinator(t, CoordinatorOptions{
			Workers:    []string{ws.URL},
			RatePerSec: 0.001, // one token, then a very long refill
			Burst:      1,
		})
		body := tinyBase()
		body.Workload = "blackscholes"
		resp := postJSON(t, fleetTS.URL+"/run", body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("first run: status %d", resp.StatusCode)
		}
		resp = postJSON(t, fleetTS.URL+"/run", body)
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("second run: status %d, want 429", resp.StatusCode)
		}
		if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || ra < 1 {
			t.Fatalf("Retry-After = %q, want a positive integer", resp.Header.Get("Retry-After"))
		}
		if got := metricValue(t, fleetTS.URL, "stashd_shed_rate_total"); got != 1 {
			t.Fatalf("stashd_shed_rate_total = %v, want 1", got)
		}
	})

	t.Run("pending", func(t *testing.T) {
		leakcheck.Check(t)
		release := make(chan struct{})
		ws := stubWorker(t, func(w http.ResponseWriter, req *http.Request) {
			select {
			case <-release:
				stubResponse(w, "slow")
			case <-req.Context().Done():
			}
		})
		fleetTS, co := startCoordinator(t, CoordinatorOptions{
			Workers:    []string{ws.URL},
			MaxPending: 1,
		})
		body := tinyBase()
		body.Workload = "blackscholes"
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		firstDone := make(chan *http.Response, 1)
		go func() {
			resp, err := http.Post(fleetTS.URL+"/run", "application/json", bytes.NewReader(b))
			if err != nil {
				t.Error(err)
				firstDone <- nil
				return
			}
			firstDone <- resp
		}()
		deadline := time.Now().Add(5 * time.Second)
		for co.pending.Load() != 1 {
			if time.Now().After(deadline) {
				t.Fatal("first run never became pending")
			}
			time.Sleep(time.Millisecond)
		}

		other := body
		other.Seed = 999 // a different job, so it cannot coalesce
		resp := postJSON(t, fleetTS.URL+"/run", other)
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("over-bound run: status %d, want 503", resp.StatusCode)
		}
		if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || ra < 1 {
			t.Fatalf("Retry-After = %q, want a positive integer", resp.Header.Get("Retry-After"))
		}
		if got := metricValue(t, fleetTS.URL, "stashd_shed_queue_total"); got != 1 {
			t.Fatalf("stashd_shed_queue_total = %v, want 1", got)
		}

		close(release)
		first := <-firstDone
		if first == nil {
			t.Fatal("first run: request failed")
		}
		first.Body.Close()
		if first.StatusCode != http.StatusOK {
			t.Fatalf("first run: status %d", first.StatusCode)
		}
	})
}

func TestFleetServesRepeatsFromSharedStore(t *testing.T) {
	leakcheck.Check(t)

	dir := t.TempDir()
	w1 := startWorker(t, dir, "w1")
	fleetTS, _ := startCoordinator(t, CoordinatorOptions{
		Workers:  []string{w1.URL},
		StoreDir: dir,
	})
	body := tinyBase()
	body.Workload = "blackscholes"

	resp := postJSON(t, fleetTS.URL+"/run", body)
	var miss stashd.RunResponse
	if err := json.NewDecoder(resp.Body).Decode(&miss); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || miss.CacheHit != "" {
		t.Fatalf("first run: status %d cacheHit %q, want a dispatched miss", resp.StatusCode, miss.CacheHit)
	}

	resp = postJSON(t, fleetTS.URL+"/run", body)
	var hit stashd.RunResponse
	if err := json.NewDecoder(resp.Body).Decode(&hit); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if hit.CacheHit != runner.HitRemote {
		t.Fatalf("repeat run cacheHit = %q, want %q", hit.CacheHit, runner.HitRemote)
	}
	if hit.Result == nil || miss.Result == nil || hit.Result.Cycles != miss.Result.Cycles {
		t.Fatalf("store hit result differs from the original run")
	}
	if got := metricValue(t, fleetTS.URL, "stashd_fleet_remote_hits_total"); got != 1 {
		t.Fatalf("stashd_fleet_remote_hits_total = %v, want 1", got)
	}
	if got := metricValue(t, fleetTS.URL, "stashd_fleet_proxied_total"); got != 1 {
		t.Fatalf("stashd_fleet_proxied_total = %v, want 1: the repeat must not reach a worker", got)
	}
}

func TestFleetMetricsPage(t *testing.T) {
	leakcheck.Check(t)
	ws := stubWorker(t, func(w http.ResponseWriter, req *http.Request) {
		stubResponse(w, "ok")
	})
	fleetTS, _ := startCoordinator(t, CoordinatorOptions{Workers: []string{ws.URL}})
	if got := metricValue(t, fleetTS.URL, "stashd_fleet_workers"); got != 1 {
		t.Fatalf("stashd_fleet_workers = %v, want 1", got)
	}
	resp, err := http.Get(fleetTS.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var page bytes.Buffer
	if _, err := page.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"stashd_fleet_pending_jobs",
		"stashd_fleet_coalesced_total",
		"stashd_fleet_remote_hits_total",
		"stashd_fleet_failovers_total",
		"stashd_shed_rate_total",
		"stashd_shed_queue_total",
		fmt.Sprintf("stashd_fleet_worker_outstanding{worker=%q}", ws.URL),
	} {
		if !strings.Contains(page.String(), want) {
			t.Fatalf("metrics page missing %s:\n%s", want, page.String())
		}
	}
}
