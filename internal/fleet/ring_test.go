package fleet

import (
	"fmt"
	"testing"
)

func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%04d", i)
	}
	return keys
}

func TestRingOwnerDeterministicAndOrderIndependent(t *testing.T) {
	workers := []string{"http://a", "http://b", "http://c"}
	reversed := []string{"http://c", "http://b", "http://a"}
	r1 := NewRing(workers, 0)
	r2 := NewRing(workers, 0)
	r3 := NewRing(reversed, 0)
	for _, k := range testKeys(1000) {
		if r1.Owner(k) != r2.Owner(k) {
			t.Fatalf("owner of %q differs between identical rings", k)
		}
		if r1.Owner(k) != r3.Owner(k) {
			t.Fatalf("owner of %q depends on construction order: %q vs %q", k, r1.Owner(k), r3.Owner(k))
		}
	}
}

func TestRingPreferenceCoversAllWorkersOnce(t *testing.T) {
	workers := []string{"http://a", "http://b", "http://c", "http://d"}
	r := NewRing(workers, 0)
	for _, k := range testKeys(200) {
		pref := r.Preference(k)
		if len(pref) != len(workers) {
			t.Fatalf("preference for %q has %d workers, want %d", k, len(pref), len(workers))
		}
		if pref[0] != r.Owner(k) {
			t.Fatalf("preference for %q starts at %q, owner is %q", k, pref[0], r.Owner(k))
		}
		seen := map[string]bool{}
		for _, w := range pref {
			if seen[w] {
				t.Fatalf("preference for %q repeats worker %q", k, w)
			}
			seen[w] = true
		}
	}
}

func TestRingBalance(t *testing.T) {
	workers := []string{"http://a", "http://b", "http://c"}
	r := NewRing(workers, 0)
	counts := map[string]int{}
	keys := testKeys(9000)
	for _, k := range keys {
		counts[r.Owner(k)]++
	}
	// With 128 virtual nodes per worker the split should be within a factor
	// of two of even — the point of virtual nodes.
	for _, w := range workers {
		share := float64(counts[w]) / float64(len(keys))
		if share < 1.0/(2*float64(len(workers))) || share > 2.0/float64(len(workers)) {
			t.Fatalf("worker %s owns %.1f%% of keys; distribution too skewed: %v", w, 100*share, counts)
		}
	}
}

func TestRingSingleWorkerOwnsEverything(t *testing.T) {
	r := NewRing([]string{"http://only"}, 0)
	for _, k := range testKeys(50) {
		if got := r.Owner(k); got != "http://only" {
			t.Fatalf("Owner(%q) = %q", k, got)
		}
	}
}
