package fleet

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/stashd"
	"repro/internal/testutil/leakcheck"
)

func TestDedupCoalescesConcurrentCallers(t *testing.T) {
	leakcheck.Check(t)
	d := newDedup()
	const callers = 8

	var executions atomic.Int64
	release := make(chan struct{})
	fn := func(ctx context.Context) (*outcome, error) {
		executions.Add(1)
		select {
		case <-release:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return &outcome{resp: stashd.RunResponse{JobID: "shared"}}, nil
	}

	var wg sync.WaitGroup
	results := make([]*outcome, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out, err := d.do(context.Background(), "k", fn)
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
				return
			}
			results[i] = out
		}(i)
	}

	// Wait until every caller has registered before releasing the leader,
	// so each one had the chance to coalesce.
	deadline := time.Now().Add(5 * time.Second)
	for {
		d.mu.Lock()
		c := d.calls["k"]
		waiters := 0
		if c != nil {
			waiters = c.waiters
		}
		d.mu.Unlock()
		if waiters == callers {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d callers joined the call", waiters, callers)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if got := executions.Load(); got != 1 {
		t.Fatalf("fn executed %d times, want 1", got)
	}
	if got := d.coalescedCount(); got != callers-1 {
		t.Fatalf("coalesced = %d, want %d", got, callers-1)
	}
	for i, out := range results {
		if out == nil || out.resp.JobID != "shared" {
			t.Fatalf("caller %d got %+v, want the shared outcome", i, out)
		}
	}
}

func TestDedupOneWaiterLeavingDoesNotCancelTheCall(t *testing.T) {
	leakcheck.Check(t)
	d := newDedup()

	started := make(chan struct{})
	release := make(chan struct{})
	cancelled := make(chan struct{})
	fn := func(ctx context.Context) (*outcome, error) {
		close(started)
		select {
		case <-release:
			return &outcome{resp: stashd.RunResponse{JobID: "ok"}}, nil
		case <-ctx.Done():
			close(cancelled)
			return nil, ctx.Err()
		}
	}

	// Leader joins, then a second waiter with its own cancellable context.
	type res struct {
		out *outcome
		err error
	}
	leaderDone := make(chan res, 1)
	go func() {
		out, err := d.do(context.Background(), "k", fn)
		leaderDone <- res{out, err}
	}()
	<-started

	waiterCtx, cancelWaiter := context.WithCancel(context.Background())
	waiterDone := make(chan res, 1)
	go func() {
		out, err := d.do(waiterCtx, "k", fn)
		waiterDone <- res{out, err}
	}()

	// The second caller must join the existing call, not start its own.
	deadline := time.Now().Add(5 * time.Second)
	for {
		d.mu.Lock()
		c := d.calls["k"]
		waiters := 0
		if c != nil {
			waiters = c.waiters
		}
		d.mu.Unlock()
		if waiters == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("second caller never joined the call")
		}
		time.Sleep(time.Millisecond)
	}

	cancelWaiter()
	w := <-waiterDone
	if w.err == nil {
		t.Fatal("cancelled waiter returned no error")
	}

	// The dispatch must still be alive for the remaining leader.
	select {
	case <-cancelled:
		t.Fatal("one waiter leaving cancelled a call another waiter still wants")
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	l := <-leaderDone
	if l.err != nil || l.out == nil || l.out.resp.JobID != "ok" {
		t.Fatalf("leader got (%+v, %v), want the ok outcome", l.out, l.err)
	}
}

func TestDedupLastWaiterLeavingCancelsTheDispatch(t *testing.T) {
	leakcheck.Check(t)
	d := newDedup()

	started := make(chan struct{})
	cancelled := make(chan struct{})
	fn := func(ctx context.Context) (*outcome, error) {
		close(started)
		<-ctx.Done()
		close(cancelled)
		return nil, ctx.Err()
	}

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := d.do(ctx, "k", fn)
		errc <- err
	}()
	<-started
	cancel()
	if err := <-errc; err == nil {
		t.Fatal("cancelled caller returned no error")
	}

	select {
	case <-cancelled:
	case <-time.After(5 * time.Second):
		t.Fatal("dispatch context never cancelled after the last waiter left")
	}

	// The table entry must be gone so a later identical submission starts
	// fresh instead of joining a dead call.
	deadline := time.Now().Add(5 * time.Second)
	for {
		d.mu.Lock()
		_, present := d.calls["k"]
		d.mu.Unlock()
		if !present {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("abandoned call still registered")
		}
		time.Sleep(time.Millisecond)
	}
	out, err := d.do(context.Background(), "k", func(ctx context.Context) (*outcome, error) {
		return &outcome{resp: stashd.RunResponse{JobID: "fresh"}}, nil
	})
	if err != nil || out.resp.JobID != "fresh" {
		t.Fatalf("fresh call after abandonment got (%+v, %v)", out, err)
	}
}
