package energy

import (
	"strings"
	"testing"
	"testing/quick"
)

func baseCounts() Counts {
	return Counts{
		Cycles:      1_000_000,
		DirLookups:  100_000,
		DirWays:     4,
		DirUpdates:  50_000,
		DirEntries:  8192,
		L1Accesses:  1_000_000,
		LLCAccesses: 150_000,
		LLCLines:    262_144,
		FlitHops:    2_000_000,
		MemAccesses: 20_000,
	}
}

func TestComputePositiveAndAdditive(t *testing.T) {
	b := Default().Compute(baseCounts())
	if b.Total() <= 0 {
		t.Fatal("non-positive total")
	}
	sum := b.DirDynamic + b.DirLeakage + b.L1Dynamic + b.LLCDynamic + b.LLCLeakage + b.Network + b.Memory
	if sum != b.Total() {
		t.Fatalf("Total %v != component sum %v", b.Total(), sum)
	}
	if b.DirTotal() != b.DirDynamic+b.DirLeakage {
		t.Fatal("DirTotal wrong")
	}
	if !strings.Contains(b.String(), "total=") {
		t.Fatalf("String() = %q", b.String())
	}
}

func TestSmallerDirectoryLeaksLess(t *testing.T) {
	m := Default()
	big := baseCounts()
	small := baseCounts()
	small.DirEntries = big.DirEntries / 8
	if !(m.Compute(small).DirLeakage < m.Compute(big).DirLeakage) {
		t.Fatal("1/8 directory does not leak less")
	}
}

func TestZeroCountsZeroEnergy(t *testing.T) {
	b := Default().Compute(Counts{})
	if b.Total() != 0 {
		t.Fatalf("zero counts produced %v nJ", b.Total())
	}
}

func TestEnergyMonotoneInEveryCount(t *testing.T) {
	m := Default()
	base := m.Compute(baseCounts()).Total()
	bumps := []func(*Counts){
		func(c *Counts) { c.DirLookups *= 2 },
		func(c *Counts) { c.DirUpdates *= 2 },
		func(c *Counts) { c.L1Accesses *= 2 },
		func(c *Counts) { c.LLCAccesses *= 2 },
		func(c *Counts) { c.FlitHops *= 2 },
		func(c *Counts) { c.MemAccesses *= 2 },
		func(c *Counts) { c.Cycles *= 2 },
	}
	for i, bump := range bumps {
		c := baseCounts()
		bump(&c)
		if got := m.Compute(c).Total(); got <= base {
			t.Errorf("bump %d did not increase energy: %v <= %v", i, got, base)
		}
	}
}

func TestEnergyNonNegativeProperty(t *testing.T) {
	m := Default()
	f := func(lookups, updates, l1, llc, hops, mem uint32, cyc uint32) bool {
		b := m.Compute(Counts{
			Cycles:      uint64(cyc),
			DirLookups:  int64(lookups),
			DirWays:     4,
			DirUpdates:  int64(updates),
			DirEntries:  1024,
			L1Accesses:  int64(l1),
			LLCAccesses: int64(llc),
			LLCLines:    4096,
			FlitHops:    int64(hops),
			MemAccesses: int64(mem),
		})
		return b.Total() >= 0 && b.DirTotal() >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMemoryDominatesPerEvent(t *testing.T) {
	// Relative magnitude sanity: one DRAM access must cost more than one
	// LLC access, which costs more than one L1 access.
	m := Default()
	if !(m.MemAccessPJ > m.LLCAccessPJ && m.LLCAccessPJ > m.L1AccessPJ) {
		t.Fatal("energy magnitudes out of order")
	}
}
