// Package energy estimates directory-system energy from simulation event
// counts, reproducing the relative energy comparisons of the paper's
// evaluation. The per-event and leakage constants are CACTI-flavored round
// numbers; the experiments report energy *normalized* to a baseline
// configuration, so only the relative magnitudes matter — which is also how
// the paper presents energy.
package energy

import "fmt"

// Model holds per-event dynamic energies (picojoules) and per-cycle leakage
// (picojoules per cycle per tracked unit). Directory energies are per entry
// *slot* touched, so larger/wider directories cost proportionally more.
type Model struct {
	// Dynamic energy per event.
	DirAccessPJPerWay float64 // per directory way examined on a lookup
	DirUpdatePJ       float64 // per entry write (alloc/update/remove)
	L1AccessPJ        float64
	LLCAccessPJ       float64
	FlitHopPJ         float64 // per flit per hop on the mesh
	MemAccessPJ       float64 // per DRAM read or write

	// Leakage per cycle.
	DirLeakPJPerEntry float64 // per directory entry slot per kilocycle
	LLCLeakPJPerLine  float64 // per LLC line per kilocycle
}

// Default returns the model used by the experiments. Magnitudes follow the
// usual SRAM scaling: a directory entry is ~8 bytes (tag + 64-bit sharer
// vector) vs a 64-byte LLC line; DRAM costs ~two orders of magnitude more
// than an SRAM access; mesh flit-hops sit between L1 and LLC accesses.
func Default() Model {
	return Model{
		DirAccessPJPerWay: 0.6,
		DirUpdatePJ:       1.2,
		L1AccessPJ:        10,
		LLCAccessPJ:       50,
		FlitHopPJ:         2.5,
		MemAccessPJ:       5000,
		DirLeakPJPerEntry: 0.02,
		LLCLeakPJPerLine:  0.15,
	}
}

// Counts are the event totals a simulation produced; internal/system fills
// them from the statistics sets.
type Counts struct {
	Cycles uint64

	DirLookups int64 // each examines DirWays ways
	DirWays    int
	DirUpdates int64 // allocations + removals + sharer updates (approx.)
	DirEntries int   // total slots, for leakage
	// DirEntryBits is the width of one directory entry (tag + state +
	// sharer storage); 0 means the reference full-map width (92 bits:
	// 28-bit overhead + 64-bit vector). Dynamic and leakage directory
	// energy scale linearly with it.
	DirEntryBits int

	L1Accesses  int64
	LLCAccesses int64
	LLCLines    int
	FlitHops    int64
	MemAccesses int64
}

// Breakdown is the estimated energy by component, in nanojoules.
type Breakdown struct {
	DirDynamic float64
	DirLeakage float64
	L1Dynamic  float64
	LLCDynamic float64
	LLCLeakage float64
	Network    float64
	Memory     float64
}

// Total returns the sum of all components.
func (b Breakdown) Total() float64 {
	return b.DirDynamic + b.DirLeakage + b.L1Dynamic + b.LLCDynamic + b.LLCLeakage + b.Network + b.Memory
}

// DirTotal returns directory energy (dynamic + leakage) — the quantity the
// paper's directory-energy figure plots.
func (b Breakdown) DirTotal() float64 { return b.DirDynamic + b.DirLeakage }

func (b Breakdown) String() string {
	return fmt.Sprintf("dir=%.1f+%.1f l1=%.1f llc=%.1f+%.1f net=%.1f mem=%.1f total=%.1f nJ",
		b.DirDynamic, b.DirLeakage, b.L1Dynamic, b.LLCDynamic, b.LLCLeakage,
		b.Network, b.Memory, b.Total())
}

// Compute estimates the energy for the given event counts.
func (m Model) Compute(c Counts) Breakdown {
	kilocycles := float64(c.Cycles) / 1000
	const refEntryBits = 92.0
	width := 1.0
	if c.DirEntryBits > 0 {
		width = float64(c.DirEntryBits) / refEntryBits
	}
	pj := Breakdown{
		DirDynamic: (float64(c.DirLookups)*m.DirAccessPJPerWay*float64(c.DirWays) +
			float64(c.DirUpdates)*m.DirUpdatePJ) * width,
		DirLeakage: float64(c.DirEntries) * m.DirLeakPJPerEntry * kilocycles * width,
		L1Dynamic:  float64(c.L1Accesses) * m.L1AccessPJ,
		LLCDynamic: float64(c.LLCAccesses) * m.LLCAccessPJ,
		LLCLeakage: float64(c.LLCLines) * m.LLCLeakPJPerLine * kilocycles,
		Network:    float64(c.FlitHops) * m.FlitHopPJ,
		Memory:     float64(c.MemAccesses) * m.MemAccessPJ,
	}
	// pJ → nJ.
	return Breakdown{
		DirDynamic: pj.DirDynamic / 1000,
		DirLeakage: pj.DirLeakage / 1000,
		L1Dynamic:  pj.L1Dynamic / 1000,
		LLCDynamic: pj.LLCDynamic / 1000,
		LLCLeakage: pj.LLCLeakage / 1000,
		Network:    pj.Network / 1000,
		Memory:     pj.Memory / 1000,
	}
}
