package coherence

import (
	"repro/internal/core"
	"testing"

	"repro/internal/cache"
	"repro/internal/mem"
)

func withL2(sets, ways int) fabricOpt {
	return func(c *BuildConfig) {
		c.L2 = &cache.Config{Name: "l2", Sets: sets, Ways: ways}
	}
}

func l2State(f *Fabric, coreID int, b mem.Block) mem.State {
	if l2 := f.L1s[coreID].L2(); l2 != nil {
		if ln := l2.Probe(b); ln != nil {
			return ln.State
		}
	}
	return mem.Invalid
}

func TestL2FillsBothLevels(t *testing.T) {
	f := testFabric(t, 4, fullMapFactory(), withL2(8, 4))
	load(t, f, 0, 7)
	if st := l1State(f, 0, 7); st != mem.Exclusive {
		t.Fatalf("L1 state = %v, want E", st)
	}
	if st := l2State(f, 0, 7); st != mem.Exclusive {
		t.Fatalf("L2 state = %v, want E", st)
	}
	finishAndAudit(t, f)
}

func TestL2HitServicesLocally(t *testing.T) {
	// Fill 3 blocks of one L1 set (2 ways): block 0 falls out of L1 into
	// L2. Re-reading it must hit the L2 without any bank request.
	f := testFabric(t, 4, fullMapFactory(), withL1(1, 2), withL2(8, 4))
	load(t, f, 0, 0)
	load(t, f, 0, 1)
	load(t, f, 0, 2) // L1 evicts 0 -> folds into L2 (no Put message)
	if l1State(f, 0, 0) != mem.Invalid || l2State(f, 0, 0) != mem.Exclusive {
		t.Fatalf("block 0 not L2-only: L1=%v L2=%v", l1State(f, 0, 0), l2State(f, 0, 0))
	}
	var reqs int64
	for _, bk := range f.Banks {
		reqs += bk.getS.Value()
	}
	load(t, f, 0, 0) // L2 hit
	var reqs2 int64
	for _, bk := range f.Banks {
		reqs2 += bk.getS.Value()
	}
	if reqs2 != reqs {
		t.Fatalf("L2 hit went to the bank (%d -> %d requests)", reqs, reqs2)
	}
	if f.L1s[0].l2Hits.Value() == 0 {
		t.Fatal("no L2 hit recorded")
	}
	finishAndAudit(t, f)
}

func TestL2DirtyFoldAndWriteback(t *testing.T) {
	// A dirty L1 victim folds into the L2 silently; evicting it from the
	// L2 writes it back; the value survives (oracle-checked on re-read).
	f := testFabric(t, 4, fullMapFactory(), withL1(1, 1), withL2(1, 2))
	store(t, f, 0, 0)
	load(t, f, 0, 1) // L1 evicts dirty 0 into L2 (no writeback yet)
	if f.L1s[0].writebacks.Value() != 0 {
		t.Fatal("L1->L2 fold produced a writeback")
	}
	if st := l2State(f, 0, 0); st != mem.Modified {
		t.Fatalf("L2 state = %v, want M after dirty fold", st)
	}
	load(t, f, 0, 2) // L2 (2 ways) evicts one of {0,1}: PutM/PutE to bank
	load(t, f, 1, 0) // another core reads: must see core 0's value
	finishAndAudit(t, f)
}

func TestL2SnoopFindsL2OnlyDirtyBlock(t *testing.T) {
	f := testFabric(t, 4, fullMapFactory(), withL1(1, 1), withL2(8, 4))
	store(t, f, 0, 0)
	load(t, f, 0, 1) // dirty block 0 now lives only in core 0's L2
	load(t, f, 1, 0) // Fetch must retrieve the dirty data from the L2
	if st := l2State(f, 0, 0); st != mem.Shared {
		t.Fatalf("L2 state after downgrade = %v, want S", st)
	}
	finishAndAudit(t, f)
}

func TestL2UpgradeFromL2OnlySharedLine(t *testing.T) {
	f := testFabric(t, 4, fullMapFactory(), withL1(1, 1), withL2(8, 4))
	load(t, f, 0, 0)
	load(t, f, 1, 0)  // both Shared
	load(t, f, 0, 1)  // core 0's L1 drops 0; S copy remains in its L2
	store(t, f, 0, 0) // upgrade from an L2-only Shared line
	if st := l1State(f, 0, 0); st != mem.Modified {
		t.Fatalf("L1 state = %v, want M", st)
	}
	if st := l1State(f, 1, 0); st != mem.Invalid {
		t.Fatalf("sharer state = %v, want I", st)
	}
	load(t, f, 2, 0)
	finishAndAudit(t, f)
}

func TestL2StashDiscoveryFindsL2OnlyBlock(t *testing.T) {
	// The stash scenario through the hierarchy: a dirty block hidden by a
	// stash eviction lives only in the owner's L2; discovery must find it.
	f := testFabric(t, 4, stashFactory(1, 1, 0, false), withL1(1, 1), withL2(8, 4))
	store(t, f, 0, 0)
	load(t, f, 0, 1) // L1 evicts 0 into L2 (block stays tracked)
	load(t, f, 1, 4) // same bank: stashes block 0's entry -> hidden
	bk := f.Banks[0]
	if bk.hiddenSet.Value() == 0 {
		t.Fatal("entry was not stashed")
	}
	load(t, f, 2, 0) // discovery must find core 0's L2 copy with dirty data
	if bk.discFound.Value() == 0 {
		t.Fatal("discovery did not find the L2-only hidden block")
	}
	finishAndAudit(t, f)
}

func TestL2SmallerThanL1Rejected(t *testing.T) {
	cfg := BuildConfig{
		Params: DefaultParams(1),
		Mesh:   meshFor(1),
		L1:     cache.Config{Name: "l1", Sets: 4, Ways: 2},
		L2:     &cache.Config{Name: "l2", Sets: 1, Ways: 2},
		LLC:    cache.Config{Name: "llc", Sets: 16, Ways: 4},
		NewDirectory: func(int) (core.Directory, error) {
			return core.NewFullMap(), nil
		},
	}
	if _, err := NewFabric(cfg); err == nil {
		t.Fatal("L2 smaller than L1 accepted")
	}
}

func TestL2RandomConcurrent(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		runRandom(t, stashFactory(1, 2, 0, false), 4, seed, withL1(2, 2), withL2(4, 4))
		runRandom(t, sparseFactory(1, 2, 0), 4, seed, withL1(2, 2), withL2(4, 4))
	}
}

func TestL2RandomWithEverything(t *testing.T) {
	// L2 + MSHRs + three-hop + pointer limit + fuzzed ordering + silent
	// evictions: the full feature matrix under stress.
	for shuffle := uint64(1); shuffle <= 3; shuffle++ {
		f := testFabric(t, 4, stashFactory(1, 2, 0, false),
			withL1(2, 2), withL2(4, 4), withMSHRs(4), withThreeHop(), withPointerLimit(2))
		f.Engine.SetShuffleSeed(shuffle)
		srcs := randomSources(4, 400, 8, 8, 0.4, int64(shuffle))
		procs, _ := f.AttachProcessors(srcs)
		if err := f.Drive(procs, 50_000_000); err != nil {
			t.Fatalf("shuffle %d: %v", shuffle, err)
		}
	}
	for seed := int64(1); seed <= 2; seed++ {
		runRandom(t, stashFactory(1, 2, 0, false), 4, seed,
			withL1(2, 2), withL2(4, 4), withSilentEvictions())
	}
}

func TestL2SixteenCores(t *testing.T) {
	runRandom(t, stashFactory(2, 2, 0, false), 16, 3, withL1(2, 2), withL2(4, 4))
}
