package coherence

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/mem"
)

// randomSources builds per-core access streams over a mixed footprint:
// core-private regions plus a shared region with writes, which exercises
// every protocol path (sharing, invalidation, upgrades, recalls,
// stash/discovery, LLC evictions).
func randomSources(cores, perCore, sharedBlocks, privateBlocks int, writeFrac float64, seed int64) []AccessSource {
	srcs := make([]AccessSource, cores)
	for c := 0; c < cores; c++ {
		rng := rand.New(rand.NewSource(seed + int64(c)*977))
		accs := make([]mem.Access, perCore)
		for i := range accs {
			var b mem.Block
			if rng.Float64() < 0.4 {
				b = mem.Block(rng.Intn(sharedBlocks)) // shared region
			} else {
				b = mem.Block(1000 + c*privateBlocks + rng.Intn(privateBlocks))
			}
			accs[i] = mem.Access{Addr: mem.AddrOf(b), Write: rng.Float64() < writeFrac}
		}
		srcs[c] = &SliceSource{Accesses: accs}
	}
	return srcs
}

// runRandom drives a random workload on a fabric and fails on any
// correctness problem (deadlock, oracle, audit).
func runRandom(t *testing.T, mk dirFactory, cores int, seed int64, opts ...fabricOpt) *Fabric {
	t.Helper()
	f := testFabric(t, cores, mk, opts...)
	srcs := randomSources(cores, 400, 12, 30, 0.3, seed)
	procs, err := f.AttachProcessors(srcs)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Drive(procs, 50_000_000); err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	return f
}

func TestRandomConcurrentAllOrganizations(t *testing.T) {
	factories := map[string]dirFactory{
		"fullmap": fullMapFactory(),
		"sparse":  sparseFactory(2, 2, 0),
		"stash":   stashFactory(2, 2, 0, false),
		"stash-s": stashFactory(2, 2, 0, true),
		"cuckoo":  cuckooFactory(2, 4),
	}
	for name, mk := range factories {
		for seed := int64(1); seed <= 4; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", name, seed), func(t *testing.T) {
				runRandom(t, mk, 4, seed)
			})
		}
	}
}

func TestRandomConcurrentSilentEvictions(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		runRandom(t, stashFactory(2, 2, 0, false), 4, seed, withSilentEvictions())
		runRandom(t, sparseFactory(2, 2, 0), 4, seed, withSilentEvictions())
	}
}

func TestRandomHighContention(t *testing.T) {
	// Every core hammers the same 4 blocks with 50% writes: maximal
	// invalidation/upgrade churn.
	for _, mk := range []dirFactory{fullMapFactory(), stashFactory(1, 2, 0, false)} {
		f := testFabric(t, 4, mk)
		srcs := make([]AccessSource, 4)
		for c := 0; c < 4; c++ {
			rng := rand.New(rand.NewSource(int64(c) + 99))
			accs := make([]mem.Access, 300)
			for i := range accs {
				accs[i] = mem.Access{
					Addr:  mem.AddrOf(mem.Block(rng.Intn(4))),
					Write: rng.Intn(2) == 0,
				}
			}
			srcs[c] = &SliceSource{Accesses: accs}
		}
		procs, _ := f.AttachProcessors(srcs)
		if err := f.Drive(procs, 50_000_000); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRandomTinyEverything(t *testing.T) {
	// 1-line L1s, 2-line LLC banks, 1-entry directories: maximal eviction
	// churn through every corner case.
	for seed := int64(1); seed <= 3; seed++ {
		f := testFabric(t, 4, stashFactory(1, 1, 0, false),
			withL1(1, 1), withLLC(1, 2))
		srcs := randomSources(4, 200, 6, 4, 0.4, seed)
		procs, _ := f.AttachProcessors(srcs)
		if err := f.Drive(procs, 50_000_000); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestRandomSixteenCores(t *testing.T) {
	runRandom(t, stashFactory(2, 2, 0, false), 16, 7)
	runRandom(t, sparseFactory(2, 2, 0), 16, 7)
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (uint64, int64) {
		f := testFabric(t, 4, stashFactory(2, 2, 0, false))
		srcs := randomSources(4, 200, 8, 16, 0.3, 42)
		procs, _ := f.AttachProcessors(srcs)
		if err := f.Drive(procs, 0); err != nil {
			t.Fatal(err)
		}
		return uint64(f.Engine.Now()), f.Mesh.TotalFlitHops()
	}
	c1, t1 := run()
	c2, t2 := run()
	if c1 != c2 || t1 != t2 {
		t.Fatalf("non-deterministic: cycles %d vs %d, traffic %d vs %d", c1, c2, t1, t2)
	}
}

// --- failure injection: the checkers must catch broken protocols -----------

// brokenStash wraps a stash directory but hides the AllocStashed outcome,
// simulating a stash directory that forgets to set the hidden bit. The
// cached copy becomes untracked and undiscoverable — the value oracle (or
// the audit) must catch the resulting staleness.
type brokenStash struct {
	*core.Stash
}

func (d *brokenStash) Allocate(b mem.Block, busy func(mem.Block) bool) core.AllocResult {
	res := d.Stash.Allocate(b, busy)
	if res.Outcome == core.AllocStashed {
		res.Outcome = core.AllocOK
		res.Stashed = core.Stashed{}
	}
	return res
}

func TestCheckerCatchesMissingHiddenBit(t *testing.T) {
	f := testFabric(t, 4, func(int) (core.Directory, error) {
		s, err := core.NewStash(core.StashConfig{AssocConfig: core.AssocConfig{Sets: 1, Ways: 1}})
		if err != nil {
			return nil, err
		}
		return &brokenStash{Stash: s}, nil
	})
	// Core 0 dirties block 0; the broken directory silently drops its
	// entry without marking it hidden; core 1 then reads stale LLC data.
	store(t, f, 0, 0)
	load(t, f, 0, 4) // forces the (broken) stash eviction
	load(t, f, 1, 0) // reads the stale LLC copy
	f.Engine.Run(0)
	oracleErr := f.Checker.Err()
	auditBad := Audit(f)
	if oracleErr == nil && len(auditBad) == 0 {
		t.Fatal("neither the oracle nor the audit caught a lost hidden bit")
	}
}

func TestAuditCatchesSWMRViolation(t *testing.T) {
	f := testFabric(t, 4, fullMapFactory())
	load(t, f, 0, 3)
	load(t, f, 1, 3)
	// Corrupt: force core 0's Shared copy to Modified.
	f.L1s[0].Cache().Probe(3).State = mem.Modified
	if bad := Audit(f); len(bad) == 0 {
		t.Fatal("audit missed an SWMR violation")
	}
}

func TestAuditCatchesLostTracking(t *testing.T) {
	f := testFabric(t, 4, fullMapFactory())
	load(t, f, 0, 3)
	f.Banks[f.HomeBank(3)].Directory().Remove(3)
	if bad := Audit(f); len(bad) == 0 {
		t.Fatal("audit missed a lost directory entry")
	}
}

func TestAuditCatchesInclusionViolation(t *testing.T) {
	f := testFabric(t, 4, fullMapFactory())
	load(t, f, 0, 3)
	bk := f.Banks[f.HomeBank(3)]
	bk.LLC().Evict(bk.LLC().Probe(3))
	if bad := Audit(f); len(bad) == 0 {
		t.Fatal("audit missed an inclusion violation")
	}
}

func TestOracleCatchesCorruptedData(t *testing.T) {
	f := testFabric(t, 4, fullMapFactory())
	store(t, f, 0, 3)
	f.L1s[0].Cache().Probe(3).Data = 0xdeadbeef // bit flip
	load(t, f, 0, 3)
	if f.Checker.Err() == nil {
		t.Fatal("oracle missed corrupted data")
	}
}

func TestCheckerDisabled(t *testing.T) {
	f := testFabric(t, 4, fullMapFactory())
	f.Checker.SetEnabled(false)
	store(t, f, 0, 3)
	f.L1s[0].Cache().Probe(3).Data = 0xdeadbeef
	load(t, f, 0, 3)
	if f.Checker.Err() != nil {
		t.Fatal("disabled checker still reported")
	}
}

// TestFuzzedEventOrder runs concurrent random workloads under permuted
// same-cycle event ordering: the protocol must not depend on the engine's
// accidental FIFO tie-breaking. Any ordering bug shows up as an oracle or
// audit failure (or a deadlock).
func TestFuzzedEventOrder(t *testing.T) {
	for _, mk := range []dirFactory{
		stashFactory(1, 2, 0, false),
		sparseFactory(1, 2, 0),
		cuckooFactory(2, 4),
	} {
		for shuffle := uint64(1); shuffle <= 5; shuffle++ {
			f := testFabric(t, 4, mk, withL1(2, 2), withLLC(2, 2))
			f.Engine.SetShuffleSeed(shuffle)
			srcs := randomSources(4, 300, 8, 6, 0.4, int64(shuffle))
			procs, _ := f.AttachProcessors(srcs)
			if err := f.Drive(procs, 50_000_000); err != nil {
				t.Fatalf("shuffle seed %d: %v", shuffle, err)
			}
		}
	}
}
