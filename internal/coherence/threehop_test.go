package coherence

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/noc"
)

func withThreeHop() fabricOpt {
	return func(c *BuildConfig) { c.Params.ThreeHopForwarding = true }
}

func TestThreeHopDirtySharing(t *testing.T) {
	f := testFabric(t, 4, fullMapFactory(), withThreeHop())
	store(t, f, 0, 7) // M at core 0
	load(t, f, 1, 7)  // must be forwarded core0 -> core1 (oracle checks data)
	if st := l1State(f, 0, 7); st != mem.Shared {
		t.Fatalf("owner state = %v, want S", st)
	}
	if st := l1State(f, 1, 7); st != mem.Shared {
		t.Fatalf("requester state = %v, want S", st)
	}
	finishAndAudit(t, f)
}

func TestThreeHopWriteTakeover(t *testing.T) {
	f := testFabric(t, 4, fullMapFactory(), withThreeHop())
	store(t, f, 0, 7)
	store(t, f, 1, 7) // forwarded DataM core0 -> core1
	if st := l1State(f, 0, 7); st != mem.Invalid {
		t.Fatalf("old owner state = %v, want I", st)
	}
	if st := l1State(f, 1, 7); st != mem.Modified {
		t.Fatalf("new owner state = %v, want M", st)
	}
	load(t, f, 2, 7) // sees core 1's value via forwarding again
	finishAndAudit(t, f)
}

func TestThreeHopReducesLatencyVsTwoHop(t *testing.T) {
	// A dirty-sharing ping-pong between distant cores must see lower miss
	// latency with forwarding: owner->requester is one network trip instead
	// of owner->dir->requester. (Total drain time is not the right metric:
	// the Unblock handshake lengthens the bank-side transaction without
	// delaying the requester.)
	run := func(threeHop bool) int64 {
		opts := []fabricOpt{}
		if threeHop {
			opts = append(opts, withThreeHop())
		}
		f := testFabric(t, 4, fullMapFactory(), opts...)
		for i := 0; i < 20; i++ {
			store(t, f, i%2, 9) // block 9 homed on bank 1; cores 0 and 1 trade it
		}
		finishAndAudit(t, f)
		sum := int64(0)
		for _, l1 := range f.L1s {
			sum += l1.Stats().Histogram("miss_latency").Sum()
		}
		return sum
	}
	two, three := run(false), run(true)
	if three >= two {
		t.Fatalf("three-hop miss latency (%d) not lower than two-hop (%d)", three, two)
	}
}

func TestThreeHopFallbackWhenOwnerGone(t *testing.T) {
	// Silent clean evictions: the owner silently drops its E copy; the
	// forwarded request finds nothing and the bank must serve the
	// requester from the LLC.
	f := testFabric(t, 4, fullMapFactory(), withThreeHop(), withSilentEvictions(), withL1(1, 1))
	load(t, f, 0, 0)  // E at core 0
	load(t, f, 0, 4)  // silently evicts block 0 (1-line L1); dir entry stale
	load(t, f, 1, 0)  // FwdGetS to core 0 finds nothing -> bank serves
	store(t, f, 2, 0) // exercise the GetM fallback path too
	finishAndAudit(t, f)
}

func TestThreeHopOwnerInEvictionBuffer(t *testing.T) {
	// With notified evictions the Put is processed before a later request
	// (point-to-point FIFO), so forwarding out of the eviction buffer needs
	// a concurrent requester: drive two processors so the FwdGetS can race
	// the PutM.
	f := testFabric(t, 4, fullMapFactory(), withThreeHop(), withL1(1, 1))
	srcs := []AccessSource{
		&SliceSource{Accesses: []mem.Access{
			{Addr: mem.AddrOf(0), Write: true}, // M at core 0
			{Addr: mem.AddrOf(4)},              // evicts block 0 (PutM in flight)
		}},
		&SliceSource{Accesses: []mem.Access{
			{Addr: mem.AddrOf(0)}, // may catch core 0 mid-writeback
		}},
		&SliceSource{}, &SliceSource{},
	}
	procs, _ := f.AttachProcessors(srcs)
	if err := f.Drive(procs, 1_000_000); err != nil {
		t.Fatal(err)
	}
}

func TestThreeHopRandomConcurrent(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		runRandom(t, stashFactory(2, 2, 0, false), 4, seed, withThreeHop())
		runRandom(t, sparseFactory(2, 2, 0), 4, seed, withThreeHop())
	}
	// And with fuzzed event ordering.
	for shuffle := uint64(1); shuffle <= 3; shuffle++ {
		f := testFabric(t, 4, stashFactory(1, 2, 0, false), withThreeHop(), withL1(2, 2))
		f.Engine.SetShuffleSeed(shuffle)
		srcs := randomSources(4, 300, 8, 6, 0.4, int64(shuffle))
		procs, _ := f.AttachProcessors(srcs)
		if err := f.Drive(procs, 50_000_000); err != nil {
			t.Fatalf("shuffle %d: %v", shuffle, err)
		}
	}
}

func TestThreeHopForwardedTrafficCounted(t *testing.T) {
	f := testFabric(t, 4, fullMapFactory(), withThreeHop())
	store(t, f, 0, 7)
	load(t, f, 1, 7)
	// The forwarded DataS travels core0 -> core1 as response-class traffic.
	if f.Mesh.Messages(noc.ClassResponse) == 0 {
		t.Fatal("no response traffic recorded")
	}
	finishAndAudit(t, f)
}

// TestThreeHopUnblockRegression pins the fix for a real bug: with MSHRs,
// the bank used to close a forwarded transaction on the owner's ack alone,
// so the block's next transaction could send messages that overtook the
// still-in-flight owner→requester grant (an unordered path) and the bank
// then served stale LLC data. The Unblock handshake closes the window.
// Sixteen cores with long routes and high MLP make the overtake likely.
func TestThreeHopUnblockRegression(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		f := testFabric(t, 16, sparseFactory(4, 4, 0), withThreeHop(), withMSHRs(4))
		srcs := randomSources(16, 400, 10, 20, 0.4, seed)
		procs, _ := f.AttachProcessors(srcs)
		if err := f.Drive(procs, 100_000_000); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
	// And the stash + L2 + pointer-limit combination at 16 cores.
	f := testFabric(t, 16, stashFactory(2, 2, 0, false),
		withThreeHop(), withMSHRs(4), withL2(8, 4), withPointerLimit(2))
	srcs := randomSources(16, 300, 10, 12, 0.4, 9)
	procs, _ := f.AttachProcessors(srcs)
	if err := f.Drive(procs, 100_000_000); err != nil {
		t.Fatal(err)
	}
}
