package coherence

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/noc"
	"repro/internal/psim"
	"repro/internal/sim"
)

// Params are the protocol timing and policy parameters shared by every
// controller. Latencies follow the paper's 16-core model.
type Params struct {
	Cores        int
	L1HitLatency sim.Cycle // L1 access (hit or tag check) latency
	L2HitLatency sim.Cycle // private L2 access latency (when an L2 exists)
	BankLatency  sim.Cycle // directory + LLC bank access latency
	MemLatency   sim.Cycle // off-chip memory read latency
	ThinkTime    sim.Cycle // core cycles between completed accesses
	// SilentCleanEvictions makes L1s drop Shared and (clean) Exclusive
	// victims without notifying the directory, leaving stale sharer bits
	// the protocol must tolerate. Default is notified evictions.
	SilentCleanEvictions bool
	// ThreeHopForwarding makes owners send data directly to requesters
	// (owner→requester + owner→directory ack) instead of routing data
	// through the directory (owner→directory→requester). Two hops fewer
	// of latency on dirty sharing; the default is directory-centric.
	ThreeHopForwarding bool
	// RetryDelay is how long a bank waits before retrying an allocation
	// that found every victim candidate busy.
	RetryDelay sim.Cycle
	// MSHRs is how many demand accesses a core may have outstanding at
	// once (its memory-level parallelism). 0 or 1 models the blocking
	// in-order core of the base configuration.
	MSHRs int
	// PointerLimit selects the directory entry format: 0 keeps full-map
	// sharer vectors; P > 0 models Dir_P-B limited-pointer entries, whose
	// sharer set overflows past P sharers and must then be invalidated by
	// broadcast. Entry width (area/energy) shrinks accordingly.
	PointerLimit int
}

// DefaultParams returns the paper-model timing for the given core count.
func DefaultParams(cores int) Params {
	return Params{
		Cores:        cores,
		L1HitLatency: 2,
		L2HitLatency: 10,
		BankLatency:  8,
		MemLatency:   160,
		ThinkTime:    1,
		RetryDelay:   16,
		MSHRs:        1,
	}
}

// Validate checks the parameters.
func (p Params) Validate() error {
	if p.Cores < 1 || p.Cores > core.MaxCores {
		return fmt.Errorf("coherence: cores must be in [1,%d], got %d", core.MaxCores, p.Cores)
	}
	if p.RetryDelay == 0 {
		return fmt.Errorf("coherence: retry delay must be nonzero")
	}
	if p.MSHRs < 0 {
		return fmt.Errorf("coherence: MSHRs must be non-negative, got %d", p.MSHRs)
	}
	if p.PointerLimit < 0 {
		return fmt.Errorf("coherence: pointer limit must be non-negative, got %d", p.PointerLimit)
	}
	return nil
}

// Fabric wires the controllers together: it owns the engine, the mesh, the
// L1s, the banks, the memory model and the checker, and provides message
// transport with tile-level demultiplexing.
//
// Topology: tile i holds core i, its L1, and LLC/directory bank i; blocks
// are address-interleaved across banks on the low block bits.
type Fabric struct {
	Engine  *sim.Engine
	Mesh    *noc.Mesh
	Params  Params
	L1s     []*L1
	Banks   []*Bank
	Memory  *Memory
	Checker *Checker

	// OnMessage, when set, observes every protocol message as it is sent.
	// The protocoltrace example uses it to annotate runs.
	OnMessage func(src, dst noc.NodeID, m *Msg)

	// sendHook, when set (SetSendHook), may capture a message instead of
	// letting the mesh transport it: a true return means the hook took
	// ownership. The model checker uses it to park every send in explicit
	// per-channel queues whose delivery order it enumerates.
	sendHook func(src, dst noc.NodeID, m *Msg) bool

	// retryHook, when set (SetRetryHook), intercepts the banks' timed
	// allocation retries (LLC-victim and directory-entry) so an enumerating
	// scheduler can treat "the retry timer fires" as an explicit choice
	// point instead of a busy-wait loop inside the engine.
	retryHook func(ParkedRetry)

	// pool recycles protocol messages (see msgPool); the controllers also
	// keep per-instance TBE free lists, so the steady-state protocol path
	// touches the heap only while these pools warm up.
	pool msgPool

	// Parallel-mode fields, set only on the per-tile fabric views built by
	// NewParallelFabric (nil on a serial fabric). pout buffers this tile's
	// cross-tile sends for the epoch merge; local delivers self-addressed
	// messages on the tile's own queue. See parallel.go.
	pout  *psim.Mailbox[parcel]
	local *tileLocal
}

// newMsg acquires a zeroed message from the fabric's pool.
//
//stash:acquire
//stash:hotpath
func (f *Fabric) newMsg(t MsgType, b mem.Block) *Msg {
	m := f.pool.get()
	m.Type = t
	m.Block = b
	return m
}

// releaseMsg returns a delivered message to the pool.
//
//stash:release
//stash:hotpath
func (f *Fabric) releaseMsg(m *Msg) { f.pool.put(m) }

// SetPoolDebug toggles the message pool's poison mode: released messages
// are stamped with garbage so any use-after-release fails loudly. Tests
// only; poisoning does not change behavior of correct code.
func (f *Fabric) SetPoolDebug(on bool) { f.pool.poison = on }

// MsgPoolStats reports the message pool's live count and high-water mark,
// letting tests bound the protocol's peak message population.
func (f *Fabric) MsgPoolStats() (inUse, highWater int) {
	return f.pool.inUse, f.pool.high
}

// tile is the per-node NoC endpoint; it routes bank-bound message types to
// the bank and L1-bound ones to the L1.
type tile struct {
	l1   *L1
	bank *Bank
}

// Deliver implements noc.Endpoint. The receiving controller takes ownership
// of the payload message and releases it at the end of its handler.
//
//stash:hotpath
func (t *tile) Deliver(nm *noc.Message) {
	m := nm.Payload.(*Msg)
	switch m.Type {
	case MsgGetS, MsgGetM, MsgPutS, MsgPutE, MsgPutM, MsgInvAck, MsgFetchResp, MsgDiscoverResp, MsgUnblock:
		t.bank.deliver(m)
	case MsgDataS, MsgDataE, MsgDataM, MsgInv, MsgFetch, MsgPutAck, MsgDiscover, MsgFwdGetS, MsgFwdGetM:
		t.l1.deliver(m)
	default:
		panic(fmt.Sprintf("coherence: undeliverable message %v", m))
	}
}

// HomeBank returns the bank that owns block b.
func (f *Fabric) HomeBank(b mem.Block) int {
	return int(uint64(b) % uint64(len(f.Banks)))
}

// send transports m across the mesh on a pooled envelope. The mesh (and
// eventually the receiving tile) owns m from here on. On a parallel tile
// view the transport is deferred instead: self-addressed messages are
// scheduled on the tile's own queue and cross-tile ones parked in the
// tile's mailbox for the epoch merge (see parallel.go).
//
//stash:transfer
//stash:hotpath
func (f *Fabric) send(src, dst noc.NodeID, m *Msg) {
	if f.OnMessage != nil {
		f.OnMessage(src, dst, m)
	}
	if f.sendHook != nil && f.sendHook(src, dst, m) {
		return
	}
	if f.pout != nil {
		f.psend(src, dst, m)
		return
	}
	f.Mesh.Post(src, dst, m.class(), m.flits(), m)
}

// sendToBank sends m from core-side node src to block's home bank.
//
//stash:transfer
//stash:hotpath
func (f *Fabric) sendToBank(src noc.NodeID, m *Msg) {
	f.send(src, noc.NodeID(f.HomeBank(m.Block)), m)
}

// sendToCore sends m from bank node src to core id's tile.
//
//stash:transfer
//stash:hotpath
func (f *Fabric) sendToCore(src noc.NodeID, core int, m *Msg) {
	f.send(src, noc.NodeID(core), m)
}
