package coherence

import (
	"fmt"
	"sort"

	"repro/internal/mem"
)

// Checker is the end-to-end correctness machinery. It maintains a value
// oracle: every committed store writes a globally unique stamp, and every
// completed load is checked against the stamp of the most recent committed
// store to that block. Because MESI's single-writer/multiple-reader
// property makes the directory the per-block serialization point, any
// protocol bug that lets a core read stale data (a lost invalidation, a
// missed hidden copy, a stale LLC grant) surfaces as a stamp mismatch.
//
// The checker is cheap (two map operations per access) and stays enabled in
// all tests; production-scale benchmark runs may disable it.
//
//stash:tileowned (parallel runs give each tile view a strided checker; see NewStridedChecker)
type Checker struct {
	enabled    bool
	oracle     map[mem.Block]uint64
	nextVal    uint64
	stride     uint64 // stamp increment; 0 means the serial default of 1
	violations []string
	maxRecord  int

	// holders is Audit's scratch map (block -> core -> state), cleared and
	// reused across audits so repeated end-of-run audits in long test
	// sweeps do not rebuild it from nothing each time.
	holders map[mem.Block]map[int]mem.State
}

// NewChecker returns an enabled checker.
func NewChecker() *Checker {
	return &Checker{
		enabled:   true,
		oracle:    make(map[mem.Block]uint64),
		maxRecord: 32,
	}
}

// NewStridedChecker returns a disabled checker whose store stamps walk the
// arithmetic progression tile + k·stride. The parallel engine gives each
// tile's fabric view one: stamps stay globally unique (distinct residues
// mod stride) and each stamp depends only on (tile, per-tile commit
// count), so the data values flowing through the protocol are identical at
// every shard count. Load verification needs a globally ordered oracle,
// which is exactly what parallel tiles do not share — hence Shards > 0
// requires the checker disabled, and this constructor does not offer
// enabling.
func NewStridedChecker(tile, stride int) *Checker {
	c := NewChecker()
	c.enabled = false
	c.nextVal = uint64(tile)
	c.stride = uint64(stride)
	return c
}

// SetEnabled toggles checking; a disabled checker still issues store
// stamps (data still flows) but skips load verification.
func (c *Checker) SetEnabled(on bool) { c.enabled = on }

// Enabled reports whether load verification (and the end-of-run audit) is
// on.
func (c *Checker) Enabled() bool { return c.enabled }

// holdersScratch returns the audit's cleared residency scratch map.
func (c *Checker) holdersScratch() map[mem.Block]map[int]mem.State {
	if c.holders == nil {
		c.holders = make(map[mem.Block]map[int]mem.State)
	} else {
		clear(c.holders)
	}
	return c.holders
}

// CommitStore returns the value the store to block b must write, and
// records it as the block's current value. It must be called exactly when
// the store commits (the core holds M permission), which under SWMR is the
// block's coherence order.
func (c *Checker) CommitStore(b mem.Block) uint64 {
	step := c.stride
	if step == 0 {
		step = 1
	}
	c.nextVal += step
	// A disabled checker never reads the oracle (CheckLoad and the audit
	// are both gated), so skip the map write: on Checker=false benchmark
	// runs and on the parallel engine's per-tile strided checkers the
	// oracle would otherwise grow to the store working set for nothing.
	// The stamp sequence itself is independent of the map, so data values
	// flowing through the protocol are unchanged.
	if c.enabled {
		c.oracle[b] = c.nextVal
	}
	return c.nextVal
}

// CheckLoad verifies that a completed load observed the block's current
// value. got is the payload the core read from its cache line.
func (c *Checker) CheckLoad(core int, b mem.Block, got uint64) {
	if !c.enabled {
		return
	}
	want := c.oracle[b]
	if got != want {
		c.violate(fmt.Sprintf("core %d loaded %#x from block %#x, oracle says %#x",
			core, got, uint64(b), want))
	}
}

func (c *Checker) violate(msg string) {
	if len(c.violations) < c.maxRecord {
		c.violations = append(c.violations, msg)
	}
}

// Violations returns the recorded coherence violations (empty on a correct
// run).
func (c *Checker) Violations() []string { return c.violations }

// Err returns an error summarizing violations, or nil.
func (c *Checker) Err() error {
	if len(c.violations) == 0 {
		return nil
	}
	return fmt.Errorf("coherence violations (%d recorded): %s", len(c.violations), c.violations[0])
}

// Audit verifies the quiescent-state invariants across the whole fabric.
// It must run when no transactions are in flight (after the simulation
// drains):
//
//   - SWMR: an E/M copy of a block is the only copy anywhere.
//   - Inclusion: every L1-resident block is present in its home LLC bank.
//   - Directory coverage: every L1-resident block is tracked by its home
//     directory with the holder in the sharer set — or, for the stash
//     directory, is the sole copy of a block whose LLC line has the hidden
//     bit set (relaxed inclusion).
//   - Tracking precision (notified evictions only): every tracked sharer
//     actually holds the block.
//
// It returns the list of invariant violations found.
func Audit(f *Fabric) []string {
	var bad []string
	report := func(format string, args ...any) {
		if len(bad) < 64 {
			bad = append(bad, fmt.Sprintf(format, args...))
		}
	}

	// Gather private-hierarchy residency: block -> core -> state. With an
	// L2 the outer level defines residency (the directory tracks it); the
	// effective state is the L1's when the block is also in L1.
	holders := f.Checker.holdersScratch()
	for _, l1 := range f.L1s {
		record := func(b mem.Block, st mem.State) {
			m, ok := holders[b]
			if !ok {
				m = make(map[int]mem.State)
				holders[b] = m
			}
			m[l1.id] = st
		}
		if l1.l2 != nil {
			l1.l2.ForEach(func(ln *cacheLine) {
				st := ln.State
				if inner := l1.cache.Probe(ln.Block); inner != nil && inner.State == mem.Modified {
					st = mem.Modified
				}
				record(ln.Block, st)
			})
			// L1 ⊆ L2 (private-hierarchy inclusion).
			l1.cache.ForEach(func(ln *cacheLine) {
				if l1.l2.Probe(ln.Block) == nil {
					report("core %d: L1 block %#x missing from its L2", l1.id, uint64(ln.Block))
				}
			})
		} else {
			l1.cache.ForEach(func(ln *cacheLine) { record(ln.Block, ln.State) })
		}
		l1.tbes.forEach(func(b mem.Block, _ *l1TBE) {
			report("core %d has an unfinished transaction for block %#x", l1.id, uint64(b))
		})
		if len(l1.stalled) != 0 {
			report("core %d has %d stalled accesses", l1.id, len(l1.stalled))
		}
		l1.evict.forEach(func(b mem.Block, _ evictBuf) {
			report("core %d has an unacknowledged eviction for block %#x", l1.id, uint64(b))
		})
	}
	for _, bank := range f.Banks {
		if n := bank.tbes.len(); n != 0 {
			report("bank %d has %d unfinished transactions", bank.id, n)
		}
	}

	// Violations are reported in block/core order so Audit's output is a
	// pure function of the machine state, not of map layout.
	blocks := make([]mem.Block, 0, len(holders))
	//stash:ignore determinism keys are sorted before use
	for b := range holders {
		blocks = append(blocks, b)
	}
	sort.Slice(blocks, func(i, j int) bool { return blocks[i] < blocks[j] })
	for _, b := range blocks {
		m := holders[b]
		cores := make([]int, 0, len(m))
		//stash:ignore determinism keys are sorted before use
		for c := range m {
			cores = append(cores, c)
		}
		sort.Ints(cores)
		owned := 0
		for _, c := range cores {
			if m[c].Owned() {
				owned++
			}
		}
		if owned > 0 && len(m) > 1 {
			report("SWMR violated for block %#x: %d holders with an owned copy present", uint64(b), len(m))
		}

		bank := f.Banks[f.HomeBank(b)]
		line := bank.llc.Probe(b)
		if line == nil {
			report("inclusion violated: block %#x cached in L1 but absent from LLC bank %d", uint64(b), bank.id)
			continue
		}
		entry := bank.dir.Probe(b)
		if entry == nil {
			hidden := line.Flags&flagHidden != 0
			if !hidden {
				report("tracking lost: block %#x cached in L1, no directory entry, hidden bit clear", uint64(b))
			} else if len(m) != 1 {
				report("hidden block %#x has %d copies, want exactly 1", uint64(b), len(m))
			}
			continue
		}
		if entry.Overflowed {
			// Limited-pointer overflow: the entry conservatively covers
			// every core (broadcast on invalidation), so exactness checks
			// do not apply.
			continue
		}
		for _, core := range cores {
			if !entry.Sharers.Has(core) {
				report("directory entry for block %#x omits holder core %d", uint64(b), core)
			}
		}
		if !f.Params.SilentCleanEvictions {
			entry.Sharers.ForEach(func(core int) {
				if _, ok := m[core]; !ok {
					report("directory entry for block %#x lists core %d, which holds nothing", uint64(b), core)
				}
			})
		}
	}

	// Hidden bits must only cover blocks with at most one (E/M or sole-S)
	// copy; a hidden bit on a block with no copies is legal (stale, cleared
	// lazily by discovery).
	for _, bank := range f.Banks {
		bank.llc.ForEach(func(ln *cacheLine) {
			if ln.Flags&flagHidden == 0 {
				return
			}
			if bank.dir.Probe(ln.Block) != nil {
				report("block %#x is both tracked and hidden", uint64(ln.Block))
			}
			if m := holders[ln.Block]; len(m) > 1 {
				report("hidden block %#x has %d holders", uint64(ln.Block), len(m))
			}
		})
	}
	return bad
}
