package coherence

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/noc"
	"repro/internal/stats"
)

// LLC line flags.
const (
	// flagHidden marks an LLC line whose block is cached privately but no
	// longer tracked by the directory: its entry was stashed. A directory
	// miss on a hidden line triggers a discovery broadcast.
	flagHidden uint32 = 1 << 0
)

// dirTBE serializes transactions per block at a bank. While a block's TBE
// exists, further requests for it queue; responses (acks, fetch and
// discovery replies) are routed straight to the TBE.
type dirTBE struct {
	block mem.Block

	waitAcks  int
	gotDirty  bool
	dirtyData uint64
	retained  int // core that kept a Shared copy after Fetch/Discover, or -1
	anyFound  bool
	forwarded bool // the owner already granted the requester (three-hop mode)
	onDone    func()
	unblocks  int    // forwarded-grant arrivals reported by requesters
	onUnblock func() // armed when the transaction must wait for an unblock
}

// Bank is one tile's slice of the shared machinery: an inclusive LLC bank,
// the co-located directory slice, and the controller that runs coherence
// transactions for the blocks interleaved onto it.
type Bank struct {
	id  int
	fab *Fabric
	dir core.Directory
	llc *cache.Cache

	tbes   map[mem.Block]*dirTBE
	queues map[mem.Block][]*Msg

	set *stats.Set

	getS, getM, puts  *stats.Counter
	invsSent          [3]*stats.Counter
	fetchesSent       *stats.Counter
	discBroadcasts    *stats.Counter
	discProbesSent    *stats.Counter
	discFound         *stats.Counter
	discStale         *stats.Counter
	hiddenSet         *stats.Counter
	hiddenCleared     *stats.Counter
	llcEvictRecalls   *stats.Counter
	llcEvictHidden    *stats.Counter
	llcEvictUntracked *stats.Counter
	allocRetries      *stats.Counter
	broadcastInvs     *stats.Counter
	queuedPeak        *stats.Histogram
}

// NewBank builds bank id with its directory slice and LLC bank.
func NewBank(id int, fab *Fabric, dir core.Directory, llcCfg cache.Config) (*Bank, error) {
	llc, err := cache.New(llcCfg)
	if err != nil {
		return nil, err
	}
	b := &Bank{
		id:     id,
		fab:    fab,
		dir:    dir,
		llc:    llc,
		tbes:   make(map[mem.Block]*dirTBE),
		queues: make(map[mem.Block][]*Msg),
		set:    stats.NewSet(fmt.Sprintf("bank.%d", id)),
	}
	b.getS = b.set.Counter("getS")
	b.getM = b.set.Counter("getM")
	b.puts = b.set.Counter("puts")
	for r := ReasonDemand; r <= ReasonLLCEvict; r++ {
		b.invsSent[r] = b.set.Counter("inv_sent." + r.String())
	}
	b.fetchesSent = b.set.Counter("fetch_sent")
	b.discBroadcasts = b.set.Counter("discovery_broadcasts")
	b.discProbesSent = b.set.Counter("discovery_probes_sent")
	b.discFound = b.set.Counter("discovery_found")
	b.discStale = b.set.Counter("discovery_stale")
	b.hiddenSet = b.set.Counter("hidden_set")
	b.hiddenCleared = b.set.Counter("hidden_cleared")
	b.llcEvictRecalls = b.set.Counter("llc_evict.recall")
	b.llcEvictHidden = b.set.Counter("llc_evict.hidden")
	b.llcEvictUntracked = b.set.Counter("llc_evict.untracked")
	b.allocRetries = b.set.Counter("alloc_retries")
	b.broadcastInvs = b.set.Counter("broadcast_invalidations")
	b.queuedPeak = b.set.Histogram("queue_depth")
	return b, nil
}

// Stats returns the bank's metric set.
func (bk *Bank) Stats() *stats.Set { return bk.set }

// LLC exposes the LLC bank (read-only use: audits, examples).
func (bk *Bank) LLC() *cache.Cache { return bk.llc }

// Directory exposes the directory slice.
func (bk *Bank) Directory() core.Directory { return bk.dir }

func (bk *Bank) node() noc.NodeID { return noc.NodeID(bk.id) }

func (bk *Bank) sendCore(coreID int, m *Msg) {
	m.From = -1
	bk.fab.sendToCore(bk.node(), coreID, m)
}

// busy reports whether block b has an in-flight transaction; the directory
// organizations use it to skip victims they cannot touch.
func (bk *Bank) busy(b mem.Block) bool {
	_, ok := bk.tbes[b]
	return ok
}

// addSharer records a sharer under the configured entry format (full-map
// or limited-pointer).
func (bk *Bank) addSharer(e *core.Entry, c int) {
	e.AddSharer(c, bk.fab.Params.PointerLimit)
}

// sendEntryInvs invalidates every copy entry may cover: the exact sharers
// for a precise entry, or a broadcast to every core (except skip, -1 for
// none) when the entry overflowed its pointers. It returns the number of
// acks to expect.
func (bk *Bank) sendEntryInvs(entry *core.Entry, b mem.Block, reason InvReason, skip int) int {
	if entry.Overflowed {
		bk.broadcastInvs.Inc()
		n := 0
		for c := 0; c < bk.fab.Params.Cores; c++ {
			if c == skip {
				continue
			}
			bk.invsSent[reason].Inc()
			bk.sendCore(c, &Msg{Type: MsgInv, Block: b, Reason: reason})
			n++
		}
		return n
	}
	n := 0
	entry.Sharers.ForEach(func(c int) {
		if c == skip {
			return
		}
		bk.invsSent[reason].Inc()
		bk.sendCore(c, &Msg{Type: MsgInv, Block: b, Reason: reason})
		n++
	})
	return n
}

// deliver accepts a message from the network. Requests serialize per block;
// responses are routed to the waiting transaction.
func (bk *Bank) deliver(m *Msg) {
	if m.Type.Request() {
		if bk.busy(m.Block) {
			q := append(bk.queues[m.Block], m)
			bk.queues[m.Block] = q
			bk.queuedPeak.Observe(int64(len(q)))
			return
		}
		bk.start(m)
		return
	}
	// Response: route to the TBE.
	tbe, ok := bk.tbes[m.Block]
	if m.Type == MsgUnblock {
		if !ok {
			panic(fmt.Sprintf("coherence: bank %d got %v with no open transaction", bk.id, m))
		}
		tbe.unblocks++
		if f := tbe.onUnblock; f != nil {
			tbe.onUnblock = nil
			f()
		}
		return
	}
	if !ok || tbe.waitAcks == 0 {
		panic(fmt.Sprintf("coherence: bank %d got response %v with no waiting transaction", bk.id, m))
	}
	if m.HasData && m.Dirty {
		tbe.gotDirty = true
		tbe.dirtyData = m.Data
	}
	if m.Retained {
		tbe.retained = m.From
	}
	if m.Found {
		tbe.anyFound = true
	}
	if m.Forwarded {
		tbe.forwarded = true
	}
	tbe.waitAcks--
	if tbe.waitAcks == 0 {
		tbe.onDone()
	}
}

// start claims the block's TBE and, after the bank access latency, runs the
// transaction.
func (bk *Bank) start(m *Msg) {
	tbe := bk.newTBE(m.Block)
	bk.fab.Engine.After(bk.fab.Params.BankLatency, "bank.start", func() {
		switch m.Type {
		case MsgGetS, MsgGetM:
			bk.handleGet(m, tbe)
		case MsgPutS, MsgPutE, MsgPutM:
			bk.handlePut(m)
			bk.finish(tbe)
		default:
			panic(fmt.Sprintf("coherence: bank %d cannot start %v", bk.id, m))
		}
	})
}

func (bk *Bank) newTBE(b mem.Block) *dirTBE {
	if bk.busy(b) {
		panic(fmt.Sprintf("coherence: bank %d double transaction on block %#x", bk.id, uint64(b)))
	}
	tbe := &dirTBE{block: b, retained: -1}
	bk.tbes[b] = tbe
	return tbe
}

// finish releases the TBE and pumps the block's request queue.
func (bk *Bank) finish(tbe *dirTBE) {
	b := tbe.block
	if bk.tbes[b] != tbe {
		panic(fmt.Sprintf("coherence: bank %d finishing stale transaction for %#x", bk.id, uint64(b)))
	}
	delete(bk.tbes, b)
	q := bk.queues[b]
	if len(q) == 0 {
		delete(bk.queues, b)
		return
	}
	next := q[0]
	if len(q) == 1 {
		delete(bk.queues, b)
	} else {
		bk.queues[b] = q[1:]
	}
	// Claim the successor's TBE synchronously: leaving even a one-cycle
	// gap would let an arriving request or a victim selection grab the
	// block first. The successor's handler still runs after BankLatency.
	bk.start(next)
}

// waitUnblock runs fn once the requester has confirmed its forwarded grant
// (which may already have happened).
func (bk *Bank) waitUnblock(tbe *dirTBE, fn func()) {
	if tbe.unblocks > 0 {
		fn()
		return
	}
	tbe.onUnblock = fn
}

// wait arms the TBE to collect n responses, then run onDone. n == 0 runs
// onDone immediately.
func (bk *Bank) wait(tbe *dirTBE, n int, onDone func()) {
	tbe.gotDirty = false
	tbe.retained = -1
	tbe.anyFound = false
	tbe.forwarded = false
	if n == 0 {
		tbe.onDone = nil
		onDone()
		return
	}
	tbe.waitAcks = n
	tbe.onDone = onDone
}

// ---------------------------------------------------------------------------
// GetS / GetM
// ---------------------------------------------------------------------------

func (bk *Bank) handleGet(m *Msg, tbe *dirTBE) {
	if m.Type == MsgGetS {
		bk.getS.Inc()
	} else {
		bk.getM.Inc()
	}
	if line := bk.llc.Lookup(m.Block); line != nil {
		bk.dirPhase(m, tbe, line)
		return
	}
	bk.fillFromMemory(m.Block, tbe, func(line *cacheLine) {
		bk.dirPhase(m, tbe, line)
	})
}

// fillFromMemory brings m.Block into the LLC: it evicts a victim (recalling
// or discovering its private copies as inclusion demands) and fetches the
// block from memory. cont runs with the filled line.
func (bk *Bank) fillFromMemory(b mem.Block, tbe *dirTBE, cont func(*cacheLine)) {
	victim := bk.llc.Victim(b, func(ln *cacheLine) bool { return ln.Valid() && bk.busy(ln.Block) })
	if victim == nil {
		// Every candidate way has an in-flight transaction; retry.
		bk.allocRetries.Inc()
		bk.fab.Engine.After(bk.fab.Params.RetryDelay, "bank.llc-victim-retry", func() {
			bk.fillFromMemory(b, tbe, cont)
		})
		return
	}

	fetch := func() {
		// Claim the line immediately so concurrent fills cannot steal it;
		// the TBE for b keeps everyone away from the garbage data until
		// the memory read lands.
		bk.llc.Install(victim, b, mem.Shared, 0)
		bk.fab.Engine.After(bk.fab.Params.MemLatency, "bank.memread", func() {
			victim.Data = bk.fab.Memory.Read(b)
			cont(victim)
		})
	}

	if !victim.Valid() {
		fetch()
		return
	}
	bk.evictLLCVictim(victim, func() {
		fetch()
	})
}

// evictLLCVictim enforces inclusion for an LLC victim: tracked copies are
// recalled, hidden copies are discovered and invalidated, and dirty data is
// written back to memory. cont runs once the line may be reused.
func (bk *Bank) evictLLCVictim(victim *cacheLine, cont func()) {
	vb := victim.Block
	finishEvict := func(sub *dirTBE) {
		if sub.gotDirty {
			victim.Data = sub.dirtyData
			victim.State = mem.Modified
		}
		if victim.State == mem.Modified {
			bk.fab.Memory.Write(vb, victim.Data)
		}
		// The line is reused by the caller; the eviction itself was
		// counted by Install.
	}

	if entry := bk.dir.Probe(vb); entry != nil {
		// Back-invalidate every tracked copy.
		bk.llcEvictRecalls.Inc()
		sub := bk.newTBE(vb)
		n := bk.sendEntryInvs(entry, vb, ReasonLLCEvict, -1)
		bk.wait(sub, n, func() {
			finishEvict(sub)
			bk.dir.Remove(vb)
			bk.finish(sub)
			cont()
		})
		return
	}
	if victim.Flags&flagHidden != 0 {
		// A hidden private copy may exist anywhere: discover and kill it.
		bk.llcEvictHidden.Inc()
		sub := bk.newTBE(vb)
		bk.discover(vb, DiscoverInvalidate, ReasonLLCEvict, -1)
		bk.wait(sub, bk.fab.Params.Cores, func() {
			if sub.anyFound {
				bk.discFound.Inc()
			} else {
				bk.discStale.Inc()
			}
			bk.hiddenCleared.Inc()
			finishEvict(sub)
			bk.finish(sub)
			cont()
		})
		return
	}
	bk.llcEvictUntracked.Inc()
	if victim.State == mem.Modified {
		bk.fab.Memory.Write(vb, victim.Data)
	}
	cont()
}

// discover broadcasts a discovery probe for block b to every core except
// skip (-1 probes everyone).
func (bk *Bank) discover(b mem.Block, kind DiscoverKind, reason InvReason, skip int) {
	bk.discBroadcasts.Inc()
	for c := 0; c < bk.fab.Params.Cores; c++ {
		if c == skip {
			continue
		}
		bk.discProbesSent.Inc()
		bk.sendCore(c, &Msg{Type: MsgDiscover, Block: b, Kind: kind, Reason: reason})
	}
}

// dirPhase consults the directory once the block is LLC-resident.
func (bk *Bank) dirPhase(m *Msg, tbe *dirTBE, line *cacheLine) {
	if entry := bk.dir.Lookup(m.Block); entry != nil {
		bk.serveTracked(m, tbe, line, entry)
		return
	}
	if line.Flags&flagHidden != 0 {
		bk.serveHidden(m, tbe, line)
		return
	}
	// Untracked, not hidden: no private copies exist anywhere.
	bk.allocEntry(m.Block, tbe, func(entry *core.Entry) {
		bk.grantFresh(m, line, entry)
		bk.finish(tbe)
	})
}

// serveHidden runs the stash directory's discovery flow: the LLC line says
// an untracked private copy may exist, so probe all other cores, fold any
// dirty data into the LLC, rebuild tracking and only then serve the
// request.
func (bk *Bank) serveHidden(m *Msg, tbe *dirTBE, line *cacheLine) {
	kind := DiscoverInvalidate
	if m.Type == MsgGetS {
		kind = DiscoverDowngrade
	}
	bk.discover(m.Block, kind, ReasonDemand, m.From)
	bk.wait(tbe, bk.fab.Params.Cores-1, func() {
		line.Flags &^= flagHidden
		bk.hiddenCleared.Inc()
		if tbe.anyFound {
			bk.discFound.Inc()
		} else {
			// The hidden copy was silently gone; the bit was stale.
			bk.discStale.Inc()
		}
		if tbe.gotDirty {
			line.Data = tbe.dirtyData
			line.State = mem.Modified
		}
		retained := tbe.retained
		bk.allocEntry(m.Block, tbe, func(entry *core.Entry) {
			if m.Type == MsgGetS && retained >= 0 {
				// The hidden owner was downgraded and kept a Shared copy.
				bk.addSharer(entry, retained)
				bk.addSharer(entry, m.From)
				entry.Owned = false
				bk.sendCore(m.From, &Msg{Type: MsgDataS, Block: m.Block, Data: line.Data, HasData: true})
			} else {
				bk.grantFresh(m, line, entry)
			}
			bk.finish(tbe)
		})
	})
}

// grantFresh grants a block with no other live copies: Exclusive for reads
// (the MESI E optimization), Modified for writes.
func (bk *Bank) grantFresh(m *Msg, line *cacheLine, entry *core.Entry) {
	entry.Sharers.Add(m.From)
	entry.Owned = true
	t := MsgDataE
	if m.Type == MsgGetM {
		t = MsgDataM
	}
	bk.sendCore(m.From, &Msg{Type: t, Block: m.Block, Data: line.Data, HasData: true})
}

// serveTracked serves a request for a block with a live directory entry.
func (bk *Bank) serveTracked(m *Msg, tbe *dirTBE, line *cacheLine, entry *core.Entry) {
	r := m.From
	switch {
	case m.Type == MsgGetS && entry.Owned:
		owner := entry.Owner()
		if owner == r {
			// Only reachable with silent clean evictions: the owner
			// silently dropped its Exclusive copy and re-reads.
			bk.sendCore(r, &Msg{Type: MsgDataE, Block: m.Block, Data: line.Data, HasData: true})
			bk.finish(tbe)
			return
		}
		if bk.fab.Params.ThreeHopForwarding {
			bk.fetchesSent.Inc()
			bk.sendCore(owner, &Msg{Type: MsgFwdGetS, Block: m.Block, Requester: r})
			bk.wait(tbe, 1, func() {
				if tbe.gotDirty {
					line.Data = tbe.dirtyData
					line.State = mem.Modified
				}
				bk.addSharer(entry, r)
				if tbe.forwarded {
					// The owner granted a Shared copy directly; it keeps
					// its own copy only when it reported Retained. Hold the
					// block until the requester confirms the grant landed.
					if tbe.retained != owner {
						entry.Sharers.Remove(owner)
					}
					entry.Owned = false
					bk.waitUnblock(tbe, func() { bk.finish(tbe) })
				} else {
					// Owner had nothing (silent eviction); serve from the
					// LLC as in the two-hop flow.
					entry.Sharers.Remove(owner)
					entry.Owned = true
					bk.sendCore(r, &Msg{Type: MsgDataE, Block: m.Block, Data: line.Data, HasData: true})
					bk.finish(tbe)
				}
			})
			return
		}
		bk.fetchesSent.Inc()
		bk.sendCore(owner, &Msg{Type: MsgFetch, Block: m.Block})
		bk.wait(tbe, 1, func() {
			if tbe.gotDirty {
				line.Data = tbe.dirtyData
				line.State = mem.Modified
			}
			if tbe.retained == owner {
				entry.Owned = false
				bk.addSharer(entry, r)
				bk.sendCore(r, &Msg{Type: MsgDataS, Block: m.Block, Data: line.Data, HasData: true})
			} else {
				// The owner's copy was already on its way out: the
				// requester becomes the sole, exclusive holder.
				entry.Sharers.Remove(owner)
				entry.Sharers.Add(r)
				entry.Owned = true
				bk.sendCore(r, &Msg{Type: MsgDataE, Block: m.Block, Data: line.Data, HasData: true})
			}
			bk.finish(tbe)
		})

	case m.Type == MsgGetS: // shared entry
		bk.addSharer(entry, r)
		bk.sendCore(r, &Msg{Type: MsgDataS, Block: m.Block, Data: line.Data, HasData: true})
		bk.finish(tbe)

	case entry.Owned: // GetM
		owner := entry.Owner()
		if owner == r {
			// Silent clean evictions only: re-acquire for writing.
			bk.sendCore(r, &Msg{Type: MsgDataM, Block: m.Block, Data: line.Data, HasData: true})
			bk.finish(tbe)
			return
		}
		bk.invsSent[ReasonDemand].Inc()
		if bk.fab.Params.ThreeHopForwarding {
			bk.sendCore(owner, &Msg{Type: MsgFwdGetM, Block: m.Block, Requester: r})
			bk.wait(tbe, 1, func() {
				if tbe.gotDirty {
					line.Data = tbe.dirtyData
					line.State = mem.Modified
				}
				entry.Sharers = 0
				entry.Sharers.Add(r)
				entry.Owned = true
				if tbe.forwarded {
					bk.waitUnblock(tbe, func() { bk.finish(tbe) })
				} else {
					bk.sendCore(r, &Msg{Type: MsgDataM, Block: m.Block, Data: line.Data, HasData: true})
					bk.finish(tbe)
				}
			})
			return
		}
		bk.sendCore(owner, &Msg{Type: MsgInv, Block: m.Block, Reason: ReasonDemand})
		bk.wait(tbe, 1, func() {
			if tbe.gotDirty {
				line.Data = tbe.dirtyData
				line.State = mem.Modified
			}
			entry.Sharers = 0
			entry.Sharers.Add(r)
			entry.Owned = true
			bk.sendCore(r, &Msg{Type: MsgDataM, Block: m.Block, Data: line.Data, HasData: true})
			bk.finish(tbe)
		})

	default: // GetM on a shared entry
		wasSharer := !entry.Overflowed && entry.Sharers.Has(r)
		n := bk.sendEntryInvs(entry, m.Block, ReasonDemand, r)
		bk.wait(tbe, n, func() {
			entry.Sharers = 0
			entry.Overflowed = false
			entry.Sharers.Add(r)
			entry.Owned = true
			grant := &Msg{Type: MsgDataM, Block: m.Block}
			if !(m.HaveLine && wasSharer) {
				grant.Data, grant.HasData = line.Data, true
			}
			bk.sendCore(r, grant)
			bk.finish(tbe)
		})
	}
}

// allocEntry obtains a directory entry for b, recalling or stashing a
// victim as the organization demands, and runs cont with the fresh entry.
func (bk *Bank) allocEntry(b mem.Block, tbe *dirTBE, cont func(*core.Entry)) {
	res := bk.dir.Allocate(b, bk.busy)
	switch res.Outcome {
	case core.AllocOK:
		cont(res.Entry)

	case core.AllocStashed:
		// The dropped entry's block becomes hidden: flag its LLC line so a
		// later directory miss knows a private copy may exist.
		line := bk.llc.Probe(res.Stashed.Block)
		if line == nil {
			panic(fmt.Sprintf("coherence: bank %d stashed block %#x that is not LLC-resident", bk.id, uint64(res.Stashed.Block)))
		}
		line.Flags |= flagHidden
		bk.hiddenSet.Inc()
		cont(res.Entry)

	case core.AllocNeedsRecall:
		victim := res.Victim
		vb := victim.Block
		sub := bk.newTBE(vb)
		n := bk.sendEntryInvs(victim, vb, ReasonRecall, -1)
		bk.wait(sub, n, func() {
			if sub.gotDirty {
				vline := bk.llc.Probe(vb)
				if vline == nil {
					panic(fmt.Sprintf("coherence: bank %d recalled block %#x that is not LLC-resident", bk.id, uint64(vb)))
				}
				vline.Data = sub.dirtyData
				vline.State = mem.Modified
			}
			bk.dir.Remove(vb)
			bk.finish(sub)
			// Same-event retry: the freed slot cannot be stolen before we
			// run again.
			bk.allocEntry(b, tbe, cont)
		})

	case core.AllocBlocked:
		bk.allocRetries.Inc()
		bk.fab.Engine.After(bk.fab.Params.RetryDelay, "bank.alloc-retry", func() {
			bk.allocEntry(b, tbe, cont)
		})
	}
}

// ---------------------------------------------------------------------------
// Puts
// ---------------------------------------------------------------------------

// handlePut retires an L1 eviction notification. Races with recalls,
// fetches and LLC evictions make several "stale" shapes legal; each is
// acknowledged and folded in as the rules below describe.
func (bk *Bank) handlePut(m *Msg) {
	bk.puts.Inc()
	b := m.Block
	r := m.From
	entry := bk.dir.Probe(b)
	line := bk.llc.Probe(b)

	switch m.Type {
	case MsgPutS:
		if entry != nil && entry.Overflowed {
			// Limited-pointer overflow: the sharer set is inexact, so the
			// departure cannot be recorded; the entry stays conservative
			// until a broadcast invalidation rebuilds it.
		} else if entry != nil && entry.Sharers.Has(r) {
			entry.Sharers.Remove(r)
			if entry.Sharers.Empty() {
				bk.dir.Remove(b)
			} else if entry.Sharers.Count() == 1 {
				// A single Shared holder remains; it does not own the
				// block (no E/M grant happened), so Owned stays false.
				entry.Owned = false
			}
		} else if entry == nil && line != nil && line.Flags&flagHidden != 0 {
			// The hidden (singleton-Shared) copy retired itself.
			line.Flags &^= flagHidden
			bk.hiddenCleared.Inc()
		}

	case MsgPutE:
		if entry != nil && entry.Owner() == r {
			bk.dir.Remove(b)
		} else if entry != nil && entry.Overflowed {
			// As for PutS: no precise removal from an overflowed entry.
		} else if entry != nil && entry.Sharers.Has(r) {
			// Downgraded while the PutE was in flight; treat as PutS.
			entry.Sharers.Remove(r)
			if entry.Sharers.Empty() {
				bk.dir.Remove(b)
			}
		} else if entry == nil && line != nil && line.Flags&flagHidden != 0 {
			line.Flags &^= flagHidden
			bk.hiddenCleared.Inc()
		}

	case MsgPutM:
		switch {
		case entry != nil && entry.Owner() == r:
			if line == nil {
				panic(fmt.Sprintf("coherence: bank %d PutM for tracked block %#x with no LLC line", bk.id, uint64(b)))
			}
			line.Data = m.Data
			line.State = mem.Modified
			bk.dir.Remove(b)
		case entry == nil && line != nil && line.Flags&flagHidden != 0:
			line.Data = m.Data
			line.State = mem.Modified
			line.Flags &^= flagHidden
			bk.hiddenCleared.Inc()
		default:
			// Stale: an Inv/Fetch already collected this data, or the LLC
			// line itself was evicted (which recalled us first). Drop it.
		}
	}
	bk.sendCore(r, &Msg{Type: MsgPutAck, Block: b})
}
