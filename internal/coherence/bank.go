package coherence

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/noc"
	"repro/internal/stats"
)

// LLC line flags.
const (
	// flagHidden marks an LLC line whose block is cached privately but no
	// longer tracked by the directory: its entry was stashed. A directory
	// miss on a hidden line triggers a discovery broadcast.
	flagHidden uint32 = 1 << 0
)

// tbeCont names the continuation a transaction runs once its awaited
// responses arrive. The TBEs used to hold closures here; an enum plus
// explicit state fields keeps the steady-state path allocation-free and
// makes the transaction state machine inspectable.
type tbeCont uint8

const (
	contNone        tbeCont = iota
	contFwdGetS             // 3-hop GetS: owner answered the forward
	contFetch               // 2-hop GetS: owner answered the fetch
	contFwdGetM             // 3-hop GetM: owner answered the forward
	contInvOwner            // 2-hop GetM: owner acknowledged the Inv
	contInvSharers          // GetM on a shared entry: sharer Invs acked
	contHidden              // demand discovery broadcast completed
	contRecall              // directory-entry recall (allocEntry) completed
	contEvictRecall         // LLC-victim recall completed
	contEvictHidden         // LLC-victim hidden-copy discovery completed
)

// tbeAlloc selects what allocDone does with the fresh directory entry.
type tbeAlloc uint8

const (
	allocGrantFresh tbeAlloc = iota // grant E/M to the requester
	allocHidden                     // finish a demand discovery (serveHidden)
)

// dirTBE serializes transactions per block at a bank. While a block's TBE
// exists, further requests for it queue on the TBE; responses (acks, fetch
// and discovery replies) are routed straight to the TBE. TBEs are pooled
// and hold no closures: the request's fields are copied in at start and
// the pending continuation is a tbeCont.
//
//stash:tileowned
type dirTBE struct {
	block mem.Block

	// The request being served, copied out of the triggering Msg (which is
	// released back to the pool at start).
	reqType MsgType
	reqFrom int
	reqData uint64
	reqHave bool

	// Response collection.
	waitAcks    int
	gotDirty    bool
	dirtyData   uint64
	retained    int // core that kept a Shared copy after Fetch/Discover, or -1
	anyFound    bool
	forwarded   bool // the owner already granted the requester (three-hop mode)
	unblocks    int  // forwarded-grant arrivals reported by requesters
	wantUnblock bool // finish as soon as the requester's unblock arrives

	// Continuation state.
	cont      tbeCont
	alloc     tbeAlloc
	line      *cacheLine  // the block's (or victim's) LLC line
	entry     *core.Entry // directory entry under service (serveTracked)
	owner     int
	wasSharer bool
	parent    *dirTBE // request TBE that a recall/eviction sub-transaction resumes

	// FIFO of requests queued behind this transaction, chained through
	// Msg.next. The successor TBE inherits the remainder at finish.
	qhead, qtail *Msg
	qlen         int
}

// Bank is one tile's slice of the shared machinery: an inclusive LLC bank,
// the co-located directory slice, and the controller that runs coherence
// transactions for the blocks interleaved onto it.
//
//stash:tileowned
type Bank struct {
	id  int
	fab *Fabric
	dir core.Directory
	llc *cache.Cache

	tbes    *blockTable[*dirTBE]
	tbeFree []*dirTBE
	tbeUse  int
	tbeHigh int

	// Long-lived callbacks, bound once at construction so the hot path
	// never allocates a closure or method value.
	busyFn       func(mem.Block) bool
	llcSkipFn    func(*cacheLine) bool
	startFn      func(any)
	memReadFn    func(any)
	fillRetryFn  func(any)
	allocRetryFn func(any)

	set *stats.Set

	getS, getM, puts  *stats.Counter
	invsSent          [3]*stats.Counter
	fetchesSent       *stats.Counter
	discBroadcasts    *stats.Counter
	discProbesSent    *stats.Counter
	discFound         *stats.Counter
	discStale         *stats.Counter
	hiddenSet         *stats.Counter
	hiddenCleared     *stats.Counter
	llcEvictRecalls   *stats.Counter
	llcEvictHidden    *stats.Counter
	llcEvictUntracked *stats.Counter
	allocRetries      *stats.Counter
	broadcastInvs     *stats.Counter
	queuedPeak        *stats.Histogram
}

// NewBank builds bank id with its directory slice and LLC bank.
func NewBank(id int, fab *Fabric, dir core.Directory, llcCfg cache.Config) (*Bank, error) {
	llc, err := cache.New(llcCfg)
	if err != nil {
		return nil, err
	}
	mshrs := fab.Params.MSHRs
	if mshrs < 1 {
		mshrs = 1
	}
	b := &Bank{
		id:  id,
		fab: fab,
		dir: dir,
		llc: llc,
		// Sized so the worst steady-state transaction population (every
		// core's outstanding misses plus their sub-transactions landing on
		// one bank) stays below the grow threshold.
		tbes: newBlockTable[*dirTBE](2 * fab.Params.Cores * (mshrs + 1)),
		set:  stats.NewSet(fmt.Sprintf("bank.%d", id)),
	}
	b.busyFn = b.busy
	b.llcSkipFn = func(ln *cacheLine) bool { return ln.Valid() && b.busy(ln.Block) }
	b.startFn = func(arg any) { b.runStart(arg.(*dirTBE)) }
	b.memReadFn = func(arg any) {
		tbe := arg.(*dirTBE)
		tbe.line.Data = b.fab.Memory.Read(tbe.block)
		b.dirPhase(tbe, tbe.line)
	}
	b.fillRetryFn = func(arg any) { b.fillFromMemory(arg.(*dirTBE)) }
	b.allocRetryFn = func(arg any) { b.allocEntry(arg.(*dirTBE)) }
	b.getS = b.set.Counter("getS")
	b.getM = b.set.Counter("getM")
	b.puts = b.set.Counter("puts")
	for r := ReasonDemand; r <= ReasonLLCEvict; r++ {
		b.invsSent[r] = b.set.Counter("inv_sent." + r.String())
	}
	b.fetchesSent = b.set.Counter("fetch_sent")
	b.discBroadcasts = b.set.Counter("discovery_broadcasts")
	b.discProbesSent = b.set.Counter("discovery_probes_sent")
	b.discFound = b.set.Counter("discovery_found")
	b.discStale = b.set.Counter("discovery_stale")
	b.hiddenSet = b.set.Counter("hidden_set")
	b.hiddenCleared = b.set.Counter("hidden_cleared")
	b.llcEvictRecalls = b.set.Counter("llc_evict.recall")
	b.llcEvictHidden = b.set.Counter("llc_evict.hidden")
	b.llcEvictUntracked = b.set.Counter("llc_evict.untracked")
	b.allocRetries = b.set.Counter("alloc_retries")
	b.broadcastInvs = b.set.Counter("broadcast_invalidations")
	b.queuedPeak = b.set.Histogram("queue_depth")
	return b, nil
}

// Stats returns the bank's metric set.
//
//stash:hotpath
func (bk *Bank) Stats() *stats.Set { return bk.set }

// LLC exposes the LLC bank (read-only use: audits, examples).
//
//stash:hotpath
func (bk *Bank) LLC() *cache.Cache { return bk.llc }

// Directory exposes the directory slice.
//
//stash:hotpath
func (bk *Bank) Directory() core.Directory { return bk.dir }

//stash:hotpath
func (bk *Bank) node() noc.NodeID { return noc.NodeID(bk.id) }

// sendCore routes m to core's tile; the mesh takes ownership.
//
//stash:transfer
//stash:hotpath
func (bk *Bank) sendCore(coreID int, m *Msg) {
	m.From = -1
	bk.fab.sendToCore(bk.node(), coreID, m)
}

// busy reports whether block b has an in-flight transaction; the directory
// organizations use it to skip victims they cannot touch.
//
//stash:hotpath
func (bk *Bank) busy(b mem.Block) bool {
	return bk.tbes.has(b)
}

// tbePoolStats reports the bank's live TBE count and high-water mark.
//
//stash:hotpath
func (bk *Bank) tbePoolStats() (inUse, highWater int) { return bk.tbeUse, bk.tbeHigh }

// addSharer records a sharer under the configured entry format (full-map
// or limited-pointer).
//
//stash:hotpath
func (bk *Bank) addSharer(e *core.Entry, c int) {
	e.AddSharer(c, bk.fab.Params.PointerLimit)
}

// sendEntryInvs invalidates every copy entry may cover: the exact sharers
// for a precise entry, or a broadcast to every core (except skip, -1 for
// none) when the entry overflowed its pointers. It returns the number of
// acks to expect.
//
//stash:hotpath
func (bk *Bank) sendEntryInvs(entry *core.Entry, b mem.Block, reason InvReason, skip int) int {
	if entry.Overflowed {
		bk.broadcastInvs.Inc()
		n := 0
		for c := 0; c < bk.fab.Params.Cores; c++ {
			if c == skip {
				continue
			}
			bk.invsSent[reason].Inc()
			inv := bk.fab.newMsg(MsgInv, b)
			inv.Reason = reason
			bk.sendCore(c, inv)
			n++
		}
		return n
	}
	n := 0
	//stash:ignore hotpath ForEach does not retain the closure; it stays on the stack
	entry.Sharers.ForEach(func(c int) {
		if c == skip {
			return
		}
		bk.invsSent[reason].Inc()
		inv := bk.fab.newMsg(MsgInv, b)
		inv.Reason = reason
		bk.sendCore(c, inv)
		n++
	})
	return n
}

// deliver accepts a message from the network. Requests serialize per block;
// responses are routed to the waiting transaction. The bank owns incoming
// messages from here on: responses are released at the end of this call,
// requests either start a transaction (released inside start) or queue on
// the busy TBE until dequeued.
//
//stash:hotpath
func (bk *Bank) deliver(m *Msg) {
	if m.Type.Request() {
		if tbe, ok := bk.tbes.get(m.Block); ok {
			if bk.fab.pool.poison && m.free {
				panic(fmt.Sprintf("coherence: bank %d queueing a released message %v", bk.id, m))
			}
			if bk.fab.pool.poison && (m.next != nil || tbe.qtail == m) {
				panic(fmt.Sprintf("coherence: bank %d re-queueing an already-queued message %v", bk.id, m))
			}
			if tbe.qtail == nil {
				tbe.qhead = m
			} else {
				tbe.qtail.next = m
			}
			tbe.qtail = m
			tbe.qlen++
			bk.queuedPeak.Observe(int64(tbe.qlen))
			return
		}
		bk.start(m)
		return
	}
	// Response: route to the TBE.
	tbe, ok := bk.tbes.get(m.Block)
	if m.Type == MsgUnblock {
		if !ok {
			panic(fmt.Sprintf("coherence: bank %d got %v with no open transaction", bk.id, m))
		}
		tbe.unblocks++
		bk.fab.releaseMsg(m)
		if tbe.wantUnblock {
			tbe.wantUnblock = false
			bk.finish(tbe)
		}
		return
	}
	if !ok || tbe.waitAcks == 0 {
		panic(fmt.Sprintf("coherence: bank %d got response %v with no waiting transaction", bk.id, m))
	}
	if m.HasData && m.Dirty {
		tbe.gotDirty = true
		tbe.dirtyData = m.Data
	}
	if m.Retained {
		tbe.retained = m.From
	}
	if m.Found {
		tbe.anyFound = true
	}
	if m.Forwarded {
		tbe.forwarded = true
	}
	bk.fab.releaseMsg(m)
	tbe.waitAcks--
	if tbe.waitAcks == 0 {
		bk.runCont(tbe)
	}
}

// start claims the block's TBE, copies the request out of m (releasing it)
// and, after the bank access latency, runs the transaction.
//
//stash:hotpath
func (bk *Bank) start(m *Msg) *dirTBE {
	tbe := bk.newTBE(m.Block)
	tbe.reqType = m.Type
	tbe.reqFrom = m.From
	tbe.reqData = m.Data
	tbe.reqHave = m.HaveLine
	bk.fab.releaseMsg(m)
	bk.fab.Engine.AfterArg(bk.fab.Params.BankLatency, "bank.start", bk.startFn, tbe)
	return tbe
}

// runStart is the bank.start event body.
//
//stash:hotpath
func (bk *Bank) runStart(tbe *dirTBE) {
	switch tbe.reqType {
	case MsgGetS, MsgGetM:
		bk.handleGet(tbe)
	case MsgPutS, MsgPutE, MsgPutM:
		bk.handlePut(tbe)
		bk.finish(tbe)
	default:
		panic(fmt.Sprintf("coherence: bank %d cannot start %s for block %#x", bk.id, tbe.reqType, uint64(tbe.block)))
	}
}

// newTBE claims a pooled TBE for block b. The caller must hand the TBE to a
// sink — bk.wait, an engine park (AfterArg), or bk.finish — on every path.
//
//stash:acquire
//stash:hotpath
func (bk *Bank) newTBE(b mem.Block) *dirTBE {
	if bk.busy(b) {
		panic(fmt.Sprintf("coherence: bank %d double transaction on block %#x", bk.id, uint64(b)))
	}
	var tbe *dirTBE
	if n := len(bk.tbeFree); n > 0 {
		tbe = bk.tbeFree[n-1]
		bk.tbeFree = bk.tbeFree[:n-1]
		*tbe = dirTBE{}
	} else {
		tbe = &dirTBE{} //stash:ignore hotpath pool warm-up; amortized away by reuse
	}
	tbe.block = b
	tbe.retained = -1
	bk.tbeUse++
	if bk.tbeUse > bk.tbeHigh {
		bk.tbeHigh = bk.tbeUse
	}
	bk.tbes.put(b, tbe)
	return tbe
}

// finish releases the TBE and pumps the block's request queue.
//
//stash:release
//stash:hotpath
func (bk *Bank) finish(tbe *dirTBE) {
	b := tbe.block
	if cur, ok := bk.tbes.get(b); !ok || cur != tbe {
		panic(fmt.Sprintf("coherence: bank %d finishing stale transaction for %#x", bk.id, uint64(b)))
	}
	bk.tbes.del(b)
	qhead, qtail, qlen := tbe.qhead, tbe.qtail, tbe.qlen
	bk.tbeUse--
	bk.tbeFree = append(bk.tbeFree, tbe)
	if qlen == 0 {
		return
	}
	next := qhead
	qhead = next.next
	next.next = nil
	qlen--
	if qhead == nil {
		qtail = nil
	}
	// Claim the successor's TBE synchronously: leaving even a one-cycle
	// gap would let an arriving request or a victim selection grab the
	// block first. The successor's handler still runs after BankLatency,
	// and it inherits the rest of the queue.
	succ := bk.start(next)
	succ.qhead, succ.qtail, succ.qlen = qhead, qtail, qlen
}

// finishOnUnblock finishes the transaction once the requester has confirmed
// its forwarded grant (which may already have happened).
//
//stash:hotpath
func (bk *Bank) finishOnUnblock(tbe *dirTBE) {
	if tbe.unblocks > 0 {
		bk.finish(tbe)
		return
	}
	tbe.wantUnblock = true
}

// wait arms the TBE to collect n responses, then run cont. n == 0 runs the
// continuation immediately. The response path owns the TBE from here on.
//
//stash:transfer
//stash:hotpath
func (bk *Bank) wait(tbe *dirTBE, n int, cont tbeCont) {
	tbe.gotDirty = false
	tbe.retained = -1
	tbe.anyFound = false
	tbe.forwarded = false
	tbe.cont = cont
	if n == 0 {
		bk.runCont(tbe)
		return
	}
	tbe.waitAcks = n
}

// runCont dispatches the TBE's armed continuation.
//
//stash:hotpath
func (bk *Bank) runCont(tbe *dirTBE) {
	switch tbe.cont {
	case contFwdGetS:
		bk.fwdGetSDone(tbe)
	case contFetch:
		bk.fetchDone(tbe)
	case contFwdGetM:
		bk.fwdGetMDone(tbe)
	case contInvOwner:
		bk.invOwnerDone(tbe)
	case contInvSharers:
		bk.invSharersDone(tbe)
	case contHidden:
		bk.hiddenDone(tbe)
	case contRecall:
		bk.recallDone(tbe)
	case contEvictRecall:
		bk.evictRecallDone(tbe)
	case contEvictHidden:
		bk.evictHiddenDone(tbe)
	default:
		panic(fmt.Sprintf("coherence: bank %d TBE for %#x has no continuation", bk.id, uint64(tbe.block)))
	}
}

// ---------------------------------------------------------------------------
// GetS / GetM
// ---------------------------------------------------------------------------

//stash:hotpath
func (bk *Bank) handleGet(tbe *dirTBE) {
	if tbe.reqType == MsgGetS {
		bk.getS.Inc()
	} else {
		bk.getM.Inc()
	}
	if line := bk.llc.Lookup(tbe.block); line != nil {
		bk.dirPhase(tbe, line)
		return
	}
	bk.fillFromMemory(tbe)
}

// fillFromMemory brings tbe.block into the LLC: it evicts a victim
// (recalling or discovering its private copies as inclusion demands) and
// fetches the block from memory, continuing into dirPhase.
//
//stash:hotpath
func (bk *Bank) fillFromMemory(tbe *dirTBE) {
	victim := bk.llc.Victim(tbe.block, bk.llcSkipFn)
	if victim == nil {
		// Every candidate way has an in-flight transaction; retry.
		bk.allocRetries.Inc()
		if bk.fab.retryHook != nil {
			bk.fab.retryHook(ParkedRetry{bank: bk, kind: RetryLLCVictim, tbe: tbe})
			return
		}
		bk.fab.Engine.AfterArg(bk.fab.Params.RetryDelay, "bank.llc-victim-retry", bk.fillRetryFn, tbe)
		return
	}
	tbe.line = victim
	if !victim.Valid() {
		bk.claimAndFetch(tbe)
		return
	}
	bk.evictLLCVictim(tbe, victim)
}

// claimAndFetch claims tbe.line for tbe.block immediately — so concurrent
// fills cannot steal it; the TBE keeps everyone away from the garbage data
// — and reads the block from memory.
//
//stash:hotpath
func (bk *Bank) claimAndFetch(tbe *dirTBE) {
	bk.llc.Install(tbe.line, tbe.block, mem.Shared, 0)
	bk.fab.Engine.AfterArg(bk.fab.Params.MemLatency, "bank.memread", bk.memReadFn, tbe)
}

// evictLLCVictim enforces inclusion for an LLC victim: tracked copies are
// recalled, hidden copies are discovered and invalidated, and dirty data is
// written back to memory. The fill continues once the line may be reused.
//
//stash:hotpath
func (bk *Bank) evictLLCVictim(tbe *dirTBE, victim *cacheLine) {
	vb := victim.Block
	if entry := bk.dir.Probe(vb); entry != nil {
		// Back-invalidate every tracked copy.
		bk.llcEvictRecalls.Inc()
		sub := bk.newTBE(vb)
		sub.parent = tbe
		sub.line = victim
		n := bk.sendEntryInvs(entry, vb, ReasonLLCEvict, -1)
		bk.wait(sub, n, contEvictRecall)
		return
	}
	if victim.Flags&flagHidden != 0 {
		// A hidden private copy may exist anywhere: discover and kill it.
		bk.llcEvictHidden.Inc()
		sub := bk.newTBE(vb)
		sub.parent = tbe
		sub.line = victim
		bk.discover(vb, DiscoverInvalidate, ReasonLLCEvict, -1)
		bk.wait(sub, bk.fab.Params.Cores, contEvictHidden)
		return
	}
	bk.llcEvictUntracked.Inc()
	if victim.State == mem.Modified {
		bk.fab.Memory.Write(vb, victim.Data)
	}
	bk.claimAndFetch(tbe)
}

// finishEvict folds any recalled dirty data into the victim line and writes
// a modified victim back to memory. The line is reused by the caller; the
// eviction itself is counted by Install.
//
//stash:hotpath
func (bk *Bank) finishEvict(sub *dirTBE) {
	victim := sub.line
	if sub.gotDirty {
		victim.Data = sub.dirtyData
		victim.State = mem.Modified
	}
	if victim.State == mem.Modified {
		bk.fab.Memory.Write(sub.block, victim.Data)
	}
}

//stash:hotpath
func (bk *Bank) evictRecallDone(sub *dirTBE) {
	bk.finishEvict(sub)
	bk.dir.Remove(sub.block)
	parent := sub.parent
	bk.finish(sub)
	bk.claimAndFetch(parent)
}

//stash:hotpath
func (bk *Bank) evictHiddenDone(sub *dirTBE) {
	if sub.anyFound {
		bk.discFound.Inc()
	} else {
		bk.discStale.Inc()
	}
	bk.hiddenCleared.Inc()
	bk.finishEvict(sub)
	parent := sub.parent
	bk.finish(sub)
	bk.claimAndFetch(parent)
}

// discover broadcasts a discovery probe for block b to every core except
// skip (-1 probes everyone).
//
//stash:hotpath
func (bk *Bank) discover(b mem.Block, kind DiscoverKind, reason InvReason, skip int) {
	bk.discBroadcasts.Inc()
	for c := 0; c < bk.fab.Params.Cores; c++ {
		if c == skip {
			continue
		}
		bk.discProbesSent.Inc()
		probe := bk.fab.newMsg(MsgDiscover, b)
		probe.Kind = kind
		probe.Reason = reason
		bk.sendCore(c, probe)
	}
}

// dirPhase consults the directory once the block is LLC-resident.
//
//stash:hotpath
func (bk *Bank) dirPhase(tbe *dirTBE, line *cacheLine) {
	tbe.line = line
	if entry := bk.dir.Lookup(tbe.block); entry != nil {
		bk.serveTracked(tbe, line, entry)
		return
	}
	if line.Flags&flagHidden != 0 {
		bk.serveHidden(tbe)
		return
	}
	// Untracked, not hidden: no private copies exist anywhere.
	tbe.alloc = allocGrantFresh
	bk.allocEntry(tbe)
}

// serveHidden runs the stash directory's discovery flow: the LLC line says
// an untracked private copy may exist, so probe all other cores, fold any
// dirty data into the LLC, rebuild tracking and only then serve the
// request.
//
//stash:hotpath
func (bk *Bank) serveHidden(tbe *dirTBE) {
	kind := DiscoverInvalidate
	if tbe.reqType == MsgGetS {
		kind = DiscoverDowngrade
	}
	bk.discover(tbe.block, kind, ReasonDemand, tbe.reqFrom)
	bk.wait(tbe, bk.fab.Params.Cores-1, contHidden)
}

//stash:hotpath
func (bk *Bank) hiddenDone(tbe *dirTBE) {
	line := tbe.line
	line.Flags &^= flagHidden
	bk.hiddenCleared.Inc()
	if tbe.anyFound {
		bk.discFound.Inc()
	} else {
		// The hidden copy was silently gone; the bit was stale.
		bk.discStale.Inc()
	}
	if tbe.gotDirty {
		line.Data = tbe.dirtyData
		line.State = mem.Modified
	}
	tbe.alloc = allocHidden
	bk.allocEntry(tbe)
}

// allocDone continues a request once allocEntry produced its entry.
//
//stash:hotpath
func (bk *Bank) allocDone(tbe *dirTBE, entry *core.Entry) {
	if tbe.alloc == allocHidden && tbe.reqType == MsgGetS && tbe.retained >= 0 {
		// The hidden owner was downgraded and kept a Shared copy.
		bk.addSharer(entry, tbe.retained)
		bk.addSharer(entry, tbe.reqFrom)
		entry.Owned = false
		g := bk.fab.newMsg(MsgDataS, tbe.block)
		g.Data, g.HasData = tbe.line.Data, true
		bk.sendCore(tbe.reqFrom, g)
	} else {
		bk.grantFresh(tbe, entry)
	}
	bk.finish(tbe)
}

// grantFresh grants a block with no other live copies: Exclusive for reads
// (the MESI E optimization), Modified for writes.
//
//stash:hotpath
func (bk *Bank) grantFresh(tbe *dirTBE, entry *core.Entry) {
	entry.Sharers.Add(tbe.reqFrom)
	entry.Owned = true
	t := MsgDataE
	if tbe.reqType == MsgGetM {
		t = MsgDataM
	}
	g := bk.fab.newMsg(t, tbe.block)
	g.Data, g.HasData = tbe.line.Data, true
	bk.sendCore(tbe.reqFrom, g)
}

// serveTracked serves a request for a block with a live directory entry.
//
//stash:hotpath
func (bk *Bank) serveTracked(tbe *dirTBE, line *cacheLine, entry *core.Entry) {
	r := tbe.reqFrom
	tbe.entry = entry
	switch {
	case tbe.reqType == MsgGetS && entry.Owned:
		owner := entry.Owner()
		if owner == r {
			// Only reachable with silent clean evictions: the owner
			// silently dropped its Exclusive copy and re-reads.
			g := bk.fab.newMsg(MsgDataE, tbe.block)
			g.Data, g.HasData = line.Data, true
			bk.sendCore(r, g)
			bk.finish(tbe)
			return
		}
		tbe.owner = owner
		if bk.fab.Params.ThreeHopForwarding {
			bk.fetchesSent.Inc()
			fw := bk.fab.newMsg(MsgFwdGetS, tbe.block)
			fw.Requester = r
			bk.sendCore(owner, fw)
			bk.wait(tbe, 1, contFwdGetS)
			return
		}
		bk.fetchesSent.Inc()
		bk.sendCore(owner, bk.fab.newMsg(MsgFetch, tbe.block))
		bk.wait(tbe, 1, contFetch)

	case tbe.reqType == MsgGetS: // shared entry
		bk.addSharer(entry, r)
		g := bk.fab.newMsg(MsgDataS, tbe.block)
		g.Data, g.HasData = line.Data, true
		bk.sendCore(r, g)
		bk.finish(tbe)

	case entry.Owned: // GetM
		owner := entry.Owner()
		if owner == r {
			// Silent clean evictions only: re-acquire for writing.
			g := bk.fab.newMsg(MsgDataM, tbe.block)
			g.Data, g.HasData = line.Data, true
			bk.sendCore(r, g)
			bk.finish(tbe)
			return
		}
		tbe.owner = owner
		bk.invsSent[ReasonDemand].Inc()
		if bk.fab.Params.ThreeHopForwarding {
			fw := bk.fab.newMsg(MsgFwdGetM, tbe.block)
			fw.Requester = r
			bk.sendCore(owner, fw)
			bk.wait(tbe, 1, contFwdGetM)
			return
		}
		inv := bk.fab.newMsg(MsgInv, tbe.block)
		inv.Reason = ReasonDemand
		bk.sendCore(owner, inv)
		bk.wait(tbe, 1, contInvOwner)

	default: // GetM on a shared entry
		tbe.wasSharer = !entry.Overflowed && entry.Sharers.Has(r)
		n := bk.sendEntryInvs(entry, tbe.block, ReasonDemand, r)
		bk.wait(tbe, n, contInvSharers)
	}
}

// fwdGetSDone finishes a three-hop GetS once the owner answered.
//
//stash:hotpath
func (bk *Bank) fwdGetSDone(tbe *dirTBE) {
	line, entry, owner, r := tbe.line, tbe.entry, tbe.owner, tbe.reqFrom
	if tbe.gotDirty {
		line.Data = tbe.dirtyData
		line.State = mem.Modified
	}
	bk.addSharer(entry, r)
	if tbe.forwarded {
		// The owner granted a Shared copy directly; it keeps its own copy
		// only when it reported Retained. Hold the block until the
		// requester confirms the grant landed.
		if tbe.retained != owner {
			entry.Sharers.Remove(owner)
		}
		entry.Owned = false
		bk.finishOnUnblock(tbe)
	} else {
		// Owner had nothing (silent eviction); serve from the LLC as in
		// the two-hop flow.
		entry.Sharers.Remove(owner)
		entry.Owned = true
		g := bk.fab.newMsg(MsgDataE, tbe.block)
		g.Data, g.HasData = line.Data, true
		bk.sendCore(r, g)
		bk.finish(tbe)
	}
}

// fetchDone finishes a two-hop GetS once the owner answered the Fetch.
//
//stash:hotpath
func (bk *Bank) fetchDone(tbe *dirTBE) {
	line, entry, owner, r := tbe.line, tbe.entry, tbe.owner, tbe.reqFrom
	if tbe.gotDirty {
		line.Data = tbe.dirtyData
		line.State = mem.Modified
	}
	if tbe.retained == owner {
		entry.Owned = false
		bk.addSharer(entry, r)
		g := bk.fab.newMsg(MsgDataS, tbe.block)
		g.Data, g.HasData = line.Data, true
		bk.sendCore(r, g)
	} else {
		// The owner's copy was already on its way out: the requester
		// becomes the sole, exclusive holder.
		entry.Sharers.Remove(owner)
		entry.Sharers.Add(r)
		entry.Owned = true
		g := bk.fab.newMsg(MsgDataE, tbe.block)
		g.Data, g.HasData = line.Data, true
		bk.sendCore(r, g)
	}
	bk.finish(tbe)
}

// fwdGetMDone finishes a three-hop GetM once the owner answered.
//
//stash:hotpath
func (bk *Bank) fwdGetMDone(tbe *dirTBE) {
	line, entry, r := tbe.line, tbe.entry, tbe.reqFrom
	if tbe.gotDirty {
		line.Data = tbe.dirtyData
		line.State = mem.Modified
	}
	entry.Sharers.Clear()
	entry.Sharers.Add(r)
	entry.Owned = true
	if tbe.forwarded {
		bk.finishOnUnblock(tbe)
	} else {
		g := bk.fab.newMsg(MsgDataM, tbe.block)
		g.Data, g.HasData = line.Data, true
		bk.sendCore(r, g)
		bk.finish(tbe)
	}
}

// invOwnerDone finishes a two-hop GetM once the owner acknowledged.
//
//stash:hotpath
func (bk *Bank) invOwnerDone(tbe *dirTBE) {
	line, entry, r := tbe.line, tbe.entry, tbe.reqFrom
	if tbe.gotDirty {
		line.Data = tbe.dirtyData
		line.State = mem.Modified
	}
	entry.Sharers.Clear()
	entry.Sharers.Add(r)
	entry.Owned = true
	g := bk.fab.newMsg(MsgDataM, tbe.block)
	g.Data, g.HasData = line.Data, true
	bk.sendCore(r, g)
	bk.finish(tbe)
}

// invSharersDone finishes a GetM on a shared entry once every sharer acked.
//
//stash:hotpath
func (bk *Bank) invSharersDone(tbe *dirTBE) {
	entry, r := tbe.entry, tbe.reqFrom
	entry.Sharers.Clear()
	entry.Overflowed = false
	entry.Sharers.Add(r)
	entry.Owned = true
	grant := bk.fab.newMsg(MsgDataM, tbe.block)
	if !(tbe.reqHave && tbe.wasSharer) {
		grant.Data, grant.HasData = tbe.line.Data, true
	}
	bk.sendCore(r, grant)
	bk.finish(tbe)
}

// allocEntry obtains a directory entry for tbe.block, recalling or stashing
// a victim as the organization demands, then runs allocDone.
//
//stash:hotpath
func (bk *Bank) allocEntry(tbe *dirTBE) {
	res := bk.dir.Allocate(tbe.block, bk.busyFn)
	switch res.Outcome {
	case core.AllocOK:
		bk.allocDone(tbe, res.Entry)

	case core.AllocStashed:
		// The dropped entry's block becomes hidden: flag its LLC line so a
		// later directory miss knows a private copy may exist.
		line := bk.llc.Probe(res.Stashed.Block)
		if line == nil {
			panic(fmt.Sprintf("coherence: bank %d stashed block %#x that is not LLC-resident", bk.id, uint64(res.Stashed.Block)))
		}
		line.Flags |= flagHidden
		bk.hiddenSet.Inc()
		bk.allocDone(tbe, res.Entry)

	case core.AllocNeedsRecall:
		victim := res.Victim
		vb := victim.Block
		sub := bk.newTBE(vb)
		sub.parent = tbe
		n := bk.sendEntryInvs(victim, vb, ReasonRecall, -1)
		bk.wait(sub, n, contRecall)

	case core.AllocBlocked:
		bk.allocRetries.Inc()
		if bk.fab.retryHook != nil {
			bk.fab.retryHook(ParkedRetry{bank: bk, kind: RetryAlloc, tbe: tbe})
			return
		}
		bk.fab.Engine.AfterArg(bk.fab.Params.RetryDelay, "bank.alloc-retry", bk.allocRetryFn, tbe)
	}
}

// recallDone finishes a directory-entry recall and retries the allocation
// in the same event: the freed slot cannot be stolen before we run again.
//
//stash:hotpath
func (bk *Bank) recallDone(sub *dirTBE) {
	vb := sub.block
	if sub.gotDirty {
		vline := bk.llc.Probe(vb)
		if vline == nil {
			panic(fmt.Sprintf("coherence: bank %d recalled block %#x that is not LLC-resident", bk.id, uint64(vb)))
		}
		vline.Data = sub.dirtyData
		vline.State = mem.Modified
	}
	bk.dir.Remove(vb)
	parent := sub.parent
	bk.finish(sub)
	bk.allocEntry(parent)
}

// ---------------------------------------------------------------------------
// Puts
// ---------------------------------------------------------------------------

// handlePut retires an L1 eviction notification. Races with recalls,
// fetches and LLC evictions make several "stale" shapes legal; each is
// acknowledged and folded in as the rules below describe.
//
//stash:hotpath
func (bk *Bank) handlePut(tbe *dirTBE) {
	bk.puts.Inc()
	b := tbe.block
	r := tbe.reqFrom
	entry := bk.dir.Probe(b)
	line := bk.llc.Probe(b)

	switch tbe.reqType {
	case MsgPutS:
		if entry != nil && entry.Overflowed {
			// Limited-pointer overflow: the sharer set is inexact, so the
			// departure cannot be recorded; the entry stays conservative
			// until a broadcast invalidation rebuilds it.
		} else if entry != nil && entry.Sharers.Has(r) {
			entry.Sharers.Remove(r)
			if entry.Sharers.Empty() {
				bk.dir.Remove(b)
			} else if entry.Sharers.Count() == 1 {
				// A single Shared holder remains; it does not own the
				// block (no E/M grant happened), so Owned stays false.
				entry.Owned = false
			}
		} else if entry == nil && line != nil && line.Flags&flagHidden != 0 {
			// The hidden (singleton-Shared) copy retired itself.
			line.Flags &^= flagHidden
			bk.hiddenCleared.Inc()
		}

	case MsgPutE:
		if entry != nil && entry.Owner() == r {
			bk.dir.Remove(b)
		} else if entry != nil && entry.Overflowed {
			// As for PutS: no precise removal from an overflowed entry.
		} else if entry != nil && entry.Sharers.Has(r) {
			// Downgraded while the PutE was in flight; treat as PutS.
			entry.Sharers.Remove(r)
			if entry.Sharers.Empty() {
				bk.dir.Remove(b)
			}
		} else if entry == nil && line != nil && line.Flags&flagHidden != 0 {
			line.Flags &^= flagHidden
			bk.hiddenCleared.Inc()
		}

	case MsgPutM:
		switch {
		case entry != nil && entry.Owner() == r:
			if line == nil {
				panic(fmt.Sprintf("coherence: bank %d PutM for tracked block %#x with no LLC line", bk.id, uint64(b)))
			}
			line.Data = tbe.reqData
			line.State = mem.Modified
			bk.dir.Remove(b)
		case entry == nil && line != nil && line.Flags&flagHidden != 0:
			line.Data = tbe.reqData
			line.State = mem.Modified
			line.Flags &^= flagHidden
			bk.hiddenCleared.Inc()
		default:
			// Stale: an Inv/Fetch already collected this data, or the LLC
			// line itself was evicted (which recalled us first). Drop it.
		}
	}
	bk.sendCore(r, bk.fab.newMsg(MsgPutAck, b))
}
