package coherence

import (
	"testing"

	"repro/internal/mem"
)

// These tests pin the tentpole property of the pooled protocol: once the
// pools and tables are warm, the steady-state hot paths allocate nothing.
// Each scenario is a closed loop — after one iteration the machine is back
// in its starting state — so AllocsPerRun measures exactly the recurring
// protocol work, not one-time warm-up growth.

// driveAccess issues one access and drains the machine, using
// pre-constructed closures so the measurement loop itself is
// allocation-free.
type driveAccess struct {
	f    *Fabric
	done bool
	fn   func()
}

func newDriveAccess(f *Fabric) *driveAccess {
	d := &driveAccess{f: f}
	d.fn = func() { d.done = true }
	return d
}

func (d *driveAccess) do(t *testing.T, core int, a mem.Access) {
	d.done = false
	d.f.L1s[core].Access(a, d.fn)
	d.f.Engine.Run(0)
	if !d.done {
		t.Fatal("access did not complete")
	}
}

func assertZeroAllocs(t *testing.T, name string, fn func()) {
	t.Helper()
	if avg := testing.AllocsPerRun(100, fn); avg != 0 {
		t.Errorf("%s: %v allocs/op, want 0", name, avg)
	}
}

func TestAllocFreeL1Hit(t *testing.T) {
	f := testFabric(t, 4, fullMapFactory())
	f.Checker.SetEnabled(false)
	d := newDriveAccess(f)
	rd := mem.Access{Addr: mem.AddrOf(3)}
	d.do(t, 0, rd) // warm: install the line
	for i := 0; i < 20; i++ {
		d.do(t, 0, rd)
	}
	assertZeroAllocs(t, "l1-hit", func() { d.do(t, 0, rd) })
}

func TestAllocFreeTwoHopMiss(t *testing.T) {
	// Cores 0 and 1 ping-pong exclusive ownership of one block: every
	// access is a GetM that invalidates the other core (a two-hop miss
	// through the directory), and two accesses return to the start state.
	f := testFabric(t, 4, fullMapFactory())
	f.Checker.SetEnabled(false)
	d := newDriveAccess(f)
	wr := mem.Access{Addr: mem.AddrOf(3), Write: true}
	for i := 0; i < 20; i++ {
		d.do(t, i%2, wr)
	}
	i := 0
	assertZeroAllocs(t, "two-hop-miss", func() {
		d.do(t, i%2, wr)
		i++
	})
}

func TestAllocFreeDiscovery(t *testing.T) {
	// One-entry stash slices with two conflicting blocks homed at bank 0:
	// allocating either block's directory entry silently stash-evicts the
	// other, hiding it. The four-phase store rotation below therefore makes
	// *every* access a discovery broadcast — the stored block is always
	// hidden with a remote exclusive owner — and after four phases the
	// ownership pattern repeats exactly.
	f := testFabric(t, 4, stashFactory(1, 1, 0, false))
	f.Checker.SetEnabled(false)
	d := newDriveAccess(f)
	w0 := mem.Access{Addr: mem.AddrOf(0), Write: true}
	w4 := mem.Access{Addr: mem.AddrOf(4), Write: true}
	phases := []struct {
		core int
		a    mem.Access
	}{
		{2, w0}, {3, w4}, {0, w0}, {1, w4},
	}
	// Warm: establish the rotation (first lap has cold misses; by the
	// third every phase is a discovery).
	for lap := 0; lap < 8; lap++ {
		for _, p := range phases {
			d.do(t, p.core, p.a)
		}
	}
	if f.Banks[0].Directory().Stats().Counter("stash_evictions").Value() == 0 {
		t.Fatal("scenario broken: no stash evictions, so no discovery traffic")
	}
	i := 0
	assertZeroAllocs(t, "discovery", func() {
		p := phases[i%len(phases)]
		d.do(t, p.core, p.a)
		i++
	})
}
