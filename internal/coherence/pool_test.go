package coherence

import (
	"fmt"
	"testing"
)

// Pool invariants, checked under the pool's poison mode so any
// use-after-release or double-release panics at the faulting site during
// the run:
//
//   - Quiescence: after a workload drains, every Msg and every directory
//     TBE has been released back to its pool (inUse == 0). A leak here
//     would grow without bound in long simulations.
//   - Bounded high water: the pools' peak live counts scale with the
//     machine's concurrency limit (cores x MSHRs), not with the length of
//     the run. Each outstanding transaction keeps a small constant number
//     of point-to-point messages in flight, plus at most one discovery or
//     invalidation broadcast of O(cores) probes, so a generous linear
//     bound (10x + headroom for broadcast overlap) separates "bounded by
//     structure" from "grows with workload" by orders of magnitude: the
//     workloads below issue 400 accesses per core, each of several
//     messages, so a leak would blow through the bound immediately.
func checkPools(t *testing.T, f *Fabric, label string) {
	t.Helper()
	cores, mshrs := f.Params.Cores, f.Params.MSHRs
	if mshrs < 1 {
		mshrs = 1
	}
	inUse, high := f.MsgPoolStats()
	if inUse != 0 {
		t.Errorf("%s: %d messages still unreleased after drain", label, inUse)
	}
	if bound := 10*cores*mshrs + 16; high > bound {
		t.Errorf("%s: message pool high water %d exceeds %d (10 x cores x MSHRs + 16)",
			label, high, bound)
	}
	for i, bk := range f.Banks {
		tbeUse, tbeHigh := bk.tbePoolStats()
		if tbeUse != 0 {
			t.Errorf("%s: bank %d has %d TBEs still live after drain", label, i, tbeUse)
		}
		// Per bank: at most every core's every MSHR transaction homed
		// here, each with at most one eviction/recall sub-TBE, plus slack.
		if bound := 2*cores*mshrs + 4; tbeHigh > bound {
			t.Errorf("%s: bank %d TBE high water %d exceeds %d (2 x cores x MSHRs + 4)",
				label, i, tbeHigh, bound)
		}
	}
}

func TestMsgPoolInvariants(t *testing.T) {
	factories := map[string]dirFactory{
		"fullmap": fullMapFactory(),
		"sparse":  sparseFactory(2, 2, 0),
		"stash":   stashFactory(2, 2, 0, false),
		"cuckoo":  cuckooFactory(2, 4),
	}
	for name, mk := range factories {
		for _, cores := range []int{4, 16} {
			for seed := int64(1); seed <= 2; seed++ {
				label := fmt.Sprintf("%s/%dc/seed%d", name, cores, seed)
				t.Run(label, func(t *testing.T) {
					f := testFabric(t, cores, mk)
					f.SetPoolDebug(true)
					srcs := randomSources(cores, 400, 12, 30, 0.3, seed)
					procs, err := f.AttachProcessors(srcs)
					if err != nil {
						t.Fatal(err)
					}
					if err := f.Drive(procs, 50_000_000); err != nil {
						t.Fatal(err)
					}
					checkPools(t, f, label)
				})
			}
		}
	}
}

// TestMsgPoolInvariantsShuffled re-checks the pool invariants under
// permuted same-cycle event ordering: release points must be correct for
// every legal interleaving, not just the engine's accidental FIFO order.
func TestMsgPoolInvariantsShuffled(t *testing.T) {
	for _, mk := range []dirFactory{stashFactory(1, 2, 0, false), sparseFactory(1, 2, 0)} {
		for shuffle := uint64(1); shuffle <= 4; shuffle++ {
			f := testFabric(t, 4, mk, withL1(2, 2), withLLC(2, 2))
			f.Engine.SetShuffleSeed(shuffle)
			f.SetPoolDebug(true)
			srcs := randomSources(4, 300, 8, 6, 0.4, int64(shuffle))
			procs, err := f.AttachProcessors(srcs)
			if err != nil {
				t.Fatal(err)
			}
			if err := f.Drive(procs, 50_000_000); err != nil {
				t.Fatalf("shuffle seed %d: %v", shuffle, err)
			}
			checkPools(t, f, fmt.Sprintf("shuffle%d", shuffle))
		}
	}
}

// TestMsgPoolInvariantsDiscoveryChurn drives the tiny-everything stash
// configuration (maximal stash-eviction/discovery/recall churn) with
// poison mode on, since broadcasts are where message ownership is easiest
// to get wrong.
func TestMsgPoolInvariantsDiscoveryChurn(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		f := testFabric(t, 4, stashFactory(1, 1, 0, false),
			withL1(1, 1), withLLC(1, 2))
		f.SetPoolDebug(true)
		srcs := randomSources(4, 200, 6, 4, 0.4, seed)
		procs, err := f.AttachProcessors(srcs)
		if err != nil {
			t.Fatal(err)
		}
		if err := f.Drive(procs, 50_000_000); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		checkPools(t, f, fmt.Sprintf("churn/seed%d", seed))
	}
}
