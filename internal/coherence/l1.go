package coherence

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/mem"
	"repro/internal/noc"
	"repro/internal/stats"
)

// cacheLine aliases cache.Line for brevity inside this package.
type cacheLine = cache.Line

// flagReserved marks an L1/L2 way claimed by an in-flight fill so victim
// selection skips it. It lives in the line's Flags word (replacing the old
// reserved-line maps); Install and Invalidate clear Flags, so the bit must
// be set after an eviction and cleared explicitly when a fill lands on a
// still-valid line.
const flagReserved uint32 = 1 << 1

// pendingAccess is an access the L1 could not service immediately: either
// coalesced behind an outstanding miss to the same block (an MSHR hit) or
// stalled because every way of its set is reserved.
type pendingAccess struct {
	access mem.Access
	done   func()
}

// l1TBE tracks one outstanding demand miss (one MSHR). TBEs are pooled:
// the waiters slice keeps its capacity across reuses, so steady-state
// coalescing does not allocate.
//
//stash:tileowned
type l1TBE struct {
	block   mem.Block
	write   bool
	upgrade bool       // the core held a Shared copy when it issued GetM
	sawInv  bool       // that copy was invalidated while the upgrade was in flight
	way     *cacheLine // reserved destination L1 way
	l2way   *cacheLine // reserved destination L2 way (nil without an L2)
	done    func()
	access  mem.Access      // the triggering access (local L2 fills complete it)
	issued  uint64          // cycle the miss was issued, for latency stats
	waiters []pendingAccess // accesses coalesced behind this miss
}

// evictBuf keeps a victim's payload alive between Put and PutAck so the L1
// can still answer Inv/Fetch/Discover for a block whose writeback is in
// flight.
type evictBuf struct {
	data  uint64
	dirty bool
}

// L1 is a private per-core data cache controller speaking MESI to the
// directory banks. It supports multiple outstanding misses (one TBE per
// block, bounded by the processor's MSHR count), coalesces same-block
// accesses behind an in-flight miss, and answers directory-initiated
// traffic at any time — including for blocks parked in its eviction
// buffers — which is what keeps the protocol deadlock-free.
//
//stash:tileowned
type L1 struct {
	id  int
	fab *Fabric

	cache   *cache.Cache
	l2      *cache.Cache // optional private L2, inclusive of the L1
	tbes    *blockTable[*l1TBE]
	tbeFree []*l1TBE
	stalled []pendingAccess // accesses whose set had no usable way
	// stalledSpare is the second half of a double buffer: replays drain
	// into it while fresh stalls append to a clean slice, so the retry
	// sweep reuses both backing arrays instead of reallocating.
	stalledSpare []pendingAccess
	evict        *blockTable[evictBuf]

	// invalidatedBy remembers blocks this L1 lost to conflict-induced
	// invalidations, so a later miss on them can be classified as a
	// coverage miss (the metric the stash directory attacks).
	invalidatedBy *blockTable[InvReason]

	// Long-lived callbacks (no per-event closures on the hot path).
	requestFn func(any)             // sends the TBE's demand request
	l2FillFn  func(any)             // completes a local L2-hit fill
	skipFn    func(*cacheLine) bool // victim-selection skip predicate

	set            *stats.Set
	loads          *stats.Counter
	stores         *stats.Counter
	hits           *stats.Counter
	misses         *stats.Counter
	upgrades       *stats.Counter
	coverageMisses *stats.Counter
	invsByReason   [3]*stats.Counter
	spuriousInv    *stats.Counter
	discoverProbes *stats.Counter
	discoverHits   *stats.Counter
	writebacks     *stats.Counter
	coalesced      *stats.Counter
	stalls         *stats.Counter
	l2Hits         *stats.Counter
	l2Misses       *stats.Counter
	missLatency    *stats.Histogram
}

// NewL1 builds the private-cache controller for core id: the L1 tag array
// plus, when l2cfg is non-nil, an inclusive private L2 behind it. The
// directory then tracks the L2's (superset) contents.
func NewL1(id int, fab *Fabric, cfg cache.Config, l2cfg *cache.Config) (*L1, error) {
	c, err := cache.New(cfg)
	if err != nil {
		return nil, err
	}
	var l2 *cache.Cache
	if l2cfg != nil {
		l2, err = cache.New(*l2cfg)
		if err != nil {
			return nil, err
		}
		if l2.Capacity() < c.Capacity() {
			return nil, fmt.Errorf("coherence: core %d L2 (%d lines) smaller than L1 (%d lines); inclusion impossible",
				id, l2.Capacity(), c.Capacity())
		}
	}
	mshrs := fab.Params.MSHRs
	if mshrs < 1 {
		mshrs = 1
	}
	l1 := &L1{
		id:            id,
		fab:           fab,
		cache:         c,
		l2:            l2,
		tbes:          newBlockTable[*l1TBE](2 * (mshrs + 1)),
		evict:         newBlockTable[evictBuf](8),
		invalidatedBy: newBlockTable[InvReason](16),
		set:           stats.NewSet(fmt.Sprintf("l1.%d", id)),
	}
	l1.requestFn = func(arg any) {
		tbe := arg.(*l1TBE)
		t := MsgGetS
		if tbe.write {
			t = MsgGetM
		}
		m := l1.fab.newMsg(t, tbe.block)
		m.From = l1.id
		m.HaveLine = tbe.upgrade
		l1.send(m)
	}
	l1.l2FillFn = func(arg any) { l1.completeLocalFill(arg.(*l1TBE)) }
	l1.skipFn = func(ln *cacheLine) bool {
		return ln.Flags&flagReserved != 0 || (ln.Valid() && l1.tbes.has(ln.Block))
	}
	l1.loads = l1.set.Counter("loads")
	l1.stores = l1.set.Counter("stores")
	l1.hits = l1.set.Counter("hits")
	l1.misses = l1.set.Counter("misses")
	l1.upgrades = l1.set.Counter("upgrades")
	l1.coverageMisses = l1.set.Counter("coverage_misses")
	for r := ReasonDemand; r <= ReasonLLCEvict; r++ {
		l1.invsByReason[r] = l1.set.Counter("invalidations." + r.String())
	}
	l1.spuriousInv = l1.set.Counter("invalidations.spurious")
	l1.discoverProbes = l1.set.Counter("discover_probes")
	l1.discoverHits = l1.set.Counter("discover_hits")
	l1.writebacks = l1.set.Counter("writebacks")
	l1.coalesced = l1.set.Counter("mshr_coalesced")
	l1.stalls = l1.set.Counter("mshr_stalls")
	l1.l2Hits = l1.set.Counter("l2_hits")
	l1.l2Misses = l1.set.Counter("l2_misses")
	l1.missLatency = l1.set.Histogram("miss_latency")
	return l1, nil
}

// Stats returns the L1 metric set.
//
//stash:hotpath
func (l *L1) Stats() *stats.Set { return l.set }

// Cache exposes the L1 tag array (read-only use: audits, examples).
//
//stash:hotpath
func (l *L1) Cache() *cache.Cache { return l.cache }

// L2 exposes the private L2 tag array, or nil when the hierarchy has none.
//
//stash:hotpath
func (l *L1) L2() *cache.Cache { return l.l2 }

//stash:hotpath
func (l *L1) node() noc.NodeID { return noc.NodeID(l.id) }

// newTBE claims a pooled TBE for block b and registers it. The caller must
// hand the TBE to a sink — an engine park (AfterArg) or l.freeTBE — on
// every path.
//
//stash:acquire
//stash:hotpath
func (l *L1) newTBE(b mem.Block) *l1TBE {
	var tbe *l1TBE
	if n := len(l.tbeFree); n > 0 {
		tbe = l.tbeFree[n-1]
		l.tbeFree = l.tbeFree[:n-1]
		w := tbe.waiters[:0]
		*tbe = l1TBE{}
		tbe.waiters = w
	} else {
		tbe = &l1TBE{} //stash:ignore hotpath pool warm-up; amortized away by reuse
	}
	tbe.block = b
	tbe.issued = uint64(l.fab.Engine.Now())
	l.tbes.put(b, tbe)
	return tbe
}

// freeTBE returns a retired TBE to the pool. The caller must already have
// removed it from the table and replayed its waiters.
//
//stash:release
//stash:hotpath
func (l *L1) freeTBE(tbe *l1TBE) {
	tbe.done = nil
	l.tbeFree = append(l.tbeFree, tbe)
}

// Access services one core memory reference and calls done when it
// completes. The processor bounds how many accesses are outstanding (its
// MSHR count); the L1 itself accepts any number, coalescing same-block
// accesses behind the in-flight miss and stalling accesses whose set has
// no usable way until a fill frees one.
//
//stash:hotpath
func (l *L1) Access(a mem.Access, done func()) {
	if a.Write {
		l.stores.Inc()
	} else {
		l.loads.Inc()
	}
	l.lookupAndService(a, done)
}

// lookupAndService runs the tag lookup and either completes, coalesces,
// stalls or starts a miss. Replays (coalesced/stalled accesses re-entering
// after a fill) come through here too, so they are not double-counted as
// loads/stores.
//
//stash:hotpath
func (l *L1) lookupAndService(a mem.Access, done func()) {
	b := a.Block()
	if tbe, ok := l.tbes.get(b); ok {
		// MSHR hit: ride the in-flight miss. (Even a load that could hit a
		// Shared line under an upgrade coalesces, keeping the line's state
		// transitions simple.)
		l.coalesced.Inc()
		tbe.waiters = append(tbe.waiters, pendingAccess{access: a, done: done})
		return
	}

	if ln := l.cache.Lookup(b); ln != nil {
		switch {
		case !a.Write:
			l.hits.Inc()
			l.completeLoad(ln, done)
			return
		case ln.State == mem.Modified:
			l.hits.Inc()
			l.commitStore(ln, done)
			return
		case ln.State == mem.Exclusive:
			// Silent E→M upgrade: invisible to the directory.
			l.hits.Inc()
			ln.State = mem.Modified
			l.commitStore(ln, done)
			return
		default: // Shared: upgrade via GetM
			l.upgrades.Inc()
			l.misses.Inc()
			var l2way *cacheLine
			if l.l2 != nil {
				l2way = l.l2.Probe(b)
				if l2way == nil {
					panic(fmt.Sprintf("coherence: core %d upgrading block %#x missing from L2", l.id, uint64(b)))
				}
			}
			tbe := l.newTBE(b)
			tbe.write, tbe.upgrade = true, true
			tbe.way, tbe.l2way = ln, l2way
			tbe.done = done
			l.fab.Engine.AfterArg(l.fab.Params.L1HitLatency, "l1.request", l.requestFn, tbe)
			return
		}
	}

	// L1 missed. The L1 victim may not be a way reserved by another fill
	// or a line with its own transaction (an in-flight upgrade).
	way := l.cache.Victim(b, l.skipFn)
	if way == nil {
		// Every way of the set is spoken for; retry when a fill lands.
		// (Not counted as a miss yet — the replay will classify it.)
		l.stalls.Inc()
		l.stalled = append(l.stalled, pendingAccess{access: a, done: done})
		return
	}

	// Private L2, when present: an L2 hit is serviced locally.
	var l2way *cacheLine
	if l.l2 != nil {
		if l2ln := l.l2.Lookup(b); l2ln != nil {
			switch {
			case !a.Write, l2ln.State.Owned():
				// Local fill from L2 (a store to an E line upgrades both
				// levels silently). The fill holds a TBE so same-block
				// accesses coalesce instead of starting duplicate fills.
				l.l2Hits.Inc()
				l.hits.Inc() // hierarchy hit: no coherence traffic
				if a.Write {
					l2ln.State = mem.Modified
				}
				if way.Valid() {
					l.foldIntoL2(way)
				}
				way.Flags |= flagReserved
				tbe := l.newTBE(b)
				tbe.write = a.Write
				tbe.way = way
				tbe.done = done
				tbe.access = a
				l.fab.Engine.AfterArg(l.fab.Params.L2HitLatency, "l1.l2fill", l.l2FillFn, tbe)
				return
			default:
				// Shared in L2, store: upgrade through the directory.
				l.l2Hits.Inc()
				l.upgrades.Inc()
				l.misses.Inc()
				if way.Valid() {
					l.foldIntoL2(way)
				}
				way.Flags |= flagReserved
				tbe := l.newTBE(b)
				tbe.write, tbe.upgrade = true, true
				tbe.way, tbe.l2way = way, l2ln
				tbe.done = done
				l.fab.Engine.AfterArg(l.fab.Params.L1HitLatency, "l1.request", l.requestFn, tbe)
				return
			}
		}
		// Full miss: an L2 way is needed too.
		l.l2Misses.Inc()
		l2way = l.l2.Victim(b, l.skipFn)
		if l2way == nil {
			l.stalls.Inc()
			l.stalled = append(l.stalled, pendingAccess{access: a, done: done})
			return
		}
	}

	l.misses.Inc()
	if _, ok := l.invalidatedBy.get(b); ok {
		l.coverageMisses.Inc()
		l.invalidatedBy.del(b)
	}
	if l.l2 != nil {
		if way.Valid() {
			l.foldIntoL2(way)
		}
		if l2way.Valid() {
			l.evictL2Line(l2way)
		}
		l2way.Flags |= flagReserved
	} else if way.Valid() {
		l.evictLine(way)
	}
	way.Flags |= flagReserved
	tbe := l.newTBE(b)
	tbe.write = a.Write
	tbe.way, tbe.l2way = way, l2way
	tbe.done = done
	l.fab.Engine.AfterArg(l.fab.Params.L1HitLatency, "l1.request", l.requestFn, tbe)
}

// completeLocalFill finishes an L2-hit fill: install into the reserved L1
// way unless a snoop raced the fill away (then the access replays as a
// fresh lookup), and replay anything that piled up behind it.
//
//stash:hotpath
func (l *L1) completeLocalFill(tbe *l1TBE) {
	a := tbe.access
	l.tbes.del(tbe.block)
	tbe.way.Flags &^= flagReserved
	cur := l.l2.Probe(tbe.block)
	if cur == nil || (a.Write && cur.State != mem.Modified) {
		l.lookupAndService(a, tbe.done)
	} else {
		l.cache.Install(tbe.way, tbe.block, cur.State, cur.Data)
		if a.Write {
			l.commitStore(tbe.way, tbe.done)
		} else {
			l.completeLoad(tbe.way, tbe.done)
		}
	}
	for _, w := range tbe.waiters {
		l.lookupAndService(w.access, w.done)
	}
	l.replayStalled()
	l.freeTBE(tbe)
}

// replayStalled retries accesses that stalled on fully-reserved sets. The
// drained batch and the fresh stall list double-buffer each other.
//
//stash:hotpath
func (l *L1) replayStalled() {
	if len(l.stalled) == 0 {
		return
	}
	stalled := l.stalled
	l.stalled = l.stalledSpare[:0]
	for _, w := range stalled {
		l.lookupAndService(w.access, w.done)
	}
	l.stalledSpare = stalled[:0]
}

// foldIntoL2 retires an L1 victim into the (inclusive) L2: dirty data and
// the Modified state move down; no coherence traffic results.
//
//stash:hotpath
func (l *L1) foldIntoL2(ln *cacheLine) {
	l2ln := l.l2.Probe(ln.Block)
	if l2ln == nil {
		panic(fmt.Sprintf("coherence: core %d L1 holds block %#x that its L2 does not (inclusion broken)",
			l.id, uint64(ln.Block)))
	}
	if ln.State == mem.Modified {
		l2ln.State = mem.Modified
		l2ln.Data = ln.Data
	}
	l.cache.Evict(ln)
}

// evictL2Line retires an L2 victim out of the hierarchy: any L1 copy is
// removed first (taking its newer data), then the directory is notified as
// for a single-level eviction.
//
//stash:hotpath
func (l *L1) evictL2Line(l2ln *cacheLine) {
	b := l2ln.Block
	data := l2ln.Data
	state := l2ln.State
	if l1ln := l.cache.Probe(b); l1ln != nil {
		if l1ln.State == mem.Modified {
			data = l1ln.Data
			state = mem.Modified
		}
		l.cache.Evict(l1ln)
	}
	switch state {
	case mem.Modified:
		l.writebacks.Inc()
		l.evict.put(b, evictBuf{data: data, dirty: true})
		wb := l.fab.newMsg(MsgPutM, b)
		wb.From = l.id
		wb.Data, wb.HasData, wb.Dirty = data, true, true
		l.send(wb)
	case mem.Exclusive:
		if !l.fab.Params.SilentCleanEvictions {
			l.evict.put(b, evictBuf{data: data})
			wb := l.fab.newMsg(MsgPutE, b)
			wb.From = l.id
			l.send(wb)
		}
	case mem.Shared:
		if !l.fab.Params.SilentCleanEvictions {
			l.evict.put(b, evictBuf{data: data})
			wb := l.fab.newMsg(MsgPutS, b)
			wb.From = l.id
			l.send(wb)
		}
	}
	l.l2.Evict(l2ln)
}

// completeLoad verifies the value against the oracle and schedules the
// core's continuation after the hit latency.
//
//stash:hotpath
func (l *L1) completeLoad(ln *cacheLine, done func()) {
	l.fab.Checker.CheckLoad(l.id, ln.Block, ln.Data)
	l.fab.Engine.After(l.fab.Params.L1HitLatency, "l1.load", done)
}

// commitStore stamps the oracle value into the line (the store commits
// here; the line must be writable) and schedules the continuation.
//
//stash:hotpath
func (l *L1) commitStore(ln *cacheLine, done func()) {
	if ln.State != mem.Modified {
		panic(fmt.Sprintf("coherence: core %d storing to %v line", l.id, ln.State))
	}
	ln.Data = l.fab.Checker.CommitStore(ln.Block)
	l.fab.Engine.After(l.fab.Params.L1HitLatency, "l1.store", done)
}

// evictLine retires a victim: Modified lines always write back; clean lines
// notify the directory unless silent clean evictions are configured.
//
//stash:hotpath
func (l *L1) evictLine(ln *cacheLine) {
	b := ln.Block
	switch ln.State {
	case mem.Modified:
		l.writebacks.Inc()
		l.evict.put(b, evictBuf{data: ln.Data, dirty: true})
		wb := l.fab.newMsg(MsgPutM, b)
		wb.From = l.id
		wb.Data, wb.HasData, wb.Dirty = ln.Data, true, true
		l.send(wb)
	case mem.Exclusive:
		if !l.fab.Params.SilentCleanEvictions {
			l.evict.put(b, evictBuf{data: ln.Data})
			wb := l.fab.newMsg(MsgPutE, b)
			wb.From = l.id
			l.send(wb)
		}
	case mem.Shared:
		if !l.fab.Params.SilentCleanEvictions {
			l.evict.put(b, evictBuf{data: ln.Data})
			wb := l.fab.newMsg(MsgPutS, b)
			wb.From = l.id
			l.send(wb)
		}
	}
	l.cache.Evict(ln)
}

// send routes m to its block's home bank; the mesh takes ownership.
//
//stash:transfer
//stash:hotpath
func (l *L1) send(m *Msg) { l.fab.sendToBank(l.node(), m) }

// deliver handles a message from the network. The L1 is the final receiver
// of everything routed here, so the message returns to the pool when the
// handler is done with it.
//
//stash:hotpath
func (l *L1) deliver(m *Msg) {
	switch m.Type {
	case MsgDataS, MsgDataE, MsgDataM:
		l.onData(m)
	case MsgInv:
		l.onInv(m)
	case MsgFetch:
		l.onFetch(m)
	case MsgDiscover:
		l.onDiscover(m)
	case MsgFwdGetS:
		l.onFwdGetS(m)
	case MsgFwdGetM:
		l.onFwdGetM(m)
	case MsgPutAck:
		l.evict.del(m.Block)
	default:
		panic(fmt.Sprintf("coherence: L1 %d cannot handle %v", l.id, m))
	}
	l.fab.releaseMsg(m)
}

// onFwdGetS (three-hop mode) downgrades an owned copy, sends the data
// straight to the requester, and tells the bank what happened. When the
// copy is gone (and not even in the eviction buffer), the bank serves the
// requester itself.
//
//stash:hotpath
func (l *L1) onFwdGetS(m *Msg) {
	resp := l.fab.newMsg(MsgFetchResp, m.Block)
	resp.From = l.id
	if l1ln, l2ln := l.probeHier(m.Block); l1ln != nil || l2ln != nil {
		grantData := hierData(l1ln, l2ln)
		if data, dirty := hierDirty(l1ln, l2ln); dirty {
			resp.Data, resp.HasData, resp.Dirty = data, true, true
			grantData = data
		}
		grant := l.fab.newMsg(MsgDataS, m.Block)
		grant.From = l.id
		grant.Data, grant.HasData = grantData, true
		downgradeHier(l1ln, l2ln)
		resp.Retained = true
		resp.Forwarded = true
		l.fab.sendToCore(l.node(), m.Requester, grant)
	} else if buf, ok := l.evict.get(m.Block); ok {
		if buf.dirty {
			resp.Data, resp.HasData, resp.Dirty = buf.data, true, true
		}
		resp.Forwarded = true
		grant := l.fab.newMsg(MsgDataS, m.Block)
		grant.From = l.id
		grant.Data, grant.HasData = buf.data, true
		l.fab.sendToCore(l.node(), m.Requester, grant)
	}
	l.send(resp)
}

// onFwdGetM (three-hop mode) invalidates an owned copy and forwards a
// writable grant to the requester.
//
//stash:hotpath
func (l *L1) onFwdGetM(m *Msg) {
	resp := l.fab.newMsg(MsgInvAck, m.Block)
	resp.From = l.id
	if l1ln, l2ln := l.probeHier(m.Block); l1ln != nil || l2ln != nil {
		l.invsByReason[ReasonDemand].Inc()
		grantData := hierData(l1ln, l2ln)
		if data, dirty := hierDirty(l1ln, l2ln); dirty {
			resp.Data, resp.HasData, resp.Dirty = data, true, true
			grantData = data
		}
		resp.Forwarded = true
		grant := l.fab.newMsg(MsgDataM, m.Block)
		grant.From = l.id
		grant.Data, grant.HasData = grantData, true
		l.fab.sendToCore(l.node(), m.Requester, grant)
		l.invalidateHier(l1ln, l2ln)
		l.markUpgradeInvalidated(m.Block)
	} else if buf, ok := l.evict.get(m.Block); ok {
		if buf.dirty {
			resp.Data, resp.HasData, resp.Dirty = buf.data, true, true
		}
		resp.Forwarded = true
		grant := l.fab.newMsg(MsgDataM, m.Block)
		grant.From = l.id
		grant.Data, grant.HasData = buf.data, true
		l.fab.sendToCore(l.node(), m.Requester, grant)
	}
	l.send(resp)
}

// onData completes an outstanding miss, then replays any accesses that
// coalesced behind it or stalled on a full set.
//
//stash:hotpath
func (l *L1) onData(m *Msg) {
	tbe, ok := l.tbes.get(m.Block)
	if !ok {
		panic(fmt.Sprintf("coherence: core %d got %v with no matching transaction", l.id, m))
	}
	l.tbes.del(m.Block)
	tbe.way.Flags &^= flagReserved

	var st mem.State
	switch m.Type {
	case MsgDataS:
		st = mem.Shared
	case MsgDataE:
		st = mem.Exclusive
	case MsgDataM:
		st = mem.Modified
	}

	// Fill the L2 level first (the directory tracks it).
	if l.l2 != nil {
		l2ln := tbe.l2way
		l2ln.Flags &^= flagReserved
		st2 := mem.Shared
		switch m.Type {
		case MsgDataE:
			st2 = mem.Exclusive
		case MsgDataM:
			st2 = mem.Modified
		}
		if l2ln.Valid() {
			if l2ln.Block != m.Block {
				panic(fmt.Sprintf("coherence: core %d reserved L2 way is occupied by %#x", l.id, uint64(l2ln.Block)))
			}
			l2ln.State = st2
			if m.HasData {
				l2ln.Data = m.Data
			}
			l.l2.Touch(l2ln)
		} else {
			data := m.Data
			if !m.HasData {
				// In-place upgrade whose L2 line was since evicted... cannot
				// happen: upgrades pin the block via the TBE, and L2 victim
				// selection skips blocks with transactions.
				panic(fmt.Sprintf("coherence: core %d L2 upgrade target vanished for %#x", l.id, uint64(m.Block)))
			}
			l.l2.Install(l2ln, m.Block, st2, data)
		}
	}

	var ln *cacheLine
	if tbe.upgrade && !tbe.sawInv && !m.HasData {
		// In-place upgrade: the Shared copy survived, so its data is
		// current; the grant carries permission only.
		ln = tbe.way
		switch {
		case ln.Valid() && ln.Block == m.Block:
			ln.State = st
			l.cache.Touch(ln)
		case l.l2 != nil && !ln.Valid():
			// The Shared copy lived only in the L2; fill the L1 from it.
			l.cache.Install(ln, m.Block, st, tbe.l2way.Data)
		default:
			panic(fmt.Sprintf("coherence: core %d upgrade target vanished", l.id))
		}
	} else {
		if !m.HasData {
			panic(fmt.Sprintf("coherence: core %d got %v without data for a fill", l.id, m))
		}
		ln = tbe.way
		if ln.Valid() {
			// Only an upgrade whose Shared copy survived can find its way
			// occupied here (e.g. the entry was stashed mid-flight and the
			// bank granted full data): overwrite in place.
			if !tbe.upgrade || ln.Block != m.Block {
				panic(fmt.Sprintf("coherence: core %d reserved way is occupied by %#x", l.id, uint64(ln.Block)))
			}
			ln.State = st
			ln.Data = m.Data
			l.cache.Touch(ln)
		} else {
			l.cache.Install(ln, m.Block, st, m.Data)
		}
	}

	if m.From >= 0 {
		// The grant was forwarded by the previous owner: tell the home
		// bank it landed so it may open the block's next transaction.
		ub := l.fab.newMsg(MsgUnblock, m.Block)
		ub.From = l.id
		l.send(ub)
	}

	l.missLatency.Observe(int64(uint64(l.fab.Engine.Now()) - tbe.issued))
	if tbe.write {
		if ln.State != mem.Modified {
			panic(fmt.Sprintf("coherence: core %d write granted %v", l.id, ln.State))
		}
		l.commitStore(ln, tbe.done)
	} else {
		l.completeLoad(ln, tbe.done)
	}

	// Replay coalesced accesses: the first may start a new transaction for
	// this block (e.g. a store behind a Shared grant); the rest re-coalesce
	// behind it.
	for _, w := range tbe.waiters {
		l.lookupAndService(w.access, w.done)
	}
	// Retry accesses that stalled on fully-reserved sets; the fill may have
	// freed a way (possibly in another set — retrying all is harmless).
	l.replayStalled()
	l.freeTBE(tbe)
}

// probeHier returns the hierarchy's copy of b: the L1 line and (when an L2
// exists) the L2 line.
//
//stash:hotpath
func (l *L1) probeHier(b mem.Block) (l1ln, l2ln *cacheLine) {
	l1ln = l.cache.Probe(b)
	if l.l2 != nil {
		l2ln = l.l2.Probe(b)
	}
	return l1ln, l2ln
}

// hierDirty extracts the modified payload of a hierarchy copy, if any; the
// L1's copy is the freshest.
//
//stash:hotpath
func hierDirty(l1ln, l2ln *cacheLine) (data uint64, dirty bool) {
	if l1ln != nil && l1ln.State == mem.Modified {
		return l1ln.Data, true
	}
	if l2ln != nil && l2ln.State == mem.Modified {
		return l2ln.Data, true
	}
	return 0, false
}

// hierData returns the hierarchy's current payload (L1 first).
//
//stash:hotpath
func hierData(l1ln, l2ln *cacheLine) uint64 {
	if l1ln != nil {
		return l1ln.Data
	}
	return l2ln.Data
}

// invalidateHier removes the copy from both levels.
//
//stash:hotpath
func (l *L1) invalidateHier(l1ln, l2ln *cacheLine) {
	if l1ln != nil {
		l.cache.Evict(l1ln)
	}
	if l2ln != nil {
		l.l2.Evict(l2ln)
	}
}

// downgradeHier moves both levels to Shared. A Modified L1 copy's data is
// synced into the L2 first — otherwise the L2 would keep serving its stale
// payload after the (now Shared) L1 copy folds away.
//
//stash:hotpath
func downgradeHier(l1ln, l2ln *cacheLine) {
	if l1ln != nil && l1ln.State == mem.Modified && l2ln != nil {
		l2ln.Data = l1ln.Data
	}
	if l1ln != nil {
		l1ln.State = mem.Shared
	}
	if l2ln != nil {
		l2ln.State = mem.Shared
	}
}

// markUpgradeInvalidated flags an in-flight upgrade whose copy a snoop just
// killed, keeping its fill targets reserved. Because invalidation clears
// the line's Flags word, callers invalidate first and mark afterwards.
//
//stash:hotpath
func (l *L1) markUpgradeInvalidated(b mem.Block) {
	if tbe, ok := l.tbes.get(b); ok && tbe.upgrade {
		tbe.sawInv = true
		tbe.way.Flags |= flagReserved
		if tbe.l2way != nil {
			tbe.l2way.Flags |= flagReserved
		}
	}
}

// onInv invalidates a copy (or records that there is nothing to
// invalidate) and always acknowledges immediately.
//
//stash:hotpath
func (l *L1) onInv(m *Msg) {
	ack := l.fab.newMsg(MsgInvAck, m.Block)
	ack.From = l.id
	l1ln, l2ln := l.probeHier(m.Block)
	if l1ln != nil || l2ln != nil {
		l.invsByReason[m.Reason].Inc()
		if m.Reason != ReasonDemand {
			l.invalidatedBy.put(m.Block, m.Reason)
		}
		if data, dirty := hierDirty(l1ln, l2ln); dirty {
			ack.Data, ack.HasData, ack.Dirty = data, true, true
		}
		l.invalidateHier(l1ln, l2ln)
		l.markUpgradeInvalidated(m.Block)
	} else if buf, ok := l.evict.get(m.Block); ok {
		// The line is on its way out; answer from the eviction buffer.
		l.invsByReason[m.Reason].Inc()
		if buf.dirty {
			ack.Data, ack.HasData, ack.Dirty = buf.data, true, true
		}
	} else {
		l.spuriousInv.Inc()
	}
	l.send(ack)
}

// onFetch downgrades an owned copy to Shared and returns its data (when
// dirty). Retained=false tells the bank the copy is already gone.
//
//stash:hotpath
func (l *L1) onFetch(m *Msg) {
	resp := l.fab.newMsg(MsgFetchResp, m.Block)
	resp.From = l.id
	l1ln, l2ln := l.probeHier(m.Block)
	if l1ln != nil || l2ln != nil {
		if data, dirty := hierDirty(l1ln, l2ln); dirty {
			resp.Data, resp.HasData, resp.Dirty = data, true, true
		}
		downgradeHier(l1ln, l2ln)
		resp.Retained = true
	} else if buf, ok := l.evict.get(m.Block); ok {
		if buf.dirty {
			resp.Data, resp.HasData, resp.Dirty = buf.data, true, true
		}
	}
	l.send(resp)
}

// onDiscover answers a stash discovery probe, applying the requested
// action (downgrade or invalidate) to a found copy.
//
//stash:hotpath
func (l *L1) onDiscover(m *Msg) {
	l.discoverProbes.Inc()
	resp := l.fab.newMsg(MsgDiscoverResp, m.Block)
	resp.From = l.id
	if l1ln, l2ln := l.probeHier(m.Block); l1ln != nil || l2ln != nil {
		l.discoverHits.Inc()
		resp.Found = true
		if data, dirty := hierDirty(l1ln, l2ln); dirty {
			resp.Data, resp.HasData, resp.Dirty = data, true, true
		}
		switch m.Kind {
		case DiscoverDowngrade:
			downgradeHier(l1ln, l2ln)
			resp.Retained = true
		case DiscoverInvalidate:
			if m.Reason != ReasonDemand {
				l.invalidatedBy.put(m.Block, m.Reason)
			}
			l.invalidateHier(l1ln, l2ln)
			l.markUpgradeInvalidated(m.Block)
		}
	} else if buf, ok := l.evict.get(m.Block); ok {
		// A hidden block caught mid-writeback: report its data but no
		// retained copy.
		l.discoverHits.Inc()
		resp.Found = true
		if buf.dirty {
			resp.Data, resp.HasData, resp.Dirty = buf.data, true, true
		}
	}
	l.send(resp)
}
