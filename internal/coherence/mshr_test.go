package coherence

import (
	"testing"

	"repro/internal/mem"
)

func withMSHRs(n int) fabricOpt {
	return func(c *BuildConfig) { c.Params.MSHRs = n }
}

// driveStream runs one core's access list through processors and returns
// total cycles.
func driveStream(t *testing.T, f *Fabric, lists ...[]mem.Access) uint64 {
	t.Helper()
	srcs := make([]AccessSource, f.Params.Cores)
	for i := range srcs {
		if i < len(lists) {
			srcs[i] = &SliceSource{Accesses: lists[i]}
		} else {
			srcs[i] = &SliceSource{}
		}
	}
	procs, err := f.AttachProcessors(srcs)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Drive(procs, 10_000_000); err != nil {
		t.Fatal(err)
	}
	return uint64(f.Engine.Now())
}

func TestMLPOverlapsIndependentMisses(t *testing.T) {
	// 8 misses to 8 different banks: a 1-MSHR core serializes ~8 memory
	// latencies; an 8-MSHR core overlaps them.
	accs := make([]mem.Access, 8)
	for i := range accs {
		accs[i] = mem.Access{Addr: mem.AddrOf(mem.Block(i))}
	}
	run := func(mshrs int) uint64 {
		f := testFabric(t, 4, fullMapFactory(), withMSHRs(mshrs))
		return driveStream(t, f, accs)
	}
	serial, overlapped := run(1), run(8)
	if overlapped*2 > serial {
		t.Fatalf("8 MSHRs (%d cycles) should be far faster than 1 (%d cycles)", overlapped, serial)
	}
}

func TestMSHRCoalescingSameBlock(t *testing.T) {
	// Multiple accesses to one missing block: only one GetS may reach the
	// bank; the rest coalesce.
	accs := []mem.Access{
		{Addr: mem.AddrOf(5)},
		{Addr: mem.AddrOf(5)},
		{Addr: mem.AddrOf(5)},
		{Addr: mem.AddrOf(5)},
	}
	f := testFabric(t, 4, fullMapFactory(), withMSHRs(4))
	driveStream(t, f, accs)
	var reqs int64
	for _, bk := range f.Banks {
		reqs += bk.getS.Value() + bk.getM.Value()
	}
	if reqs != 1 {
		t.Fatalf("bank saw %d requests, want 1 (coalesced)", reqs)
	}
	if f.L1s[0].coalesced.Value() == 0 {
		t.Fatal("no coalescing recorded")
	}
}

func TestMSHRCoalescedStoreUpgradesAfterSharedGrant(t *testing.T) {
	// A store coalesced behind a load to a block another core shares: the
	// load grant is Shared, so the replayed store must upgrade.
	f := testFabric(t, 4, fullMapFactory(), withMSHRs(4))
	load(t, f, 1, 5) // core 1 shares the block -> core 0 gets DataS later
	accs := []mem.Access{
		{Addr: mem.AddrOf(5)},              // load (miss)
		{Addr: mem.AddrOf(5), Write: true}, // store coalesces, then upgrades
	}
	driveStream(t, f, accs)
	if st := l1State(f, 0, 5); st != mem.Modified {
		t.Fatalf("core 0 state = %v, want M", st)
	}
	if st := l1State(f, 1, 5); st != mem.Invalid {
		t.Fatalf("core 1 state = %v, want I (invalidated by replayed store)", st)
	}
}

func TestMSHRSetConflictStalls(t *testing.T) {
	// A 1-set 2-way L1 with 4 MSHRs: issuing 4 misses to 4 blocks of the
	// same set must stall the extra ones rather than corrupt the set, and
	// still complete correctly.
	f := testFabric(t, 4, fullMapFactory(), withMSHRs(4), withL1(1, 2))
	accs := []mem.Access{
		{Addr: mem.AddrOf(0)},
		{Addr: mem.AddrOf(1)},
		{Addr: mem.AddrOf(2)},
		{Addr: mem.AddrOf(3)},
	}
	driveStream(t, f, accs)
	if f.L1s[0].stalls.Value() == 0 {
		t.Fatal("no MSHR set-conflict stalls recorded")
	}
}

func TestMLPRandomConcurrentAllOrganizations(t *testing.T) {
	for _, mk := range []dirFactory{
		fullMapFactory(),
		sparseFactory(1, 2, 0),
		stashFactory(1, 2, 0, false),
	} {
		for _, mshrs := range []int{2, 4, 8} {
			for seed := int64(1); seed <= 2; seed++ {
				f := testFabric(t, 4, mk, withMSHRs(mshrs), withL1(2, 2))
				srcs := randomSources(4, 300, 8, 8, 0.4, seed)
				procs, _ := f.AttachProcessors(srcs)
				if err := f.Drive(procs, 50_000_000); err != nil {
					t.Fatalf("mshrs=%d seed=%d: %v", mshrs, seed, err)
				}
			}
		}
	}
}

func TestMLPWithThreeHopAndFuzz(t *testing.T) {
	for shuffle := uint64(1); shuffle <= 3; shuffle++ {
		f := testFabric(t, 4, stashFactory(1, 2, 0, false),
			withMSHRs(4), withThreeHop(), withL1(2, 2))
		f.Engine.SetShuffleSeed(shuffle)
		srcs := randomSources(4, 300, 8, 6, 0.4, int64(shuffle))
		procs, _ := f.AttachProcessors(srcs)
		if err := f.Drive(procs, 50_000_000); err != nil {
			t.Fatalf("shuffle %d: %v", shuffle, err)
		}
	}
}

func TestMLPSixteenCoresStash(t *testing.T) {
	f := testFabric(t, 16, stashFactory(2, 2, 0, false), withMSHRs(4))
	srcs := randomSources(16, 300, 12, 16, 0.3, 5)
	procs, _ := f.AttachProcessors(srcs)
	if err := f.Drive(procs, 100_000_000); err != nil {
		t.Fatal(err)
	}
}
