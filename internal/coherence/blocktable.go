package coherence

import "repro/internal/mem"

// blockTable is a small open-addressed hash table keyed by mem.Block. The
// controllers use it in place of Go maps for their per-block books (TBEs,
// eviction buffers, invalidation reasons): linear probing over flat slices
// keeps lookups branch-cheap and allocation-free, and once the table has
// grown to cover the steady-state working set it never re-hashes again.
//
// Deletion uses backward-shift compaction (no tombstones), so the load
// factor stays honest no matter how much churn the protocol produces.
//
//stash:tileowned
type blockTable[V any] struct {
	keys  []mem.Block
	vals  []V
	used  []bool
	n     int
	shift uint // 64 - log2(len(keys)); fibonacci-hash bucket shift
}

// newBlockTable returns a table pre-sized so that `hint` live entries fit
// below the grow threshold (3/4 load).
func newBlockTable[V any](hint int) *blockTable[V] {
	t := &blockTable[V]{}
	size := 8
	for size*3 < hint*4 {
		size *= 2
	}
	t.alloc(size)
	return t
}

func (t *blockTable[V]) alloc(size int) {
	t.keys = make([]mem.Block, size)
	t.vals = make([]V, size)
	t.used = make([]bool, size)
	t.shift = 64
	for s := size; s > 1; s >>= 1 {
		t.shift--
	}
}

// home returns the preferred slot for block b.
//
//stash:hotpath
func (t *blockTable[V]) home(b mem.Block) int {
	return int((uint64(b) * 0x9E3779B97F4A7C15) >> t.shift)
}

// len returns the number of live entries.
//
//stash:hotpath
func (t *blockTable[V]) len() int { return t.n }

// get returns the value stored for b.
//
//stash:hotpath
func (t *blockTable[V]) get(b mem.Block) (V, bool) {
	mask := len(t.keys) - 1
	for i := t.home(b); t.used[i]; i = (i + 1) & mask {
		if t.keys[i] == b {
			return t.vals[i], true
		}
	}
	var zero V
	return zero, false
}

// has reports whether b is present.
//
//stash:hotpath
func (t *blockTable[V]) has(b mem.Block) bool {
	mask := len(t.keys) - 1
	for i := t.home(b); t.used[i]; i = (i + 1) & mask {
		if t.keys[i] == b {
			return true
		}
	}
	return false
}

// put stores v for b, inserting or overwriting.
//
//stash:hotpath
func (t *blockTable[V]) put(b mem.Block, v V) {
	if (t.n+1)*4 > len(t.keys)*3 {
		t.grow()
	}
	mask := len(t.keys) - 1
	i := t.home(b)
	for t.used[i] {
		if t.keys[i] == b {
			t.vals[i] = v
			return
		}
		i = (i + 1) & mask
	}
	t.keys[i] = b
	t.vals[i] = v
	t.used[i] = true
	t.n++
}

// del removes b's entry, if present, compacting the probe chain so later
// lookups stay correct without tombstones.
//
//stash:hotpath
func (t *blockTable[V]) del(b mem.Block) {
	mask := len(t.keys) - 1
	i := t.home(b)
	for {
		if !t.used[i] {
			return
		}
		if t.keys[i] == b {
			break
		}
		i = (i + 1) & mask
	}
	// Backward-shift: pull displaced entries into the hole while their home
	// slot lies at or before it (cyclically).
	j := i
	for {
		j = (j + 1) & mask
		if !t.used[j] {
			break
		}
		h := t.home(t.keys[j])
		if (j-h)&mask >= (j-i)&mask {
			t.keys[i] = t.keys[j]
			t.vals[i] = t.vals[j]
			i = j
		}
	}
	var zero V
	t.keys[i] = 0
	t.vals[i] = zero
	t.used[i] = false
	t.n--
}

// grow doubles the table and re-inserts every entry.
func (t *blockTable[V]) grow() {
	keys, vals, used := t.keys, t.vals, t.used
	t.alloc(2 * len(keys))
	t.n = 0
	for i, u := range used {
		if u {
			t.put(keys[i], vals[i])
		}
	}
}

// forEach visits every live entry in slot order (deterministic). The table
// must not be mutated during iteration.
//
//stash:hotpath
func (t *blockTable[V]) forEach(fn func(mem.Block, V)) {
	for i, u := range t.used {
		if u {
			fn(t.keys[i], t.vals[i])
		}
	}
}
