package coherence

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/stats"
)

// AccessSource feeds a processor its memory reference stream. Generators
// live in internal/trace; tests use slice-backed sources.
type AccessSource interface {
	// Next returns the next access, or ok=false when the stream ends.
	Next() (a mem.Access, ok bool)
}

// SliceSource is an AccessSource over a fixed slice.
//
//stash:tileowned
type SliceSource struct {
	Accesses []mem.Access
	pos      int
}

// Next implements AccessSource.
//
//stash:hotpath
func (s *SliceSource) Next() (mem.Access, bool) {
	if s.pos >= len(s.Accesses) {
		return mem.Access{}, false
	}
	a := s.Accesses[s.pos]
	s.pos++
	return a, true
}

// Processor is the in-order core model. With Params.MSHRs <= 1 it is the
// blocking core of the base configuration: one access at a time, a think
// cycle between accesses. With more MSHRs it issues up to that many
// accesses concurrently (one per think interval), modeling stall-on-use
// memory-level parallelism.
//
//stash:tileowned
type Processor struct {
	id          int
	fab         *Fabric
	l1          *L1
	src         AccessSource
	mshrs       int
	outstanding int
	exhausted   bool
	issuing     bool // an issue event is already scheduled
	finished    bool

	// issueFn and doneFn are bound once at construction: every issue event
	// and access-completion callback reuses them, so the core's issue loop
	// allocates nothing per access.
	issueFn func()
	doneFn  func()

	set       *stats.Set
	completed *stats.Counter
	doneAt    uint64
}

// newProcessor wires core id to its L1 and source.
func newProcessor(id int, fab *Fabric, l1 *L1, src AccessSource) *Processor {
	mshrs := fab.Params.MSHRs
	if mshrs < 1 {
		mshrs = 1
	}
	p := &Processor{
		id: id, fab: fab, l1: l1, src: src, mshrs: mshrs,
		set: stats.NewSet(fmt.Sprintf("core.%d", id)),
	}
	p.completed = p.set.Counter("accesses_completed")
	p.issueFn = p.issue
	p.doneFn = func() {
		p.outstanding--
		p.completed.Inc()
		p.maybeFinish()
		p.pump()
	}
	return p
}

// Start schedules the processor's first issue.
func (p *Processor) Start() {
	p.fab.Engine.After(0, "core.start", p.pump)
}

// Finished reports whether the access stream has drained and every
// outstanding access completed.
func (p *Processor) Finished() bool { return p.finished }

// FinishCycle returns the cycle the last access completed (valid once
// Finished).
func (p *Processor) FinishCycle() uint64 { return p.doneAt }

// Stats returns the processor metric set.
func (p *Processor) Stats() *stats.Set { return p.set }

// L1 returns the processor's cache controller.
func (p *Processor) L1() *L1 { return p.l1 }

// Source returns the access source feeding this processor. The system
// layer uses it to close file-backed sources and surface deferred read
// errors after a run.
func (p *Processor) Source() AccessSource { return p.src }

// pump issues accesses while MSHRs are free, pacing issues one think-time
// apart.
//
//stash:hotpath
func (p *Processor) pump() {
	if p.issuing || p.exhausted || p.outstanding >= p.mshrs {
		return
	}
	p.issuing = true
	p.fab.Engine.After(p.fab.Params.ThinkTime, "core.issue", p.issueFn)
}

// issue is the core.issue event body.
//
//stash:hotpath
func (p *Processor) issue() {
	p.issuing = false
	if p.exhausted || p.outstanding >= p.mshrs {
		return
	}
	a, ok := p.src.Next()
	if !ok {
		p.exhausted = true
		p.maybeFinish()
		return
	}
	p.outstanding++
	p.l1.Access(a, p.doneFn)
	p.pump()
}

//stash:hotpath
func (p *Processor) maybeFinish() {
	if p.exhausted && p.outstanding == 0 && !p.finished {
		p.finished = true
		p.doneAt = uint64(p.fab.Engine.Now())
	}
}
