package coherence

import (
	"math/rand"
	"testing"

	"repro/internal/mem"
)

// TestBlockTableAgainstMap drives randomized insert/overwrite/delete/lookup
// traffic through blockTable and a reference map and demands they agree
// after every operation batch. Small table + heavy churn exercises probe
// chains, backward-shift deletion and growth.
func TestBlockTableAgainstMap(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tab := newBlockTable[int](4)
		ref := make(map[mem.Block]int)
		// Keys cluster into few home slots to force long probe chains.
		key := func() mem.Block { return mem.Block(rng.Intn(64) * 8) }
		for op := 0; op < 20000; op++ {
			b := key()
			switch rng.Intn(3) {
			case 0:
				v := rng.Int()
				tab.put(b, v)
				ref[b] = v
			case 1:
				tab.del(b)
				delete(ref, b)
			case 2:
				got, ok := tab.get(b)
				want, wok := ref[b]
				if ok != wok || (ok && got != want) {
					t.Fatalf("seed %d op %d: get(%#x) = (%d,%v), want (%d,%v)", seed, op, uint64(b), got, ok, want, wok)
				}
			}
			if tab.len() != len(ref) {
				t.Fatalf("seed %d op %d: len %d, want %d", seed, op, tab.len(), len(ref))
			}
		}
		// Full sweep: every reference entry must be visible, and forEach
		// must visit exactly the live set.
		seen := make(map[mem.Block]int)
		tab.forEach(func(b mem.Block, v int) { seen[b] = v })
		if len(seen) != len(ref) {
			t.Fatalf("seed %d: forEach visited %d entries, want %d", seed, len(seen), len(ref))
		}
		for b, want := range ref {
			if got, ok := seen[b]; !ok || got != want {
				t.Fatalf("seed %d: forEach missing %#x", seed, uint64(b))
			}
			if !tab.has(b) {
				t.Fatalf("seed %d: has(%#x) = false for live key", seed, uint64(b))
			}
		}
	}
}

// TestBlockTableZeroKey checks that block 0 (a legal address) round-trips:
// presence is tracked by the used bits, not by a sentinel key.
func TestBlockTableZeroKey(t *testing.T) {
	tab := newBlockTable[string](2)
	if _, ok := tab.get(0); ok {
		t.Fatal("empty table claims to hold block 0")
	}
	tab.put(0, "zero")
	if v, ok := tab.get(0); !ok || v != "zero" {
		t.Fatalf("get(0) = (%q,%v), want (zero,true)", v, ok)
	}
	tab.del(0)
	if _, ok := tab.get(0); ok {
		t.Fatal("deleted block 0 still present")
	}
}
