package coherence

import (
	"testing"

	"repro/internal/mem"
)

func withPointerLimit(p int) fabricOpt {
	return func(c *BuildConfig) { c.Params.PointerLimit = p }
}

func TestPointerLimitOverflowBroadcastsOnWrite(t *testing.T) {
	// Dir_1-B: two readers overflow the single pointer; a writer must then
	// invalidate by broadcast and still end with correct data everywhere.
	f := testFabric(t, 4, fullMapFactory(), withPointerLimit(1))
	load(t, f, 0, 5)
	load(t, f, 1, 5) // overflows the 1-pointer entry
	entry := f.Banks[f.HomeBank(5)].Directory().Probe(5)
	if entry == nil || !entry.Overflowed {
		t.Fatalf("entry did not overflow: %v", entry)
	}
	store(t, f, 2, 5) // broadcast invalidation
	if f.Banks[f.HomeBank(5)].broadcastInvs.Value() == 0 {
		t.Fatal("no broadcast invalidation recorded")
	}
	for _, c := range []int{0, 1} {
		if st := l1State(f, c, 5); st != mem.Invalid {
			t.Fatalf("core %d state = %v, want I after broadcast", c, st)
		}
	}
	// The entry is precise again after the broadcast rebuild.
	entry = f.Banks[f.HomeBank(5)].Directory().Probe(5)
	if entry == nil || entry.Overflowed || entry.Owner() != 2 {
		t.Fatalf("entry not rebuilt precisely: %v", entry)
	}
	load(t, f, 3, 5) // oracle verifies core 2's value
	finishAndAudit(t, f)
}

func TestPointerLimitExactUnderLimit(t *testing.T) {
	// Two pointers, two sharers: no overflow, no broadcast.
	f := testFabric(t, 4, fullMapFactory(), withPointerLimit(2))
	load(t, f, 0, 5)
	load(t, f, 1, 5)
	entry := f.Banks[f.HomeBank(5)].Directory().Probe(5)
	if entry == nil || entry.Overflowed {
		t.Fatalf("entry overflowed below the limit: %v", entry)
	}
	store(t, f, 2, 5)
	if f.Banks[f.HomeBank(5)].broadcastInvs.Value() != 0 {
		t.Fatal("broadcast used although the entry was precise")
	}
	finishAndAudit(t, f)
}

func TestPointerLimitRecallBroadcasts(t *testing.T) {
	// An overflowed entry selected as a conflict victim must be recalled by
	// broadcast.
	f := testFabric(t, 4, sparseFactory(1, 1, 0), withPointerLimit(1))
	load(t, f, 0, 0)
	load(t, f, 1, 0) // overflow
	load(t, f, 2, 4) // same bank, 1-entry dir: recall of overflowed entry
	bk := f.Banks[0]
	if bk.broadcastInvs.Value() == 0 {
		t.Fatal("recall of overflowed entry did not broadcast")
	}
	for _, c := range []int{0, 1} {
		if st := l1State(f, c, 0); st != mem.Invalid {
			t.Fatalf("core %d still holds recalled block (state %v)", c, st)
		}
	}
	finishAndAudit(t, f)
}

func TestPointerLimitPutOnOverflowedEntryIgnored(t *testing.T) {
	f := testFabric(t, 4, fullMapFactory(), withPointerLimit(1), withL1(1, 1))
	load(t, f, 0, 0)
	load(t, f, 1, 0) // overflow (2 sharers, 1 pointer)
	load(t, f, 0, 1) // core 0 evicts block 0 -> PutS; entry must stay overflowed
	entry := f.Banks[f.HomeBank(0)].Directory().Probe(0)
	if entry == nil || !entry.Overflowed {
		t.Fatalf("overflowed entry mutated by PutS: %v", entry)
	}
	// Correctness maintained: a writer still broadcasts and gets everything.
	store(t, f, 2, 0)
	load(t, f, 3, 0)
	finishAndAudit(t, f)
}

func TestPointerLimitStashInteraction(t *testing.T) {
	// Overflowed entries are not private, so the stash directory must not
	// stash them: with only an overflowed victim available it falls back to
	// a (broadcast) recall.
	f := testFabric(t, 4, stashFactory(1, 1, 0, false), withPointerLimit(1))
	load(t, f, 0, 0)
	load(t, f, 1, 0) // overflowed entry in bank 0's only slot
	load(t, f, 2, 4) // conflict: must recall, not stash
	bk := f.Banks[0]
	if v := bk.Directory().Stats().Counter("stash_evictions").Value(); v != 0 {
		t.Fatalf("stash directory stashed an overflowed entry (%d)", v)
	}
	if bk.broadcastInvs.Value() == 0 {
		t.Fatal("expected a broadcast recall")
	}
	finishAndAudit(t, f)
}

func TestPointerLimitRandomConcurrent(t *testing.T) {
	for _, limit := range []int{1, 2, 4} {
		for seed := int64(1); seed <= 3; seed++ {
			runRandom(t, stashFactory(2, 2, 0, false), 4, seed, withPointerLimit(limit))
			runRandom(t, sparseFactory(2, 2, 0), 4, seed, withPointerLimit(limit))
		}
	}
	// Combined with MLP and fuzzed ordering.
	f := testFabric(t, 4, stashFactory(1, 2, 0, false),
		withPointerLimit(1), withMSHRs(4), withL1(2, 2))
	f.Engine.SetShuffleSeed(9)
	srcs := randomSources(4, 400, 8, 6, 0.4, 9)
	procs, _ := f.AttachProcessors(srcs)
	if err := f.Drive(procs, 50_000_000); err != nil {
		t.Fatal(err)
	}
}
