package coherence

import (
	"errors"
	"fmt"

	"repro/internal/noc"
	"repro/internal/psim"
	"repro/internal/sim"
)

// This file wires the coherence fabric onto the parallel engine
// (internal/psim). The partitioning unit is the NoC tile: tile i's L1,
// bank and processor all run on tile i's private event queue, and each
// tile gets its own *view* of the fabric — a Fabric value whose shared
// structure (mesh, controller slices, parameters) aliases the root's but
// whose per-tile machinery (engine, message pool, memory counters, store
// stamper, outgoing mailbox) is private. The controllers themselves are
// untouched: at runtime they reach everything through their own fabric
// pointer, so handing them a view at construction is the entire
// integration.
//
// Cross-tile message ownership (the pooled-Msg handoff rule): a *Msg is
// acquired from the sending tile's pool, parked in that tile's mailbox
// (ownership moves to the merge front at the epoch barrier), scheduled
// into the destination tile's queue, and finally released into the
// *receiving* tile's pool by the destination handler. Pools are plain
// free-lists, so objects migrate between tiles with the traffic; that is
// safe because get() fully zeroes a recycled message and no tile touches
// another tile's pool concurrently (sends during an epoch only push to
// the sender-owned mailbox; pool puts happen in the receiver's epoch).

// parcel is one cross-tile protocol message parked for the epoch merge:
// everything the merge needs to replay the send against the mesh.
//
//stash:tileowned
type parcel struct {
	dst   noc.NodeID
	class noc.Class
	flits int32
	msg   *Msg
}

// tileLocal is a tile view's private transport state: the self-delivery
// path (messages a tile sends to itself never cross the merge) and the
// tile's share of the mesh statistics, folded into the mesh after the run.
//
//stash:tileowned
type tileLocal struct {
	eng       *sim.Engine
	ep        *tile
	router    sim.Cycle
	traffic   noc.LocalTraffic
	env       []*noc.Message
	deliverFn func(any)
}

// getEnv draws a delivery envelope from the tile's free list.
//
//stash:acquire
//stash:hotpath
func (tl *tileLocal) getEnv() *noc.Message {
	if n := len(tl.env); n > 0 {
		m := tl.env[n-1]
		tl.env = tl.env[:n-1]
		return m
	}
	return &noc.Message{} //stash:ignore hotpath pool warm-up; amortized away by reuse
}

// deliver hands an arrived message to the tile endpoint and recycles the
// envelope. It is the parallel counterpart of Mesh.deliver, bound once
// per tile so deliveries schedule without closures.
//
//stash:hotpath
func (tl *tileLocal) deliver(arg any) {
	m := arg.(*noc.Message)
	tl.traffic.Delivered++
	tl.ep.Deliver(m)
	m.Payload = nil
	tl.env = append(tl.env, m)
}

// psend is send's parallel-mode tail: self-addressed messages turn around
// through the local router on the tile's own queue; cross-tile ones are
// parked in the mailbox, stamped with the send cycle, for the merge.
//
//stash:transfer
//stash:hotpath
func (f *Fabric) psend(src, dst noc.NodeID, m *Msg) {
	tl := f.local
	if src == dst {
		tl.traffic.Msgs[m.class()]++
		env := tl.getEnv()
		env.Src, env.Dst, env.Class, env.Flits, env.Payload = src, dst, m.class(), m.flits(), m
		tl.eng.AtArg(tl.eng.Now()+tl.router, "noc.deliver", tl.deliverFn, env)
		return
	}
	f.pout.Push(uint64(tl.eng.Now()), parcel{dst: dst, class: m.class(), flits: int32(m.flits()), msg: m})
}

// ParallelFabric is a fabric split across per-tile event queues for the
// parallel engine. Root is the shared spine (mesh, controller slices,
// fold targets); Views[i] is tile i's fabric view.
type ParallelFabric struct {
	Root   *Fabric
	Views  []*Fabric
	shards int

	engines []*sim.Engine
	boxes   []*psim.Mailbox[parcel]
	locals  []*tileLocal
	visitFn func(src int, at uint64, p parcel)

	// EpochHook, when set before Drive, runs on the driver thread at every
	// epoch barrier (see psim.Engine.OnEpoch). The occupancy sampler hooks
	// here: the barrier grid is deterministic and shard-count-invariant.
	EpochHook func(start, end sim.Cycle)
}

// NewParallelFabric builds the fabric partitioned across shards worker
// goroutines (1 <= shards <= tiles). The resulting machine computes one
// fixed schedule — the psim (cycle, tile, tile-sequence) order — at every
// shard count; it is a different (equally deterministic) schedule from
// the serial fabric's global insertion order, so results are compared
// against psim golden fixtures, not the serial ones.
func NewParallelFabric(cfg BuildConfig, shards int) (*ParallelFabric, error) {
	if err := cfg.Params.Validate(); err != nil {
		return nil, err
	}
	tiles := cfg.Mesh.Width * cfg.Mesh.Height
	if tiles != cfg.Params.Cores {
		return nil, fmt.Errorf("coherence: mesh has %d tiles for %d cores", tiles, cfg.Params.Cores)
	}
	if shards < 1 || shards > tiles {
		return nil, fmt.Errorf("coherence: shards must be in [1,%d], got %d", tiles, shards)
	}
	// The root engine exists only to satisfy the mesh constructor; no
	// event is ever scheduled on it (ReserveRoute does not schedule, and
	// parallel sends never reach Mesh.Send).
	rootEngine := sim.NewEngine()
	mesh, err := noc.New(rootEngine, cfg.Mesh)
	if err != nil {
		return nil, err
	}
	root := &Fabric{
		Engine:  rootEngine,
		Mesh:    mesh,
		Params:  cfg.Params,
		Memory:  NewMemory(),
		Checker: NewChecker(),
		L1s:     make([]*L1, tiles),
		Banks:   make([]*Bank, tiles),
	}
	// Load verification needs a globally ordered oracle; parallel tiles
	// stamp stores independently (see NewStridedChecker), so the root
	// checker is a disabled placeholder and Drive never audits.
	root.Checker.SetEnabled(false)

	pf := &ParallelFabric{
		Root:    root,
		Views:   make([]*Fabric, tiles),
		shards:  shards,
		engines: make([]*sim.Engine, tiles),
		boxes:   make([]*psim.Mailbox[parcel], tiles),
		locals:  make([]*tileLocal, tiles),
	}
	pf.visitFn = pf.visit
	for i := 0; i < tiles; i++ {
		eng := sim.NewEngine()
		v := &Fabric{
			Engine:  eng,
			Mesh:    mesh,
			Params:  cfg.Params,
			Memory:  NewMemory(),
			Checker: NewStridedChecker(i, tiles),
			L1s:     root.L1s,
			Banks:   root.Banks,
			pout:    &psim.Mailbox[parcel]{},
		}
		l1, bank, err := buildTile(v, i, &cfg)
		if err != nil {
			return nil, err
		}
		root.L1s[i] = l1
		root.Banks[i] = bank
		ep := &tile{l1: l1, bank: bank}
		mesh.Attach(noc.NodeID(i), ep)
		v.local = &tileLocal{eng: eng, ep: ep, router: cfg.Mesh.RouterLatency}
		v.local.deliverFn = v.local.deliver
		pf.Views[i] = v
		pf.engines[i] = eng
		pf.boxes[i] = v.pout
		pf.locals[i] = v.local
	}
	return pf, nil
}

// AttachProcessors binds one access source per core, each on its tile's
// view, and returns the processors (not yet started).
func (pf *ParallelFabric) AttachProcessors(sources []AccessSource) ([]*Processor, error) {
	if len(sources) != pf.Root.Params.Cores {
		return nil, fmt.Errorf("coherence: %d sources for %d cores", len(sources), pf.Root.Params.Cores)
	}
	procs := make([]*Processor, len(sources))
	for i, src := range sources {
		procs[i] = newProcessor(i, pf.Views[i], pf.Root.L1s[i], src)
	}
	return procs, nil
}

// visit replays one cross-tile send at the merge front: reserve the route
// (identical link arbitration to the serial send path, in the canonical
// order Drain imposes) and schedule the delivery on the destination
// tile's queue from the destination's envelope pool.
//
//stash:hotpath
func (pf *ParallelFabric) visit(src int, at uint64, p parcel) {
	arrival := pf.Root.Mesh.ReserveRoute(noc.NodeID(src), p.dst, p.class, int(p.flits), sim.Cycle(at))
	tl := pf.locals[p.dst]
	env := tl.getEnv()
	env.Src, env.Dst, env.Class, env.Flits, env.Payload = noc.NodeID(src), p.dst, p.class, int(p.flits), p.msg
	tl.eng.AtArg(arrival, "noc.deliver", tl.deliverFn, env)
}

// merge is the epoch merge front: drain every tile's mailbox in
// (cycle, source tile, send order) order.
//
//stash:hotpath
func (pf *ParallelFabric) merge(end sim.Cycle) {
	psim.Drain(pf.boxes, pf.visitFn)
}

// Cycles returns the furthest tile clock (the parallel analogue of the
// serial engine's final Now()). Meaningful after Drive.
func (pf *ParallelFabric) Cycles() sim.Cycle {
	var max sim.Cycle
	for _, e := range pf.engines {
		if t := e.Now(); t > max {
			max = t
		}
	}
	return max
}

// EventsRun returns the total events executed across all tiles.
func (pf *ParallelFabric) EventsRun() uint64 {
	var n uint64
	for _, e := range pf.engines {
		n += e.EventsRun()
	}
	return n
}

// Drive starts the processors, runs the parallel engine to completion and
// folds the per-tile statistics into the root fabric. Mirrors
// Fabric.Drive's error contract: event-limit overrun and deadlock are
// errors; the oracle/audit steps are skipped because parallel mode runs
// with the checker disabled (enforced by the system layer's Validate).
func (pf *ParallelFabric) Drive(procs []*Processor, maxEvents uint64) error {
	if pf.Root.OnMessage != nil {
		return fmt.Errorf("coherence: the OnMessage observer is serial-only; run with Shards=0")
	}
	for _, p := range procs {
		p.Start()
	}
	eng, err := psim.New(psim.Config{
		Shards:    pf.shards,
		Lookahead: pf.Root.Mesh.MinHopLatency(),
		MaxEvents: maxEvents,
	}, pf.engines)
	if err != nil {
		return err
	}
	eng.OnEpoch = pf.EpochHook
	if _, err := eng.Run(pf.merge); err != nil {
		if errors.Is(err, psim.ErrEventLimit) {
			return fmt.Errorf("coherence: event limit %d reached with %d events pending", maxEvents, eng.Pending())
		}
		return err
	}
	for _, p := range procs {
		if !p.Finished() {
			return fmt.Errorf("coherence: deadlock — core %d stalled at cycle %d with queue drained%s",
				p.id, pf.Cycles(), pf.Root.describeStall(p))
		}
	}
	// Fold per-tile accumulators into the root, in tile order; every fold
	// is a commutative accumulation, so the totals are shard-invariant.
	for _, v := range pf.Views {
		pf.Root.Memory.FoldStats(v.Memory)
	}
	for _, tl := range pf.locals {
		pf.Root.Mesh.FoldLocal(&tl.traffic)
	}
	return nil
}

// MinHopLatency exposes the run's lookahead (epoch width) for reporting.
func (pf *ParallelFabric) MinHopLatency() sim.Cycle {
	return pf.Root.Mesh.MinHopLatency()
}
