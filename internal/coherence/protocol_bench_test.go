package coherence

import (
	"testing"

	"repro/internal/mem"
)

// Protocol hot-path benchmarks. Each drives one steady-state transaction
// shape end to end (L1 access -> NoC -> directory bank -> NoC -> L1) on a
// pre-warmed machine, so allocs/op is the recurring cost of the protocol
// itself. `make bench-protocol` records these into BENCH_protocol.json and
// fails CI if any of them allocates.

// benchFabric builds a machine, disables the checker, and returns a
// pre-bound access driver.
func benchFabric(b *testing.B, cores int, mk dirFactory, opts ...fabricOpt) (*Fabric, func(core int, a mem.Access)) {
	f := testFabric(b, cores, mk, opts...)
	f.Checker.SetEnabled(false)
	done := false
	doneFn := func() { done = true }
	drive := func(core int, a mem.Access) {
		done = false
		f.L1s[core].Access(a, doneFn)
		f.Engine.Run(0)
		if !done {
			b.Fatal("access did not complete")
		}
	}
	return f, drive
}

func BenchmarkProtocolL1Hit(b *testing.B) {
	_, drive := benchFabric(b, 4, fullMapFactory())
	rd := mem.Access{Addr: mem.AddrOf(3)}
	for i := 0; i < 32; i++ {
		drive(0, rd)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		drive(0, rd)
	}
}

func BenchmarkProtocolTwoHopMiss(b *testing.B) {
	// Exclusive-ownership ping-pong between two cores: every access is a
	// GetM invalidating the previous owner through the directory.
	_, drive := benchFabric(b, 4, fullMapFactory())
	wr := mem.Access{Addr: mem.AddrOf(3), Write: true}
	for i := 0; i < 32; i++ {
		drive(i%2, wr)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		drive(i%2, wr)
	}
}

func BenchmarkProtocolDiscovery(b *testing.B) {
	// One-entry stash slices, two conflicting blocks: the four-phase store
	// rotation keeps the target block hidden with a remote owner, so every
	// access is a discovery broadcast (see TestAllocFreeDiscovery).
	f, drive := benchFabric(b, 4, stashFactory(1, 1, 0, false))
	w0 := mem.Access{Addr: mem.AddrOf(0), Write: true}
	w4 := mem.Access{Addr: mem.AddrOf(4), Write: true}
	phases := []struct {
		core int
		a    mem.Access
	}{
		{2, w0}, {3, w4}, {0, w0}, {1, w4},
	}
	for lap := 0; lap < 8; lap++ {
		for _, p := range phases {
			drive(p.core, p.a)
		}
	}
	if f.Banks[0].Directory().Stats().Counter("stash_evictions").Value() == 0 {
		b.Fatal("scenario broken: no stash evictions, so no discovery traffic")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := phases[i%len(phases)]
		drive(p.core, p.a)
	}
}
