package coherence

import (
	"fmt"
	"sort"

	"encoding/binary"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/noc"
)

// This file is the enumeration surface the model checker (internal/mcheck)
// drives the protocol through: hooks that turn the fabric's implicit
// scheduling decisions (message transport, bank retry timers) into explicit
// choice points, direct-delivery and forced-eviction entry points, and a
// canonical state serializer. Everything here operates on the *real*
// controllers — nothing is re-modeled — which is the first concrete cut
// toward the pluggable protocol interface of ROADMAP item 3: a backend is
// whatever can be driven, delivered to, and serialized through this
// surface.

// SetSendHook installs (or, with nil, removes) a message-capture hook. When
// the hook returns true it has taken ownership of the message and the mesh
// never sees it; the model checker parks captured messages in per-(src,dst)
// FIFO channels and enumerates which channel head to deliver next. Per-pair
// FIFO order is the one transport property the protocol legitimately relies
// on (a PutM must not be overtaken by the same L1's re-GetS to the same
// bank), so enumerating only channel heads is sound and complete with
// respect to the real point-to-point-ordered NoC.
func (f *Fabric) SetSendHook(h func(src, dst noc.NodeID, m *Msg) bool) { f.sendHook = h }

// SetRetryHook installs (or removes) the bank-retry interceptor. Without
// it, a bank whose allocation found every victim busy re-arms an engine
// timer, which under run-to-quiescence exploration would spin forever while
// the delivery that unblocks it sits parked; with it, the parked retry
// becomes an explicit scheduler action the checker fires when it chooses.
func (f *Fabric) SetRetryHook(h func(ParkedRetry)) { f.retryHook = h }

// RetryKind names which bank retry loop was intercepted.
type RetryKind uint8

const (
	// RetryLLCVictim is fillFromMemory's loop: every LLC way of the
	// target set carries an in-flight transaction.
	RetryLLCVictim RetryKind = iota
	// RetryAlloc is allocEntry's loop: the directory organization returned
	// AllocBlocked (every victim candidate busy).
	RetryAlloc
)

// String names the retry kind.
func (k RetryKind) String() string {
	switch k {
	case RetryLLCVictim:
		return "llc-victim-retry"
	case RetryAlloc:
		return "alloc-retry"
	}
	return fmt.Sprintf("RetryKind(%d)", uint8(k))
}

// ParkedRetry is one intercepted bank retry: an opaque resumption handle.
// Fire resumes the transaction exactly as the elapsed timer would have; the
// checker must fire each parked retry at most once (firing may park a new
// one if the allocation is still blocked).
type ParkedRetry struct {
	bank *Bank
	kind RetryKind
	tbe  *dirTBE
}

// BankID returns the bank holding the blocked transaction.
func (p ParkedRetry) BankID() int { return p.bank.id }

// Kind returns which retry loop parked.
func (p ParkedRetry) Kind() RetryKind { return p.kind }

// Block returns the block whose transaction is blocked.
func (p ParkedRetry) Block() mem.Block { return p.tbe.block }

// Fire re-runs the blocked step.
func (p ParkedRetry) Fire() {
	switch p.kind {
	case RetryLLCVictim:
		p.bank.fillFromMemory(p.tbe)
	case RetryAlloc:
		p.bank.allocEntry(p.tbe)
	default:
		panic(fmt.Sprintf("coherence: firing unknown retry kind %d", p.kind))
	}
}

// DeliverDirect hands a captured message to its destination tile's
// controller, bypassing the mesh: the same demultiplexing as the NoC
// endpoint, without transport latency. The receiver takes ownership of m.
//
//stash:transfer
func (f *Fabric) DeliverDirect(dst noc.NodeID, m *Msg) {
	switch m.Type {
	case MsgGetS, MsgGetM, MsgPutS, MsgPutE, MsgPutM, MsgInvAck, MsgFetchResp, MsgDiscoverResp, MsgUnblock:
		f.Banks[dst].deliver(m)
	case MsgDataS, MsgDataE, MsgDataM, MsgInv, MsgFetch, MsgPutAck, MsgDiscover, MsgFwdGetS, MsgFwdGetM:
		f.L1s[dst].deliver(m)
	default:
		panic(fmt.Sprintf("coherence: undeliverable message %v", m))
	}
}

// RecycleMsg returns a captured message to the fabric's pool without
// delivering it. Mutation tests use it to model message loss: the pool
// books stay balanced so the resulting violation is the protocol hang, not
// a spurious leak report.
//
//stash:release
func (f *Fabric) RecycleMsg(m *Msg) { f.releaseMsg(m) }

// OpenWork reports whether any controller still holds transient protocol
// state: an L1 miss or stalled access, an unacknowledged eviction, or an
// open bank transaction. A state with OpenWork and no deliverable message
// or parked retry is a deadlock.
func (f *Fabric) OpenWork() bool {
	for _, l1 := range f.L1s {
		if l1.tbes.len() > 0 || len(l1.stalled) > 0 || l1.evict.len() > 0 {
			return true
		}
	}
	for _, bk := range f.Banks {
		if bk.tbes.len() > 0 {
			return true
		}
	}
	return false
}

// BlockBusy reports whether block b has transient protocol state in any
// controller (home-bank transaction, an L1 miss, or an in-flight eviction
// buffer). The per-state invariants only apply their residency checks to
// blocks that are quiet: not busy here and with no in-flight messages.
func (f *Fabric) BlockBusy(b mem.Block) bool {
	if f.Banks[f.HomeBank(b)].tbes.has(b) {
		return true
	}
	for _, l1 := range f.L1s {
		if l1.tbes.has(b) {
			return true
		}
		if _, ok := l1.evict.get(b); ok {
			return true
		}
	}
	return false
}

// TBEPoolUse reports the bank's live transaction count and high-water mark
// (the leak check at quiescent states).
func (bk *Bank) TBEPoolUse() (inUse, highWater int) { return bk.tbeUse, bk.tbeHigh }

// CanForceEvict reports whether core's private copy of b may be retired
// right now: the block is resident in the outer private level, not reserved
// by an in-flight fill, has no open miss, and no eviction already in
// flight.
func (l *L1) CanForceEvict(b mem.Block) bool {
	outer := l.cache
	if l.l2 != nil {
		outer = l.l2
	}
	ln := outer.Probe(b)
	if ln == nil || ln.Flags&flagReserved != 0 {
		return false
	}
	if l.tbes.has(b) {
		return false
	}
	if _, ok := l.evict.get(b); ok {
		return false
	}
	return true
}

// ForceEvict retires core's private copy of b exactly as a capacity victim
// would be: writeback for Modified, Put notification (or silent drop) for
// clean states. It reports whether the eviction happened; the checker uses
// it to inject evictions at chosen points, since the tiny configurations it
// explores never evict under capacity pressure on their own.
func (l *L1) ForceEvict(b mem.Block) bool {
	if !l.CanForceEvict(b) {
		return false
	}
	if l.l2 != nil {
		l.evictL2Line(l.l2.Probe(b))
		return true
	}
	l.evictLine(l.cache.Probe(b))
	return true
}

// L1BlockState returns a compact token for core's private state of b — the
// MESI letter of the cached copy, with "+busy" appended while the L1 has an
// open transaction or unacknowledged eviction for it. The model checker
// uses these tokens as the row labels of the generated transition tables.
func (f *Fabric) L1BlockState(core int, b mem.Block) string {
	l1 := f.L1s[core]
	outer := l1.cache
	if l1.l2 != nil {
		outer = l1.l2
	}
	st := "I"
	if ln := outer.Probe(b); ln != nil {
		st = ln.State.String()
	}
	if l1.tbes.has(b) {
		st += "+busy"
	} else if _, ok := l1.evict.get(b); ok {
		st += "+busy"
	}
	return st
}

// BankBlockState returns a compact token for b's standing at its home
// bank's directory slice and LLC: "absent" (not LLC-resident), "hidden"
// (LLC-resident, stashed entry), "untracked" (LLC-resident, no entry, no
// hidden bit), "shared" or "owned" (tracked), with "+busy" appended while
// the bank has an open transaction for it.
func (f *Fabric) BankBlockState(bank int, b mem.Block) string {
	bk := f.Banks[bank]
	var st string
	line := bk.llc.Probe(b)
	entry := bk.dir.Probe(b)
	switch {
	case line == nil:
		st = "absent"
	case entry == nil && line.Flags&flagHidden != 0:
		st = "hidden"
	case entry == nil:
		st = "untracked"
	case entry.Owned:
		st = "owned"
	default:
		st = "shared"
	}
	if bk.tbes.has(b) {
		st += "+busy"
	}
	return st
}

// ---------------------------------------------------------------------------
// Canonical state serialization
// ---------------------------------------------------------------------------

// StateEncoder serializes fabric state into a canonical byte string for
// visited-set deduplication. Canonical means: a pure function of the
// machine's architectural state, independent of the history that produced
// it — hash-table slot order is normalized by sorting, and the checker's
// store stamps (globally unique, so history-dependent) are renamed to
// first-encounter order. Renaming is sound because the protocol never
// branches on payload values and every invariant compares them only for
// equality, so states whose payloads differ by a stamp bijection are
// bisimilar.
//
// The encoder deliberately excludes: statistics counters, replacement
// policy state (the checker's configurations are shaped so victim selection
// never consults a policy), engine time (states are encoded at engine
// quiescence, where future behavior is time-independent), and the
// miss-classification table (it feeds counters only).
type StateEncoder struct {
	buf    []byte
	rename map[uint64]uint32
	// scratch slices reused across encodes.
	blocks []mem.Block
	tbeBuf []mem.Block
}

// NewStateEncoder returns an empty encoder.
func NewStateEncoder() *StateEncoder {
	return &StateEncoder{rename: make(map[uint64]uint32)}
}

// Reset clears the encoder for the next state.
func (e *StateEncoder) Reset() {
	e.buf = e.buf[:0]
	clear(e.rename)
}

// Bytes returns the encoded state. The slice is valid until the next Reset.
func (e *StateEncoder) Bytes() []byte { return e.buf }

// Byte appends a raw separator/tag byte.
func (e *StateEncoder) Byte(b byte) { e.buf = append(e.buf, b) }

// U64 appends a varint.
func (e *StateEncoder) U64(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }

func (e *StateEncoder) flag(b bool) {
	if b {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}

// sint appends a small possibly-negative integer (core ids use -1).
func (e *StateEncoder) sint(v int) { e.buf = binary.AppendVarint(e.buf, int64(v)) }

// stamp appends the canonical rename of a payload value.
func (e *StateEncoder) stamp(v uint64) {
	id, ok := e.rename[v]
	if !ok {
		id = uint32(len(e.rename) + 1)
		e.rename[v] = id
	}
	e.U64(uint64(id))
}

// Msg appends a message canonically. Exposed so the checker can fold its
// channel contents into the same encoding (sharing the stamp renamer).
func (e *StateEncoder) Msg(m *Msg) {
	e.Byte(byte(m.Type))
	e.U64(uint64(m.Block))
	e.sint(m.From)
	e.flag(m.HasData)
	if m.HasData {
		e.stamp(m.Data)
	}
	e.flag(m.Dirty)
	e.flag(m.Found)
	e.flag(m.Retained)
	e.Byte(byte(m.Reason))
	e.Byte(byte(m.Kind))
	e.sint(m.Requester)
	e.flag(m.Forwarded)
	e.flag(m.HaveLine)
}

// tagArray appends a cache's complete slot layout: state and flags for
// every way, block and (renamed) payload for the valid ones. Empty-way
// positions matter — victim selection prefers the first invalid way in way
// order — so slots are encoded positionally rather than as a sorted set.
func (e *StateEncoder) tagArray(c *cache.Cache) {
	c.ForEachSlot(func(_ int, ln *cacheLine) {
		e.Byte(byte(ln.State))
		e.U64(uint64(ln.Flags))
		if ln.Valid() {
			e.U64(uint64(ln.Block))
			e.stamp(ln.Data)
		}
	})
}

// slotOf maps a line pointer to its flat slot index in c, or -1 for nil.
func slotOf(c *cache.Cache, ln *cacheLine) int {
	if ln == nil {
		return -1
	}
	set, way := c.Locate(ln)
	return set*c.Ways() + way
}

// sortedTBEBlocks collects a blockTable's keys in ascending block order;
// the table's own iteration order depends on insertion history, which a
// canonical encoding must erase.
func sortedBlocks[V any](t *blockTable[V], scratch []mem.Block) []mem.Block {
	out := scratch[:0]
	t.forEach(func(b mem.Block, _ V) { out = append(out, b) })
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Fabric appends the complete canonical controller state: every private
// tag array, L1 and bank transaction, eviction buffer, directory slice,
// LLC bank, memory contents, the value oracle, and the message pool's
// occupancy.
func (e *StateEncoder) Fabric(f *Fabric) {
	for _, l1 := range f.L1s {
		e.Byte('L')
		e.tagArray(l1.cache)
		if l1.l2 != nil {
			e.tagArray(l1.l2)
		}
		e.tbeBuf = sortedBlocks(l1.tbes, e.tbeBuf)
		e.U64(uint64(len(e.tbeBuf)))
		for _, b := range e.tbeBuf {
			tbe, _ := l1.tbes.get(b)
			e.U64(uint64(b))
			e.flag(tbe.write)
			e.flag(tbe.upgrade)
			e.flag(tbe.sawInv)
			e.sint(slotOf(l1.cache, tbe.way))
			if l1.l2 != nil {
				e.sint(slotOf(l1.l2, tbe.l2way))
			}
			e.U64(uint64(len(tbe.waiters)))
			for _, w := range tbe.waiters {
				e.flag(w.access.Write)
			}
		}
		e.U64(uint64(len(l1.stalled)))
		for _, w := range l1.stalled {
			e.U64(uint64(w.access.Block()))
			e.flag(w.access.Write)
		}
		e.tbeBuf = sortedBlocks(l1.evict, e.tbeBuf)
		e.U64(uint64(len(e.tbeBuf)))
		for _, b := range e.tbeBuf {
			buf, _ := l1.evict.get(b)
			e.U64(uint64(b))
			e.flag(buf.dirty)
			e.stamp(buf.data)
		}
	}

	for _, bk := range f.Banks {
		e.Byte('B')
		e.tagArray(bk.llc)
		// Directory entries arrive in slot order (deterministic per
		// organization); slot coordinates are part of the state because
		// placement drives future victim and relocation choices.
		e.Byte('D')
		bk.dir.ForEach(func(en *core.Entry) {
			set, way := en.Slot()
			e.U64(uint64(set))
			e.U64(uint64(way))
			e.U64(uint64(en.Block))
			e.flag(en.Owned)
			e.flag(en.Overflowed)
			en.Sharers.ForEach(func(c int) { e.Byte(byte(c)) })
			e.Byte(0xFF)
		})
		e.Byte('T')
		e.tbeBuf = sortedBlocks(bk.tbes, e.tbeBuf)
		e.U64(uint64(len(e.tbeBuf)))
		for _, b := range e.tbeBuf {
			tbe, _ := bk.tbes.get(b)
			e.U64(uint64(b))
			e.Byte(byte(tbe.reqType))
			e.sint(tbe.reqFrom)
			e.stamp(tbe.reqData)
			e.flag(tbe.reqHave)
			e.U64(uint64(tbe.waitAcks))
			e.flag(tbe.gotDirty)
			if tbe.gotDirty {
				e.stamp(tbe.dirtyData)
			}
			e.sint(tbe.retained)
			e.flag(tbe.anyFound)
			e.flag(tbe.forwarded)
			e.U64(uint64(tbe.unblocks))
			e.flag(tbe.wantUnblock)
			e.Byte(byte(tbe.cont))
			e.Byte(byte(tbe.alloc))
			e.sint(slotOf(bk.llc, tbe.line))
			e.flag(tbe.entry != nil)
			e.sint(tbe.owner)
			e.flag(tbe.wasSharer)
			if tbe.parent != nil {
				e.flag(true)
				e.U64(uint64(tbe.parent.block))
			} else {
				e.flag(false)
			}
			e.U64(uint64(tbe.qlen))
			for q := tbe.qhead; q != nil; q = q.next {
				e.Msg(q)
			}
		}
	}

	e.Byte('M')
	e.blocks = e.blocks[:0]
	//stash:ignore determinism keys are sorted before use
	for b := range f.Memory.values {
		e.blocks = append(e.blocks, b)
	}
	sort.Slice(e.blocks, func(i, j int) bool { return e.blocks[i] < e.blocks[j] })
	for _, b := range e.blocks {
		e.U64(uint64(b))
		e.stamp(f.Memory.values[b])
	}

	e.Byte('O')
	e.blocks = e.blocks[:0]
	//stash:ignore determinism keys are sorted before use
	for b := range f.Checker.oracle {
		e.blocks = append(e.blocks, b)
	}
	sort.Slice(e.blocks, func(i, j int) bool { return e.blocks[i] < e.blocks[j] })
	for _, b := range e.blocks {
		e.U64(uint64(b))
		e.stamp(f.Checker.oracle[b])
	}

	e.Byte('P')
	e.U64(uint64(f.pool.inUse))
}

// ---------------------------------------------------------------------------
// Per-state invariants
// ---------------------------------------------------------------------------

// StepInvariants checks the safety invariants that must hold at every
// reachable state (not just at end-of-run quiescence, which is Audit's
// job):
//
//   - SWMR: a block with an E/M copy has no other private copy.
//   - Data value: every private copy's payload equals the oracle's current
//     value for the block (writes are serialized through M, so a stale
//     payload means a lost invalidation or a wrong grant).
//   - Residency tracking, for quiet blocks only (no open transaction, no
//     in-flight message — supplied by the caller, who owns the channels):
//     a privately cached block is LLC-resident at its home bank and either
//     directory-tracked with the holder covered, or hidden with exactly
//     one copy. This is the stash directory's central obligation: an
//     unnotified (stashed) eviction may never strand a cached copy where
//     neither the sharer bits nor the hidden bit can find it again.
//
// inflight reports whether any captured message for the block is pending.
func StepInvariants(f *Fabric, inflight func(mem.Block) bool) []string {
	var bad []string
	report := func(format string, args ...any) {
		if len(bad) < 64 {
			bad = append(bad, fmt.Sprintf(format, args...))
		}
	}

	holders := f.Checker.holdersScratch()
	for _, l1 := range f.L1s {
		record := func(b mem.Block, st mem.State, data uint64) {
			m, ok := holders[b]
			if !ok {
				m = make(map[int]mem.State)
				holders[b] = m
			}
			m[l1.id] = st
			if f.Checker.enabled {
				if want := f.Checker.oracle[b]; data != want {
					report("core %d holds block %#x in %v with payload %#x, oracle says %#x",
						l1.id, uint64(b), st, data, want)
				}
			}
		}
		if l1.l2 != nil {
			l1.l2.ForEach(func(ln *cacheLine) {
				st, data := ln.State, ln.Data
				if inner := l1.cache.Probe(ln.Block); inner != nil && inner.State == mem.Modified {
					st, data = mem.Modified, inner.Data
				}
				record(ln.Block, st, data)
			})
		} else {
			l1.cache.ForEach(func(ln *cacheLine) { record(ln.Block, ln.State, ln.Data) })
		}
	}

	blocks := make([]mem.Block, 0, len(holders))
	//stash:ignore determinism keys are sorted before use
	for b := range holders {
		blocks = append(blocks, b)
	}
	sort.Slice(blocks, func(i, j int) bool { return blocks[i] < blocks[j] })
	for _, b := range blocks {
		m := holders[b]
		owned := 0
		cores := make([]int, 0, len(m))
		//stash:ignore determinism keys are sorted before use
		for c := range m {
			cores = append(cores, c)
		}
		sort.Ints(cores)
		for _, c := range cores {
			if m[c].Owned() {
				owned++
			}
		}
		if owned > 0 && len(m) > 1 {
			report("SWMR violated for block %#x: %d holders with an owned copy present", uint64(b), len(m))
		}

		if f.BlockBusy(b) || (inflight != nil && inflight(b)) {
			continue // transient shapes are legal while the block is in motion
		}
		bank := f.Banks[f.HomeBank(b)]
		line := bank.llc.Probe(b)
		if line == nil {
			report("inclusion violated: quiet block %#x cached in core %d but absent from LLC bank %d",
				uint64(b), cores[0], bank.id)
			continue
		}
		entry := bank.dir.Probe(b)
		hidden := line.Flags&flagHidden != 0
		switch {
		case entry == nil && !hidden:
			report("tracking lost: quiet block %#x cached in core %d, no directory entry, hidden bit clear",
				uint64(b), cores[0])
		case entry == nil && len(m) != 1:
			report("hidden block %#x has %d copies, want exactly 1", uint64(b), len(m))
		case entry != nil && hidden:
			report("block %#x is both tracked and hidden", uint64(b))
		case entry != nil && !entry.Overflowed:
			for _, c := range cores {
				if !entry.Sharers.Has(c) {
					report("directory entry for quiet block %#x omits holder core %d", uint64(b), c)
				}
			}
		}
	}
	return bad
}
