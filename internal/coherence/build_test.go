package coherence

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/noc"
)

func TestBuildValidation(t *testing.T) {
	base := func() BuildConfig {
		return BuildConfig{
			Params: DefaultParams(4),
			Mesh:   noc.DefaultConfig(2, 2),
			L1:     cache.Config{Name: "l1", Sets: 4, Ways: 2},
			LLC:    cache.Config{Name: "llc", Sets: 16, Ways: 4, IndexShift: 2},
			NewDirectory: func(int) (core.Directory, error) {
				return core.NewFullMap(), nil
			},
		}
	}

	// Mesh/core mismatch.
	cfg := base()
	cfg.Mesh = noc.DefaultConfig(2, 1)
	if _, err := NewFabric(cfg); err == nil {
		t.Error("2-tile mesh for 4 cores accepted")
	}

	// Bad params.
	cfg = base()
	cfg.Params.Cores = 0
	if _, err := NewFabric(cfg); err == nil {
		t.Error("zero cores accepted")
	}
	cfg = base()
	cfg.Params.Cores = 65
	if _, err := NewFabric(cfg); err == nil {
		t.Error("65 cores accepted (sharer vector is 64-wide)")
	}
	cfg = base()
	cfg.Params.RetryDelay = 0
	if _, err := NewFabric(cfg); err == nil {
		t.Error("zero retry delay accepted")
	}
	cfg = base()
	cfg.Params.MSHRs = -1
	if _, err := NewFabric(cfg); err == nil {
		t.Error("negative MSHRs accepted")
	}
	cfg = base()
	cfg.Params.PointerLimit = -1
	if _, err := NewFabric(cfg); err == nil {
		t.Error("negative pointer limit accepted")
	}

	// Bad cache geometry propagates.
	cfg = base()
	cfg.L1.Sets = 3
	if _, err := NewFabric(cfg); err == nil {
		t.Error("non-power-of-two L1 sets accepted")
	}

	// Directory factory errors propagate.
	cfg = base()
	cfg.NewDirectory = func(int) (core.Directory, error) {
		return core.NewSparse(core.AssocConfig{Sets: 3, Ways: 1})
	}
	if _, err := NewFabric(cfg); err == nil {
		t.Error("directory factory error swallowed")
	}
}

func TestAttachProcessorsValidation(t *testing.T) {
	f := testFabric(t, 4, fullMapFactory())
	if _, err := f.AttachProcessors(make([]AccessSource, 3)); err == nil {
		t.Error("3 sources for 4 cores accepted")
	}
}

func TestHomeBankPartitionsBlocks(t *testing.T) {
	f := testFabric(t, 4, fullMapFactory())
	counts := make([]int, 4)
	for b := mem.Block(0); b < 1000; b++ {
		h := f.HomeBank(b)
		if h < 0 || h >= 4 {
			t.Fatalf("HomeBank(%d) = %d", b, h)
		}
		counts[h]++
	}
	for i, c := range counts {
		if c != 250 {
			t.Fatalf("bank %d owns %d of 1000 blocks, want 250", i, c)
		}
	}
}

func TestEmptySourceFinishesImmediately(t *testing.T) {
	f := testFabric(t, 4, fullMapFactory())
	procs, _ := f.AttachProcessors([]AccessSource{
		&SliceSource{}, &SliceSource{}, &SliceSource{}, &SliceSource{},
	})
	if err := f.Drive(procs, 0); err != nil {
		t.Fatal(err)
	}
	for _, p := range procs {
		if !p.Finished() || p.Stats().Counter("accesses_completed").Value() != 0 {
			t.Fatal("empty-source processor did not finish cleanly")
		}
	}
}

func TestOnMessageHookObservesTraffic(t *testing.T) {
	f := testFabric(t, 4, fullMapFactory())
	seen := 0
	f.OnMessage = func(src, dst noc.NodeID, m *Msg) { seen++ }
	load(t, f, 0, 3)
	if seen == 0 {
		t.Fatal("OnMessage hook never fired")
	}
}

func TestDescribeStallMentionsBlock(t *testing.T) {
	f := testFabric(t, 2, fullMapFactory())
	srcs := []AccessSource{
		&SliceSource{Accesses: []mem.Access{{Addr: 0}}},
		&SliceSource{},
	}
	procs, _ := f.AttachProcessors(srcs)
	// Tiny event budget: the run must fail with a diagnostic.
	err := f.Drive(procs, 3)
	if err == nil {
		t.Fatal("expected an event-limit error")
	}
}
