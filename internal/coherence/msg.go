// Package coherence implements the MESI directory protocol that animates
// the directory organizations from internal/core: per-core L1 controllers,
// per-tile directory/LLC bank controllers, a memory model, and the
// correctness machinery (data-value oracle, SWMR and inclusion audits).
//
// The protocol is a blocking directory protocol: each bank serializes
// transactions per block through a transaction table (one TBE per block);
// requests to a busy block queue FIFO. L1 controllers answer every
// directory-initiated message immediately (possibly out of their eviction
// buffers), which makes the protocol deadlock-free by construction: the
// only waits are directory-TBE → L1-response and fixed-latency memory
// timers.
//
// The stash directory's relaxed inclusion shows up in two places here:
// banks set an LLC hidden bit when the directory stashes an entry, and a
// directory miss on a hidden LLC line triggers a discovery broadcast that
// rebuilds the tracking information from the private caches' responses.
package coherence

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/noc"
)

// MsgType enumerates the protocol messages.
type MsgType uint8

const (
	// L1 → directory requests.
	MsgGetS MsgType = iota // read miss: request a readable copy
	MsgGetM                // write miss or upgrade: request writable copy
	MsgPutS                // evicting a Shared line (clean, no data)
	MsgPutE                // evicting an Exclusive line (clean, no data)
	MsgPutM                // evicting a Modified line (carries data)

	// Directory → L1 responses and commands.
	MsgDataS  // grant: readable copy
	MsgDataE  // grant: exclusive clean copy (MESI E optimization)
	MsgDataM  // grant: writable copy (no payload when in-place upgrade)
	MsgInv    // invalidate the line; answer with InvAck
	MsgFetch  // downgrade to Shared; answer with FetchResp
	MsgPutAck // eviction acknowledged; free the eviction buffer

	// L1 → directory responses.
	MsgInvAck    // invalidation done (carries data when the line was dirty)
	MsgFetchResp // downgrade done (data when dirty; Retained=false if the copy was already gone)

	// Stash discovery.
	MsgDiscover     // probe: do you hold this block? (Kind says what to do if so)
	MsgDiscoverResp // answer: Found/Retained/data

	// Three-hop forwarding (Params.ThreeHopForwarding): the directory asks
	// the owner to send data straight to the requester.
	MsgFwdGetS // downgrade to Shared and forward DataS to Requester
	MsgFwdGetM // invalidate and forward DataM to Requester
	// MsgUnblock closes a three-hop transaction: the requester tells the
	// home bank its forwarded grant arrived. Without it the bank could
	// start the block's next transaction while the grant is still in
	// flight on the (unordered) owner→requester path, and an Inv or a
	// second forward could overtake it.
	MsgUnblock
)

// String names the message type.
func (t MsgType) String() string {
	switch t {
	case MsgGetS:
		return "GetS"
	case MsgGetM:
		return "GetM"
	case MsgPutS:
		return "PutS"
	case MsgPutE:
		return "PutE"
	case MsgPutM:
		return "PutM"
	case MsgDataS:
		return "DataS"
	case MsgDataE:
		return "DataE"
	case MsgDataM:
		return "DataM"
	case MsgInv:
		return "Inv"
	case MsgFetch:
		return "Fetch"
	case MsgPutAck:
		return "PutAck"
	case MsgInvAck:
		return "InvAck"
	case MsgFetchResp:
		return "FetchResp"
	case MsgDiscover:
		return "Discover"
	case MsgDiscoverResp:
		return "DiscoverResp"
	case MsgFwdGetS:
		return "FwdGetS"
	case MsgFwdGetM:
		return "FwdGetM"
	case MsgUnblock:
		return "Unblock"
	}
	return fmt.Sprintf("MsgType(%d)", uint8(t))
}

// Request reports whether the type is an L1→directory request, which is
// subject to per-block serialization (responses bypass the queue).
func (t MsgType) Request() bool {
	switch t {
	case MsgGetS, MsgGetM, MsgPutS, MsgPutE, MsgPutM:
		return true
	}
	return false
}

// InvReason says why an invalidation (or discovery-invalidate) was sent;
// the experiments separate demand invalidations (a writer wants the block)
// from conflict-induced ones (directory recall, LLC inclusion victim),
// which are the invalidations the stash directory eliminates.
type InvReason uint8

const (
	ReasonDemand   InvReason = iota // another core's GetM
	ReasonRecall                    // directory entry conflict eviction
	ReasonLLCEvict                  // inclusive-LLC victim eviction
)

// String names the reason.
func (r InvReason) String() string {
	switch r {
	case ReasonDemand:
		return "demand"
	case ReasonRecall:
		return "recall"
	case ReasonLLCEvict:
		return "llc-evict"
	}
	return fmt.Sprintf("InvReason(%d)", uint8(r))
}

// DiscoverKind says what a discovery probe does to a found copy.
type DiscoverKind uint8

const (
	// DiscoverDowngrade leaves the found copy in Shared (GetS discovery).
	DiscoverDowngrade DiscoverKind = iota
	// DiscoverInvalidate kills the found copy (GetM or LLC-evict
	// discovery).
	DiscoverInvalidate
)

// Msg is a protocol message; it travels as the payload of a noc.Message.
//
//stash:tileowned
type Msg struct {
	Type  MsgType
	Block mem.Block
	// From is the sending core for L1-originated messages and -1 for
	// bank-originated ones.
	From int
	// Data/HasData/Dirty carry the 64-bit block payload used by the value
	// oracle. Dirty distinguishes a modified payload that must be written
	// to the LLC from clean data.
	Data    uint64
	HasData bool
	Dirty   bool
	// Found (DiscoverResp): a copy existed. Retained (FetchResp,
	// DiscoverResp): the responder still holds a Shared copy afterwards.
	Found    bool
	Retained bool
	Reason   InvReason    // Inv and Discover(Invalidate)
	Kind     DiscoverKind // Discover only
	// Requester (FwdGetS/FwdGetM): the core the owner must forward data
	// to. Forwarded (FetchResp/InvAck): the owner already granted the
	// requester directly, so the bank must not send its own grant.
	Requester int
	Forwarded bool
	// HaveLine (GetM only): the requester holds a Shared copy and asks for
	// an in-place upgrade. The bank still sends data when its entry shows
	// the copy did not survive.
	HaveLine bool

	// next chains queued requests behind a busy bank transaction (the TBE
	// owns the chain head), replacing the per-block queue map.
	next *Msg
	// free marks a message currently parked in its pool, to catch
	// double-release bugs.
	free bool
}

// msgPool recycles Msg values. Every simulation is single-goroutine, so
// the pool is a plain free-list stack; the steady-state protocol path
// allocates no messages at all once the pool has warmed up.
//
// Ownership discipline: the sender acquires, the final receiver releases —
// at the end of its deliver handler, or when a queued request is dequeued
// and its fields copied into the transaction's TBE.
//
//stash:tileowned
type msgPool struct {
	freeList []*Msg
	inUse    int
	high     int // high-water mark of simultaneously live messages
	poison   bool
}

// get returns a zeroed message.
//
//stash:acquire
//stash:hotpath
func (p *msgPool) get() *Msg {
	p.inUse++
	if p.inUse > p.high {
		p.high = p.inUse
	}
	n := len(p.freeList)
	if n == 0 {
		return &Msg{} //stash:ignore hotpath pool warm-up; amortized away by reuse
	}
	m := p.freeList[n-1]
	p.freeList = p.freeList[:n-1]
	*m = Msg{}
	return m
}

// put releases a message back to the pool. With poison mode on (the
// property tests enable it) the payload is stamped with garbage so any
// use-after-release trips a protocol panic instead of silently reading
// stale fields.
//
//stash:release
//stash:hotpath
func (p *msgPool) put(m *Msg) {
	if m.free {
		panic("coherence: message released twice")
	}
	m.free = true
	m.next = nil
	if p.poison {
		m.Type = MsgType(0xEE)
		m.Block = mem.Block(0xDEADBEEFDEADBEEF)
		m.From = -0x7FFF
		m.Data = 0xEEEEEEEEEEEEEEEE
		m.Requester = -0x7FFF
	}
	p.inUse--
	p.freeList = append(p.freeList, m)
}

// flits returns the network size of the message: one control flit, plus
// four more when a data payload rides along (64-byte line over 16-byte
// flits).
func (m *Msg) flits() int {
	if m.HasData {
		return 5
	}
	return 1
}

// msgClass maps each message type onto its NoC traffic class; a flat
// indexed array keeps the per-send classification branch-free, the same
// way the mesh indexes its per-class counters.
var msgClass = [MsgUnblock + 1]noc.Class{
	MsgGetS:         noc.ClassRequest,
	MsgGetM:         noc.ClassRequest,
	MsgPutS:         noc.ClassWriteback,
	MsgPutE:         noc.ClassWriteback,
	MsgPutM:         noc.ClassWriteback,
	MsgDataS:        noc.ClassResponse,
	MsgDataE:        noc.ClassResponse,
	MsgDataM:        noc.ClassResponse,
	MsgInv:          noc.ClassInvalidation,
	MsgFetch:        noc.ClassInvalidation,
	MsgPutAck:       noc.ClassAck,
	MsgInvAck:       noc.ClassAck,
	MsgFetchResp:    noc.ClassAck,
	MsgDiscover:     noc.ClassDiscovery,
	MsgDiscoverResp: noc.ClassDiscoveryResp,
	MsgFwdGetS:      noc.ClassInvalidation,
	MsgFwdGetM:      noc.ClassInvalidation,
	MsgUnblock:      noc.ClassAck,
}

// class maps the message onto a NoC traffic class for the traffic-breakdown
// accounting.
func (m *Msg) class() noc.Class {
	if int(m.Type) < len(msgClass) {
		return msgClass[m.Type]
	}
	return noc.ClassRequest
}

func (m *Msg) String() string {
	return fmt.Sprintf("%s blk=%#x from=%d", m.Type, uint64(m.Block), m.From)
}
