package coherence

import (
	"repro/internal/mem"
	"repro/internal/stats"
)

// Memory is the off-chip DRAM model: a flat value store with fixed access
// latency (imposed by the banks via the engine) and access counting for the
// energy model. Reads of never-written blocks return zero, matching the
// value oracle's initial state.
//
//stash:tileowned (each parallel tile view gets its own Memory, folded after the run)
type Memory struct {
	values map[mem.Block]uint64

	set    *stats.Set
	reads  *stats.Counter
	writes *stats.Counter
}

// NewMemory returns an empty memory.
func NewMemory() *Memory {
	m := &Memory{
		values: make(map[mem.Block]uint64),
		set:    stats.NewSet("memory"),
	}
	m.reads = m.set.Counter("reads")
	m.writes = m.set.Counter("writes")
	return m
}

// Read returns the value of block b, counting one DRAM read.
func (m *Memory) Read(b mem.Block) uint64 {
	m.reads.Inc()
	return m.values[b]
}

// Write stores the value of block b, counting one DRAM write. Writebacks
// are posted: the caller does not wait.
func (m *Memory) Write(b mem.Block, v uint64) {
	m.writes.Inc()
	m.values[b] = v
}

// Stats returns the memory metric set.
func (m *Memory) Stats() *stats.Set { return m.set }

// FoldStats accumulates o's access counters into m. The parallel engine
// gives each tile its own Memory (blocks partition perfectly by home
// bank, so the value stores are disjoint) and folds the counters into the
// root fabric's Memory, in tile order, at end of run; counter addition
// commutes, so the totals are shard-layout-invariant. The value maps are
// not merged — nothing reads them after a parallel run (the audit is
// checker-gated and the checker is off).
func (m *Memory) FoldStats(o *Memory) {
	m.reads.Add(o.reads.Value())
	m.writes.Add(o.writes.Value())
}
