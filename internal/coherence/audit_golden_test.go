package coherence

import (
	"fmt"
	"slices"
	"testing"

	"repro/internal/mem"
)

// TestAuditGolden pins Audit's exact violation strings and their order.
// Downstream tooling greps these messages (the model checker classifies
// them, CI logs diff them across runs), and the report order is documented
// to be a pure function of machine state — block then core, residency
// problems before the hidden-bit sweep. Each case drives a healthy fabric
// into a known state, corrupts it, and compares Audit's output verbatim.
// If you reword a message or reorder the checks, update the goldens here
// in the same commit — that is the review point the test exists to force.
func TestAuditGolden(t *testing.T) {
	cases := []struct {
		name string
		mk   dirFactory
		run  func(t *testing.T, f *Fabric) []string // corrupt; return want
	}{
		{
			name: "clean",
			mk:   fullMapFactory(),
			run: func(t *testing.T, f *Fabric) []string {
				load(t, f, 0, 3)
				store(t, f, 1, 5)
				return nil
			},
		},
		{
			name: "swmr",
			mk:   fullMapFactory(),
			run: func(t *testing.T, f *Fabric) []string {
				load(t, f, 0, 3)
				load(t, f, 1, 3)
				f.L1s[0].Cache().Probe(3).State = mem.Modified
				return []string{
					"SWMR violated for block 0x3: 2 holders with an owned copy present",
				}
			},
		},
		{
			name: "inclusion",
			mk:   fullMapFactory(),
			run: func(t *testing.T, f *Fabric) []string {
				load(t, f, 0, 3)
				bk := f.Banks[f.HomeBank(3)]
				bk.LLC().Evict(bk.LLC().Probe(3))
				return []string{
					fmt.Sprintf("inclusion violated: block 0x3 cached in L1 but absent from LLC bank %d", f.HomeBank(3)),
				}
			},
		},
		{
			name: "tracking-lost",
			mk:   fullMapFactory(),
			run: func(t *testing.T, f *Fabric) []string {
				load(t, f, 0, 3)
				f.Banks[f.HomeBank(3)].Directory().Remove(3)
				return []string{
					"tracking lost: block 0x3 cached in L1, no directory entry, hidden bit clear",
				}
			},
		},
		{
			name: "omitted-holder",
			mk:   fullMapFactory(),
			run: func(t *testing.T, f *Fabric) []string {
				load(t, f, 0, 3)
				load(t, f, 1, 3)
				entry := f.Banks[f.HomeBank(3)].Directory().Probe(3)
				entry.Sharers.Remove(0)
				return []string{
					"directory entry for block 0x3 omits holder core 0",
				}
			},
		},
		{
			name: "phantom-sharer",
			mk:   fullMapFactory(),
			run: func(t *testing.T, f *Fabric) []string {
				load(t, f, 0, 3)
				entry := f.Banks[f.HomeBank(3)].Directory().Probe(3)
				entry.Sharers.Add(2)
				return []string{
					"directory entry for block 0x3 lists core 2, which holds nothing",
				}
			},
		},
		{
			name: "tracked-and-hidden",
			mk:   stashFactory(4, 2, 0, false),
			run: func(t *testing.T, f *Fabric) []string {
				load(t, f, 0, 3)
				f.Banks[f.HomeBank(3)].LLC().Probe(3).Flags |= flagHidden
				return []string{
					"block 0x3 is both tracked and hidden",
				}
			},
		},
		{
			name: "hidden-multi-copy",
			mk:   stashFactory(4, 2, 0, false),
			run: func(t *testing.T, f *Fabric) []string {
				load(t, f, 0, 3)
				load(t, f, 1, 3)
				bk := f.Banks[f.HomeBank(3)]
				bk.Directory().Remove(3)
				bk.LLC().Probe(3).Flags |= flagHidden
				// Both the per-block residency check and the trailing
				// hidden-bit sweep fire, residency first.
				return []string{
					"hidden block 0x3 has 2 copies, want exactly 1",
					"hidden block 0x3 has 2 holders",
				}
			},
		},
		{
			name: "inflight-residue",
			mk:   fullMapFactory(),
			run: func(t *testing.T, f *Fabric) []string {
				// Plant unfinished work directly: a stalled access and an
				// unacknowledged eviction on core 1, an open transaction on
				// core 2, and an open bank transaction. The audit reports
				// them in L1-id order (tbes, stalls, evictions) before the
				// bank sweep.
				f.L1s[1].stalled = append(f.L1s[1].stalled, pendingAccess{}, pendingAccess{})
				f.L1s[1].evict.put(8, evictBuf{})
				f.L1s[2].tbes.put(4, &l1TBE{})
				f.Banks[0].tbes.put(12, &dirTBE{})
				return []string{
					"core 1 has 2 stalled accesses",
					"core 1 has an unacknowledged eviction for block 0x8",
					"core 2 has an unfinished transaction for block 0x4",
					"bank 0 has 1 unfinished transactions",
				}
			},
		},
		{
			name: "block-then-core-order",
			mk:   fullMapFactory(),
			run: func(t *testing.T, f *Fabric) []string {
				// Violations on two blocks and two cores: output must sort
				// by block first, then core, regardless of corruption order.
				load(t, f, 0, 5)
				load(t, f, 1, 5)
				load(t, f, 0, 3)
				load(t, f, 1, 3)
				e5 := f.Banks[f.HomeBank(5)].Directory().Probe(5)
				e5.Sharers.Remove(1)
				e5.Sharers.Remove(0)
				e3 := f.Banks[f.HomeBank(3)].Directory().Probe(3)
				e3.Sharers.Remove(1)
				return []string{
					"directory entry for block 0x3 omits holder core 1",
					"directory entry for block 0x5 omits holder core 0",
					"directory entry for block 0x5 omits holder core 1",
				}
			},
		},
	}

	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			f := testFabric(t, 4, tc.mk)
			want := tc.run(t, f)
			got := Audit(f)
			if !slices.Equal(got, want) {
				t.Errorf("Audit output drifted.\n got: %q\nwant: %q", got, want)
			}
		})
	}
}
