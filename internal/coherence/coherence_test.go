package coherence

import (
	"fmt"
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/noc"
)

// dirFactory builds one directory slice per bank.
type dirFactory func(bank int) (core.Directory, error)

func fullMapFactory() dirFactory {
	return func(int) (core.Directory, error) { return core.NewFullMap(), nil }
}

// sparseFactory builds tiny sparse slices to force conflicts in tests.
func sparseFactory(sets, ways int, shift uint) dirFactory {
	return func(int) (core.Directory, error) {
		return core.NewSparse(core.AssocConfig{Sets: sets, Ways: ways, IndexShift: shift})
	}
}

func stashFactory(sets, ways int, shift uint, singletonS bool) dirFactory {
	return func(int) (core.Directory, error) {
		return core.NewStash(core.StashConfig{
			AssocConfig:          core.AssocConfig{Sets: sets, Ways: ways, IndexShift: shift},
			StashSingletonShared: singletonS,
		})
	}
}

func cuckooFactory(ways, slots int) dirFactory {
	return func(bank int) (core.Directory, error) {
		return core.NewCuckoo(core.CuckooConfig{Ways: ways, SlotsPerWay: slots, Seed: int64(bank + 1)})
	}
}

// meshFor picks a mesh geometry for a core count.
func meshFor(cores int) noc.Config {
	var w, h int
	switch cores {
	case 1:
		w, h = 1, 1
	case 2:
		w, h = 2, 1
	case 4:
		w, h = 2, 2
	case 8:
		w, h = 4, 2
	case 16:
		w, h = 4, 4
	default:
		panic(fmt.Sprintf("no mesh for %d cores", cores))
	}
	return noc.DefaultConfig(w, h)
}

// log2 of a power of two.
func log2(n int) uint {
	var s uint
	for 1<<s < n {
		s++
	}
	return s
}

type fabricOpt func(*BuildConfig)

func withSilentEvictions() fabricOpt {
	return func(c *BuildConfig) { c.Params.SilentCleanEvictions = true }
}

func withL1(sets, ways int) fabricOpt {
	return func(c *BuildConfig) { c.L1.Sets, c.L1.Ways = sets, ways }
}

func withLLC(sets, ways int) fabricOpt {
	return func(c *BuildConfig) { c.LLC.Sets, c.LLC.Ways = sets, ways }
}

// testFabric assembles a small machine: tiny L1s (8 lines) and LLC banks
// (64 lines each) so tests exercise evictions quickly.
func testFabric(t testing.TB, cores int, mk dirFactory, opts ...fabricOpt) *Fabric {
	t.Helper()
	cfg := BuildConfig{
		Params: DefaultParams(cores),
		Mesh:   meshFor(cores),
		L1:     cache.Config{Name: "l1", Sets: 4, Ways: 2},
		LLC:    cache.Config{Name: "llc", Sets: 16, Ways: 4, IndexShift: log2(cores)},
		NewDirectory: func(bank int) (core.Directory, error) {
			return mk(bank)
		},
	}
	for _, o := range opts {
		o(&cfg)
	}
	f, err := NewFabric(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// access drives one reference through a core's L1 and drains the machine,
// failing the test if it does not complete.
func access(t testing.TB, f *Fabric, coreID int, block mem.Block, write bool) {
	t.Helper()
	done := false
	f.L1s[coreID].Access(mem.Access{Addr: mem.AddrOf(block), Write: write}, func() { done = true })
	f.Engine.Run(0)
	if !done {
		t.Fatalf("access by core %d to block %#x did not complete (deadlock)", coreID, uint64(block))
	}
}

func load(t testing.TB, f *Fabric, coreID int, b mem.Block)  { access(t, f, coreID, b, false) }
func store(t testing.TB, f *Fabric, coreID int, b mem.Block) { access(t, f, coreID, b, true) }

// finishAndAudit drains and verifies oracle + invariants.
func finishAndAudit(t testing.TB, f *Fabric) {
	t.Helper()
	f.Engine.Run(0)
	if err := f.Checker.Err(); err != nil {
		t.Fatal(err)
	}
	if bad := Audit(f); len(bad) != 0 {
		t.Fatalf("audit failed: %v", bad)
	}
}

func l1State(f *Fabric, coreID int, b mem.Block) mem.State {
	if ln := f.L1s[coreID].Cache().Probe(b); ln != nil {
		return ln.State
	}
	return mem.Invalid
}

// --- basic MESI behavior ---------------------------------------------------

func TestColdReadGrantsExclusive(t *testing.T) {
	f := testFabric(t, 4, fullMapFactory())
	load(t, f, 0, 100)
	if st := l1State(f, 0, 100); st != mem.Exclusive {
		t.Fatalf("state after cold read = %v, want E", st)
	}
	finishAndAudit(t, f)
}

func TestSilentEToMUpgrade(t *testing.T) {
	f := testFabric(t, 4, fullMapFactory())
	load(t, f, 0, 100)
	store(t, f, 0, 100)
	if st := l1State(f, 0, 100); st != mem.Modified {
		t.Fatalf("state = %v, want M", st)
	}
	// The store hit locally: exactly one GetS reached the banks.
	var reqs int64
	for _, bk := range f.Banks {
		reqs += bk.getS.Value() + bk.getM.Value()
	}
	if reqs != 1 {
		t.Fatalf("bank requests = %d, want 1 (silent upgrade)", reqs)
	}
	finishAndAudit(t, f)
}

func TestReadSharingDowngradesOwner(t *testing.T) {
	f := testFabric(t, 4, fullMapFactory())
	store(t, f, 0, 7)
	load(t, f, 1, 7) // must observe core 0's value (oracle-checked)
	if st := l1State(f, 0, 7); st != mem.Shared {
		t.Fatalf("owner state = %v, want S", st)
	}
	if st := l1State(f, 1, 7); st != mem.Shared {
		t.Fatalf("reader state = %v, want S", st)
	}
	finishAndAudit(t, f)
}

func TestWriteInvalidatesSharers(t *testing.T) {
	f := testFabric(t, 4, fullMapFactory())
	load(t, f, 0, 9)
	load(t, f, 1, 9)
	load(t, f, 2, 9)
	store(t, f, 3, 9)
	for c := 0; c < 3; c++ {
		if st := l1State(f, c, 9); st != mem.Invalid {
			t.Fatalf("core %d state = %v, want I", c, st)
		}
	}
	if st := l1State(f, 3, 9); st != mem.Modified {
		t.Fatalf("writer state = %v, want M", st)
	}
	load(t, f, 0, 9) // must see core 3's value
	finishAndAudit(t, f)
}

func TestUpgradeFromShared(t *testing.T) {
	f := testFabric(t, 4, fullMapFactory())
	load(t, f, 0, 5)
	load(t, f, 1, 5)
	store(t, f, 0, 5) // upgrade: invalidates core 1
	if st := l1State(f, 1, 5); st != mem.Invalid {
		t.Fatalf("core 1 state = %v, want I", st)
	}
	if st := l1State(f, 0, 5); st != mem.Modified {
		t.Fatalf("core 0 state = %v, want M", st)
	}
	load(t, f, 1, 5)
	finishAndAudit(t, f)
}

func TestMigratorySharing(t *testing.T) {
	f := testFabric(t, 4, fullMapFactory())
	for round := 0; round < 3; round++ {
		for c := 0; c < 4; c++ {
			load(t, f, c, 77)
			store(t, f, c, 77)
		}
	}
	finishAndAudit(t, f)
}

func TestDirtyEvictionWritesBack(t *testing.T) {
	f := testFabric(t, 1, fullMapFactory(), withL1(1, 1)) // 1-line L1
	store(t, f, 0, 1)
	store(t, f, 0, 2) // evicts dirty block 1 (PutM)
	load(t, f, 0, 1)  // refetch: oracle checks the written value survived
	if f.L1s[0].writebacks.Value() == 0 {
		t.Fatal("no writeback recorded")
	}
	finishAndAudit(t, f)
}

func TestL1ChurnManyBlocks(t *testing.T) {
	f := testFabric(t, 2, fullMapFactory())
	for i := 0; i < 64; i++ {
		store(t, f, 0, mem.Block(i))
	}
	for i := 0; i < 64; i++ {
		load(t, f, 1, mem.Block(i))
	}
	finishAndAudit(t, f)
}

// --- sparse directory: conflicts force recalls ------------------------------

func TestSparseConflictRecallsCachedBlocks(t *testing.T) {
	// 4 cores -> 4 banks; each bank's directory slice has 2 entries. The
	// L1 is 4x4 so core 0 can keep four bank-0 blocks (0,4,8,12) alive at
	// once — more than bank 0 can track.
	f := testFabric(t, 4, sparseFactory(1, 2, 0), withL1(4, 4))
	for i := 0; i < 16; i++ {
		load(t, f, 0, mem.Block(i))
	}
	var recalls int64
	for _, bk := range f.Banks {
		recalls += bk.invsSent[ReasonRecall].Value()
	}
	if recalls == 0 {
		t.Fatal("no recall invalidations despite directory conflicts")
	}
	// Re-touch everything; values must still be correct.
	for i := 0; i < 16; i++ {
		load(t, f, 0, mem.Block(i))
	}
	var coverage int64
	for _, l1 := range f.L1s {
		coverage += l1.coverageMisses.Value()
	}
	if coverage == 0 {
		t.Fatal("no coverage misses recorded after recalls")
	}
	finishAndAudit(t, f)
}

func TestSparseRecallOfDirtyBlockPreservesData(t *testing.T) {
	f := testFabric(t, 4, sparseFactory(1, 1, 0))
	store(t, f, 0, 0) // dirty, tracked by bank 0's single entry
	load(t, f, 0, 4)  // same bank (4%4==0): recalls block 0
	load(t, f, 1, 0)  // oracle verifies the dirty data survived the recall
	finishAndAudit(t, f)
}

// --- stash directory --------------------------------------------------------

func TestStashEvictsWithoutInvalidation(t *testing.T) {
	f := testFabric(t, 4, stashFactory(1, 2, 0, false), withL1(4, 4))
	// Core 0 makes 3 blocks E in bank 0 (blocks 0,4,8): its L1 keeps all
	// three, but the bank 0 slice holds 2.
	load(t, f, 0, 0)
	load(t, f, 0, 4)
	load(t, f, 0, 8)
	bk := f.Banks[0]
	if got := bk.Directory().Stats().Counter("stash_evictions").Value(); got == 0 {
		t.Fatal("no stash evictions")
	}
	if got := bk.invsSent[ReasonRecall].Value(); got != 0 {
		t.Fatalf("stash sent %d recall invalidations, want 0", got)
	}
	// All three blocks still live in core 0's L1 (that's the point).
	for _, b := range []mem.Block{0, 4, 8} {
		if st := l1State(f, 0, b); st != mem.Exclusive {
			t.Fatalf("block %d state = %v, want E (not invalidated)", b, st)
		}
	}
	if bk.hiddenSet.Value() == 0 {
		t.Fatal("hidden bit never set")
	}
	finishAndAudit(t, f)
}

func TestDiscoveryFindsHiddenCleanBlock(t *testing.T) {
	f := testFabric(t, 4, stashFactory(1, 1, 0, false))
	load(t, f, 0, 0) // E at core 0, tracked
	load(t, f, 0, 4) // same bank: entry for 0 stashed, hidden bit set
	// Core 1 reads block 0: directory miss, hidden -> discovery must find
	// core 0's copy and downgrade it.
	load(t, f, 1, 0)
	bk := f.Banks[0]
	if bk.discBroadcasts.Value() == 0 || bk.discFound.Value() == 0 {
		t.Fatalf("discovery not exercised: broadcasts=%d found=%d",
			bk.discBroadcasts.Value(), bk.discFound.Value())
	}
	if st := l1State(f, 0, 0); st != mem.Shared {
		t.Fatalf("hidden owner state = %v, want S after downgrade", st)
	}
	if st := l1State(f, 1, 0); st != mem.Shared {
		t.Fatalf("requester state = %v, want S", st)
	}
	finishAndAudit(t, f)
}

func TestDiscoveryRecoversHiddenDirtyData(t *testing.T) {
	// The critical stash-correctness case: a *modified* block's entry is
	// stashed; a later reader must get the dirty data via discovery, not a
	// stale LLC copy. The oracle would flag any staleness.
	f := testFabric(t, 4, stashFactory(1, 1, 0, false))
	store(t, f, 0, 0) // M at core 0
	load(t, f, 0, 4)  // stashes block 0's entry (hidden, dirty copy live)
	load(t, f, 1, 0)  // discovery must return core 0's modified data
	bk := f.Banks[0]
	if bk.discFound.Value() == 0 {
		t.Fatal("discovery did not find the hidden dirty block")
	}
	finishAndAudit(t, f)
}

func TestDiscoveryInvalidateOnWrite(t *testing.T) {
	f := testFabric(t, 4, stashFactory(1, 1, 0, false))
	store(t, f, 0, 0)
	load(t, f, 0, 4)  // stash block 0
	store(t, f, 1, 0) // GetM on hidden block: discovery-invalidate
	if st := l1State(f, 0, 0); st != mem.Invalid {
		t.Fatalf("hidden owner state = %v, want I after write discovery", st)
	}
	load(t, f, 2, 0) // sees core 1's value
	finishAndAudit(t, f)
}

func TestStaleHiddenBitCleared(t *testing.T) {
	// Silent clean evictions: the hidden owner drops its copy without
	// telling anyone; a later discovery finds nothing and must clear the
	// stale bit and serve from the LLC.
	f := testFabric(t, 4, stashFactory(1, 1, 0, false), withSilentEvictions(), withL1(1, 1))
	load(t, f, 0, 0) // E at core 0 (L1 has exactly 1 line)
	load(t, f, 0, 4) // bank 0: stash entry 0 (hidden) — and L1 evicts 0 silently!
	load(t, f, 1, 0) // discovery: nobody has it -> stale
	bk := f.Banks[0]
	if bk.discStale.Value() == 0 {
		t.Fatalf("stale discovery not recorded (found=%d)", bk.discFound.Value())
	}
	finishAndAudit(t, f)
}

func TestNotifiedEvictionClearsHiddenBit(t *testing.T) {
	// With notified evictions, the hidden owner's PutE must clear the
	// hidden bit so no discovery is needed later.
	f := testFabric(t, 4, stashFactory(1, 1, 0, false), withL1(1, 1))
	load(t, f, 0, 0) // E at core 0
	load(t, f, 1, 4) // same bank: core 1's request stashes block 0's entry
	bk := f.Banks[0]
	if bk.hiddenSet.Value() == 0 {
		t.Fatal("entry was not stashed")
	}
	load(t, f, 0, 1) // core 0's 1-line L1 evicts block 0 -> PutE to bank 0
	if bk.hiddenCleared.Value() == 0 {
		t.Fatal("PutE did not clear the hidden bit")
	}
	load(t, f, 2, 0)
	if bk.discBroadcasts.Value() != 0 {
		t.Fatal("discovery ran although the hidden bit was cleared")
	}
	finishAndAudit(t, f)
}

func TestHiddenDirtyWritebackClearsBitAndData(t *testing.T) {
	f := testFabric(t, 4, stashFactory(1, 1, 0, false), withL1(1, 1))
	store(t, f, 0, 0) // M at core 0
	load(t, f, 1, 4)  // same bank: stashes block 0's entry (hidden, dirty)
	bk := f.Banks[0]
	if bk.hiddenSet.Value() == 0 {
		t.Fatal("entry was not stashed")
	}
	load(t, f, 0, 1) // core 0 evicts block 0 -> PutM (hidden writeback)
	if bk.hiddenCleared.Value() == 0 {
		t.Fatal("hidden PutM did not clear the bit")
	}
	load(t, f, 2, 0) // oracle: must see core 0's value from the LLC
	finishAndAudit(t, f)
}

func TestLLCEvictionOfHiddenBlockDiscovers(t *testing.T) {
	// Force an LLC set conflict on a hidden block: its eviction must
	// broadcast a discovery-invalidate to maintain inclusion.
	f := testFabric(t, 1, stashFactory(1, 1, 0, false), withLLC(1, 2), withL1(4, 2))
	store(t, f, 0, 0)
	load(t, f, 0, 1) // stashes block 0's entry (dir has 1 slot)
	load(t, f, 0, 2) // LLC (2 lines) must evict a line; eventually hits hidden 0
	load(t, f, 0, 3)
	bk := f.Banks[0]
	if bk.llcEvictHidden.Value() == 0 {
		t.Fatalf("no hidden LLC eviction (untracked=%d recalls=%d)",
			bk.llcEvictUntracked.Value(), bk.llcEvictRecalls.Value())
	}
	load(t, f, 0, 0) // refetch from memory: oracle checks dirty data survived
	finishAndAudit(t, f)
}

func TestLLCEvictionRecallsTrackedBlock(t *testing.T) {
	f := testFabric(t, 1, fullMapFactory(), withLLC(1, 2), withL1(4, 2))
	store(t, f, 0, 0)
	store(t, f, 0, 1)
	store(t, f, 0, 2) // LLC full: must recall a tracked dirty block
	bk := f.Banks[0]
	if bk.llcEvictRecalls.Value() == 0 {
		t.Fatal("no LLC-eviction recall")
	}
	load(t, f, 0, 0)
	load(t, f, 0, 1)
	load(t, f, 0, 2)
	finishAndAudit(t, f)
}

func TestStashSingletonSharedMode(t *testing.T) {
	f := testFabric(t, 4, stashFactory(1, 1, 0, true))
	// Two cores share block 0 (2 sharers: not stashable even in this
	// mode); then core 2 reads block 4 in the same bank -> recall needed.
	load(t, f, 0, 0)
	load(t, f, 1, 0)
	load(t, f, 2, 4)
	bk := f.Banks[0]
	if v := bk.invsSent[ReasonRecall].Value(); v == 0 {
		t.Fatal("two-sharer entry was not recalled")
	}
	// Now a singleton-S: core 3 reads block 8 (same bank). Block 4 is E at
	// core 2 (stashable); after it is stashed, make a singleton-S entry and
	// force another conflict.
	load(t, f, 3, 8)
	finishAndAudit(t, f)
}

// --- cuckoo -----------------------------------------------------------------

func TestCuckooAbsorbsConflicts(t *testing.T) {
	f := testFabric(t, 4, cuckooFactory(4, 8)) // 32 entries per bank
	for i := 0; i < 24; i++ {
		load(t, f, 0, mem.Block(i)) // only 8 stay in L1; rest notified away
	}
	finishAndAudit(t, f)
}

// --- mixed/regression -------------------------------------------------------

func TestAllOrganizationsSameScenario(t *testing.T) {
	factories := map[string]dirFactory{
		"fullmap": fullMapFactory(),
		"sparse":  sparseFactory(2, 2, 0),
		"stash":   stashFactory(2, 2, 0, false),
		"cuckoo":  cuckooFactory(2, 4),
	}
	for name, mk := range factories {
		t.Run(name, func(t *testing.T) {
			f := testFabric(t, 4, mk)
			for i := 0; i < 20; i++ {
				c := i % 4
				b := mem.Block(i % 6)
				access(t, f, c, b, i%3 == 0)
			}
			// Shared hot block with writes.
			for i := 0; i < 8; i++ {
				store(t, f, i%4, 100)
				load(t, f, (i+1)%4, 100)
			}
			finishAndAudit(t, f)
		})
	}
}

func TestProcessorsDrive(t *testing.T) {
	f := testFabric(t, 4, stashFactory(2, 2, 0, false))
	sources := make([]AccessSource, 4)
	for c := 0; c < 4; c++ {
		var accs []mem.Access
		for i := 0; i < 50; i++ {
			b := mem.Block((c*13 + i*3) % 24)
			accs = append(accs, mem.Access{Addr: mem.AddrOf(b), Write: i%4 == 0})
		}
		sources[c] = &SliceSource{Accesses: accs}
	}
	procs, err := f.AttachProcessors(sources)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Drive(procs, 0); err != nil {
		t.Fatal(err)
	}
	for _, p := range procs {
		if p.Stats().Counter("accesses_completed").Value() != 50 {
			t.Fatalf("core %d completed %d accesses", p.id, p.completed.Value())
		}
		if !p.Finished() || p.FinishCycle() == 0 {
			t.Fatal("processor did not record completion")
		}
	}
}

func TestDriveDetectsEventLimit(t *testing.T) {
	f := testFabric(t, 2, fullMapFactory())
	srcs := []AccessSource{
		&SliceSource{Accesses: []mem.Access{{Addr: 0}, {Addr: 64}}},
		&SliceSource{Accesses: []mem.Access{{Addr: 128}}},
	}
	procs, _ := f.AttachProcessors(srcs)
	if err := f.Drive(procs, 3); err == nil {
		t.Fatal("Drive with a tiny event limit should fail")
	}
}

func TestSilentEvictionsEndToEnd(t *testing.T) {
	f := testFabric(t, 4, sparseFactory(2, 2, 0), withSilentEvictions())
	for i := 0; i < 40; i++ {
		access(t, f, i%4, mem.Block(i%12), i%5 == 0)
	}
	f.Engine.Run(0)
	if err := f.Checker.Err(); err != nil {
		t.Fatal(err)
	}
	// Note: the full audit's precision check is skipped in silent mode by
	// design; run the rest.
	if bad := Audit(f); len(bad) != 0 {
		t.Fatalf("audit: %v", bad)
	}
}

func TestMsgStringAndReasonNames(t *testing.T) {
	for mt := MsgGetS; mt <= MsgDiscoverResp; mt++ {
		if mt.String() == "" {
			t.Fatal("empty message name")
		}
	}
	for r := ReasonDemand; r <= ReasonLLCEvict; r++ {
		if r.String() == "" {
			t.Fatal("empty reason name")
		}
	}
	m := &Msg{Type: MsgGetS, Block: 4, From: 2}
	if m.String() == "" {
		t.Fatal("empty message string")
	}
}

func TestSimultaneousUpgradeRace(t *testing.T) {
	// Both cores hold the block Shared and store "at the same time": the
	// directory serializes the upgrades; exactly one in-place grant and one
	// full-data grant; the oracle checks the final values.
	f := testFabric(t, 4, fullMapFactory())
	load(t, f, 0, 9)
	load(t, f, 1, 9)
	srcs := []AccessSource{
		&SliceSource{Accesses: []mem.Access{{Addr: mem.AddrOf(9), Write: true}}},
		&SliceSource{Accesses: []mem.Access{{Addr: mem.AddrOf(9), Write: true}}},
		&SliceSource{}, &SliceSource{},
	}
	procs, _ := f.AttachProcessors(srcs)
	if err := f.Drive(procs, 1_000_000); err != nil {
		t.Fatal(err)
	}
	// Exactly one M copy remains.
	owners := 0
	for c := 0; c < 4; c++ {
		if l1State(f, c, 9) == mem.Modified {
			owners++
		}
	}
	if owners != 1 {
		t.Fatalf("%d Modified copies after racing upgrades, want 1", owners)
	}
	load(t, f, 2, 9) // observes the last writer
	finishAndAudit(t, f)
}

func TestReadersRaceSingleWriter(t *testing.T) {
	// One writer hammers a block while three readers poll it.
	f := testFabric(t, 4, stashFactory(2, 2, 0, false))
	mk := func(write bool) AccessSource {
		accs := make([]mem.Access, 100)
		for i := range accs {
			accs[i] = mem.Access{Addr: mem.AddrOf(9), Write: write}
		}
		return &SliceSource{Accesses: accs}
	}
	procs, _ := f.AttachProcessors([]AccessSource{mk(true), mk(false), mk(false), mk(false)})
	if err := f.Drive(procs, 10_000_000); err != nil {
		t.Fatal(err)
	}
}
