package coherence

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/noc"
	"repro/internal/sim"
)

// BuildConfig assembles a complete fabric: mesh geometry, controller
// parameters, per-tile cache shapes and a directory factory (one slice per
// bank).
type BuildConfig struct {
	Params Params
	Mesh   noc.Config
	L1     cache.Config // per-core; Name is suffixed with the core id
	// L2, when non-nil, adds an inclusive private L2 per core; the
	// directory then tracks L2 contents.
	L2  *cache.Config
	LLC cache.Config // per-bank; Name is suffixed with the bank id
	// NewDirectory builds bank's directory slice.
	NewDirectory func(bank int) (core.Directory, error)
}

// NewFabric constructs and wires engine, mesh, memory, checker, banks and
// L1s. Processors are attached afterwards with AttachProcessors.
func NewFabric(cfg BuildConfig) (*Fabric, error) {
	if err := cfg.Params.Validate(); err != nil {
		return nil, err
	}
	tiles := cfg.Mesh.Width * cfg.Mesh.Height
	if tiles != cfg.Params.Cores {
		return nil, fmt.Errorf("coherence: mesh has %d tiles for %d cores", tiles, cfg.Params.Cores)
	}
	engine := sim.NewEngine()
	mesh, err := noc.New(engine, cfg.Mesh)
	if err != nil {
		return nil, err
	}
	f := &Fabric{
		Engine:  engine,
		Mesh:    mesh,
		Params:  cfg.Params,
		Memory:  NewMemory(),
		Checker: NewChecker(),
	}
	f.L1s = make([]*L1, cfg.Params.Cores)
	f.Banks = make([]*Bank, cfg.Params.Cores)
	for i := 0; i < cfg.Params.Cores; i++ {
		l1, bank, err := buildTile(f, i, &cfg)
		if err != nil {
			return nil, err
		}
		f.L1s[i] = l1
		f.Banks[i] = bank
		mesh.Attach(noc.NodeID(i), &tile{l1: l1, bank: bank})
	}
	return f, nil
}

// buildTile constructs tile i's controllers wired to fabric f — the whole
// fabric in serial mode, tile i's view in parallel mode (the controllers
// only ever touch their own fabric pointer at runtime, which is what makes
// the per-tile views sufficient).
func buildTile(f *Fabric, i int, cfg *BuildConfig) (*L1, *Bank, error) {
	// Each tile's copy of a cache config gets its own random-policy
	// seed, offset from the configured base, so cores don't march
	// through identical victim sequences in lockstep.
	l1Cfg := cfg.L1
	l1Cfg.Name = fmt.Sprintf("%s.%d", cfg.L1.Name, i)
	l1Cfg.Seed = cfg.L1.Seed + int64(i)*7919
	var l2Cfg *cache.Config
	if cfg.L2 != nil {
		c2 := *cfg.L2
		c2.Name = fmt.Sprintf("%s.%d", cfg.L2.Name, i)
		c2.Seed = cfg.L2.Seed + int64(i)*7919
		l2Cfg = &c2
	}
	l1, err := NewL1(i, f, l1Cfg, l2Cfg)
	if err != nil {
		return nil, nil, err
	}
	dir, err := cfg.NewDirectory(i)
	if err != nil {
		return nil, nil, err
	}
	llcCfg := cfg.LLC
	llcCfg.Name = fmt.Sprintf("%s.%d", cfg.LLC.Name, i)
	llcCfg.Seed = cfg.LLC.Seed + int64(i)*7919
	bank, err := NewBank(i, f, dir, llcCfg)
	if err != nil {
		return nil, nil, err
	}
	return l1, bank, nil
}

// AttachProcessors binds one access source per core and returns the
// processors (not yet started).
func (f *Fabric) AttachProcessors(sources []AccessSource) ([]*Processor, error) {
	if len(sources) != f.Params.Cores {
		return nil, fmt.Errorf("coherence: %d sources for %d cores", len(sources), f.Params.Cores)
	}
	procs := make([]*Processor, len(sources))
	for i, src := range sources {
		procs[i] = newProcessor(i, f, f.L1s[i], src)
	}
	return procs, nil
}

// Drive starts the processors and runs the engine to completion. It
// returns an error if the simulation deadlocks (events drain with a
// processor unfinished), exceeds maxEvents (0 = unlimited), fails the value
// oracle, or fails the quiescent-state audit.
func (f *Fabric) Drive(procs []*Processor, maxEvents uint64) error {
	for _, p := range procs {
		p.Start()
	}
	f.Engine.Run(maxEvents)
	if f.Engine.Pending() != 0 {
		return fmt.Errorf("coherence: event limit %d reached with %d events pending", maxEvents, f.Engine.Pending())
	}
	for _, p := range procs {
		if !p.Finished() {
			return fmt.Errorf("coherence: deadlock — core %d stalled at cycle %d with queue drained%s",
				p.id, f.Engine.Now(), f.describeStall(p))
		}
	}
	if err := f.Checker.Err(); err != nil {
		return err
	}
	// The audit walks every cache and directory slice; benchmark-scale runs
	// that disabled the checker skip it along with load verification.
	if f.Checker.Enabled() {
		if bad := Audit(f); len(bad) != 0 {
			return fmt.Errorf("coherence: audit failed: %s (and %d more)", bad[0], len(bad)-1)
		}
	}
	return nil
}

// describeStall summarizes a stalled core's outstanding state for deadlock
// reports.
func (f *Fabric) describeStall(p *Processor) string {
	if p.l1.tbes.len() == 0 {
		return " (no outstanding miss)"
	}
	s := ""
	p.l1.tbes.forEach(func(b mem.Block, _ *l1TBE) {
		bank := f.Banks[f.HomeBank(b)]
		s += fmt.Sprintf(": waiting on block %#x", uint64(b))
		if tbe, ok := bank.tbes.get(b); ok {
			s += fmt.Sprintf(" (bank %d transaction waiting for %d acks)", bank.id, tbe.waitAcks)
			if tbe.qlen != 0 {
				s += fmt.Sprintf(" (%d requests queued)", tbe.qlen)
			}
		}
	})
	return s
}
