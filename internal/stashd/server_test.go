package stashd

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/runner"
	"repro/internal/testutil/leakcheck"
)

// tinyBase is a request base small enough that one simulation takes a few
// milliseconds.
func tinyBase() RunRequest {
	return RunRequest{
		Quick:           true,
		Cores:           4,
		AccessesPerCore: 1500,
		WorkloadScale:   0.25,
	}
}

func tinySweep() SweepRequest {
	return SweepRequest{
		Base:      tinyBase(),
		Workloads: []string{"blackscholes"},
		DirKinds:  []string{"stash"},
		Coverages: []float64{1, 0.5},
	}
}

func newTestServer(t *testing.T, cacheDir string) (*httptest.Server, *runner.Runner) {
	t.Helper()
	r := runner.New(runner.Options{Workers: 2, CacheDir: cacheDir})
	ts := httptest.NewServer(NewServer(r))
	t.Cleanup(func() {
		ts.Close()
		r.Close()
	})
	return ts, r
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// readSweep decodes a /sweep ndjson stream into job lines plus the final
// done line.
func readSweep(t *testing.T, resp *http.Response) ([]SweepLine, SweepLine) {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("sweep content-type = %q", ct)
	}
	var jobs []SweepLine
	var done SweepLine
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var line SweepLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad sweep line %q: %v", sc.Text(), err)
		}
		switch line.Type {
		case "job":
			jobs = append(jobs, line)
		case "done":
			done = line
		default:
			t.Fatalf("unknown line type %q", line.Type)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if done.Type != "done" {
		t.Fatal("stream ended without a done line")
	}
	return jobs, done
}

func metricValue(t *testing.T, ts *httptest.Server, name string) float64 {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var v float64
		if _, err := fmt.Sscanf(sc.Text(), name+" %f", &v); err == nil {
			return v
		}
	}
	t.Fatalf("metric %s not found", name)
	return 0
}

func TestRunEndpointAndJobStatus(t *testing.T) {
	leakcheck.Check(t)
	ts, _ := newTestServer(t, "")

	req := tinyBase()
	req.Workload = "blackscholes"
	req.DirKind = "stash"
	req.Coverage = 0.5
	resp := postJSON(t, ts.URL+"/run", req)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run status = %d", resp.StatusCode)
	}
	var rr RunResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	if rr.Result == nil || rr.Result.Cycles == 0 {
		t.Fatalf("run returned no result: %+v", rr)
	}
	if rr.JobID == "" {
		t.Fatal("run returned no job id")
	}

	st, err := http.Get(ts.URL + "/jobs/" + rr.JobID)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Body.Close()
	if st.StatusCode != http.StatusOK {
		t.Fatalf("jobs status = %d", st.StatusCode)
	}
	var js runner.JobStatus
	if err := json.NewDecoder(st.Body).Decode(&js); err != nil {
		t.Fatal(err)
	}
	if js.State != runner.StateDone || js.Workload != "blackscholes" {
		t.Fatalf("job status = %+v", js)
	}

	if missing, err := http.Get(ts.URL + "/jobs/job-999999"); err != nil {
		t.Fatal(err)
	} else {
		missing.Body.Close()
		if missing.StatusCode != http.StatusNotFound {
			t.Fatalf("missing job status = %d, want 404", missing.StatusCode)
		}
	}
}

func TestBadRequestsRejected(t *testing.T) {
	leakcheck.Check(t)
	ts, _ := newTestServer(t, "")
	for name, body := range map[string]any{
		"no workload":      RunRequest{Quick: true},
		"unknown dir kind": RunRequest{Workload: "blackscholes", DirKind: "btree"},
		"bad cores":        RunRequest{Workload: "blackscholes", Cores: 7},
	} {
		resp := postJSON(t, ts.URL+"/run", body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", name, resp.StatusCode)
		}
	}

	huge := SweepRequest{Base: tinyBase(), Workloads: []string{"blackscholes"},
		DirKinds: []string{"stash"}, Coverages: make([]float64, 5000)}
	for i := range huge.Coverages {
		huge.Coverages[i] = float64(i + 1)
	}
	resp := postJSON(t, ts.URL+"/sweep", huge)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized sweep status = %d, want 400", resp.StatusCode)
	}
}

// TestConcurrentSweepsShareDiskCache is the acceptance scenario: two
// concurrent identical sweeps against one server simulate each config at
// most once (coalescing or cache hits cover the overlap), and a third
// identical sweep is served entirely from cache, which /metrics reports.
func TestConcurrentSweepsShareDiskCache(t *testing.T) {
	leakcheck.Check(t)
	dir := t.TempDir()
	ts, _ := newTestServer(t, dir)
	sweep := tinySweep()

	var wg sync.WaitGroup
	lines := make([][]SweepLine, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp := postJSON(t, ts.URL+"/sweep", sweep)
			jobs, done := readSweep(t, resp)
			if done.Failures != 0 {
				t.Errorf("sweep %d: %d failures", i, done.Failures)
			}
			if len(jobs) != 2 {
				t.Errorf("sweep %d: %d job lines, want 2", i, len(jobs))
			}
			lines[i] = jobs
		}(i)
	}
	wg.Wait()

	// The two sweeps raced over the same two configs: the runner must
	// have simulated each config exactly once.
	if started := metricValue(t, ts, "stashd_jobs_started_total"); started != 2 {
		t.Fatalf("concurrent identical sweeps simulated %v configs, want 2", started)
	}

	// A third identical sweep must come entirely from cache...
	resp := postJSON(t, ts.URL+"/sweep", sweep)
	jobs, done := readSweep(t, resp)
	if done.CacheHits != len(jobs) {
		t.Fatalf("repeat sweep cache hits = %d, want %d", done.CacheHits, len(jobs))
	}
	for _, l := range jobs {
		if l.CacheHit == "" || l.Cycles == 0 {
			t.Fatalf("repeat sweep line not from cache: %+v", l)
		}
	}
	// ... and /metrics must report it.
	if hits := metricValue(t, ts, "stashd_cache_hits_total"); hits < 2 {
		t.Fatalf("stashd_cache_hits_total = %v, want >= 2", hits)
	}
	if started := metricValue(t, ts, "stashd_jobs_started_total"); started != 2 {
		t.Fatalf("repeat sweep re-simulated: started = %v, want 2", started)
	}

	// A brand-new server process over the same cache dir serves the sweep
	// from disk without simulating anything.
	ts2, _ := newTestServer(t, dir)
	resp2 := postJSON(t, ts2.URL+"/sweep", sweep)
	_, done2 := readSweep(t, resp2)
	if done2.CacheHits != 2 || done2.Failures != 0 {
		t.Fatalf("restarted server done line = %+v, want 2 cache hits", done2)
	}
	if disk := metricValue(t, ts2, "stashd_cache_hits_disk_total"); disk != 2 {
		t.Fatalf("restarted server disk hits = %v, want 2", disk)
	}
}

func TestSweepDefaultsAndResultsConsistency(t *testing.T) {
	leakcheck.Check(t)
	ts, _ := newTestServer(t, "")
	// Explicit single-workload sweep over the default kind/coverage axes
	// would be 12 runs; narrow the axes but leave kinds to the default.
	sweep := SweepRequest{
		Base:      tinyBase(),
		Workloads: []string{"blackscholes"},
		Coverages: []float64{0.5},
	}
	resp := postJSON(t, ts.URL+"/sweep", sweep)
	jobs, done := readSweep(t, resp)
	if len(jobs) != 2 || done.Jobs != 2 { // sparse + stash by default
		t.Fatalf("default dir kinds: %d lines, done=%+v, want 2", len(jobs), done)
	}
	kinds := map[string]bool{}
	for _, l := range jobs {
		kinds[l.DirKind] = true
		if l.Error != "" {
			t.Fatalf("job failed: %+v", l)
		}
		if l.Cycles == 0 || l.AccessesPerKCycle <= 0 {
			t.Fatalf("job line missing results: %+v", l)
		}
	}
	if !kinds["sparse"] || !kinds["stash"] {
		t.Fatalf("default sweep kinds = %v, want sparse and stash", kinds)
	}
}

// TestSweepClientDisconnectLeaksNoGoroutines is the regression test for
// the handleSweep goroutine leak: with an unbuffered lines channel, a
// client disconnect mid-stream stranded every remaining waiter goroutine
// on a send nobody would ever receive.
func TestSweepClientDisconnectLeaksNoGoroutines(t *testing.T) {
	leakcheck.Check(t)
	// One worker and deliberately slower simulations keep most of the
	// sweep queued while the client walks away mid-stream.
	r := runner.New(runner.Options{Workers: 1})
	ts := httptest.NewServer(NewServer(r))
	t.Cleanup(func() {
		ts.Close()
		r.Close()
	})
	base := tinyBase()
	base.AccessesPerCore = 30000
	sweep := SweepRequest{
		Base:      base,
		Workloads: []string{"blackscholes"},
		DirKinds:  []string{"sparse", "stash"},
		Coverages: []float64{1, 0.5, 0.25, 0.25, 0.125, 0.0625},
	} // 12 jobs through 1 worker: the stream is alive well past line one
	baseline := runtime.NumGoroutine()

	b, err := json.Marshal(sweep)
	if err != nil {
		t.Fatal(err)
	}
	client := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}
	resp, err := client.Post(ts.URL+"/sweep", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	// Read exactly one line, then slam the connection shut mid-stream.
	if _, err := bufio.NewReader(resp.Body).ReadString('\n'); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	client.CloseIdleConnections()

	// Every waiter goroutine must drain once the server notices the
	// disconnect; the abandoned simulations themselves finish in
	// milliseconds at this scale.
	start := time.Now()
	for {
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		if time.Since(start) > 10*time.Second {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("sweep waiters leaked: %d goroutines at baseline, %d after disconnect\n%s",
				baseline, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestRunClientCancellationIsNotA500: a client that disconnects before its
// /run completes has no usable response; the handler must not report the
// cancellation as a simulation failure.
func TestRunClientCancellationIsNotA500(t *testing.T) {
	leakcheck.Check(t)
	r := runner.New(runner.Options{Workers: 1})
	defer r.Close()
	srv := NewServer(r)

	rr := tinyBase()
	rr.Workload = "blackscholes"
	rr.DirKind = "stash"
	rr.Coverage = 1
	b, err := json.Marshal(rr)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // the client is already gone
	req := httptest.NewRequest("POST", "/run", bytes.NewReader(b)).WithContext(ctx)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code == http.StatusInternalServerError {
		t.Fatalf("client cancellation reported as 500: %s", rec.Body.String())
	}
	if rec.Body.Len() != 0 {
		t.Fatalf("handler wrote a body for a cancelled request: %s", rec.Body.String())
	}
}

func TestMetricsEndpointShape(t *testing.T) {
	leakcheck.Check(t)
	ts, _ := newTestServer(t, "")
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content-type = %q", ct)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	for _, want := range []string{
		"stashd_jobs_queued_total", "stashd_jobs_completed_total",
		"stashd_cache_hits_total", "stashd_cache_misses_total",
		"stashd_run_latency_p50_ms", "stashd_run_latency_p95_ms",
		"stashd_inflight_workers",
	} {
		if !strings.Contains(buf.String(), want+" ") {
			t.Errorf("metrics page missing %s:\n%s", want, buf.String())
		}
	}
}
