package stashd

import (
	"fmt"

	"repro/internal/experiments"
	"repro/internal/system"
	"repro/internal/workloads"
)

// RunRequest selects and overrides one simulation configuration. Zero
// fields keep the defaults of system.DefaultConfig (or QuickConfig when
// Quick is set), so the minimal request is {"workload":"canneal"}.
type RunRequest struct {
	Workload string  `json:"workload"`
	DirKind  string  `json:"dir,omitempty"`
	Coverage float64 `json:"coverage,omitempty"`
	Cores    int     `json:"cores,omitempty"`
	DirWays  int     `json:"dirWays,omitempty"`

	AccessesPerCore int     `json:"accessesPerCore,omitempty"`
	WorkloadScale   float64 `json:"workloadScale,omitempty"`
	Seed            int64   `json:"seed,omitempty"`

	// Quick scales the machine down (system.QuickConfig) — the right
	// default for interactive exploration.
	Quick bool `json:"quick,omitempty"`

	SilentCleanEvictions bool   `json:"silentCleanEvictions,omitempty"`
	ThreeHopForwarding   bool   `json:"threeHopForwarding,omitempty"`
	MSHRs                int    `json:"mshrs,omitempty"`
	PointerLimit         int    `json:"pointerLimit,omitempty"`
	L2Sets               int    `json:"l2Sets,omitempty"`
	L2Ways               int    `json:"l2Ways,omitempty"`
	SamplePeriod         uint64 `json:"samplePeriod,omitempty"`
	// Checker defaults to on; send false to trade auditing for speed.
	Checker *bool `json:"checker,omitempty"`
	// Shards > 0 runs the parallel engine with that many workers and
	// forces the checker off (parallel runs cannot host the globally
	// ordered value oracle). 0 keeps the serial engine.
	Shards int `json:"shards,omitempty"`
}

// Config resolves the request into a validated simulation config.
func (q *RunRequest) Config() (system.Config, error) {
	if q.Workload == "" {
		return system.Config{}, fmt.Errorf("stashd: workload is required")
	}
	// Resolve the workload name now so a typo is a 400 at the API edge,
	// not a simulation failure (a 500) after the job is queued.
	if _, err := workloads.Get(q.Workload); err != nil {
		return system.Config{}, err
	}
	cfg := system.DefaultConfig(q.Workload)
	if q.Quick {
		cfg = system.QuickConfig(q.Workload)
	}
	if q.DirKind != "" {
		cfg.DirKind = q.DirKind
	}
	if q.Coverage != 0 {
		cfg.Coverage = q.Coverage
	}
	if q.Cores != 0 {
		cfg.Cores = q.Cores
	}
	if q.DirWays != 0 {
		cfg.DirWays = q.DirWays
	}
	if q.AccessesPerCore != 0 {
		cfg.AccessesPerCore = q.AccessesPerCore
	}
	if q.WorkloadScale != 0 {
		cfg.WorkloadScale = q.WorkloadScale
	}
	if q.Seed != 0 {
		cfg.Seed = q.Seed
	}
	cfg.SilentCleanEvictions = q.SilentCleanEvictions
	cfg.ThreeHopForwarding = q.ThreeHopForwarding
	if q.MSHRs != 0 {
		cfg.MSHRs = q.MSHRs
	}
	if q.PointerLimit != 0 {
		cfg.PointerLimit = q.PointerLimit
	}
	if q.L2Sets != 0 {
		cfg.L2Sets = q.L2Sets
	}
	if q.L2Ways != 0 {
		cfg.L2Ways = q.L2Ways
	}
	if q.SamplePeriod != 0 {
		cfg.SamplePeriod = q.SamplePeriod
	}
	if q.Checker != nil {
		cfg.Checker = *q.Checker
	}
	if q.Shards > 0 {
		cfg.Shards = q.Shards
		cfg.Checker = false
	}
	return cfg, cfg.Validate()
}

// InternalRunRequest is the POST /internal/run body: one fully resolved
// configuration, dispatched by the fleet coordinator. Workers key their
// caches on exactly this config, so the coordinator's consistent-hash key
// and the worker's cache key always agree.
type InternalRunRequest struct {
	Config system.Config `json:"config"`
}

// RunResponse is the POST /run reply.
type RunResponse struct {
	JobID      string          `json:"jobId"`
	CacheHit   string          `json:"cacheHit,omitempty"`
	DurationMS float64         `json:"durationMs"`
	Result     *system.Results `json:"result"`
}

// SweepRequest expands into the cross product workloads x dirKinds x
// coverages over a shared base request. Empty axes take the paper's
// defaults: every built-in workload, sparse+stash, the six-point coverage
// axis of the evaluation.
type SweepRequest struct {
	Base      RunRequest `json:"base"`
	Workloads []string   `json:"workloads,omitempty"`
	DirKinds  []string   `json:"dirKinds,omitempty"`
	Coverages []float64  `json:"coverages,omitempty"`
}

// maxSweepConfigs bounds one request's expansion so a typo cannot enqueue
// an unbounded batch.
const maxSweepConfigs = 4096

// Configs expands the sweep. The expansion order is workload-major then
// directory kind then coverage, matching the harness's sweep order.
func (s *SweepRequest) Configs() ([]system.Config, error) {
	ws := s.Workloads
	if len(ws) == 0 {
		if s.Base.Workload != "" {
			ws = []string{s.Base.Workload}
		} else {
			ws = workloads.Names()
		}
	}
	kinds := s.DirKinds
	if len(kinds) == 0 {
		kinds = []string{system.DirSparse, system.DirStash}
	}
	covs := s.Coverages
	if len(covs) == 0 {
		covs = experiments.Coverages
	}
	n := len(ws) * len(kinds) * len(covs)
	if n == 0 {
		return nil, fmt.Errorf("stashd: empty sweep")
	}
	if n > maxSweepConfigs {
		return nil, fmt.Errorf("stashd: sweep expands to %d configs (limit %d)", n, maxSweepConfigs)
	}
	cfgs := make([]system.Config, 0, n)
	for _, w := range ws {
		for _, kind := range kinds {
			for _, cov := range covs {
				req := s.Base
				req.Workload = w
				req.DirKind = kind
				req.Coverage = cov
				cfg, err := req.Config()
				if err != nil {
					return nil, err
				}
				cfgs = append(cfgs, cfg)
			}
		}
	}
	return cfgs, nil
}

// SweepLine is one chunked-JSON progress line of POST /sweep: a "job" line
// per completed simulation (in completion order) and a final "done"
// summary line.
type SweepLine struct {
	Type string `json:"type"` // "job" or "done"

	// Per-job fields.
	JobID             string  `json:"jobId,omitempty"`
	Workload          string  `json:"workload,omitempty"`
	DirKind           string  `json:"dirKind,omitempty"`
	Coverage          float64 `json:"coverage,omitempty"`
	CacheHit          string  `json:"cacheHit,omitempty"`
	Cycles            uint64  `json:"cycles,omitempty"`
	AccessesPerKCycle float64 `json:"accessesPerKCycle,omitempty"`
	DurationMS        float64 `json:"durationMs,omitempty"`
	Error             string  `json:"error,omitempty"`

	// Done-line summary fields.
	Jobs      int     `json:"jobs,omitempty"`
	CacheHits int     `json:"cacheHits,omitempty"`
	Failures  int     `json:"failures,omitempty"`
	ElapsedMS float64 `json:"elapsedMs,omitempty"`
}
