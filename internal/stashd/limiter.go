package stashd

import (
	"math"
	"net"
	"net/http"
	"sync"
	"time"
)

// maxTrackedClients bounds the limiter's client table. When the table is
// full, buckets that have fully refilled (idle clients) are pruned; an
// attacker cycling client identities therefore costs at most this many
// bucket structs.
const maxTrackedClients = 8192

// Limiter is a per-client token-bucket rate limiter shared by the worker
// and coordinator tiers. Each client identity owns one bucket of capacity
// burst refilling at rate tokens per second; an admission takes one token.
// Refill is computed lazily from timestamps, so the limiter needs no
// background goroutine and is safe to drop without cleanup.
type Limiter struct {
	rate  float64
	burst float64

	mu      sync.Mutex
	buckets map[string]*bucket //stash:guardedby mu
}

type bucket struct {
	tokens float64   //stash:guardedby Limiter.mu
	last   time.Time //stash:guardedby Limiter.mu
}

// NewLimiter builds a limiter admitting ratePerSec requests per client per
// second with the given burst. A non-positive rate returns nil, which every
// call site treats as "unlimited". A non-positive burst defaults to
// max(1, 2*rate): one admission always fits, and a well-behaved client can
// absorb a small backlog without shedding.
func NewLimiter(ratePerSec, burst float64) *Limiter {
	if ratePerSec <= 0 {
		return nil
	}
	if burst <= 0 {
		burst = math.Max(1, 2*ratePerSec)
	}
	return &Limiter{rate: ratePerSec, burst: burst, buckets: make(map[string]*bucket)}
}

// Allow decides one admission for client at time now. On refusal it returns
// how long the client should wait before one token has accrued — the
// Retry-After value of the 429.
func (l *Limiter) Allow(client string, now time.Time) (ok bool, retryAfter time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	b, exists := l.buckets[client]
	if !exists {
		if len(l.buckets) >= maxTrackedClients {
			l.pruneLocked()
		}
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[client] = b
	}
	elapsed := now.Sub(b.last).Seconds()
	if elapsed > 0 {
		b.tokens = math.Min(l.burst, b.tokens+elapsed*l.rate)
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	need := (1 - b.tokens) / l.rate
	return false, time.Duration(math.Ceil(need)) * time.Second
}

// pruneLocked drops buckets that have fully refilled: an idle client's next
// admission recreates an identical bucket, so forgetting it changes nothing.
//
//stash:locked mu
func (l *Limiter) pruneLocked() {
	for c, b := range l.buckets {
		if b.tokens >= l.burst {
			delete(l.buckets, c)
		}
	}
}

// ClientKey identifies the requester for rate limiting: an explicit
// X-Stashd-Client header when present (how the coordinator forwards the
// original client's identity through the proxy), else the remote host.
func ClientKey(req *http.Request) string {
	if c := req.Header.Get("X-Stashd-Client"); c != "" {
		return c
	}
	host, _, err := net.SplitHostPort(req.RemoteAddr)
	if err != nil {
		return req.RemoteAddr
	}
	return host
}
