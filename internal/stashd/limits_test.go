package stashd

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/runner"
	"repro/internal/testutil/leakcheck"
)

// flushRecorder wraps httptest.ResponseRecorder to log the interleaving of
// body writes and flushes, so a test can prove the stream terminator was
// flushed before the handler returned.
type flushRecorder struct {
	*httptest.ResponseRecorder
	events []string // "write:<payload>" and "flush" in order
}

func (f *flushRecorder) Write(b []byte) (int, error) {
	f.events = append(f.events, "write:"+string(b))
	return f.ResponseRecorder.Write(b)
}

func (f *flushRecorder) Flush() {
	f.events = append(f.events, "flush")
	f.ResponseRecorder.Flush()
}

// TestSweepDoneLineFlushedBeforeClose is the regression test for the
// unflushed terminator: the final "done" summary line must be written and
// flushed before the handler returns, so the client observes it before the
// connection closes.
func TestSweepDoneLineFlushedBeforeClose(t *testing.T) {
	leakcheck.Check(t)
	r := runner.New(runner.Options{Workers: 2})
	defer r.Close()
	srv := NewServer(r)

	b, err := json.Marshal(tinySweep())
	if err != nil {
		t.Fatal(err)
	}
	rec := &flushRecorder{ResponseRecorder: httptest.NewRecorder()}
	req := httptest.NewRequest("POST", "/sweep", bytes.NewReader(b))
	srv.ServeHTTP(rec, req)

	if rec.Code != http.StatusOK {
		t.Fatalf("sweep status = %d", rec.Code)
	}
	lastDone := -1
	for i, e := range rec.events {
		if strings.HasPrefix(e, "write:") && strings.Contains(e, `"type":"done"`) {
			lastDone = i
		}
	}
	if lastDone < 0 {
		t.Fatalf("no done line written; events: %q", rec.events)
	}
	flushed := false
	for _, e := range rec.events[lastDone+1:] {
		if e == "flush" {
			flushed = true
		}
	}
	if !flushed {
		t.Fatalf("done line was never flushed; events after it: %q", rec.events[lastDone+1:])
	}

	// And the line itself is a complete summary the client can parse.
	var done SweepLine
	lines := strings.Split(strings.TrimSpace(rec.Body.String()), "\n")
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &done); err != nil {
		t.Fatal(err)
	}
	if done.Type != "done" || done.Jobs != 2 {
		t.Fatalf("terminator = %+v, want done with 2 jobs", done)
	}
}

// TestRateLimitSheds429WithRetryAfter: a client over its token budget gets
// 429 + Retry-After while an independent client is still admitted.
func TestRateLimitSheds429WithRetryAfter(t *testing.T) {
	leakcheck.Check(t)
	r := runner.New(runner.Options{Workers: 2})
	ts := httptest.NewServer(NewServerWith(r, Options{RatePerSec: 0.5, Burst: 1}))
	t.Cleanup(func() {
		ts.Close()
		r.Close()
	})

	post := func(client string) *http.Response {
		rr := tinyBase()
		rr.Workload = "blackscholes"
		rr.DirKind = "stash"
		rr.Coverage = 1
		b, err := json.Marshal(rr)
		if err != nil {
			t.Fatal(err)
		}
		req, err := http.NewRequest("POST", ts.URL+"/run", bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("X-Stashd-Client", client)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	first := post("alice")
	first.Body.Close()
	if first.StatusCode != http.StatusOK {
		t.Fatalf("first request status = %d", first.StatusCode)
	}
	second := post("alice")
	second.Body.Close()
	if second.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second request status = %d, want 429", second.StatusCode)
	}
	retry, err := strconv.Atoi(second.Header.Get("Retry-After"))
	if err != nil || retry < 1 {
		t.Fatalf("429 Retry-After = %q, want an integer >= 1", second.Header.Get("Retry-After"))
	}
	other := post("bob")
	other.Body.Close()
	if other.StatusCode != http.StatusOK {
		t.Fatalf("independent client status = %d, want 200", other.StatusCode)
	}

	if shed := metricValue(t, ts, "stashd_shed_rate_total"); shed != 1 {
		t.Fatalf("stashd_shed_rate_total = %v, want 1", shed)
	}
}

// TestQueueDepthSheds503WithRetryAfter: a sweep that would push the queue
// past MaxQueue is refused at admission with 503 + Retry-After instead of
// queueing without bound.
func TestQueueDepthSheds503WithRetryAfter(t *testing.T) {
	leakcheck.Check(t)
	r := runner.New(runner.Options{Workers: 1})
	ts := httptest.NewServer(NewServerWith(r, Options{MaxQueue: 4}))
	t.Cleanup(func() {
		ts.Close()
		r.Close()
	})

	big := SweepRequest{
		Base:      tinyBase(),
		Workloads: []string{"blackscholes"},
		DirKinds:  []string{"sparse", "stash"},
		Coverages: []float64{1, 0.5, 0.25}, // 6 jobs > MaxQueue of 4
	}
	resp := postJSON(t, ts.URL+"/sweep", big)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("oversized sweep status = %d, want 503", resp.StatusCode)
	}
	retry, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || retry < 1 {
		t.Fatalf("503 Retry-After = %q, want an integer >= 1", resp.Header.Get("Retry-After"))
	}
	if shed := metricValue(t, ts, "stashd_shed_queue_total"); shed != 1 {
		t.Fatalf("stashd_shed_queue_total = %v, want 1", shed)
	}

	// A sweep within the bound is still served.
	ok := tinySweep()
	okResp := postJSON(t, ts.URL+"/sweep", ok)
	_, done := readSweep(t, okResp)
	if done.Jobs != 2 || done.Failures != 0 {
		t.Fatalf("in-bounds sweep done = %+v", done)
	}
}

// TestInternalRunEndpoint: the coordinator's dispatch format executes the
// exact config it carries and reports cache provenance on a repeat.
func TestInternalRunEndpoint(t *testing.T) {
	leakcheck.Check(t)
	ts, _ := newTestServer(t, t.TempDir())

	base := tinyBase()
	base.Workload = "blackscholes"
	base.DirKind = "stash"
	base.Coverage = 0.5
	cfg, err := base.Config()
	if err != nil {
		t.Fatal(err)
	}

	resp := postJSON(t, ts.URL+"/internal/run", InternalRunRequest{Config: cfg})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("internal run status = %d", resp.StatusCode)
	}
	var rr RunResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	if rr.Result == nil || rr.Result.Cycles == 0 {
		t.Fatalf("internal run returned no result: %+v", rr)
	}

	// A repeat is a cache hit: the internal key is the same canonical hash.
	again := postJSON(t, ts.URL+"/internal/run", InternalRunRequest{Config: cfg})
	defer again.Body.Close()
	var rr2 RunResponse
	if err := json.NewDecoder(again.Body).Decode(&rr2); err != nil {
		t.Fatal(err)
	}
	if rr2.CacheHit == "" {
		t.Fatalf("repeat internal run was not a cache hit: %+v", rr2)
	}
	if rr2.Result.Cycles != rr.Result.Cycles {
		t.Fatalf("cache hit diverged: %d vs %d cycles", rr2.Result.Cycles, rr.Result.Cycles)
	}

	// An invalid config is a 400 at the edge, not a queued failure.
	bad := cfg
	bad.Cores = 7
	badResp := postJSON(t, ts.URL+"/internal/run", InternalRunRequest{Config: bad})
	badResp.Body.Close()
	if badResp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid internal config status = %d, want 400", badResp.StatusCode)
	}
}

// TestLimiterRefillAndPrune exercises the token bucket directly: refill
// over time, retry-after arithmetic, and the bounded client table.
func TestLimiterRefillAndPrune(t *testing.T) {
	leakcheck.Check(t)
	now := time.Unix(1000, 0)
	l := NewLimiter(2, 2)

	for i := 0; i < 2; i++ {
		if ok, _ := l.Allow("c", now); !ok {
			t.Fatalf("burst admission %d refused", i)
		}
	}
	ok, retry := l.Allow("c", now)
	if ok || retry < time.Second {
		t.Fatalf("over-burst admission = %v retry %v, want refusal with retry >= 1s", ok, retry)
	}
	// Half a second refills one token at rate 2.
	if ok, _ := l.Allow("c", now.Add(500*time.Millisecond)); !ok {
		t.Fatal("refilled token refused")
	}
	if NewLimiter(0, 0) != nil {
		t.Fatal("rate 0 must mean unlimited (nil limiter)")
	}
}
