// Package stashd implements the HTTP simulation service served by
// cmd/stashd. It is a thin protocol layer over internal/runner: requests
// resolve to system.Config jobs, results stream back as JSON, and the
// runner's counters render as a text metrics page. Keeping the handlers
// here (instead of in the command) makes the whole service testable with
// net/http/httptest.
package stashd

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/runner"
)

// Options configure the HTTP layer's admission control. The zero value
// disables both mechanisms: every request is admitted, as before the fleet
// existed.
type Options struct {
	// RatePerSec admits this many /run and /sweep requests per client per
	// second (token bucket of size Burst); 0 disables rate limiting.
	// Refusals are 429 with a Retry-After header.
	RatePerSec float64
	// Burst is the token-bucket capacity; 0 picks max(1, 2*RatePerSec).
	Burst float64
	// MaxQueue sheds work once the runner's queue depth plus the request's
	// own job count would exceed it; 0 disables shedding. Refusals are 503
	// with a Retry-After header, so overload degrades instead of queueing
	// without bound.
	MaxQueue int
}

// Server routes the run-service API:
//
//	POST /run           one simulation, JSON in / JSON out
//	POST /sweep         a workload x dirkind x coverage batch, streamed as
//	                    chunked JSON lines (application/x-ndjson)
//	POST /internal/run  one fully resolved system.Config — the fleet
//	                    coordinator's dispatch format
//	GET  /jobs/{id}     job status snapshot
//	GET  /metrics       text-format aggregate counters
//	GET  /healthz       liveness probe
type Server struct {
	runner  *runner.Runner
	mux     *http.ServeMux
	start   time.Time
	opts    Options
	limiter *Limiter

	shedRate  atomic.Int64 // 429s issued
	shedQueue atomic.Int64 // 503s issued

	mu           sync.Mutex
	activeSweeps int //stash:guardedby mu
}

// NewServer wraps a runner in the HTTP API with no admission control. The
// caller keeps ownership of the runner and closes it after the HTTP server
// has shut down.
func NewServer(r *runner.Runner) *Server {
	return NewServerWith(r, Options{})
}

// NewServerWith is NewServer plus admission control.
func NewServerWith(r *runner.Runner, opts Options) *Server {
	s := &Server{
		runner:  r,
		mux:     http.NewServeMux(),
		start:   time.Now(),
		opts:    opts,
		limiter: NewLimiter(opts.RatePerSec, opts.Burst),
	}
	s.mux.HandleFunc("POST /run", s.handleRun)
	s.mux.HandleFunc("POST /sweep", s.handleSweep)
	s.mux.HandleFunc("POST /internal/run", s.handleInternalRun)
	s.mux.HandleFunc("GET /jobs/{id}", s.handleJob)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return s
}

// admitRate applies the per-client token bucket; a refusal writes the 429
// itself and returns false.
func (s *Server) admitRate(w http.ResponseWriter, req *http.Request) bool {
	if s.limiter == nil {
		return true
	}
	ok, retry := s.limiter.Allow(ClientKey(req), time.Now())
	if ok {
		return true
	}
	s.shedRate.Add(1)
	w.Header().Set("Retry-After", strconv.Itoa(int(retry/time.Second)))
	httpError(w, http.StatusTooManyRequests,
		fmt.Errorf("stashd: client %s over rate limit; retry after %v", ClientKey(req), retry))
	return false
}

// admitQueue sheds new jobs when the queue is past the configured
// bound; a refusal writes the 503 itself and returns false. The Retry-After
// estimate is the time for the backlog to drain through the currently
// running workers at the recent median run latency, clamped to [1s, 60s].
func (s *Server) admitQueue(w http.ResponseWriter, jobs int) bool {
	if s.opts.MaxQueue <= 0 {
		return true
	}
	depth := s.runner.QueueDepth()
	if depth+jobs <= s.opts.MaxQueue {
		return true
	}
	s.shedQueue.Add(1)
	m := s.runner.Metrics()
	retry := time.Second
	if m.RunLatencyP50 > 0 {
		workers := m.InFlight
		if workers < 1 {
			workers = 1
		}
		retry = time.Duration(depth+1) * m.RunLatencyP50 / time.Duration(workers)
	}
	if retry < time.Second {
		retry = time.Second
	}
	if retry > time.Minute {
		retry = time.Minute
	}
	w.Header().Set("Retry-After", strconv.Itoa(int(retry/time.Second)))
	httpError(w, http.StatusServiceUnavailable,
		fmt.Errorf("stashd: queue depth %d + %d new jobs exceeds limit %d; retry after %v",
			depth, jobs, s.opts.MaxQueue, retry))
	return false
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	s.mux.ServeHTTP(w, req)
}

// httpError writes a JSON error body with the given status.
func httpError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

func (s *Server) handleRun(w http.ResponseWriter, req *http.Request) {
	if !s.admitRate(w, req) {
		return
	}
	var rr RunRequest
	if err := json.NewDecoder(req.Body).Decode(&rr); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("stashd: bad request body: %w", err))
		return
	}
	cfg, err := rr.Config()
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if !s.admitQueue(w, 1) {
		return
	}
	job, err := s.runner.Submit(req.Context(), cfg)
	if err != nil {
		httpError(w, http.StatusServiceUnavailable, err)
		return
	}
	res, err := job.Wait(req.Context())
	if err != nil {
		if req.Context().Err() != nil {
			// The client disconnected (or its deadline passed): there is no
			// usable response to write, and this is not a simulation
			// failure — don't dress it up as a 500.
			return
		}
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	st := job.Status()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(RunResponse{
		JobID:      st.ID,
		CacheHit:   st.CacheHit,
		DurationMS: st.DurationMS,
		Result:     res,
	})
}

func (s *Server) handleSweep(w http.ResponseWriter, req *http.Request) {
	if !s.admitRate(w, req) {
		return
	}
	var sr SweepRequest
	if err := json.NewDecoder(req.Body).Decode(&sr); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("stashd: bad request body: %w", err))
		return
	}
	cfgs, err := sr.Configs()
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if !s.admitQueue(w, len(cfgs)) {
		return
	}

	s.beginSweep()
	defer s.endSweep()

	// Submit everything up front (the runner queues and deduplicates),
	// then stream one line per job in completion order. A client
	// disconnect cancels req.Context(), which aborts still-queued jobs.
	jobs := make([]*runner.Job, 0, len(cfgs))
	for _, cfg := range cfgs {
		job, err := s.runner.Submit(req.Context(), cfg)
		if err != nil {
			httpError(w, http.StatusServiceUnavailable, err)
			return
		}
		jobs = append(jobs, job)
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	start := time.Now()

	// The channel is buffered to len(jobs): if the client disconnects and
	// the stream loop returns early, every remaining waiter goroutine can
	// still deliver its line and exit instead of blocking forever.
	lines := make(chan SweepLine, len(jobs))
	for _, job := range jobs {
		go func(job *runner.Job) {
			res, err := job.Wait(req.Context())
			st := job.Status()
			line := SweepLine{
				Type:       "job",
				JobID:      st.ID,
				Workload:   st.Workload,
				DirKind:    st.DirKind,
				Coverage:   st.Coverage,
				CacheHit:   st.CacheHit,
				DurationMS: st.DurationMS,
			}
			if err != nil {
				line.Error = err.Error()
			} else if res != nil {
				line.Cycles = res.Cycles
				line.AccessesPerKCycle = res.AccessesPerKCycle
			}
			lines <- line
		}(job)
	}

	var done SweepLine
	done.Type = "done"
	for range jobs {
		var line SweepLine
		select {
		case line = <-lines:
		case <-req.Context().Done():
			// The client is gone: return instead of shoveling the rest of
			// the sweep into a dead connection. The buffered channel lets
			// the remaining waiter goroutines deliver their lines and exit.
			return
		}
		done.Jobs++
		if line.CacheHit != "" {
			done.CacheHits++
		}
		if line.Error != "" {
			done.Failures++
		}
		if err := enc.Encode(line); err != nil {
			return // client went away; buffered channel lets waiters exit
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	done.ElapsedMS = float64(time.Since(start)) / float64(time.Millisecond)
	// The done line is the stream's terminator: a client (and the fleet
	// coordinator proxying for one) treats its absence as a truncated
	// sweep, so the encode error is checked and the line flushed before the
	// handler returns and the connection can close.
	if err := enc.Encode(done); err != nil {
		return
	}
	if flusher != nil {
		flusher.Flush()
	}
}

// handleInternalRun executes one fully resolved system.Config — the fleet
// coordinator's dispatch format, bypassing RunRequest defaulting so the
// worker runs exactly the config the coordinator hashed to pick it. The
// per-client rate limit does not apply (the coordinator already limited the
// originating client); queue shedding does, and its 503 is what triggers
// coordinator failover.
func (s *Server) handleInternalRun(w http.ResponseWriter, req *http.Request) {
	var ir InternalRunRequest
	if err := json.NewDecoder(req.Body).Decode(&ir); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("stashd: bad request body: %w", err))
		return
	}
	if err := ir.Config.Validate(); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if !s.admitQueue(w, 1) {
		return
	}
	job, err := s.runner.Submit(req.Context(), ir.Config)
	if err != nil {
		httpError(w, http.StatusServiceUnavailable, err)
		return
	}
	res, err := job.Wait(req.Context())
	if err != nil {
		if req.Context().Err() != nil {
			return // the coordinator (or its client) disconnected
		}
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	st := job.Status()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(RunResponse{
		JobID:      st.ID,
		CacheHit:   st.CacheHit,
		DurationMS: st.DurationMS,
		Result:     res,
	})
}

// beginSweep and endSweep maintain the active-sweep gauge reported by
// /metrics, so an operator can see streams in flight (and streams stuck).
func (s *Server) beginSweep() {
	s.mu.Lock()
	s.activeSweeps++
	s.mu.Unlock()
}

func (s *Server) endSweep() {
	s.mu.Lock()
	s.activeSweeps--
	s.mu.Unlock()
}

func (s *Server) activeSweepCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.activeSweeps
}

func (s *Server) handleJob(w http.ResponseWriter, req *http.Request) {
	id := req.PathValue("id")
	job, ok := s.runner.Job(id)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("stashd: unknown job %q", id))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(job.Status())
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	m := s.runner.Metrics()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	fmt.Fprintf(w, "stashd_jobs_queued_total %d\n", m.JobsQueued)
	fmt.Fprintf(w, "stashd_jobs_started_total %d\n", m.JobsStarted)
	fmt.Fprintf(w, "stashd_jobs_completed_total %d\n", m.JobsCompleted)
	fmt.Fprintf(w, "stashd_jobs_failed_total %d\n", m.JobsFailed)
	fmt.Fprintf(w, "stashd_jobs_coalesced_total %d\n", m.JobsCoalesced)
	fmt.Fprintf(w, "stashd_retries_total %d\n", m.Retries)
	fmt.Fprintf(w, "stashd_cache_hits_total %d\n", m.CacheHits())
	fmt.Fprintf(w, "stashd_cache_hits_memory_total %d\n", m.CacheHitsMemory)
	fmt.Fprintf(w, "stashd_cache_hits_disk_total %d\n", m.CacheHitsDisk)
	fmt.Fprintf(w, "stashd_cache_hits_peer_total %d\n", m.CacheHitsPeer)
	fmt.Fprintf(w, "stashd_cache_misses_total %d\n", m.CacheMisses)
	fmt.Fprintf(w, "stashd_cache_write_errors_total %d\n", m.CacheWriteErrors)
	fmt.Fprintf(w, "stashd_inflight_workers %d\n", m.InFlight)
	fmt.Fprintf(w, "stashd_queue_depth %d\n", m.QueueDepth)
	fmt.Fprintf(w, "stashd_shed_rate_total %d\n", s.shedRate.Load())
	fmt.Fprintf(w, "stashd_shed_queue_total %d\n", s.shedQueue.Load())
	fmt.Fprintf(w, "stashd_active_sweeps %d\n", s.activeSweepCount())
	fmt.Fprintf(w, "stashd_run_latency_p50_ms %.3f\n", ms(m.RunLatencyP50))
	fmt.Fprintf(w, "stashd_run_latency_p95_ms %.3f\n", ms(m.RunLatencyP95))
	fmt.Fprintf(w, "stashd_uptime_seconds %.0f\n", time.Since(s.start).Seconds())
}
