// Package leakcheck is the dynamic complement to the chanleak analyzer: a
// test helper that fails a test if goroutines it started are still running
// when it ends. The static analyzers prove send/receive contracts; leakcheck
// catches everything else — handlers that outlive their request, workers
// that miss a shutdown broadcast, waiters stuck on a channel nobody closes.
//
// Usage, as the first line of a test:
//
//	func TestSweep(t *testing.T) {
//		leakcheck.Check(t)
//		...
//	}
//
// Check snapshots the goroutines alive at call time and registers a cleanup
// that retries for a grace period (goroutines legitimately take a moment to
// unwind after Close), then reports the stacks of any stragglers. Register
// it before other cleanups: testing runs cleanups last-in-first-out, so the
// leak gate then observes the world after the test's own teardown.
package leakcheck

import (
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"
)

// grace is how long stragglers get to unwind before they count as leaks.
const grace = 5 * time.Second

// ignorable marks stacks the runtime or stdlib parks for the whole process;
// they are nobody's leak.
var ignorable = []string{
	"testing.tRunner(",         // the test framework's own goroutines
	"testing.(*T).Run(",        // parents blocked on subtests
	"os/signal.signal_recv",    // signal delivery loop
	"os/signal.loop",           // its portable counterpart
	"net/http.(*persistConn).", // keep-alive client connections
	"runtime.ReadTrace",        // execution tracer
	"runtime.ensureSigM",       // signal mask goroutine
	"leakcheck.snapshot",       // the goroutine running the check itself
	"leakcheck.verify",
}

// Check arms the leak gate for one test. Call it first so its cleanup runs
// after every other cleanup the test registers.
func Check(t testing.TB) {
	t.Helper()
	base := snapshot()
	t.Cleanup(func() {
		if report, ok := verify(base, grace); !ok {
			t.Errorf("goroutines leaked by this test:\n\n%s", report)
		}
	})
}

// verify polls until every goroutine not in base is gone or the grace
// period lapses, returning the straggler stacks on failure.
func verify(base map[int64]bool, wait time.Duration) (string, bool) {
	deadline := time.Now().Add(wait)
	for {
		stragglers := diff(base)
		if len(stragglers) == 0 {
			return "", true
		}
		if time.Now().After(deadline) {
			return strings.Join(stragglers, "\n\n"), false
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// snapshot records the IDs of every goroutine currently alive.
func snapshot() map[int64]bool {
	base := map[int64]bool{}
	for _, s := range stacks() {
		base[goroutineID(s)] = true
	}
	return base
}

// diff returns the stacks of goroutines that are neither in the baseline
// nor ignorable.
func diff(base map[int64]bool) []string {
	var out []string
	for _, s := range stacks() {
		if base[goroutineID(s)] {
			continue
		}
		skip := false
		for _, pat := range ignorable {
			if strings.Contains(s, pat) {
				skip = true
				break
			}
		}
		if !skip {
			out = append(out, s)
		}
	}
	return out
}

// stacks captures one block of text per live goroutine.
func stacks() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	var out []string
	for _, s := range strings.Split(string(buf), "\n\n") {
		if strings.HasPrefix(s, "goroutine ") {
			out = append(out, strings.TrimRight(s, "\n"))
		}
	}
	return out
}

// goroutineID parses the "goroutine N [state]:" header.
func goroutineID(stack string) int64 {
	rest := strings.TrimPrefix(stack, "goroutine ")
	end := strings.IndexByte(rest, ' ')
	if end < 0 {
		return -1
	}
	id, err := strconv.ParseInt(rest[:end], 10, 64)
	if err != nil {
		return -1
	}
	return id
}
