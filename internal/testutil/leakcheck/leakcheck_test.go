package leakcheck

import (
	"strings"
	"testing"
	"time"
)

// TestVerifyCatchesLeak parks a goroutine on a channel, confirms verify
// reports its stack, then releases it and confirms verify comes up clean.
func TestVerifyCatchesLeak(t *testing.T) {
	base := snapshot()

	release := make(chan struct{})
	go func() {
		<-release
	}()

	report, ok := verify(base, 50*time.Millisecond)
	if ok {
		t.Fatal("verify passed with a parked goroutine outstanding")
	}
	if !strings.Contains(report, "leakcheck_test") {
		t.Errorf("report does not name the leaking test file:\n%s", report)
	}

	close(release)
	if report, ok := verify(base, grace); !ok {
		t.Errorf("goroutine still reported after release:\n%s", report)
	}
}

// TestVerifyIgnoresBaseline checks pre-existing goroutines never count.
func TestVerifyIgnoresBaseline(t *testing.T) {
	release := make(chan struct{})
	go func() {
		<-release
	}()
	defer close(release)

	// The parked goroutine predates this snapshot, so it is baseline.
	base := snapshot()
	if report, ok := verify(base, 50*time.Millisecond); !ok {
		t.Errorf("baseline goroutine reported as a leak:\n%s", report)
	}
}

// TestCheckClean arms the real gate on a test that leaks nothing; the
// registered cleanup must pass when the test ends.
func TestCheckClean(t *testing.T) {
	Check(t)
	done := make(chan struct{})
	go func() {
		close(done)
	}()
	<-done
}
