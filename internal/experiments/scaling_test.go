package experiments

import (
	"testing"

	"repro/internal/system"
)

// scalingHarness shrinks runs hard: the study grid spans five core counts
// up to 256, so each point must be tiny for the test to stay fast.
func scalingHarness() *Harness {
	return NewHarness(Options{
		Quick:     true,
		Workloads: []string{"canneal"},
		ConfigHook: func(c *system.Config) {
			c.AccessesPerCore = 600
			c.WorkloadScale = 0.25
		},
	})
}

func TestScalingStudyShape(t *testing.T) {
	if testing.Short() {
		t.Skip("256-core grid")
	}
	h := scalingHarness()
	defer h.Close()
	tb, gm, err := h.ScalingStudy()
	if err != nil {
		t.Fatal(err)
	}
	if tb == nil || len(tb.Rows) == 0 {
		t.Fatal("empty scaling table")
	}
	for _, kind := range []string{system.DirSparse, system.DirStash} {
		for _, n := range ScalingCores {
			for _, cov := range ScalingCoverages {
				v := gm[kind][n][cov]
				if v <= 0 {
					t.Errorf("%s %d-core cov=%v: normalized time %v, want > 0", kind, n, cov, v)
				}
			}
			// The sparse@1x baseline normalizes to exactly 1.
			if kind == system.DirSparse {
				if v := gm[kind][n][1]; v != 1 {
					t.Errorf("sparse %d-core at 1x normalizes to %v, want 1", n, v)
				}
			}
		}
	}

	// The stash-vs-sparse margin at tight coverage is the study's
	// headline number, but at this smoke-test scale (600 accesses/core,
	// quarter-size working sets) it is noise — EXPERIMENTS.md records the
	// real-size outcome. Log it so failures elsewhere come with context.
	tight := ScalingCoverages[len(ScalingCoverages)-1]
	big := ScalingCores[len(ScalingCores)-1]
	t.Logf("%d-core cov=%v: stash %.3f vs sparse %.3f",
		big, tight, gm[system.DirStash][big][tight], gm[system.DirSparse][big][tight])

	rt, err := h.ScalingRecalls()
	if err != nil {
		t.Fatal(err)
	}
	if len(rt.Rows) == 0 {
		t.Fatal("empty recall table")
	}
}
