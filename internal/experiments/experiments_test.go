package experiments

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/system"
)

// tinyHarness shrinks runs so the whole experiment suite stays fast in
// tests while preserving the capacity ratios.
func tinyHarness(workloads ...string) *Harness {
	return tinyHarnessParallel(0, workloads...)
}

// tinyHarnessParallel is tinyHarness with an explicit worker count, which
// must be fixed at construction time now that the harness owns a pool.
func tinyHarnessParallel(parallel int, workloads ...string) *Harness {
	return NewHarness(Options{
		Quick:     true,
		Workloads: workloads,
		Parallel:  parallel,
		ConfigHook: func(c *system.Config) {
			c.AccessesPerCore = 4000
			c.WorkloadScale = 0.25
		},
	})
}

func TestGeomean(t *testing.T) {
	if g := geomean([]float64{2, 8}); g != 4 {
		t.Fatalf("geomean(2,8) = %v, want 4", g)
	}
	if g := geomean(nil); g != 0 {
		t.Fatalf("geomean(nil) = %v, want 0", g)
	}
	if g := geomean([]float64{1, 0}); g != 0 {
		t.Fatalf("geomean with zero = %v, want 0", g)
	}
}

func TestCovLabel(t *testing.T) {
	cases := map[float64]string{2: "2x", 1: "1x", 0.5: "1/2", 0.125: "1/8", 0.0625: "1/16"}
	for c, want := range cases {
		if got := covLabel(c); got != want {
			t.Errorf("covLabel(%v) = %q, want %q", c, got, want)
		}
	}
}

func TestHarnessMemoizes(t *testing.T) {
	runs := 0
	h := tinyHarness("blackscholes")
	h.opts.Progress = func(string) { runs++ }
	if _, err := h.baseline("blackscholes"); err != nil {
		t.Fatal(err)
	}
	if _, err := h.baseline("blackscholes"); err != nil {
		t.Fatal(err)
	}
	if runs != 1 {
		t.Fatalf("baseline ran %d times, want 1 (memoized)", runs)
	}
}

func TestTable1RendersWithoutRunning(t *testing.T) {
	h := tinyHarness("blackscholes")
	tb := h.Table1Config()
	out := tb.String()
	for _, want := range []string{"cores", "L1", "directory", "mesh"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, out)
		}
	}
}

func TestFig1PrivateFractionHigh(t *testing.T) {
	h := tinyHarness("blackscholes", "streamcluster")
	_, vals, err := h.Fig1PrivateFraction()
	if err != nil {
		t.Fatal(err)
	}
	for w, v := range vals {
		if v < 0.5 || v > 1 {
			t.Errorf("%s: private fraction %v outside (0.5, 1]", w, v)
		}
	}
	if vals["blackscholes"] <= vals["streamcluster"] {
		t.Errorf("blackscholes (%v) should be more private than streamcluster (%v)",
			vals["blackscholes"], vals["streamcluster"])
	}
}

func TestFig2InvalidationsGrowAsCoverageShrinks(t *testing.T) {
	h := tinyHarness("canneal")
	res, err := h.Fig2Invalidations()
	if err != nil {
		t.Fatal(err)
	}
	gm := res.Geomean[system.DirSparse]
	// Coverages are ordered 2x .. 1/16: invalidations must be (weakly)
	// increasing from 1x to 1/16 and much larger at the end.
	if !(gm[len(gm)-1] > gm[1]*2) {
		t.Errorf("conflict invalidations did not explode: %v", gm)
	}
}

func TestFig3HeadlineShape(t *testing.T) {
	h := tinyHarness("canneal", "barnes")
	res, err := h.Fig3ExecTime()
	if err != nil {
		t.Fatal(err)
	}
	sparse := res.Geomean[system.DirSparse]
	stash := res.Geomean[system.DirStash]
	i8 := indexOf(res.Coverages, 0.125)
	i1 := indexOf(res.Coverages, 1)
	// The abstract's claim at bench scale: stash at 1/8 coverage within a
	// few percent of sparse at 1x (normalized 1.0).
	if stash[i8] > 1.10 {
		t.Errorf("stash at 1/8 coverage is %.3f x sparse@1x, want <= 1.10", stash[i8])
	}
	// Sparse must visibly degrade at 1/8.
	if sparse[i8] < stash[i8]*1.05 {
		t.Errorf("sparse@1/8 (%.3f) not clearly worse than stash@1/8 (%.3f)", sparse[i8], stash[i8])
	}
	if sparse[i1] < 0.95 || sparse[i1] > 1.05 {
		t.Errorf("sparse@1x should normalize to ~1.0, got %.3f", sparse[i1])
	}
}

func TestFig6DiscoveryGrowsButStaysRare(t *testing.T) {
	h := tinyHarness("barnes")
	_, means, err := h.Fig6Discovery()
	if err != nil {
		t.Fatal(err)
	}
	if !(means[0.0625] > means[1]) {
		t.Errorf("discoveries should grow as coverage shrinks: %v", means)
	}
	if means[0.125] > 300 {
		t.Errorf("discoveries per 1k LLC accesses implausibly high: %v", means[0.125])
	}
}

func TestFig7EnergyShrinksWithDirectory(t *testing.T) {
	h := tinyHarness("blackscholes")
	res, err := h.Fig7Energy()
	if err != nil {
		t.Fatal(err)
	}
	stash := res.Geomean[system.DirStash]
	i8 := indexOf(res.Coverages, 0.125)
	i2 := indexOf(res.Coverages, 2)
	if !(stash[i8] < stash[i2]) {
		t.Errorf("a 1/8 directory should use less directory energy than a 2x one: %v", stash)
	}
}

func TestFig5TrafficBreakdownSumsToOne(t *testing.T) {
	h := tinyHarness("barnes")
	tb, err := h.Fig5TrafficBreakdown(0.125)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 { // one workload x two orgs
		t.Fatalf("rows = %d, want 2", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		sum := 0.0
		for _, cell := range row[2:] {
			var v float64
			if _, err := fmtSscan(cell, &v); err != nil {
				t.Fatalf("bad cell %q", cell)
			}
			sum += v
		}
		if sum < 0.98 || sum > 1.02 {
			t.Errorf("breakdown sums to %v, want ~1", sum)
		}
	}
}

func TestTable3AndAblationRender(t *testing.T) {
	h := tinyHarness("barnes")
	tb, err := h.Table3Occupancy()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("Table 3 rows = %d", len(tb.Rows))
	}
	ab, err := h.Fig11Ablation()
	if err != nil {
		t.Fatal(err)
	}
	if len(ab.Rows) != 1 || len(ab.Rows[0]) != 5 {
		t.Fatalf("ablation shape wrong: %v", ab.Rows)
	}
}

func TestTable2Renders(t *testing.T) {
	h := tinyHarness("blackscholes")
	tb, err := h.Table2Workloads()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 1 {
		t.Fatalf("Table 2 rows = %d", len(tb.Rows))
	}
}

func indexOf(vs []float64, v float64) int {
	for i, x := range vs {
		if x == v {
			return i
		}
	}
	return -1
}

// fmtSscan parses one float out of a table cell.
func fmtSscan(s string, v *float64) (int, error) {
	return fmt.Sscanf(s, "%f", v)
}

func TestFig12ProtocolVariantsShape(t *testing.T) {
	h := tinyHarness("canneal")
	tb, gm, err := h.Fig12ProtocolVariants()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 { // (1 workload + GEOMEAN) x 2 orgs
		t.Fatalf("rows = %d, want 4", len(tb.Rows))
	}
	// The headline must hold under every variant: stash@1/8 close to 1.0,
	// sparse@1/8 clearly above it.
	for variant, v := range gm[system.DirStash] {
		if v > 1.15 {
			t.Errorf("stash@1/8 under %s = %.3f, want <= 1.15", variant, v)
		}
		if sp := gm[system.DirSparse][variant]; sp < v {
			t.Errorf("sparse@1/8 under %s (%.3f) not worse than stash (%.3f)", variant, sp, v)
		}
	}
}

func TestFig13EntryFormatShape(t *testing.T) {
	h := tinyHarness("streamcluster") // enough sharing to overflow pointers
	tb, gm, err := h.Fig13EntryFormat()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 8 { // 1 workload x 4 formats + 4 geomeans
		t.Fatalf("rows = %d, want 8", len(tb.Rows))
	}
	// Narrow formats trade broadcasts for width; time may rise slightly but
	// must stay sane, and every format must preserve correctness (Run
	// already enforces that).
	for f, v := range gm {
		if v <= 0 || v > 2 {
			t.Errorf("format %s: implausible normalized time %v", f, v)
		}
	}
	if gm["ptr1-B"] < gm["fullmap-entry"]*0.9 {
		t.Errorf("ptr1-B (%v) implausibly faster than full-map (%v)", gm["ptr1-B"], gm["fullmap-entry"])
	}
}

func TestFig14PrivateL2Shape(t *testing.T) {
	h := tinyHarness("canneal")
	tb, gm, err := h.Fig14PrivateL2()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(tb.Rows))
	}
	// With private L2s, stash at 1/8 must still beat sparse at 1/8.
	if gm[system.DirStash][0.125] >= gm[system.DirSparse][0.125] {
		t.Errorf("stash (%v) not better than sparse (%v) at 1/8 with L2s",
			gm[system.DirStash][0.125], gm[system.DirSparse][0.125])
	}
}

func TestParallelSweepMatchesSequential(t *testing.T) {
	seq := tinyHarness("canneal", "barnes")
	par := tinyHarnessParallel(4, "canneal", "barnes")
	a, err := seq.Fig3ExecTime()
	if err != nil {
		t.Fatal(err)
	}
	b, err := par.Fig3ExecTime()
	if err != nil {
		t.Fatal(err)
	}
	for kind, gm := range a.Geomean {
		for i, v := range gm {
			if b.Geomean[kind][i] != v {
				t.Fatalf("parallel diverged: %s[%d] %v vs %v", kind, i, v, b.Geomean[kind][i])
			}
		}
	}
}

// TestSweepSummariesDeterministicAcrossParallelism asserts full-fidelity
// determinism: the complete Results.Summary() of every run in a sweep is
// byte-identical whether the sweep executed sequentially or on 8 workers.
func TestSweepSummariesDeterministicAcrossParallelism(t *testing.T) {
	summaries := func(parallel int) []string {
		h := tinyHarnessParallel(parallel, "canneal", "barnes")
		defer h.Close()
		var batch []system.Config
		for _, w := range h.workloadList() {
			for _, cov := range []float64{1, 0.25} {
				for _, kind := range []string{system.DirSparse, system.DirStash} {
					cfg := h.baseConfig(w)
					cfg.DirKind = kind
					cfg.Coverage = cov
					batch = append(batch, cfg)
				}
			}
		}
		if err := h.runAll(batch); err != nil {
			t.Fatal(err)
		}
		var out []string
		for _, cfg := range batch {
			r, err := h.run(cfg) // memo hit
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, r.Summary())
		}
		return out
	}
	seq := summaries(1)
	par := summaries(8)
	if len(seq) != len(par) {
		t.Fatalf("summary counts differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Errorf("run %d diverged between Parallel=1 and Parallel=8:\n--- sequential:\n%s--- parallel:\n%s", i, seq[i], par[i])
		}
	}
}

func TestFig15PolicyShape(t *testing.T) {
	h := tinyHarness("canneal")
	_, gm, err := h.Fig15ReplacementPolicy()
	if err != nil {
		t.Fatal(err)
	}
	// Stash must be insensitive to the policy: spread across policies small.
	min, max := 1e9, 0.0
	for _, v := range gm[system.DirStash] {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if max/min > 1.15 {
		t.Errorf("stash policy sensitivity too high: [%v, %v]", min, max)
	}
}

func TestFig8AssociativityShape(t *testing.T) {
	// blackscholes is conflict-bound (small hot set, large directory
	// pressure), so associativity visibly helps its sparse directory;
	// canneal would not work here — it is capacity-bound and nearly
	// associativity-insensitive (see the full-scale Fig 8 data).
	h := tinyHarness("blackscholes")
	_, gm, err := h.Fig8Associativity()
	if err != nil {
		t.Fatal(err)
	}
	// Sparse must benefit from associativity far more than stash.
	sparseGain := gm[system.DirSparse][2] - gm[system.DirSparse][16]
	stashGain := gm[system.DirStash][2] - gm[system.DirStash][16]
	if sparseGain <= stashGain {
		t.Errorf("sparse assoc gain (%v) not larger than stash (%v)", sparseGain, stashGain)
	}
}

func TestFig9ScalingShape(t *testing.T) {
	h := tinyHarness("canneal")
	_, gm, err := h.Fig9Scaling()
	if err != nil {
		t.Fatal(err)
	}
	for _, cores := range []int{16, 32, 64} {
		if gm[system.DirStash][cores] >= gm[system.DirSparse][cores] {
			t.Errorf("%d cores: stash (%v) not better than sparse (%v)",
				cores, gm[system.DirStash][cores], gm[system.DirSparse][cores])
		}
	}
}

func TestFig10CuckooBetweenSparseAndStash(t *testing.T) {
	h := tinyHarness("canneal")
	r, err := h.Fig10Cuckoo()
	if err != nil {
		t.Fatal(err)
	}
	i4 := indexOf(r.Coverages, 0.25)
	sparse, cuckoo, stash := r.Geomean[system.DirSparse][i4], r.Geomean[system.DirCuckoo][i4], r.Geomean[system.DirStash][i4]
	if !(stash <= cuckoo && cuckoo <= sparse*1.02) {
		t.Errorf("expected stash (%v) <= cuckoo (%v) <= sparse (%v) at 1/4", stash, cuckoo, sparse)
	}
}
