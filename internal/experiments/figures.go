package experiments

import (
	"fmt"
	"repro/internal/cache"

	"repro/internal/stats"
	"repro/internal/system"
)

// Table1Config renders the simulated-machine configuration (the paper's
// Table 1). It runs nothing.
func (h *Harness) Table1Config() *stats.Table {
	cfg := h.baseConfig("canneal")
	tb := stats.NewTable("Table 1: simulated CMP configuration", "parameter", "value")
	scale := "full (paper model)"
	if h.opts.Quick {
		scale = "quick (proportionally scaled)"
	}
	tb.AddRowf("scale", scale)
	tb.AddRowf("cores", fmt.Sprintf("%d, in-order, blocking, 1 access outstanding", cfg.Cores))
	tb.AddRowf("L1 data cache", fmt.Sprintf("%d sets x %d ways x 64B = %dKB, MESI, LRU",
		cfg.L1Sets, cfg.L1Ways, cfg.L1Sets*cfg.L1Ways*64/1024))
	tb.AddRowf("shared LLC", fmt.Sprintf("%d banks x %d sets x %d ways x 64B = %dMB, inclusive",
		cfg.Cores, cfg.LLCSetsPerBank, cfg.LLCWays, cfg.Cores*cfg.LLCSetsPerBank*cfg.LLCWays*64/(1024*1024)))
	tb.AddRowf("directory", fmt.Sprintf("per-bank slice, %d-way, coverage swept over {2,1,1/2,1/4,1/8,1/16}x of %d aggregate L1 blocks",
		cfg.DirWays, cfg.AggregateL1Blocks()))
	tb.AddRowf("network", "2D mesh, XY routing, 3-cycle routers, 1-cycle 16B links; control 1 flit, data 5 flits")
	tb.AddRowf("memory", "160-cycle latency, posted writebacks")
	tb.AddRowf("workloads", joinNames(h.workloadList()))
	return tb
}

// Table2Workloads characterizes the workload suite under the ideal
// directory: accesses, write ratio, L1 miss rate, and the fraction of
// tracked blocks that are private (the paper's Table 2 / motivation data).
func (h *Harness) Table2Workloads() (*stats.Table, error) {
	tb := stats.NewTable("Table 2: workload characterization (ideal full-map directory)",
		"workload", "accesses", "write-ratio", "l1-miss-rate", "private-fraction", "dir-entries-live")
	for _, w := range h.workloadList() {
		cfg := h.baseConfig(w)
		cfg.DirKind = system.DirFullMap
		cfg.SamplePeriod = 10_000
		r, err := h.run(cfg)
		if err != nil {
			return nil, err
		}
		live := float64(r.DirAllocations - r.DirRemovals)
		tb.AddRowf(w, r.Loads+r.Stores,
			float64(r.Stores)/float64(r.Loads+r.Stores),
			r.L1MissRate, r.AvgPrivateFraction, live)
	}
	return tb, nil
}

// Fig1PrivateFraction measures the enabler of the stash directory: the
// fraction of tracked blocks that are private (cached by exactly one core),
// sampled over the run under the ideal directory.
func (h *Harness) Fig1PrivateFraction() (*stats.Table, map[string]float64, error) {
	tb := stats.NewTable("Fig 1: fraction of directory entries tracking private blocks",
		"workload", "private-fraction")
	tb.Caption = "High private fractions are what make stashing profitable."
	vals := map[string]float64{}
	for _, w := range h.workloadList() {
		cfg := h.baseConfig(w)
		cfg.DirKind = system.DirFullMap
		cfg.SamplePeriod = 10_000
		r, err := h.run(cfg)
		if err != nil {
			return nil, nil, err
		}
		vals[w] = r.AvgPrivateFraction
		tb.AddRowf(w, r.AvgPrivateFraction)
	}
	var sum float64
	for _, v := range vals {
		sum += v
	}
	avg := sum / float64(len(vals))
	vals["MEAN"] = avg
	tb.AddRowf("MEAN", avg)
	return tb, vals, nil
}

// Fig2Invalidations shows why under-provisioned sparse directories hurt:
// conflict-induced invalidations (recall + inclusion victims) per 1k
// accesses explode as coverage shrinks.
func (h *Harness) Fig2Invalidations() (*SweepResult, error) {
	return h.metricSweep(
		"Fig 2: conflict invalidations per 1k accesses, conventional sparse directory",
		"Back-invalidations from directory conflicts; the cost the stash directory removes.",
		[]string{system.DirSparse},
		func(r, base *system.Results) float64 {
			return float64(r.InvalidationsConflict()) / float64(r.Loads+r.Stores) * 1000
		})
}

// Fig3ExecTime is the headline figure: execution time (cycles), normalized
// to the sparse directory at 1x coverage, for sparse vs stash across the
// coverage sweep. The paper's claim: stash at 1/8 matches sparse at 1x.
func (h *Harness) Fig3ExecTime() (*SweepResult, error) {
	return h.metricSweep(
		"Fig 3: normalized execution time vs directory coverage",
		"Normalized to sparse at 1x coverage. Lower is better.",
		[]string{system.DirSparse, system.DirStash},
		func(r, base *system.Results) float64 {
			return float64(r.Cycles) / float64(base.Cycles)
		})
}

// Fig4MissRate shows the L1 miss-rate inflation caused by coverage misses.
func (h *Harness) Fig4MissRate() (*SweepResult, error) {
	return h.metricSweep(
		"Fig 4: L1 miss rate, normalized to sparse at 1x coverage",
		"Sparse inflates misses by invalidating live blocks; stash does not.",
		[]string{system.DirSparse, system.DirStash},
		func(r, base *system.Results) float64 {
			return r.L1MissRate / base.L1MissRate
		})
}

// Fig5Traffic compares total NoC traffic (flit-hops), normalized.
func (h *Harness) Fig5Traffic() (*SweepResult, error) {
	return h.metricSweep(
		"Fig 5: network traffic (flit-hops), normalized to sparse at 1x coverage",
		"Includes the stash directory's discovery broadcast traffic.",
		[]string{system.DirSparse, system.DirStash},
		func(r, base *system.Results) float64 {
			return float64(r.TotalFlitHops) / float64(base.TotalFlitHops)
		})
}

// Fig5TrafficBreakdown renders the flit-hop composition by message class
// for one coverage point (the paper breaks one bar down per class).
func (h *Harness) Fig5TrafficBreakdown(coverage float64) (*stats.Table, error) {
	tb := stats.NewTable(
		fmt.Sprintf("Fig 5b: traffic breakdown by message class at %s coverage (flit-hop share)", covLabel(coverage)),
		"workload", "directory", "request", "response", "invalidation", "ack", "writeback", "discovery", "discovery-resp")
	for _, w := range h.workloadList() {
		for _, kind := range []string{system.DirSparse, system.DirStash} {
			cfg := h.baseConfig(w)
			cfg.DirKind = kind
			cfg.Coverage = coverage
			r, err := h.run(cfg)
			if err != nil {
				return nil, err
			}
			row := []string{w, kind}
			for _, class := range []string{"request", "response", "invalidation", "ack", "writeback", "discovery", "discovery-resp"} {
				row = append(row, fmt.Sprintf("%.3f", float64(r.FlitHopsByClass[class])/float64(r.TotalFlitHops)))
			}
			tb.AddRow(row...)
		}
	}
	return tb, nil
}

// Fig6Discovery characterizes the stash directory's overhead mechanism:
// discovery broadcasts per 1k LLC accesses and the fraction that found
// nothing (stale hidden bits).
func (h *Harness) Fig6Discovery() (*stats.Table, map[float64]float64, error) {
	header := []string{"workload"}
	for _, c := range Coverages {
		header = append(header, covLabel(c))
	}
	tb := stats.NewTable("Fig 6: discovery broadcasts per 1k LLC accesses (stash)", header...)
	tb.Caption = "Parenthesized: fraction of discoveries that found no copy (stale hidden bit)."
	sw, err := h.sweep(system.DirStash, nil)
	if err != nil {
		return nil, nil, err
	}
	means := map[float64]float64{}
	for _, w := range h.workloadList() {
		row := []string{w}
		for _, cov := range Coverages {
			r := sw[w][cov]
			stale := 0.0
			if r.DiscoveryBroadcasts > 0 {
				stale = float64(r.DiscoveryStale) / float64(r.DiscoveryBroadcasts)
			}
			row = append(row, fmt.Sprintf("%.2f (%.2f)", r.DiscoveryPer1kLLCAccesses(), stale))
			means[cov] += r.DiscoveryPer1kLLCAccesses() / float64(len(h.workloadList()))
		}
		tb.AddRow(row...)
	}
	return tb, means, nil
}

// Fig7Energy compares directory energy (dynamic + leakage), normalized to
// sparse at 1x.
func (h *Harness) Fig7Energy() (*SweepResult, error) {
	return h.metricSweep(
		"Fig 7: directory energy (dynamic + leakage), normalized to sparse at 1x coverage",
		"Smaller directories leak less; stash adds discovery traffic but shrinks 8x.",
		[]string{system.DirSparse, system.DirStash},
		func(r, base *system.Results) float64 {
			return r.Energy.DirTotal() / base.Energy.DirTotal()
		})
}

// Fig7EnergyTotal compares whole-system energy, normalized.
func (h *Harness) Fig7EnergyTotal() (*SweepResult, error) {
	return h.metricSweep(
		"Fig 7b: total system energy, normalized to sparse at 1x coverage",
		"",
		[]string{system.DirSparse, system.DirStash},
		func(r, base *system.Results) float64 {
			return r.Energy.Total() / base.Energy.Total()
		})
}

// Fig8Associativity is the sensitivity of both organizations to directory
// associativity at 1/8 coverage.
func (h *Harness) Fig8Associativity() (*stats.Table, map[string]map[int]float64, error) {
	ways := []int{2, 4, 8, 16}
	header := []string{"workload", "directory"}
	for _, wy := range ways {
		header = append(header, fmt.Sprintf("%d-way", wy))
	}
	tb := stats.NewTable("Fig 8: normalized execution time vs directory associativity at 1/8 coverage", header...)
	gm := map[string]map[int]float64{}
	for _, kind := range []string{system.DirSparse, system.DirStash} {
		gm[kind] = map[int]float64{}
		acc := map[int][]float64{}
		for _, w := range h.workloadList() {
			base, err := h.baseline(w)
			if err != nil {
				return nil, nil, err
			}
			row := []string{w, kind}
			for _, wy := range ways {
				cfg := h.baseConfig(w)
				cfg.DirKind = kind
				cfg.Coverage = 0.125
				cfg.DirWays = wy
				r, err := h.run(cfg)
				if err != nil {
					return nil, nil, err
				}
				v := float64(r.Cycles) / float64(base.Cycles)
				acc[wy] = append(acc[wy], v)
				row = append(row, fmt.Sprintf("%.3f", v))
			}
			tb.AddRow(row...)
		}
		row := []string{"GEOMEAN", kind}
		for _, wy := range ways {
			gm[kind][wy] = geomean(acc[wy])
			row = append(row, fmt.Sprintf("%.3f", gm[kind][wy]))
		}
		tb.AddRow(row...)
	}
	return tb, gm, nil
}

// Fig9Scaling compares sparse and stash at 1/8 coverage as the core count
// grows; the conflict problem worsens with scale, stash's advantage grows.
func (h *Harness) Fig9Scaling() (*stats.Table, map[string]map[int]float64, error) {
	cores := []int{16, 32, 64}
	header := []string{"workload", "directory"}
	for _, n := range cores {
		header = append(header, fmt.Sprintf("%d-core", n))
	}
	tb := stats.NewTable("Fig 9: execution time at 1/8 coverage normalized to same-core-count sparse@1x", header...)
	gm := map[string]map[int]float64{}
	for _, kind := range []string{system.DirSparse, system.DirStash} {
		gm[kind] = map[int]float64{}
		acc := map[int][]float64{}
		for _, w := range h.workloadList() {
			row := []string{w, kind}
			for _, n := range cores {
				baseCfg := h.baseConfig(w)
				baseCfg.Cores = n
				baseCfg.DirKind = system.DirSparse
				baseCfg.Coverage = 1
				base, err := h.run(baseCfg)
				if err != nil {
					return nil, nil, err
				}
				cfg := h.baseConfig(w)
				cfg.Cores = n
				cfg.DirKind = kind
				cfg.Coverage = 0.125
				r, err := h.run(cfg)
				if err != nil {
					return nil, nil, err
				}
				v := float64(r.Cycles) / float64(base.Cycles)
				acc[n] = append(acc[n], v)
				row = append(row, fmt.Sprintf("%.3f", v))
			}
			tb.AddRow(row...)
		}
		row := []string{"GEOMEAN", kind}
		for _, n := range cores {
			gm[kind][n] = geomean(acc[n])
			row = append(row, fmt.Sprintf("%.3f", gm[kind][n]))
		}
		tb.AddRow(row...)
	}
	return tb, gm, nil
}

// Table3Occupancy reports directory occupancy and entry churn at 1/4
// coverage: the stash directory keeps its slots full of useful entries.
func (h *Harness) Table3Occupancy() (*stats.Table, error) {
	tb := stats.NewTable("Table 3: directory occupancy and eviction mix at 1/4 coverage",
		"workload", "directory", "occupancy", "stash-evictions", "recall-evictions", "evictions-per-1k-acc")
	for _, w := range h.workloadList() {
		for _, kind := range []string{system.DirSparse, system.DirStash} {
			cfg := h.baseConfig(w)
			cfg.DirKind = kind
			cfg.Coverage = 0.25
			cfg.SamplePeriod = 10_000
			r, err := h.run(cfg)
			if err != nil {
				return nil, err
			}
			evPerK := float64(r.StashEvictions+r.RecallEvictions) / float64(r.Loads+r.Stores) * 1000
			tb.AddRowf(w, kind, r.AvgDirOccupancy, r.StashEvictions, r.RecallEvictions, evPerK)
		}
	}
	return tb, nil
}

// Fig10Cuckoo (extension) compares the cuckoo directory — conflict-free but
// strictly inclusive — against sparse and stash at matched sizes, isolating
// how much of stash's win is relaxed inclusion rather than conflict
// avoidance.
func (h *Harness) Fig10Cuckoo() (*SweepResult, error) {
	return h.metricSweep(
		"Fig 10 (extension): normalized execution time — sparse vs cuckoo vs stash",
		"Cuckoo removes set conflicts but still back-invalidates on capacity; stash relaxes inclusion.",
		[]string{system.DirSparse, system.DirCuckoo, system.DirStash},
		func(r, base *system.Results) float64 {
			return float64(r.Cycles) / float64(base.Cycles)
		})
}

// Fig11Ablation (ablation) compares stash victim policies (E/M-only vs
// also singleton-Shared) and silent vs notified clean evictions at 1/8
// coverage.
func (h *Harness) Fig11Ablation() (*stats.Table, error) {
	tb := stats.NewTable("Fig 11 (ablation): stash variants at 1/8 coverage, normalized execution time",
		"workload", "stash", "stash-ss", "stash silent-evict", "stash-ss silent-evict")
	type variant struct {
		kind   string
		silent bool
	}
	variants := []variant{
		{system.DirStash, false},
		{system.DirStashSS, false},
		{system.DirStash, true},
		{system.DirStashSS, true},
	}
	for _, w := range h.workloadList() {
		base, err := h.baseline(w)
		if err != nil {
			return nil, err
		}
		row := []string{w}
		for _, v := range variants {
			cfg := h.baseConfig(w)
			cfg.DirKind = v.kind
			cfg.Coverage = 0.125
			cfg.SilentCleanEvictions = v.silent
			r, err := h.run(cfg)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.3f", float64(r.Cycles)/float64(base.Cycles)))
		}
		tb.AddRow(row...)
	}
	return tb, nil
}

// Fig12ProtocolVariants (extension) verifies the headline comparison is
// robust to the protocol modeling choices this simulator makes: data
// transfer style (directory-centric two-hop vs owner-forwarded three-hop)
// and core memory-level parallelism (1 vs 4 MSHRs). Each cell is the
// stash@1/8 (and sparse@1/8) time normalized to the same-variant sparse@1x
// baseline.
func (h *Harness) Fig12ProtocolVariants() (*stats.Table, map[string]map[string]float64, error) {
	type variant struct {
		name     string
		threeHop bool
		mshrs    int
	}
	variants := []variant{
		{"2hop/1mshr", false, 1},
		{"3hop/1mshr", true, 1},
		{"2hop/4mshr", false, 4},
		{"3hop/4mshr", true, 4},
	}
	header := []string{"workload", "directory"}
	for _, v := range variants {
		header = append(header, v.name)
	}
	tb := stats.NewTable("Fig 12 (extension): stash@1/8 vs sparse@1/8 under protocol variants, normalized to same-variant sparse@1x", header...)
	gm := map[string]map[string]float64{}
	for _, kind := range []string{system.DirSparse, system.DirStash} {
		gm[kind] = map[string]float64{}
		acc := map[string][]float64{}
		for _, w := range h.workloadList() {
			row := []string{w, kind}
			for _, v := range variants {
				baseCfg := h.baseConfig(w)
				baseCfg.DirKind = system.DirSparse
				baseCfg.Coverage = 1
				baseCfg.ThreeHopForwarding = v.threeHop
				baseCfg.MSHRs = v.mshrs
				base, err := h.run(baseCfg)
				if err != nil {
					return nil, nil, err
				}
				cfg := h.baseConfig(w)
				cfg.DirKind = kind
				cfg.Coverage = 0.125
				cfg.ThreeHopForwarding = v.threeHop
				cfg.MSHRs = v.mshrs
				r, err := h.run(cfg)
				if err != nil {
					return nil, nil, err
				}
				val := float64(r.Cycles) / float64(base.Cycles)
				acc[v.name] = append(acc[v.name], val)
				row = append(row, fmt.Sprintf("%.3f", val))
			}
			tb.AddRow(row...)
		}
		row := []string{"GEOMEAN", kind}
		for _, v := range variants {
			gm[kind][v.name] = geomean(acc[v.name])
			row = append(row, fmt.Sprintf("%.3f", gm[kind][v.name]))
		}
		tb.AddRow(row...)
	}
	return tb, gm, nil
}

// Fig13EntryFormat (extension) compares directory entry formats at 1/8
// coverage: full-map sharer vectors versus Dir_P-B limited pointers with
// broadcast-on-overflow. Reported per format: normalized execution time,
// normalized directory energy (narrower entries leak and switch less), and
// broadcast invalidations per 1k accesses.
func (h *Harness) Fig13EntryFormat() (*stats.Table, map[string]float64, error) {
	formats := []struct {
		name  string
		limit int
	}{
		{"fullmap-entry", 0},
		{"ptr4-B", 4},
		{"ptr2-B", 2},
		{"ptr1-B", 1},
	}
	tb := stats.NewTable("Fig 13 (extension): stash@1/8 under directory entry formats",
		"workload", "format", "norm-time", "norm-dir-energy", "bcast-invs-per-1k-acc", "entry-bits")
	gmTime := map[string][]float64{}
	for _, w := range h.workloadList() {
		base, err := h.baseline(w)
		if err != nil {
			return nil, nil, err
		}
		for _, f := range formats {
			cfg := h.baseConfig(w)
			cfg.DirKind = system.DirStash
			cfg.Coverage = 0.125
			cfg.PointerLimit = f.limit
			r, err := h.run(cfg)
			if err != nil {
				return nil, nil, err
			}
			normTime := float64(r.Cycles) / float64(base.Cycles)
			gmTime[f.name] = append(gmTime[f.name], normTime)
			bcastPerK := float64(r.BroadcastInvalidations) / float64(r.Loads+r.Stores) * 1000
			tb.AddRowf(w, f.name, normTime,
				r.Energy.DirTotal()/base.Energy.DirTotal(), bcastPerK, cfg.DirEntryBits())
		}
	}
	gm := map[string]float64{}
	for _, f := range formats {
		gm[f.name] = geomean(gmTime[f.name])
		tb.AddRowf("GEOMEAN", f.name, gm[f.name], "", "", "")
	}
	return tb, gm, nil
}

// Fig14PrivateL2 (extension) adds the private L2 the paper's machine class
// carries (128KB per core at full scale, scaled with the quick machine) and
// repeats the headline comparison. Private L2s multiply the capacity the
// directory must cover, so under-provisioned sparse directories hurt even
// more while the stash directory keeps absorbing the pressure.
func (h *Harness) Fig14PrivateL2() (*stats.Table, map[string]map[float64]float64, error) {
	covs := []float64{1, 0.25, 0.125}
	header := []string{"workload", "directory"}
	for _, c := range covs {
		header = append(header, covLabel(c))
	}
	tb := stats.NewTable("Fig 14 (extension): normalized execution time with private L2s (coverage vs aggregate L2 capacity)", header...)
	tb.Caption = "Normalized to sparse@1x with the same L2 hierarchy."
	withL2 := func(cfg *system.Config) {
		// 4x the L1's capacity, 8-way: 128KB at paper scale, 64KB quick.
		cfg.L2Sets = cfg.L1Sets * 2
		cfg.L2Ways = cfg.L1Ways * 2
	}
	gm := map[string]map[float64]float64{}
	for _, kind := range []string{system.DirSparse, system.DirStash} {
		gm[kind] = map[float64]float64{}
		acc := map[float64][]float64{}
		for _, w := range h.workloadList() {
			baseCfg := h.baseConfig(w)
			baseCfg.DirKind = system.DirSparse
			baseCfg.Coverage = 1
			withL2(&baseCfg)
			base, err := h.run(baseCfg)
			if err != nil {
				return nil, nil, err
			}
			row := []string{w, kind}
			for _, cov := range covs {
				cfg := h.baseConfig(w)
				cfg.DirKind = kind
				cfg.Coverage = cov
				withL2(&cfg)
				r, err := h.run(cfg)
				if err != nil {
					return nil, nil, err
				}
				v := float64(r.Cycles) / float64(base.Cycles)
				acc[cov] = append(acc[cov], v)
				row = append(row, fmt.Sprintf("%.3f", v))
			}
			tb.AddRow(row...)
		}
		row := []string{"GEOMEAN", kind}
		for _, cov := range covs {
			gm[kind][cov] = geomean(acc[cov])
			row = append(row, fmt.Sprintf("%.3f", gm[kind][cov]))
		}
		tb.AddRow(row...)
	}
	return tb, gm, nil
}

// Fig15ReplacementPolicy (ablation) sweeps the directory replacement
// policy at 1/8 coverage. The stash directory prefers stashable victims
// regardless of recency, so it should be far less policy-sensitive than
// the conventional sparse directory.
func (h *Harness) Fig15ReplacementPolicy() (*stats.Table, map[string]map[string]float64, error) {
	policies := []cache.PolicyKind{cache.LRU, cache.TreePLRU, cache.NRU, cache.Random}
	header := []string{"workload", "directory"}
	for _, p := range policies {
		header = append(header, p.String())
	}
	tb := stats.NewTable("Fig 15 (ablation): normalized execution time vs directory replacement policy at 1/8 coverage", header...)
	gm := map[string]map[string]float64{}
	for _, kind := range []string{system.DirSparse, system.DirStash} {
		gm[kind] = map[string]float64{}
		acc := map[string][]float64{}
		for _, w := range h.workloadList() {
			base, err := h.baseline(w)
			if err != nil {
				return nil, nil, err
			}
			row := []string{w, kind}
			for _, p := range policies {
				cfg := h.baseConfig(w)
				cfg.DirKind = kind
				cfg.Coverage = 0.125
				cfg.ReplacementPolicy = p
				r, err := h.run(cfg)
				if err != nil {
					return nil, nil, err
				}
				v := float64(r.Cycles) / float64(base.Cycles)
				acc[p.String()] = append(acc[p.String()], v)
				row = append(row, fmt.Sprintf("%.3f", v))
			}
			tb.AddRow(row...)
		}
		row := []string{"GEOMEAN", kind}
		for _, p := range policies {
			gm[kind][p.String()] = geomean(acc[p.String()])
			row = append(row, fmt.Sprintf("%.3f", gm[kind][p.String()]))
		}
		tb.AddRow(row...)
	}
	return tb, gm, nil
}
