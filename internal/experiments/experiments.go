// Package experiments regenerates every table and figure of the paper's
// evaluation (as reconstructed in DESIGN.md). Each ExpXxx function runs the
// simulations it needs — memoizing them in the Harness so figures that
// share configurations (execution time, miss rate, traffic, energy all come
// from the same sweep) reuse runs — and renders the same rows/series the
// paper reports.
//
// EXPERIMENTS.md records the expected shapes and the measured outcomes.
package experiments

import (
	"context"
	"fmt"
	"math"
	"strings"

	"repro/internal/runner"
	"repro/internal/stats"
	"repro/internal/system"
	"repro/internal/workloads"
)

// Coverages is the directory-size axis of the paper's sweeps: directory
// entries as a fraction of aggregate L1 capacity.
var Coverages = []float64{2, 1, 0.5, 0.25, 0.125, 0.0625}

// Options scope a harness run.
type Options struct {
	// Quick selects the proportionally scaled-down machine (see
	// system.QuickConfig); Full uses the paper-size model.
	Quick bool
	// Workloads restricts the suite; nil means every built-in workload.
	Workloads []string
	// Progress, when non-nil, receives one line per completed simulation.
	Progress func(msg string)
	// ConfigHook, when non-nil, post-processes every base configuration;
	// tests use it to shrink runs further.
	ConfigHook func(*system.Config)
	// Parallel is how many simulations may run concurrently when an
	// experiment batches independent runs (sweeps). 0 or 1 means
	// sequential; negative means GOMAXPROCS.
	Parallel int
	// CacheDir, when non-empty, persists simulation results to disk (via
	// the shared internal/runner cache) so repeated sweeps across process
	// restarts reuse earlier runs.
	CacheDir string
}

// Harness memoizes simulation runs across experiments by delegating every
// execution to an internal/runner job engine — the same engine cmd/stashd
// serves over HTTP — so batching, deduplication, cancellation and the
// (optional) disk cache behave identically everywhere. The batched runners
// below are safe for concurrent simulations; the per-figure methods
// themselves are not meant to be called from multiple goroutines.
type Harness struct {
	opts   Options
	runner *runner.Runner
}

// NewHarness returns a harness with an empty run cache.
func NewHarness(opts Options) *Harness {
	workers := opts.Parallel
	if workers >= 0 && workers <= 1 {
		workers = 1 // 0 or 1 means sequential; runner treats <=0 as GOMAXPROCS
	}
	h := &Harness{opts: opts}
	h.runner = runner.New(runner.Options{
		Workers:  workers,
		CacheDir: opts.CacheDir,
		// Sweeps revisit every run when rendering tables; keep them all.
		MemoryEntries: runner.UnlimitedMemory,
		Events:        h.onEvent,
	})
	return h
}

// onEvent adapts runner lifecycle events to the Progress callback: one
// line per actually-simulated run, matching the harness's historic format.
func (h *Harness) onEvent(e runner.Event) {
	progress := h.opts.Progress
	if progress == nil || e.Kind != runner.EventFinished || e.CacheHit != "" {
		return
	}
	cfg := e.Config
	progress(fmt.Sprintf("ran %s/%s cov=%.4g cores=%d: %d cycles",
		cfg.DirKind, cfg.WorkloadName(), cfg.Coverage, cfg.Cores, e.Result.Cycles))
}

// Close drains the harness's worker pool. Optional: a harness that is
// simply dropped leaks only idle goroutines.
func (h *Harness) Close() { h.runner.Close() }

// workloadList resolves the workload set.
func (h *Harness) workloadList() []string {
	if len(h.opts.Workloads) != 0 {
		return h.opts.Workloads
	}
	return workloads.Names()
}

// baseConfig builds the scoped base configuration for a workload.
func (h *Harness) baseConfig(workload string) system.Config {
	var cfg system.Config
	if h.opts.Quick {
		cfg = system.QuickConfig(workload)
	} else {
		cfg = system.DefaultConfig(workload)
	}
	if h.opts.ConfigHook != nil {
		h.opts.ConfigHook(&cfg)
	}
	return cfg
}

// run executes (or recalls) one simulation through the shared job engine.
func (h *Harness) run(cfg system.Config) (*system.Results, error) {
	return h.runner.Run(context.Background(), cfg)
}

// runAll executes a batch of independent configurations, up to
// Options.Parallel at a time, filling the memo cache. Simulations are
// single-threaded and deterministic, so running several concurrently
// changes wall-clock time only. The runner deduplicates identical configs
// and cancels still-queued work as soon as one simulation fails.
func (h *Harness) runAll(cfgs []system.Config) error {
	return h.runner.RunAll(context.Background(), cfgs)
}

// sweep runs (workload x coverage) for one directory kind, batching the
// runs through runAll so Options.Parallel applies.
func (h *Harness) sweep(kind string, mutate func(*system.Config)) (map[string]map[float64]*system.Results, error) {
	var batch []system.Config
	for _, w := range h.workloadList() {
		for _, cov := range Coverages {
			cfg := h.baseConfig(w)
			cfg.DirKind = kind
			cfg.Coverage = cov
			if mutate != nil {
				mutate(&cfg)
			}
			batch = append(batch, cfg)
		}
	}
	if err := h.runAll(batch); err != nil {
		return nil, err
	}
	out := make(map[string]map[float64]*system.Results)
	i := 0
	for _, w := range h.workloadList() {
		out[w] = make(map[float64]*system.Results)
		for _, cov := range Coverages {
			r, err := h.run(batch[i]) // memo hit
			if err != nil {
				return nil, err
			}
			out[w][cov] = r
			i++
		}
	}
	return out, nil
}

// baseline returns the normalization baseline: the conventional sparse
// directory at 1x coverage (the "well-provisioned sparse" configuration).
func (h *Harness) baseline(workload string) (*system.Results, error) {
	cfg := h.baseConfig(workload)
	cfg.DirKind = system.DirSparse
	cfg.Coverage = 1
	return h.run(cfg)
}

// geomean of a non-empty slice.
func geomean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vs {
		if v <= 0 {
			return 0
		}
		sum += math.Log(v)
	}
	return math.Exp(sum / float64(len(vs)))
}

// covLabel formats a coverage as the paper does (2x, 1x, 1/2, 1/4 ...).
func covLabel(c float64) string {
	if c >= 1 {
		return fmt.Sprintf("%gx", c)
	}
	return fmt.Sprintf("1/%g", 1/c)
}

// SweepResult is the shared shape of the coverage-sweep figures: a rendered
// table plus the per-organization geometric-mean series for assertions.
type SweepResult struct {
	Table     *stats.Table
	Coverages []float64
	// Geomean[org][i] is the geometric mean over workloads at Coverages[i].
	Geomean map[string][]float64
}

// metricSweep renders a normalized-metric sweep for the given organizations.
func (h *Harness) metricSweep(title, caption string, kinds []string,
	metric func(r, base *system.Results) float64) (*SweepResult, error) {

	header := []string{"workload", "directory"}
	for _, c := range Coverages {
		header = append(header, covLabel(c))
	}
	tb := stats.NewTable(title, header...)
	tb.Caption = caption

	res := &SweepResult{Table: tb, Coverages: Coverages, Geomean: map[string][]float64{}}
	byKind := make(map[string]map[string]map[float64]*system.Results)
	for _, kind := range kinds {
		sw, err := h.sweep(kind, nil)
		if err != nil {
			return nil, err
		}
		byKind[kind] = sw
	}
	for _, w := range h.workloadList() {
		base, err := h.baseline(w)
		if err != nil {
			return nil, err
		}
		for _, kind := range kinds {
			row := []string{w, kind}
			for _, cov := range Coverages {
				row = append(row, fmt.Sprintf("%.3f", metric(byKind[kind][w][cov], base)))
			}
			tb.AddRow(row...)
		}
	}
	for _, kind := range kinds {
		gm := make([]float64, len(Coverages))
		for i, cov := range Coverages {
			var vs []float64
			for _, w := range h.workloadList() {
				base, _ := h.baseline(w)
				vs = append(vs, metric(byKind[kind][w][cov], base))
			}
			gm[i] = geomean(vs)
		}
		res.Geomean[kind] = gm
		row := []string{"GEOMEAN", kind}
		for _, v := range gm {
			row = append(row, fmt.Sprintf("%.3f", v))
		}
		tb.AddRow(row...)
	}
	return res, nil
}

// joinNames renders a workload list for captions.
func joinNames(ws []string) string { return strings.Join(ws, ", ") }
