package experiments

import (
	"fmt"

	"repro/internal/stats"
	"repro/internal/system"
)

// ScalingCores is the core-count axis of the 16-to-256-core scaling study.
// 128 and 256 are past the paper's evaluated range; they are where
// directory pressure (and the stash design's advantage or breakdown)
// should be most visible.
var ScalingCores = []int{16, 32, 64, 128, 256}

// ScalingCoverages is the (reduced) coverage axis the scaling study sweeps
// at every core count; the full Coverages axis at 256 cores would be
// disproportionately slow for what the study reports.
var ScalingCoverages = []float64{1, 0.25, 0.125}

// ScalingStudy sweeps sparse and stash over (cores x coverage): for each
// point it reports execution time normalized to the same-core-count
// sparse@1x baseline — the Fig 9 metric extended to 128 and 256 cores —
// plus the recall-invalidation rate, the directory-pressure symptom that
// grows with scale. The returned map is gm[kind][cores][coverage] of
// geomeans across workloads.
func (h *Harness) ScalingStudy() (*stats.Table, map[string]map[int]map[float64]float64, error) {
	header := []string{"workload", "directory", "coverage"}
	for _, n := range ScalingCores {
		header = append(header, fmt.Sprintf("%d-core", n))
	}
	tb := stats.NewTable("Scaling study: execution time normalized to same-core-count sparse@1x, 16-256 cores", header...)

	// Batch every run up front so Options.Parallel applies across the
	// whole grid (baselines included; the runner deduplicates).
	var batch []system.Config
	point := func(w, kind string, cores int, cov float64) system.Config {
		cfg := h.baseConfig(w)
		cfg.Cores = cores
		cfg.DirKind = kind
		cfg.Coverage = cov
		return cfg
	}
	for _, w := range h.workloadList() {
		for _, n := range ScalingCores {
			batch = append(batch, point(w, system.DirSparse, n, 1))
			for _, kind := range []string{system.DirSparse, system.DirStash} {
				for _, cov := range ScalingCoverages {
					batch = append(batch, point(w, kind, n, cov))
				}
			}
		}
	}
	if err := h.runAll(batch); err != nil {
		return nil, nil, err
	}

	gm := map[string]map[int]map[float64]float64{}
	for _, kind := range []string{system.DirSparse, system.DirStash} {
		gm[kind] = map[int]map[float64]float64{}
		acc := map[int]map[float64][]float64{}
		for _, n := range ScalingCores {
			acc[n] = map[float64][]float64{}
		}
		for _, w := range h.workloadList() {
			for _, cov := range ScalingCoverages {
				row := []string{w, kind, covLabel(cov)}
				for _, n := range ScalingCores {
					base, err := h.run(point(w, system.DirSparse, n, 1))
					if err != nil {
						return nil, nil, err
					}
					r, err := h.run(point(w, kind, n, cov))
					if err != nil {
						return nil, nil, err
					}
					v := float64(r.Cycles) / float64(base.Cycles)
					acc[n][cov] = append(acc[n][cov], v)
					row = append(row, fmt.Sprintf("%.3f", v))
				}
				tb.AddRow(row...)
			}
		}
		for _, cov := range ScalingCoverages {
			row := []string{"GEOMEAN", kind, covLabel(cov)}
			for _, n := range ScalingCores {
				if gm[kind][n] == nil {
					gm[kind][n] = map[float64]float64{}
				}
				gm[kind][n][cov] = geomean(acc[n][cov])
				row = append(row, fmt.Sprintf("%.3f", gm[kind][n][cov]))
			}
			tb.AddRow(row...)
		}
	}
	return tb, gm, nil
}

// ScalingRecalls reports the per-core-count recall-invalidation pressure
// at the tightest scaling coverage: recalls per 1k accesses for sparse vs
// stash. It reuses the ScalingStudy runs (memoized), so calling both costs
// one sweep.
func (h *Harness) ScalingRecalls() (*stats.Table, error) {
	cov := ScalingCoverages[len(ScalingCoverages)-1]
	header := []string{"workload", "directory"}
	for _, n := range ScalingCores {
		header = append(header, fmt.Sprintf("%d-core", n))
	}
	tb := stats.NewTable(
		fmt.Sprintf("Scaling study: recall invalidations per 1k accesses at %s coverage", covLabel(cov)),
		header...)
	for _, kind := range []string{system.DirSparse, system.DirStash} {
		for _, w := range h.workloadList() {
			row := []string{w, kind}
			for _, n := range ScalingCores {
				cfg := h.baseConfig(w)
				cfg.Cores = n
				cfg.DirKind = kind
				cfg.Coverage = cov
				r, err := h.run(cfg)
				if err != nil {
					return nil, err
				}
				accesses := r.Loads + r.Stores
				rate := 0.0
				if accesses > 0 {
					rate = 1000 * float64(r.InvsRecall) / float64(accesses)
				}
				row = append(row, fmt.Sprintf("%.2f", rate))
			}
			tb.AddRow(row...)
		}
	}
	return tb, nil
}
