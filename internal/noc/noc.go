// Package noc models the on-chip interconnect: a 2D mesh with XY
// dimension-order routing, per-link serialization and contention, and
// per-message-class traffic accounting (flit-hops), which feeds both the
// paper's network-traffic figures and the energy model.
//
// Timing model: a message is routed hop by hop at send time. At each link it
// reserves the link for as many cycles as it has flits (serialization), so
// later messages crossing the same link observe queueing delay. Per-hop cost
// is router latency + link latency. A single delivery event fires at the
// computed arrival cycle. This link-reservation model captures first-order
// contention without per-flit event overhead and is fully deterministic.
package noc

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/stats"
)

// NodeID identifies a mesh node (one tile). Tiles are numbered row-major:
// node n sits at (n % width, n / width).
type NodeID int

// Class categorizes a message for traffic accounting. The experiment
// harness reports flit-hops per class, matching the traffic-breakdown
// figure.
type Class uint8

// Message classes. Discovery and DiscoveryResp exist so the stash
// directory's broadcast overhead is separately visible.
const (
	ClassRequest       Class = iota // GetS/GetM/upgrade requests
	ClassResponse                   // data and grant responses
	ClassInvalidation               // Inv, Fetch, FetchInv, recalls
	ClassAck                        // InvAck, PutAck and other control acks
	ClassWriteback                  // PutS/PutE/PutM and victim data
	ClassDiscovery                  // stash discovery probes
	ClassDiscoveryResp              // stash discovery responses
	NumClasses
)

// String returns the class name used in reports.
func (c Class) String() string {
	switch c {
	case ClassRequest:
		return "request"
	case ClassResponse:
		return "response"
	case ClassInvalidation:
		return "invalidation"
	case ClassAck:
		return "ack"
	case ClassWriteback:
		return "writeback"
	case ClassDiscovery:
		return "discovery"
	case ClassDiscoveryResp:
		return "discovery-resp"
	}
	return fmt.Sprintf("Class(%d)", uint8(c))
}

// Message is one network transfer. Payload is opaque to the NoC; the
// coherence package stores its protocol messages there.
//
//stash:tileowned
type Message struct {
	Src, Dst NodeID
	Class    Class
	Flits    int
	Payload  any

	// pooled marks a message acquired through Post; the mesh recycles it
	// after delivery. Caller-built messages passed to Send are never
	// recycled.
	pooled bool
}

// Endpoint receives messages delivered to a node.
type Endpoint interface {
	Deliver(msg *Message)
}

// Config describes the mesh.
type Config struct {
	Width, Height int
	RouterLatency sim.Cycle // cycles spent in each router's pipeline
	LinkLatency   sim.Cycle // cycles to traverse each link
	// LinkBandwidth is flits per cycle per link; 1 matches a 16-byte link
	// with 16-byte flits. Must be >= 1.
	LinkBandwidth int
}

// DefaultConfig returns the mesh parameters of the paper's 16-core model.
func DefaultConfig(width, height int) Config {
	return Config{
		Width:         width,
		Height:        height,
		RouterLatency: 3,
		LinkLatency:   1,
		LinkBandwidth: 1,
	}
}

// Mesh is the interconnect instance.
//
// In a parallel run there is exactly one Mesh, aliased by every tile view;
// its mutable state (link reservations, the envelope pool) is touched only
// in fold context — the serial engine, or the epoch merge via ReserveRoute.
//
//stash:shared one spine aliased by every tile view; mutated only in fold context
type Mesh struct {
	cfg       Config
	engine    *sim.Engine
	endpoints []Endpoint

	// linkFree[l] is the first cycle at which link l can start serializing
	// a new message. Links are unidirectional; see linkIndex.
	linkFree []sim.Cycle

	set       *stats.Set
	msgs      [NumClasses]*stats.Counter
	flitHops  [NumClasses]*stats.Counter
	latency   *stats.Histogram
	delivered *stats.Counter

	// free recycles Post-acquired messages; deliverFn is the single
	// long-lived delivery callback shared by every in-flight message, so a
	// send schedules its delivery event without allocating a closure.
	free      []*Message
	deliverFn func(any)
}

// New builds a mesh attached to the given engine.
func New(engine *sim.Engine, cfg Config) (*Mesh, error) {
	if cfg.Width < 1 || cfg.Height < 1 {
		return nil, fmt.Errorf("noc: invalid mesh %dx%d", cfg.Width, cfg.Height)
	}
	if cfg.LinkBandwidth < 1 {
		return nil, fmt.Errorf("noc: link bandwidth must be >= 1, got %d", cfg.LinkBandwidth)
	}
	n := cfg.Width * cfg.Height
	m := &Mesh{
		cfg:       cfg,
		engine:    engine,
		endpoints: make([]Endpoint, n),
		// 4 outgoing directions per node is an upper bound; unused slots
		// stay at zero and are never indexed.
		linkFree: make([]sim.Cycle, n*4),
		set:      stats.NewSet("noc"),
	}
	for c := Class(0); c < NumClasses; c++ {
		m.msgs[c] = m.set.Counter("messages." + c.String())
		m.flitHops[c] = m.set.Counter("flit_hops." + c.String())
	}
	m.latency = m.set.Histogram("latency")
	m.delivered = m.set.Counter("delivered")
	// Bind the method value once: every in-flight message shares this one
	// callback, so sends schedule delivery without allocating a closure.
	m.deliverFn = m.deliver
	return m, nil
}

// deliver hands an arrived message to its destination endpoint and recycles
// a pooled envelope.
//
//stash:fold serial-engine delivery path; parallel tiles deliver via tileLocal, never through the mesh
//stash:hotpath
func (m *Mesh) deliver(arg any) {
	msg := arg.(*Message)
	m.delivered.Inc()
	m.endpoints[msg.Dst].Deliver(msg)
	if msg.pooled {
		m.putMessage(msg)
	}
}

// getMessage draws an envelope from the free list.
//
//stash:fold serial-engine send path; parallel tiles draw envelopes from their tileLocal pool
//stash:acquire
//stash:hotpath
func (m *Mesh) getMessage() *Message {
	if n := len(m.free); n > 0 {
		msg := m.free[n-1]
		m.free = m.free[:n-1]
		return msg
	}
	return &Message{pooled: true} //stash:ignore hotpath pool warm-up; amortized away by reuse
}

// putMessage returns a pooled envelope to the free list.
//
//stash:fold serial-engine delivery path; parallel tiles recycle envelopes tile-locally
//stash:release
//stash:hotpath
func (m *Mesh) putMessage(msg *Message) {
	msg.Payload = nil
	m.free = append(m.free, msg)
}

// Nodes returns the number of mesh nodes.
func (m *Mesh) Nodes() int { return m.cfg.Width * m.cfg.Height }

// Stats returns the mesh metric set.
func (m *Mesh) Stats() *stats.Set { return m.set }

// Attach registers the endpoint for node id. It must be called once per
// node before any traffic reaches that node.
func (m *Mesh) Attach(id NodeID, ep Endpoint) {
	if m.endpoints[id] != nil {
		panic(fmt.Sprintf("noc: endpoint for node %d attached twice", id))
	}
	m.endpoints[id] = ep
}

// Coord returns the (x, y) position of node id.
func (m *Mesh) Coord(id NodeID) (x, y int) {
	return int(id) % m.cfg.Width, int(id) / m.cfg.Width
}

// nodeAt returns the node at (x, y).
func (m *Mesh) nodeAt(x, y int) NodeID {
	return NodeID(y*m.cfg.Width + x)
}

// direction encoding for linkIndex.
const (
	dirEast = iota
	dirWest
	dirNorth
	dirSouth
)

// linkIndex identifies the unidirectional link leaving node from in
// direction dir.
func (m *Mesh) linkIndex(from NodeID, dir int) int {
	return int(from)*4 + dir
}

// Hops returns the number of links on the XY route between two nodes.
func (m *Mesh) Hops(src, dst NodeID) int {
	sx, sy := m.Coord(src)
	dx, dy := m.Coord(dst)
	return abs(sx-dx) + abs(sy-dy)
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// route reserves the XY path's links for a message of the given class and
// size injected at cycle now, records flit-hop and latency statistics, and
// returns the arrival cycle. It is the timing core shared by Send (serial,
// at send time) and ReserveRoute (parallel, replayed at the epoch merge):
// both produce identical link reservations and arrival cycles for the same
// (src, dst, flits, now) inputs, which is what makes the parallel engine's
// deferred replay timing-equivalent to the serial engine's inline send.
//
//stash:fold called only from Send (serial engine) and ReserveRoute (epoch merge, workers parked)
//stash:hotpath
func (m *Mesh) route(src, dst NodeID, class Class, flits int, now sim.Cycle) sim.Cycle {
	t := now + m.cfg.RouterLatency // injection through the local router
	if src != dst {
		serialize := sim.Cycle((flits + m.cfg.LinkBandwidth - 1) / m.cfg.LinkBandwidth)
		x, y := m.Coord(src)
		dx, dy := m.Coord(dst)
		hops := 0
		// XY routing: walk X first, then Y, reserving each link.
		for x != dx || y != dy {
			var dir int
			nx, ny := x, y
			switch {
			case x < dx:
				dir, nx = dirEast, x+1
			case x > dx:
				dir, nx = dirWest, x-1
			case y < dy:
				dir, ny = dirSouth, y+1
			default:
				dir, ny = dirNorth, y-1
			}
			link := m.linkIndex(m.nodeAt(x, y), dir)
			start := t
			if m.linkFree[link] > start {
				start = m.linkFree[link]
			}
			m.linkFree[link] = start + serialize
			t = start + m.cfg.LinkLatency + m.cfg.RouterLatency
			x, y = nx, ny
			hops++
		}
		m.flitHops[class].Add(int64(flits * hops))
	}
	m.latency.Observe(int64(t - now))
	return t
}

// Send routes msg from msg.Src to msg.Dst and schedules its delivery. It
// returns the arrival cycle. Messages to self are delivered after the
// router latency only (local turnaround), with no link traffic. The mesh
// owns msg until the destination endpoint's Deliver runs.
//
//stash:fold serial engine only; parallel sends park in tile mailboxes and replay through ReserveRoute
//stash:transfer
//stash:hotpath
func (m *Mesh) Send(msg *Message) sim.Cycle {
	if msg.Flits < 1 {
		panic("noc: message with no flits")
	}
	m.msgs[msg.Class].Inc()
	if m.endpoints[msg.Dst] == nil {
		panic(fmt.Sprintf("noc: no endpoint attached to node %d", msg.Dst))
	}
	t := m.route(msg.Src, msg.Dst, msg.Class, msg.Flits, m.engine.Now())
	m.engine.AtArg(t, "noc.deliver", m.deliverFn, msg)
	return t
}

// ReserveRoute accounts and reserves the route of a cross-tile message
// sent at cycle sent, returning its arrival cycle — without scheduling a
// delivery (the parallel driver schedules it on the destination tile's own
// queue). The epoch merge replays every cross-tile send of an epoch
// through here in the canonical (cycle, source tile, send order) order, so
// link contention resolves exactly as if the sends had been routed inline
// in that order.
//
//stash:fold runs at the epoch merge with every worker parked at the barrier
//stash:hotpath
func (m *Mesh) ReserveRoute(src, dst NodeID, class Class, flits int, sent sim.Cycle) sim.Cycle {
	if flits < 1 {
		panic("noc: message with no flits")
	}
	m.msgs[class].Inc()
	return m.route(src, dst, class, flits, sent)
}

// MinHopLatency returns the smallest possible latency of a cross-tile
// message: one hop with an idle link — source router, link traversal,
// destination router. It is the parallel engine's lookahead bound L: a
// message emitted in epoch [k·L, (k+1)·L) can never be due before epoch
// k+1, so deferring its delivery to the epoch barrier never misses its
// cycle.
func (c Config) MinHopLatency() sim.Cycle {
	return 2*c.RouterLatency + c.LinkLatency
}

// MinHopLatency returns the mesh's lookahead bound (see Config.MinHopLatency).
func (m *Mesh) MinHopLatency() sim.Cycle { return m.cfg.MinHopLatency() }

// LocalTraffic accumulates one tile's self-addressed traffic (messages a
// tile sends to itself never touch links and, in the parallel engine, are
// delivered tile-locally without crossing the epoch merge). FoldLocal
// folds it into the mesh statistics at end of run; every self delivery has
// the same latency (the router turnaround), so a count is a sufficient
// statistic for the latency histogram.
//
//stash:tileowned
type LocalTraffic struct {
	Msgs      [NumClasses]int64
	Delivered int64
}

// FoldLocal merges a tile's local-traffic accumulator into the mesh
// statistics. The parallel driver calls it once per tile, in tile order,
// after the run completes; counter sums and same-valued histogram batches
// commute, so the folded totals equal what inline accounting would have
// produced regardless of shard layout.
func (m *Mesh) FoldLocal(l *LocalTraffic) {
	var self int64
	for c := Class(0); c < NumClasses; c++ {
		m.msgs[c].Add(l.Msgs[c])
		self += l.Msgs[c]
	}
	m.latency.ObserveN(int64(m.cfg.RouterLatency), self)
	m.delivered.Add(l.Delivered)
}

// Post sends a pooled message: the transfer envelope is recycled after
// delivery, so the steady-state send path performs no allocation. The
// payload's lifetime is the receiver's concern, exactly as with Send.
//
//stash:hotpath
func (m *Mesh) Post(src, dst NodeID, class Class, flits int, payload any) sim.Cycle {
	msg := m.getMessage()
	msg.Src, msg.Dst, msg.Class, msg.Flits, msg.Payload = src, dst, class, flits, payload
	return m.Send(msg)
}

// TotalFlitHops returns the sum of flit-hops across all classes.
func (m *Mesh) TotalFlitHops() int64 {
	var total int64
	for c := Class(0); c < NumClasses; c++ {
		total += m.flitHops[c].Value()
	}
	return total
}

// FlitHops returns the flit-hops recorded for one class.
func (m *Mesh) FlitHops(c Class) int64 { return m.flitHops[c].Value() }

// Messages returns the message count recorded for one class.
func (m *Mesh) Messages(c Class) int64 { return m.msgs[c].Value() }
