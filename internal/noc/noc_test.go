package noc

import (
	"testing"

	"repro/internal/sim"
)

type sink struct {
	got []*Message
	at  []sim.Cycle
	eng *sim.Engine
}

func (s *sink) Deliver(m *Message) {
	s.got = append(s.got, m)
	s.at = append(s.at, s.eng.Now())
}

func newTestMesh(t *testing.T, w, h int) (*sim.Engine, *Mesh, []*sink) {
	t.Helper()
	eng := sim.NewEngine()
	m, err := New(eng, Config{Width: w, Height: h, RouterLatency: 3, LinkLatency: 1, LinkBandwidth: 1})
	if err != nil {
		t.Fatal(err)
	}
	sinks := make([]*sink, m.Nodes())
	for i := range sinks {
		sinks[i] = &sink{eng: eng}
		m.Attach(NodeID(i), sinks[i])
	}
	return eng, m, sinks
}

func TestCoord(t *testing.T) {
	_, m, _ := newTestMesh(t, 4, 4)
	cases := []struct {
		id   NodeID
		x, y int
	}{{0, 0, 0}, {3, 3, 0}, {4, 0, 1}, {15, 3, 3}}
	for _, c := range cases {
		x, y := m.Coord(c.id)
		if x != c.x || y != c.y {
			t.Errorf("Coord(%d) = (%d,%d), want (%d,%d)", c.id, x, y, c.x, c.y)
		}
	}
}

func TestHops(t *testing.T) {
	_, m, _ := newTestMesh(t, 4, 4)
	cases := []struct {
		a, b NodeID
		want int
	}{{0, 0, 0}, {0, 3, 3}, {0, 15, 6}, {5, 6, 1}, {5, 9, 1}, {12, 3, 6}}
	for _, c := range cases {
		if got := m.Hops(c.a, c.b); got != c.want {
			t.Errorf("Hops(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestDeliveryLatencyUncontended(t *testing.T) {
	eng, m, sinks := newTestMesh(t, 4, 4)
	// 0 -> 3: 3 hops. latency = injection router (3) + per hop (1 link + 3 router) = 3 + 3*4 = 15.
	m.Send(&Message{Src: 0, Dst: 3, Class: ClassRequest, Flits: 1})
	eng.Run(0)
	if len(sinks[3].got) != 1 {
		t.Fatalf("message not delivered")
	}
	if sinks[3].at[0] != 15 {
		t.Fatalf("arrival at %d, want 15", sinks[3].at[0])
	}
}

func TestSelfDelivery(t *testing.T) {
	eng, m, sinks := newTestMesh(t, 2, 2)
	m.Send(&Message{Src: 1, Dst: 1, Class: ClassAck, Flits: 1})
	eng.Run(0)
	if len(sinks[1].got) != 1 || sinks[1].at[0] != 3 {
		t.Fatalf("self delivery at %v, want cycle 3", sinks[1].at)
	}
	if m.TotalFlitHops() != 0 {
		t.Fatal("self delivery should not use links")
	}
}

func TestContentionSerializes(t *testing.T) {
	eng, m, sinks := newTestMesh(t, 4, 1)
	// Two 5-flit data messages on the same route: the second must queue
	// behind the first at each shared link.
	m.Send(&Message{Src: 0, Dst: 1, Class: ClassResponse, Flits: 5})
	m.Send(&Message{Src: 0, Dst: 1, Class: ClassResponse, Flits: 5})
	eng.Run(0)
	if len(sinks[1].at) != 2 {
		t.Fatal("messages lost")
	}
	d := sinks[1].at[1] - sinks[1].at[0]
	if d != 5 {
		t.Fatalf("second message delayed by %d, want 5 (serialization)", d)
	}
}

func TestDisjointPathsNoContention(t *testing.T) {
	eng, m, sinks := newTestMesh(t, 4, 4)
	m.Send(&Message{Src: 0, Dst: 1, Class: ClassRequest, Flits: 5})
	m.Send(&Message{Src: 4, Dst: 5, Class: ClassRequest, Flits: 5})
	eng.Run(0)
	if sinks[1].at[0] != sinks[5].at[0] {
		t.Fatalf("disjoint paths interfered: %d vs %d", sinks[1].at[0], sinks[5].at[0])
	}
}

func TestFlitHopAccounting(t *testing.T) {
	eng, m, _ := newTestMesh(t, 4, 4)
	m.Send(&Message{Src: 0, Dst: 15, Class: ClassResponse, Flits: 5}) // 6 hops * 5 flits
	m.Send(&Message{Src: 0, Dst: 1, Class: ClassRequest, Flits: 1})   // 1 hop * 1 flit
	eng.Run(0)
	if got := m.FlitHops(ClassResponse); got != 30 {
		t.Errorf("response flit-hops = %d, want 30", got)
	}
	if got := m.FlitHops(ClassRequest); got != 1 {
		t.Errorf("request flit-hops = %d, want 1", got)
	}
	if m.TotalFlitHops() != 31 {
		t.Errorf("total = %d, want 31", m.TotalFlitHops())
	}
	if m.Messages(ClassResponse) != 1 || m.Messages(ClassRequest) != 1 {
		t.Error("message counts wrong")
	}
}

func TestXYRouteAvoidsDeadlockPattern(t *testing.T) {
	// All-to-all traffic on a 3x3 mesh must fully drain.
	eng, m, sinks := newTestMesh(t, 3, 3)
	n := m.Nodes()
	sent := 0
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s == d {
				continue
			}
			m.Send(&Message{Src: NodeID(s), Dst: NodeID(d), Class: ClassRequest, Flits: 1})
			sent++
		}
	}
	eng.Run(0)
	got := 0
	for _, s := range sinks {
		got += len(s.got)
	}
	if got != sent {
		t.Fatalf("delivered %d of %d messages", got, sent)
	}
}

func TestAttachTwicePanics(t *testing.T) {
	eng := sim.NewEngine()
	m, _ := New(eng, DefaultConfig(2, 2))
	m.Attach(0, &sink{eng: eng})
	defer func() {
		if recover() == nil {
			t.Fatal("double attach did not panic")
		}
	}()
	m.Attach(0, &sink{eng: eng})
}

func TestNoEndpointPanics(t *testing.T) {
	eng := sim.NewEngine()
	m, _ := New(eng, DefaultConfig(2, 2))
	m.Attach(0, &sink{eng: eng})
	defer func() {
		if recover() == nil {
			t.Fatal("send to unattached node did not panic")
		}
	}()
	m.Send(&Message{Src: 0, Dst: 1, Class: ClassRequest, Flits: 1})
}

func TestBadConfigRejected(t *testing.T) {
	eng := sim.NewEngine()
	if _, err := New(eng, Config{Width: 0, Height: 2, LinkBandwidth: 1}); err == nil {
		t.Error("zero width accepted")
	}
	if _, err := New(eng, Config{Width: 2, Height: 2, LinkBandwidth: 0}); err == nil {
		t.Error("zero bandwidth accepted")
	}
}

func TestZeroFlitPanics(t *testing.T) {
	eng, m, _ := newTestMesh(t, 2, 2)
	_ = eng
	defer func() {
		if recover() == nil {
			t.Fatal("zero-flit message did not panic")
		}
	}()
	m.Send(&Message{Src: 0, Dst: 1, Class: ClassRequest, Flits: 0})
}

func TestClassString(t *testing.T) {
	seen := map[string]bool{}
	for c := Class(0); c < NumClasses; c++ {
		s := c.String()
		if s == "" || seen[s] {
			t.Fatalf("class %d has empty or duplicate name %q", c, s)
		}
		seen[s] = true
	}
}

func TestLinkBandwidthReducesSerialization(t *testing.T) {
	run := func(bw int) sim.Cycle {
		eng := sim.NewEngine()
		m, err := New(eng, Config{Width: 2, Height: 1, RouterLatency: 1, LinkLatency: 1, LinkBandwidth: bw})
		if err != nil {
			t.Fatal(err)
		}
		s := &sink{eng: eng}
		m.Attach(0, &sink{eng: eng})
		m.Attach(1, s)
		for i := 0; i < 4; i++ {
			m.Send(&Message{Src: 0, Dst: 1, Class: ClassResponse, Flits: 4})
		}
		eng.Run(0)
		return s.at[len(s.at)-1]
	}
	narrow, wide := run(1), run(4)
	if wide >= narrow {
		t.Fatalf("4-flit/cycle link (%d) not faster than 1-flit/cycle (%d)", wide, narrow)
	}
}
