package system

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/sim"
	"repro/internal/testutil/leakcheck"
)

// psimGoldenConfig is the parallel-engine pinning config: 8 cores (so the
// full shard sweep {1,2,4,8} is exercised), checker off (parallel runs
// cannot host the globally ordered oracle — Validate enforces this) and
// occupancy sampling on, so the epoch-grid sampler is pinned too.
func psimGoldenConfig(kind string) Config {
	c := goldenConfig(kind)
	c.Cores = 8
	c.Checker = false
	c.Shards = 1
	return c
}

// psimShardCounts is the shard sweep every fixture must reproduce
// byte-identically.
var psimShardCounts = []int{1, 2, 4, 8}

// runPsimGolden drives cfg on the parallel engine with every per-tile
// queue's shuffle seed pinned, exactly like runGolden pins the serial
// engine's.
func runPsimGolden(t *testing.T, cfg Config, shuffle uint64) *Results {
	t.Helper()
	pf, procs, err := BuildParallel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range pf.Views {
		v.Engine.SetShuffleSeed(shuffle)
	}
	sampler := &occupancySampler{}
	if cfg.SamplePeriod > 0 {
		pf.EpochHook = epochSampler(sampler, pf.Root, procs, sim.Cycle(cfg.SamplePeriod))
	}
	if err := pf.Drive(procs, 0); err != nil {
		t.Fatal(err)
	}
	return collect(cfg, pf.Root, procs, sampler, pf.Cycles(), pf.EventsRun())
}

// TestPsimGoldenResults pins the parallel engine's output for every
// directory kind and shuffle seed, and proves the cross-engine equivalence
// contract: the Results are byte-identical at every shard count in
// {1,2,4,8}. The fixtures are the parallel engine's own (the psim
// event order intentionally differs from the legacy serial order — see
// the internal/psim package doc); what this test guarantees is that the
// order is one fixed schedule regardless of how many workers compute it.
// Regenerate with -update only for intentional model changes.
func TestPsimGoldenResults(t *testing.T) {
	defer leakcheck.Check(t)
	for _, kind := range DirKinds() {
		for _, shuffle := range goldenShuffleSeeds {
			name := golName(kind, shuffle)
			t.Run(name, func(t *testing.T) {
				var ref []byte
				for _, shards := range psimShardCounts {
					cfg := psimGoldenConfig(kind)
					cfg.Shards = shards
					res := runPsimGolden(t, cfg, shuffle)
					// Shards is part of the serialized Config; normalize it
					// so the shard sweep is byte-comparable.
					res.Config.Shards = 1
					got, err := json.MarshalIndent(res, "", " ")
					if err != nil {
						t.Fatal(err)
					}
					got = append(got, '\n')
					if ref == nil {
						ref = got
					} else if string(got) != string(ref) {
						t.Fatalf("shards=%d diverged from shards=%d", shards, psimShardCounts[0])
					}
				}
				path := filepath.Join("testdata", "psim_golden_"+name+".json")
				if *updateGolden {
					if err := os.MkdirAll("testdata", 0o755); err != nil {
						t.Fatal(err)
					}
					if err := os.WriteFile(path, ref, 0o644); err != nil {
						t.Fatal(err)
					}
					return
				}
				want, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("missing psim golden fixture (run with -update): %v", err)
				}
				if string(ref) != string(want) {
					t.Errorf("results diverged from psim golden fixture %s\n(run with -update only if the model intentionally changed)", path)
				}
			})
		}
	}
}

// TestParallelRunTwiceIdentical is the parallel engine's self-contained
// determinism check through the public Run entry point: same config, two
// fresh machines, identical Results — including the goroutine scheduling
// noise of real workers.
func TestParallelRunTwiceIdentical(t *testing.T) {
	defer leakcheck.Check(t)
	for _, kind := range DirKinds() {
		kind := kind
		t.Run(kind, func(t *testing.T) {
			cfg := psimGoldenConfig(kind)
			cfg.Shards = 4
			a, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			b, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			ja, _ := json.Marshal(a)
			jb, _ := json.Marshal(b)
			if string(ja) != string(jb) {
				t.Fatal("two parallel runs of the same config diverged")
			}
		})
	}
}

// TestParallelConfigValidation pins the Shards knob's error surface.
func TestParallelConfigValidation(t *testing.T) {
	cfg := psimGoldenConfig(DirStash)
	cfg.Shards = cfg.Cores + 1
	if _, err := Run(cfg); err == nil {
		t.Fatal("Shards > Cores must be rejected")
	}
	cfg = psimGoldenConfig(DirStash)
	cfg.Checker = true
	if _, err := Run(cfg); err == nil {
		t.Fatal("Shards > 0 with the checker on must be rejected")
	}
}
