package system

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/trace"
	"repro/internal/workloads"
)

// benchScalingFiles writes one binary trace per core for an N-core
// machine. The generation cost is paid outside the timed region; every
// benchmark iteration replays the same files through the mmap path.
func benchScalingFiles(b *testing.B, cores, accesses int) []string {
	b.Helper()
	dir := b.TempDir()
	mix, err := workloads.Get("canneal")
	if err != nil {
		b.Fatal(err)
	}
	mix = mix.Scaled(0.25)
	files := make([]string, cores)
	for c := range files {
		s, err := trace.NewStream(mix, c, cores, accesses, 42)
		if err != nil {
			b.Fatal(err)
		}
		p := filepath.Join(dir, fmt.Sprintf("core%03d.btrace", c))
		f, err := os.Create(p)
		if err != nil {
			b.Fatal(err)
		}
		if err := trace.WriteBinarySource(f, s); err != nil {
			b.Fatal(err)
		}
		if err := f.Close(); err != nil {
			b.Fatal(err)
		}
		files[c] = p
	}
	return files
}

// BenchmarkTraceScaling replays binary traces through full-system
// simulation at every core count of the scaling study, 16 through 256,
// and reports sustained events per second. `make bench-trace` records the
// sweep into BENCH_trace.json; the cores=256 entry doubles as the
// acceptance evidence that a 256-core point completes under the default
// (unlimited) event budget.
func BenchmarkTraceScaling(b *testing.B) {
	for _, cores := range []int{16, 32, 64, 128, 256} {
		cores := cores
		b.Run(fmt.Sprintf("cores=%d", cores), func(b *testing.B) {
			files := benchScalingFiles(b, cores, 1500)
			cfg := QuickConfig("")
			cfg.Cores = cores
			cfg.Workload = ""
			cfg.TraceFiles = files
			cfg.Seed = 42
			cfg.Checker = false
			var events uint64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				events += res.EventsRun
			}
			b.StopTimer()
			if sec := b.Elapsed().Seconds(); sec > 0 {
				b.ReportMetric(float64(events)/sec, "events/sec")
			}
		})
	}
}
