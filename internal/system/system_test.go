package system

import (
	"fmt"
	"os"
	"path/filepath"

	"testing"

	"repro/internal/cache"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// tiny returns a fast configuration for unit tests.
func tiny(workload, kind string, coverage float64) Config {
	c := DefaultConfig(workload)
	c.DirKind = kind
	c.Coverage = coverage
	c.Cores = 4
	c.L1Sets = 16
	c.L1Ways = 2
	c.LLCSetsPerBank = 64
	c.LLCWays = 4
	c.AccessesPerCore = 2000
	c.WorkloadScale = 0.05
	return c
}

func TestValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Cores = 3 },
		func(c *Config) { c.DirKind = "bogus" },
		func(c *Config) { c.Coverage = 0 },
		func(c *Config) { c.DirWays = 0 },
		func(c *Config) { c.Workload = "" },
		func(c *Config) { c.AccessesPerCore = 0 },
		func(c *Config) { c.WorkloadScale = 0 },
		func(c *Config) { c.CustomMix = &trace.Mix{} }, // both name and mix
	}
	for i, corrupt := range bad {
		c := DefaultConfig("canneal")
		corrupt(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	c := DefaultConfig("canneal")
	if err := c.Validate(); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestUnknownWorkloadRejected(t *testing.T) {
	c := tiny("not-a-workload", DirStash, 1)
	if _, err := Run(c); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestDirEntriesPerBank(t *testing.T) {
	c := DefaultConfig("canneal") // 16 cores, 512 blocks/core -> 8192 aggregate
	cases := []struct {
		coverage float64
		want     int
	}{
		{1, 512}, {0.5, 256}, {0.25, 128}, {0.125, 64}, {2, 1024},
	}
	for _, cs := range cases {
		c.Coverage = cs.coverage
		if got := c.DirEntriesPerBank(); got != cs.want {
			t.Errorf("coverage %v: entries/bank = %d, want %d", cs.coverage, got, cs.want)
		}
	}
	// Floor: never below one full set of ways.
	c.Coverage = 0.0001
	if got := c.DirEntriesPerBank(); got != c.DirWays {
		t.Errorf("tiny coverage: entries/bank = %d, want %d", got, c.DirWays)
	}
}

func TestRunAllKindsAllChecksPass(t *testing.T) {
	for _, kind := range DirKinds() {
		kind := kind
		t.Run(kind, func(t *testing.T) {
			t.Parallel()
			res, err := Run(tiny("canneal", kind, 0.5))
			if err != nil {
				t.Fatal(err)
			}
			if res.Cycles == 0 || res.Loads+res.Stores != 4*2000 {
				t.Fatalf("implausible results: cycles=%d accesses=%d", res.Cycles, res.Loads+res.Stores)
			}
			if res.L1Misses == 0 || res.TotalFlitHops == 0 {
				t.Fatal("no misses or traffic recorded")
			}
			if res.Energy.Total() <= 0 {
				t.Fatal("no energy estimated")
			}
			if s := res.Summary(); len(s) == 0 {
				t.Fatal("empty summary")
			}
		})
	}
}

func TestAllWorkloadsRun(t *testing.T) {
	for _, name := range workloads.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			if _, err := Run(tiny(name, DirStash, 0.25)); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestStashBeatsSparseAtLowCoverage(t *testing.T) {
	// The headline behavior at unit-test scale: with a starved directory,
	// stash must (a) nearly eliminate recall invalidations and (b) not run
	// slower than sparse.
	sparse, err := Run(tiny("canneal", DirSparse, 0.125))
	if err != nil {
		t.Fatal(err)
	}
	stash, err := Run(tiny("canneal", DirStash, 0.125))
	if err != nil {
		t.Fatal(err)
	}
	if sparse.InvsRecall == 0 {
		t.Fatal("sparse at 1/8 coverage recorded no recall invalidations; test is not stressing the directory")
	}
	if stash.InvsRecall*10 > sparse.InvsRecall {
		t.Errorf("stash recalls %d not << sparse recalls %d", stash.InvsRecall, sparse.InvsRecall)
	}
	if stash.StashEvictions == 0 {
		t.Error("stash never stashed")
	}
	if float64(stash.Cycles) > float64(sparse.Cycles)*1.05 {
		t.Errorf("stash (%d cycles) slower than sparse (%d cycles)", stash.Cycles, sparse.Cycles)
	}
}

func TestCustomMixRun(t *testing.T) {
	mix := &trace.Mix{
		Name:        "custom",
		PrivateFrac: 0.8, SharedRWFrac: 0.2,
		WriteFrac:     0.3,
		PrivateBlocks: 64, SharedBlocks: 32,
	}
	c := tiny("", DirStash, 0.5)
	c.Workload = ""
	c.CustomMix = mix
	res, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if res.Config.WorkloadName() != "custom" {
		t.Fatalf("workload name = %q", res.Config.WorkloadName())
	}
}

func TestSamplingProducesOccupancy(t *testing.T) {
	c := tiny("canneal", DirStash, 0.25)
	c.SamplePeriod = 5000
	res, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Sampled {
		t.Fatal("no occupancy samples collected")
	}
	if res.AvgDirOccupancy <= 0 || res.AvgDirOccupancy > 1 {
		t.Fatalf("implausible occupancy %v", res.AvgDirOccupancy)
	}
	if res.AvgPrivateFraction <= 0 || res.AvgPrivateFraction > 1 {
		t.Fatalf("implausible private fraction %v", res.AvgPrivateFraction)
	}
}

func TestReproducibility(t *testing.T) {
	a, err := Run(tiny("barnes", DirStash, 0.25))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(tiny("barnes", DirStash, 0.25))
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.TotalFlitHops != b.TotalFlitHops || a.L1Misses != b.L1Misses {
		t.Fatalf("identical configs diverged: %d/%d vs %d/%d cycles/traffic",
			a.Cycles, a.TotalFlitHops, b.Cycles, b.TotalFlitHops)
	}
	c, err := Run(func() Config { cfg := tiny("barnes", DirStash, 0.25); cfg.Seed = 2; return cfg }())
	if err != nil {
		t.Fatal(err)
	}
	if c.Cycles == a.Cycles && c.TotalFlitHops == a.TotalFlitHops {
		t.Fatal("different seeds produced identical runs (suspicious)")
	}
}

// TestSeedReachesReplacementPolicies pins the satellite fix for the
// determinism audit: the run seed must reach every random replacement
// policy (it used to stop at the trace generator, leaving the cache
// configs at Seed 0 and the directory at a bank-only constant).
func TestSeedReachesReplacementPolicies(t *testing.T) {
	build := func(seed int64) ([]int64, error) {
		c := tiny("barnes", DirStash, 0.25)
		c.ReplacementPolicy = cache.Random
		c.Seed = seed
		fab, _, err := Build(c)
		if err != nil {
			return nil, err
		}
		return []int64{
			fab.L1s[0].Cache().Config().Seed,
			fab.L1s[1].Cache().Config().Seed,
			fab.Banks[0].LLC().Config().Seed,
		}, nil
	}
	a, err := build(1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := build(2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] == b[i] {
			t.Errorf("structure %d: run seeds 1 and 2 produced the same policy seed %d", i, a[i])
		}
	}
	if a[0] == a[1] {
		t.Errorf("cores 0 and 1 share L1 policy seed %d; victim sequences march in lockstep", a[0])
	}
	// And the machine still runs (and reproduces) under the random policy.
	run := func() *Results {
		c := tiny("barnes", DirStash, 0.25)
		c.ReplacementPolicy = cache.Random
		r, err := Run(c)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	if x, y := run(), run(); x.Cycles != y.Cycles || x.TotalFlitHops != y.TotalFlitHops {
		t.Fatalf("random policy runs with one seed diverged: %d vs %d cycles", x.Cycles, y.Cycles)
	}
}

func TestSilentEvictionConfig(t *testing.T) {
	c := tiny("canneal", DirStash, 0.25)
	c.SilentCleanEvictions = true
	if _, err := Run(c); err != nil {
		t.Fatal(err)
	}
}

func TestBuildExposesFabric(t *testing.T) {
	fab, procs, err := Build(tiny("canneal", DirStash, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	if len(fab.L1s) != 4 || len(procs) != 4 {
		t.Fatalf("unexpected shape: %d L1s, %d processors", len(fab.L1s), len(procs))
	}
	if err := fab.Drive(procs, 0); err != nil {
		t.Fatal(err)
	}
}

func TestL2Hierarchy(t *testing.T) {
	c := tiny("canneal", DirStash, 0.25)
	c.L2Sets = 64
	c.L2Ways = 4
	res, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if res.L2Hits == 0 {
		t.Fatal("no L2 hits recorded")
	}
	// Coverage denominator is the L2 capacity now.
	if res.Config.AggregatePrivateBlocks() != 4*64*4 {
		t.Fatalf("private blocks = %d", res.Config.AggregatePrivateBlocks())
	}
	// The L2 absorbs misses: hierarchy miss rate must drop vs. no-L2.
	base, err := Run(tiny("canneal", DirStash, 0.25))
	if err != nil {
		t.Fatal(err)
	}
	if res.L1MissRate >= base.L1MissRate {
		t.Fatalf("L2 did not reduce network misses: %.3f vs %.3f", res.L1MissRate, base.L1MissRate)
	}
}

func TestL2Validation(t *testing.T) {
	c := tiny("canneal", DirStash, 0.25)
	c.L2Sets = 64 // ways missing
	if err := c.Validate(); err == nil {
		t.Fatal("half-specified L2 accepted")
	}
}

func TestTraceFileReplay(t *testing.T) {
	dir := t.TempDir()
	var paths []string
	for c := 0; c < 4; c++ {
		mix := workloads.MustGet("barnes").Scaled(0.05)
		s, err := trace.NewStream(mix, c, 4, 500, 1)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, fmt.Sprintf("core%02d.trace", c))
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := trace.WriteStream(f, s); err != nil {
			t.Fatal(err)
		}
		f.Close()
		paths = append(paths, path)
	}
	c := tiny("", DirStash, 0.25)
	c.Workload = ""
	c.TraceFiles = paths
	res, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if res.Loads+res.Stores != 4*500 {
		t.Fatalf("replayed %d accesses, want 2000", res.Loads+res.Stores)
	}
	if res.Config.WorkloadName() != "trace-files" {
		t.Fatalf("workload name = %q", res.Config.WorkloadName())
	}
	// A replayed trace must reproduce the equivalent synthetic run exactly.
	ref := tiny("barnes", DirStash, 0.25)
	ref.AccessesPerCore = 500
	refRes, err := Run(ref)
	if err != nil {
		t.Fatal(err)
	}
	if refRes.Cycles != res.Cycles {
		t.Fatalf("trace replay diverged: %d vs %d cycles", res.Cycles, refRes.Cycles)
	}
}

func TestTraceFileValidation(t *testing.T) {
	c := tiny("", DirStash, 0.25)
	c.Workload = ""
	c.TraceFiles = []string{"only-one.trace"} // 4 cores need 4 files
	if err := c.Validate(); err == nil {
		t.Fatal("wrong trace file count accepted")
	}
	c.TraceFiles = []string{"a", "b", "c", "d"}
	c.Workload = "barnes" // both selected
	if err := c.Validate(); err == nil {
		t.Fatal("trace files + named workload accepted")
	}
	c.Workload = ""
	if _, err := Run(c); err == nil {
		t.Fatal("missing trace files did not error")
	}
}
