package system

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/trace"
	"repro/internal/workloads"
)

// writeReplayFiles generates per-core streams for a 4-core machine and
// writes each one twice: text format and binary format. It returns the two
// path sets.
func writeReplayFiles(t *testing.T, cores, accesses int) (textFiles, binFiles []string) {
	t.Helper()
	dir := t.TempDir()
	mix, err := workloads.Get("barnes")
	if err != nil {
		t.Fatal(err)
	}
	mix = mix.Scaled(0.5)
	for c := 0; c < cores; c++ {
		gen := func() *trace.Stream {
			s, err := trace.NewStream(mix, c, cores, accesses, 7)
			if err != nil {
				t.Fatal(err)
			}
			return s
		}

		tp := filepath.Join(dir, nameFor(c, ".trace"))
		tf, err := os.Create(tp)
		if err != nil {
			t.Fatal(err)
		}
		if err := trace.WriteStream(tf, gen()); err != nil {
			t.Fatal(err)
		}
		if err := tf.Close(); err != nil {
			t.Fatal(err)
		}
		textFiles = append(textFiles, tp)

		bp := filepath.Join(dir, nameFor(c, ".btrace"))
		bf, err := os.Create(bp)
		if err != nil {
			t.Fatal(err)
		}
		if err := trace.WriteBinarySource(bf, gen()); err != nil {
			t.Fatal(err)
		}
		if err := bf.Close(); err != nil {
			t.Fatal(err)
		}
		binFiles = append(binFiles, bp)
	}
	return textFiles, binFiles
}

func nameFor(core int, ext string) string {
	return "core" + string(rune('0'+core)) + ext
}

// TestTraceReplayTextBinaryEquivalence pins the tentpole's correctness
// claim: replaying the same trace from the text format (slurped into
// slices) and from the binary format (streamed zero-copy through the
// mmap-backed BinarySource) must produce byte-identical Results for every
// directory organization.
func TestTraceReplayTextBinaryEquivalence(t *testing.T) {
	const cores, accesses = 4, 3000
	textFiles, binFiles := writeReplayFiles(t, cores, accesses)

	for _, kind := range DirKinds() {
		cfg := QuickConfig("")
		cfg.Cores = cores
		cfg.DirKind = kind
		cfg.Workload = ""
		cfg.TraceFiles = textFiles
		cfg.Seed = 7

		textRes, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s/text: %v", kind, err)
		}
		cfg.TraceFiles = binFiles
		binRes, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s/binary: %v", kind, err)
		}

		// The recorded config necessarily embeds the input paths; blank
		// them so the comparison covers only simulation outcomes.
		textRes.Config.TraceFiles = nil
		binRes.Config.TraceFiles = nil

		tj, err := json.Marshal(textRes)
		if err != nil {
			t.Fatal(err)
		}
		bj, err := json.Marshal(binRes)
		if err != nil {
			t.Fatal(err)
		}
		if string(tj) != string(bj) {
			t.Errorf("%s: text and binary replay results differ\ntext:   %s\nbinary: %s", kind, tj, bj)
		}
	}
}

// TestTraceReplayBinaryParallel re-runs one binary-replay config on the
// parallel engine: streamed sources must work under tile sharding too.
func TestTraceReplayBinaryParallel(t *testing.T) {
	const cores, accesses = 4, 2000
	_, binFiles := writeReplayFiles(t, cores, accesses)

	cfg := QuickConfig("")
	cfg.Cores = cores
	cfg.Workload = ""
	cfg.TraceFiles = binFiles
	cfg.Seed = 7
	cfg.Checker = false
	cfg.Shards = 2

	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
}

// TestTraceReplayBinaryTruncatedSurfaces verifies a corrupt binary trace
// fails the run with a clean error instead of silently replaying short.
func TestTraceReplayBinaryTruncatedSurfaces(t *testing.T) {
	const cores = 4
	_, binFiles := writeReplayFiles(t, cores, 2000)

	// Chop the last byte off one core's trace: a mid-record EOF.
	b, err := os.ReadFile(binFiles[2])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(binFiles[2], b[:len(b)-1], 0o644); err != nil {
		t.Fatal(err)
	}

	cfg := QuickConfig("")
	cfg.Cores = cores
	cfg.Workload = ""
	cfg.TraceFiles = binFiles
	cfg.Seed = 7

	if _, err := Run(cfg); err == nil {
		t.Fatal("want a mid-record truncation error from the run")
	}
}
