package system

import "testing"

// TestParallelRunAllocParity pins the parallel path's per-run allocation
// overhead. Before the slab-seeded timing wheels and the gated checker
// oracle, a shards run cost ~2.5x the allocations of the identical serial
// run (7.6k vs 3.1k on the 16-core sweep point: 17 event queues each
// bringing up 256 ring buffers one make() at a time, plus per-tile oracle
// maps growing to the store working set). Per-tile setup now carves ring
// buffers from one slab per queue, so a shards run must stay within 1.8x
// of serial. A regression here means per-tile construction started
// allocating per bucket (or per store) again.
func TestParallelRunAllocParity(t *testing.T) {
	if testing.Short() {
		t.Skip("full runs under AllocsPerRun")
	}
	run := func(shards int) float64 {
		cfg := psimBenchConfig(shards)
		return testing.AllocsPerRun(2, func() {
			if _, err := Run(cfg); err != nil {
				t.Fatal(err)
			}
		})
	}
	serial := run(0)
	parallel := run(2)
	t.Logf("allocs/run: serial=%.0f shards=2 %.0f (ratio %.2f)", serial, parallel, parallel/serial)
	if serial == 0 {
		t.Fatal("serial run reported zero allocations; measurement broken")
	}
	if ratio := parallel / serial; ratio > 1.8 {
		t.Errorf("parallel run allocates %.2fx the serial run (%.0f vs %.0f); per-tile setup regressed", ratio, parallel, serial)
	}
}
