package system

import (
	"fmt"
	"runtime"
	"testing"
)

// psimBenchConfig is the 16-core sweep point the engine-throughput
// benchmark uses (mirrors BenchmarkEngineThroughput in internal/sim), so
// serial-vs-parallel events/sec ratios in BENCH_psim.json compare like
// with like.
func psimBenchConfig(shards int) Config {
	cfg := QuickConfig("blackscholes")
	cfg.Cores = 16
	cfg.AccessesPerCore = 5000
	cfg.WorkloadScale = 0.25
	cfg.Checker = false
	cfg.Shards = shards
	return cfg
}

func benchPsim(b *testing.B, shards int) {
	cfg := psimBenchConfig(shards)
	var events uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		events += res.EventsRun
	}
	b.StopTimer()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(events)/sec, "events/sec")
	}
}

// BenchmarkPsimThroughput sweeps the parallel engine's shard counts over
// the 16-core model and reports sustained events per second next to the
// serial baseline (shards=0). `make bench-psim` records the sweep into
// BENCH_psim.json. Parallel speedup requires host parallelism: with
// GOMAXPROCS=1 every worker shares one OS core and the barrier overhead
// makes the ratio <= 1 by construction, so the sweep names carry the host
// core count for honest cross-machine comparison.
func BenchmarkPsimThroughput(b *testing.B) {
	host := runtime.GOMAXPROCS(0)
	b.Run(fmt.Sprintf("serial/host=%d", host), func(b *testing.B) { benchPsim(b, 0) })
	for _, shards := range []int{2, 4, 8} {
		shards := shards
		b.Run(fmt.Sprintf("shards=%d/host=%d", shards, host), func(b *testing.B) { benchPsim(b, shards) })
	}
}
