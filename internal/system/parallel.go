package system

import (
	"fmt"

	"repro/internal/coherence"
	"repro/internal/sim"
)

// BuildParallel assembles the sharded fabric and processors for cfg
// (cfg.Shards must be > 0) without running them. Run is the usual entry
// point; BuildParallel exists for tools that set an epoch hook before
// driving the machine themselves.
func BuildParallel(cfg Config) (*coherence.ParallelFabric, []*coherence.Processor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	if cfg.Shards < 1 {
		return nil, nil, fmt.Errorf("system: BuildParallel needs Shards >= 1, got %d", cfg.Shards)
	}
	pf, err := coherence.NewParallelFabric(buildConfig(cfg), cfg.Shards)
	if err != nil {
		return nil, nil, err
	}
	sources, err := buildSources(&cfg)
	if err != nil {
		return nil, nil, err
	}
	procs, err := pf.AttachProcessors(sources)
	if err != nil {
		return nil, nil, err
	}
	return pf, procs, nil
}

// runParallel is Run's Shards > 0 path: same machine, driven by the
// parallel engine, with the per-tile statistics folded back into the root
// fabric before collection.
func runParallel(cfg Config) (*Results, error) {
	pf, procs, err := BuildParallel(cfg)
	if err != nil {
		return nil, err
	}

	sampler := &occupancySampler{}
	if cfg.SamplePeriod > 0 {
		pf.EpochHook = epochSampler(sampler, pf.Root, procs, sim.Cycle(cfg.SamplePeriod))
	}

	driveErr := pf.Drive(procs, 0)
	if srcErr := finishSources(procs); driveErr == nil && srcErr != nil {
		driveErr = srcErr
	}
	if driveErr != nil {
		return nil, fmt.Errorf("system: %s/%s cov=%.3g shards=%d: %w",
			cfg.DirKind, cfg.WorkloadName(), cfg.Coverage, cfg.Shards, driveErr)
	}
	return collect(cfg, pf.Root, procs, sampler, pf.Cycles(), pf.EventsRun()), nil
}

// epochSampler adapts the occupancy sampler to the parallel engine's epoch
// grid: the serial path samples at exact multiples of the period via
// events; here we sample at the first epoch boundary at or past each
// multiple. The hook runs on the driver thread while the workers are
// parked at the barrier, so walking the directories is race-free; the
// epoch grid is shard-count-invariant, so so are the samples. Sampling
// stops — matching the serial sampler — once every processor finished.
func epochSampler(s *occupancySampler, fab *coherence.Fabric, procs []*coherence.Processor, period sim.Cycle) func(start, end sim.Cycle) {
	next := period
	return func(start, end sim.Cycle) {
		for next < end {
			done := true
			for _, p := range procs {
				if !p.Finished() {
					done = false
					break
				}
			}
			if done {
				return
			}
			s.sample(fab)
			next += period
		}
	}
}
