package system

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/sim"
)

var updateGolden = flag.Bool("update", false, "rewrite golden result fixtures")

// goldenShuffleSeeds are the engine tie-break seeds the determinism suite
// pins: FIFO plus two arbitrary permutations.
var goldenShuffleSeeds = []uint64{0, 1, 9}

func goldenConfig(kind string) Config {
	c := DefaultConfig("blackscholes")
	c.DirKind = kind
	c.Coverage = 0.5
	c.Cores = 4
	c.L1Sets = 16
	c.L1Ways = 2
	c.LLCSetsPerBank = 64
	c.LLCWays = 4
	c.AccessesPerCore = 1500
	c.WorkloadScale = 0.05
	c.SamplePeriod = 5000
	return c
}

// runGolden builds and drives the machine exactly like Run, but with the
// engine's shuffle seed pinned before any event is scheduled.
func runGolden(t *testing.T, cfg Config, shuffle uint64) *Results {
	t.Helper()
	fab, procs, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fab.Engine.SetShuffleSeed(shuffle)
	sampler := &occupancySampler{}
	if cfg.SamplePeriod > 0 {
		sampler.arm(fab, procs, sim.Cycle(cfg.SamplePeriod))
	}
	if err := fab.Drive(procs, 0); err != nil {
		t.Fatal(err)
	}
	return collect(cfg, fab, procs, sampler, fab.Engine.Now(), fab.Engine.EventsRun())
}

// TestGoldenResults pins the byte-exact simulation output for every
// directory kind and a set of shuffle seeds. The fixtures were captured
// with the original container/heap event queue, so this is the proof that
// the rewritten scheduler preserves the engine's total event order: any
// ordering divergence perturbs cycle counts, network hops or energy and
// the JSON comparison fails. Regenerate with `go test ./internal/system
// -run TestGoldenResults -update` only for intentional model changes.
func TestGoldenResults(t *testing.T) {
	for _, kind := range DirKinds() {
		for _, shuffle := range goldenShuffleSeeds {
			name := golName(kind, shuffle)
			t.Run(name, func(t *testing.T) {
				res := runGolden(t, goldenConfig(kind), shuffle)
				got, err := json.MarshalIndent(res, "", " ")
				if err != nil {
					t.Fatal(err)
				}
				got = append(got, '\n')
				path := filepath.Join("testdata", "golden_"+name+".json")
				if *updateGolden {
					if err := os.MkdirAll("testdata", 0o755); err != nil {
						t.Fatal(err)
					}
					if err := os.WriteFile(path, got, 0o644); err != nil {
						t.Fatal(err)
					}
					return
				}
				want, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("missing golden fixture (run with -update): %v", err)
				}
				if string(got) != string(want) {
					t.Errorf("results diverged from golden fixture %s\n(run with -update only if the model intentionally changed)", path)
				}
			})
		}
	}
}

func golName(kind string, shuffle uint64) string {
	return kind + "_s" + string(rune('0'+shuffle))
}

// TestRunTwiceIdentical is the self-contained determinism check: two
// fresh machines with the same config produce identical Results without
// reference to any fixture.
func TestRunTwiceIdentical(t *testing.T) {
	for _, kind := range DirKinds() {
		kind := kind
		t.Run(kind, func(t *testing.T) {
			cfg := goldenConfig(kind)
			a, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			b, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			ja, _ := json.Marshal(a)
			jb, _ := json.Marshal(b)
			if string(ja) != string(jb) {
				t.Fatal("two runs of the same config diverged")
			}
		})
	}
}
