package system

import (
	"fmt"
	"io"
	"os"

	"repro/internal/cache"
	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/noc"
	"repro/internal/sim"
	"repro/internal/trace"
)

func simCycle(v uint64) sim.Cycle { return sim.Cycle(v) }

// log2 of a power of two (or the floor for other values).
func log2(n int) uint {
	var s uint
	for 1<<(s+1) <= n {
		s++
	}
	return s
}

// Salts decorrelate the random-replacement streams of the different
// structure kinds built from one run seed.
const (
	seedSaltDir int64 = 1 + iota
	seedSaltL1
	seedSaltL2
	seedSaltLLC
)

// policySeed derives the seed for one structure's random replacement policy
// from the run seed. Every structure kind draws from a distinct stream
// (salt) and every instance gets a distinct offset, so no two tag arrays
// share a victim sequence — yet the whole machine remains a pure function
// of cfg.Seed. (Previously the directory seed was a bank-only constant and
// the cache configs left Seed at zero, so cfg.Seed never reached the
// random policy at all.)
func policySeed(runSeed, salt int64, index int) int64 {
	return runSeed*0x9E3779B9 + salt*0x1F123BB5 + int64(index)*7919 + 100
}

// buildDirectory constructs one bank's directory slice.
func buildDirectory(c *Config, bank int) (core.Directory, error) {
	perBank := c.DirEntriesPerBank()
	shift := log2(c.Cores)
	assoc := core.AssocConfig{
		Sets:       perBank / c.DirWays,
		Ways:       c.DirWays,
		IndexShift: shift,
		Policy:     c.ReplacementPolicy,
		Seed:       policySeed(c.Seed, seedSaltDir, bank),
	}
	switch c.DirKind {
	case DirFullMap:
		return core.NewFullMap(), nil
	case DirSparse:
		return core.NewSparse(assoc)
	case DirStash:
		return core.NewStash(core.StashConfig{AssocConfig: assoc})
	case DirStashSS:
		return core.NewStash(core.StashConfig{AssocConfig: assoc, StashSingletonShared: true})
	case DirCuckoo:
		// The cuckoo seed picks the hash functions — a structural property
		// of the directory, like its geometry — so it stays a bank-only
		// constant: varying the run seed changes victim choices, not which
		// blocks collide, keeping capacity behavior comparable across seeds.
		return core.NewCuckoo(core.CuckooConfig{
			Ways:        c.DirWays,
			SlotsPerWay: perBank / c.DirWays,
			Seed:        int64(bank) + 100,
		})
	}
	return nil, fmt.Errorf("system: unknown directory kind %q", c.DirKind)
}

// buildConfig translates a validated Config into the coherence layer's
// build description. The closure captures cfg by value, so the returned
// BuildConfig is self-contained.
func buildConfig(cfg Config) coherence.BuildConfig {
	shape := meshShapes[cfg.Cores]
	var l2 *cache.Config
	if cfg.HasL2() {
		l2 = &cache.Config{
			Name: "l2", Sets: cfg.L2Sets, Ways: cfg.L2Ways, Policy: cfg.ReplacementPolicy,
			Seed: policySeed(cfg.Seed, seedSaltL2, 0),
		}
	}
	return coherence.BuildConfig{
		Params: cfg.params(),
		Mesh:   noc.DefaultConfig(shape[0], shape[1]),
		L1: cache.Config{
			Name: "l1", Sets: cfg.L1Sets, Ways: cfg.L1Ways, Policy: cfg.ReplacementPolicy,
			Seed: policySeed(cfg.Seed, seedSaltL1, 0),
		},
		L2: l2,
		LLC: cache.Config{
			Name: "llc", Sets: cfg.LLCSetsPerBank, Ways: cfg.LLCWays,
			IndexShift: log2(cfg.Cores), Policy: cfg.ReplacementPolicy,
			Seed: policySeed(cfg.Seed, seedSaltLLC, 0),
		},
		NewDirectory: func(bank int) (core.Directory, error) {
			return buildDirectory(&cfg, bank)
		},
	}
}

// Build assembles the fabric and processors for cfg without running them.
// Most callers want Run; Build exists for examples and tools that attach
// observers before driving the machine themselves.
func Build(cfg Config) (*coherence.Fabric, []*coherence.Processor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	fab, err := coherence.NewFabric(buildConfig(cfg))
	if err != nil {
		return nil, nil, err
	}
	fab.Checker.SetEnabled(cfg.Checker)

	sources, err := buildSources(&cfg)
	if err != nil {
		return nil, nil, err
	}
	procs, err := fab.AttachProcessors(sources)
	if err != nil {
		return nil, nil, err
	}
	return fab, procs, nil
}

// buildSources resolves the per-core access streams: synthetic generator
// streams, or replayed trace files. Trace files are sniffed by magic:
// binary traces replay zero-copy through an mmap-backed trace.BinarySource
// (closed by finishSources after the run); text traces are parsed up front
// into slices, so their format errors still surface at build time.
func buildSources(cfg *Config) ([]coherence.AccessSource, error) {
	sources := make([]coherence.AccessSource, cfg.Cores)
	if len(cfg.TraceFiles) != 0 {
		for i, path := range cfg.TraceFiles {
			isBin, err := trace.IsBinaryTrace(path)
			if err != nil {
				closeSources(sources)
				return nil, fmt.Errorf("system: trace file: %w", err)
			}
			if isBin {
				src, err := trace.OpenBinary(path)
				if err != nil {
					closeSources(sources)
					return nil, fmt.Errorf("system: %s: %w", path, err)
				}
				sources[i] = src
				continue
			}
			f, err := os.Open(path)
			if err != nil {
				closeSources(sources)
				return nil, fmt.Errorf("system: trace file: %w", err)
			}
			accs, err := trace.ParseAccesses(f)
			f.Close()
			if err != nil {
				closeSources(sources)
				return nil, fmt.Errorf("system: %s: %w", path, err)
			}
			sources[i] = &coherence.SliceSource{Accesses: accs}
		}
		return sources, nil
	}
	mix, err := cfg.mix()
	if err != nil {
		return nil, err
	}
	for i := 0; i < cfg.Cores; i++ {
		s, err := trace.NewStream(mix, i, cfg.Cores, cfg.AccessesPerCore, cfg.Seed)
		if err != nil {
			return nil, err
		}
		sources[i] = s
	}
	return sources, nil
}

// closeSources releases any file-backed sources in a partially built
// slice; build error paths use it so mmaps are not leaked.
func closeSources(sources []coherence.AccessSource) {
	for _, s := range sources {
		if c, ok := s.(io.Closer); ok && c != nil {
			c.Close()
		}
	}
}

// finishSources closes file-backed sources after a run and surfaces any
// read error a streaming source deferred until replay (a binary trace that
// went bad mid-stream ends the stream early rather than panicking; the
// error lands here).
func finishSources(procs []*coherence.Processor) error {
	var first error
	for _, p := range procs {
		src := p.Source()
		if e, ok := src.(interface{ Err() error }); ok && first == nil {
			first = e.Err()
		}
		if c, ok := src.(io.Closer); ok {
			if err := c.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// Run builds the machine for cfg, drives it to completion and returns the
// collected results. It fails on configuration errors, deadlock, oracle
// violations or audit failures. Shards > 0 routes through the parallel
// engine (see runParallel).
func Run(cfg Config) (*Results, error) {
	if cfg.Shards > 0 {
		return runParallel(cfg)
	}
	fab, procs, err := Build(cfg)
	if err != nil {
		return nil, err
	}

	sampler := &occupancySampler{}
	if cfg.SamplePeriod > 0 {
		sampler.arm(fab, procs, sim.Cycle(cfg.SamplePeriod))
	}

	driveErr := fab.Drive(procs, 0)
	if srcErr := finishSources(procs); driveErr == nil && srcErr != nil {
		driveErr = srcErr
	}
	if driveErr != nil {
		return nil, fmt.Errorf("system: %s/%s cov=%.3g: %w", cfg.DirKind, cfg.WorkloadName(), cfg.Coverage, driveErr)
	}
	return collect(cfg, fab, procs, sampler, fab.Engine.Now(), fab.Engine.EventsRun()), nil
}

// occupancySampler periodically walks the directory slices recording how
// full they are and what fraction of live entries track private blocks.
type occupancySampler struct {
	samples      int
	occupancySum float64
	privateSum   float64
}

func (s *occupancySampler) arm(fab *coherence.Fabric, procs []*coherence.Processor, period sim.Cycle) {
	var tick func()
	tick = func() {
		done := true
		for _, p := range procs {
			if !p.Finished() {
				done = false
				break
			}
		}
		if done {
			return // stop sampling; lets the event queue drain
		}
		s.sample(fab)
		fab.Engine.After(period, "system.sample", tick)
	}
	fab.Engine.After(period, "system.sample", tick)
}

func (s *occupancySampler) sample(fab *coherence.Fabric) {
	occupied, capacity, private := 0, 0, 0
	for _, bank := range fab.Banks {
		d := bank.Directory()
		occ := d.OccupiedEntries()
		occupied += occ
		capacity += d.Capacity()
		d.ForEach(func(e *core.Entry) {
			if e.Private() {
				private++
			}
		})
	}
	s.samples++
	if capacity > 0 {
		s.occupancySum += float64(occupied) / float64(capacity)
	}
	if occupied > 0 {
		s.privateSum += float64(private) / float64(occupied)
	}
}

func (s *occupancySampler) averages() (occupancy, private float64, ok bool) {
	if s.samples == 0 {
		return 0, 0, false
	}
	return s.occupancySum / float64(s.samples), s.privateSum / float64(s.samples), true
}
