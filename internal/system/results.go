package system

import (
	"fmt"
	"strings"

	"repro/internal/coherence"
	"repro/internal/energy"
	"repro/internal/noc"
	"repro/internal/sim"
)

// Results aggregates the cross-component metrics one simulation produced.
// Every figure and table in EXPERIMENTS.md is computed from these fields.
type Results struct {
	Config Config

	// Time.
	Cycles uint64
	// EventsRun is how many discrete events the engine executed; with
	// Cycles it gives the event density the scheduler benchmarks report.
	EventsRun uint64
	// AccessesPerKCycle is aggregate throughput: total accesses completed
	// per thousand cycles (the performance metric; execution time for a
	// fixed access count is Cycles).
	AccessesPerKCycle float64

	// Private-cache behavior. With an L2, L1Misses counts hierarchy
	// (network) misses and L2Hits/L2Misses split the L1-miss stream.
	Loads, Stores  int64
	L1Hits         int64
	L2Hits         int64
	L2Misses       int64
	L1Misses       int64
	L1MissRate     float64
	CoverageMisses int64
	AvgMissLatency float64

	// Invalidations received by L1s, by cause.
	InvsDemand   int64
	InvsRecall   int64
	InvsLLCEvict int64
	SpuriousInvs int64
	// BroadcastInvalidations counts overflow broadcasts sent by banks
	// under limited-pointer entry formats.
	BroadcastInvalidations int64

	// Directory behavior (summed over banks).
	DirLookups        int64
	DirHits           int64
	DirMisses         int64
	DirAllocations    int64
	DirRemovals       int64
	StashEvictions    int64
	RecallEvictions   int64
	CuckooRelocations int64
	DirEntriesTotal   int
	RealizedCoverage  float64

	// Stash discovery.
	DiscoveryBroadcasts int64
	DiscoveryProbes     int64
	DiscoveryFound      int64
	DiscoveryStale      int64
	HiddenSet           int64
	HiddenCleared       int64

	// LLC and memory.
	LLCAccesses int64
	LLCMisses   int64
	MemReads    int64
	MemWrites   int64

	// Network.
	TotalFlitHops   int64
	FlitHopsByClass map[string]int64

	// Occupancy sampling (when Config.SamplePeriod > 0).
	AvgDirOccupancy    float64
	AvgPrivateFraction float64
	Sampled            bool

	// Energy estimate.
	Energy energy.Breakdown
}

// Clone returns a deep copy of r: mutating the copy (including its map
// and the embedded Config's reference fields) cannot affect the receiver.
// The runner's result cache relies on this to hand out isolated results on
// cache hits.
func (r *Results) Clone() *Results {
	if r == nil {
		return nil
	}
	c := *r
	if r.FlitHopsByClass != nil {
		c.FlitHopsByClass = make(map[string]int64, len(r.FlitHopsByClass))
		//stash:ignore determinism map-to-map copy is order-insensitive
		for k, v := range r.FlitHopsByClass {
			c.FlitHopsByClass[k] = v
		}
	}
	if r.Config.CustomMix != nil {
		mix := *r.Config.CustomMix
		c.Config.CustomMix = &mix
	}
	if r.Config.TraceFiles != nil {
		c.Config.TraceFiles = append([]string(nil), r.Config.TraceFiles...)
	}
	return &c
}

// collect walks the fabric's statistics sets into a Results. cycles and
// events come from the caller because the serial path reads them off the
// single engine while the parallel path aggregates per-tile engines (with
// all per-tile statistics already folded into fab).
func collect(cfg Config, fab *coherence.Fabric, procs []*coherence.Processor, sampler *occupancySampler, cycles sim.Cycle, events uint64) *Results {
	r := &Results{Config: cfg, Cycles: uint64(cycles), EventsRun: events}

	var missLatSum, missLatN int64
	for _, l1 := range fab.L1s {
		s := l1.Stats()
		r.Loads += s.Counter("loads").Value()
		r.Stores += s.Counter("stores").Value()
		r.L1Hits += s.Counter("hits").Value()
		r.L1Misses += s.Counter("misses").Value()
		r.CoverageMisses += s.Counter("coverage_misses").Value()
		r.InvsDemand += s.Counter("invalidations.demand").Value()
		r.InvsRecall += s.Counter("invalidations.recall").Value()
		r.InvsLLCEvict += s.Counter("invalidations.llc-evict").Value()
		r.SpuriousInvs += s.Counter("invalidations.spurious").Value()
		r.L2Hits += s.Counter("l2_hits").Value()
		r.L2Misses += s.Counter("l2_misses").Value()
		h := s.Histogram("miss_latency")
		missLatSum += h.Sum()
		missLatN += h.Count()
	}
	if missLatN > 0 {
		r.AvgMissLatency = float64(missLatSum) / float64(missLatN)
	}
	total := r.Loads + r.Stores
	if total > 0 {
		r.L1MissRate = float64(r.L1Misses) / float64(total)
	}
	if r.Cycles > 0 {
		r.AccessesPerKCycle = float64(total) / float64(r.Cycles) * 1000
	}

	var llcHits int64
	for _, bank := range fab.Banks {
		d := bank.Directory().Stats()
		r.DirLookups += d.Counter("lookups").Value()
		r.DirHits += d.Counter("hits").Value()
		r.DirMisses += d.Counter("misses").Value()
		r.DirAllocations += d.Counter("allocations").Value()
		r.DirRemovals += d.Counter("removals").Value()
		r.StashEvictions += d.Counter("stash_evictions").Value()
		r.RecallEvictions += d.Counter("recall_evictions").Value()
		r.CuckooRelocations += d.Counter("relocations").Value()
		r.DirEntriesTotal += bank.Directory().Capacity()

		b := bank.Stats()
		r.DiscoveryBroadcasts += b.Counter("discovery_broadcasts").Value()
		r.DiscoveryProbes += b.Counter("discovery_probes_sent").Value()
		r.DiscoveryFound += b.Counter("discovery_found").Value()
		r.DiscoveryStale += b.Counter("discovery_stale").Value()
		r.HiddenSet += b.Counter("hidden_set").Value()
		r.HiddenCleared += b.Counter("hidden_cleared").Value()
		r.BroadcastInvalidations += b.Counter("broadcast_invalidations").Value()

		l := bank.LLC().Stats()
		llcHits += l.Counter("hits").Value()
		r.LLCMisses += l.Counter("misses").Value()
	}
	r.LLCAccesses = llcHits + r.LLCMisses
	if r.DirEntriesTotal > 0 {
		r.RealizedCoverage = float64(r.DirEntriesTotal) / float64(cfg.AggregatePrivateBlocks())
	}

	r.MemReads = fab.Memory.Stats().Counter("reads").Value()
	r.MemWrites = fab.Memory.Stats().Counter("writes").Value()

	r.FlitHopsByClass = make(map[string]int64, int(noc.NumClasses))
	for c := noc.Class(0); c < noc.NumClasses; c++ {
		v := fab.Mesh.FlitHops(c)
		r.FlitHopsByClass[c.String()] = v
		r.TotalFlitHops += v
	}

	if sampler != nil {
		r.AvgDirOccupancy, r.AvgPrivateFraction, r.Sampled = sampler.averages()
	}

	dirWays := cfg.DirWays
	if cfg.DirKind == DirFullMap {
		dirWays = 1
	}
	dirEntries := r.DirEntriesTotal
	if cfg.DirKind == DirFullMap {
		// The ideal directory has no fixed size; charge it as if it were
		// a 1x-coverage structure so energy comparisons stay meaningful.
		dirEntries = cfg.AggregatePrivateBlocks()
	}
	r.Energy = energy.Default().Compute(energy.Counts{
		Cycles:       r.Cycles,
		DirLookups:   r.DirLookups,
		DirWays:      dirWays,
		DirUpdates:   r.DirAllocations + r.DirRemovals + r.StashEvictions + r.CuckooRelocations,
		DirEntries:   dirEntries,
		DirEntryBits: cfg.DirEntryBits(),
		L1Accesses:   total,
		LLCAccesses:  r.LLCAccesses,
		LLCLines:     cfg.Cores * cfg.LLCSetsPerBank * cfg.LLCWays,
		FlitHops:     r.TotalFlitHops,
		MemAccesses:  r.MemReads + r.MemWrites,
	})
	return r
}

// InvalidationsConflict returns the conflict-induced invalidations (recall
// + LLC eviction) — the quantity the stash directory eliminates.
func (r *Results) InvalidationsConflict() int64 {
	return r.InvsRecall + r.InvsLLCEvict
}

// DiscoveryPer1kLLCAccesses normalizes discovery broadcasts the way the
// paper's overhead figure does.
func (r *Results) DiscoveryPer1kLLCAccesses() float64 {
	if r.LLCAccesses == 0 {
		return 0
	}
	return float64(r.DiscoveryBroadcasts) / float64(r.LLCAccesses) * 1000
}

// Summary renders a human-readable report.
func (r *Results) Summary() string {
	var b strings.Builder
	c := r.Config
	fmt.Fprintf(&b, "workload=%s dir=%s coverage=%.4g cores=%d\n", c.WorkloadName(), c.DirKind, c.Coverage, c.Cores)
	fmt.Fprintf(&b, "  cycles=%d  throughput=%.2f acc/kcycle  l1-miss-rate=%.4f  avg-miss-latency=%.1f\n",
		r.Cycles, r.AccessesPerKCycle, r.L1MissRate, r.AvgMissLatency)
	fmt.Fprintf(&b, "  invalidations: demand=%d recall=%d llc-evict=%d  coverage-misses=%d\n",
		r.InvsDemand, r.InvsRecall, r.InvsLLCEvict, r.CoverageMisses)
	fmt.Fprintf(&b, "  directory: entries=%d lookups=%d miss-rate=%.3f stash-evictions=%d recall-evictions=%d\n",
		r.DirEntriesTotal, r.DirLookups, safeDiv(r.DirMisses, r.DirLookups), r.StashEvictions, r.RecallEvictions)
	if r.DiscoveryBroadcasts > 0 {
		fmt.Fprintf(&b, "  discovery: broadcasts=%d (%.2f per 1k LLC accesses) found=%d stale=%d\n",
			r.DiscoveryBroadcasts, r.DiscoveryPer1kLLCAccesses(), r.DiscoveryFound, r.DiscoveryStale)
	}
	fmt.Fprintf(&b, "  network: flit-hops=%d  memory: reads=%d writes=%d\n", r.TotalFlitHops, r.MemReads, r.MemWrites)
	fmt.Fprintf(&b, "  energy: %s\n", r.Energy)
	if r.Sampled {
		fmt.Fprintf(&b, "  occupancy=%.3f private-fraction=%.3f\n", r.AvgDirOccupancy, r.AvgPrivateFraction)
	}
	return b.String()
}

func safeDiv(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}
