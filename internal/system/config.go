// Package system assembles complete simulated machines from a declarative
// Config, runs them, and collects the cross-component Results the
// experiment harness consumes. It is the layer the public facade and the
// command-line tools sit on.
package system

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cache"
	"repro/internal/coherence"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// Directory organization names accepted by Config.DirKind.
const (
	DirFullMap = "fullmap"
	DirSparse  = "sparse"
	DirStash   = "stash"
	DirStashSS = "stash-ss" // stash that also stashes singleton-Shared entries
	DirCuckoo  = "cuckoo"
)

// DirKinds lists the accepted directory organization names.
func DirKinds() []string {
	return []string{DirFullMap, DirSparse, DirStash, DirStashSS, DirCuckoo}
}

// Config describes one simulation. Zero fields take defaults from
// DefaultConfig; Validate reports impossible combinations.
type Config struct {
	// Cores must be a mesh-tileable count from SupportedCores():
	// 1, 2, 4, 8, 16, 32, 64, 128, or 256.
	Cores int

	// Directory organization and size. Coverage is directory entries
	// divided by aggregate L1 capacity in blocks (the paper's size axis);
	// it is ignored by fullmap.
	DirKind  string
	Coverage float64
	DirWays  int

	// Cache geometry. L1 defaults to the paper's 32KB 4-way (128x4);
	// the LLC bank defaults to 1MB 16-way (1024x16). L2Sets/L2Ways, when
	// both nonzero, add an inclusive private L2 per core (e.g. 256x8 =
	// 128KB); the directory then tracks L2 contents and the coverage
	// ratio is computed against aggregate L2 capacity.
	L1Sets, L1Ways          int
	L2Sets, L2Ways          int
	LLCSetsPerBank, LLCWays int
	ReplacementPolicy       cache.PolicyKind
	SilentCleanEvictions    bool
	// ThreeHopForwarding makes owners forward data directly to requesters
	// instead of routing it through the directory (the default).
	ThreeHopForwarding bool
	// MSHRs is the per-core outstanding-miss limit; 0 or 1 models the
	// blocking in-order core of the base configuration.
	MSHRs int
	// PointerLimit selects the directory entry format: 0 keeps full-map
	// sharer vectors; P > 0 models Dir_P-B limited-pointer entries
	// (overflow past P sharers invalidates by broadcast) with
	// correspondingly narrower — cheaper — entries.
	PointerLimit int

	// Workload selection: a name from internal/workloads, a custom mix,
	// or externally captured trace files (one per core, in the format
	// cmd/tracegen -raw emits). Exactly one of the three.
	Workload        string
	CustomMix       *trace.Mix
	TraceFiles      []string
	AccessesPerCore int
	WorkloadScale   float64
	Seed            int64

	// Checker enables the data-value oracle and post-run audit. It is on
	// by default; large benchmark sweeps may disable it for speed.
	Checker bool

	// SamplePeriod, when nonzero, samples directory occupancy and the
	// private-entry fraction every that-many cycles (Fig 1 / Table 3).
	SamplePeriod uint64

	// Shards, when nonzero, runs the machine on the parallel engine
	// (internal/psim) with that many worker goroutines. 0 — the default —
	// keeps the serial engine. Parallel runs are deterministic and
	// bit-identical across shard counts, but follow the psim event order
	// rather than the serial engine's, so their results are compared
	// against psim fixtures, not serial ones. Requires Checker=false (the
	// value oracle needs a global store order that parallel tiles do not
	// share). The json tag keeps serial (Shards=0) Results fixtures
	// byte-identical to those captured before this field existed.
	Shards int `json:",omitempty"`

	// Timing overrides; zero fields keep coherence.DefaultParams values.
	MemLatency  uint64
	BankLatency uint64
}

// DefaultConfig returns the paper's 16-core model running the given
// workload with the stash directory at 1x coverage.
func DefaultConfig(workload string) Config {
	return Config{
		Cores:           16,
		DirKind:         DirStash,
		Coverage:        1,
		DirWays:         4,
		L1Sets:          128,
		L1Ways:          4,
		LLCSetsPerBank:  1024,
		LLCWays:         16,
		Workload:        workload,
		AccessesPerCore: 50_000,
		WorkloadScale:   1,
		Seed:            1,
		Checker:         true,
	}
}

// QuickConfig returns a scaled-down machine (16KB L1s, 128KB LLC banks,
// half-size working sets, 20k accesses/core) that preserves every capacity
// ratio of the full model while running an order of magnitude faster. The
// benchmark harness uses it.
func QuickConfig(workload string) Config {
	c := DefaultConfig(workload)
	c.L1Sets = 64
	c.LLCSetsPerBank = 256
	c.LLCWays = 8
	c.AccessesPerCore = 20_000
	c.WorkloadScale = 0.5
	return c
}

// meshShapes maps supported core counts to mesh geometry.
var meshShapes = map[int][2]int{
	1: {1, 1}, 2: {2, 1}, 4: {2, 2}, 8: {4, 2},
	16: {4, 4}, 32: {8, 4}, 64: {8, 8},
	128: {16, 8}, 256: {16, 16},
}

// SupportedCores lists the mesh-tileable core counts in ascending order.
// Error messages and CLI help derive from it so they cannot drift from
// meshShapes.
func SupportedCores() []int {
	out := make([]int, 0, len(meshShapes))
	for c := range meshShapes { //stash:ignore determinism sorted before use
		out = append(out, c)
	}
	sort.Ints(out)
	return out
}

// supportedCoresList renders SupportedCores for error messages.
func supportedCoresList() string {
	var b strings.Builder
	for i, c := range SupportedCores() {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", c)
	}
	return b.String()
}

// Validate checks the configuration (after defaulting).
func (c *Config) Validate() error {
	if _, ok := meshShapes[c.Cores]; !ok {
		return fmt.Errorf("system: unsupported core count %d (want %s)", c.Cores, supportedCoresList())
	}
	switch c.DirKind {
	case DirFullMap, DirSparse, DirStash, DirStashSS, DirCuckoo:
	default:
		return fmt.Errorf("system: unknown directory kind %q (want one of %v)", c.DirKind, DirKinds())
	}
	if c.DirKind != DirFullMap && c.Coverage <= 0 {
		return fmt.Errorf("system: coverage must be positive, got %v", c.Coverage)
	}
	if c.DirWays < 1 {
		return fmt.Errorf("system: directory ways must be >= 1, got %d", c.DirWays)
	}
	selected := 0
	if c.Workload != "" {
		selected++
	}
	if c.CustomMix != nil {
		selected++
	}
	if len(c.TraceFiles) != 0 {
		selected++
	}
	if selected == 0 {
		return fmt.Errorf("system: no workload selected")
	}
	if selected > 1 {
		return fmt.Errorf("system: choose exactly one of workload name, custom mix, trace files")
	}
	if n := len(c.TraceFiles); n != 0 && n != c.Cores {
		return fmt.Errorf("system: %d trace files for %d cores", n, c.Cores)
	}
	if len(c.TraceFiles) == 0 && c.AccessesPerCore < 1 {
		return fmt.Errorf("system: accesses per core must be >= 1, got %d", c.AccessesPerCore)
	}
	if c.WorkloadScale <= 0 {
		return fmt.Errorf("system: workload scale must be positive, got %v", c.WorkloadScale)
	}
	if (c.L2Sets == 0) != (c.L2Ways == 0) {
		return fmt.Errorf("system: L2 sets and ways must be set together (got %dx%d)", c.L2Sets, c.L2Ways)
	}
	if c.Shards < 0 || c.Shards > c.Cores {
		return fmt.Errorf("system: shards must be in [0,%d], got %d", c.Cores, c.Shards)
	}
	if c.Shards > 0 && c.Checker {
		return fmt.Errorf("system: the checker needs a global store order; parallel runs (Shards=%d) require Checker=false", c.Shards)
	}
	return nil
}

// HasL2 reports whether the configuration adds private L2s.
func (c *Config) HasL2() bool { return c.L2Sets > 0 && c.L2Ways > 0 }

// mix resolves the workload mix.
func (c *Config) mix() (trace.Mix, error) {
	var m trace.Mix
	if c.CustomMix != nil {
		m = *c.CustomMix
	} else {
		var err error
		m, err = workloads.Get(c.Workload)
		if err != nil {
			return trace.Mix{}, err
		}
	}
	return m.Scaled(c.WorkloadScale), nil
}

// WorkloadName returns the display name of the selected workload.
func (c *Config) WorkloadName() string {
	if c.CustomMix != nil {
		return c.CustomMix.Name
	}
	if len(c.TraceFiles) != 0 {
		return "trace-files"
	}
	return c.Workload
}

// DirEntryBits returns the modeled width of one directory entry under the
// configured format: a 28-bit tag/state overhead plus either a full-map
// sharer vector (one bit per core) or PointerLimit pointers of
// ceil(log2(cores)) bits each plus an overflow bit.
func (c *Config) DirEntryBits() int {
	const overhead = 28
	if c.PointerLimit <= 0 {
		return overhead + c.Cores
	}
	ptr := 1
	for 1<<ptr < c.Cores {
		ptr++
	}
	return overhead + c.PointerLimit*ptr + 1
}

// AggregateL1Blocks returns the total L1 capacity in blocks.
func (c *Config) AggregateL1Blocks() int {
	return c.Cores * c.L1Sets * c.L1Ways
}

// AggregatePrivateBlocks returns the total private-cache capacity the
// directory must cover — the denominator of the coverage ratio: aggregate
// L2 capacity when private L2s exist (they include the L1s), aggregate L1
// capacity otherwise.
func (c *Config) AggregatePrivateBlocks() int {
	if c.HasL2() {
		return c.Cores * c.L2Sets * c.L2Ways
	}
	return c.AggregateL1Blocks()
}

// DirEntriesPerBank returns the directory slice size implied by Coverage.
// The per-bank set count is rounded up to a power of two; when rounding
// occurs the realized coverage is slightly above the requested one, which
// the Results record.
func (c *Config) DirEntriesPerBank() int {
	total := int(c.Coverage * float64(c.AggregatePrivateBlocks()))
	per := total / c.Cores
	if per < c.DirWays {
		per = c.DirWays
	}
	sets := per / c.DirWays
	p := 1
	for p < sets {
		p <<= 1
	}
	return p * c.DirWays
}

// params builds the protocol parameters.
func (c *Config) params() coherence.Params {
	p := coherence.DefaultParams(c.Cores)
	p.SilentCleanEvictions = c.SilentCleanEvictions
	p.ThreeHopForwarding = c.ThreeHopForwarding
	if c.MSHRs > 0 {
		p.MSHRs = c.MSHRs
	}
	p.PointerLimit = c.PointerLimit
	if c.MemLatency != 0 {
		p.MemLatency = simCycle(c.MemLatency)
	}
	if c.BankLatency != 0 {
		p.BankLatency = simCycle(c.BankLatency)
	}
	return p
}
