package mem

import (
	"testing"
	"testing/quick"
)

func TestBlockOf(t *testing.T) {
	cases := []struct {
		addr Addr
		want Block
	}{
		{0, 0},
		{1, 0},
		{63, 0},
		{64, 1},
		{65, 1},
		{127, 1},
		{128, 2},
		{64 * 1000, 1000},
	}
	for _, c := range cases {
		if got := BlockOf(c.addr); got != c.want {
			t.Errorf("BlockOf(%d) = %d, want %d", c.addr, got, c.want)
		}
	}
}

func TestAddrOfRoundTrip(t *testing.T) {
	f := func(b uint32) bool {
		blk := Block(b)
		return BlockOf(AddrOf(blk)) == blk
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBlockOfWithinLine(t *testing.T) {
	// Every address within one line maps to the same block.
	f := func(b uint32, off uint8) bool {
		blk := Block(b)
		a := AddrOf(blk) + Addr(off%LineSize)
		return BlockOf(a) == blk
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStateString(t *testing.T) {
	cases := map[State]string{
		Invalid:   "I",
		Shared:    "S",
		Exclusive: "E",
		Modified:  "M",
		State(9):  "State(9)",
	}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Errorf("State(%d).String() = %q, want %q", s, got, want)
		}
	}
}

func TestStatePredicates(t *testing.T) {
	cases := []struct {
		s                         State
		readable, writable, owned bool
	}{
		{Invalid, false, false, false},
		{Shared, true, false, false},
		{Exclusive, true, false, true},
		{Modified, true, true, true},
	}
	for _, c := range cases {
		if got := c.s.Readable(); got != c.readable {
			t.Errorf("%v.Readable() = %v, want %v", c.s, got, c.readable)
		}
		if got := c.s.Writable(); got != c.writable {
			t.Errorf("%v.Writable() = %v, want %v", c.s, got, c.writable)
		}
		if got := c.s.Owned(); got != c.owned {
			t.Errorf("%v.Owned() = %v, want %v", c.s, got, c.owned)
		}
	}
}

func TestAccessString(t *testing.T) {
	ld := Access{Addr: 0x40, Write: false}
	st := Access{Addr: 0x80, Write: true}
	if got := ld.String(); got != "LD 0x40" {
		t.Errorf("load string = %q", got)
	}
	if got := st.String(); got != "ST 0x80" {
		t.Errorf("store string = %q", got)
	}
	if ld.Block() != 1 || st.Block() != 2 {
		t.Errorf("Block(): got %d and %d, want 1 and 2", ld.Block(), st.Block())
	}
}
