// Package mem defines the fundamental memory types shared by the whole
// simulator: byte addresses, block (cache-line) numbers, MESI coherence
// states and memory access records.
//
// All caches in the simulated machine use one global line size, fixed at
// configuration time. Block numbers are byte addresses divided by the line
// size; the coherence machinery operates exclusively on block numbers so
// that a single address representation flows through L1s, the LLC, the
// directory and the network.
package mem

import "fmt"

// Addr is a physical byte address in the simulated machine.
type Addr uint64

// Block is a cache-line number: a byte address divided by the line size.
type Block uint64

// LineSize is the cache-line size in bytes used throughout the simulated
// machine. The paper's configuration uses 64-byte lines.
const LineSize = 64

// BlockOf returns the block containing a.
func BlockOf(a Addr) Block { return Block(a / LineSize) }

// AddrOf returns the first byte address of block b.
func AddrOf(b Block) Addr { return Addr(b) * LineSize }

// State is a MESI coherence state as seen by a private cache line.
type State uint8

// The stable MESI states. Transient states live inside the protocol
// controllers and are not part of this package.
const (
	Invalid State = iota
	Shared
	Exclusive
	Modified
)

// String returns the usual one-letter MESI name.
func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	}
	return fmt.Sprintf("State(%d)", uint8(s))
}

// Readable reports whether a line in state s may service loads.
func (s State) Readable() bool { return s != Invalid }

// Writable reports whether a line in state s may service stores without a
// coherence transaction.
func (s State) Writable() bool { return s == Modified }

// Owned reports whether a line in state s holds the block exclusively
// (clean or dirty). Owned lines are what the stash directory calls
// "private" blocks when they have exactly one sharer.
func (s State) Owned() bool { return s == Exclusive || s == Modified }

// Access is one memory reference issued by a core.
type Access struct {
	Addr  Addr
	Write bool
}

// Block returns the block the access touches.
func (a Access) Block() Block { return BlockOf(a.Addr) }

func (a Access) String() string {
	op := "LD"
	if a.Write {
		op = "ST"
	}
	return fmt.Sprintf("%s 0x%x", op, uint64(a.Addr))
}
