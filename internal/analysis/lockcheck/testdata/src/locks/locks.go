// Package locks exercises the lockcheck analyzer: guarded field access,
// //stash:locked preconditions, unlock discipline and the declared lock
// order.
package locks

import "sync"

//stash:lockorder Registry.mu < Session.mu

// Registry owns sessions; its mutex also guards fields of the values it
// owns (Session.slot), the pattern the runner's LRU cache uses.
type Registry struct {
	mu sync.Mutex
	//stash:guardedby mu
	sessions map[string]*Session
}

type Session struct {
	mu sync.Mutex
	//stash:guardedby mu
	state string
	//stash:guardedby Registry.mu
	slot int
}

func (r *Registry) lookup(key string) *Session {
	r.mu.Lock()
	s := r.sessions[key]
	r.mu.Unlock()
	return s
}

func (r *Registry) unguarded(key string) *Session {
	return r.sessions[key] // want `sessions is guarded by mu`
}

func (r *Registry) suppressed(key string) *Session {
	//stash:ignore lockcheck the result is re-validated under the lock by every caller
	return r.sessions[key]
}

// addLocked is the precondition pattern: the body is checked with mu held.
//
//stash:locked mu
func (r *Registry) addLocked(key string, s *Session) {
	r.sessions[key] = s
}

func (r *Registry) add(key string, s *Session) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.addLocked(key, s)
}

func (r *Registry) addUnlocked(key string, s *Session) {
	r.addLocked(key, s) // want `call to addLocked requires mu held`
}

// publish is the deferred-unlock-with-early-return pattern: clean.
func (r *Registry) publish(key string, s *Session) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.sessions[key]; ok {
		return
	}
	r.sessions[key] = s
}

// relabel nests the locks in the declared order and satisfies both guard
// forms: state under its sibling mu, slot under the owning Registry's mu.
func (r *Registry) relabel(s *Session) {
	r.mu.Lock()
	s.mu.Lock()
	s.state = "relabeled"
	s.slot = 1
	s.mu.Unlock()
	r.mu.Unlock()
}

func (s *Session) badOrder(r *Registry) {
	s.mu.Lock()
	r.mu.Lock() // want `lock order violation: acquiring Registry.mu while holding Session.mu`
	r.mu.Unlock()
	s.mu.Unlock()
}

func (s *Session) doubleLock() {
	s.mu.Lock()
	s.mu.Lock() // want `already locked here`
	s.mu.Unlock()
}

func (s *Session) doubleUnlock() {
	s.mu.Lock()
	s.mu.Unlock()
	s.mu.Unlock() // want `not held on every path`
}

func (s *Session) unlockOnSomePathsOnly(drop bool) {
	s.mu.Lock()
	if drop {
		s.mu.Unlock()
	}
	s.mu.Unlock() // want `not held on every path`
}

func (s *Session) heldAtReturn(fast bool) {
	s.mu.Lock()
	if fast {
		return // want `s.mu still locked at return`
	}
	s.mu.Unlock()
}

func (s *Session) heldAtEnd() {
	s.mu.Lock()
	s.state = "wedged"
} // want `s.mu still locked at return`

// goroutines never inherit the spawner's locks.
func (s *Session) leakToGoroutine() {
	s.mu.Lock()
	go func() {
		s.state = "async" // want `state is guarded by mu`
	}()
	s.mu.Unlock()
}

// cacheStats is the embedded-mutex global pattern (trace's memo table);
// balanced locking through the promoted methods is clean.
var cacheStats struct {
	sync.Mutex
	hits int
}

func bumpHits() {
	cacheStats.Lock()
	cacheStats.hits++
	cacheStats.Unlock()
}
