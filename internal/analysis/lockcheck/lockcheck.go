// Package lockcheck implements the stashvet analyzer for lock discipline in
// the concurrent service layer. Three //stash: directives declare the locking
// contract, and the analyzer checks every function against it with a
// flow-sensitive must-hold analysis:
//
//	//stash:guardedby <mutex>   on a struct field: the field may only be read
//	                            or written with the named mutex held. The
//	                            mutex is either a sibling field ("mu") or a
//	                            field of the owning type ("Runner.mu") for
//	                            values embedded in a larger structure whose
//	                            lock covers them (the runner's LRU cache).
//	//stash:locked <mutex>      on a function: callers must hold the mutex.
//	                            The body is checked with the lock assumed
//	                            held; every call site is checked to hold it.
//	//stash:lockorder A.f < B.f declares one edge of the mutex partial order:
//	                            B.f may be acquired while A.f is held, never
//	                            the reverse. Edges close transitively.
//
// Independently of the directives, every function is checked for mutex
// misuse: locking a mutex already held (self-deadlock), unlocking a mutex
// not held on every path (double unlock), and returning with a mutex still
// locked and no deferred unlock.
//
// The analysis is intraprocedural and must-hold: branch states merge by
// intersection, so "held" means held on every path reaching the point.
// Locks are named structurally ("r.mu", "j.mu"); where the mutex expression
// has a named owner type the qualified name ("Runner.mu") also participates,
// which is what lets a lock taken on one receiver satisfy a Type.field
// guard on a value it owns. Goroutine bodies are analyzed as independent
// functions holding nothing — a goroutine never inherits its spawner's
// locks.
package lockcheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the lock discipline check.
var Analyzer = &analysis.Analyzer{
	Name: "lockcheck",
	Doc: "enforce //stash:guardedby field access under the named mutex, unlock-on-every-path, " +
		"double-lock/double-unlock detection, //stash:locked call preconditions and the " +
		"declared //stash:lockorder partial order",
	Run: run,
}

// guardSpec names the mutex protecting a field or required by a function.
type guardSpec struct {
	raw      string // as written: "mu" or "Runner.mu"
	typeName string // "Runner" for the qualified form, "" for a sibling field
	field    string // "mu"
}

func parseGuard(raw string) guardSpec {
	if t, f, ok := strings.Cut(raw, "."); ok && t != "" && f != "" {
		return guardSpec{raw: raw, typeName: t, field: f}
	}
	return guardSpec{raw: raw, field: raw}
}

// facts are the directive tables collected across every loaded package, so a
// guarded field and its accessors may live in different packages.
type facts struct {
	guarded map[*types.Var]guardSpec
	locked  map[*types.Func]guardSpec
	less    map[string]map[string]bool // less[a][b]: a must be acquired before b
}

func run(pass *analysis.Pass) error {
	f := collect(pass)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				analyzeFunc(pass, f, fd)
			}
		}
	}
	return nil
}

// collect builds the directive tables from the whole universe. Malformed
// directives are reported only when they sit in the package under analysis,
// so each problem is reported exactly once per run.
func collect(pass *analysis.Pass) *facts {
	f := &facts{
		guarded: map[*types.Var]guardSpec{},
		locked:  map[*types.Func]guardSpec{},
		less:    map[string]map[string]bool{},
	}
	local := map[*ast.File]bool{}
	for _, file := range pass.Files {
		local[file] = true
	}
	for _, pi := range pass.Universe {
		for _, file := range pi.Files {
			collectFile(pass, f, pi, file, local[file])
		}
	}
	closeOrder(f.less)
	return f
}

func collectFile(pass *analysis.Pass, f *facts, pi *analysis.PackageInfo, file *ast.File, local bool) {
	// Guarded fields: //stash:guardedby on a struct field's doc or trailing
	// comment.
	ast.Inspect(file, func(n ast.Node) bool {
		st, ok := n.(*ast.StructType)
		if !ok {
			return true
		}
		for _, fld := range st.Fields.List {
			for _, cg := range []*ast.CommentGroup{fld.Doc, fld.Comment} {
				if cg == nil {
					continue
				}
				for _, c := range cg.List {
					d, ok := analysis.ParseDirective(c.Text)
					if !ok || d.Verb != analysis.DirectiveGuardedBy {
						continue
					}
					if d.Args == "" {
						if local {
							pass.Reportf(c.Pos(), "malformed //stash:guardedby: want \"//stash:guardedby <mutex>\"")
						}
						continue
					}
					g := parseGuard(d.Args)
					for _, name := range fld.Names {
						if v, ok := pi.Info.Defs[name].(*types.Var); ok {
							f.guarded[v] = g
						}
					}
				}
			}
		}
		return true
	})

	// Locked functions: //stash:locked on a declaration's doc comment.
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Doc == nil {
			continue
		}
		for _, c := range fd.Doc.List {
			d, ok := analysis.ParseDirective(c.Text)
			if !ok || d.Verb != analysis.DirectiveLocked {
				continue
			}
			if d.Args == "" {
				if local {
					pass.Reportf(c.Pos(), "malformed //stash:locked: want \"//stash:locked <mutex>\"")
				}
				continue
			}
			if fn, ok := pi.Info.Defs[fd.Name].(*types.Func); ok {
				f.locked[fn] = parseGuard(d.Args)
			}
		}
	}

	// Lock order edges: //stash:lockorder anywhere in a file.
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			d, ok := analysis.ParseDirective(c.Text)
			if !ok || d.Verb != analysis.DirectiveLockOrder {
				continue
			}
			before, after, ok := strings.Cut(d.Args, "<")
			before, after = strings.TrimSpace(before), strings.TrimSpace(after)
			if !ok || before == "" || after == "" {
				if local {
					pass.Reportf(c.Pos(), "malformed //stash:lockorder: want \"//stash:lockorder A.mu < B.mu\"")
				}
				continue
			}
			if f.less[before] == nil {
				f.less[before] = map[string]bool{}
			}
			f.less[before][after] = true
		}
	}
}

// closeOrder takes the transitive closure of the declared partial order.
func closeOrder(less map[string]map[string]bool) {
	for changed := true; changed; {
		changed = false
		for a, outs := range less {
			for b := range outs {
				for c := range less[b] {
					if !less[a][c] {
						less[a][c] = true
						changed = true
					}
				}
			}
		}
	}
}

// lockState is what the analysis knows about one held lock.
type lockState struct {
	qual     string // "Runner.mu" when the owner type is named, else ""
	deferred bool   // a deferred unlock is pending; held to function end
	seeded   bool   // assumed held from //stash:locked; expected at return
}

// lockEnv maps structural lock names ("r.mu") to their states. Copied at
// branches, merged by intersection (must-hold).
type lockEnv map[string]lockState

func (e lockEnv) clone() lockEnv {
	out := make(lockEnv, len(e))
	for k, s := range e {
		out[k] = s
	}
	return out
}

// intersectInto narrows dst to the locks held in both dst and src, returning
// whether dst changed.
func intersectInto(dst, src lockEnv) bool {
	changed := false
	for k, ds := range dst {
		ss, ok := src[k]
		if !ok {
			delete(dst, k)
			changed = true
			continue
		}
		if ds.deferred && !ss.deferred {
			ds.deferred = false
			dst[k] = ds
			changed = true
		}
	}
	return changed
}

func replace(dst, src lockEnv) {
	for k := range dst {
		delete(dst, k)
	}
	for k, s := range src {
		dst[k] = s
	}
}

func analyzeFunc(pass *analysis.Pass, f *facts, fd *ast.FuncDecl) {
	fa := &fnAnalyzer{
		pass:     pass,
		f:        f,
		reported: map[token.Pos]bool{},
		everHeld: map[string]bool{},
	}
	e := lockEnv{}
	if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
		if g, ok := f.locked[fn]; ok {
			fa.seed(e, fd, g)
		}
	}
	if !fa.block(fd.Body, e) {
		fa.atReturn(e, fd.Body.Rbrace)
	}
	// Function literals run later (goroutines, defers, callbacks) and hold
	// nothing when they start; each is an independent function.
	for i := 0; i < len(fa.funcLits); i++ {
		lit := fa.funcLits[i]
		sub := &fnAnalyzer{
			pass:     pass,
			f:        f,
			reported: fa.reported,
			everHeld: map[string]bool{},
			nested:   true,
		}
		le := lockEnv{}
		if !sub.block(lit.Body, le) {
			sub.atReturn(le, lit.Body.Rbrace)
		}
		fa.funcLits = append(fa.funcLits, sub.funcLits...)
	}
}

type fnAnalyzer struct {
	pass     *analysis.Pass
	f        *facts
	reported map[token.Pos]bool
	// everHeld records locks this function locked at some point; in nested
	// function literals, "unlock without lock" is only reported for those,
	// since a closure may legitimately unlock a lock its enclosing function
	// holds (a deferred-unlock closure).
	everHeld map[string]bool
	nested   bool
	funcLits []*ast.FuncLit
}

func (fa *fnAnalyzer) reportf(pos token.Pos, format string, args ...any) {
	if fa.reported[pos] {
		return
	}
	fa.reported[pos] = true
	fa.pass.Reportf(pos, format, args...)
}

// seed marks the //stash:locked mutex as held on entry.
func (fa *fnAnalyzer) seed(e lockEnv, fd *ast.FuncDecl, g guardSpec) {
	if g.typeName != "" {
		e["<locked:"+g.raw+">"] = lockState{qual: g.raw, seeded: true}
		return
	}
	if fd.Recv == nil || len(fd.Recv.List) != 1 {
		fa.reportf(fd.Pos(), "//stash:locked %s on a function without a receiver: use the Type.%s form", g.raw, g.raw)
		return
	}
	qual := ""
	if tn := recvTypeName(fd.Recv.List[0].Type); tn != "" {
		qual = tn + "." + g.field
	}
	names := fd.Recv.List[0].Names
	if len(names) == 1 && names[0].Name != "_" {
		key := names[0].Name + "." + g.field
		e[key] = lockState{qual: qual, seeded: true}
		fa.everHeld[key] = true
		return
	}
	if qual != "" {
		e["<locked:"+qual+">"] = lockState{qual: qual, seeded: true}
	}
}

// recvTypeName extracts the receiver's type name from its AST.
func recvTypeName(t ast.Expr) string {
	switch t := t.(type) {
	case *ast.StarExpr:
		return recvTypeName(t.X)
	case *ast.Ident:
		return t.Name
	case *ast.IndexExpr: // generic receiver
		return recvTypeName(t.X)
	case *ast.IndexListExpr:
		return recvTypeName(t.X)
	}
	return ""
}

// atReturn flags locks still held at a return with no deferred unlock.
func (fa *fnAnalyzer) atReturn(e lockEnv, pos token.Pos) {
	var leaked []string
	for k, s := range e {
		if s.deferred || s.seeded {
			continue
		}
		leaked = append(leaked, k)
	}
	if len(leaked) == 0 {
		return
	}
	sort.Strings(leaked)
	fa.reportf(pos, "%s still locked at return: unlock on every path or defer the unlock", strings.Join(leaked, ", "))
}

// block interprets a block; true means every path through it terminates.
func (fa *fnAnalyzer) block(b *ast.BlockStmt, e lockEnv) bool {
	for _, st := range b.List {
		if fa.stmt(st, e) {
			return true
		}
	}
	return false
}

func (fa *fnAnalyzer) stmt(st ast.Stmt, e lockEnv) bool {
	switch st := st.(type) {
	case *ast.ExprStmt:
		if call, ok := st.X.(*ast.CallExpr); ok && isPanic(fa.pass.TypesInfo, call) {
			for _, a := range call.Args {
				fa.expr(a, e)
			}
			return true
		}
		fa.expr(st.X, e)
	case *ast.AssignStmt:
		for _, r := range st.Rhs {
			fa.expr(r, e)
		}
		for _, l := range st.Lhs {
			fa.expr(l, e)
		}
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, val := range vs.Values {
						fa.expr(val, e)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, r := range st.Results {
			fa.expr(r, e)
		}
		fa.atReturn(e, st.Pos())
		return true
	case *ast.IfStmt:
		return fa.ifStmt(st, e)
	case *ast.ForStmt:
		if st.Init != nil {
			fa.stmt(st.Init, e)
		}
		if st.Cond != nil {
			fa.expr(st.Cond, e)
		}
		fa.loop(st.Body, e, func(ee lockEnv) {
			if st.Post != nil {
				fa.stmt(st.Post, ee)
			}
		})
	case *ast.RangeStmt:
		fa.expr(st.X, e)
		fa.loop(st.Body, e, nil)
	case *ast.SwitchStmt:
		return fa.switchStmt(st.Init, st.Tag, st.Body, false, e)
	case *ast.TypeSwitchStmt:
		return fa.switchStmt(st.Init, nil, st.Body, false, e)
	case *ast.SelectStmt:
		return fa.switchStmt(nil, nil, st.Body, true, e)
	case *ast.BlockStmt:
		return fa.block(st, e)
	case *ast.BranchStmt:
		// break/continue/goto leave the straight-line path; conservative:
		// their lock state is dropped rather than merged.
		return true
	case *ast.DeferStmt:
		fa.deferStmt(st, e)
	case *ast.GoStmt:
		fa.expr(st.Call.Fun, e)
		for _, a := range st.Call.Args {
			fa.expr(a, e)
		}
	case *ast.SendStmt:
		fa.expr(st.Chan, e)
		fa.expr(st.Value, e)
	case *ast.IncDecStmt:
		fa.expr(st.X, e)
	case *ast.LabeledStmt:
		return fa.stmt(st.Stmt, e)
	}
	return false
}

func (fa *fnAnalyzer) ifStmt(st *ast.IfStmt, e lockEnv) bool {
	if st.Init != nil {
		fa.stmt(st.Init, e)
	}
	fa.expr(st.Cond, e)
	thenEnv := e.clone()
	thenDone := fa.block(st.Body, thenEnv)
	elseEnv := e.clone()
	elseDone := false
	if st.Else != nil {
		elseDone = fa.stmt(st.Else, elseEnv)
	}
	switch {
	case thenDone && elseDone:
		return true
	case thenDone:
		replace(e, elseEnv)
	case elseDone:
		replace(e, thenEnv)
	default:
		replace(e, thenEnv)
		intersectInto(e, elseEnv)
	}
	return false
}

// switchStmt interprets each clause from a copy of the incoming state and
// intersects the survivors. A switch without a default adds the no-match
// fallthrough path; a select always takes exactly one case.
func (fa *fnAnalyzer) switchStmt(init ast.Stmt, tag ast.Expr, body *ast.BlockStmt, isSelect bool, e lockEnv) bool {
	if init != nil {
		fa.stmt(init, e)
	}
	if tag != nil {
		fa.expr(tag, e)
	}
	hasDefault := false
	var survivors []lockEnv
	for _, cl := range body.List {
		clauseEnv := e.clone()
		var stmts []ast.Stmt
		switch cl := cl.(type) {
		case *ast.CaseClause:
			if cl.List == nil {
				hasDefault = true
			}
			for _, x := range cl.List {
				fa.expr(x, clauseEnv)
			}
			stmts = cl.Body
		case *ast.CommClause:
			if cl.Comm == nil {
				hasDefault = true
			} else {
				fa.stmt(cl.Comm, clauseEnv)
			}
			stmts = cl.Body
		}
		done := false
		for _, s := range stmts {
			if fa.stmt(s, clauseEnv) {
				done = true
				break
			}
		}
		if !done {
			survivors = append(survivors, clauseEnv)
		}
	}
	if !isSelect && !hasDefault {
		survivors = append(survivors, e.clone())
	}
	if len(survivors) == 0 {
		return true
	}
	replace(e, survivors[0])
	for _, s := range survivors[1:] {
		intersectInto(e, s)
	}
	return false
}

// loop runs a body to a fixpoint. With intersection merging the held set
// only shrinks, so the fixpoint is reached in few iterations; reports are
// deduped by position so revisits stay quiet.
func (fa *fnAnalyzer) loop(body *ast.BlockStmt, e lockEnv, post func(lockEnv)) {
	for {
		iter := e.clone()
		if fa.block(body, iter) {
			return // body always exits the loop; e keeps the zero-iteration state
		}
		if post != nil {
			post(iter)
		}
		if !intersectInto(e, iter) {
			return
		}
	}
}

func (fa *fnAnalyzer) deferStmt(st *ast.DeferStmt, e lockEnv) {
	call := st.Call
	if op, target := fa.lockOp(call); op == opUnlock {
		key, name := fa.keyOf(target)
		if s, ok := e[key]; ok {
			s.deferred = true
			e[key] = s
		} else if !fa.nested || fa.everHeld[key] {
			fa.reportf(call.Pos(), "deferred unlock of %s: it is not held on every path reaching here", name)
		}
		return
	} else if op == opLock {
		fa.reportf(call.Pos(), "deferred Lock: locking at function exit is almost certainly a typo for Unlock")
		return
	}
	fa.expr(call.Fun, e)
	for _, a := range call.Args {
		fa.expr(a, e)
	}
}

func (fa *fnAnalyzer) expr(x ast.Expr, e lockEnv) {
	switch x := x.(type) {
	case nil:
	case *ast.CallExpr:
		fa.call(x, e)
	case *ast.SelectorExpr:
		fa.checkGuarded(x, e)
		fa.expr(x.X, e)
	case *ast.ParenExpr:
		fa.expr(x.X, e)
	case *ast.StarExpr:
		fa.expr(x.X, e)
	case *ast.UnaryExpr:
		fa.expr(x.X, e)
	case *ast.BinaryExpr:
		fa.expr(x.X, e)
		fa.expr(x.Y, e)
	case *ast.IndexExpr:
		fa.expr(x.X, e)
		fa.expr(x.Index, e)
	case *ast.IndexListExpr:
		fa.expr(x.X, e)
		for _, i := range x.Indices {
			fa.expr(i, e)
		}
	case *ast.SliceExpr:
		fa.expr(x.X, e)
		fa.expr(x.Low, e)
		fa.expr(x.High, e)
		fa.expr(x.Max, e)
	case *ast.TypeAssertExpr:
		fa.expr(x.X, e)
	case *ast.KeyValueExpr:
		fa.expr(x.Value, e)
	case *ast.CompositeLit:
		// Keyed fields of a literal initialize an object no other goroutine
		// can reach yet; the keys are not guarded accesses.
		for _, elt := range x.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				elt = kv.Value
			}
			fa.expr(elt, e)
		}
	case *ast.FuncLit:
		fa.funcLits = append(fa.funcLits, x)
	}
}

func (fa *fnAnalyzer) call(x *ast.CallExpr, e lockEnv) {
	if op, target := fa.lockOp(x); op != opNone {
		key, name := fa.keyOf(target)
		switch op {
		case opLock:
			if _, held := e[key]; held {
				fa.reportf(x.Pos(), "%s is already locked here: locking again self-deadlocks", name)
			} else {
				fa.checkOrder(x.Pos(), fa.qualOf(target), e)
			}
			e[key] = lockState{qual: fa.qualOf(target)}
			fa.everHeld[key] = true
		case opUnlock:
			if s, held := e[key]; held {
				if s.deferred {
					fa.reportf(x.Pos(), "unlock of %s with a deferred unlock pending: it double-unlocks at return", name)
				}
				delete(e, key)
			} else if !fa.nested || fa.everHeld[key] {
				fa.reportf(x.Pos(), "unlock of %s: it is not held on every path reaching here (double unlock?)", name)
			}
		}
		fa.expr(target, e)
		return
	}
	if fn := calleeFunc(fa.pass.TypesInfo, x); fn != nil {
		if g, ok := fa.f.locked[fn.Origin()]; ok {
			fa.checkLockedCall(x, fn, g, e)
		}
	}
	for _, a := range x.Args {
		fa.expr(a, e)
	}
	fa.expr(x.Fun, e)
}

// checkOrder flags acquiring a lock that the declared partial order says
// must come before one already held.
func (fa *fnAnalyzer) checkOrder(pos token.Pos, qual string, e lockEnv) {
	if qual == "" || len(fa.f.less[qual]) == 0 {
		return
	}
	var held []string
	for _, s := range e {
		if s.qual != "" && fa.f.less[qual][s.qual] {
			held = append(held, s.qual)
		}
	}
	if len(held) == 0 {
		return
	}
	sort.Strings(held)
	fa.reportf(pos, "lock order violation: acquiring %s while holding %s (declared //stash:lockorder: %s first)",
		qual, strings.Join(held, ", "), qual)
}

// checkGuarded verifies that a read or write of a //stash:guardedby field
// happens with its mutex held.
func (fa *fnAnalyzer) checkGuarded(sel *ast.SelectorExpr, e lockEnv) {
	v, ok := fa.pass.TypesInfo.Uses[sel.Sel].(*types.Var)
	if !ok || !v.IsField() {
		return
	}
	g, ok := fa.f.guarded[v]
	if !ok {
		return
	}
	if fa.guardHeld(g, sel.X, e) {
		return
	}
	fa.reportf(sel.Sel.Pos(), "%s is guarded by %s: access requires holding it", v.Name(), g.raw)
}

// guardHeld reports whether the guard of a field accessed through base is
// held in e.
func (fa *fnAnalyzer) guardHeld(g guardSpec, base ast.Expr, e lockEnv) bool {
	if g.typeName == "" {
		if b, ok := renderExpr(base); ok {
			if _, held := e[b+"."+g.field]; held {
				return true
			}
		}
		if tn := namedName(fa.typeOf(base)); tn != "" {
			want := tn + "." + g.field
			for _, s := range e {
				if s.qual == want {
					return true
				}
			}
		}
		return false
	}
	for _, s := range e {
		if s.qual == g.raw {
			return true
		}
	}
	return false
}

// checkLockedCall verifies a call to a //stash:locked function holds its
// required mutex.
func (fa *fnAnalyzer) checkLockedCall(call *ast.CallExpr, fn *types.Func, g guardSpec, e lockEnv) {
	var recv ast.Expr
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		recv = sel.X
	}
	satisfied := false
	if g.typeName == "" && recv != nil {
		if b, ok := renderExpr(recv); ok {
			if _, held := e[b+"."+g.field]; held {
				satisfied = true
			}
		}
		if !satisfied {
			if tn := namedName(fa.typeOf(recv)); tn != "" {
				want := tn + "." + g.field
				for _, s := range e {
					if s.qual == want {
						satisfied = true
						break
					}
				}
			}
		}
	} else if g.typeName != "" {
		for _, s := range e {
			if s.qual == g.raw {
				satisfied = true
				break
			}
		}
	}
	if !satisfied {
		fa.reportf(call.Pos(), "call to %s requires %s held (//stash:locked)", fn.Name(), g.raw)
	}
}

type lockOpKind int

const (
	opNone lockOpKind = iota
	opLock
	opUnlock
)

// lockOp classifies a call as a sync lock or unlock and returns the mutex
// expression. A value embedding sync.Mutex counts: memo.Lock() locks "memo".
func (fa *fnAnalyzer) lockOp(call *ast.CallExpr) (lockOpKind, ast.Expr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return opNone, nil
	}
	fn, ok := fa.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return opNone, nil
	}
	switch fn.Name() {
	case "Lock", "RLock":
		return opLock, sel.X
	case "Unlock", "RUnlock":
		return opUnlock, sel.X
	}
	return opNone, nil
}

// keyOf names a mutex expression: its structural rendering where possible,
// a position-unique placeholder otherwise (still catches double lock/unlock
// through the same spelling at the same site being impossible to confuse).
func (fa *fnAnalyzer) keyOf(x ast.Expr) (key, name string) {
	if s, ok := renderExpr(x); ok {
		return s, s
	}
	pos := fa.pass.Fset.Position(x.Pos())
	return pos.String(), "this mutex"
}

// qualOf names a mutex by its owner type: "Runner.mu" for r.mu where r is a
// *Runner. Empty when the owner type is unnamed (embedded-mutex globals).
func (fa *fnAnalyzer) qualOf(x ast.Expr) string {
	x = ast.Unparen(x)
	if sel, ok := x.(*ast.SelectorExpr); ok {
		if v, ok := fa.pass.TypesInfo.Uses[sel.Sel].(*types.Var); ok && v.IsField() {
			if tn := namedName(fa.typeOf(sel.X)); tn != "" {
				return tn + "." + v.Name()
			}
		}
	}
	return ""
}

func (fa *fnAnalyzer) typeOf(x ast.Expr) types.Type {
	if tv, ok := fa.pass.TypesInfo.Types[x]; ok {
		return tv.Type
	}
	return nil
}

// namedName returns the name of a (possibly pointed-to) named type.
func namedName(t types.Type) string {
	if t == nil {
		return ""
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// renderExpr renders a selector chain structurally: r.mu, j.mu, memo.
func renderExpr(x ast.Expr) (string, bool) {
	switch x := ast.Unparen(x).(type) {
	case *ast.Ident:
		return x.Name, true
	case *ast.SelectorExpr:
		if b, ok := renderExpr(x.X); ok {
			return b + "." + x.Sel.Name, true
		}
	case *ast.StarExpr:
		return renderExpr(x.X)
	}
	return "", false
}

// calleeFunc resolves a call's target function or method.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// isPanic reports whether the call is the panic builtin.
func isPanic(info *types.Info, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "panic"
}
