package analysis

import (
	"bufio"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Directive budgets. Three directive classes widen the analyzers' trust
// boundary — //stash:ignore escapes for the concurrency analyzers,
// //stash:parallel goroutine sanctions, and the //stash:fold +
// //stash:shared mediation vocabulary — and each has a committed baseline
// count in the budget file. Growth beyond a baseline is a reviewed change
// (raise the number in the same commit), not something that accretes
// silently. These used to be three shell-arithmetic gates in the
// Makefile; enforcement moved here so `make lint` is one stashvet
// invocation and the gate is testable.
//
// The budget file holds one `<class> <count>` pair per line; blank lines
// and lines starting with # are ignored:
//
//	# reviewed directive baselines
//	ignore 1
//	parallel 1
//	share 9

// budgetClass is one budgeted directive family. The line regexps match
// the old Makefile greps exactly: a directive counts only when nothing
// but non-comment, non-string text precedes it on the line (the `[^/"]*`
// prefix rejects directives quoted inside test fixtures or doc comments).
type budgetClass struct {
	name     string
	re       *regexp.Regexp
	tests    bool // whether *_test.go files are in scope
	describe string
}

var budgetClasses = []budgetClass{
	{
		name:     "ignore",
		re:       regexp.MustCompile(`^[^/"]*//stash:ignore (lockcheck|ctxcheck|chanleak|sharecheck|atomiccheck)`),
		tests:    true,
		describe: "//stash:ignore escapes for concurrency analyzers",
	},
	{
		name:     "parallel",
		re:       regexp.MustCompile(`^[^/"]*//stash:parallel `),
		tests:    false,
		describe: "//stash:parallel sanctions",
	},
	{
		name:     "share",
		re:       regexp.MustCompile(`^[^/"]*//stash:(fold|shared) `),
		tests:    false,
		describe: "//stash:fold + //stash:shared sanctions",
	},
}

// budgetDirs are the source trees in scope, relative to the module root.
// Test fixtures under any testdata directory never count.
var budgetDirs = []string{"internal", "cmd"}

// parseBudgetFile reads the committed baselines. Every known class must
// be present and no unknown class may appear, so a typo cannot silently
// skip a gate.
func parseBudgetFile(path string) (map[string]int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	known := map[string]bool{}
	for _, c := range budgetClasses {
		known[c.name] = true
	}
	budgets := map[string]int{}
	sc := bufio.NewScanner(f)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, num, ok := strings.Cut(line, " ")
		if !ok {
			return nil, fmt.Errorf("%s:%d: want \"<class> <count>\", got %q", path, lineno, line)
		}
		if !known[name] {
			return nil, fmt.Errorf("%s:%d: unknown budget class %q (want ignore, parallel or share)", path, lineno, name)
		}
		if _, dup := budgets[name]; dup {
			return nil, fmt.Errorf("%s:%d: duplicate budget class %q", path, lineno, name)
		}
		n, err := strconv.Atoi(strings.TrimSpace(num))
		if err != nil || n < 0 {
			return nil, fmt.Errorf("%s:%d: bad count %q for class %q", path, lineno, num, name)
		}
		budgets[name] = n
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, c := range budgetClasses {
		if _, ok := budgets[c.name]; !ok {
			return nil, fmt.Errorf("%s: missing budget for class %q", path, c.name)
		}
	}
	return budgets, nil
}

// countDirectives walks the in-scope trees under root and returns, per
// class, the matching lines as "path:line: text" in walk order.
func countDirectives(root string) (map[string][]string, error) {
	hits := map[string][]string{}
	for _, dir := range budgetDirs {
		top := filepath.Join(root, dir)
		err := filepath.WalkDir(top, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				if d.Name() == "testdata" {
					return filepath.SkipDir
				}
				return nil
			}
			if !strings.HasSuffix(path, ".go") {
				return nil
			}
			isTest := strings.HasSuffix(path, "_test.go")
			data, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			rel, err := filepath.Rel(root, path)
			if err != nil {
				rel = path
			}
			for i, line := range strings.Split(string(data), "\n") {
				for _, c := range budgetClasses {
					if isTest && !c.tests {
						continue
					}
					if c.re.MatchString(line) {
						hits[c.name] = append(hits[c.name],
							fmt.Sprintf("%s:%d: %s", filepath.ToSlash(rel), i+1, strings.TrimSpace(line)))
					}
				}
			}
			return nil
		})
		if err != nil {
			if os.IsNotExist(err) {
				continue // a module without that tree has nothing to count
			}
			return nil, err
		}
	}
	return hits, nil
}

// enforceBudgets counts the budgeted directives under root and compares
// them to the baselines in budgetPath. It reports whether any class is
// over budget, printing the offending lines; errors are file/parse
// problems, not budget breaches.
func enforceBudgets(out io.Writer, root, budgetPath string) (over bool, err error) {
	budgets, err := parseBudgetFile(budgetPath)
	if err != nil {
		return false, err
	}
	hits, err := countDirectives(root)
	if err != nil {
		return false, err
	}
	for _, c := range budgetClasses {
		lines := hits[c.name]
		if len(lines) <= budgets[c.name] {
			continue
		}
		over = true
		fmt.Fprintf(out, "budget %s: %d %s exceed the budget of %d; fix the findings or review a raise in %s\n",
			c.name, len(lines), c.describe, budgets[c.name], budgetPath)
		sort.Strings(lines)
		for _, l := range lines {
			fmt.Fprintf(out, "  %s\n", l)
		}
	}
	return over, nil
}
