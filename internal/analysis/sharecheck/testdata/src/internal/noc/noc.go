// Package noc is a fixture modeling the shared mesh spine: one structure
// aliased by every tile, mutable only on the serial path or at the merge.
package noc

// Mesh is the one spine aliased by every tile view.
//
//stash:shared one spine aliased by every tile view
type Mesh struct {
	linkFree []uint64
	count    int
}

// Send routes inline, reserving the link. Serial engine only; its effect
// summary (writes to shared state) travels to importers as a fact.
func (m *Mesh) Send(link int, at uint64) uint64 {
	if m.linkFree[link] > at {
		at = m.linkFree[link]
	}
	m.linkFree[link] = at + 1
	m.count++
	return at
}

// ReserveRoute replays a send at the epoch merge.
//
//stash:fold runs at the epoch merge with every worker parked
func (m *Mesh) ReserveRoute(link int, at uint64) uint64 {
	if m.linkFree[link] > at {
		at = m.linkFree[link]
	}
	m.linkFree[link] = at + 1
	return at
}
