// Package coherence is a fixture controller layer: handlers become
// worker-reachable by escaping — bound into an interface, bound into a
// func-typed field at construction, or address-taken across packages.
package coherence

import "fixture/src/internal/noc"

// Endpoint receives deliveries; anything bound into it may be scheduled.
type Endpoint interface {
	Deliver(x int)
}

// Bank is per-tile.
//
//stash:tileowned
type Bank struct {
	id     int
	served int
}

// Deliver implements Endpoint. Wire binds a *Bank into the interface, so
// this body is tile-worker-reachable.
func (b *Bank) Deliver(x int) {
	b.served++    // tileowned: freely writable
	stats.total++ // want `write to unclassified coherence\.total`
}

// stats is package state nobody classified.
var stats struct{ total int }

// Wire attaches bank b as an endpoint; the method-set binding makes
// Deliver reachable.
func Wire(m map[int]Endpoint, b *Bank) {
	m[0] = b
}

// pump binds its own method into a func field at construction — the
// hoisted-closure handler idiom.
//
//stash:tileowned
type pump struct {
	fn func()
	n  int
}

// newPump wires the callback.
func newPump() *pump {
	p := &pump{}
	p.fn = p.tick
	return p
}

func (p *pump) tick() {
	p.n++      // tileowned: freely writable
	shared = 1 // want `write to //stash:shared coherence\.shared`
}

// shared is aliased across tiles.
//
//stash:shared fixture: every tile sees one flag
var shared int

// handles leaks an imported method value whose summary says it writes
// non-tile-owned state; the escape is reported here, at the leak site.
func handles(m *noc.Mesh) func(int, uint64) uint64 {
	return m.Send // want `noc\.\(Mesh\)\.Send address-taken writes non-tile-owned state`
}
