// Package psim is a fixture parallel engine: Run spawns workers, so
// everything reachable from the worker loop is tile-worker context.
package psim

import "fixture/src/internal/noc"

// Engine drives the workers.
type Engine struct {
	mesh *noc.Mesh
	//stash:shared epoch grid is fixed before workers start
	lookahead uint64
	epochs    int
}

// worker owns a block of tiles.
//
//stash:tileowned
type worker struct {
	eng   *Engine
	steps uint64
	now   uint64
}

// tally is per-run bookkeeping nobody classified.
type tally struct {
	flits int
}

var global tally

// Run spawns one goroutine per worker and folds at the barrier.
func (e *Engine) Run(nw int) {
	for i := 0; i < nw; i++ {
		w := &worker{eng: e}
		go w.loop()
	}
	e.fold()
}

func (w *worker) loop() {
	w.steps++                                 // tileowned: freely writable
	w.now = w.eng.mesh.Send(0, w.now)         // want `call to noc\.\(Mesh\)\.Send from tile-worker-reachable code`
	w.now = w.eng.mesh.ReserveRoute(0, w.now) // fold mediator: exempt
	w.eng.lookahead = 8                       // want `write to //stash:shared psim\.lookahead`
	global.flits++                            // want `write to unclassified psim\.flits`
	w.eng.lookahead = 9                       //stash:ignore sharecheck fixture demonstrates the budgeted escape hatch
}

// fold runs with every worker parked, so its writes are mediated.
//
//stash:fold drains mailboxes at the barrier with every worker parked
func (e *Engine) fold() {
	e.epochs++
}
