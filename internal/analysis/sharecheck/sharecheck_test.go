package sharecheck_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/sharecheck"
)

func TestSharecheck(t *testing.T) {
	analysistest.Run(t, sharecheck.Analyzer,
		"./src/internal/noc", "./src/internal/psim", "./src/internal/coherence")
}
