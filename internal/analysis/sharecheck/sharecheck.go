// Package sharecheck implements the stashvet analyzer that statically
// proves tile isolation in the parallel engine: during a psim epoch, a
// worker may touch only the state its tiles own, and everything that
// crosses tiles must go through the mailbox merge or a sanctioned fold.
// PR 6 made the parallel engine's determinism rest on that discipline;
// sharecheck turns it from a convention policed by golden fixtures into a
// build-time error.
//
// # Vocabulary
//
// Three directives classify state and mediation (see DESIGN.md):
//
//	//stash:tileowned           on a struct type or field: per-tile state,
//	                            owned by one worker during an epoch and
//	                            freely writable from worker context.
//	//stash:shared <reason>     on a type, field, or package var: aliased
//	                            across tiles; read-only while workers run.
//	//stash:fold <reason>       on a function: runs only with the tiles
//	                            quiescent (construction, the serial engine,
//	                            or the epoch barrier on the driver), so its
//	                            writes are mediated and exempt.
//
// # Analysis
//
// The analyzer is interprocedural via the facts layer, bottom-up along the
// package dependency order:
//
//  1. Each pass classifies its package's fields and vars from the
//     directives and exports a classFact per object.
//  2. Each pass summarizes every function's transitive writes to shared or
//     unclassified state — its own writes plus the summaries of its
//     callees, with imported callees contributing through effectFacts —
//     and exports an effectFact for each function with nonempty effects.
//  3. Each pass computes the package's tile-worker-reachable functions:
//     the callees of go statements (the psim worker entry), every named
//     function whose value escapes (address-taken — the event-callback
//     idiom binds handler methods into func-typed fields at construction),
//     and every local method bound into an interface (the endpoint /
//     access-source idiom), closed over static calls. //stash:fold
//     functions stop the closure.
//  4. A write to shared state, or to unclassified state of an in-scope
//     package, inside a worker-reachable function is reported at the write
//     site; a worker-context call or escape of an imported function whose
//     effectFact is nonempty is reported at the call or escape site.
//
// # Approximations
//
// The analysis tracks the syntactic root of each write (the field or
// package var at the base of the selector chain), so a write through a
// local pointer alias of shared state, and writes through bare pointer
// parameters, are not attributed. Dynamic calls through func values are
// not traced — instead every address-taken function is treated as worker-
// reachable, which over-approximates the schedulable set. Both choices
// trade completeness for zero false negatives on the repo's hoisted-
// closure handler idiom, where every scheduled callback is a named method
// bound at construction time.
package sharecheck

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analysis"
)

// scopePackages are the import-path suffixes the analyzer applies to: the
// simulation core that runs (or may run) under the parallel engine.
var scopePackages = []string{
	"internal/sim",
	"internal/psim",
	"internal/coherence",
	"internal/core",
	"internal/noc",
	"internal/trace",
	"internal/cache",
	"internal/mem",
	"internal/system",
}

// Analyzer is the tile-isolation check.
var Analyzer = &analysis.Analyzer{
	Name: "sharecheck",
	Doc: "prove tile isolation in the parallel engine: writes reachable from the psim " +
		"worker loop may only touch //stash:tileowned state; //stash:shared state is " +
		"read-only during a run unless mediated by a //stash:fold function",
	AppliesTo: AppliesTo,
	FactTypes: []analysis.Fact{new(classFact), new(foldFact), new(effectFact)},
	Run:       run,
}

// AppliesTo scopes the analyzer to the simulation core by import-path
// suffix, like the determinism analyzer.
func AppliesTo(pkgPath string) bool {
	for _, s := range scopePackages {
		if pkgPath == s || strings.HasSuffix(pkgPath, "/"+s) {
			return true
		}
	}
	return false
}

// ownClass is the sharing classification of a field or package variable.
type ownClass uint8

const (
	classUnknown ownClass = iota
	classTileOwned
	classShared
)

func (c ownClass) String() string {
	switch c {
	case classTileOwned:
		return "tileowned"
	case classShared:
		return "shared"
	}
	return "unclassified"
}

// classFact is exported for every explicitly classified field or package
// variable, so importing packages resolve the class of state they touch.
type classFact struct {
	Class ownClass
}

func (*classFact) AFact() {}

// foldFact marks a function as a //stash:fold mediation point.
type foldFact struct{}

func (*foldFact) AFact() {}

// effect is one transitive write to non-tile-owned state.
type effect struct {
	Obj   string   // "noc.occupied (noc.go:105)"
	Class ownClass // classShared or classUnknown
}

// effectFact summarizes a function's transitive writes to shared or
// unclassified state, for consumption at call sites in importing packages.
type effectFact struct {
	Writes []effect
}

func (*effectFact) AFact() {}

// maxEffects caps a summary; a function past the cap is thoroughly broken
// anyway and the first few sites identify it.
const maxEffects = 6

// fnInfo is everything collected about one function declaration.
type fnInfo struct {
	obj     *types.Func
	decl    *ast.FuncDecl
	fold    bool
	writes  []writeSite
	calls   []callSite
	effects []effect
}

type writeSite struct {
	obj types.Object
	pos token.Pos
}

type callSite struct {
	fn  *types.Func
	pos token.Pos
}

// escapeSite is a named function value escaping a call position: an
// address-taken function, a go-statement callee, or a method bound into an
// interface.
type escapeSite struct {
	fn  *types.Func
	pos token.Pos
	how string // "address-taken", "spawned", "bound into interface"
}

type checker struct {
	pass    *analysis.Pass
	classes map[*types.Var]ownClass // local classifications, origin objects
	folds   map[*types.Func]bool    // local fold functions
	fns     []*fnInfo
	byObj   map[*types.Func]*fnInfo
	escapes []escapeSite
}

func run(pass *analysis.Pass) error {
	c := &checker{
		pass:    pass,
		classes: map[*types.Var]ownClass{},
		folds:   map[*types.Func]bool{},
		byObj:   map[*types.Func]*fnInfo{},
	}
	c.collectClasses()
	c.collectFunctions()
	c.summarize()
	c.report()
	return nil
}

// ---- classification ----

// collectClasses reads the //stash:tileowned and //stash:shared directives
// of the package under analysis and exports a classFact per object.
func (c *checker) collectClasses() {
	for _, file := range c.pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			switch gd.Tok {
			case token.TYPE:
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					typeClass := classUnknown
					for _, cg := range []*ast.CommentGroup{gd.Doc, ts.Doc, ts.Comment} {
						if cls, ok := c.directiveClass(cg); ok {
							typeClass = cls
						}
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						if typeClass != classUnknown {
							c.pass.Reportf(ts.Pos(), "//stash:%s on a non-struct type: classify the fields of the struct that embeds it", typeClass)
						}
						continue
					}
					for _, fld := range st.Fields.List {
						fieldClass := typeClass
						for _, cg := range []*ast.CommentGroup{fld.Doc, fld.Comment} {
							if cls, ok := c.directiveClass(cg); ok {
								fieldClass = cls
							}
						}
						if fieldClass == classUnknown {
							continue
						}
						for _, name := range fld.Names {
							if v, ok := c.pass.TypesInfo.Defs[name].(*types.Var); ok {
								c.classify(v, fieldClass)
							}
						}
						// An embedded field: classify the field object itself.
						if len(fld.Names) == 0 {
							if v, ok := c.pass.TypesInfo.Implicits[fld].(*types.Var); ok {
								c.classify(v, fieldClass)
							}
						}
					}
				}
			case token.VAR:
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					cls := classUnknown
					for _, cg := range []*ast.CommentGroup{gd.Doc, vs.Doc, vs.Comment} {
						if c2, ok := c.directiveClass(cg); ok {
							cls = c2
						}
					}
					if cls == classUnknown {
						continue
					}
					for _, name := range vs.Names {
						if v, ok := c.pass.TypesInfo.Defs[name].(*types.Var); ok {
							c.classify(v, cls)
						}
					}
				}
			}
		}
	}
}

// directiveClass parses a tileowned/shared directive out of a comment
// group, reporting a malformed shared (missing reason) in place.
func (c *checker) directiveClass(cg *ast.CommentGroup) (ownClass, bool) {
	if cg == nil {
		return classUnknown, false
	}
	for _, cm := range cg.List {
		d, ok := analysis.ParseDirective(cm.Text)
		if !ok {
			continue
		}
		switch d.Verb {
		case analysis.DirectiveTileOwned:
			return classTileOwned, true
		case analysis.DirectiveShared:
			if d.Args == "" {
				c.pass.Reportf(cm.Pos(), "//stash:shared needs a reason: //stash:shared <why aliasing this across tiles is safe>")
			}
			return classShared, true
		}
	}
	return classUnknown, false
}

func (c *checker) classify(v *types.Var, cls ownClass) {
	v = v.Origin()
	c.classes[v] = cls
	c.pass.ExportObjectFact(v, &classFact{Class: cls})
}

// classOf resolves the class of a written object: the local tables for
// objects of this package, imported classFacts for the rest.
func (c *checker) classOf(obj types.Object) ownClass {
	v, ok := obj.(*types.Var)
	if !ok {
		return classUnknown
	}
	v = v.Origin()
	if v.Pkg() == c.pass.Pkg {
		return c.classes[v]
	}
	var f classFact
	if c.pass.ImportObjectFact(v, &f) {
		return f.Class
	}
	return classUnknown
}

// inScope reports whether an object belongs to a package sharecheck
// applies to — the only packages whose unclassified state is demanded to
// be classified.
func (c *checker) inScope(obj types.Object) bool {
	return obj.Pkg() != nil && (obj.Pkg() == c.pass.Pkg || AppliesTo(obj.Pkg().Path()))
}

// ---- function collection ----

// collectFunctions walks every declaration, recording per-function writes
// and static calls, the package's fold set, and every named-function
// escape (address-taken values, go callees, interface bindings).
func (c *checker) collectFunctions() {
	for _, file := range c.pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := c.pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			obj = obj.Origin()
			info := &fnInfo{obj: obj, decl: fd}
			info.fold = c.foldDirective(fd)
			if info.fold {
				c.pass.ExportObjectFact(obj, &foldFact{})
			}
			c.walkBody(info)
			c.fns = append(c.fns, info)
			c.byObj[obj] = info
		}
	}
}

// foldDirective reads //stash:fold off a function's doc comment, checking
// the mandatory reason.
func (c *checker) foldDirective(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, cm := range fd.Doc.List {
		d, ok := analysis.ParseDirective(cm.Text)
		if !ok || d.Verb != analysis.DirectiveFold {
			continue
		}
		if d.Args == "" {
			c.pass.Reportf(cm.Pos(), "//stash:fold needs a reason: //stash:fold <why this runs with every worker parked>")
		}
		return true
	}
	return false
}

// walkBody records writes, calls and escapes in one function body
// (function literals inside it are attributed to the enclosing function).
func (c *checker) walkBody(info *fnInfo) {
	ti := c.pass.TypesInfo
	calleeIdents := map[*ast.Ident]bool{}
	ast.Inspect(info.decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				c.recordWrite(info, lhs)
			}
			c.bindAssign(n)
		case *ast.IncDecStmt:
			c.recordWrite(info, n.X)
		case *ast.RangeStmt:
			if n.Tok == token.ASSIGN {
				c.recordWrite(info, n.Key)
				c.recordWrite(info, n.Value)
			}
		case *ast.GoStmt:
			if fn := staticCallee(ti, n.Call); fn != nil {
				c.escapes = append(c.escapes, escapeSite{fn: fn, pos: n.Pos(), how: "spawned"})
			}
		case *ast.CallExpr:
			if fn := staticCallee(ti, n); fn != nil {
				info.calls = append(info.calls, callSite{fn: fn, pos: n.Pos()})
				if id := calleeIdent(n); id != nil {
					calleeIdents[id] = true
				}
				c.bindCallArgs(n, fn)
			}
		case *ast.ValueSpec:
			if n.Type != nil {
				if iface := ifaceOf(ti.TypeOf(n.Type)); iface != nil {
					for _, val := range n.Values {
						c.bindIface(ti.TypeOf(val), iface, val.Pos())
					}
				}
			}
		case *ast.ReturnStmt:
			// Return statements inside function literals share the enclosing
			// declaration's signature here; the result-count guard skips the
			// mismatched ones (a documented approximation).
			sig, _ := info.obj.Type().(*types.Signature)
			if sig != nil && sig.Results() != nil && len(n.Results) == sig.Results().Len() {
				for i, r := range n.Results {
					if iface := ifaceOf(sig.Results().At(i).Type()); iface != nil {
						c.bindIface(ti.TypeOf(r), iface, r.Pos())
					}
				}
			}
		case *ast.CompositeLit:
			c.bindComposite(n)
		}
		return true
	})
	// Address-taken pass: any remaining use of a named function that is not
	// a call position is an escape.
	ast.Inspect(info.decl.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || calleeIdents[id] {
			return true
		}
		fn, ok := ti.Uses[id].(*types.Func)
		if !ok {
			return true
		}
		c.escapes = append(c.escapes, escapeSite{fn: fn.Origin(), pos: id.Pos(), how: "address-taken"})
		return true
	})
}

// recordWrite resolves the syntactic root of an assigned expression and
// records it when it is a field or package variable.
func (c *checker) recordWrite(info *fnInfo, lhs ast.Expr) {
	obj := c.rootObject(lhs)
	if obj == nil {
		return
	}
	info.writes = append(info.writes, writeSite{obj: obj, pos: lhs.Pos()})
}

// rootObject walks to the base of a selector/index/deref chain, returning
// the written field or package variable, or nil for locals and
// unresolvable targets.
func (c *checker) rootObject(x ast.Expr) types.Object {
	ti := c.pass.TypesInfo
	switch x := x.(type) {
	case *ast.Ident:
		obj := ti.Uses[x]
		if obj == nil {
			obj = ti.Defs[x]
		}
		v, ok := obj.(*types.Var)
		if !ok {
			return nil
		}
		if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v.Origin()
		}
		return nil
	case *ast.SelectorExpr:
		if sel, ok := ti.Selections[x]; ok && sel.Kind() == types.FieldVal {
			if v, ok := sel.Obj().(*types.Var); ok {
				return v.Origin()
			}
			return nil
		}
		// Qualified package variable: pkg.Var.
		if v, ok := ti.Uses[x.Sel].(*types.Var); ok && !v.IsField() {
			if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				return v.Origin()
			}
		}
		return nil
	case *ast.IndexExpr:
		return c.rootObject(x.X)
	case *ast.IndexListExpr:
		return c.rootObject(x.X)
	case *ast.StarExpr:
		return c.rootObject(x.X)
	case *ast.ParenExpr:
		return c.rootObject(x.X)
	}
	return nil
}

// ---- interface bindings ----

// bindCallArgs records concrete-to-interface conversions at a call's
// arguments.
func (c *checker) bindCallArgs(call *ast.CallExpr, fn *types.Func) {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Params() == nil {
		return
	}
	np := sig.Params().Len()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			if s, ok := sig.Params().At(np - 1).Type().(*types.Slice); ok {
				pt = s.Elem()
			}
		case i < np:
			pt = sig.Params().At(i).Type()
		}
		if iface := ifaceOf(pt); iface != nil {
			c.bindIface(c.pass.TypesInfo.TypeOf(arg), iface, arg.Pos())
		}
	}
}

// bindAssign records concrete-to-interface conversions at assignments.
func (c *checker) bindAssign(n *ast.AssignStmt) {
	if len(n.Lhs) != len(n.Rhs) {
		return
	}
	ti := c.pass.TypesInfo
	for i, lhs := range n.Lhs {
		var lt types.Type
		if id, ok := lhs.(*ast.Ident); ok && n.Tok == token.DEFINE {
			if obj := ti.Defs[id]; obj != nil {
				lt = obj.Type()
			}
		} else {
			lt = ti.TypeOf(lhs)
		}
		if iface := ifaceOf(lt); iface != nil {
			c.bindIface(ti.TypeOf(n.Rhs[i]), iface, n.Rhs[i].Pos())
		}
	}
}

// bindComposite records concrete-to-interface conversions inside composite
// literals (struct fields and interface-element containers).
func (c *checker) bindComposite(cl *ast.CompositeLit) {
	ti := c.pass.TypesInfo
	t := ti.TypeOf(cl)
	if t == nil {
		return
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i, elt := range cl.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				if key, ok := kv.Key.(*ast.Ident); ok {
					if v, ok := ti.Uses[key].(*types.Var); ok {
						if iface := ifaceOf(v.Type()); iface != nil {
							c.bindIface(ti.TypeOf(kv.Value), iface, kv.Value.Pos())
						}
					}
				}
				continue
			}
			if i < u.NumFields() {
				if iface := ifaceOf(u.Field(i).Type()); iface != nil {
					c.bindIface(ti.TypeOf(elt), iface, elt.Pos())
				}
			}
		}
	case *types.Slice, *types.Array, *types.Map:
		var elem types.Type
		switch u := u.(type) {
		case *types.Slice:
			elem = u.Elem()
		case *types.Array:
			elem = u.Elem()
		case *types.Map:
			elem = u.Elem()
		}
		iface := ifaceOf(elem)
		if iface == nil {
			return
		}
		for _, elt := range cl.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				elt = kv.Value
			}
			c.bindIface(ti.TypeOf(elt), iface, elt.Pos())
		}
	}
}

// bindIface resolves the concrete methods a conversion binds into an
// interface and records them as escapes — a value bound into an interface
// may be scheduled by anything holding it.
func (c *checker) bindIface(concrete types.Type, iface *types.Interface, pos token.Pos) {
	if concrete == nil || iface.NumMethods() == 0 {
		return
	}
	if _, ok := concrete.Underlying().(*types.Interface); ok {
		return // interface-to-interface carries no new methods
	}
	for i := 0; i < iface.NumMethods(); i++ {
		m := iface.Method(i)
		obj, _, _ := types.LookupFieldOrMethod(concrete, true, m.Pkg(), m.Name())
		if fn, ok := obj.(*types.Func); ok {
			c.escapes = append(c.escapes, escapeSite{fn: fn.Origin(), pos: pos, how: "bound into interface"})
		}
	}
}

// ifaceOf returns the method-bearing interface under t, or nil.
func ifaceOf(t types.Type) *types.Interface {
	if t == nil {
		return nil
	}
	iface, ok := t.Underlying().(*types.Interface)
	if !ok || iface.NumMethods() == 0 {
		return nil
	}
	return iface
}

// staticCallee resolves a call's target function or method, normalized to
// its generic origin.
func staticCallee(ti *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := ti.Uses[fun].(*types.Func); ok {
			return fn.Origin()
		}
	case *ast.SelectorExpr:
		if fn, ok := ti.Uses[fun.Sel].(*types.Func); ok {
			return fn.Origin()
		}
	}
	return nil
}

// calleeIdent returns the terminal identifier of a call's Fun, for
// excluding call positions from the address-taken scan.
func calleeIdent(call *ast.CallExpr) *ast.Ident {
	if call == nil {
		return nil
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun
	case *ast.SelectorExpr:
		return fun.Sel
	}
	return nil
}

// ---- summaries ----

// summarize computes each local function's transitive effects to a
// fixpoint over the local call graph, importing effectFacts at calls into
// other packages, and exports the nonempty summaries.
func (c *checker) summarize() {
	// Direct effects.
	for _, info := range c.fns {
		for _, w := range info.writes {
			cls := c.classOf(w.obj)
			switch {
			case cls == classTileOwned:
			case cls == classShared:
				info.effects = addEffect(info.effects, effect{Obj: c.objDesc(w.obj), Class: classShared})
			case c.inScope(w.obj):
				info.effects = addEffect(info.effects, effect{Obj: c.objDesc(w.obj), Class: classUnknown})
			}
		}
	}
	// Propagate through local calls to a fixpoint; imported callees
	// contribute their facts once (facts are complete for dependencies).
	for changed := true; changed; {
		changed = false
		for _, info := range c.fns {
			if info.fold {
				continue
			}
			for _, call := range info.calls {
				for _, e := range c.calleeEffects(call.fn) {
					before := len(info.effects)
					info.effects = addEffect(info.effects, e)
					if len(info.effects) != before {
						changed = true
					}
				}
			}
		}
	}
	for _, info := range c.fns {
		if !info.fold && len(info.effects) > 0 {
			sort.Slice(info.effects, func(i, j int) bool { return info.effects[i].Obj < info.effects[j].Obj })
			c.pass.ExportObjectFact(info.obj, &effectFact{Writes: info.effects})
		}
	}
}

// calleeEffects returns a callee's current effect summary: the local
// in-progress one for functions of this package, the imported fact
// otherwise. Fold functions contribute nothing.
func (c *checker) calleeEffects(fn *types.Func) []effect {
	if local, ok := c.byObj[fn]; ok {
		if local.fold {
			return nil
		}
		return local.effects
	}
	if c.isFold(fn) {
		return nil
	}
	var ef effectFact
	if c.pass.ImportObjectFact(fn, &ef) {
		return ef.Writes
	}
	return nil
}

// isFold reports whether a function is a fold mediator, local or imported.
func (c *checker) isFold(fn *types.Func) bool {
	if local, ok := c.byObj[fn]; ok {
		return local.fold
	}
	var f foldFact
	return c.pass.ImportObjectFact(fn, &f)
}

// addEffect dedupes by object and caps the list.
func addEffect(list []effect, e effect) []effect {
	for _, have := range list {
		if have.Obj == e.Obj {
			return list
		}
	}
	if len(list) >= maxEffects {
		return list
	}
	return append(list, e)
}

// objDesc names an object for diagnostics: "pkg.name (file.go:line)".
func (c *checker) objDesc(obj types.Object) string {
	pos := c.pass.Fset.Position(obj.Pos())
	pkg := ""
	if obj.Pkg() != nil {
		pkg = obj.Pkg().Name() + "."
	}
	return fmt.Sprintf("%s%s (%s:%d)", pkg, obj.Name(), filepath.Base(pos.Filename), pos.Line)
}

// ---- worker reachability and reporting ----

// report computes the package's worker-reachable set and reports every
// unmediated write to non-tile-owned state inside it, plus every escape of
// an imported function with a nonempty effect summary.
func (c *checker) report() {
	reachable := map[*fnInfo]bool{}
	var frontier []*fnInfo
	add := func(info *fnInfo) {
		if info == nil || info.fold || reachable[info] {
			return
		}
		reachable[info] = true
		frontier = append(frontier, info)
	}
	// Roots: escapes that resolve to local functions. Imported escapes with
	// effects are reported at the escape site — the value leaves this
	// package for a scheduler we cannot see.
	for _, esc := range c.escapes {
		if local, ok := c.byObj[esc.fn]; ok {
			add(local)
			continue
		}
		if c.isFold(esc.fn) {
			continue
		}
		var ef effectFact
		if c.pass.ImportObjectFact(esc.fn, &ef) && len(ef.Writes) > 0 {
			c.reportEffects(esc.pos, fmt.Sprintf("%s %s", c.fnDesc(esc.fn), esc.how), ef.Writes)
		}
	}
	// Closure over local static calls.
	for len(frontier) > 0 {
		info := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		for _, call := range info.calls {
			if local, ok := c.byObj[call.fn]; ok {
				add(local)
			}
		}
	}
	// Deterministic iteration: declaration order (c.fns is decl order).
	for _, info := range c.fns {
		if !reachable[info] {
			continue
		}
		for _, w := range info.writes {
			cls := c.classOf(w.obj)
			switch {
			case cls == classTileOwned:
			case cls == classShared:
				c.pass.Reportf(w.pos, "write to //stash:shared %s from tile-worker-reachable code: shared state is read-only during a parallel run; route it through the mailbox merge or a //stash:fold mediator", c.objDesc(w.obj))
			case c.inScope(w.obj):
				c.pass.Reportf(w.pos, "write to unclassified %s from tile-worker-reachable code: mark it //stash:tileowned or //stash:shared <reason>, or mediate via //stash:fold", c.objDesc(w.obj))
			}
		}
		for _, call := range info.calls {
			if _, ok := c.byObj[call.fn]; ok {
				continue // local callee: its own writes report at their sites
			}
			if c.isFold(call.fn) {
				continue
			}
			var ef effectFact
			if c.pass.ImportObjectFact(call.fn, &ef) && len(ef.Writes) > 0 {
				c.reportEffects(call.pos, fmt.Sprintf("call to %s from tile-worker-reachable code", c.fnDesc(call.fn)), ef.Writes)
			}
		}
	}
}

// reportEffects reports one escape or cross-package call whose target
// writes non-tile-owned state.
func (c *checker) reportEffects(pos token.Pos, what string, writes []effect) {
	parts := make([]string, 0, len(writes))
	for _, e := range writes {
		parts = append(parts, fmt.Sprintf("%s %s", e.Class, e.Obj))
	}
	c.pass.Reportf(pos, "%s writes non-tile-owned state (%s): classify the state, mediate with //stash:fold, or keep it off the worker path",
		what, strings.Join(parts, ", "))
}

// fnDesc names a function for diagnostics, receiver-qualified.
func (c *checker) fnDesc(fn *types.Func) string {
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok {
			return fmt.Sprintf("%s.(%s).%s", fn.Pkg().Name(), n.Obj().Name(), fn.Name())
		}
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}
