package analysis

import (
	"go/ast"
	"strings"
)

// The //stash: directive namespace. Directives are ordinary line comments of
// the form
//
//	//stash:<verb> [args...]
//
// attached either to a declaration's doc comment (hotpath, acquire, release,
// transfer) or to an arbitrary line (ignore). They are the contract between
// the simulator's hand-managed pools / hot paths and the stashvet analyzers:
// annotating a function opts it into checking (hotpath) or teaches poolcheck
// its ownership role (acquire/release/transfer). DESIGN.md's "Static
// analysis" section documents each verb.
const (
	// DirectiveHotpath marks a function whose body must be free of
	// heap-escaping constructs; enforced by the hotpath analyzer.
	DirectiveHotpath = "hotpath"
	// DirectiveAcquire marks a function whose pointer result is a pooled
	// value the caller now owns (msgPool.get, Fabric.newMsg, Bank.newTBE...).
	DirectiveAcquire = "acquire"
	// DirectiveRelease marks a function that returns its pointer argument to
	// its pool (msgPool.put, Fabric.releaseMsg, Bank.finish...).
	DirectiveRelease = "release"
	// DirectiveTransfer marks a function that takes over ownership of its
	// pointer argument (NoC sends, event-queue parks, bank-queue chains).
	DirectiveTransfer = "transfer"
	// DirectiveIgnore suppresses a diagnostic: "//stash:ignore <analyzer>
	// <reason>" on the flagged line or the line above it. The reason is
	// mandatory; a bare ignore is itself reported.
	DirectiveIgnore = "ignore"
)

const directivePrefix = "//stash:"

// Directive is one parsed //stash: comment.
type Directive struct {
	Verb string // "hotpath", "acquire", ...
	Args string // everything after the verb, trimmed
}

// parseDirective parses a single comment, returning ok=false for ordinary
// comments.
func parseDirective(text string) (Directive, bool) {
	if !strings.HasPrefix(text, directivePrefix) {
		return Directive{}, false
	}
	rest := strings.TrimPrefix(text, directivePrefix)
	verb, args, _ := strings.Cut(rest, " ")
	verb = strings.TrimSpace(verb)
	if verb == "" {
		return Directive{}, false
	}
	return Directive{Verb: verb, Args: strings.TrimSpace(args)}, true
}

// FuncDirectives returns the //stash: directives in a declaration's doc
// comment.
func FuncDirectives(doc *ast.CommentGroup) []Directive {
	if doc == nil {
		return nil
	}
	var out []Directive
	for _, c := range doc.List {
		if d, ok := parseDirective(c.Text); ok {
			out = append(out, d)
		}
	}
	return out
}

// HasDirective reports whether the doc comment carries the given verb.
func HasDirective(doc *ast.CommentGroup, verb string) bool {
	for _, d := range FuncDirectives(doc) {
		if d.Verb == verb {
			return true
		}
	}
	return false
}
