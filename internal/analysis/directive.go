package analysis

import (
	"go/ast"
	"strings"
)

// The //stash: directive namespace. Directives are ordinary line comments of
// the form
//
//	//stash:<verb> [args...]
//
// attached either to a declaration's doc comment (hotpath, acquire, release,
// transfer) or to an arbitrary line (ignore). They are the contract between
// the simulator's hand-managed pools / hot paths and the stashvet analyzers:
// annotating a function opts it into checking (hotpath) or teaches poolcheck
// its ownership role (acquire/release/transfer). DESIGN.md's "Static
// analysis" section documents each verb.
const (
	// DirectiveHotpath marks a function whose body must be free of
	// heap-escaping constructs; enforced by the hotpath analyzer.
	DirectiveHotpath = "hotpath"
	// DirectiveAcquire marks a function whose pointer result is a pooled
	// value the caller now owns (msgPool.get, Fabric.newMsg, Bank.newTBE...).
	DirectiveAcquire = "acquire"
	// DirectiveRelease marks a function that returns its pointer argument to
	// its pool (msgPool.put, Fabric.releaseMsg, Bank.finish...).
	DirectiveRelease = "release"
	// DirectiveTransfer marks a function that takes over ownership of its
	// pointer argument (NoC sends, event-queue parks, bank-queue chains).
	DirectiveTransfer = "transfer"
	// DirectiveIgnore suppresses a diagnostic: "//stash:ignore <analyzer>
	// <reason>" on the flagged line or the line above it. The reason is
	// mandatory; a bare ignore is itself reported.
	DirectiveIgnore = "ignore"
	// DirectiveGuardedBy marks a struct field as protected by a mutex:
	// "//stash:guardedby mu" (a sibling field of the same struct) or
	// "//stash:guardedby Runner.mu" (a field of another type that owns this
	// value). Enforced by the lockcheck analyzer.
	DirectiveGuardedBy = "guardedby"
	// DirectiveLocked marks a function or method that must only be called
	// with the named mutex held: "//stash:locked mu" (the receiver's own
	// mutex) or "//stash:locked Runner.mu". lockcheck assumes the lock held
	// inside the body and verifies it at every call site.
	DirectiveLocked = "locked"
	// DirectiveLockOrder declares one edge of the package's mutex partial
	// order: "//stash:lockorder Runner.mu < Job.mu" means Job.mu may be
	// acquired while Runner.mu is held, never the reverse. lockcheck takes
	// the transitive closure and flags back-edges.
	DirectiveLockOrder = "lockorder"
	// DirectiveBlocking exempts a blocking operation from ctxcheck's
	// cancellability requirement: "//stash:blocking <reason>" on a function's
	// doc comment covers its whole body; on a statement's line it covers
	// that operation.
	DirectiveBlocking = "blocking"
	// DirectiveTileOwned classifies a struct field — or, on a type
	// declaration, every field of the struct — as per-tile (per-LP, per-
	// worker) state in the parallel engine: owned by exactly one tile's
	// worker during an epoch and therefore freely writable from
	// tile-worker-reachable code. Enforced by the sharecheck analyzer.
	DirectiveTileOwned = "tileowned"
	// DirectiveShared classifies a struct field, type, or package variable
	// as shared across tiles: "//stash:shared <reason>". Shared state is
	// read-only while workers run; any write reachable from the worker loop
	// is a finding unless it happens inside a //stash:fold mediator. The
	// reason — why aliasing this across tiles is safe — is mandatory.
	DirectiveShared = "shared"
	// DirectiveFold marks a function as a sanctioned mediation point:
	// "//stash:fold <reason>". The function runs only while the tiles are
	// quiescent (construction, the serial engine, or the epoch barrier on
	// the driver with every worker parked), so its writes to shared state
	// are exempt and sharecheck's worker-reachability closure does not
	// descend into it. The reason is mandatory and budgeted by make lint.
	DirectiveFold = "fold"
	// DirectiveParallel sanctions a goroutine spawn inside the parallel
	// engine: "//stash:parallel <reason>" on the go statement's line or the
	// line above it. The determinism analyzer honors it only in
	// internal/psim — the one simulation package whose whole point is
	// deterministic parallelism; everywhere else in the simulation core a
	// spawn stays a finding, sanctioned or not. The reason is mandatory and
	// an unattached sanction is itself reported, mirroring ignore hygiene.
	DirectiveParallel = "parallel"
)

const directivePrefix = "//stash:"

// Directive is one parsed //stash: comment.
type Directive struct {
	Verb string // "hotpath", "acquire", ...
	Args string // everything after the verb, trimmed
}

// ParseDirective parses a single comment, returning ok=false for ordinary
// comments. Analyzers that need the comment's position (lockcheck's
// lockorder declarations, ctxcheck's line-level blocking exemptions) parse
// comment lists themselves with this instead of FuncDirectives.
func ParseDirective(text string) (Directive, bool) {
	if !strings.HasPrefix(text, directivePrefix) {
		return Directive{}, false
	}
	rest := strings.TrimPrefix(text, directivePrefix)
	verb, args, _ := strings.Cut(rest, " ")
	verb = strings.TrimSpace(verb)
	if verb == "" {
		return Directive{}, false
	}
	return Directive{Verb: verb, Args: strings.TrimSpace(args)}, true
}

// FuncDirectives returns the //stash: directives in a declaration's doc
// comment.
func FuncDirectives(doc *ast.CommentGroup) []Directive {
	if doc == nil {
		return nil
	}
	var out []Directive
	for _, c := range doc.List {
		if d, ok := ParseDirective(c.Text); ok {
			out = append(out, d)
		}
	}
	return out
}

// HasDirective reports whether the doc comment carries the given verb.
func HasDirective(doc *ast.CommentGroup, verb string) bool {
	for _, d := range FuncDirectives(doc) {
		if d.Verb == verb {
			return true
		}
	}
	return false
}
