// Package analysis is a small static-analysis framework modeled on the
// golang.org/x/tools/go/analysis vocabulary (Analyzer, Pass, Diagnostic),
// reimplemented on the standard library alone so the repo stays
// dependency-free. It backs the stashvet suite (cmd/stashvet): poolcheck,
// hotpath and determinism, the analyzers that turn this repo's runtime
// invariants — pool ownership, hot-path zero-alloc, simulation determinism —
// into build-time errors.
//
// The framework deliberately supports only what those analyzers need:
//
//   - whole-module loading with full type information (internal/analysis/load),
//   - per-package passes with access to the syntax and types of every other
//     package loaded alongside (for cross-package //stash: annotations),
//   - a cross-package facts layer (facts.go): analyzers that declare
//     FactTypes run over every applicable package in dependency order and
//     attach typed facts to objects and packages; passes over importing
//     packages read them back. This is what makes the interprocedural
//     analyzers (sharecheck, atomiccheck) possible without SSA: each pass
//     exports per-function summaries, and callers consume them.
//   - //stash:ignore suppression with a mandatory reason,
//   - an analysistest-style fixture harness (internal/analysis/analysistest).
//
// There is still no SSA and there are no suggested fixes; analyzers work
// over the AST plus go/types, with facts as the interprocedural vocabulary.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //stash:ignore directives. Lower-case, no spaces.
	Name string

	// Doc is a one-paragraph description, shown by `stashvet -help`.
	Doc string

	// AppliesTo, when non-nil, restricts the analyzer to packages whose
	// import path it accepts. The determinism analyzer uses it to scope
	// itself to the simulation packages while leaving the runner/stashd
	// service layer alone. A nil AppliesTo runs everywhere.
	AppliesTo func(pkgPath string) bool

	// FactTypes declares the fact types this analyzer exports and imports
	// (each entry a pointer to the zero value, e.g. new(foundFact)). A
	// non-empty FactTypes changes the driver's schedule: the analyzer runs
	// over every applicable module package in dependency order — including
	// packages loaded only as dependencies — so facts exported while
	// analyzing an imported package are available to its importers.
	// Diagnostics from dependency-only packages are discarded; only target
	// packages report.
	FactTypes []Fact

	// Run executes the check over one package.
	Run func(*Pass) error
}

// PackageInfo bundles the loaded artifacts of one package: its type
// information and (for packages in the analyzed module) its syntax.
type PackageInfo struct {
	Pkg   *types.Package
	Files []*ast.File
	Info  *types.Info
}

// Pass carries the inputs of one (analyzer, package) execution.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet

	// The package under analysis.
	Pkg       *types.Package
	Files     []*ast.File
	TypesInfo *types.Info

	// Universe lists every module package loaded in this run, including the
	// one under analysis. Analyzers that honor cross-package //stash:
	// annotations (poolcheck's acquire/release/transfer roles live on
	// declarations in other packages) scan it to build their role tables.
	Universe []*PackageInfo

	// Report delivers one diagnostic.
	Report func(Diagnostic)

	// facts is the analyzer's run-wide fact store, non-nil exactly when the
	// analyzer declares FactTypes. Accessed through the fact methods in
	// facts.go.
	facts *factSet
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}
