// Package chanleak implements the stashvet analyzer for goroutine sends that
// can outlive their receiver — the sweep-streaming leak fixed in PR 2: a
// waiter goroutine sends a result line on an unbuffered channel, the HTTP
// stream loop returns early when the client disconnects, and the goroutine
// blocks on the send forever.
//
// For every channel created with make(chan ...) in a function and sent on by
// a goroutine spawned in the same function, the analyzer demands a static
// proof that every send completes:
//
//   - a buffer capacity that provably covers the sends: a constant capacity
//     covering the statically-counted sends across all spawned goroutines, or
//     a make(chan T, len(xs)) buffer paired with goroutines spawned by a
//     `for ... range xs` loop that each send at most once;
//   - or enough guaranteed receivers: unconditional receives in the spawning
//     function (not inside a select, branch, or loop) cover the sends the
//     buffer cannot absorb.
//
// Sends on the normal path and sends under an `if recover() != nil` guard in
// a deferred function are mutually exclusive, so the per-goroutine count is
// the maximum of the two, not the sum (the runner's runOnce pattern).
//
// Channels that are not made locally (parameters, struct fields, captures
// from an outer function) are out of scope: their contract belongs to their
// owner. Sends inside a select with a default or with at least two cases
// have an alternative and are not counted. Escapes that cannot be proven
// carry a //stash:ignore chanleak <reason>.
package chanleak

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// servicePackages are the import-path suffixes the analyzer applies to.
var servicePackages = []string{
	"internal/runner",
	"internal/stashd",
	"internal/fleet",
}

// Analyzer is the goroutine-send leak check.
var Analyzer = &analysis.Analyzer{
	Name: "chanleak",
	Doc: "require every goroutine send on a locally-made channel to be covered by " +
		"proven buffer capacity or a guaranteed receiver",
	AppliesTo: AppliesTo,
	Run:       run,
}

// AppliesTo scopes the analyzer to the service layer by import-path suffix.
func AppliesTo(pkgPath string) bool {
	for _, s := range servicePackages {
		if pkgPath == s || strings.HasSuffix(pkgPath, "/"+s) {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			// Every function literal is its own scope: channels it makes are
			// its to prove, channels it captures are its owner's.
			scopes := []*ast.BlockStmt{fd.Body}
			for len(scopes) > 0 {
				body := scopes[0]
				scopes = scopes[1:]
				sc := collectScope(pass, body)
				scopes = append(scopes, sc.nested...)
				sc.verdicts(pass)
			}
		}
	}
	return nil
}

type capKind int

const (
	capConst capKind = iota // constant capacity (0 for unbuffered)
	capLen                  // make(chan T, len(lenOf))
	capOther                // unprovable expression; channel skipped
)

type chanInfo struct {
	key   string
	kind  capKind
	n     int64  // capConst
	lenOf string // capLen: rendered len() argument
}

// spawn is one `go func() {...}()` directly in the scope, with the rendered
// range expressions of its enclosing loops (a plain for loop records "").
type spawn struct {
	lit   *ast.FuncLit
	loops []string
}

// scope holds one function body's channels, goroutine spawns, and
// unconditional receive credits.
type scope struct {
	pass   *analysis.Pass
	chans  map[string]*chanInfo
	order  []string
	spawns []*spawn
	recvs  map[string]int
	nested []*ast.BlockStmt
}

func collectScope(pass *analysis.Pass, body *ast.BlockStmt) *scope {
	sc := &scope{pass: pass, chans: map[string]*chanInfo{}, recvs: map[string]int{}}
	for _, s := range body.List {
		sc.stmt(s, nil, false)
	}
	return sc
}

// stmt walks one statement. loops is the stack of enclosing range
// expressions; cond marks positions that may execute zero times, where a
// receive guarantees nothing.
func (sc *scope) stmt(s ast.Stmt, loops []string, cond bool) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		for _, t := range s.List {
			sc.stmt(t, loops, cond)
		}
	case *ast.LabeledStmt:
		sc.stmt(s.Stmt, loops, cond)
	case *ast.ExprStmt:
		sc.expr(s.X, cond)
	case *ast.AssignStmt:
		sc.makes(s.Lhs, s.Rhs)
		for _, e := range s.Rhs {
			sc.expr(e, cond)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					lhs := make([]ast.Expr, len(vs.Names))
					for i, n := range vs.Names {
						lhs[i] = n
					}
					sc.makes(lhs, vs.Values)
					for _, e := range vs.Values {
						sc.expr(e, cond)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			sc.expr(e, cond)
		}
	case *ast.SendStmt:
		// A send by the scope's own goroutine blocks the scope itself;
		// that is ctxcheck's concern, not a leak of a spawned goroutine.
		sc.expr(s.Chan, cond)
		sc.expr(s.Value, cond)
	case *ast.IncDecStmt:
		sc.expr(s.X, cond)
	case *ast.GoStmt:
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			sc.spawns = append(sc.spawns, &spawn{lit: lit, loops: append([]string(nil), loops...)})
			sc.nested = append(sc.nested, lit.Body)
		} else {
			sc.expr(s.Call.Fun, cond)
		}
		for _, a := range s.Call.Args {
			sc.expr(a, cond)
		}
	case *ast.DeferStmt:
		// A deferred literal runs exactly once on return: its receives keep
		// their guarantee, so inline it rather than treating it as nested.
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			for _, t := range lit.Body.List {
				sc.stmt(t, loops, cond)
			}
		} else {
			sc.expr(s.Call.Fun, cond)
		}
		for _, a := range s.Call.Args {
			sc.expr(a, cond)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			sc.stmt(s.Init, loops, cond)
		}
		sc.expr(s.Cond, cond)
		sc.stmt(s.Body, loops, true)
		if s.Else != nil {
			sc.stmt(s.Else, loops, true)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			sc.stmt(s.Init, loops, cond)
		}
		sc.stmt(s.Body, append(loops, ""), true)
	case *ast.RangeStmt:
		sc.expr(s.X, cond)
		sc.stmt(s.Body, append(loops, render(s.X)), true)
	case *ast.SelectStmt:
		// Comm clauses are alternatives; nothing in a select earns a
		// receive credit.
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CommClause); ok {
				for _, t := range cc.Body {
					sc.stmt(t, loops, true)
				}
			}
		}
	case *ast.SwitchStmt:
		if s.Init != nil {
			sc.stmt(s.Init, loops, cond)
		}
		if s.Tag != nil {
			sc.expr(s.Tag, cond)
		}
		sc.caseBodies(s.Body, loops)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			sc.stmt(s.Init, loops, cond)
		}
		sc.caseBodies(s.Body, loops)
	}
}

func (sc *scope) caseBodies(body *ast.BlockStmt, loops []string) {
	for _, cl := range body.List {
		if cc, ok := cl.(*ast.CaseClause); ok {
			for _, t := range cc.Body {
				sc.stmt(t, loops, true)
			}
		}
	}
}

// expr scans an expression for unconditional receives and nested function
// literals (which become their own scopes).
func (sc *scope) expr(e ast.Expr, cond bool) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			sc.nested = append(sc.nested, n.Body)
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !cond {
				sc.recvs[render(n.X)]++
			}
		}
		return true
	})
}

// makes records channels created by `ch := make(chan T[, cap])`.
func (sc *scope) makes(lhs, rhs []ast.Expr) {
	if len(lhs) != len(rhs) {
		return
	}
	for i, r := range rhs {
		call, ok := r.(*ast.CallExpr)
		if !ok || !isBuiltin(sc.pass.TypesInfo, call.Fun, "make") {
			continue
		}
		if t := sc.pass.TypesInfo.Types[call].Type; t == nil {
			continue
		} else if _, ok := t.Underlying().(*types.Chan); !ok {
			continue
		}
		id, ok := lhs[i].(*ast.Ident)
		if !ok {
			continue
		}
		ci := &chanInfo{key: id.Name}
		switch {
		case len(call.Args) < 2:
			ci.kind, ci.n = capConst, 0
		default:
			capArg := call.Args[1]
			if tv := sc.pass.TypesInfo.Types[capArg]; tv.Value != nil {
				n, ok := constant.Int64Val(tv.Value)
				if !ok {
					continue
				}
				ci.kind, ci.n = capConst, n
			} else if arg, ok := lenArg(sc.pass.TypesInfo, capArg); ok {
				ci.kind, ci.lenOf = capLen, arg
			} else {
				ci.kind = capOther
			}
		}
		if _, dup := sc.chans[ci.key]; !dup {
			sc.chans[ci.key] = ci
			sc.order = append(sc.order, ci.key)
		}
	}
}

// lenArg matches len(X) and returns X rendered.
func lenArg(info *types.Info, e ast.Expr) (string, bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 1 || !isBuiltin(info, call.Fun, "len") {
		return "", false
	}
	return render(call.Args[0]), true
}

func isBuiltin(info *types.Info, fun ast.Expr, name string) bool {
	id, ok := ast.Unparen(fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}

// sends is the per-goroutine send census for one channel.
type sends struct {
	normal []token.Pos // sends on the ordinary path
	once   []token.Pos // sends under an `if recover() != nil` guard
	looped []token.Pos // sends inside a loop: statically unbounded
}

func (s *sends) effective() int {
	return max(len(s.normal), len(s.once))
}

// countSends walks a spawned goroutine's body counting sends on key.
// Nested function literals and goroutines are separate scopes and skipped,
// except directly-deferred literals, which run on this goroutine.
func countSends(pass *analysis.Pass, body *ast.BlockStmt, key string) *sends {
	out := &sends{}
	var walk func(n ast.Node, inLoop, inPanic bool)
	walk = func(n ast.Node, inLoop, inPanic bool) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SendStmt:
				if render(n.Chan) != key {
					return true
				}
				switch {
				case inLoop:
					out.looped = append(out.looped, n.Pos())
				case inPanic:
					out.once = append(out.once, n.Pos())
				default:
					out.normal = append(out.normal, n.Pos())
				}
				return true
			case *ast.ForStmt:
				if n.Init != nil {
					walk(n.Init, inLoop, inPanic)
				}
				walk(n.Body, true, inPanic)
				return false
			case *ast.RangeStmt:
				walk(n.Body, true, inPanic)
				return false
			case *ast.IfStmt:
				branch := inPanic || callsRecover(pass.TypesInfo, n.Init) || callsRecover(pass.TypesInfo, n.Cond)
				if n.Init != nil {
					walk(n.Init, inLoop, inPanic)
				}
				walk(n.Body, inLoop, branch)
				if n.Else != nil {
					walk(n.Else, inLoop, inPanic)
				}
				return false
			case *ast.SelectStmt:
				ncomm, hasDefault := 0, false
				for _, cl := range n.Body.List {
					if cc, ok := cl.(*ast.CommClause); ok {
						if cc.Comm == nil {
							hasDefault = true
						} else {
							ncomm++
						}
					}
				}
				if hasDefault || ncomm >= 2 {
					return false // every comm has an alternative
				}
				return true // single-case select behaves like a bare op
			case *ast.DeferStmt:
				if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
					walk(lit.Body, inLoop, inPanic)
				}
				for _, a := range n.Call.Args {
					walk(a, inLoop, inPanic)
				}
				return false
			case *ast.GoStmt, *ast.FuncLit:
				return false // a different scope's contract
			}
			return true
		})
	}
	walk(body, false, false)
	return out
}

func callsRecover(info *types.Info, n ast.Node) bool {
	if n == nil {
		return false
	}
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isBuiltin(info, call.Fun, "recover") {
			found = true
		}
		return !found
	})
	return found
}

// verdicts proves or reports every (channel, spawned goroutine) pair.
func (sc *scope) verdicts(pass *analysis.Pass) {
	for _, key := range sc.order {
		ci := sc.chans[key]
		if ci.kind == capOther {
			continue // capacity not statically known; owner's judgment
		}
		credit := sc.recvs[key]
		running := int64(0)
		symbolic := false // a loop-spawned goroutine already consumed the budget
		for _, sp := range sc.spawns {
			cs := countSends(pass, sp.lit.Body, key)
			for _, pos := range cs.looped {
				pass.Reportf(pos, "send on %s inside a loop in a spawned goroutine: no static bound covers it; "+
					"restructure or annotate //stash:ignore chanleak <reason>", key)
			}
			eff := cs.effective()
			if eff == 0 {
				continue
			}
			if ci.kind == capLen {
				if !(len(sp.loops) == 1 && sp.loops[0] == ci.lenOf && eff == 1) {
					sc.reportFirst(pass, cs, "send on %s: buffer is len(%s) but this goroutine is not spawned "+
						"exactly once per element of %s with a single send", key, ci.lenOf, ci.lenOf)
				}
				continue
			}
			// Constant capacity: sends across every spawn share the buffer
			// plus any guaranteed receivers.
			if len(sp.loops) > 0 {
				sc.reportFirst(pass, cs, "send on %s from a goroutine spawned per loop iteration: "+
					"capacity %d cannot be proven to cover an unknown number of iterations", key, ci.n)
				symbolic = true
				continue
			}
			budget := ci.n + int64(credit)
			for i, pos := range cs.normal {
				if symbolic || running+int64(i)+1 > budget {
					pass.Reportf(pos, "send on %s may block forever: capacity %d and %d guaranteed receive(s) "+
						"are exhausted (the sweep-leak pattern); grow the buffer or receive unconditionally",
						key, ci.n, credit)
				}
			}
			for i, pos := range cs.once {
				if symbolic || running+int64(i)+1 > budget {
					pass.Reportf(pos, "send on %s may block forever: capacity %d and %d guaranteed receive(s) "+
						"are exhausted (the sweep-leak pattern); grow the buffer or receive unconditionally",
						key, ci.n, credit)
				}
			}
			running += int64(eff)
		}
	}
}

// reportFirst anchors a per-goroutine diagnosis on its first send.
func (sc *scope) reportFirst(pass *analysis.Pass, cs *sends, format string, args ...any) {
	pos := token.NoPos
	for _, list := range [][]token.Pos{cs.normal, cs.once, cs.looped} {
		for _, p := range list {
			if pos == token.NoPos || p < pos {
				pos = p
			}
		}
	}
	if pos != token.NoPos {
		pass.Reportf(pos, format, args...)
	}
}

// render prints the lexical shape of simple expressions (idents, field
// chains, derefs) used as channel and range identities.
func render(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return render(e.X) + "." + e.Sel.Name
	case *ast.StarExpr:
		return "*" + render(e.X)
	}
	return "<expr>"
}
