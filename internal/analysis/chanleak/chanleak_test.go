package chanleak_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/chanleak"
)

func TestChanleak(t *testing.T) {
	analysistest.Run(t, chanleak.Analyzer, "./src/internal/stashd")
}

func TestAppliesTo(t *testing.T) {
	cases := []struct {
		pkg  string
		want bool
	}{
		{"repro/internal/runner", true},
		{"repro/internal/stashd", true},
		{"fixture/src/internal/stashd", true},
		{"repro/internal/analysis", false},
		{"repro/cmd/stashd", false},
	}
	for _, c := range cases {
		if got := chanleak.AppliesTo(c.pkg); got != c.want {
			t.Errorf("AppliesTo(%q) = %v, want %v", c.pkg, got, c.want)
		}
	}
}
