// Package stashd exercises the chanleak analyzer: goroutine sends must be
// covered by proven buffer capacity or a guaranteed receiver.
package stashd

// jobErr is the RunAll/handleSweep shape: one goroutine per job, buffer
// sized len(jobs), one send each. Clean even if the receive loop bails.
func jobErr(jobs []int, run func(int) error) error {
	errc := make(chan error, len(jobs))
	for _, j := range jobs {
		go func(j int) {
			errc <- run(j)
		}(j)
	}
	var first error
	for range jobs {
		if err := <-errc; err != nil && first == nil {
			first = err
		}
	}
	return first
}

// leak is the PR-2 sweep bug: unbuffered send, receiver that may give up.
func leak(signal func()) {
	done := make(chan struct{})
	go func() {
		signal()
		done <- struct{}{} // want `send on done may block forever`
	}()
	select {
	case <-done:
	default:
	}
}

// attempt is the runOnce shape: the recover-guarded send and the normal
// send are mutually exclusive, so capacity 1 covers the goroutine.
func attempt(f func() int) int {
	ch := make(chan int, 1)
	go func() {
		defer func() {
			if recover() != nil {
				ch <- -1
			}
		}()
		ch <- f()
	}()
	select {
	case v := <-ch:
		return v
	default:
		return 0
	}
}

// fanout buffers to len(src) but spawns per element of extra.
func fanout(src, extra []int) <-chan int {
	out := make(chan int, len(src))
	for _, v := range extra {
		go func(v int) {
			out <- v // want `not spawned exactly once per element`
		}(v)
	}
	return out
}

// double oversubscribes a capacity-1 buffer with no guaranteed receiver.
func double(ready bool) {
	ch := make(chan int, 1)
	go func() {
		ch <- 1
		ch <- 2 // want `capacity 1 and 0 guaranteed receive`
	}()
	if ready {
		<-ch
	}
}

// pump sends an unbounded number of values against a fixed buffer.
func pump(vals []int) <-chan int {
	ch := make(chan int, 4)
	go func() {
		for _, v := range vals {
			ch <- v // want `inside a loop in a spawned goroutine`
		}
	}()
	return ch
}

// relay sends on a channel it did not make: the caller owns that contract.
func relay(out chan int, v int) {
	go func() {
		out <- v
	}()
}

// join covers an unbuffered send with an unconditional receive.
func join(f func() error) error {
	errc := make(chan error)
	go func() { errc <- f() }()
	return <-errc
}

// sidecar cannot be proven statically; the escape hatch documents why.
func sidecar(tick func() int, consume func(<-chan int)) {
	updates := make(chan int)
	go func() {
		//stash:ignore chanleak consume is handed the channel and reads until process exit
		updates <- tick()
	}()
	consume(updates)
}
