// Package hot is a hotpath fixture: only functions annotated
// //stash:hotpath are checked.
package hot

import "fmt"

type msg struct {
	id   int
	next *msg
}

type pool struct {
	freeList []*msg
	table    map[int]*msg
	sink     any
	deliver  func(*msg)
}

//stash:hotpath
func allocators(p *pool) {
	buf := make([]int, 8) // want `make allocates`
	m := new(msg)         // want `new allocates`
	m2 := &msg{id: 1}     // want `&composite literal allocates`
	ids := []int{1, 2}    // want `slice literal allocates`
	byID := map[int]int{} // want `map literal allocates`
	_, _, _, _, _ = buf, m, m2, ids, byID
}

//stash:hotpath
func appends(p *pool, scratch []int) []int {
	p.freeList = append(p.freeList, &msg{}) // want `&composite literal allocates`
	scratch = append(scratch, 1)
	local := scratch
	local = append(local, 2)
	out := append(scratch, 3) // want `append may grow the heap`
	return out
}

//stash:hotpath
func closures(p *pool) {
	p.deliver = func(m *msg) {} // want `closure allocates`
	defer fmt.Println("done")   // want `defer has per-call overhead` `converting string to any boxes`
}

//stash:hotpath
func boxing(p *pool, m *msg, id int) {
	p.sink = id // want `converting int to any boxes`
	p.sink = m  // pointers fit the interface word
	var v any = p.sink
	p.sink = v // interface to interface does not box
}

//stash:hotpath
func mapWrites(p *pool, m *msg) {
	p.table[m.id] = m // want `map write may allocate`
	if got, ok := p.table[m.id]; ok {
		_ = got // reads are fine
	}
}

//stash:hotpath
func methodValue(p *pool, m *msg) {
	f := m.value // want `method value allocates`
	_ = f
	_ = m.value() // direct call is fine
}

func (m *msg) value() int { return m.id }

//stash:hotpath
func coldPanic(m *msg) {
	if m.next == nil {
		panic(fmt.Sprintf("msg %d has no successor", m.id)) // cold path: exempt
	}
}

//stash:hotpath
func structValues(m *msg) msg {
	cp := msg{id: m.id} // value composite stays on the stack
	return cp
}

// unannotated allocates freely without findings.
func unannotated() []*msg {
	out := make([]*msg, 0, 4)
	return append(out, &msg{})
}
