// Package hotpath implements the stashvet analyzer enforcing zero-allocation
// hot paths. Functions annotated //stash:hotpath — the L1 and directory-bank
// handlers, the scheduler wheel, trace replay — run once per simulated
// message; a single heap allocation there multiplies into millions per run
// and shows up directly in bench-protocol's allocs/op gate. The analyzer
// rejects the constructs the compiler lowers to runtime allocation:
//
//   - make, new, closures (func literals), method values, defer
//   - slice and map literals, &composite literals
//   - map writes (growth allocates; iteration is determinism's business)
//   - append, except the x.f = append(x.f, ...) self-append idiom used to
//     warm object pools (growth is amortized away by reuse)
//   - converting non-pointer-shaped values to interfaces (boxing)
//
// Arguments of panic(...) are exempt: a panicking simulator is already off
// the hot path, and the fmt.Sprintf there is worth the diagnostics.
//
// The check is intraprocedural: calls into unannotated helpers are not
// followed. Annotate the helper too if it is on the same path.
package hotpath

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the hot-path zero-allocation check.
var Analyzer = &analysis.Analyzer{
	Name: "hotpath",
	Doc:  "reject heap-allocating constructs in functions annotated //stash:hotpath",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !analysis.HasDirective(fd.Doc, analysis.DirectiveHotpath) {
				continue
			}
			w := &walker{pass: pass, fname: fd.Name.Name}
			w.prescan(fd.Body)
			ast.Inspect(fd.Body, w.visit)
		}
	}
	return nil
}

type walker struct {
	pass  *analysis.Pass
	fname string
	// poolAppends holds append calls of the shape x.f = append(x.f, ...):
	// growth of a pool-backed field is amortized to zero by reuse.
	poolAppends map[*ast.CallExpr]bool
	// calledFuns holds expressions in call position, so f.method() is not
	// mistaken for a method-value allocation.
	calledFuns map[ast.Expr]bool
}

// prescan indexes self-appends and call positions before the main walk.
func (w *walker) prescan(body *ast.BlockStmt) {
	w.poolAppends = map[*ast.CallExpr]bool{}
	w.calledFuns = map[ast.Expr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			w.calledFuns[n.Fun] = true
		case *ast.AssignStmt:
			if len(n.Lhs) == 1 && len(n.Rhs) == 1 {
				if call, ok := n.Rhs[0].(*ast.CallExpr); ok && w.isBuiltin(call.Fun, "append") &&
					len(call.Args) > 0 && sameExpr(n.Lhs[0], call.Args[0]) {
					w.poolAppends[call] = true
				}
			}
		}
		return true
	})
}

func (w *walker) visit(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.CallExpr:
		return w.call(n)
	case *ast.FuncLit:
		w.pass.Reportf(n.Pos(), "%s is //stash:hotpath: closure allocates; bind it once at construction time", w.fname)
		return false
	case *ast.DeferStmt:
		w.pass.Reportf(n.Pos(), "%s is //stash:hotpath: defer has per-call overhead; restructure with explicit cleanup", w.fname)
	case *ast.GoStmt:
		w.pass.Reportf(n.Pos(), "%s is //stash:hotpath: go statement allocates a goroutine", w.fname)
	case *ast.UnaryExpr:
		if n.Op == token.AND {
			if _, ok := n.X.(*ast.CompositeLit); ok {
				w.pass.Reportf(n.Pos(), "%s is //stash:hotpath: &composite literal allocates; draw from a pool", w.fname)
			}
		}
	case *ast.CompositeLit:
		if tv, ok := w.pass.TypesInfo.Types[n]; ok {
			switch tv.Type.Underlying().(type) {
			case *types.Slice:
				w.pass.Reportf(n.Pos(), "%s is //stash:hotpath: slice literal allocates", w.fname)
			case *types.Map:
				w.pass.Reportf(n.Pos(), "%s is //stash:hotpath: map literal allocates", w.fname)
			}
		}
	case *ast.AssignStmt:
		for _, lhs := range n.Lhs {
			w.mapWrite(lhs)
		}
		w.boxingAssign(n)
	case *ast.IncDecStmt:
		w.mapWrite(n.X)
	case *ast.SelectorExpr:
		if !w.calledFuns[n] {
			if sel, ok := w.pass.TypesInfo.Selections[n]; ok && sel.Kind() == types.MethodVal {
				w.pass.Reportf(n.Pos(), "%s is //stash:hotpath: method value allocates; call it directly or bind it once", w.fname)
			}
		}
	}
	return true
}

// call checks one call expression and reports allocating builtins and
// interface-boxing arguments. It returns false (skip subtree) for panic,
// whose arguments are cold.
func (w *walker) call(call *ast.CallExpr) bool {
	if w.isBuiltin(call.Fun, "panic") {
		return false
	}
	if id := builtinName(w.pass.TypesInfo, call.Fun); id != "" {
		switch id {
		case "make":
			w.pass.Reportf(call.Pos(), "%s is //stash:hotpath: make allocates; preallocate at construction time", w.fname)
		case "new":
			w.pass.Reportf(call.Pos(), "%s is //stash:hotpath: new allocates; draw from a pool", w.fname)
		case "append":
			if !w.poolAppends[call] {
				w.pass.Reportf(call.Pos(), "%s is //stash:hotpath: append may grow the heap; only the x.f = append(x.f, ...) pool-warming idiom is exempt", w.fname)
			}
		}
		return true
	}
	// Type conversions: T(x) boxes when T is an interface.
	if tv, ok := w.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			w.boxing(call.Args[0], tv.Type)
		}
		return true
	}
	// Ordinary calls: any argument landing in an interface parameter boxes.
	tv, ok := w.pass.TypesInfo.Types[call.Fun]
	if !ok {
		return true
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return true
	}
	for i, arg := range call.Args {
		w.boxing(arg, paramType(sig, i, call.Ellipsis.IsValid()))
	}
	return true
}

// paramType resolves the type of argument i, unwrapping the variadic slice.
func paramType(sig *types.Signature, i int, ellipsis bool) types.Type {
	params := sig.Params()
	if params.Len() == 0 {
		return nil
	}
	last := params.Len() - 1
	if sig.Variadic() && i >= last {
		if ellipsis {
			return params.At(last).Type()
		}
		if sl, ok := params.At(last).Type().(*types.Slice); ok {
			return sl.Elem()
		}
	}
	if i > last {
		return nil
	}
	return params.At(i).Type()
}

// boxing reports arg if assigning it to target converts a non-pointer-shaped
// concrete value to an interface — a heap allocation in the general case.
func (w *walker) boxing(arg ast.Expr, target types.Type) {
	if target == nil {
		return
	}
	if _, ok := target.Underlying().(*types.Interface); !ok {
		return
	}
	tv, ok := w.pass.TypesInfo.Types[arg]
	if !ok || tv.IsNil() {
		return
	}
	at := tv.Type
	if _, ok := at.Underlying().(*types.Interface); ok {
		return // interface-to-interface carries the existing box
	}
	if pointerShaped(at) {
		return
	}
	w.pass.Reportf(arg.Pos(), "%s is //stash:hotpath: converting %s to %s boxes on the heap", w.fname, at, target)
}

// boxingAssign applies the boxing rule to plain assignments whose targets
// are interface-typed.
func (w *walker) boxingAssign(n *ast.AssignStmt) {
	if len(n.Lhs) != len(n.Rhs) {
		return
	}
	for i, lhs := range n.Lhs {
		if tv, ok := w.pass.TypesInfo.Types[lhs]; ok {
			w.boxing(n.Rhs[i], tv.Type)
		}
	}
}

// mapWrite reports assignments through a map index: insertion can trigger
// bucket growth.
func (w *walker) mapWrite(lhs ast.Expr) {
	idx, ok := lhs.(*ast.IndexExpr)
	if !ok {
		return
	}
	if tv, ok := w.pass.TypesInfo.Types[idx.X]; ok {
		if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
			w.pass.Reportf(lhs.Pos(), "%s is //stash:hotpath: map write may allocate; use a preallocated table (see blockTable)", w.fname)
		}
	}
}

// pointerShaped reports whether values of t fit in an interface word
// without allocating.
func pointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return t.Underlying().(*types.Basic).Kind() == types.UnsafePointer
	}
	return false
}

func (w *walker) isBuiltin(fun ast.Expr, name string) bool {
	return builtinName(w.pass.TypesInfo, fun) == name
}

// builtinName returns the builtin's name if fun resolves to one, else "".
func builtinName(info *types.Info, fun ast.Expr) string {
	id, ok := fun.(*ast.Ident)
	if !ok {
		return ""
	}
	if b, ok := info.Uses[id].(*types.Builtin); ok {
		return b.Name()
	}
	return ""
}

// sameExpr reports whether two expressions are structurally identical
// chains of identifiers and field selections (x, x.f, x.f.g).
func sameExpr(a, b ast.Expr) bool {
	switch a := a.(type) {
	case *ast.Ident:
		b, ok := b.(*ast.Ident)
		return ok && a.Name == b.Name
	case *ast.SelectorExpr:
		b, ok := b.(*ast.SelectorExpr)
		return ok && a.Sel.Name == b.Sel.Name && sameExpr(a.X, b.X)
	case *ast.ParenExpr:
		return sameExpr(a.X, b)
	}
	return false
}
