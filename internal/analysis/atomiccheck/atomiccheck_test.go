package atomiccheck_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/atomiccheck"
)

func TestAtomiccheck(t *testing.T) {
	analysistest.Run(t, atomiccheck.Analyzer,
		"./src/internal/runner", "./src/internal/fleet")
}
