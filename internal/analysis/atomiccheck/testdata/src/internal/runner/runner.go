// Package runner is a fixture service-layer metrics holder.
package runner

import "sync/atomic"

// Metrics counts work both ways: Hits and queued go through sync/atomic,
// typed is an atomic.Int64 (safe by construction).
type Metrics struct {
	Hits   int64
	queued int64
	typed  atomic.Int64
}

// Inc is the atomic path.
func (m *Metrics) Inc() {
	atomic.AddInt64(&m.Hits, 1)
	atomic.AddInt64(&m.queued, 1)
}

// Reset mixes a bare write in.
func (m *Metrics) Reset() {
	m.queued = 0 // want `bare write to runner\.queued`
	m.queued = 1 //stash:ignore atomiccheck fixture demonstrates the budgeted escape hatch
	m.typed.Store(0)
}

// Drops is written bare only; its exported counter must stay bare
// everywhere, including in importers.
type Drops struct {
	Count int64
}

// Add is the bare path.
func (d *Drops) Add() { d.Count++ }
