// Package fleet is a fixture importer mixing accesses across packages:
// both directions of the all-or-nothing rule are cross-package here.
package fleet

import (
	"sync/atomic"

	"fixture/src/internal/runner"
)

// Collect drains metrics the wrong way twice over: a bare write to a
// counter runner accesses atomically, and an atomic read of a counter
// runner writes bare.
func Collect(m *runner.Metrics, d *runner.Drops) int64 {
	m.Hits = 0                        // want `bare write to runner\.Hits`
	return atomic.LoadInt64(&d.Count) // want `atomic\.LoadInt64 of runner\.Count`
}
