// Package atomiccheck implements the stashvet analyzer that enforces the
// all-or-nothing rule for function-style sync/atomic usage in the service
// layer: a field or package variable that is accessed through sync/atomic
// anywhere must be accessed atomically everywhere. Mixing
// atomic.AddInt64(&m.n, 1) on one path with a bare m.n = 0 on another is a
// data race that the race detector only catches when both paths fire in one
// test run; atomiccheck makes it a build-time error.
//
// The analyzer is interprocedural via the facts layer: each pass exports an
// atomicFact for every local object whose address is passed to a sync/atomic
// function, and a bareWriteFact for every exported, atomically-capable
// object the package writes without sync/atomic. A pass over an importing
// package then reports both directions of cross-package mixing — a bare
// write to a dependency's atomically-accessed counter, and an atomic access
// to a counter some dependency writes bare.
//
// Typed atomics (atomic.Int64 and friends) are safe by construction — every
// access is a method call, so there is no bare-write syntax to misuse — and
// are the repo's preferred style; atomiccheck exists to police the
// function-style residue (and to keep new code from introducing it
// half-atomically). Bare reads are not tracked: the write side is where the
// published-value invariant breaks, and read-side races surface under the
// race detector once writes are disciplined.
package atomiccheck

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

// scopePackages are the import-path suffixes the analyzer applies to: the
// concurrent service layer, where function-style atomics plausibly appear.
// The simulation core is single-threaded per tile by design (sharecheck's
// territory) and psim's barrier uses typed atomics only.
var scopePackages = []string{
	"internal/runner",
	"internal/stashd",
	"internal/fleet",
}

// Analyzer is the mixed-atomic-access check.
var Analyzer = &analysis.Analyzer{
	Name: "atomiccheck",
	Doc: "a field or package var accessed via sync/atomic anywhere must be accessed " +
		"atomically everywhere; bare writes mixed with atomic ops are reported in " +
		"both directions across packages",
	AppliesTo: AppliesTo,
	FactTypes: []analysis.Fact{new(atomicFact), new(bareWriteFact)},
	Run:       run,
}

// AppliesTo scopes the analyzer to the service layer by import-path suffix.
func AppliesTo(pkgPath string) bool {
	for _, s := range scopePackages {
		if pkgPath == s || strings.HasSuffix(pkgPath, "/"+s) {
			return true
		}
	}
	return false
}

// atomicFact marks an object whose address is passed to a function-style
// sync/atomic call somewhere in its own package.
type atomicFact struct{}

func (*atomicFact) AFact() {}

// bareWriteFact marks an exported, atomically-capable object that its own
// package writes without sync/atomic, so importing packages can flag an
// atomic access to it.
type bareWriteFact struct {
	NWrites int
}

func (*bareWriteFact) AFact() {}

type accessSite struct {
	obj *types.Var
	pos token.Pos
	fn  string // the sync/atomic function, for atomic sites
}

func run(pass *analysis.Pass) error {
	var atomics, bares []accessSite
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if fn, arg := atomicCall(pass.TypesInfo, n); fn != nil {
					if v := addrRoot(pass.TypesInfo, arg); v != nil {
						atomics = append(atomics, accessSite{obj: v, pos: n.Pos(), fn: fn.Name()})
					}
				}
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					if v := writeRoot(pass.TypesInfo, lhs); v != nil {
						bares = append(bares, accessSite{obj: v, pos: lhs.Pos()})
					}
				}
			case *ast.IncDecStmt:
				if v := writeRoot(pass.TypesInfo, n.X); v != nil {
					bares = append(bares, accessSite{obj: v, pos: n.X.Pos()})
				}
			}
			return true
		})
	}

	// Export facts about this package's own objects.
	localAtomic := map[*types.Var]bool{}
	for _, a := range atomics {
		if a.obj.Pkg() == pass.Pkg && !localAtomic[a.obj] {
			localAtomic[a.obj] = true
			pass.ExportObjectFact(a.obj, &atomicFact{})
		}
	}
	localBare := map[*types.Var]int{}
	for _, b := range bares {
		if b.obj.Pkg() == pass.Pkg {
			localBare[b.obj]++
		}
	}
	for obj, n := range localBare {
		if obj.Exported() && atomicCapable(obj.Type()) {
			pass.ExportObjectFact(obj, &bareWriteFact{NWrites: n})
		}
	}

	// Bare write to an atomically-accessed object: local atomic set, or an
	// imported atomicFact from the object's own package.
	for _, b := range bares {
		mixed := localAtomic[b.obj]
		if !mixed && b.obj.Pkg() != pass.Pkg {
			var f atomicFact
			mixed = pass.ImportObjectFact(b.obj, &f)
		}
		if mixed {
			pass.Reportf(b.pos, "bare write to %s, which is accessed with sync/atomic elsewhere; every access must be atomic (prefer a typed atomic.Int64)", objDesc(pass, b.obj))
		}
	}
	// Atomic access to an object its own package writes bare. Local mixing
	// already reported at the write sites above; this covers the imported
	// direction, where the bare writes live in a package already analyzed.
	for _, a := range atomics {
		if a.obj.Pkg() == pass.Pkg {
			continue
		}
		var f bareWriteFact
		if pass.ImportObjectFact(a.obj, &f) {
			pass.Reportf(a.pos, "atomic.%s of %s, which package %s writes without sync/atomic (%d bare write(s)); every access must be atomic", a.fn, objDesc(pass, a.obj), a.obj.Pkg().Name(), f.NWrites)
		}
	}
	return nil
}

// atomicCall returns the sync/atomic function a call invokes and its address
// argument, or nil. Only function-style calls count — typed-atomic methods
// are safe by construction.
func atomicCall(ti *types.Info, call *ast.CallExpr) (*types.Func, ast.Expr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, nil
	}
	fn, ok := ti.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return nil, nil
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return nil, nil // a method on atomic.Int64 etc.
	}
	if len(call.Args) == 0 {
		return nil, nil
	}
	return fn, call.Args[0]
}

// addrRoot resolves &expr to the field or package variable whose address is
// taken, or nil.
func addrRoot(ti *types.Info, arg ast.Expr) *types.Var {
	u, ok := ast.Unparen(arg).(*ast.UnaryExpr)
	if !ok || u.Op != token.AND {
		return nil
	}
	return writeRoot(ti, u.X)
}

// writeRoot resolves the written expression to a struct field or package
// variable (the objects facts can attach to), or nil for locals.
func writeRoot(ti *types.Info, x ast.Expr) *types.Var {
	switch x := ast.Unparen(x).(type) {
	case *ast.Ident:
		v, ok := ti.Uses[x].(*types.Var)
		if !ok {
			if v, ok = ti.Defs[x].(*types.Var); !ok {
				return nil
			}
		}
		if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v.Origin()
		}
		return nil
	case *ast.SelectorExpr:
		if sel, ok := ti.Selections[x]; ok && sel.Kind() == types.FieldVal {
			if v, ok := sel.Obj().(*types.Var); ok {
				return v.Origin()
			}
			return nil
		}
		if v, ok := ti.Uses[x.Sel].(*types.Var); ok && !v.IsField() {
			if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				return v.Origin()
			}
		}
		return nil
	case *ast.IndexExpr:
		return writeRoot(ti, x.X)
	case *ast.StarExpr:
		return writeRoot(ti, x.X)
	}
	return nil
}

// atomicCapable reports whether a type could be the referent of a
// function-style sync/atomic call (the integer/pointer word kinds).
func atomicCapable(t types.Type) bool {
	switch b := t.Underlying().(type) {
	case *types.Basic:
		switch b.Kind() {
		case types.Int32, types.Int64, types.Uint32, types.Uint64, types.Uintptr:
			return true
		}
	case *types.Pointer:
		return true
	}
	return false
}

func objDesc(pass *analysis.Pass, obj types.Object) string {
	pos := pass.Fset.Position(obj.Pos())
	pkg := ""
	if obj.Pkg() != nil {
		pkg = obj.Pkg().Name() + "."
	}
	return fmt.Sprintf("%s%s (%s:%d)", pkg, obj.Name(), filepath.Base(pos.Filename), pos.Line)
}
