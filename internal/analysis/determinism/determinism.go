// Package determinism implements the stashvet analyzer that keeps the
// simulation core reproducible: a run is a pure function of its config and
// seed, so the simulation packages must not read wall-clock time, draw from
// the global math/rand stream, spawn goroutines, or iterate maps in an
// order-sensitive way. The runner/stashd service layer is deliberately out of
// scope — it talks to the OS and may do all of these.
package determinism

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// simPackages are the import-path suffixes the analyzer applies to: the
// deterministic simulation core. Everything else (cmd/, internal/runner,
// internal/stashd, internal/experiments) is service layer and exempt.
var simPackages = []string{
	"internal/sim",
	"internal/psim",
	"internal/coherence",
	"internal/core",
	"internal/noc",
	"internal/trace",
	"internal/cache",
	"internal/mem",
	"internal/system",
}

// parallelPackages are the suffixes where a //stash:parallel sanction is
// honored: the conservative parallel engine, whose workers are spawned and
// joined inside one Run call and synchronize only through its barrier.
var parallelPackages = []string{
	"internal/psim",
}

// bannedTime lists the time package's wall-clock and timer entry points.
// (time.Duration arithmetic and constants remain fine — only observing or
// waiting on real time is banned.)
var bannedTime = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// allowedRand lists math/rand package-level functions that only construct
// seeded generators rather than drawing from the global source.
var allowedRand = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
}

// Analyzer is the determinism check.
var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc: "forbid wall-clock time, global math/rand, goroutines and map iteration " +
		"in simulation packages, so every run is a pure function of config and seed",
	AppliesTo: AppliesTo,
	Run:       run,
}

// AppliesTo scopes the analyzer to the simulation core by import-path
// suffix. Suffix matching (rather than exact paths) lets fixture modules and
// forks exercise the same rules.
func AppliesTo(pkgPath string) bool {
	return matchesSuffix(pkgPath, simPackages)
}

// allowsParallel reports whether //stash:parallel sanctions are honored in
// the package.
func allowsParallel(pkgPath string) bool {
	return matchesSuffix(pkgPath, parallelPackages)
}

func matchesSuffix(pkgPath string, suffixes []string) bool {
	for _, s := range suffixes {
		if pkgPath == s || strings.HasSuffix(pkgPath, "/"+s) {
			return true
		}
	}
	return false
}

// sanction is one //stash:parallel comment found in a file.
type sanction struct {
	pos    token.Pos
	line   int
	reason string
	used   bool
}

// parallelSanctions collects a file's //stash:parallel comments by line.
func parallelSanctions(pass *analysis.Pass, file *ast.File) (byLine map[int]*sanction, all []*sanction) {
	byLine = make(map[int]*sanction)
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			d, ok := analysis.ParseDirective(c.Text)
			if !ok || d.Verb != analysis.DirectiveParallel {
				continue
			}
			s := &sanction{pos: c.Pos(), line: pass.Fset.Position(c.Pos()).Line, reason: d.Args}
			byLine[s.line] = s
			all = append(all, s)
		}
	}
	return byLine, all
}

func run(pass *analysis.Pass) error {
	parallelOK := allowsParallel(pass.Pkg.Path())
	for _, file := range pass.Files {
		byLine, all := parallelSanctions(pass, file)
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				line := pass.Fset.Position(n.Pos()).Line
				s := byLine[line]
				if s == nil {
					s = byLine[line-1]
				}
				switch {
				case s == nil:
					pass.Reportf(n.Pos(), "goroutine spawn in simulation package: the engine is single-threaded; schedule an event instead")
				case s.reason == "":
					s.used = true
					pass.Reportf(s.pos, "//stash:parallel needs a reason: //stash:parallel <why this spawn is safe and joined>")
				case !parallelOK:
					s.used = true
					pass.Reportf(n.Pos(), "//stash:parallel is only honored inside internal/psim; this package's engine is single-threaded — schedule an event instead")
				default:
					s.used = true
				}
			case *ast.RangeStmt:
				if tv, ok := pass.TypesInfo.Types[n.X]; ok {
					if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
						pass.Reportf(n.Pos(), "map iteration order is nondeterministic: collect and sort keys, or use a slice-backed table")
					}
				}
			case *ast.Ident:
				checkUse(pass, n)
			}
			return true
		})
		for _, s := range all {
			if !s.used {
				pass.Reportf(s.pos, "unused //stash:parallel: no go statement on this line or the next; delete the sanction")
			}
		}
	}
	return nil
}

// checkUse flags references to banned time and global math/rand functions.
// Working off Uses (not just call expressions) also catches method values and
// assignments like `now := time.Now`.
func checkUse(pass *analysis.Pass, id *ast.Ident) {
	fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return // methods on rand.Rand / time.Timer values are fine
	}
	switch fn.Pkg().Path() {
	case "time":
		if bannedTime[fn.Name()] {
			pass.Reportf(id.Pos(), "time.%s reads the wall clock: simulation time is sim.Engine's tick counter", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		if !allowedRand[fn.Name()] {
			pass.Reportf(id.Pos(), "rand.%s draws from the global source: thread a seeded *rand.Rand from the run config", fn.Name())
		}
	}
}
