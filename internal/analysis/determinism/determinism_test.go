package determinism_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/determinism"
)

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, determinism.Analyzer, "./src/internal/coherence", "./src/internal/psim", "./src/runner")
}

func TestAppliesTo(t *testing.T) {
	for path, want := range map[string]bool{
		"repro/internal/sim":       true,
		"repro/internal/psim":      true,
		"repro/internal/coherence": true,
		"fixture/src/internal/noc": true,
		"repro/internal/runner":    false,
		"repro/internal/stashd":    false,
		"repro/cmd/stashvet":       false,
	} {
		if got := determinism.AppliesTo(path); got != want {
			t.Errorf("AppliesTo(%q) = %v, want %v", path, got, want)
		}
	}
}

// TestParallelSanctionHygiene checks the //stash:parallel diagnostics that
// land on the directive's own line — a reasonless sanction and a sanction
// attached to no go statement — which the want-comment fixtures cannot
// express (a line comment cannot share its line with a want comment).
func TestParallelSanctionHygiene(t *testing.T) {
	dir := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		path := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module fix\n\ngo 1.22\n")
	write("internal/psim/p.go", `package psim

func loop() {}

func bare() {
	//stash:parallel
	go loop()
}

func orphan() {
	//stash:parallel nothing spawns on this line or the next
	_ = 0
}
`)

	findings, err := analysis.RunPatterns(dir, []string{"./..."}, []*analysis.Analyzer{determinism.Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	wantSubstrings := map[int]string{
		6:  "//stash:parallel needs a reason",
		11: "unused //stash:parallel",
	}
	for _, f := range findings {
		want, ok := wantSubstrings[f.Position.Line]
		if !ok {
			t.Errorf("unexpected finding: %s", f)
			continue
		}
		if !strings.Contains(f.Message, want) {
			t.Errorf("line %d: message %q does not contain %q", f.Position.Line, f.Message, want)
		}
		delete(wantSubstrings, f.Position.Line)
	}
	for line, want := range wantSubstrings {
		t.Errorf("line %d: missing finding containing %q", line, want)
	}
}
