package determinism_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/determinism"
)

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, determinism.Analyzer, "./src/internal/coherence", "./src/runner")
}

func TestAppliesTo(t *testing.T) {
	for path, want := range map[string]bool{
		"repro/internal/sim":       true,
		"repro/internal/coherence": true,
		"fixture/src/internal/noc": true,
		"repro/internal/runner":    false,
		"repro/internal/stashd":    false,
		"repro/cmd/stashvet":       false,
	} {
		if got := determinism.AppliesTo(path); got != want {
			t.Errorf("AppliesTo(%q) = %v, want %v", path, got, want)
		}
	}
}
