// Package coherence is a determinism fixture: its import path ends in
// internal/coherence, so the analyzer applies.
package coherence

import (
	"math/rand"
	"sort"
	"time"
)

func wallClock() time.Duration {
	start := time.Now()          // want `time\.Now reads the wall clock`
	time.Sleep(time.Millisecond) // want `time\.Sleep reads the wall clock`
	clock := time.Now            // want `time\.Now reads the wall clock`
	return clock().Sub(start)
}

func globalRand() int {
	return rand.Intn(16) // want `rand\.Intn draws from the global source`
}

// seededRand is the sanctioned pattern: construct a local generator from a
// config-derived seed.
func seededRand(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(16)
}

func spawn(ch chan int) {
	go func() { ch <- 1 }() // want `goroutine spawn in simulation package`
}

// sanctionOutsidePsim shows that a reasoned //stash:parallel does not buy a
// spawn anywhere but internal/psim.
func sanctionOutsidePsim(ch chan int) {
	//stash:parallel looks reasonable but this is not the parallel engine
	go func() { ch <- 1 }() // want `//stash:parallel is only honored inside internal/psim`
}

func mapOrder(m map[int]int) (sum int, keys []int) {
	for _, v := range m { // want `map iteration order is nondeterministic`
		sum += v
	}
	//stash:ignore determinism keys are sorted before use
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return sum, keys
}

func sliceOrder(s []int) int {
	total := 0
	for _, v := range s { // slices iterate in order; no diagnostic
		total += v
	}
	return total
}
