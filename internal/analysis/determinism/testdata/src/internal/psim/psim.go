// Package psim is a determinism fixture for the //stash:parallel sanction:
// its import path ends in internal/psim, the one simulation package whose
// goroutine spawns may be sanctioned. Sanction hygiene (missing reason,
// sanction attached to nothing) is covered by TestParallelSanctionHygiene,
// because those diagnostics land on the directive's own line, which cannot
// also carry a want comment.
package psim

type worker struct{}

func (w *worker) loop() {}

// sanctioned is the accepted pattern: a reasoned sanction on the line above
// the spawn (or on the spawn's own line).
func sanctioned(workers []worker) {
	for i := range workers {
		//stash:parallel epoch workers; joined before Run returns
		go workers[i].loop()
	}
	go workers[0].loop() //stash:parallel re-spawn after resize; joined by the same barrier
}

func unsanctioned(w *worker) {
	go w.loop() // want `goroutine spawn in simulation package`
}
