// Package runner stands in for the service layer: its import path does not
// match a simulation package, so the determinism analyzer leaves it alone
// even though it uses wall-clock time, global rand and goroutines freely.
package runner

import (
	"math/rand"
	"time"
)

func Elapsed(done chan time.Duration) {
	start := time.Now()
	go func() {
		time.Sleep(time.Duration(rand.Intn(10)) * time.Millisecond)
		done <- time.Since(start)
	}()
}

func Shuffle(jobs []int) {
	rand.Shuffle(len(jobs), func(i, j int) { jobs[i], jobs[j] = jobs[j], jobs[i] })
}
