package analysis

import (
	"encoding/json"
	"io"
	"path/filepath"
	"strings"
)

// SARIF 2.1.0 output (-sarif): the minimal static-analysis interchange
// subset that code-review UIs ingest — one run, the analyzer set as the
// tool's rule table, one result per finding. Suppressed findings are
// emitted with an inSource suppression rather than dropped, mirroring the
// -json behavior: the escape hatch stays auditable.

const sarifSchema = "https://json.schemastore.org/sarif-2.1.0.json"

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID       string             `json:"ruleId"`
	Level        string             `json:"level"`
	Message      sarifMessage       `json:"message"`
	Locations    []sarifLocation    `json:"locations"`
	Suppressions []sarifSuppression `json:"suppressions,omitempty"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

type sarifSuppression struct {
	Kind string `json:"kind"`
}

// writeSARIF renders the findings as one indented SARIF 2.1.0 log.
func writeSARIF(out io.Writer, analyzers []*Analyzer, findings []Finding) error {
	rules := make([]sarifRule, 0, len(analyzers)+1)
	known := map[string]bool{}
	addRule := func(name, doc string) {
		if known[name] {
			return
		}
		known[name] = true
		rules = append(rules, sarifRule{ID: name, ShortDescription: sarifMessage{Text: docSummary(doc)}})
	}
	for _, a := range analyzers {
		addRule(a.Name, a.Doc)
	}
	// Suppression-hygiene findings carry the synthetic "stashvet" analyzer
	// name; give any such orphan ruleId a rule entry too so the log stays
	// self-contained.
	for _, f := range findings {
		addRule(f.Analyzer, "driver-level diagnostic")
	}

	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		r := sarifResult{
			RuleID:  f.Analyzer,
			Level:   "warning",
			Message: sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{PhysicalLocation: sarifPhysical{
				ArtifactLocation: sarifArtifact{URI: filepath.ToSlash(f.Position.Filename)},
				Region:           sarifRegion{StartLine: f.Position.Line, StartColumn: f.Position.Column},
			}}},
		}
		if f.Suppressed {
			r.Suppressions = []sarifSuppression{{Kind: "inSource"}}
		}
		results = append(results, r)
	}

	log := sarifLog{
		Schema:  sarifSchema,
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "stashvet", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

// docSummary reduces an analyzer's Doc to its first line, the convention
// for a rule's short description.
func docSummary(doc string) string {
	doc = strings.TrimSpace(doc)
	if i := strings.IndexByte(doc, '\n'); i >= 0 {
		doc = doc[:i]
	}
	return strings.TrimSpace(doc)
}
