// Package poolcheck implements the stashvet analyzer for pool ownership.
// The simulator recycles its hot objects — coherence messages, L1/directory
// TBEs, NoC envelopes — through hand-managed free lists, and the //stash:
// directives name the functions that move values in and out of them:
//
//	//stash:acquire  — the function's pointer result is pool-owned; the
//	                   caller must release or transfer it on every path
//	//stash:release  — the function returns its pooled argument to the pool
//	//stash:transfer — the function takes over ownership of its argument
//	                   (NoC injection, event-queue parks, bank-queue chains)
//
// poolcheck tracks values acquired locally within each function body and
// reports:
//
//   - leaks: an owned value that reaches scope end, a return, or is
//     discarded without being released or transferred on some path
//   - double-release: releasing a value that may already be released
//   - use-after-release: reading a value after it may have been released
//   - releasing a value whose ownership was already transferred
//
// The analysis is intraprocedural and path-insensitive: branch states merge
// by union, so "may leak on some path" is reported. Values received as
// parameters are not tracked (ownership conventions at function boundaries
// are expressed by annotating the functions themselves). Transferred values
// may still be read afterwards — the event system shares ownership with the
// scheduler until delivery — but must not be released by the old owner.
package poolcheck

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the pool ownership check.
var Analyzer = &analysis.Analyzer{
	Name: "poolcheck",
	Doc:  "track //stash:acquire'd pooled values and flag leaks, double-releases and use-after-release",
	Run:  run,
}

// state is a bitmask of what may have happened to a tracked value on the
// paths reaching a program point.
type state uint8

const (
	owned    state = 1 << iota // still this function's responsibility
	released                   // returned to its pool
	escaped                    // ownership moved: transferred, stored, aliased, returned
)

// env maps tracked variables to their may-states. Copied at branches,
// merged by union.
type env map[*types.Var]state

func (e env) clone() env {
	out := make(env, len(e))
	for v, s := range e {
		out[v] = s
	}
	return out
}

// merge unions b into a, returning whether a changed.
func merge(a, b env) bool {
	changed := false
	for v, s := range b {
		if a[v]|s != a[v] {
			a[v] |= s
			changed = true
		}
	}
	return changed
}

func run(pass *analysis.Pass) error {
	roles := collectRoles(pass.Universe)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				analyzeBody(pass, roles, fd.Body)
			}
		}
	}
	return nil
}

// collectRoles scans every loaded package for //stash:acquire/release/
// transfer annotations and maps the annotated functions to their roles.
// Cross-package: a function in internal/coherence may be annotated while the
// caller under analysis lives elsewhere.
func collectRoles(universe []*analysis.PackageInfo) map[*types.Func]string {
	roles := map[*types.Func]string{}
	for _, pi := range universe {
		for _, file := range pi.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				for _, d := range analysis.FuncDirectives(fd.Doc) {
					switch d.Verb {
					case analysis.DirectiveAcquire, analysis.DirectiveRelease, analysis.DirectiveTransfer:
						if fn, ok := pi.Info.Defs[fd.Name].(*types.Func); ok {
							roles[fn] = d.Verb
						}
					}
				}
			}
		}
	}
	return roles
}

// analyzeBody runs the ownership interpreter over one function body, then
// over any function literals it contains (each as an independent function).
func analyzeBody(pass *analysis.Pass, roles map[*types.Func]string, body *ast.BlockStmt) {
	fa := &fnAnalyzer{
		pass:       pass,
		roles:      roles,
		acquiredAt: map[*types.Var]token.Pos{},
		reported:   map[token.Pos]bool{},
	}
	e := env{}
	if !fa.block(body, e) {
		fa.scopeEnd(e, body.Pos(), body.End())
	}
	for i := 0; i < len(fa.funcLits); i++ {
		analyzeBody(pass, roles, fa.funcLits[i].Body)
	}
}

type fnAnalyzer struct {
	pass       *analysis.Pass
	roles      map[*types.Func]string
	acquiredAt map[*types.Var]token.Pos
	// reported dedupes diagnostics by position: loop fixpointing revisits
	// statements, and merged paths would otherwise repeat findings.
	reported map[token.Pos]bool
	funcLits []*ast.FuncLit
}

func (fa *fnAnalyzer) reportf(pos token.Pos, format string, args ...any) {
	if fa.reported[pos] {
		return
	}
	fa.reported[pos] = true
	fa.pass.Reportf(pos, format, args...)
}

// scopeEnd leak-checks and drops every tracked variable declared between
// lo and hi — called when that region's scope closes.
func (fa *fnAnalyzer) scopeEnd(e env, lo, hi token.Pos) {
	for v, s := range e {
		if v.Pos() < lo || v.Pos() >= hi {
			continue
		}
		if s&owned != 0 {
			fa.reportf(fa.acquiredAt[v], "pooled value %s may leak: not released or transferred on every path", v.Name())
		}
		delete(e, v)
	}
}

// leakAll is the return-time check: every tracked variable still owned on
// some path leaks.
func (fa *fnAnalyzer) leakAll(e env) {
	for v, s := range e {
		if s&owned != 0 {
			fa.reportf(fa.acquiredAt[v], "pooled value %s may leak: not released or transferred on every path", v.Name())
		}
	}
}

// block interprets a block's statements; it returns true if every path
// through the block terminates (return, panic, branch).
func (fa *fnAnalyzer) block(b *ast.BlockStmt, e env) bool {
	for _, st := range b.List {
		if fa.stmt(st, e) {
			return true
		}
	}
	fa.scopeEnd(e, b.Pos(), b.End())
	return false
}

// stmt interprets one statement; it returns true if the statement
// terminates the current path.
func (fa *fnAnalyzer) stmt(st ast.Stmt, e env) bool {
	switch st := st.(type) {
	case *ast.ExprStmt:
		if call, ok := st.X.(*ast.CallExpr); ok {
			if isPanic(fa.pass.TypesInfo, call) {
				return true // cold path; no leak check
			}
			fa.expr(st.X, e)
			// A discarded acquire result can never be released.
			if fa.roleOf(call) == analysis.DirectiveAcquire {
				fa.reportf(call.Pos(), "result of %s is pool-owned but discarded: it leaks immediately", callName(call))
			}
			return false
		}
		fa.expr(st.X, e)
	case *ast.AssignStmt:
		fa.assign(st, e)
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, val := range vs.Values {
						fa.expr(val, e)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, r := range st.Results {
			fa.expr(r, e)
			fa.escapeVar(r, e) // ownership passes to the caller
		}
		fa.leakAll(e)
		return true
	case *ast.IfStmt:
		return fa.ifStmt(st, e)
	case *ast.ForStmt:
		if st.Init != nil {
			fa.stmt(st.Init, e)
		}
		if st.Cond != nil {
			fa.expr(st.Cond, e)
		}
		fa.loop(st.Body, e, func(ee env) {
			if st.Post != nil {
				fa.stmt(st.Post, ee)
			}
		})
		fa.scopeEnd(e, st.Pos(), st.End())
	case *ast.RangeStmt:
		fa.expr(st.X, e)
		fa.loop(st.Body, e, nil)
		fa.scopeEnd(e, st.Pos(), st.End())
	case *ast.SwitchStmt:
		fa.switchStmt(st.Init, st.Tag, st.Body, st, e)
		return false
	case *ast.TypeSwitchStmt:
		fa.switchStmt(st.Init, nil, st.Body, st, e)
		return false
	case *ast.SelectStmt:
		fa.switchStmt(nil, nil, st.Body, st, e)
		return false
	case *ast.BlockStmt:
		return fa.block(st, e)
	case *ast.BranchStmt:
		// break/continue/goto leave the straight-line path; treat as
		// terminating without a leak check (conservatively quiet).
		return true
	case *ast.DeferStmt, *ast.GoStmt:
		// Deferred/concurrent effects happen later; give up precision and
		// treat their tracked arguments as escaped.
		var call *ast.CallExpr
		if d, ok := st.(*ast.DeferStmt); ok {
			call = d.Call
		} else {
			call = st.(*ast.GoStmt).Call
		}
		fa.expr(call.Fun, e)
		for _, a := range call.Args {
			fa.expr(a, e)
			fa.escapeVar(a, e)
		}
	case *ast.SendStmt:
		fa.expr(st.Chan, e)
		fa.expr(st.Value, e)
		fa.escapeVar(st.Value, e)
	case *ast.IncDecStmt:
		fa.expr(st.X, e)
	case *ast.LabeledStmt:
		return fa.stmt(st.Stmt, e)
	}
	return false
}

// ifStmt interprets both arms from copies of the incoming state and merges
// the arms that fall through.
func (fa *fnAnalyzer) ifStmt(st *ast.IfStmt, e env) bool {
	if st.Init != nil {
		fa.stmt(st.Init, e)
	}
	fa.expr(st.Cond, e)
	thenEnv := e.clone()
	thenDone := fa.block(st.Body, thenEnv)
	elseEnv := e.clone()
	elseDone := false
	if st.Else != nil {
		elseDone = fa.stmt(st.Else, elseEnv)
	}
	switch {
	case thenDone && elseDone:
		fa.scopeEnd(e, st.Pos(), st.End())
		return true
	case thenDone:
		replace(e, elseEnv)
	case elseDone:
		replace(e, thenEnv)
	default:
		replace(e, thenEnv)
		merge(e, elseEnv)
	}
	fa.scopeEnd(e, st.Pos(), st.End())
	return false
}

// switchStmt interprets each clause from a copy of the incoming state and
// merges the survivors; the incoming state itself stays merged in, since a
// switch without a default may match nothing.
func (fa *fnAnalyzer) switchStmt(init ast.Stmt, tag ast.Expr, body *ast.BlockStmt, whole ast.Stmt, e env) {
	if init != nil {
		fa.stmt(init, e)
	}
	if tag != nil {
		fa.expr(tag, e)
	}
	out := e.clone()
	for _, cl := range body.List {
		clauseEnv := e.clone()
		var stmts []ast.Stmt
		switch cl := cl.(type) {
		case *ast.CaseClause:
			for _, x := range cl.List {
				fa.expr(x, clauseEnv)
			}
			stmts = cl.Body
		case *ast.CommClause:
			if cl.Comm != nil {
				fa.stmt(cl.Comm, clauseEnv)
			}
			stmts = cl.Body
		}
		done := false
		for _, s := range stmts {
			if fa.stmt(s, clauseEnv) {
				done = true
				break
			}
		}
		if !done {
			fa.scopeEnd(clauseEnv, cl.Pos(), cl.End())
			merge(out, clauseEnv)
		}
	}
	replace(e, out)
	fa.scopeEnd(e, whole.Pos(), whole.End())
}

// loop runs a body to a fixpoint: with union merging, states only grow, so
// re-running until stable needs few iterations. Reports are deduped by
// position, so revisits stay quiet.
func (fa *fnAnalyzer) loop(body *ast.BlockStmt, e env, post func(env)) {
	for {
		iter := e.clone()
		done := fa.block(body, iter)
		if !done && post != nil {
			post(iter)
		}
		if !merge(e, iter) {
			return
		}
	}
}

// assign handles ownership-moving assignments: tracking acquire results,
// alias moves, and stores that escape a value into a structure.
func (fa *fnAnalyzer) assign(st *ast.AssignStmt, e env) {
	if len(st.Lhs) == len(st.Rhs) {
		for i := range st.Lhs {
			fa.assignOne(st.Lhs[i], st.Rhs[i], e)
		}
		return
	}
	// Multi-value form (a, b := f()): no acquire functions return multiple
	// values; just process uses.
	for _, r := range st.Rhs {
		fa.expr(r, e)
	}
	for _, l := range st.Lhs {
		fa.lhsUses(l, e)
	}
}

func (fa *fnAnalyzer) assignOne(lhs, rhs ast.Expr, e env) {
	// x := acquire(): start tracking x.
	if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && fa.roleOf(call) == analysis.DirectiveAcquire {
		fa.expr(rhs, e)
		if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
			if id.Name == "_" {
				fa.reportf(call.Pos(), "result of %s is pool-owned but discarded: it leaks immediately", callName(call))
				return
			}
			if v := fa.defOrUseVar(id); v != nil {
				e[v] = owned
				fa.acquiredAt[v] = call.Pos()
				return
			}
		}
		// Acquired straight into a field or slot: immediately escaped.
		fa.lhsUses(lhs, e)
		return
	}

	fa.expr(rhs, e)
	switch ast.Unparen(lhs).(type) {
	case *ast.Ident:
		// y := m: ownership moves to the alias; m stays readable.
		if v := fa.trackedVar(rhs, e); v != nil {
			e[v] = e[v]&^owned | escaped
			if id := ast.Unparen(lhs).(*ast.Ident); id.Name != "_" {
				if nv := fa.defOrUseVar(id); nv != nil {
					e[nv] = owned
					fa.acquiredAt[nv] = fa.acquiredAt[v]
				}
			}
		}
	default:
		// x.f = m, arr[i] = m: stored into a structure that outlives the
		// ownership window we can see — escaped.
		fa.lhsUses(lhs, e)
		fa.escapeVar(rhs, e)
	}
}

// lhsUses processes the evaluations buried in an assignment target
// (receiver chains, index expressions) without treating the target itself
// as a read.
func (fa *fnAnalyzer) lhsUses(lhs ast.Expr, e env) {
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr:
		fa.expr(lhs.X, e)
	case *ast.IndexExpr:
		fa.expr(lhs.X, e)
		fa.expr(lhs.Index, e)
	case *ast.StarExpr:
		fa.expr(lhs.X, e)
	}
}

// expr walks an expression, flagging uses of released values and applying
// the ownership effects of annotated calls.
func (fa *fnAnalyzer) expr(x ast.Expr, e env) {
	switch x := x.(type) {
	case nil:
	case *ast.Ident:
		if v := fa.useVar(x); v != nil {
			if s, ok := e[v]; ok && s&released != 0 {
				fa.reportf(x.Pos(), "use of %s after release: it may be back in the pool", v.Name())
			}
		}
	case *ast.CallExpr:
		role := fa.roleOf(x)
		for _, a := range x.Args {
			// Handing a value to its release function is not a "use": the
			// releaseVar state checks (double release, released-after-
			// transfer) own the diagnostics for that argument.
			if role == analysis.DirectiveRelease && fa.trackedVar(a, e) != nil {
				continue
			}
			fa.expr(a, e)
		}
		fa.expr(x.Fun, e)
		switch role {
		case analysis.DirectiveRelease:
			for _, a := range x.Args {
				fa.releaseVar(a, e)
			}
		case analysis.DirectiveTransfer:
			for _, a := range x.Args {
				fa.escapeVar(a, e)
			}
		}
	case *ast.SelectorExpr:
		fa.expr(x.X, e)
	case *ast.ParenExpr:
		fa.expr(x.X, e)
	case *ast.StarExpr:
		fa.expr(x.X, e)
	case *ast.UnaryExpr:
		fa.expr(x.X, e)
		if x.Op == token.AND {
			fa.escapeVar(x.X, e) // address taken: aliasing beyond our sight
		}
	case *ast.BinaryExpr:
		fa.expr(x.X, e)
		fa.expr(x.Y, e)
	case *ast.IndexExpr:
		fa.expr(x.X, e)
		fa.expr(x.Index, e)
	case *ast.IndexListExpr:
		fa.expr(x.X, e)
		for _, i := range x.Indices {
			fa.expr(i, e)
		}
	case *ast.SliceExpr:
		fa.expr(x.X, e)
		fa.expr(x.Low, e)
		fa.expr(x.High, e)
		fa.expr(x.Max, e)
	case *ast.TypeAssertExpr:
		fa.expr(x.X, e)
	case *ast.CompositeLit:
		for _, elt := range x.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				elt = kv.Value
			}
			fa.expr(elt, e)
			fa.escapeVar(elt, e) // stored into the composite
		}
	case *ast.KeyValueExpr:
		fa.expr(x.Value, e)
	case *ast.FuncLit:
		// The literal runs later with its own env; captured tracked values
		// escape into the closure.
		fa.funcLits = append(fa.funcLits, x)
		ast.Inspect(x.Body, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if v := fa.useVar(id); v != nil {
					if _, tracked := e[v]; tracked {
						e[v] = e[v]&^owned | escaped
					}
				}
			}
			return true
		})
	}
}

// releaseVar applies a //stash:release call to a tracked argument.
func (fa *fnAnalyzer) releaseVar(arg ast.Expr, e env) {
	v := fa.trackedVar(arg, e)
	if v == nil {
		return
	}
	s := e[v]
	switch {
	case s&released != 0:
		fa.reportf(arg.Pos(), "double release of %s: it may already be back in the pool", v.Name())
	case s&escaped != 0:
		fa.reportf(arg.Pos(), "release of %s after its ownership was transferred: the new owner will release it", v.Name())
	}
	e[v] = s&^owned | released
}

// escapeVar moves ownership of a tracked argument out of this function.
func (fa *fnAnalyzer) escapeVar(arg ast.Expr, e env) {
	if v := fa.trackedVar(arg, e); v != nil {
		e[v] = e[v]&^owned | escaped
	}
}

// trackedVar resolves an expression to a tracked variable, unwrapping
// parens.
func (fa *fnAnalyzer) trackedVar(x ast.Expr, e env) *types.Var {
	id, ok := ast.Unparen(x).(*ast.Ident)
	if !ok {
		return nil
	}
	v := fa.useVar(id)
	if v == nil {
		return nil
	}
	if _, tracked := e[v]; !tracked {
		return nil
	}
	return v
}

// useVar resolves an identifier use to its variable object.
func (fa *fnAnalyzer) useVar(id *ast.Ident) *types.Var {
	v, _ := fa.pass.TypesInfo.Uses[id].(*types.Var)
	return v
}

// defOrUseVar resolves an identifier that may define (:=) or reuse (=) a
// variable.
func (fa *fnAnalyzer) defOrUseVar(id *ast.Ident) *types.Var {
	if v, ok := fa.pass.TypesInfo.Defs[id].(*types.Var); ok {
		return v
	}
	v, _ := fa.pass.TypesInfo.Uses[id].(*types.Var)
	return v
}

// roleOf returns the //stash: role of a call's callee, or "".
func (fa *fnAnalyzer) roleOf(call *ast.CallExpr) string {
	var fn *types.Func
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ = fa.pass.TypesInfo.Uses[fun].(*types.Func)
	case *ast.SelectorExpr:
		fn, _ = fa.pass.TypesInfo.Uses[fun.Sel].(*types.Func)
	}
	if fn == nil {
		return ""
	}
	return fa.roles[fn.Origin()]
}

// callName renders a call target for diagnostics.
func callName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return "call"
}

// isPanic reports whether the call is the panic builtin.
func isPanic(info *types.Info, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "panic"
}

// replace overwrites dst's contents with src's.
func replace(dst, src env) {
	for v := range dst {
		delete(dst, v)
	}
	for v, s := range src {
		dst[v] = s
	}
}
