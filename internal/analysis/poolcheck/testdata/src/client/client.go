// Package client exercises cross-package role collection: the
// //stash:acquire/release/transfer annotations live in fixture/src/pool,
// while the flows under analysis are here.
package client

import "fixture/src/pool"

func Leak(p *pool.Pool) {
	m := p.Get() // want `pooled value m may leak`
	m.ID = 1
}

func RoundTrip(p *pool.Pool) {
	m := p.Get()
	m.ID = 2
	p.Put(m)
}

func Forward(p *pool.Pool) {
	m := p.Get()
	p.Send(m)
}
