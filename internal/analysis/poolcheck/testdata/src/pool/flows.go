package pool

// --- diagnostics ---

func leak(p *Pool) int {
	m := p.Get() // want `pooled value m may leak`
	return m.ID
}

func leakOnOnePath(p *Pool, cond bool) {
	m := p.Get() // want `pooled value m may leak`
	if cond {
		p.Put(m)
	}
}

func discarded(p *Pool) {
	p.Get() // want `result of Get is pool-owned but discarded`
}

func doubleRelease(p *Pool) {
	m := p.Get()
	p.Put(m)
	p.Put(m) // want `double release of m`
}

func conditionalDoubleRelease(p *Pool, cond bool) {
	m := p.Get()
	if cond {
		p.Put(m)
	}
	p.Put(m) // want `double release of m`
}

func useAfterRelease(p *Pool) int {
	m := p.Get()
	p.Put(m)
	return m.ID // want `use of m after release`
}

func releaseAfterTransfer(p *Pool) {
	m := p.Get()
	p.Send(m)
	p.Put(m) // want `release of m after its ownership was transferred`
}

// --- sanctioned flows: no diagnostics ---

func acquireRelease(p *Pool) {
	m := p.Get()
	m.ID = 7
	p.Put(m)
}

func acquireTransferPerIteration(p *Pool, n int) {
	for i := 0; i < n; i++ {
		m := p.Get()
		m.ID = i
		p.Send(m)
	}
}

func storeEscapes(p *Pool, head *Msg) {
	m := p.Get()
	head.Next = m // chained into a structure the caller owns
}

func returnEscapes(p *Pool) *Msg {
	m := p.Get()
	return m // ownership passes to the caller
}

func branchesCovered(p *Pool, cond bool) {
	m := p.Get()
	if cond {
		p.Send(m)
		return
	}
	p.Put(m)
}

func readAfterTransfer(p *Pool) int {
	m := p.Get()
	p.Send(m)
	return m.ID // shared with the scheduler until delivery: reads are fine
}

func aliasMovesOwnership(p *Pool) {
	m := p.Get()
	alias := m
	p.Put(alias)
}

func panicIsCold(p *Pool) {
	m := p.Get()
	if m.ID < 0 {
		panic("corrupt pool entry")
	}
	p.Put(m)
}

func closureTakesOwnership(p *Pool) func() {
	m := p.Get()
	return func() { p.Put(m) }
}
