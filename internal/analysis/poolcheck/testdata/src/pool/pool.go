// Package pool is a poolcheck fixture: a miniature message pool with the
// three ownership roles annotated, plus functions exercising every
// diagnostic and every sanctioned flow.
package pool

type Msg struct {
	ID   int
	Next *Msg
}

type Pool struct {
	free []*Msg
	sent *Msg
}

// Get hands out a pooled message.
//
//stash:acquire
func (p *Pool) Get() *Msg {
	if n := len(p.free); n > 0 {
		m := p.free[n-1]
		p.free = p.free[:n-1]
		return m
	}
	return &Msg{}
}

// Put returns a message to the pool.
//
//stash:release
func (p *Pool) Put(m *Msg) {
	p.free = append(p.free, m)
}

// Send injects a message into the fabric, taking over its ownership.
//
//stash:transfer
func (p *Pool) Send(m *Msg) {
	p.sent = m
}
