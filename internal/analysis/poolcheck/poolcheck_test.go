package poolcheck_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/poolcheck"
)

func TestPoolcheck(t *testing.T) {
	analysistest.Run(t, poolcheck.Analyzer, "./src/pool", "./src/client")
}
