package analysis_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// sarifFixture builds a temp module with one finding-bearing line and one
// suppressed one, chdirs into it, and returns the analyzer pair.
func sarifFixture(t *testing.T) []*analysis.Analyzer {
	t.Helper()
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module fix\n\ngo 1.22\n")
	writeFile(t, filepath.Join(dir, "a.go"), `package fix

var A = 1

//stash:ignore noisy reviewed escape
var B = 2
`)
	t.Chdir(dir)
	noisy := &analysis.Analyzer{
		Name: "noisy",
		Doc:  "flags every var\n\nLonger explanation that must not leak into the rule summary.",
		Run: func(p *analysis.Pass) error {
			for _, f := range p.Files {
				for _, d := range f.Decls {
					p.Reportf(d.Pos(), "flagged")
				}
			}
			return nil
		},
	}
	return []*analysis.Analyzer{noisy}
}

// TestMainSARIF pins the -sarif contract: a parseable SARIF 2.1.0 log with
// the analyzer as a rule, one result per finding, suppressed findings
// carried with an inSource suppression, and the exit code identical to the
// text mode's.
func TestMainSARIF(t *testing.T) {
	analyzers := sarifFixture(t)

	var out strings.Builder
	code := analysis.MainWith(&out, analyzers, analysis.MainConfig{Format: "sarif"}, []string{"./..."})
	if code != 1 {
		t.Fatalf("exit %d, want 1 (unsuppressed finding present); output: %s", code, out.String())
	}

	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID               string `json:"id"`
						ShortDescription struct {
							Text string `json:"text"`
						} `json:"shortDescription"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID  string `json:"ruleId"`
				Level   string `json:"level"`
				Message struct {
					Text string `json:"text"`
				} `json:"message"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
				Suppressions []struct {
					Kind string `json:"kind"`
				} `json:"suppressions"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(out.String()), &log); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out.String())
	}
	if log.Version != "2.1.0" || !strings.Contains(log.Schema, "sarif-2.1.0") {
		t.Errorf("version %q schema %q, want SARIF 2.1.0", log.Version, log.Schema)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("%d runs, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "stashvet" {
		t.Errorf("driver name %q, want stashvet", run.Tool.Driver.Name)
	}
	ruleDoc := ""
	for _, r := range run.Tool.Driver.Rules {
		if r.ID == "noisy" {
			ruleDoc = r.ShortDescription.Text
		}
	}
	if ruleDoc != "flags every var" {
		t.Errorf("rule noisy short description %q, want first doc line only", ruleDoc)
	}
	if len(run.Results) != 2 {
		t.Fatalf("%d results, want 2 (one open, one suppressed):\n%s", len(run.Results), out.String())
	}
	suppressed := 0
	for _, r := range run.Results {
		if r.RuleID != "noisy" || r.Level != "warning" || r.Message.Text != "flagged" {
			t.Errorf("result %+v: want ruleId noisy, level warning, message flagged", r)
		}
		if len(r.Locations) != 1 {
			t.Fatalf("result has %d locations, want 1", len(r.Locations))
		}
		loc := r.Locations[0].PhysicalLocation
		if !strings.HasSuffix(loc.ArtifactLocation.URI, "a.go") || strings.Contains(loc.ArtifactLocation.URI, "\\") {
			t.Errorf("artifact URI %q: want a slash-separated path to a.go", loc.ArtifactLocation.URI)
		}
		if loc.Region.StartLine <= 0 {
			t.Errorf("result startLine %d, want positive", loc.Region.StartLine)
		}
		for _, s := range r.Suppressions {
			if s.Kind != "inSource" {
				t.Errorf("suppression kind %q, want inSource", s.Kind)
			}
			suppressed++
		}
	}
	if suppressed != 1 {
		t.Errorf("%d suppressed results, want exactly 1", suppressed)
	}
}

// TestMainUnknownFormat: a format typo is a usage error (2), not a silent
// fallback to text.
func TestMainUnknownFormat(t *testing.T) {
	analyzers := sarifFixture(t)
	var out strings.Builder
	if code := analysis.MainWith(&out, analyzers, analysis.MainConfig{Format: "xml"}, []string{"./..."}); code != 2 {
		t.Errorf("unknown format: exit %d, want 2 (output: %s)", code, out.String())
	}
}

// TestMainBudget pins the -budget contract: directives within budget keep
// the run green, a breach exits 3 and names the offending lines, and the
// directives are counted with the old Makefile-gate scoping (testdata
// excluded everywhere; _test.go excluded for parallel/share but counted
// for ignore).
func TestMainBudget(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, "internal", "p", "testdata"), 0o755); err != nil {
		t.Fatal(err)
	}
	writeFile(t, filepath.Join(dir, "go.mod"), "module fix\n\ngo 1.22\n")
	writeFile(t, filepath.Join(dir, "internal", "p", "a.go"), `package p

//stash:parallel worker spawn reviewed here
var A = 1

//stash:shared result store reviewed here
var B = 2
`)
	// Out of scope for parallel/share: a test file and a testdata fixture.
	writeFile(t, filepath.Join(dir, "internal", "p", "a_test.go"), `package p

//stash:parallel directives in tests never count
var T = 1
`)
	writeFile(t, filepath.Join(dir, "internal", "p", "testdata", "fix.go"), `package fixture

//stash:shared fixtures never count
var F = 1
`)
	t.Chdir(dir)

	quiet := []*analysis.Analyzer{{
		Name: "quiet",
		Doc:  "reports nothing",
		Run:  func(*analysis.Pass) error { return nil },
	}}

	budget := filepath.Join(dir, "budget")
	writeFile(t, budget, "# baselines\nignore 0\nparallel 1\nshare 1\n")
	var out strings.Builder
	if code := analysis.MainWith(&out, quiet, analysis.MainConfig{BudgetFile: budget}, []string{"./..."}); code != 0 {
		t.Errorf("within budget: exit %d, want 0 (output: %s)", code, out.String())
	}

	writeFile(t, budget, "ignore 0\nparallel 0\nshare 1\n")
	out.Reset()
	if code := analysis.MainWith(&out, quiet, analysis.MainConfig{BudgetFile: budget}, []string{"./..."}); code != 3 {
		t.Errorf("over budget: exit %d, want 3 (output: %s)", code, out.String())
	}
	if !strings.Contains(out.String(), "internal/p/a.go:3") || !strings.Contains(out.String(), "//stash:parallel") {
		t.Errorf("breach report should name the offending line: %q", out.String())
	}
	if strings.Contains(out.String(), "a_test.go") || strings.Contains(out.String(), "testdata") {
		t.Errorf("out-of-scope files leaked into the count: %q", out.String())
	}

	for name, content := range map[string]string{
		"missing class":  "ignore 0\nparallel 0\n",
		"unknown class":  "ignore 0\nparallel 0\nshare 1\nbogus 3\n",
		"negative count": "ignore -1\nparallel 0\nshare 1\n",
		"not a pair":     "ignore\nparallel 0\nshare 1\n",
	} {
		writeFile(t, budget, content)
		out.Reset()
		if code := analysis.MainWith(&out, quiet, analysis.MainConfig{BudgetFile: budget}, []string{"./..."}); code != 2 {
			t.Errorf("%s: exit %d, want 2 (output: %s)", name, code, out.String())
		}
	}

	out.Reset()
	if code := analysis.MainWith(&out, quiet, analysis.MainConfig{BudgetFile: filepath.Join(dir, "nope")}, []string{"./..."}); code != 2 {
		t.Errorf("missing budget file: exit %d, want 2 (output: %s)", code, out.String())
	}
}
