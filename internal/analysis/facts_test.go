package analysis_test

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"slices"
	"strings"
	"testing"

	"repro/internal/analysis"
)

func mkdirAll(p string) error { return os.MkdirAll(p, 0o755) }

// markFact records which package exported a fact on its Token variable.
type markFact struct {
	Label string
}

func (*markFact) AFact() {}

// writeDiamond lays out a diamond dependency: a imports b and c, both of
// which import d.
func writeDiamond(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module fix\n\ngo 1.22\n")
	mk := func(pkg, imports string) {
		if err := mkdirAll(filepath.Join(dir, pkg)); err != nil {
			t.Fatal(err)
		}
		writeFile(t, filepath.Join(dir, pkg, pkg+".go"),
			fmt.Sprintf("package %s\n\n%s\nvar Token = 0\n", pkg, imports))
	}
	mk("d", "")
	mk("b", "import _ \"fix/d\"\n")
	mk("c", "import _ \"fix/d\"\n")
	mk("a", "import (\n\t_ \"fix/b\"\n\t_ \"fix/c\"\n)\n")
	return dir
}

// factTracer exports a markFact on each package's Token and logs, per pass,
// which dependency facts were already visible. The log is the order probe:
// facts must have arrived from every direct dependency by the time the
// dependent package is analyzed.
func factTracer(log *[]string) *analysis.Analyzer {
	return &analysis.Analyzer{
		Name:      "facttrace",
		Doc:       "traces fact propagation order",
		FactTypes: []analysis.Fact{new(markFact)},
		Run: func(p *analysis.Pass) error {
			*log = append(*log, "visit "+p.Pkg.Name())
			for _, dep := range p.Pkg.Imports() {
				tok := dep.Scope().Lookup("Token")
				var f markFact
				if tok != nil && p.ImportObjectFact(tok, &f) {
					*log = append(*log, fmt.Sprintf("%s sees %s", p.Pkg.Name(), f.Label))
				}
			}
			if tok := p.Pkg.Scope().Lookup("Token"); tok != nil {
				p.ExportObjectFact(tok, &markFact{Label: p.Pkg.Name()})
				p.Reportf(tok.Pos(), "token in %s", p.Pkg.Name())
			}
			return nil
		},
	}
}

// TestFactsDiamondOrder proves facts flow in dependency order across a
// three-level diamond, deterministically across runs: every pass sees the
// facts of all its direct dependencies, and repeated runs produce an
// identical schedule.
func TestFactsDiamondOrder(t *testing.T) {
	dir := writeDiamond(t)

	var first []string
	for run := 0; run < 3; run++ {
		var log []string
		findings, err := analysis.RunPatterns(dir, []string{"./..."}, []*analysis.Analyzer{factTracer(&log)})
		if err != nil {
			t.Fatal(err)
		}
		for _, want := range []string{"b sees d", "c sees d", "a sees b", "a sees c"} {
			if !slices.Contains(log, want) {
				t.Errorf("run %d: log %v missing %q", run, log, want)
			}
		}
		idx := func(s string) int { return slices.Index(log, s) }
		if idx("visit d") > idx("visit b") || idx("visit d") > idx("visit c") {
			t.Errorf("run %d: d analyzed after a dependent: %v", run, log)
		}
		if idx("visit b") > idx("visit a") || idx("visit c") > idx("visit a") {
			t.Errorf("run %d: a analyzed before a dependency: %v", run, log)
		}
		if len(findings) != 4 {
			t.Errorf("run %d: %d findings, want 4 (one Token per package)", run, len(findings))
		}
		if run == 0 {
			first = log
		} else if !slices.Equal(log, first) {
			t.Errorf("run %d schedule differs:\n  first: %v\n  now:   %v", run, first, log)
		}
	}
}

// TestFactsDependencyOnlyPasses pins the fact-analyzer schedule for
// dependency-only packages: targeting just fix/a still runs the analyzer
// over b, c and d (their facts must exist), but their diagnostics are
// discarded — only the target reports.
func TestFactsDependencyOnlyPasses(t *testing.T) {
	dir := writeDiamond(t)

	var log []string
	findings, err := analysis.RunPatterns(dir, []string{"./a"}, []*analysis.Analyzer{factTracer(&log)})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"visit d", "visit b", "visit c", "a sees b", "a sees c"} {
		if !slices.Contains(log, want) {
			t.Errorf("log %v missing %q", log, want)
		}
	}
	if len(findings) != 1 || !strings.Contains(findings[0].Message, "token in a") {
		t.Errorf("findings = %v; want exactly a's own token diagnostic", findings)
	}
}

// TestMainJSON pins the -json contract: NDJSON, one object per finding,
// suppressed findings included and flagged, exit code driven only by the
// unsuppressed ones.
func TestMainJSON(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module fix\n\ngo 1.22\n")
	writeFile(t, filepath.Join(dir, "a.go"), `package fix

var A = 1

var B = 2 //stash:ignore noisy fixture: keeps the suppressed path in view
`)
	t.Chdir(dir)

	noisy := &analysis.Analyzer{
		Name: "noisy",
		Doc:  "flags every var",
		Run: func(p *analysis.Pass) error {
			for _, f := range p.Files {
				for _, d := range f.Decls {
					p.Reportf(d.Pos(), "flagged")
				}
			}
			return nil
		},
	}

	var out strings.Builder
	if code := analysis.MainJSON(&out, []*analysis.Analyzer{noisy}, []string{"./..."}); code != 1 {
		t.Fatalf("exit %d, want 1 (line 3 is unsuppressed)", code)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("%d JSON lines, want 2:\n%s", len(lines), out.String())
	}
	type diag struct {
		File       string `json:"file"`
		Line       int    `json:"line"`
		Col        int    `json:"col"`
		Analyzer   string `json:"analyzer"`
		Message    string `json:"message"`
		Suppressed bool   `json:"suppressed"`
	}
	var ds []diag
	for _, l := range lines {
		var d diag
		if err := json.Unmarshal([]byte(l), &d); err != nil {
			t.Fatalf("bad JSON line %q: %v", l, err)
		}
		ds = append(ds, d)
	}
	if ds[0].Line != 3 || ds[0].Suppressed || ds[0].Analyzer != "noisy" || ds[0].Message != "flagged" {
		t.Errorf("first line = %+v; want unsuppressed noisy finding at line 3", ds[0])
	}
	if ds[1].Line != 5 || !ds[1].Suppressed {
		t.Errorf("second line = %+v; want suppressed finding at line 5", ds[1])
	}

	// All findings suppressed: lines still emitted, exit goes green.
	writeFile(t, filepath.Join(dir, "a.go"), `package fix

var A = 1 //stash:ignore noisy fixture: fully suppressed tree
`)
	out.Reset()
	if code := analysis.MainJSON(&out, []*analysis.Analyzer{noisy}, []string{"./..."}); code != 0 {
		t.Errorf("fully suppressed run: exit %d, want 0 (output: %s)", code, out.String())
	}
	if !strings.Contains(out.String(), `"suppressed":true`) {
		t.Errorf("suppressed finding missing from JSON output: %s", out.String())
	}
}
