package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"io"
	"sort"
	"strings"

	"repro/internal/analysis/load"
)

// Finding is one resolved diagnostic: position plus the analyzer that
// produced it. Suppressed marks findings covered by a //stash:ignore
// directive; they are withheld from the default output and the exit code
// but surface in -json mode so CI can audit what the escapes are hiding.
type Finding struct {
	Position   token.Position
	Analyzer   string
	Message    string
	Suppressed bool
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Position, f.Analyzer, f.Message)
}

// RunPatterns loads patterns relative to dir, runs every analyzer over each
// target package it applies to, and returns the surviving findings sorted by
// position. //stash:ignore directives suppress findings; malformed or unused
// suppressions are themselves findings, so the escape hatch cannot rot
// silently.
func RunPatterns(dir string, patterns []string, analyzers []*Analyzer) ([]Finding, error) {
	res, err := load.Load(dir, patterns)
	if err != nil {
		return nil, err
	}
	return RunLoaded(res, analyzers)
}

// RunLoaded runs the analyzers over an already-loaded result, returning the
// surviving (unsuppressed) findings. The analysistest harness uses it to
// share the suppression and reporting logic with the command-line driver.
func RunLoaded(res *load.Result, analyzers []*Analyzer) ([]Finding, error) {
	all, err := RunLoadedDetail(res, analyzers)
	if err != nil {
		return nil, err
	}
	out := all[:0]
	for _, f := range all {
		if !f.Suppressed {
			out = append(out, f)
		}
	}
	return out, nil
}

// RunLoadedDetail is RunLoaded including the suppressed findings, each
// flagged Suppressed — the feed for stashvet -json.
//
// Scheduling: packages are visited in the loader's dependency order
// (dependencies before dependents). An analyzer without FactTypes runs only
// on target packages, as before. An analyzer with FactTypes additionally
// runs on every dependency-only module package it applies to, with its
// diagnostics discarded, so its facts are complete by the time the targets
// are analyzed.
func RunLoadedDetail(res *load.Result, analyzers []*Analyzer) ([]Finding, error) {
	universe := make([]*PackageInfo, 0, len(res.Packages))
	for _, p := range res.Packages {
		universe = append(universe, &PackageInfo{Pkg: p.Types, Files: p.Files, Info: p.Info})
	}
	facts := map[*Analyzer]*factSet{}
	for _, a := range analyzers {
		if len(a.FactTypes) > 0 {
			facts[a] = newFactSet(a)
		}
	}

	var findings []Finding
	for _, p := range res.Packages {
		var sup *suppressions
		ran := map[string]bool{}
		if p.Target {
			sup = newSuppressions(res.Fset, p.Files)
		}
		for _, a := range analyzers {
			if a.AppliesTo != nil && !a.AppliesTo(p.PkgPath) {
				continue
			}
			if !p.Target && facts[a] == nil {
				continue
			}
			target := p.Target
			if target {
				ran[a.Name] = true
			}
			pass := &Pass{
				Analyzer:  a,
				Fset:      res.Fset,
				Pkg:       p.Types,
				Files:     p.Files,
				TypesInfo: p.Info,
				Universe:  universe,
				facts:     facts[a],
				Report: func(d Diagnostic) {
					if !target {
						return
					}
					pos := res.Fset.Position(d.Pos)
					findings = append(findings, Finding{
						Position:   pos,
						Analyzer:   a.Name,
						Message:    d.Message,
						Suppressed: sup.suppresses(a.Name, pos),
					})
				},
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %v", a.Name, p.PkgPath, err)
			}
		}
		if p.Target {
			findings = append(findings, sup.problems(ran)...)
		}
	}

	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}

// Filter narrows analyzers to the comma-separated names in sel, preserving
// registration order. An empty sel keeps every analyzer; an unknown name is
// an error listing what exists, so a typo cannot silently skip a check.
func Filter(analyzers []*Analyzer, sel string) ([]*Analyzer, error) {
	if sel == "" {
		return analyzers, nil
	}
	byName := map[string]*Analyzer{}
	known := make([]string, 0, len(analyzers))
	for _, a := range analyzers {
		byName[a.Name] = a
		known = append(known, a.Name)
	}
	want := map[string]bool{}
	for _, name := range strings.Split(sel, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if byName[name] == nil {
			return nil, fmt.Errorf("unknown analyzer %q (have %s)", name, strings.Join(known, ", "))
		}
		want[name] = true
	}
	var out []*Analyzer
	for _, a := range analyzers {
		if want[a.Name] {
			out = append(out, a)
		}
	}
	return out, nil
}

// MainConfig configures the command-line driver front end shared by Main,
// MainJSON and MainWith.
type MainConfig struct {
	// Format selects the output rendering: "" or "text" (one finding per
	// line, suppressed findings withheld), "json" (NDJSON, suppressed
	// findings included and flagged), or "sarif" (a SARIF 2.1.0 log,
	// suppressed findings included with an inSource suppression).
	Format string
	// BudgetFile, when nonempty, additionally enforces the repo's
	// directive budgets (see budget.go) against the counts committed in
	// that file. Exceeding any budget exits 3, distinct from analyzer
	// findings (1) and load errors (2).
	BudgetFile string
}

// Main is the plain-text cmd/stashvet entry point: run the analyzers over
// the patterns (default ./...) and print findings. It returns the process
// exit code.
func Main(out io.Writer, analyzers []*Analyzer, args []string) int {
	return MainWith(out, analyzers, MainConfig{}, args)
}

// MainJSON is Main with NDJSON output: one diagnostic per line, suppressed
// findings included and flagged, so CI can annotate PRs. The exit code is
// unchanged from Main — only unsuppressed findings fail the run.
func MainJSON(out io.Writer, analyzers []*Analyzer, args []string) int {
	return MainWith(out, analyzers, MainConfig{Format: "json"}, args)
}

// jsonFinding is the stable -json line schema.
type jsonFinding struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Analyzer   string `json:"analyzer"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
}

// MainWith is the configurable driver entry point. Exit codes: 0 clean, 1
// unsuppressed findings, 2 load/usage errors, 3 a directive budget was
// exceeded (budget enforcement runs even when findings were reported, and
// its exit code wins: a budget breach is a reviewed-change gate, not a
// code diagnostic).
func MainWith(out io.Writer, analyzers []*Analyzer, cfg MainConfig, args []string) int {
	patterns := args
	root, err := load.ModuleDir(".")
	if err != nil {
		fmt.Fprintln(out, err)
		return 2
	}
	res, err := load.Load(root, patterns)
	if err != nil {
		fmt.Fprintln(out, err)
		return 2
	}
	findings, err := RunLoadedDetail(res, analyzers)
	if err != nil {
		fmt.Fprintln(out, err)
		return 2
	}
	exit := 0
	for _, f := range findings {
		if !f.Suppressed {
			exit = 1
		}
	}
	switch cfg.Format {
	case "", "text":
		for _, f := range findings {
			if !f.Suppressed {
				fmt.Fprintln(out, f)
			}
		}
	case "json":
		enc := json.NewEncoder(out)
		for _, f := range findings {
			enc.Encode(jsonFinding{
				File:       f.Position.Filename,
				Line:       f.Position.Line,
				Col:        f.Position.Column,
				Analyzer:   f.Analyzer,
				Message:    f.Message,
				Suppressed: f.Suppressed,
			})
		}
	case "sarif":
		if err := writeSARIF(out, analyzers, findings); err != nil {
			fmt.Fprintln(out, err)
			return 2
		}
	default:
		fmt.Fprintf(out, "unknown output format %q (want text, json or sarif)\n", cfg.Format)
		return 2
	}
	if cfg.BudgetFile != "" {
		over, err := enforceBudgets(out, root, cfg.BudgetFile)
		if err != nil {
			fmt.Fprintln(out, err)
			return 2
		}
		if over {
			exit = 3
		}
	}
	return exit
}

// suppression is one parsed //stash:ignore directive.
type suppression struct {
	pos      token.Position
	analyzer string // analyzer name or "all"
	reason   string
	used     bool
}

// suppressions indexes a package's ignore directives by file and line.
type suppressions struct {
	byLine map[string]map[int][]*suppression
	all    []*suppression
}

func newSuppressions(fset *token.FileSet, files []*ast.File) *suppressions {
	s := &suppressions{byLine: map[string]map[int][]*suppression{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d, ok := ParseDirective(c.Text)
				if !ok || d.Verb != DirectiveIgnore {
					continue
				}
				name, reason, _ := strings.Cut(d.Args, " ")
				pos := fset.Position(c.Pos())
				sp := &suppression{pos: pos, analyzer: name, reason: strings.TrimSpace(reason)}
				lines := s.byLine[pos.Filename]
				if lines == nil {
					lines = map[int][]*suppression{}
					s.byLine[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], sp)
				s.all = append(s.all, sp)
			}
		}
	}
	return s
}

// suppresses reports whether a finding by analyzer at pos is covered by an
// ignore directive on the same line or the line directly above, and marks
// the directive used.
func (s *suppressions) suppresses(analyzer string, pos token.Position) bool {
	lines := s.byLine[pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range [2]int{pos.Line, pos.Line - 1} {
		for _, sp := range lines[line] {
			if sp.analyzer == analyzer || sp.analyzer == "all" {
				sp.used = true
				return true
			}
		}
	}
	return false
}

// problems reports malformed ignore directives (no analyzer or no reason)
// and directives naming an analyzer that ran but suppressed nothing — a sign
// the underlying issue was fixed and the escape hatch should go.
func (s *suppressions) problems(ran map[string]bool) []Finding {
	var out []Finding
	for _, sp := range s.all {
		switch {
		case sp.analyzer == "" || sp.reason == "":
			out = append(out, Finding{
				Position: sp.pos,
				Analyzer: "stashvet",
				Message:  "malformed //stash:ignore: want \"//stash:ignore <analyzer> <reason>\"",
			})
		case !sp.used && (ran[sp.analyzer] || sp.analyzer == "all"):
			out = append(out, Finding{
				Position: sp.pos,
				Analyzer: "stashvet",
				Message:  fmt.Sprintf("unused //stash:ignore %s: nothing suppressed here; remove it", sp.analyzer),
			})
		}
	}
	return out
}
