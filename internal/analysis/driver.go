package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"io"
	"sort"
	"strings"

	"repro/internal/analysis/load"
)

// Finding is one resolved diagnostic: position plus the analyzer that
// produced it.
type Finding struct {
	Position token.Position
	Analyzer string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Position, f.Analyzer, f.Message)
}

// RunPatterns loads patterns relative to dir, runs every analyzer over each
// target package it applies to, and returns the surviving findings sorted by
// position. //stash:ignore directives suppress findings; malformed or unused
// suppressions are themselves findings, so the escape hatch cannot rot
// silently.
func RunPatterns(dir string, patterns []string, analyzers []*Analyzer) ([]Finding, error) {
	res, err := load.Load(dir, patterns)
	if err != nil {
		return nil, err
	}
	return RunLoaded(res, analyzers)
}

// RunLoaded runs the analyzers over an already-loaded result. The
// analysistest harness uses it to share the suppression and reporting logic
// with the command-line driver.
func RunLoaded(res *load.Result, analyzers []*Analyzer) ([]Finding, error) {
	universe := make([]*PackageInfo, 0, len(res.Packages))
	for _, p := range res.Packages {
		universe = append(universe, &PackageInfo{Pkg: p.Types, Files: p.Files, Info: p.Info})
	}

	var findings []Finding
	for _, p := range res.Packages {
		if !p.Target {
			continue
		}
		sup := newSuppressions(res.Fset, p.Files)
		ran := map[string]bool{}
		for _, a := range analyzers {
			if a.AppliesTo != nil && !a.AppliesTo(p.PkgPath) {
				continue
			}
			ran[a.Name] = true
			pass := &Pass{
				Analyzer:  a,
				Fset:      res.Fset,
				Pkg:       p.Types,
				Files:     p.Files,
				TypesInfo: p.Info,
				Universe:  universe,
				Report: func(d Diagnostic) {
					pos := res.Fset.Position(d.Pos)
					if sup.suppresses(a.Name, pos) {
						return
					}
					findings = append(findings, Finding{Position: pos, Analyzer: a.Name, Message: d.Message})
				},
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %v", a.Name, p.PkgPath, err)
			}
		}
		findings = append(findings, sup.problems(ran)...)
	}

	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}

// Filter narrows analyzers to the comma-separated names in sel, preserving
// registration order. An empty sel keeps every analyzer; an unknown name is
// an error listing what exists, so a typo cannot silently skip a check.
func Filter(analyzers []*Analyzer, sel string) ([]*Analyzer, error) {
	if sel == "" {
		return analyzers, nil
	}
	byName := map[string]*Analyzer{}
	known := make([]string, 0, len(analyzers))
	for _, a := range analyzers {
		byName[a.Name] = a
		known = append(known, a.Name)
	}
	want := map[string]bool{}
	for _, name := range strings.Split(sel, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if byName[name] == nil {
			return nil, fmt.Errorf("unknown analyzer %q (have %s)", name, strings.Join(known, ", "))
		}
		want[name] = true
	}
	var out []*Analyzer
	for _, a := range analyzers {
		if want[a.Name] {
			out = append(out, a)
		}
	}
	return out, nil
}

// Main is the cmd/stashvet entry point: run the analyzers over the patterns
// (default ./...) and print findings. It returns the process exit code.
func Main(out io.Writer, analyzers []*Analyzer, args []string) int {
	patterns := args
	root, err := load.ModuleDir(".")
	if err != nil {
		fmt.Fprintln(out, err)
		return 2
	}
	findings, err := RunPatterns(root, patterns, analyzers)
	if err != nil {
		fmt.Fprintln(out, err)
		return 2
	}
	for _, f := range findings {
		fmt.Fprintln(out, f)
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// suppression is one parsed //stash:ignore directive.
type suppression struct {
	pos      token.Position
	analyzer string // analyzer name or "all"
	reason   string
	used     bool
}

// suppressions indexes a package's ignore directives by file and line.
type suppressions struct {
	byLine map[string]map[int][]*suppression
	all    []*suppression
}

func newSuppressions(fset *token.FileSet, files []*ast.File) *suppressions {
	s := &suppressions{byLine: map[string]map[int][]*suppression{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d, ok := ParseDirective(c.Text)
				if !ok || d.Verb != DirectiveIgnore {
					continue
				}
				name, reason, _ := strings.Cut(d.Args, " ")
				pos := fset.Position(c.Pos())
				sp := &suppression{pos: pos, analyzer: name, reason: strings.TrimSpace(reason)}
				lines := s.byLine[pos.Filename]
				if lines == nil {
					lines = map[int][]*suppression{}
					s.byLine[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], sp)
				s.all = append(s.all, sp)
			}
		}
	}
	return s
}

// suppresses reports whether a finding by analyzer at pos is covered by an
// ignore directive on the same line or the line directly above, and marks
// the directive used.
func (s *suppressions) suppresses(analyzer string, pos token.Position) bool {
	lines := s.byLine[pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range [2]int{pos.Line, pos.Line - 1} {
		for _, sp := range lines[line] {
			if sp.analyzer == analyzer || sp.analyzer == "all" {
				sp.used = true
				return true
			}
		}
	}
	return false
}

// problems reports malformed ignore directives (no analyzer or no reason)
// and directives naming an analyzer that ran but suppressed nothing — a sign
// the underlying issue was fixed and the escape hatch should go.
func (s *suppressions) problems(ran map[string]bool) []Finding {
	var out []Finding
	for _, sp := range s.all {
		switch {
		case sp.analyzer == "" || sp.reason == "":
			out = append(out, Finding{
				Position: sp.pos,
				Analyzer: "stashvet",
				Message:  "malformed //stash:ignore: want \"//stash:ignore <analyzer> <reason>\"",
			})
		case !sp.used && (ran[sp.analyzer] || sp.analyzer == "all"):
			out = append(out, Finding{
				Position: sp.pos,
				Analyzer: "stashvet",
				Message:  fmt.Sprintf("unused //stash:ignore %s: nothing suppressed here; remove it", sp.analyzer),
			})
		}
	}
	return out
}
