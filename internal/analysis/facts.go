package analysis

import (
	"fmt"
	"go/types"
	"reflect"
	"sort"
)

// This file is the cross-package facts layer: the x/tools Fact vocabulary
// (ExportObjectFact / ImportObjectFact and the package-level pair),
// reimplemented in memory for the stashvet driver. An analyzer that declares
// FactTypes runs over every module package it applies to — dependencies
// before dependents, the order `go list -deps` already guarantees — and may
// attach typed facts to objects and packages as it goes. A later pass over
// an importing package reads those facts back, which is what lets sharecheck
// and atomiccheck reason interprocedurally (a handler in internal/coherence
// calling into internal/noc sees noc's per-function write summaries) without
// any whole-program SSA.
//
// Differences from golang.org/x/tools/go/analysis, all consequences of the
// single-process driver:
//
//   - facts are plain Go values held in memory for the duration of one run;
//     there is no gob serialization and no fact cache between runs,
//   - facts flow strictly forward along the dependency order: a pass can
//     read facts of the packages it imports, never of its importers,
//   - fact types must be pointers and must be registered in the analyzer's
//     FactTypes; violations are programming errors and panic.

// Fact is a typed datum attached to an object or package by one analyzer
// pass and visible to passes over importing packages. Implementations must
// be pointer types; the AFact marker method keeps accidental types out.
type Fact interface{ AFact() }

// ObjectFact is one (object, fact) pair, as enumerated by AllObjectFacts.
type ObjectFact struct {
	Object types.Object
	Fact   Fact
}

// PackageFact is one (package, fact) pair, as enumerated by AllPackageFacts.
type PackageFact struct {
	Package *types.Package
	Fact    Fact
}

// factSet is one analyzer's accumulated facts across a whole run. The
// driver creates one per fact-declaring analyzer and threads it through
// every pass, so facts exported while analyzing a dependency are visible
// while analyzing its dependents.
type factSet struct {
	analyzer string
	allowed  map[reflect.Type]bool
	obj      map[types.Object]map[reflect.Type]Fact
	pkg      map[*types.Package]map[reflect.Type]Fact
}

func newFactSet(a *Analyzer) *factSet {
	fs := &factSet{
		analyzer: a.Name,
		allowed:  make(map[reflect.Type]bool, len(a.FactTypes)),
		obj:      map[types.Object]map[reflect.Type]Fact{},
		pkg:      map[*types.Package]map[reflect.Type]Fact{},
	}
	for _, f := range a.FactTypes {
		t := reflect.TypeOf(f)
		if t == nil || t.Kind() != reflect.Pointer {
			panic(fmt.Sprintf("analysis: %s: FactTypes entry %T is not a pointer type", a.Name, f))
		}
		fs.allowed[t] = true
	}
	return fs
}

// checkFactType validates that fact is a registered pointer type.
func (fs *factSet) checkFactType(fact Fact) reflect.Type {
	t := reflect.TypeOf(fact)
	if !fs.allowed[t] {
		panic(fmt.Sprintf("analysis: %s: fact type %T not declared in FactTypes", fs.analyzer, fact))
	}
	return t
}

// ExportObjectFact attaches fact to obj, replacing any existing fact of the
// same type. obj must belong to the package under analysis — facts describe
// what a package knows about its own declarations; importers read, they do
// not write.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	fs := p.factSet()
	t := fs.checkFactType(fact)
	if obj == nil || obj.Pkg() != p.Pkg {
		panic(fmt.Sprintf("analysis: %s: ExportObjectFact: object %v does not belong to package %v",
			fs.analyzer, obj, p.Pkg))
	}
	m := fs.obj[obj]
	if m == nil {
		m = map[reflect.Type]Fact{}
		fs.obj[obj] = m
	}
	m[t] = fact
}

// ImportObjectFact copies the fact of ptr's type attached to obj into ptr,
// reporting whether one was found. obj may belong to any package analyzed
// earlier in the run (or the current one).
func (p *Pass) ImportObjectFact(obj types.Object, ptr Fact) bool {
	fs := p.factSet()
	t := fs.checkFactType(ptr)
	got, ok := fs.obj[obj][t]
	if !ok {
		return false
	}
	// Copy out so the importer cannot mutate the stored fact.
	reflect.ValueOf(ptr).Elem().Set(reflect.ValueOf(got).Elem())
	return true
}

// ExportPackageFact attaches fact to the package under analysis, replacing
// any existing fact of the same type.
func (p *Pass) ExportPackageFact(fact Fact) {
	fs := p.factSet()
	t := fs.checkFactType(fact)
	m := fs.pkg[p.Pkg]
	if m == nil {
		m = map[reflect.Type]Fact{}
		fs.pkg[p.Pkg] = m
	}
	m[t] = fact
}

// ImportPackageFact copies the fact of ptr's type attached to pkg into ptr,
// reporting whether one was found.
func (p *Pass) ImportPackageFact(pkg *types.Package, ptr Fact) bool {
	fs := p.factSet()
	t := fs.checkFactType(ptr)
	got, ok := fs.pkg[pkg][t]
	if !ok {
		return false
	}
	reflect.ValueOf(ptr).Elem().Set(reflect.ValueOf(got).Elem())
	return true
}

// AllObjectFacts returns every object fact accumulated so far, in a
// deterministic order (object position, then fact type name) so tests and
// debugging output are stable across runs.
func (p *Pass) AllObjectFacts() []ObjectFact {
	fs := p.factSet()
	var out []ObjectFact
	for obj, m := range fs.obj {
		for _, f := range m {
			out = append(out, ObjectFact{Object: obj, Fact: f})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		oi, oj := out[i].Object, out[j].Object
		if oi.Pos() != oj.Pos() {
			return oi.Pos() < oj.Pos()
		}
		return reflect.TypeOf(out[i].Fact).String() < reflect.TypeOf(out[j].Fact).String()
	})
	return out
}

// AllPackageFacts returns every package fact accumulated so far, ordered by
// package path then fact type name.
func (p *Pass) AllPackageFacts() []PackageFact {
	fs := p.factSet()
	var out []PackageFact
	for pkg, m := range fs.pkg {
		for _, f := range m {
			out = append(out, PackageFact{Package: pkg, Fact: f})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		pi, pj := out[i].Package.Path(), out[j].Package.Path()
		if pi != pj {
			return pi < pj
		}
		return reflect.TypeOf(out[i].Fact).String() < reflect.TypeOf(out[j].Fact).String()
	})
	return out
}

// factSet returns the pass's fact store, panicking with a usable message
// when the analyzer declared no FactTypes (facts must be declared up front
// so the driver knows to run the analyzer over dependency packages too).
func (p *Pass) factSet() *factSet {
	if p.facts == nil {
		panic(fmt.Sprintf("analysis: %s: fact API used but Analyzer.FactTypes is empty", p.Analyzer.Name))
	}
	return p.facts
}
