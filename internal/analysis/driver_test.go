package analysis_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// TestSuppressionHygiene checks that the driver reports ignore directives
// that are malformed (missing analyzer or reason) or that suppress nothing,
// and stays quiet about directives naming analyzers that did not run.
func TestSuppressionHygiene(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module fix\n\ngo 1.22\n")
	writeFile(t, filepath.Join(dir, "a.go"), `package fix

//stash:ignore noop justified but nothing fires on this line
var A = 1

//stash:ignore noop
var B = 2

//stash:ignore
var C = 3

//stash:ignore ghost analyzer not in this run
var D = 4
`)

	noop := &analysis.Analyzer{
		Name: "noop",
		Doc:  "reports nothing",
		Run:  func(*analysis.Pass) error { return nil },
	}
	findings, err := analysis.RunPatterns(dir, []string{"."}, []*analysis.Analyzer{noop})
	if err != nil {
		t.Fatal(err)
	}

	wantSubstrings := map[int]string{
		3: "unused //stash:ignore noop",
		6: "malformed //stash:ignore",
		9: "malformed //stash:ignore",
	}
	for _, f := range findings {
		want, ok := wantSubstrings[f.Position.Line]
		if !ok {
			t.Errorf("unexpected finding: %s", f)
			continue
		}
		if !strings.Contains(f.Message, want) {
			t.Errorf("line %d: message %q does not contain %q", f.Position.Line, f.Message, want)
		}
		delete(wantSubstrings, f.Position.Line)
	}
	for line, want := range wantSubstrings {
		t.Errorf("line %d: missing finding containing %q", line, want)
	}
}

// TestMainExitCodes pins the cmd/stashvet contract the Makefile relies on:
// exit 0 when clean, 1 when any analyzer reports, 2 when the load fails.
func TestMainExitCodes(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module fix\n\ngo 1.22\n")
	writeFile(t, filepath.Join(dir, "a.go"), "package fix\n\nvar A = 1\n")
	t.Chdir(dir)

	quiet := &analysis.Analyzer{
		Name: "quiet",
		Doc:  "reports nothing",
		Run:  func(*analysis.Pass) error { return nil },
	}
	noisy := &analysis.Analyzer{
		Name: "noisy",
		Doc:  "flags every file",
		Run: func(p *analysis.Pass) error {
			for _, f := range p.Files {
				p.Reportf(f.Pos(), "flagged")
			}
			return nil
		},
	}

	var out strings.Builder
	if code := analysis.Main(&out, []*analysis.Analyzer{quiet}, []string{"./..."}); code != 0 {
		t.Errorf("clean run: exit %d, want 0 (output: %s)", code, out.String())
	}
	out.Reset()
	if code := analysis.Main(&out, []*analysis.Analyzer{noisy}, []string{"./..."}); code != 1 {
		t.Errorf("run with findings: exit %d, want 1", code)
	}
	if !strings.Contains(out.String(), "[noisy] flagged") {
		t.Errorf("finding not printed: %q", out.String())
	}
	out.Reset()
	if code := analysis.Main(&out, []*analysis.Analyzer{quiet}, []string{"./no/such/dir"}); code != 2 {
		t.Errorf("bad pattern: exit %d, want 2 (output: %s)", code, out.String())
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
