package analysis_test

import (
	"fmt"
	"go/ast"
	"os"
	"path/filepath"
	"slices"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// TestSuppressionHygiene checks that the driver reports ignore directives
// that are malformed (missing analyzer or reason) or that suppress nothing,
// and stays quiet about directives naming analyzers that did not run.
func TestSuppressionHygiene(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module fix\n\ngo 1.22\n")
	writeFile(t, filepath.Join(dir, "a.go"), `package fix

//stash:ignore noop justified but nothing fires on this line
var A = 1

//stash:ignore noop
var B = 2

//stash:ignore
var C = 3

//stash:ignore ghost analyzer not in this run
var D = 4
`)

	noop := &analysis.Analyzer{
		Name: "noop",
		Doc:  "reports nothing",
		Run:  func(*analysis.Pass) error { return nil },
	}
	findings, err := analysis.RunPatterns(dir, []string{"."}, []*analysis.Analyzer{noop})
	if err != nil {
		t.Fatal(err)
	}

	wantSubstrings := map[int]string{
		3: "unused //stash:ignore noop",
		6: "malformed //stash:ignore",
		9: "malformed //stash:ignore",
	}
	for _, f := range findings {
		want, ok := wantSubstrings[f.Position.Line]
		if !ok {
			t.Errorf("unexpected finding: %s", f)
			continue
		}
		if !strings.Contains(f.Message, want) {
			t.Errorf("line %d: message %q does not contain %q", f.Position.Line, f.Message, want)
		}
		delete(wantSubstrings, f.Position.Line)
	}
	for line, want := range wantSubstrings {
		t.Errorf("line %d: missing finding containing %q", line, want)
	}
}

// TestMainExitCodes pins the cmd/stashvet contract the Makefile relies on:
// exit 0 when clean, 1 when any analyzer reports, 2 when the load fails.
func TestMainExitCodes(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module fix\n\ngo 1.22\n")
	writeFile(t, filepath.Join(dir, "a.go"), "package fix\n\nvar A = 1\n")
	t.Chdir(dir)

	quiet := &analysis.Analyzer{
		Name: "quiet",
		Doc:  "reports nothing",
		Run:  func(*analysis.Pass) error { return nil },
	}
	noisy := &analysis.Analyzer{
		Name: "noisy",
		Doc:  "flags every file",
		Run: func(p *analysis.Pass) error {
			for _, f := range p.Files {
				p.Reportf(f.Pos(), "flagged")
			}
			return nil
		},
	}

	var out strings.Builder
	if code := analysis.Main(&out, []*analysis.Analyzer{quiet}, []string{"./..."}); code != 0 {
		t.Errorf("clean run: exit %d, want 0 (output: %s)", code, out.String())
	}
	out.Reset()
	if code := analysis.Main(&out, []*analysis.Analyzer{noisy}, []string{"./..."}); code != 1 {
		t.Errorf("run with findings: exit %d, want 1", code)
	}
	if !strings.Contains(out.String(), "[noisy] flagged") {
		t.Errorf("finding not printed: %q", out.String())
	}
	out.Reset()
	if code := analysis.Main(&out, []*analysis.Analyzer{quiet}, []string{"./no/such/dir"}); code != 2 {
		t.Errorf("bad pattern: exit %d, want 2 (output: %s)", code, out.String())
	}
}

// TestFilter pins the -run flag semantics: empty keeps all, a subset keeps
// registration order, an unknown name errors instead of silently skipping.
func TestFilter(t *testing.T) {
	mk := func(name string) *analysis.Analyzer {
		return &analysis.Analyzer{Name: name, Doc: name, Run: func(*analysis.Pass) error { return nil }}
	}
	all := []*analysis.Analyzer{mk("poolcheck"), mk("lockcheck"), mk("ctxcheck")}

	got, err := analysis.Filter(all, "")
	if err != nil || len(got) != 3 {
		t.Errorf("Filter(all, \"\") = %d analyzers, %v; want all 3, nil", len(got), err)
	}
	got, err = analysis.Filter(all, "ctxcheck, poolcheck")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Name != "poolcheck" || got[1].Name != "ctxcheck" {
		t.Errorf("Filter subset = %v; want [poolcheck ctxcheck] in registration order", names(got))
	}
	if _, err := analysis.Filter(all, "lockchek"); err == nil {
		t.Error("Filter with a misspelled analyzer: want error, got nil")
	} else if !strings.Contains(err.Error(), "lockchek") || !strings.Contains(err.Error(), "poolcheck") {
		t.Errorf("error %q should name the typo and the known analyzers", err)
	}
}

func names(as []*analysis.Analyzer) []string {
	var out []string
	for _, a := range as {
		out = append(out, a.Name)
	}
	return out
}

// TestRunSubsetExitCodes drives Main through Filter the way cmd/stashvet
// does: restricting the run to a quiet analyzer turns a failing tree green.
func TestRunSubsetExitCodes(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module fix\n\ngo 1.22\n")
	writeFile(t, filepath.Join(dir, "a.go"), "package fix\n\nvar A = 1\n")
	t.Chdir(dir)

	quiet := &analysis.Analyzer{
		Name: "quiet",
		Doc:  "reports nothing",
		Run:  func(*analysis.Pass) error { return nil },
	}
	noisy := &analysis.Analyzer{
		Name: "noisy",
		Doc:  "flags every file",
		Run: func(p *analysis.Pass) error {
			for _, f := range p.Files {
				p.Reportf(f.Pos(), "flagged")
			}
			return nil
		},
	}
	all := []*analysis.Analyzer{quiet, noisy}

	var out strings.Builder
	sel, err := analysis.Filter(all, "")
	if err != nil {
		t.Fatal(err)
	}
	if code := analysis.Main(&out, sel, []string{"./..."}); code != 1 {
		t.Errorf("full run: exit %d, want 1 (noisy fires)", code)
	}
	out.Reset()
	sel, err = analysis.Filter(all, "quiet")
	if err != nil {
		t.Fatal(err)
	}
	if code := analysis.Main(&out, sel, []string{"./..."}); code != 0 {
		t.Errorf("-run=quiet: exit %d, want 0 (output: %s)", code, out.String())
	}
}

// TestMultiAnalyzerInterleave runs two analyzers over one fixture and checks
// their findings interleave deterministically by file position, not by
// analyzer registration order.
func TestMultiAnalyzerInterleave(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module fix\n\ngo 1.22\n")
	writeFile(t, filepath.Join(dir, "a.go"), `package fix

var A = 1

var B = 2

var C = 3
`)

	flagger := func(name string, lines ...int) *analysis.Analyzer {
		return &analysis.Analyzer{
			Name: name,
			Doc:  "flags chosen lines",
			Run: func(p *analysis.Pass) error {
				for _, f := range p.Files {
					ast.Inspect(f, func(n ast.Node) bool {
						vs, ok := n.(*ast.ValueSpec)
						if !ok {
							return true
						}
						line := p.Fset.Position(vs.Pos()).Line
						for _, l := range lines {
							if line == l {
								p.Reportf(vs.Pos(), "hit")
							}
						}
						return true
					})
				}
				return nil
			},
		}
	}
	// alpha fires on the outer lines, omega on the middle one: sorted
	// output must sandwich omega between the alphas.
	alpha := flagger("alpha", 3, 7)
	omega := flagger("omega", 5)

	want := []string{"alpha:3", "omega:5", "alpha:7"}
	for run := 0; run < 3; run++ {
		findings, err := analysis.RunPatterns(dir, []string{"."}, []*analysis.Analyzer{omega, alpha})
		if err != nil {
			t.Fatal(err)
		}
		var got []string
		for _, f := range findings {
			got = append(got, fmt.Sprintf("%s:%d", f.Analyzer, f.Position.Line))
		}
		if !slices.Equal(got, want) {
			t.Fatalf("run %d: findings %v, want %v", run, got, want)
		}
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
