package load

import (
	"go/types"
	"testing"
)

// TestLoadModule loads the repo itself and checks that type information for
// both module packages and std-imported names resolved.
func TestLoadModule(t *testing.T) {
	root, err := ModuleDir(".")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Load(root, []string{"./internal/coherence", "./internal/noc"})
	if err != nil {
		t.Fatal(err)
	}
	byPath := map[string]*Package{}
	for _, p := range res.Packages {
		byPath[p.PkgPath] = p
	}
	coh, ok := byPath["repro/internal/coherence"]
	if !ok {
		t.Fatalf("coherence not loaded; got %v", keys(byPath))
	}
	if !coh.Target {
		t.Error("coherence should be a target package")
	}
	if dep, ok := byPath["repro/internal/sim"]; !ok {
		t.Error("dependency repro/internal/sim not loaded")
	} else if dep.Target {
		t.Error("sim is a dependency, not a target")
	}
	// The Fabric type must exist with its Engine field typed from the sim
	// dependency package.
	obj := coh.Types.Scope().Lookup("Fabric")
	if obj == nil {
		t.Fatal("coherence.Fabric not found")
	}
	st, ok := obj.Type().Underlying().(*types.Struct)
	if !ok {
		t.Fatalf("Fabric is %T, want struct", obj.Type().Underlying())
	}
	found := false
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == "Engine" {
			found = true
			if got := st.Field(i).Type().String(); got != "*repro/internal/sim.Engine" {
				t.Errorf("Engine field type = %s", got)
			}
		}
	}
	if !found {
		t.Error("Fabric.Engine field not found")
	}
	if len(coh.Files) == 0 || coh.Info == nil {
		t.Error("coherence syntax or type info missing")
	}
}

func keys(m map[string]*Package) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
