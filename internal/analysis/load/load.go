// Package load turns Go package patterns into fully type-checked syntax
// trees using only the standard library and the go tool itself — the
// offline substitute for golang.org/x/tools/go/packages that the stashvet
// analyzers run on.
//
// The loader shells out to `go list -e -deps -export -json`, which yields
// every package in the transitive closure in dependency order together with
// compiled export data. Packages of the module under analysis are parsed and
// type-checked from source (the analyzers need their syntax); everything
// else — the standard library — is imported from export data, which is both
// fast and exact.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded module package.
type Package struct {
	PkgPath string
	Dir     string
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
	// Target marks packages named by the load patterns (as opposed to
	// dependencies pulled in for type information only).
	Target bool
}

// Result is the outcome of a Load call.
type Result struct {
	Fset     *token.FileSet
	Packages []*Package // module packages, dependency order
}

// listedPkg mirrors the `go list -json` fields the loader consumes.
type listedPkg struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Imports    []string
	ImportMap  map[string]string
	Export     string
	Standard   bool
	DepOnly    bool
	Module     *struct{ Path, Dir string }
	Error      *struct{ Err string }
	Incomplete bool
}

// Load lists patterns from dir and type-checks every in-module package.
func Load(dir string, patterns []string) (*Result, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	imp := &moduleImporter{
		fset:    fset,
		exports: map[string]string{},
		mod:     map[string]*types.Package{},
	}
	for _, p := range pkgs {
		if p.Export != "" {
			imp.exports[p.ImportPath] = p.Export
		}
	}

	res := &Result{Fset: fset}
	// `go list -deps` emits dependencies before dependents, so a single
	// forward sweep type-checks every module package after its imports.
	for _, p := range pkgs {
		if p.Standard || p.Module == nil {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("load: %s: %s", p.ImportPath, p.Error.Err)
		}
		pkg, err := checkPackage(fset, imp, p)
		if err != nil {
			return nil, err
		}
		pkg.Target = !p.DepOnly
		imp.mod[p.ImportPath] = pkg.Types
		res.Packages = append(res.Packages, pkg)
	}
	if len(res.Packages) == 0 {
		return nil, fmt.Errorf("load: no module packages matched %v", patterns)
	}
	return res, nil
}

// goList runs `go list -e -deps -export -json` and decodes its stream.
func goList(dir string, patterns []string) ([]*listedPkg, error) {
	args := append([]string{"list", "-e", "-deps", "-export", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("load: go list: %v\n%s", err, stderr.String())
	}
	var pkgs []*listedPkg
	dec := json.NewDecoder(&stdout)
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("load: decoding go list output: %v", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// checkPackage parses and type-checks one module package from source.
func checkPackage(fset *token.FileSet, imp *moduleImporter, p *listedPkg) (*Package, error) {
	files := make([]*ast.File, 0, len(p.GoFiles))
	for _, name := range p.GoFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(p.Dir, name)
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("load: %s: %v", p.ImportPath, err)
		}
		f, err := parser.ParseFile(fset, path, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("load: %s: %v", p.ImportPath, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{
		Importer: imp.forPackage(p),
		// The go tool already vetted the build; keep going past errors a
		// partial load can recover from, but remember the first.
		Error: func(error) {},
	}
	tpkg, err := conf.Check(p.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("load: type-checking %s: %v", p.ImportPath, err)
	}
	return &Package{PkgPath: p.ImportPath, Dir: p.Dir, Files: files, Types: tpkg, Info: info}, nil
}

// moduleImporter resolves imports during module type-checking: module
// packages come from the already-checked set, everything else from the gc
// export data `go list -export` produced.
type moduleImporter struct {
	fset    *token.FileSet
	exports map[string]string         // import path -> export data file
	mod     map[string]*types.Package // checked module packages
	gc      types.Importer            // lazy gc export-data importer
}

// forPackage returns an importer view that applies p's ImportMap (vendored
// import rewrites) before resolving.
func (m *moduleImporter) forPackage(p *listedPkg) types.Importer {
	if len(p.ImportMap) == 0 {
		return m
	}
	return mappedImporter{m: m, importMap: p.ImportMap}
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := m.mod[path]; ok {
		return pkg, nil
	}
	if m.gc == nil {
		m.gc = importer.ForCompiler(m.fset, "gc", m.lookup)
	}
	return m.gc.Import(path)
}

// lookup feeds export data files to the gc importer.
func (m *moduleImporter) lookup(path string) (io.ReadCloser, error) {
	file, ok := m.exports[path]
	if !ok {
		return nil, fmt.Errorf("load: no export data for %q", path)
	}
	return os.Open(file)
}

type mappedImporter struct {
	m         *moduleImporter
	importMap map[string]string
}

func (mi mappedImporter) Import(path string) (*types.Package, error) {
	if real, ok := mi.importMap[path]; ok {
		path = real
	}
	return mi.m.Import(path)
}

// ModuleDir locates the enclosing module root of dir (the directory holding
// go.mod), so callers can run patterns from anywhere inside the module.
func ModuleDir(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		if d == filepath.Dir(d) {
			return "", fmt.Errorf("load: no go.mod above %s", strings.TrimSpace(abs))
		}
	}
}
