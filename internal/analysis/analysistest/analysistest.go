// Package analysistest runs an analyzer over fixture packages and checks its
// diagnostics against // want comments, in the style of
// golang.org/x/tools/go/analysis/analysistest.
//
// Fixtures live under the calling test's testdata directory, which must be a
// self-contained Go module (its own go.mod) so the loader's `go list` works
// on it; packages sit under testdata/src/ and are addressed by patterns like
// "./src/leak". A line expecting diagnostics carries a trailing comment
//
//	x := get() // want `leaked` `second regexp`
//
// with one regular expression (quoted or backquoted) per expected
// diagnostic. Diagnostics and wants must match one-to-one per line.
package analysistest

import (
	"go/ast"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
)

// want is one expected diagnostic.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// Run loads the fixture patterns from testdata, applies the analyzer (driver
// semantics: AppliesTo scoping and //stash:ignore suppression included), and
// reports any mismatch between findings and // want comments as test errors.
func Run(t *testing.T, a *analysis.Analyzer, patterns ...string) {
	t.Helper()
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	testdata := filepath.Join(cwd, "testdata")
	res, err := load.Load(testdata, patterns)
	if err != nil {
		t.Fatal(err)
	}
	findings, err := analysis.RunLoaded(res, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}

	var wants []*want
	for _, p := range res.Packages {
		if !p.Target {
			continue
		}
		for _, f := range p.Files {
			wants = append(wants, collectWants(t, res, f)...)
		}
	}

	for _, f := range findings {
		if w := match(wants, f); w == nil {
			t.Errorf("unexpected diagnostic at %s: [%s] %s", f.Position, f.Analyzer, f.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// match finds the first unmatched want on the finding's line whose pattern
// matches, and consumes it.
func match(wants []*want, f analysis.Finding) *want {
	for _, w := range wants {
		if !w.matched && w.file == f.Position.Filename && w.line == f.Position.Line && w.re.MatchString(f.Message) {
			w.matched = true
			return w
		}
	}
	return nil
}

// collectWants parses the // want comments of one file.
func collectWants(t *testing.T, res *load.Result, f *ast.File) []*want {
	t.Helper()
	var out []*want
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "// want ")
			if !ok {
				continue
			}
			pos := res.Fset.Position(c.Pos())
			for _, pat := range splitPatterns(text) {
				str, err := strconv.Unquote(pat)
				if err != nil {
					t.Fatalf("%s: bad want pattern %s: %v", pos, pat, err)
				}
				re, err := regexp.Compile(str)
				if err != nil {
					t.Fatalf("%s: bad want regexp %s: %v", pos, str, err)
				}
				out = append(out, &want{file: pos.Filename, line: pos.Line, re: re})
			}
		}
	}
	return out
}

// splitPatterns splits `"a b" `+"`c`"+` "d"` into its quoted tokens.
func splitPatterns(s string) []string {
	var out []string
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			return out
		}
		quote := s[0]
		if quote != '"' && quote != '`' {
			// Trailing prose after the patterns; ignore it.
			return out
		}
		end := strings.IndexByte(s[1:], quote)
		if end < 0 {
			return out
		}
		out = append(out, s[:end+2])
		s = s[end+2:]
	}
}
