// Package ctxcheck implements the stashvet analyzer for context propagation
// and cancellability in the concurrent service layer (internal/runner,
// internal/stashd). The service layer talks to clients that disconnect and
// servers that drain, so nothing in it may block unconditionally:
//
//   - every blocking operation — channel send, channel receive, range over a
//     channel, a select, sync.WaitGroup.Wait, sync.Cond.Wait — must either be
//     cancellable (a select with a ctx.Done() case or a default) or carry a
//     //stash:blocking <reason> exemption, on the operation's line, the line
//     above, or the enclosing function's doc comment (covering the body);
//   - context.Context, when a function takes one, must be the first
//     parameter;
//   - context.Context must not be stored in a struct field; a deliberate
//     exception (the runner's job execution context) carries a
//     //stash:ignore ctxcheck <reason>.
//
// Statements inside `go func() { ... }` bodies are out of scope here: a
// spawned goroutine's sends are the chanleak analyzer's domain, and its
// lifetime is its spawner's contract. The analysis is syntactic and
// intraprocedural — a call to a function that blocks internally is that
// function's finding, not the caller's.
package ctxcheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// servicePackages are the import-path suffixes the analyzer applies to.
var servicePackages = []string{
	"internal/runner",
	"internal/stashd",
	"internal/fleet",
}

// Analyzer is the context-propagation check.
var Analyzer = &analysis.Analyzer{
	Name: "ctxcheck",
	Doc: "require every blocking operation in the service layer to be cancellable " +
		"(select on ctx.Done()) or annotated //stash:blocking, context.Context first " +
		"in parameter lists and never stored in structs",
	AppliesTo: AppliesTo,
	Run:       run,
}

// AppliesTo scopes the analyzer to the service layer by import-path suffix,
// so fixture modules exercise the same rules.
func AppliesTo(pkgPath string) bool {
	for _, s := range servicePackages {
		if pkgPath == s || strings.HasSuffix(pkgPath, "/"+s) {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		dirs := collectBlocking(pass, file)
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			checkParams(pass, fd)
			if fd.Body == nil || analysis.HasDirective(fd.Doc, analysis.DirectiveBlocking) {
				continue
			}
			c := &checker{pass: pass, dirs: dirs}
			c.walk(fd.Body)
		}
		checkContextFields(pass, file)
		dirs.reportUnused(pass)
	}
	return nil
}

// blockingDirective is one line-level //stash:blocking exemption.
type blockingDirective struct {
	pos  token.Pos
	used bool
}

type blockingTable struct {
	byLine map[int]*blockingDirective
}

// collectBlocking indexes a file's line-level //stash:blocking directives,
// reporting malformed ones (no reason). Directives inside function doc
// comments are function-level and handled by the caller, not indexed here.
func collectBlocking(pass *analysis.Pass, file *ast.File) *blockingTable {
	inDoc := map[*ast.CommentGroup]bool{}
	for _, decl := range file.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Doc != nil {
			inDoc[fd.Doc] = true
		}
	}
	t := &blockingTable{byLine: map[int]*blockingDirective{}}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			d, ok := analysis.ParseDirective(c.Text)
			if !ok || d.Verb != analysis.DirectiveBlocking {
				continue
			}
			if d.Args == "" {
				pass.Reportf(c.Pos(), "malformed //stash:blocking: the reason is mandatory")
				continue
			}
			if inDoc[cg] {
				continue
			}
			t.byLine[pass.Fset.Position(c.Pos()).Line] = &blockingDirective{pos: c.Pos()}
		}
	}
	return t
}

// exempts marks and reports whether a blocking op at pos is covered by a
// directive on its line or the line above.
func (t *blockingTable) exempts(pass *analysis.Pass, pos token.Pos) bool {
	line := pass.Fset.Position(pos).Line
	for _, l := range [2]int{line, line - 1} {
		if d := t.byLine[l]; d != nil {
			d.used = true
			return true
		}
	}
	return false
}

// reportUnused flags directives that exempted nothing — the blocking op was
// fixed and the escape hatch should go.
func (t *blockingTable) reportUnused(pass *analysis.Pass) {
	for _, d := range t.byLine {
		if !d.used {
			pass.Reportf(d.pos, "unused //stash:blocking: nothing blocks on this or the next line; remove it")
		}
	}
}

// checkParams enforces context.Context as the first parameter.
func checkParams(pass *analysis.Pass, fd *ast.FuncDecl) {
	if fd.Type.Params == nil {
		return
	}
	idx := 0
	for _, fld := range fd.Type.Params.List {
		if idx > 0 && isContextType(pass.TypesInfo.Types[fld.Type].Type) {
			pass.Reportf(fld.Pos(), "context.Context must be the first parameter")
		}
		n := len(fld.Names)
		if n == 0 {
			n = 1
		}
		idx += n
	}
}

// checkContextFields flags context.Context struct fields; the runner's
// deliberate exception is suppressed with //stash:ignore ctxcheck.
func checkContextFields(pass *analysis.Pass, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		st, ok := n.(*ast.StructType)
		if !ok {
			return true
		}
		for _, fld := range st.Fields.List {
			if !isContextType(pass.TypesInfo.Types[fld.Type].Type) {
				continue
			}
			pass.Reportf(fld.Pos(), "context.Context stored in a struct: contexts are call-scoped; "+
				"pass one per operation (//stash:ignore ctxcheck <reason> if the field is deliberate)")
		}
		return true
	})
}

func isContextType(t types.Type) bool {
	return t != nil && t.String() == "context.Context"
}

// checker walks one function body for blocking operations.
type checker struct {
	pass *analysis.Pass
	dirs *blockingTable
}

func (c *checker) flag(pos token.Pos, what string) {
	if c.dirs.exempts(c.pass, pos) {
		return
	}
	c.pass.Reportf(pos, "blocking %s with no cancellation path: select on ctx.Done(), or annotate //stash:blocking <reason>", what)
}

func (c *checker) walk(n ast.Node) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			// The spawned body blocks on the goroutine's own time; its sends
			// are chanleak's domain. Arguments still evaluate here.
			for _, a := range n.Call.Args {
				c.walk(a)
			}
			if _, ok := n.Call.Fun.(*ast.FuncLit); !ok {
				c.walk(n.Call.Fun)
			}
			return false
		case *ast.SelectStmt:
			c.selectStmt(n)
			return false
		case *ast.SendStmt:
			c.flag(n.Pos(), "channel send")
			c.walk(n.Chan)
			c.walk(n.Value)
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				c.flag(n.Pos(), "channel receive")
				c.walk(n.X)
				return false
			}
		case *ast.RangeStmt:
			if t := c.pass.TypesInfo.Types[n.X].Type; t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					c.flag(n.Pos(), "range over a channel")
				}
			}
		case *ast.CallExpr:
			if name := waitCallName(c.pass.TypesInfo, n); name != "" {
				c.flag(n.Pos(), name)
			}
		}
		return true
	})
}

// selectStmt checks a select has an escape (default or ctx.Done case), then
// walks the case bodies; the comm operations themselves are the select's.
func (c *checker) selectStmt(st *ast.SelectStmt) {
	escaped := false
	for _, cl := range st.Body.List {
		cc, ok := cl.(*ast.CommClause)
		if !ok {
			continue
		}
		if cc.Comm == nil || c.commIsDone(cc.Comm) {
			escaped = true
		}
	}
	if !escaped {
		c.flag(st.Pos(), "select with no ctx.Done() case or default")
	}
	for _, cl := range st.Body.List {
		if cc, ok := cl.(*ast.CommClause); ok {
			for _, s := range cc.Body {
				c.walk(s)
			}
		}
	}
}

// commIsDone reports whether a select comm receives from a
// context.Context.Done() channel.
func (c *checker) commIsDone(comm ast.Stmt) bool {
	var x ast.Expr
	switch s := comm.(type) {
	case *ast.ExprStmt:
		x = s.X
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			x = s.Rhs[0]
		}
	}
	ue, ok := ast.Unparen(x).(*ast.UnaryExpr)
	if !ok || ue.Op != token.ARROW {
		return false
	}
	call, ok := ast.Unparen(ue.X).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := c.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	return ok && fn.Name() == "Done" && fn.Pkg() != nil && fn.Pkg().Path() == "context"
}

// waitCallName recognizes sync's blocking Wait methods.
func waitCallName(info *types.Info, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" || fn.Name() != "Wait" {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return "sync." + n.Obj().Name() + ".Wait"
	}
	return "sync Wait"
}
