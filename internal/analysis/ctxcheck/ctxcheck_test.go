package ctxcheck_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/ctxcheck"
)

func TestCtxcheck(t *testing.T) {
	analysistest.Run(t, ctxcheck.Analyzer, "./src/internal/runner")
}

func TestAppliesTo(t *testing.T) {
	cases := []struct {
		pkg  string
		want bool
	}{
		{"repro/internal/runner", true},
		{"repro/internal/stashd", true},
		{"fixture/src/internal/runner", true},
		{"internal/runner", true},
		{"repro/internal/runner/sub", false},
		{"repro/internal/coherence", false},
		{"repro/cmd/stashd", false},
	}
	for _, c := range cases {
		if got := ctxcheck.AppliesTo(c.pkg); got != c.want {
			t.Errorf("AppliesTo(%q) = %v, want %v", c.pkg, got, c.want)
		}
	}
}

// TestBlockingDirectiveHygiene covers what fixtures cannot: a malformed
// //stash:blocking (no reason) and an unused one each produce a finding.
// Directive comments occupy whole lines, so a // want comment cannot share
// them in the analysistest fixture.
func TestBlockingDirectiveHygiene(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module fix\n\ngo 1.22\n")
	writeFile(t, filepath.Join(dir, "internal", "runner", "r.go"), `package runner

func recv(in <-chan int) int {
	//stash:blocking
	return <-in
}

func clean() int {
	//stash:blocking nothing actually blocks below
	return 0
}
`)

	findings, err := analysis.RunPatterns(dir, []string{"./..."}, []*analysis.Analyzer{ctxcheck.Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	wantSubstrings := map[int]string{
		4: "malformed //stash:blocking",
		5: "blocking channel receive",
		9: "unused //stash:blocking",
	}
	for _, f := range findings {
		want, ok := wantSubstrings[f.Position.Line]
		if !ok {
			t.Errorf("unexpected finding: %s", f)
			continue
		}
		if !strings.Contains(f.Message, want) {
			t.Errorf("line %d: message %q does not contain %q", f.Position.Line, f.Message, want)
		}
		delete(wantSubstrings, f.Position.Line)
	}
	for line, want := range wantSubstrings {
		t.Errorf("line %d: missing finding containing %q", line, want)
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
