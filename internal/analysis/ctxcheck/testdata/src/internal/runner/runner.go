// Package runner exercises the ctxcheck analyzer: cancellable blocking
// operations, //stash:blocking exemptions, context parameter position and
// context struct fields.
package runner

import (
	"context"
	"sync"
)

// Job carries the sanctioned struct-context exception.
type Job struct {
	id int
	//stash:ignore ctxcheck execution context is owned by the job lifecycle and cancelled on eviction
	execCtx context.Context
}

type sneaky struct {
	ctx context.Context // want `context.Context stored in a struct`
}

// produce is the canonical cancellable send: clean.
func produce(ctx context.Context, out chan<- int) {
	select {
	case out <- 1:
	case <-ctx.Done():
	}
}

func push(out chan<- int) {
	out <- 1 // want `blocking channel send with no cancellation path`
}

func pull(in <-chan int) int {
	return <-in // want `blocking channel receive with no cancellation path`
}

func pullAnnotated(in <-chan int) int {
	//stash:blocking the producer sends exactly once and is joined by the caller
	return <-in
}

// tryPush has a default case, so the select cannot block: clean.
func tryPush(out chan<- int) bool {
	select {
	case out <- 1:
		return true
	default:
		return false
	}
}

func relay(a, b <-chan int) int {
	select { // want `blocking select with no ctx.Done\(\) case or default`
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

func drain(in <-chan int) (n int) {
	for range in { // want `blocking range over a channel`
		n++
	}
	return n
}

// closeAll is exempt for its whole body, the runner.Close pattern.
//
//stash:blocking close waits for workers to drain; callers expect it to join
func closeAll(wg *sync.WaitGroup) {
	wg.Wait()
}

func joinAll(wg *sync.WaitGroup) {
	wg.Wait() // want `blocking sync\.WaitGroup\.Wait with no cancellation path`
}

func await(c *sync.Cond) {
	c.Wait() //stash:blocking woken by broadcast on shutdown; lifecycle owned by the pool
}

func misplaced(id int, ctx context.Context) *Job { // want `context.Context must be the first parameter`
	_ = ctx
	return &Job{id: id}
}

// spawn's goroutine body is chanleak's domain, not ctxcheck's: clean here.
func spawn(out chan int) {
	go func() {
		out <- 1
	}()
}
