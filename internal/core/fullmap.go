package core

import (
	"sort"

	"repro/internal/mem"
	"repro/internal/stats"
)

// FullMap is the ideal, unbounded directory: one entry per tracked block,
// no conflicts, no evictions. It serves as the performance upper bound in
// the coverage-sweep experiments and as the correctness reference in the
// differential protocol tests.
//
//stash:tileowned
type FullMap struct {
	entries map[mem.Block]*Entry

	set     *stats.Set
	lookups *stats.Counter
	hits    *stats.Counter
	misses  *stats.Counter
	allocs  *stats.Counter
	removes *stats.Counter
}

var _ Directory = (*FullMap)(nil)

// NewFullMap returns an empty ideal directory.
func NewFullMap() *FullMap {
	d := &FullMap{
		entries: make(map[mem.Block]*Entry),
		set:     stats.NewSet("dir.fullmap"),
	}
	d.lookups = d.set.Counter("lookups")
	d.hits = d.set.Counter("hits")
	d.misses = d.set.Counter("misses")
	d.allocs = d.set.Counter("allocations")
	d.removes = d.set.Counter("removals")
	return d
}

// Name implements Directory.
func (d *FullMap) Name() string { return "fullmap" }

// Capacity implements Directory; the full map is unbounded.
func (d *FullMap) Capacity() int { return 0 }

// Lookup implements Directory.
func (d *FullMap) Lookup(b mem.Block) *Entry {
	d.lookups.Inc()
	if e, ok := d.entries[b]; ok {
		d.hits.Inc()
		return e
	}
	d.misses.Inc()
	return nil
}

// Probe implements Directory.
func (d *FullMap) Probe(b mem.Block) *Entry {
	return d.entries[b]
}

// Allocate implements Directory; it always succeeds.
func (d *FullMap) Allocate(b mem.Block, busy func(mem.Block) bool) AllocResult {
	if _, ok := d.entries[b]; ok {
		panic("core: fullmap Allocate for already-tracked block")
	}
	e := &Entry{}
	e.reset(b)
	d.entries[b] = e
	d.allocs.Inc()
	return AllocResult{Outcome: AllocOK, Entry: e}
}

// Remove implements Directory.
func (d *FullMap) Remove(b mem.Block) {
	if e, ok := d.entries[b]; ok {
		e.valid = false
		delete(d.entries, b)
		d.removes.Inc()
	}
}

// OccupiedEntries implements Directory.
func (d *FullMap) OccupiedEntries() int { return len(d.entries) }

// ForEach implements Directory; iteration is in ascending block order so
// audits are deterministic.
func (d *FullMap) ForEach(fn func(*Entry)) {
	blocks := make([]mem.Block, 0, len(d.entries))
	//stash:ignore determinism keys are sorted before use
	for b := range d.entries {
		blocks = append(blocks, b)
	}
	sort.Slice(blocks, func(i, j int) bool { return blocks[i] < blocks[j] })
	for _, b := range blocks {
		fn(d.entries[b])
	}
}

// Stats implements Directory.
func (d *FullMap) Stats() *stats.Set { return d.set }
