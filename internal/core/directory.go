// Package core implements the paper's primary contribution: directory
// organizations for many-core cache coherence, and in particular the Stash
// Directory — a sparse directory with a relaxed inclusion property that can
// silently drop ("stash") entries tracking private blocks instead of
// invalidating the cached copies.
//
// Four organizations are provided behind one Directory interface:
//
//   - FullMap: an unbounded ideal directory (no conflicts; upper bound and
//     correctness reference).
//   - Sparse: the conventional set-associative sparse directory; evicting an
//     entry requires recalling (back-invalidating) the tracked copies.
//   - Cuckoo: a d-ary cuckoo-hashed directory (Ferdman et al., HPCA 2011),
//     the strongest conventional baseline: it removes set conflicts but
//     still enforces strict inclusion.
//   - Stash: the paper's design. Entries tracking private blocks may be
//     evicted without invalidation; the protocol then relies on an LLC
//     "hidden" bit and discovery broadcasts to re-locate hidden copies.
//
// The organizations are pure lookup structures: all timing, messaging and
// hidden-bit bookkeeping live in internal/coherence. The split keeps every
// organization independently unit-testable.
package core

import (
	"fmt"
	"math/bits"

	"repro/internal/mem"
	"repro/internal/stats"
)

// MaxCores is the largest core count a directory entry can track. Sharer
// sets are full-map bit vectors packed in an array of uint64 words; four
// words cover the scaling study's 16-to-256-core range.
const MaxCores = 256

// sharerWords is the number of 64-bit words backing a SharerSet.
const sharerWords = MaxCores / 64

// SharerSet is a full-map sharer bit vector: bit i set means core i holds a
// copy. The zero value is the empty set.
//
//stash:tileowned
type SharerSet struct {
	w [sharerWords]uint64
}

// Add sets core's bit.
func (s *SharerSet) Add(core int) { s.w[uint(core)/64] |= 1 << (uint(core) % 64) }

// Remove clears core's bit.
func (s *SharerSet) Remove(core int) { s.w[uint(core)/64] &^= 1 << (uint(core) % 64) }

// Clear empties the set.
func (s *SharerSet) Clear() {
	for i := range s.w {
		s.w[i] = 0
	}
}

// Has reports whether core's bit is set.
func (s SharerSet) Has(core int) bool { return s.w[uint(core)/64]&(1<<(uint(core)%64)) != 0 }

// Count returns the number of sharers.
func (s SharerSet) Count() int {
	n := 0
	for _, w := range s.w {
		n += bits.OnesCount64(w)
	}
	return n
}

// Empty reports whether no core is tracked.
func (s SharerSet) Empty() bool {
	for _, w := range s.w {
		if w != 0 {
			return false
		}
	}
	return true
}

// Only returns the single set core, or -1 if the set does not contain
// exactly one core.
func (s SharerSet) Only() int {
	if s.Count() != 1 {
		return -1
	}
	for i, w := range s.w {
		if w != 0 {
			return i*64 + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// ForEach calls fn for every sharer in ascending core order.
func (s SharerSet) ForEach(fn func(core int)) {
	for i, w := range s.w {
		for w != 0 {
			fn(i*64 + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}

// Entry is one directory entry: which cores hold block Block and whether a
// single core owns it exclusively (MESI E or M; the directory does not
// distinguish the two, as silent E→M upgrades are invisible to it).
//
//stash:tileowned
type Entry struct {
	Block   mem.Block
	Sharers SharerSet
	// Owned means the block was granted exclusively: exactly one sharer
	// holds it in E or M.
	Owned bool
	// Overflowed marks a limited-pointer entry whose sharer count exceeded
	// its pointer capacity (the Dir_P-B scheme): the sharer set is no
	// longer exact and invalidations must broadcast. Full-map entries
	// never overflow.
	Overflowed bool

	valid bool
	// slot bookkeeping for set-associative implementations
	set, way int32
}

// Valid reports whether the entry currently tracks a block.
func (e *Entry) Valid() bool { return e.valid }

// Slot returns the entry's (set, way) coordinates inside its organization's
// backing store (sub-table and slot for the cuckoo layout). Unbounded
// organizations return (0, 0). The model checker serializes entries with
// their coordinates because slot placement is machine state: it determines
// future victim choices and cuckoo relocation paths.
func (e *Entry) Slot() (set, way int) { return int(e.set), int(e.way) }

// Owner returns the owning core when the entry is in the owned state, or
// -1 otherwise.
func (e *Entry) Owner() int {
	if !e.Owned {
		return -1
	}
	return e.Sharers.Only()
}

// Private reports whether the entry tracks a private block in the paper's
// sense: cached by exactly one core. Owned entries are always private;
// single-sharer Shared entries are private too (the protocol decides,
// via configuration, whether those are stashable). Overflowed entries are
// never private: their sharer set is inexact.
func (e *Entry) Private() bool { return !e.Overflowed && e.Sharers.Count() == 1 }

// AddSharer records core as a sharer under a pointer-limited entry format:
// limit is the number of pointers the entry can hold (0 = full map). When
// the sharer count exceeds the limit the entry overflows and its set stops
// being exact.
func (e *Entry) AddSharer(core, limit int) {
	e.Sharers.Add(core)
	if limit > 0 && !e.Overflowed && e.Sharers.Count() > limit {
		e.Overflowed = true
	}
}

func (e *Entry) reset(b mem.Block) {
	e.Block = b
	e.Sharers.Clear()
	e.Owned = false
	e.Overflowed = false
	e.valid = true
}

func (e *Entry) String() string {
	if !e.valid {
		return "<invalid>"
	}
	kind := "S"
	if e.Owned {
		kind = "EM"
	}
	if e.Overflowed {
		kind += "+ovf"
	}
	return fmt.Sprintf("blk=%#x %s sharers=%064b%064b%064b%064b", uint64(e.Block), kind,
		e.Sharers.w[3], e.Sharers.w[2], e.Sharers.w[1], e.Sharers.w[0])
}

// AllocOutcome classifies the result of Directory.Allocate.
type AllocOutcome uint8

const (
	// AllocOK: a free slot was found (or the organization is unbounded);
	// Entry is installed for the block, valid and empty.
	AllocOK AllocOutcome = iota
	// AllocStashed: the Stash directory freed a slot by dropping an entry
	// that tracked a private block, without requiring invalidation. Entry
	// is installed; Stashed describes the dropped entry so the caller can
	// set the hidden bit on its LLC line. (Stash only.)
	AllocStashed
	// AllocNeedsRecall: the organization must evict Victim, and strict
	// inclusion requires the caller to invalidate (recall) the tracked
	// copies first. After the recall completes, call Remove(victim) and
	// retry Allocate.
	AllocNeedsRecall
	// AllocBlocked: every candidate slot is excluded by the caller's busy
	// predicate (in-flight transactions). Retry later.
	AllocBlocked
)

// String names the outcome.
func (o AllocOutcome) String() string {
	switch o {
	case AllocOK:
		return "ok"
	case AllocStashed:
		return "stashed"
	case AllocNeedsRecall:
		return "needs-recall"
	case AllocBlocked:
		return "blocked"
	}
	return fmt.Sprintf("AllocOutcome(%d)", uint8(o))
}

// Stashed describes an entry dropped by a stash eviction: the block whose
// cached copy is now hidden and the core that holds it.
type Stashed struct {
	Block mem.Block
	Owner int
}

// AllocResult carries the outcome of Allocate. Exactly one of Entry,
// Victim is meaningful depending on Outcome; Stashed accompanies
// AllocStashed.
type AllocResult struct {
	Outcome AllocOutcome
	Entry   *Entry  // AllocOK, AllocStashed
	Victim  *Entry  // AllocNeedsRecall: the entry to recall (still valid)
	Stashed Stashed // AllocStashed: the dropped private entry
}

// Directory is a coherence-directory organization. It tracks which private
// caches hold which blocks. Implementations are pure data structures with
// deterministic behavior; the protocol layer provides timing and performs
// the recalls/discoveries the organization demands.
type Directory interface {
	// Name identifies the organization ("fullmap", "sparse", "cuckoo",
	// "stash") for reports.
	Name() string
	// Capacity returns the number of entry slots, or 0 if unbounded.
	Capacity() int
	// Lookup finds the entry tracking b, recording a directory hit or
	// miss and updating replacement recency. It returns nil on a miss.
	Lookup(b mem.Block) *Entry
	// Probe finds the entry tracking b without touching statistics or
	// recency. For audits and assertions.
	Probe(b mem.Block) *Entry
	// Allocate installs (or prepares to install) an entry for b, which
	// must not already be tracked. busy, if non-nil, excludes victim
	// candidates with in-flight transactions.
	Allocate(b mem.Block, busy func(mem.Block) bool) AllocResult
	// Remove frees the entry tracking b, if any.
	Remove(b mem.Block)
	// OccupiedEntries returns the number of valid entries.
	OccupiedEntries() int
	// ForEach visits every valid entry in a deterministic order.
	ForEach(fn func(*Entry))
	// Stats returns the organization's metric set (lookups, hits, misses,
	// allocations, stash evictions, recall evictions...).
	Stats() *stats.Set
}
