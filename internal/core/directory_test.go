package core

import (
	"testing"
	"testing/quick"

	"repro/internal/cache"
	"repro/internal/mem"
)

func TestSharerSet(t *testing.T) {
	var s SharerSet
	if !s.Empty() || s.Count() != 0 || s.Only() != -1 {
		t.Fatal("zero sharer set wrong")
	}
	s.Add(3)
	if !s.Has(3) || s.Count() != 1 || s.Only() != 3 || s.Empty() {
		t.Fatalf("after Add(3): %v", s)
	}
	s.Add(3) // idempotent
	if s.Count() != 1 {
		t.Fatal("Add not idempotent")
	}
	s.Add(0)
	s.Add(63)
	if s.Count() != 3 || s.Only() != -1 {
		t.Fatalf("count = %d", s.Count())
	}
	var seen []int
	s.ForEach(func(c int) { seen = append(seen, c) })
	want := []int{0, 3, 63}
	if len(seen) != 3 {
		t.Fatalf("ForEach visited %v", seen)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("ForEach order %v, want %v", seen, want)
		}
	}
	s.Remove(3)
	if s.Has(3) || s.Count() != 2 {
		t.Fatal("Remove failed")
	}
	s.Remove(3) // idempotent
	if s.Count() != 2 {
		t.Fatal("Remove not idempotent")
	}

	// Cores past the first 64-bit word.
	s.Clear()
	if !s.Empty() {
		t.Fatal("Clear left residue")
	}
	for _, c := range []int{64, 127, 128, 255} {
		s.Add(c)
		if !s.Has(c) {
			t.Fatalf("high core %d missing", c)
		}
	}
	if s.Count() != 4 {
		t.Fatalf("count = %d, want 4", s.Count())
	}
	seen = seen[:0]
	s.ForEach(func(c int) { seen = append(seen, c) })
	want = []int{64, 127, 128, 255}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("high-word ForEach order %v, want %v", seen, want)
		}
	}
	s.Clear()
	s.Add(200)
	if s.Only() != 200 {
		t.Fatalf("Only() = %d, want 200", s.Only())
	}
}

func TestSharerSetProperty(t *testing.T) {
	f := func(adds []uint16) bool {
		var s SharerSet
		ref := map[int]bool{}
		for _, a := range adds {
			c := int(a) % MaxCores
			if a%3 == 0 {
				s.Remove(c)
				delete(ref, c)
			} else {
				s.Add(c)
				ref[c] = true
			}
		}
		if s.Count() != len(ref) {
			return false
		}
		for c := range ref {
			if !s.Has(c) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEntryOwnerAndPrivate(t *testing.T) {
	e := &Entry{}
	e.reset(7)
	if e.Owner() != -1 || e.Private() {
		t.Fatal("fresh entry should be unowned and not private")
	}
	e.Sharers.Add(4)
	e.Owned = true
	if e.Owner() != 4 || !e.Private() {
		t.Fatalf("owner = %d", e.Owner())
	}
	e.Owned = false
	e.Sharers.Add(9)
	if e.Owner() != -1 || e.Private() {
		t.Fatal("two-sharer entry misclassified")
	}
}

// directoryUnderTest builds each organization with roughly equal capacity.
func directoriesUnderTest(t *testing.T) map[string]Directory {
	t.Helper()
	sparse, err := NewSparse(AssocConfig{Sets: 16, Ways: 4})
	if err != nil {
		t.Fatal(err)
	}
	stash, err := NewStash(StashConfig{AssocConfig: AssocConfig{Sets: 16, Ways: 4}})
	if err != nil {
		t.Fatal(err)
	}
	cuckoo, err := NewCuckoo(CuckooConfig{Ways: 4, SlotsPerWay: 16, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Directory{
		"fullmap": NewFullMap(),
		"sparse":  sparse,
		"stash":   stash,
		"cuckoo":  cuckoo,
	}
}

func TestLookupAllocateRemoveAllOrgs(t *testing.T) {
	for name, d := range directoriesUnderTest(t) {
		if d.Lookup(42) != nil {
			t.Errorf("%s: lookup in empty directory hit", name)
		}
		res := d.Allocate(42, nil)
		if res.Outcome != AllocOK {
			t.Fatalf("%s: Allocate outcome %v", name, res.Outcome)
		}
		res.Entry.Sharers.Add(2)
		res.Entry.Owned = true
		e := d.Lookup(42)
		if e == nil || e.Block != 42 || e.Owner() != 2 {
			t.Fatalf("%s: lookup after allocate: %v", name, e)
		}
		if d.OccupiedEntries() != 1 {
			t.Errorf("%s: occupancy = %d", name, d.OccupiedEntries())
		}
		d.Remove(42)
		if d.Lookup(42) != nil || d.OccupiedEntries() != 0 {
			t.Errorf("%s: entry survives Remove", name)
		}
		// Removing twice is harmless.
		d.Remove(42)
	}
}

func TestProbeDoesNotCount(t *testing.T) {
	for name, d := range directoriesUnderTest(t) {
		d.Allocate(1, nil)
		before := d.Stats().Counter("lookups").Value()
		d.Probe(1)
		d.Probe(2)
		if d.Stats().Counter("lookups").Value() != before {
			t.Errorf("%s: Probe counted as lookup", name)
		}
	}
}

func TestForEachVisitsAll(t *testing.T) {
	for name, d := range directoriesUnderTest(t) {
		blocks := []mem.Block{1, 2, 3, 100, 200}
		for _, b := range blocks {
			r := d.Allocate(b, nil)
			if r.Outcome != AllocOK {
				t.Fatalf("%s: alloc %d: %v", name, b, r.Outcome)
			}
			r.Entry.Sharers.Add(0)
		}
		seen := map[mem.Block]bool{}
		d.ForEach(func(e *Entry) { seen[e.Block] = true })
		for _, b := range blocks {
			if !seen[b] {
				t.Errorf("%s: ForEach missed %d", name, b)
			}
		}
		if len(seen) != len(blocks) {
			t.Errorf("%s: ForEach visited %d entries, want %d", name, len(seen), len(blocks))
		}
	}
}

func TestSparseConflictDemandsRecall(t *testing.T) {
	d, err := NewSparse(AssocConfig{Sets: 1, Ways: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range []mem.Block{1, 2} {
		r := d.Allocate(b, nil)
		r.Entry.Sharers.Add(0)
		r.Entry.Owned = true
	}
	r := d.Allocate(3, nil)
	if r.Outcome != AllocNeedsRecall {
		t.Fatalf("outcome = %v, want needs-recall", r.Outcome)
	}
	if r.Victim == nil || (r.Victim.Block != 1 && r.Victim.Block != 2) {
		t.Fatalf("victim = %v", r.Victim)
	}
	// LRU: block 1 was inserted first and never touched again -> victim.
	if r.Victim.Block != 1 {
		t.Fatalf("victim = %d, want LRU block 1", r.Victim.Block)
	}
	// The protocol recalls, removes the victim, retries.
	d.Remove(r.Victim.Block)
	r2 := d.Allocate(3, nil)
	if r2.Outcome != AllocOK {
		t.Fatalf("retry outcome = %v", r2.Outcome)
	}
	if d.Stats().Counter("recall_evictions").Value() != 1 {
		t.Fatal("recall not counted")
	}
}

func TestSparseBusyBlocksAllocation(t *testing.T) {
	d, _ := NewSparse(AssocConfig{Sets: 1, Ways: 2})
	for _, b := range []mem.Block{1, 2} {
		r := d.Allocate(b, nil)
		r.Entry.Sharers.Add(0)
	}
	r := d.Allocate(3, func(b mem.Block) bool { return true })
	if r.Outcome != AllocBlocked {
		t.Fatalf("outcome = %v, want blocked", r.Outcome)
	}
	// Busy only for block 1: victim must be block 2.
	r = d.Allocate(3, func(b mem.Block) bool { return b == 1 })
	if r.Outcome != AllocNeedsRecall || r.Victim.Block != 2 {
		t.Fatalf("outcome = %v victim = %v", r.Outcome, r.Victim)
	}
}

func TestStashPrefersStashableVictim(t *testing.T) {
	d, err := NewStash(StashConfig{AssocConfig: AssocConfig{Sets: 1, Ways: 2}})
	if err != nil {
		t.Fatal(err)
	}
	// Entry 1: shared by two cores (not stashable).
	r := d.Allocate(1, nil)
	r.Entry.Sharers.Add(0)
	r.Entry.Sharers.Add(1)
	// Entry 2: private owned (stashable) and MRU.
	r = d.Allocate(2, nil)
	r.Entry.Sharers.Add(3)
	r.Entry.Owned = true

	// Even though entry 1 is LRU, the stashable entry 2 must be chosen and
	// dropped silently.
	res := d.Allocate(5, nil)
	if res.Outcome != AllocStashed {
		t.Fatalf("outcome = %v, want stashed", res.Outcome)
	}
	if res.Stashed.Block != 2 || res.Stashed.Owner != 3 {
		t.Fatalf("stashed = %+v", res.Stashed)
	}
	if res.Entry == nil || !res.Entry.Valid() || res.Entry.Block != 5 {
		t.Fatalf("entry = %v", res.Entry)
	}
	if d.Probe(2) != nil {
		t.Fatal("stashed entry still tracked")
	}
	if d.Stats().Counter("stash_evictions").Value() != 1 {
		t.Fatal("stash eviction not counted")
	}
	if d.Stats().Counter("recall_evictions").Value() != 0 {
		t.Fatal("unexpected recall")
	}
}

func TestStashFallsBackToRecall(t *testing.T) {
	d, _ := NewStash(StashConfig{AssocConfig: AssocConfig{Sets: 1, Ways: 2}})
	// Both entries shared by two cores: nothing stashable.
	for _, b := range []mem.Block{1, 2} {
		r := d.Allocate(b, nil)
		r.Entry.Sharers.Add(0)
		r.Entry.Sharers.Add(1)
	}
	res := d.Allocate(3, nil)
	if res.Outcome != AllocNeedsRecall {
		t.Fatalf("outcome = %v, want needs-recall", res.Outcome)
	}
}

func TestStashSingletonSharedFlag(t *testing.T) {
	mk := func(flag bool) *Stash {
		d, _ := NewStash(StashConfig{
			AssocConfig:          AssocConfig{Sets: 1, Ways: 1},
			StashSingletonShared: flag,
		})
		r := d.Allocate(1, nil)
		r.Entry.Sharers.Add(2) // single sharer, Shared state (Owned=false)
		return d
	}
	// Without the flag: singleton-S is not stashable -> recall.
	d := mk(false)
	if res := d.Allocate(2, nil); res.Outcome != AllocNeedsRecall {
		t.Fatalf("outcome = %v, want needs-recall", res.Outcome)
	}
	// With the flag: stashable.
	d = mk(true)
	if res := d.Allocate(2, nil); res.Outcome != AllocStashed {
		t.Fatalf("outcome = %v, want stashed", res.Outcome)
	} else if res.Stashed.Owner != 2 {
		t.Fatalf("stashed owner = %d", res.Stashed.Owner)
	}
}

func TestStashBusyVictimSkipped(t *testing.T) {
	d, _ := NewStash(StashConfig{AssocConfig: AssocConfig{Sets: 1, Ways: 2}})
	// Two stashable entries.
	for i, b := range []mem.Block{1, 2} {
		r := d.Allocate(b, nil)
		r.Entry.Sharers.Add(i)
		r.Entry.Owned = true
	}
	res := d.Allocate(3, func(b mem.Block) bool { return b == 1 })
	if res.Outcome != AllocStashed || res.Stashed.Block != 2 {
		t.Fatalf("res = %+v", res)
	}
}

func TestCuckooRelocatesInsteadOfRecalling(t *testing.T) {
	// Small cuckoo table filled to moderate occupancy must keep absorbing
	// inserts via relocation without any recall.
	d, err := NewCuckoo(CuckooConfig{Ways: 4, SlotsPerWay: 64, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	n := d.Capacity() * 3 / 4
	for i := 0; i < n; i++ {
		res := d.Allocate(mem.Block(i), nil)
		if res.Outcome != AllocOK {
			t.Fatalf("insert %d/%d: outcome %v (recalls=%d)",
				i, n, res.Outcome, d.Stats().Counter("recall_evictions").Value())
		}
		res.Entry.Sharers.Add(i % 16)
	}
	if d.OccupiedEntries() != n {
		t.Fatalf("occupancy = %d, want %d", d.OccupiedEntries(), n)
	}
	// Every inserted block must still be findable after relocations.
	for i := 0; i < n; i++ {
		if d.Probe(mem.Block(i)) == nil {
			t.Fatalf("block %d lost after relocations", i)
		}
	}
}

func TestCuckooRecallWhenSaturated(t *testing.T) {
	d, _ := NewCuckoo(CuckooConfig{Ways: 2, SlotsPerWay: 2, Seed: 1, MaxPathLen: 4})
	outcomes := map[AllocOutcome]int{}
	for i := 0; i < 32; i++ {
		res := d.Allocate(mem.Block(i), nil)
		outcomes[res.Outcome]++
		switch res.Outcome {
		case AllocOK:
			res.Entry.Sharers.Add(0)
		case AllocNeedsRecall:
			d.Remove(res.Victim.Block)
			res2 := d.Allocate(mem.Block(i), nil)
			if res2.Outcome != AllocOK {
				t.Fatalf("retry after recall: %v", res2.Outcome)
			}
			res2.Entry.Sharers.Add(0)
		default:
			t.Fatalf("unexpected outcome %v", res.Outcome)
		}
	}
	if outcomes[AllocNeedsRecall] == 0 {
		t.Fatal("saturated 4-entry cuckoo never demanded a recall")
	}
}

func TestCuckooValidation(t *testing.T) {
	if _, err := NewCuckoo(CuckooConfig{Ways: 1, SlotsPerWay: 4}); err == nil {
		t.Error("ways=1 accepted")
	}
	if _, err := NewCuckoo(CuckooConfig{Ways: 2, SlotsPerWay: 0}); err == nil {
		t.Error("slots=0 accepted")
	}
}

func TestAssocValidation(t *testing.T) {
	if _, err := NewSparse(AssocConfig{Sets: 3, Ways: 2}); err == nil {
		t.Error("non-power-of-two sets accepted")
	}
	if _, err := NewStash(StashConfig{AssocConfig: AssocConfig{Sets: 4, Ways: 0}}); err == nil {
		t.Error("zero ways accepted")
	}
}

func TestDoubleAllocatePanics(t *testing.T) {
	for name, d := range directoriesUnderTest(t) {
		d.Allocate(9, nil)
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: double Allocate did not panic", name)
				}
			}()
			d.Allocate(9, nil)
		}()
	}
}

// TestOccupancyNeverExceedsCapacity exercises random allocate/remove churn
// against every bounded organization.
func TestOccupancyNeverExceedsCapacity(t *testing.T) {
	sparse, _ := NewSparse(AssocConfig{Sets: 8, Ways: 2, Policy: cache.LRU})
	stash, _ := NewStash(StashConfig{AssocConfig: AssocConfig{Sets: 8, Ways: 2}})
	cuckoo, _ := NewCuckoo(CuckooConfig{Ways: 2, SlotsPerWay: 8, Seed: 5})
	for name, d := range map[string]Directory{"sparse": sparse, "stash": stash, "cuckoo": cuckoo} {
		f := func(ops []uint16) bool {
			for _, op := range ops {
				b := mem.Block(op % 256)
				if d.Probe(b) != nil {
					if op%5 == 0 {
						d.Remove(b)
					}
					continue
				}
				res := d.Allocate(b, nil)
				switch res.Outcome {
				case AllocOK, AllocStashed:
					res.Entry.Sharers.Add(int(op) % 4)
					if op%2 == 0 {
						res.Entry.Owned = res.Entry.Private()
					}
				case AllocNeedsRecall:
					d.Remove(res.Victim.Block)
				}
				if d.OccupiedEntries() > d.Capacity() {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestAllocOutcomeString(t *testing.T) {
	for _, o := range []AllocOutcome{AllocOK, AllocStashed, AllocNeedsRecall, AllocBlocked} {
		if o.String() == "" {
			t.Fatal("empty outcome name")
		}
	}
}

func TestEntryString(t *testing.T) {
	e := &Entry{}
	if e.String() != "<invalid>" {
		t.Fatalf("invalid entry string = %q", e.String())
	}
	e.reset(0x40)
	e.Sharers.Add(1)
	e.Owned = true
	if s := e.String(); s == "" || s == "<invalid>" {
		t.Fatalf("entry string = %q", s)
	}
}
