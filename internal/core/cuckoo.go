package core

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/stats"
)

// CuckooConfig describes a d-ary cuckoo directory slice.
type CuckooConfig struct {
	// Ways is the number of hash functions / sub-tables (d). The Cuckoo
	// Directory paper uses 4.
	Ways int
	// SlotsPerWay is the size of each sub-table; total capacity is
	// Ways*SlotsPerWay.
	SlotsPerWay int
	// MaxPathLen bounds the relocation-path search before falling back to
	// a recall eviction. 0 means the default (16).
	MaxPathLen int
	// Seed perturbs the hash functions.
	Seed int64
}

// Validate checks the geometry.
func (c CuckooConfig) Validate() error {
	if c.Ways < 2 {
		return fmt.Errorf("core: cuckoo ways must be >= 2, got %d", c.Ways)
	}
	if c.SlotsPerWay < 1 {
		return fmt.Errorf("core: cuckoo slots-per-way must be >= 1, got %d", c.SlotsPerWay)
	}
	return nil
}

// Cuckoo is a d-ary cuckoo-hashed directory in the style of the Cuckoo
// Directory (Ferdman et al., HPCA 2011): each block hashes to one slot in
// each of d sub-tables, and insertions relocate existing entries along a
// cuckoo path to make room, which removes set-conflict evictions almost
// entirely at high occupancy. It still enforces strict inclusion — when no
// relocation path exists the victim must be recalled — so it isolates how
// much of Stash's benefit comes from conflict avoidance versus from
// relaxed inclusion.
type Cuckoo struct {
	cfg     CuckooConfig
	slots   []Entry // ways * slotsPerWay, way-major
	maxPath int
	seeds   []uint64
	st      *dirStats

	// Relocation-search scratch, reused across Allocate calls so conflict
	// handling does not rebuild its frontier and visited set from nothing.
	frontier []cuckooNode
	visited  map[*Entry]bool
}

var _ Directory = (*Cuckoo)(nil)

// NewCuckoo builds a cuckoo directory.
func NewCuckoo(cfg CuckooConfig) (*Cuckoo, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	maxPath := cfg.MaxPathLen
	if maxPath == 0 {
		maxPath = 16
	}
	d := &Cuckoo{
		cfg:     cfg,
		slots:   make([]Entry, cfg.Ways*cfg.SlotsPerWay),
		maxPath: maxPath,
		seeds:   make([]uint64, cfg.Ways),
		st:      newDirStats("dir.cuckoo"),
	}
	for i := range d.slots {
		d.slots[i].set = int32(i / cfg.SlotsPerWay) // sub-table index
		d.slots[i].way = int32(i % cfg.SlotsPerWay) // slot within sub-table
	}
	for w := range d.seeds {
		d.seeds[w] = splitmix64(uint64(cfg.Seed) + uint64(w)*0x9e3779b97f4a7c15 + 1)
	}
	return d, nil
}

// splitmix64 is the standard 64-bit finalizing mixer; deterministic and
// well distributed, which is all a simulated hash needs.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// slotFor returns the slot block b maps to in sub-table way.
func (d *Cuckoo) slotFor(way int, b mem.Block) *Entry {
	h := splitmix64(uint64(b) ^ d.seeds[way])
	idx := int(h % uint64(d.cfg.SlotsPerWay))
	return &d.slots[way*d.cfg.SlotsPerWay+idx]
}

// Name implements Directory.
func (d *Cuckoo) Name() string { return "cuckoo" }

// Capacity implements Directory.
func (d *Cuckoo) Capacity() int { return len(d.slots) }

// Lookup implements Directory.
func (d *Cuckoo) Lookup(b mem.Block) *Entry {
	d.st.lookups.Inc()
	for w := 0; w < d.cfg.Ways; w++ {
		e := d.slotFor(w, b)
		if e.valid && e.Block == b {
			d.st.hits.Inc()
			return e
		}
	}
	d.st.misses.Inc()
	return nil
}

// Probe implements Directory.
func (d *Cuckoo) Probe(b mem.Block) *Entry {
	for w := 0; w < d.cfg.Ways; w++ {
		e := d.slotFor(w, b)
		if e.valid && e.Block == b {
			return e
		}
	}
	return nil
}

// Allocate implements Directory. It tries, in order: a free candidate
// slot; a bounded breadth-first relocation path ending at a free slot
// (performed immediately, counting one relocation per moved entry); and
// finally a recall of a non-busy candidate occupant.
//
// Entry pointers are stable only until the next Allocate, because
// relocation moves entry contents between slots.
func (d *Cuckoo) Allocate(b mem.Block, busy func(mem.Block) bool) AllocResult {
	if d.Probe(b) != nil {
		panic("core: cuckoo Allocate for already-tracked block")
	}
	// Free candidate slot.
	for w := 0; w < d.cfg.Ways; w++ {
		if e := d.slotFor(w, b); !e.valid {
			e.reset(b)
			d.st.allocs.Inc()
			return AllocResult{Outcome: AllocOK, Entry: e}
		}
	}

	// Breadth-first search for a relocation path: nodes are slots, an edge
	// goes from a slot to the alternative slots of its occupant. Busy
	// occupants are immovable.
	frontier := d.frontier[:0]
	if d.visited == nil {
		d.visited = make(map[*Entry]bool)
	} else {
		clear(d.visited)
	}
	visited := d.visited
	for w := 0; w < d.cfg.Ways; w++ {
		s := d.slotFor(w, b)
		if !visited[s] {
			visited[s] = true
			frontier = append(frontier, cuckooNode{slot: s, parent: -1})
		}
	}
	for i := 0; i < len(frontier) && len(frontier) < d.maxPath*d.cfg.Ways; i++ {
		cur := frontier[i]
		occ := cur.slot
		if !occ.valid {
			// Found a free slot: shift occupants along the path toward it.
			d.shiftPath(frontier, i)
			// The path root (one of b's candidate slots) is now free.
			root := i
			for frontier[root].parent != -1 {
				root = frontier[root].parent
			}
			e := frontier[root].slot
			d.frontier = frontier
			e.reset(b)
			d.st.allocs.Inc()
			return AllocResult{Outcome: AllocOK, Entry: e}
		}
		if busy != nil && busy(occ.Block) {
			continue // immovable
		}
		for w := 0; w < d.cfg.Ways; w++ {
			alt := d.slotFor(w, occ.Block)
			if alt == occ || visited[alt] {
				continue
			}
			visited[alt] = true
			frontier = append(frontier, cuckooNode{slot: alt, parent: i})
		}
	}

	d.frontier = frontier

	// No path: recall one of b's candidate occupants (LRU is meaningless
	// here; pick the first non-busy candidate deterministically).
	for w := 0; w < d.cfg.Ways; w++ {
		e := d.slotFor(w, b)
		if busy == nil || !busy(e.Block) {
			d.st.recalls.Inc()
			return AllocResult{Outcome: AllocNeedsRecall, Victim: e}
		}
	}
	d.st.blocked.Inc()
	return AllocResult{Outcome: AllocBlocked}
}

// cuckooNode is one step of a relocation-path search: a slot plus the index
// of the node it was reached from.
type cuckooNode struct {
	slot   *Entry
	parent int
}

// shiftPath moves each occupant one step toward the free terminal slot at
// frontier[end], following parent links from the terminal back to a root.
func (d *Cuckoo) shiftPath(frontier []cuckooNode, end int) {
	for cur := end; frontier[cur].parent != -1; cur = frontier[cur].parent {
		dst := frontier[cur].slot
		src := frontier[frontier[cur].parent].slot
		// Move src's occupant into dst.
		dst.Block = src.Block
		dst.Sharers = src.Sharers
		dst.Owned = src.Owned
		dst.Overflowed = src.Overflowed
		dst.valid = true
		src.valid = false
		src.Sharers.Clear()
		src.Owned = false
		src.Overflowed = false
		d.st.relocates.Inc()
	}
}

// Remove implements Directory.
func (d *Cuckoo) Remove(b mem.Block) {
	for w := 0; w < d.cfg.Ways; w++ {
		e := d.slotFor(w, b)
		if e.valid && e.Block == b {
			e.valid = false
			e.Sharers.Clear()
			e.Owned = false
			e.Overflowed = false
			d.st.removes.Inc()
			return
		}
	}
}

// OccupiedEntries implements Directory.
func (d *Cuckoo) OccupiedEntries() int {
	n := 0
	for i := range d.slots {
		if d.slots[i].valid {
			n++
		}
	}
	return n
}

// ForEach implements Directory.
func (d *Cuckoo) ForEach(fn func(*Entry)) {
	for i := range d.slots {
		if d.slots[i].valid {
			fn(&d.slots[i])
		}
	}
}

// Stats implements Directory.
func (d *Cuckoo) Stats() *stats.Set { return d.st.set }
