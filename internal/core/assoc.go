package core

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/mem"
	"repro/internal/stats"
)

// AssocConfig describes a set-associative directory's geometry. Both the
// conventional Sparse directory and the Stash directory use it.
type AssocConfig struct {
	Sets int // power of two
	Ways int
	// IndexShift drops low block bits before set indexing, mirroring
	// cache.Config: directory slices are address-interleaved across banks
	// on the low block bits.
	IndexShift uint
	Policy     cache.PolicyKind
	Seed       int64
}

// Validate checks the geometry.
func (c AssocConfig) Validate() error {
	if c.Sets <= 0 || c.Sets&(c.Sets-1) != 0 {
		return fmt.Errorf("core: directory sets must be a positive power of two, got %d", c.Sets)
	}
	if c.Ways < 1 {
		return fmt.Errorf("core: directory ways must be >= 1, got %d", c.Ways)
	}
	return nil
}

// assocStore is the shared set-associative entry array with replacement
// state. It has no eviction semantics of its own; Sparse and Stash build
// their policies on top.
type assocStore struct {
	cfg     AssocConfig
	entries []Entry
	policy  cache.Policy
	mask    mem.Block

	// victimFn adapts the victim-selection predicates to the policy's
	// way-indexed callback. Bound once at construction and parameterized
	// through the fields below, so victim() allocates no closure per call.
	victimFn       func(way int) bool
	victimSet      int
	victimBusy     func(mem.Block) bool
	victimPrefOnly bool
	victimPrefer   func(*Entry) bool
}

func newAssocStore(cfg AssocConfig) (*assocStore, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	pol, err := cache.NewPolicy(cfg.Policy, cfg.Sets, cfg.Ways, cfg.Seed)
	if err != nil {
		return nil, err
	}
	s := &assocStore{
		cfg:     cfg,
		entries: make([]Entry, cfg.Sets*cfg.Ways),
		policy:  pol,
		mask:    mem.Block(cfg.Sets - 1),
	}
	for i := range s.entries {
		s.entries[i].set = int32(i / cfg.Ways)
		s.entries[i].way = int32(i % cfg.Ways)
	}
	s.victimFn = func(way int) bool {
		e := s.entry(s.victimSet, way)
		if s.victimBusy != nil && s.victimBusy(e.Block) {
			return true
		}
		if s.victimPrefOnly && s.victimPrefer != nil && !s.victimPrefer(e) {
			return true
		}
		return false
	}
	return s, nil
}

func (s *assocStore) capacity() int { return s.cfg.Sets * s.cfg.Ways }

func (s *assocStore) setIndex(b mem.Block) int {
	return int((b >> s.cfg.IndexShift) & s.mask)
}

func (s *assocStore) entry(set, way int) *Entry {
	return &s.entries[set*s.cfg.Ways+way]
}

// find returns the valid entry for b, or nil.
func (s *assocStore) find(b mem.Block) *Entry {
	set := s.setIndex(b)
	for w := 0; w < s.cfg.Ways; w++ {
		e := s.entry(set, w)
		if e.valid && e.Block == b {
			return e
		}
	}
	return nil
}

// touch marks e as most recently used.
func (s *assocStore) touch(e *Entry) {
	s.policy.Touch(int(e.set), int(e.way))
}

// freeSlot returns an invalid entry in b's set, or nil.
func (s *assocStore) freeSlot(b mem.Block) *Entry {
	set := s.setIndex(b)
	for w := 0; w < s.cfg.Ways; w++ {
		e := s.entry(set, w)
		if !e.valid {
			return e
		}
	}
	return nil
}

// install claims slot e for block b and marks it MRU. The slot must belong
// to b's set and be invalid.
func (s *assocStore) install(e *Entry, b mem.Block) {
	if e.valid {
		panic("core: installing into a valid directory slot")
	}
	if int(e.set) != s.setIndex(b) {
		panic(fmt.Sprintf("core: installing block %#x into wrong directory set %d", uint64(b), e.set))
	}
	e.reset(b)
	s.policy.Insert(int(e.set), int(e.way))
}

// victim picks the replacement victim in b's set subject to two exclusion
// predicates: busy (hard: blocks with in-flight transactions) and prefer
// (soft: when preferOnly is true, only entries satisfying prefer are
// candidates). It returns nil when no candidate survives.
func (s *assocStore) victim(b mem.Block, busy func(mem.Block) bool, preferOnly bool, prefer func(*Entry) bool) *Entry {
	set := s.setIndex(b)
	s.victimSet, s.victimBusy, s.victimPrefOnly, s.victimPrefer = set, busy, preferOnly, prefer
	w := s.policy.Victim(set, s.victimFn)
	s.victimBusy, s.victimPrefer = nil, nil
	if w < 0 {
		return nil
	}
	return s.entry(set, w)
}

// remove invalidates the entry for b, if tracked.
func (s *assocStore) remove(b mem.Block) bool {
	if e := s.find(b); e != nil {
		e.valid = false
		e.Sharers.Clear()
		e.Owned = false
		e.Overflowed = false
		return true
	}
	return false
}

func (s *assocStore) occupied() int {
	n := 0
	for i := range s.entries {
		if s.entries[i].valid {
			n++
		}
	}
	return n
}

func (s *assocStore) forEach(fn func(*Entry)) {
	for i := range s.entries {
		if s.entries[i].valid {
			fn(&s.entries[i])
		}
	}
}

// dirStats bundles the counters every bounded organization reports.
type dirStats struct {
	set       *stats.Set
	lookups   *stats.Counter
	hits      *stats.Counter
	misses    *stats.Counter
	allocs    *stats.Counter
	removes   *stats.Counter
	recalls   *stats.Counter // evictions requiring back-invalidation
	stashes   *stats.Counter // silent private-entry drops (stash only)
	blocked   *stats.Counter // allocations deferred by busy transactions
	relocates *stats.Counter // cuckoo path relocations
}

func newDirStats(name string) *dirStats {
	s := stats.NewSet(name)
	return &dirStats{
		set:       s,
		lookups:   s.Counter("lookups"),
		hits:      s.Counter("hits"),
		misses:    s.Counter("misses"),
		allocs:    s.Counter("allocations"),
		removes:   s.Counter("removals"),
		recalls:   s.Counter("recall_evictions"),
		stashes:   s.Counter("stash_evictions"),
		blocked:   s.Counter("alloc_blocked"),
		relocates: s.Counter("relocations"),
	}
}
