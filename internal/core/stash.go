package core

import (
	"repro/internal/mem"
	"repro/internal/stats"
)

// StashConfig extends the set-associative geometry with the stash
// directory's policy knobs.
type StashConfig struct {
	AssocConfig
	// StashSingletonShared additionally allows stashing entries that track
	// a block cached by exactly one core in the Shared state (not just
	// Exclusive/Modified owners). The paper's "private blocks" are blocks
	// cached by exactly one core; this flag is the subject of the victim-
	// policy ablation experiment.
	StashSingletonShared bool
}

// Stash is the paper's directory: a sparse directory with a relaxed
// inclusion property. When a set fills, the replacement victim is chosen
// preferentially among entries tracking private blocks, and such a victim
// is dropped *silently* — the cached copy stays alive and becomes hidden.
// The caller (the directory controller in internal/coherence) must then set
// the hidden bit on the block's LLC line, which is what later redirects a
// directory miss into a discovery broadcast instead of a (wrong) "nobody
// has it" conclusion.
//
// Only when no stashable victim exists does the stash directory fall back
// to a conventional recall, so back-invalidations become rare instead of
// routine.
type Stash struct {
	cfg   StashConfig
	store *assocStore
	st    *dirStats
	// stashableFn is the Stashable method bound once, so Allocate does not
	// materialize a method value per call.
	stashableFn func(*Entry) bool
}

var _ Directory = (*Stash)(nil)

// NewStash builds a stash directory.
func NewStash(cfg StashConfig) (*Stash, error) {
	store, err := newAssocStore(cfg.AssocConfig)
	if err != nil {
		return nil, err
	}
	d := &Stash{cfg: cfg, store: store, st: newDirStats("dir.stash")}
	d.stashableFn = d.Stashable
	return d, nil
}

// Name implements Directory.
func (d *Stash) Name() string { return "stash" }

// Capacity implements Directory.
func (d *Stash) Capacity() int { return d.store.capacity() }

// Lookup implements Directory.
func (d *Stash) Lookup(b mem.Block) *Entry {
	d.st.lookups.Inc()
	if e := d.store.find(b); e != nil {
		d.st.hits.Inc()
		d.store.touch(e)
		return e
	}
	d.st.misses.Inc()
	return nil
}

// Probe implements Directory.
func (d *Stash) Probe(b mem.Block) *Entry { return d.store.find(b) }

// Stashable reports whether entry e may be dropped without invalidation
// under this configuration: it must track a private block (exactly one
// sharer), and unless StashSingletonShared is set, that sharer must own the
// block (E/M).
func (d *Stash) Stashable(e *Entry) bool {
	if !e.Private() {
		return false
	}
	return e.Owned || d.cfg.StashSingletonShared
}

// Allocate implements Directory. Victim preference: free slot, then the
// least-recently-used stashable entry (dropped silently), then the
// least-recently-used entry overall (recall).
func (d *Stash) Allocate(b mem.Block, busy func(mem.Block) bool) AllocResult {
	if d.store.find(b) != nil {
		panic("core: stash Allocate for already-tracked block")
	}
	if e := d.store.freeSlot(b); e != nil {
		d.store.install(e, b)
		d.st.allocs.Inc()
		return AllocResult{Outcome: AllocOK, Entry: e}
	}
	// First choice: silently drop a stashable (private) victim.
	if v := d.store.victim(b, busy, true, d.stashableFn); v != nil {
		stashed := Stashed{Block: v.Block, Owner: v.Sharers.Only()}
		v.valid = false
		v.Sharers.Clear()
		v.Owned = false
		d.store.install(v, b)
		d.st.stashes.Inc()
		d.st.allocs.Inc()
		return AllocResult{Outcome: AllocStashed, Entry: v, Stashed: stashed}
	}

	// Fall back to a conventional back-invalidating eviction.
	v := d.store.victim(b, busy, false, nil)
	if v == nil {
		d.st.blocked.Inc()
		return AllocResult{Outcome: AllocBlocked}
	}
	d.st.recalls.Inc()
	return AllocResult{Outcome: AllocNeedsRecall, Victim: v}
}

// Remove implements Directory.
func (d *Stash) Remove(b mem.Block) {
	if d.store.remove(b) {
		d.st.removes.Inc()
	}
}

// OccupiedEntries implements Directory.
func (d *Stash) OccupiedEntries() int { return d.store.occupied() }

// ForEach implements Directory.
func (d *Stash) ForEach(fn func(*Entry)) { d.store.forEach(fn) }

// Stats implements Directory.
func (d *Stash) Stats() *stats.Set { return d.st.set }
