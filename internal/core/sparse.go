package core

import (
	"repro/internal/mem"
	"repro/internal/stats"
)

// Sparse is the conventional set-associative sparse directory the paper
// uses as its baseline. It enforces strict inclusion: every block cached in
// any private cache has a directory entry, so evicting an entry on a set
// conflict forces the caller to recall (back-invalidate) every tracked
// copy — the "coverage misses" that make under-provisioned sparse
// directories slow.
type Sparse struct {
	store *assocStore
	st    *dirStats
}

var _ Directory = (*Sparse)(nil)

// NewSparse builds a sparse directory with the given geometry.
func NewSparse(cfg AssocConfig) (*Sparse, error) {
	store, err := newAssocStore(cfg)
	if err != nil {
		return nil, err
	}
	return &Sparse{store: store, st: newDirStats("dir.sparse")}, nil
}

// Name implements Directory.
func (d *Sparse) Name() string { return "sparse" }

// Capacity implements Directory.
func (d *Sparse) Capacity() int { return d.store.capacity() }

// Lookup implements Directory.
func (d *Sparse) Lookup(b mem.Block) *Entry {
	d.st.lookups.Inc()
	if e := d.store.find(b); e != nil {
		d.st.hits.Inc()
		d.store.touch(e)
		return e
	}
	d.st.misses.Inc()
	return nil
}

// Probe implements Directory.
func (d *Sparse) Probe(b mem.Block) *Entry { return d.store.find(b) }

// Allocate implements Directory. On a full set it demands a recall of the
// replacement victim; inclusion forbids anything cheaper.
func (d *Sparse) Allocate(b mem.Block, busy func(mem.Block) bool) AllocResult {
	if d.store.find(b) != nil {
		panic("core: sparse Allocate for already-tracked block")
	}
	if e := d.store.freeSlot(b); e != nil {
		d.store.install(e, b)
		d.st.allocs.Inc()
		return AllocResult{Outcome: AllocOK, Entry: e}
	}
	v := d.store.victim(b, busy, false, nil)
	if v == nil {
		d.st.blocked.Inc()
		return AllocResult{Outcome: AllocBlocked}
	}
	d.st.recalls.Inc()
	return AllocResult{Outcome: AllocNeedsRecall, Victim: v}
}

// Remove implements Directory.
func (d *Sparse) Remove(b mem.Block) {
	if d.store.remove(b) {
		d.st.removes.Inc()
	}
}

// OccupiedEntries implements Directory.
func (d *Sparse) OccupiedEntries() int { return d.store.occupied() }

// ForEach implements Directory.
func (d *Sparse) ForEach(fn func(*Entry)) { d.store.forEach(fn) }

// Stats implements Directory.
func (d *Sparse) Stats() *stats.Set { return d.st.set }
