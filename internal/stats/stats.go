// Package stats provides the metric-collection substrate used by every
// simulator component: named counters, histograms, and sets that group them
// for reporting. Collection is allocation-free on the hot path (counters
// are plain int64 fields handed out once), and reporting renders aligned
// plain-text tables so experiment harnesses can print paper-style rows.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Counter is a monotonically increasing event count. The zero value is
// ready to use. Counters are not safe for concurrent use; the simulator is
// single-threaded by design (deterministic discrete-event execution).
type Counter struct {
	n int64
}

// Add increments the counter by d, which must be non-negative.
func (c *Counter) Add(d int64) {
	if d < 0 {
		panic("stats: negative increment")
	}
	c.n += d
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.n++ }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n }

// Reset zeroes the counter.
func (c *Counter) Reset() { c.n = 0 }

// Histogram accumulates integer samples and reports distribution summaries.
// The zero value is ready to use.
type Histogram struct {
	count int64
	sum   int64
	sumSq float64
	min   int64
	max   int64
}

// Observe records one sample.
func (h *Histogram) Observe(v int64) {
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.sumSq += float64(v) * float64(v)
}

// ObserveN records n identical samples of value v in one update. It is
// how the parallel engine folds per-shard accumulators back into shared
// histograms deterministically: a batch of equal samples updates count,
// sum, min and max exactly as n Observe calls would, and contributes
// n·v² to the squared sum in one multiply, so fold order cannot perturb
// the result.
func (h *Histogram) ObserveN(v, n int64) {
	if n <= 0 {
		return
	}
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count += n
	h.sum += v * n
	h.sumSq += float64(v) * float64(v) * float64(n)
}

// Count returns the number of samples observed.
func (h *Histogram) Count() int64 { return h.count }

// Sum returns the sum of all samples.
func (h *Histogram) Sum() int64 { return h.sum }

// Min returns the smallest sample, or 0 if empty.
func (h *Histogram) Min() int64 { return h.min }

// Max returns the largest sample, or 0 if empty.
func (h *Histogram) Max() int64 { return h.max }

// Mean returns the arithmetic mean, or 0 if empty.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// StdDev returns the population standard deviation, or 0 if empty.
func (h *Histogram) StdDev() float64 {
	if h.count == 0 {
		return 0
	}
	m := h.Mean()
	v := h.sumSq/float64(h.count) - m*m
	if v < 0 {
		v = 0 // numerical noise
	}
	return math.Sqrt(v)
}

// Reset discards all samples.
func (h *Histogram) Reset() { *h = Histogram{} }

// Set is a named collection of counters and histograms belonging to one
// component. Components register their metrics once at construction; the
// harness walks sets for reporting.
type Set struct {
	name     string
	counters map[string]*Counter
	hists    map[string]*Histogram
}

// NewSet returns an empty metric set with the given component name.
func NewSet(name string) *Set {
	return &Set{
		name:     name,
		counters: make(map[string]*Counter),
		hists:    make(map[string]*Histogram),
	}
}

// Name returns the component name.
func (s *Set) Name() string { return s.name }

// Counter returns the counter registered under name, creating it on first
// use. The returned pointer stays valid for the life of the set, so hot
// paths should capture it once.
func (s *Set) Counter(name string) *Counter {
	if c, ok := s.counters[name]; ok {
		return c
	}
	c := new(Counter)
	s.counters[name] = c
	return c
}

// Histogram returns the histogram registered under name, creating it on
// first use.
func (s *Set) Histogram(name string) *Histogram {
	if h, ok := s.hists[name]; ok {
		return h
	}
	h := new(Histogram)
	s.hists[name] = h
	return h
}

// CounterNames returns the registered counter names in sorted order.
func (s *Set) CounterNames() []string {
	names := make([]string, 0, len(s.counters))
	for n := range s.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// HistogramNames returns the registered histogram names in sorted order.
func (s *Set) HistogramNames() []string {
	names := make([]string, 0, len(s.hists))
	for n := range s.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Reset zeroes every metric in the set.
func (s *Set) Reset() {
	for _, c := range s.counters {
		c.Reset()
	}
	for _, h := range s.hists {
		h.Reset()
	}
}

// String renders the set as an aligned two-column table.
func (s *Set) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "[%s]\n", s.name)
	for _, n := range s.CounterNames() {
		fmt.Fprintf(&b, "  %-40s %12d\n", n, s.counters[n].Value())
	}
	for _, n := range s.HistogramNames() {
		h := s.hists[n]
		fmt.Fprintf(&b, "  %-40s n=%d mean=%.2f min=%d max=%d sd=%.2f\n",
			n, h.Count(), h.Mean(), h.Min(), h.Max(), h.StdDev())
	}
	return b.String()
}
