package stats

import (
	"fmt"
	"strings"
)

// Table renders paper-style result tables: a header row followed by data
// rows, columns aligned. Experiment harnesses fill one Table per
// figure/table of the paper and print it.
type Table struct {
	Title   string
	Header  []string
	Rows    [][]string
	Caption string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// AddRow appends one data row. Cells may be fewer than the header; missing
// cells render empty.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddRowf appends one data row built from formatted values. Each value is
// rendered with %v except float64, which uses %.3f.
func (t *Table) AddRowf(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// CSV renders the table as comma-separated values (header + rows; the
// title and caption are omitted). Cells containing commas or quotes are
// quoted.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i := range t.Header {
			if i > 0 {
				b.WriteByte(',')
			}
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			b.WriteString(c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// String renders the table as aligned plain text.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, w := range widths {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", w, c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	if t.Caption != "" {
		fmt.Fprintf(&b, "%s\n", t.Caption)
	}
	return b.String()
}
