package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestCounter(t *testing.T) {
	var c Counter
	if c.Value() != 0 {
		t.Fatalf("zero counter = %d", c.Value())
	}
	c.Inc()
	c.Add(41)
	if c.Value() != 42 {
		t.Fatalf("counter = %d, want 42", c.Value())
	}
	c.Reset()
	if c.Value() != 0 {
		t.Fatalf("after reset = %d", c.Value())
	}
}

func TestCounterNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add(-1) did not panic")
		}
	}()
	var c Counter
	c.Add(-1)
}

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	for _, v := range []int64{4, 8, 6} {
		h.Observe(v)
	}
	if h.Count() != 3 || h.Sum() != 18 || h.Min() != 4 || h.Max() != 8 {
		t.Fatalf("got count=%d sum=%d min=%d max=%d", h.Count(), h.Sum(), h.Min(), h.Max())
	}
	if h.Mean() != 6 {
		t.Fatalf("mean = %v, want 6", h.Mean())
	}
	wantSD := math.Sqrt((4.0 + 0 + 4) / 3)
	if math.Abs(h.StdDev()-wantSD) > 1e-9 {
		t.Fatalf("sd = %v, want %v", h.StdDev(), wantSD)
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 || h.StdDev() != 0 || h.Count() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
}

func TestHistogramNegativeSamples(t *testing.T) {
	var h Histogram
	h.Observe(-5)
	h.Observe(5)
	if h.Min() != -5 || h.Max() != 5 || h.Sum() != 0 {
		t.Fatalf("got min=%d max=%d sum=%d", h.Min(), h.Max(), h.Sum())
	}
}

func TestHistogramPropertyMeanWithinBounds(t *testing.T) {
	f := func(samples []int16) bool {
		if len(samples) == 0 {
			return true
		}
		var h Histogram
		for _, s := range samples {
			h.Observe(int64(s))
		}
		m := h.Mean()
		return m >= float64(h.Min())-1e-9 && m <= float64(h.Max())+1e-9 && h.StdDev() >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSetRegistersOnce(t *testing.T) {
	s := NewSet("x")
	a := s.Counter("hits")
	b := s.Counter("hits")
	if a != b {
		t.Fatal("Counter should return the same pointer for the same name")
	}
	a.Inc()
	if s.Counter("hits").Value() != 1 {
		t.Fatal("increment not visible via registry")
	}
	h1 := s.Histogram("lat")
	h2 := s.Histogram("lat")
	if h1 != h2 {
		t.Fatal("Histogram should return the same pointer for the same name")
	}
}

func TestSetNamesSorted(t *testing.T) {
	s := NewSet("x")
	s.Counter("zeta")
	s.Counter("alpha")
	s.Counter("mid")
	names := s.CounterNames()
	want := []string{"alpha", "mid", "zeta"}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("names = %v, want %v", names, want)
		}
	}
}

func TestSetResetAndString(t *testing.T) {
	s := NewSet("component")
	s.Counter("events").Add(7)
	s.Histogram("lat").Observe(3)
	out := s.String()
	if !strings.Contains(out, "component") || !strings.Contains(out, "events") {
		t.Fatalf("String() = %q", out)
	}
	s.Reset()
	if s.Counter("events").Value() != 0 || s.Histogram("lat").Count() != 0 {
		t.Fatal("Reset did not zero metrics")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Fig X", "workload", "value")
	tb.AddRow("blackscholes", "1.00")
	tb.AddRowf("canneal", 0.5)
	out := tb.String()
	for _, want := range []string{"Fig X", "workload", "blackscholes", "0.500"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, two rows
		t.Errorf("got %d lines, want 5:\n%s", len(lines), out)
	}
}

func TestTableShortRow(t *testing.T) {
	tb := NewTable("", "a", "b", "c")
	tb.AddRow("only")
	out := tb.String()
	if !strings.Contains(out, "only") {
		t.Fatalf("missing cell: %q", out)
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("title ignored", "a", "b")
	tb.AddRow("x", "1.0")
	tb.AddRow(`has,comma`, `has"quote`)
	out := tb.CSV()
	want := "a,b\nx,1.0\n\"has,comma\",\"has\"\"quote\"\n"
	if out != want {
		t.Fatalf("CSV = %q, want %q", out, want)
	}
}
