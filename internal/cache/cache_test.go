package cache

import (
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

func mustCache(t *testing.T, cfg Config) *Cache {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	bad := []Config{
		{Name: "a", Sets: 0, Ways: 1},
		{Name: "b", Sets: 3, Ways: 1},
		{Name: "c", Sets: 4, Ways: 0},
		{Name: "d", Sets: -4, Ways: 2},
	}
	for _, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("New(%+v) succeeded, want error", cfg)
		}
	}
	if _, err := New(Config{Name: "ok", Sets: 8, Ways: 2}); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestLookupMissThenHit(t *testing.T) {
	c := mustCache(t, Config{Name: "t", Sets: 4, Ways: 2})
	if c.Lookup(5) != nil {
		t.Fatal("lookup in empty cache hit")
	}
	v := c.Victim(5, nil)
	if v == nil || v.Valid() {
		t.Fatal("no invalid victim available in empty cache")
	}
	c.Install(v, 5, mem.Shared, 99)
	ln := c.Lookup(5)
	if ln == nil || ln.Block != 5 || ln.State != mem.Shared || ln.Data != 99 {
		t.Fatalf("lookup after install: %+v", ln)
	}
	if c.Stats().Counter("hits").Value() != 1 || c.Stats().Counter("misses").Value() != 1 {
		t.Fatal("hit/miss accounting wrong")
	}
}

func TestProbeDoesNotCount(t *testing.T) {
	c := mustCache(t, Config{Name: "t", Sets: 4, Ways: 2})
	v := c.Victim(1, nil)
	c.Install(v, 1, mem.Exclusive, 0)
	c.Probe(1)
	c.Probe(2)
	if c.Stats().Counter("hits").Value() != 0 || c.Stats().Counter("misses").Value() != 0 {
		t.Fatal("Probe affected hit/miss counters")
	}
}

func TestSetIndexing(t *testing.T) {
	c := mustCache(t, Config{Name: "t", Sets: 8, Ways: 1})
	if c.SetIndex(0) != 0 || c.SetIndex(7) != 7 || c.SetIndex(8) != 0 || c.SetIndex(13) != 5 {
		t.Fatal("SetIndex wrong without shift")
	}
	cs := mustCache(t, Config{Name: "t", Sets: 8, Ways: 1, IndexShift: 4})
	if cs.SetIndex(0x10) != 1 || cs.SetIndex(0x15) != 1 || cs.SetIndex(0x80) != 0 {
		t.Fatal("SetIndex wrong with shift")
	}
}

func TestInstallWrongSetPanics(t *testing.T) {
	c := mustCache(t, Config{Name: "t", Sets: 4, Ways: 1})
	v := c.Victim(0, nil) // set 0
	defer func() {
		if recover() == nil {
			t.Fatal("installing into wrong set did not panic")
		}
	}()
	c.Install(v, 1, mem.Shared, 0) // block 1 maps to set 1
}

func TestLRUEviction(t *testing.T) {
	// One set, 2 ways: fill with A, B; touch A; C must evict B.
	c := mustCache(t, Config{Name: "t", Sets: 1, Ways: 2})
	for _, b := range []mem.Block{10, 20} {
		c.Install(c.Victim(b, nil), b, mem.Shared, 0)
	}
	c.Lookup(10) // A is now MRU
	v := c.Victim(30, nil)
	if v.Block != 20 {
		t.Fatalf("LRU victim = %d, want 20", v.Block)
	}
	c.Install(v, 30, mem.Shared, 0)
	if c.Probe(20) != nil {
		t.Fatal("evicted block still present")
	}
	if c.Probe(10) == nil || c.Probe(30) == nil {
		t.Fatal("resident blocks missing")
	}
}

func TestVictimSkip(t *testing.T) {
	c := mustCache(t, Config{Name: "t", Sets: 1, Ways: 2})
	for _, b := range []mem.Block{1, 2} {
		c.Install(c.Victim(b, nil), b, mem.Shared, 0)
	}
	v := c.Victim(3, func(l *Line) bool { return l.Block == 1 })
	if v == nil || v.Block != 2 {
		t.Fatalf("skip ignored: got %+v", v)
	}
	v = c.Victim(3, func(l *Line) bool { return true })
	if v != nil {
		t.Fatal("all-excluded set should yield nil victim")
	}
}

func TestEvict(t *testing.T) {
	c := mustCache(t, Config{Name: "t", Sets: 2, Ways: 1})
	c.Install(c.Victim(4, nil), 4, mem.Modified, 7)
	ln := c.Probe(4)
	c.Evict(ln)
	if ln.Valid() || c.Probe(4) != nil {
		t.Fatal("line still valid after Evict")
	}
	if c.Stats().Counter("evictions").Value() != 1 {
		t.Fatal("eviction not counted")
	}
	// Evicting an invalid line is a no-op for the counter.
	c.Evict(ln)
	if c.Stats().Counter("evictions").Value() != 1 {
		t.Fatal("invalid-line evict was counted")
	}
}

func TestOccupiedLinesAndForEach(t *testing.T) {
	c := mustCache(t, Config{Name: "t", Sets: 4, Ways: 2})
	blocks := []mem.Block{0, 1, 2, 5}
	for _, b := range blocks {
		c.Install(c.Victim(b, nil), b, mem.Shared, 0)
	}
	if got := c.OccupiedLines(); got != len(blocks) {
		t.Fatalf("OccupiedLines = %d, want %d", got, len(blocks))
	}
	seen := map[mem.Block]bool{}
	c.ForEach(func(l *Line) { seen[l.Block] = true })
	for _, b := range blocks {
		if !seen[b] {
			t.Fatalf("ForEach missed block %d", b)
		}
	}
}

// TestNoAliasing: distinct resident blocks never collide within the
// structure — a lookup for one block never returns another's line.
func TestNoAliasing(t *testing.T) {
	c := mustCache(t, Config{Name: "t", Sets: 16, Ways: 4})
	f := func(raw []uint16) bool {
		c2 := mustCache(t, c.Config())
		for _, r := range raw {
			b := mem.Block(r)
			if c2.Probe(b) != nil {
				continue
			}
			v := c2.Victim(b, nil)
			if v == nil {
				continue
			}
			c2.Install(v, b, mem.Exclusive, uint64(b))
		}
		ok := true
		c2.ForEach(func(l *Line) {
			if l.Data != uint64(l.Block) {
				ok = false
			}
			got := c2.Probe(l.Block)
			if got != l {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestCapacityNeverExceeded: install churn never grows occupancy beyond
// sets*ways, for every policy.
func TestCapacityNeverExceeded(t *testing.T) {
	for _, pol := range []PolicyKind{LRU, TreePLRU, NRU, Random} {
		c := mustCache(t, Config{Name: "t", Sets: 4, Ways: 4, Policy: pol, Seed: 1})
		for i := 0; i < 1000; i++ {
			b := mem.Block(i * 7 % 97)
			if c.Probe(b) != nil {
				continue
			}
			v := c.Victim(b, nil)
			c.Install(v, b, mem.Shared, 0)
		}
		if c.OccupiedLines() > c.Capacity() {
			t.Fatalf("%v: occupancy %d > capacity %d", pol, c.OccupiedLines(), c.Capacity())
		}
	}
}
