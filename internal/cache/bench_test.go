package cache

import (
	"testing"

	"repro/internal/mem"
)

func benchCache(b *testing.B, policy PolicyKind) {
	c := MustNew(Config{Name: "bench", Sets: 128, Ways: 4, Policy: policy, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blk := mem.Block(i * 2654435761 % 4096)
		if ln := c.Lookup(blk); ln == nil {
			v := c.Victim(blk, nil)
			if v != nil {
				c.Install(v, blk, mem.Shared, 0)
			}
		}
	}
}

func BenchmarkLookupInstallLRU(b *testing.B)    { benchCache(b, LRU) }
func BenchmarkLookupInstallPLRU(b *testing.B)   { benchCache(b, TreePLRU) }
func BenchmarkLookupInstallNRU(b *testing.B)    { benchCache(b, NRU) }
func BenchmarkLookupInstallRandom(b *testing.B) { benchCache(b, Random) }

func BenchmarkProbeHit(b *testing.B) {
	c := MustNew(Config{Name: "bench", Sets: 128, Ways: 4})
	for i := 0; i < 512; i++ {
		blk := mem.Block(i)
		c.Install(c.Victim(blk, nil), blk, mem.Shared, 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Probe(mem.Block(i % 512))
	}
}
