package cache

import (
	"fmt"
	"math/rand"
)

// PolicyKind selects a replacement policy.
type PolicyKind uint8

// The supported replacement policies. LRU is the default everywhere; the
// directory-associativity sensitivity experiments also exercise the others.
const (
	LRU PolicyKind = iota
	TreePLRU
	NRU
	Random
)

// String returns the policy's canonical name.
func (k PolicyKind) String() string {
	switch k {
	case LRU:
		return "lru"
	case TreePLRU:
		return "plru"
	case NRU:
		return "nru"
	case Random:
		return "random"
	}
	return fmt.Sprintf("PolicyKind(%d)", uint8(k))
}

// ParsePolicy converts a canonical name back into a PolicyKind.
func ParsePolicy(s string) (PolicyKind, error) {
	switch s {
	case "lru":
		return LRU, nil
	case "plru":
		return TreePLRU, nil
	case "nru":
		return NRU, nil
	case "random":
		return Random, nil
	}
	return 0, fmt.Errorf("cache: unknown replacement policy %q", s)
}

// Policy tracks recency state per set and chooses eviction victims.
// Implementations are deterministic (Random uses a fixed seed).
type Policy interface {
	// Touch marks (set, way) as just used.
	Touch(set, way int)
	// Insert marks (set, way) as just filled.
	Insert(set, way int)
	// Victim picks the way to evict in set, skipping ways for which
	// excluded returns true. It returns -1 if every way is excluded.
	Victim(set int, excluded func(way int) bool) int
}

// NewPolicy builds a standalone replacement policy instance for callers
// that manage their own tag storage (the directory organizations in
// internal/core reuse the policies this way).
func NewPolicy(kind PolicyKind, sets, ways int, seed int64) (Policy, error) {
	return newPolicy(kind, sets, ways, seed)
}

func newPolicy(kind PolicyKind, sets, ways int, seed int64) (Policy, error) {
	switch kind {
	case LRU:
		return newLRUPolicy(sets, ways), nil
	case TreePLRU:
		return newPLRUPolicy(sets, ways), nil
	case NRU:
		return newNRUPolicy(sets, ways), nil
	case Random:
		return newRandomPolicy(ways, seed), nil
	}
	return nil, fmt.Errorf("unknown replacement policy %v", kind)
}

// lruPolicy keeps an exact recency order per set: stamps[set*ways+way]
// holds a monotonically increasing use time; the victim is the smallest
// stamp among non-excluded ways.
//
//stash:tileowned
type lruPolicy struct {
	ways   int
	clock  uint64
	stamps []uint64
}

func newLRUPolicy(sets, ways int) *lruPolicy {
	return &lruPolicy{ways: ways, stamps: make([]uint64, sets*ways)}
}

//stash:hotpath
func (p *lruPolicy) Touch(set, way int) {
	p.clock++
	p.stamps[set*p.ways+way] = p.clock
}

//stash:hotpath
func (p *lruPolicy) Insert(set, way int) { p.Touch(set, way) }

//stash:hotpath
func (p *lruPolicy) Victim(set int, excluded func(way int) bool) int {
	best := -1
	var bestStamp uint64
	for w := 0; w < p.ways; w++ {
		if excluded != nil && excluded(w) {
			continue
		}
		s := p.stamps[set*p.ways+w]
		if best == -1 || s < bestStamp {
			best, bestStamp = w, s
		}
	}
	return best
}

// plruPolicy implements tree pseudo-LRU. Associativity is rounded up to a
// power of two internally; phantom ways are never returned because Victim
// falls back to scanning when the tree points at an out-of-range or
// excluded way.
//
//stash:tileowned
type plruPolicy struct {
	ways     int
	treeWays int // ways rounded up to a power of two
	bits     []bool
	sets     int
}

func newPLRUPolicy(sets, ways int) *plruPolicy {
	tw := 1
	for tw < ways {
		tw <<= 1
	}
	return &plruPolicy{ways: ways, treeWays: tw, sets: sets, bits: make([]bool, sets*(tw-1))}
}

// walk flips the tree bits along the path to way so the path points away
// from it.
//
//stash:hotpath
func (p *plruPolicy) walk(set, way int) {
	base := set * (p.treeWays - 1)
	node := 0
	for span := p.treeWays / 2; span >= 1; span /= 2 {
		right := way%(span*2) >= span
		p.bits[base+node] = !right // point away from the touched half
		node = 2*node + 1
		if right {
			node++
		}
	}
}

//stash:hotpath
func (p *plruPolicy) Touch(set, way int) { p.walk(set, way) }

//stash:hotpath
func (p *plruPolicy) Insert(set, way int) { p.walk(set, way) }

//stash:hotpath
func (p *plruPolicy) Victim(set int, excluded func(way int) bool) int {
	base := set * (p.treeWays - 1)
	node, way := 0, 0
	for span := p.treeWays / 2; span >= 1; span /= 2 {
		right := p.bits[base+node]
		node = 2*node + 1
		if right {
			node++
			way += span
		}
	}
	if way < p.ways && (excluded == nil || !excluded(way)) {
		return way
	}
	// The tree pointed at a phantom or excluded way: fall back to the first
	// usable way. This keeps the policy total without extra state.
	for w := 0; w < p.ways; w++ {
		if excluded == nil || !excluded(w) {
			return w
		}
	}
	return -1
}

// nruPolicy implements not-recently-used: one reference bit per way; the
// victim is the first way with a clear bit, and when all bits are set they
// are cleared (except the just-touched way's semantics are approximated by
// clearing all).
//
//stash:tileowned
type nruPolicy struct {
	ways int
	bits []bool
}

func newNRUPolicy(sets, ways int) *nruPolicy {
	return &nruPolicy{ways: ways, bits: make([]bool, sets*ways)}
}

//stash:hotpath
func (p *nruPolicy) mark(set, way int) {
	p.bits[set*p.ways+way] = true
	// If every bit in the set is now set, clear the others.
	for w := 0; w < p.ways; w++ {
		if !p.bits[set*p.ways+w] {
			return
		}
	}
	for w := 0; w < p.ways; w++ {
		if w != way {
			p.bits[set*p.ways+w] = false
		}
	}
}

//stash:hotpath
func (p *nruPolicy) Touch(set, way int) { p.mark(set, way) }

//stash:hotpath
func (p *nruPolicy) Insert(set, way int) { p.mark(set, way) }

//stash:hotpath
func (p *nruPolicy) Victim(set int, excluded func(way int) bool) int {
	fallback := -1
	for w := 0; w < p.ways; w++ {
		if excluded != nil && excluded(w) {
			continue
		}
		if !p.bits[set*p.ways+w] {
			return w
		}
		if fallback == -1 {
			fallback = w
		}
	}
	return fallback
}

// randomPolicy picks a uniformly random non-excluded way using a seeded
// generator, so runs remain reproducible.
//
//stash:tileowned
type randomPolicy struct {
	ways int
	rng  *rand.Rand
	// scratch holds Victim's candidate list between calls; Victim runs once
	// per eviction, and reusing the buffer keeps it allocation-free.
	scratch []int
}

func newRandomPolicy(ways int, seed int64) *randomPolicy {
	return &randomPolicy{
		ways:    ways,
		rng:     rand.New(rand.NewSource(seed)),
		scratch: make([]int, 0, ways),
	}
}

//stash:hotpath
func (p *randomPolicy) Touch(set, way int) {}

//stash:hotpath
func (p *randomPolicy) Insert(set, way int) {}

//stash:hotpath
func (p *randomPolicy) Victim(set int, excluded func(way int) bool) int {
	candidates := p.scratch[:0]
	for w := 0; w < p.ways; w++ {
		if excluded == nil || !excluded(w) {
			candidates = append(candidates, w)
		}
	}
	p.scratch = candidates
	if len(candidates) == 0 {
		return -1
	}
	return candidates[p.rng.Intn(len(candidates))]
}
