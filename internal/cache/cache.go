// Package cache implements the generic set-associative storage structure
// used for every lookup structure in the simulated machine: private L1
// caches, shared LLC banks, and the directory organizations in
// internal/core. It provides tag lookup, victim selection through pluggable
// replacement policies (LRU, tree-PLRU, NRU, random), and per-structure hit
// and miss accounting.
package cache

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/stats"
)

// Line is one cache way: a tag plus the simulator-visible metadata.
// The coherence controllers interpret State and Flags; Data carries the
// 64-bit payload used by the data-value correctness oracle.
//
//stash:tileowned
type Line struct {
	Block mem.Block
	State mem.State
	Data  uint64
	Flags uint32

	set, way int32 // fixed at construction; lets the cache map *Line back to (set, way) in O(1)
}

// Valid reports whether the line currently holds a block.
//
//stash:hotpath
func (l *Line) Valid() bool { return l.State != mem.Invalid }

// Invalidate clears the line back to its empty state.
//
//stash:hotpath
func (l *Line) Invalidate() {
	l.State = mem.Invalid
	l.Flags = 0
	l.Data = 0
}

// Config describes one set-associative structure.
type Config struct {
	Name string // for stats and error messages
	Sets int    // number of sets; must be a power of two
	Ways int    // associativity; must be >= 1
	// IndexShift drops this many low-order block bits before the set index
	// is extracted. Banked structures (the LLC) are interleaved on the low
	// block bits, so their per-bank set index must come from the bits above
	// the bank-select bits to avoid mapping every resident block into a
	// fraction of the sets.
	IndexShift uint
	Policy     PolicyKind
	Seed       int64 // used by the random policy only
}

// Cache is a set-associative tag array. It is purely a storage structure:
// all coherence semantics live in the controllers that own it.
//
//stash:tileowned
type Cache struct {
	cfg    Config
	lines  []Line // sets*ways, set-major
	policy Policy
	mask   mem.Block

	set      *stats.Set
	hits     *stats.Counter
	misses   *stats.Counter
	installs *stats.Counter
	evicts   *stats.Counter

	// victimFn adapts the caller's per-line skip predicate to the policy's
	// way-indexed one. It is bound once here and parameterized through the
	// two fields below, so Victim allocates no closure per call.
	victimFn   func(way int) bool
	victimSkip func(*Line) bool
	victimSet  int
}

// New returns an empty cache described by cfg.
func New(cfg Config) (*Cache, error) {
	if cfg.Sets <= 0 || cfg.Sets&(cfg.Sets-1) != 0 {
		return nil, fmt.Errorf("cache %s: sets must be a positive power of two, got %d", cfg.Name, cfg.Sets)
	}
	if cfg.Ways < 1 {
		return nil, fmt.Errorf("cache %s: ways must be >= 1, got %d", cfg.Name, cfg.Ways)
	}
	pol, err := newPolicy(cfg.Policy, cfg.Sets, cfg.Ways, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("cache %s: %w", cfg.Name, err)
	}
	c := &Cache{
		cfg:    cfg,
		lines:  make([]Line, cfg.Sets*cfg.Ways),
		policy: pol,
		mask:   mem.Block(cfg.Sets - 1),
		set:    stats.NewSet(cfg.Name),
	}
	for i := range c.lines {
		c.lines[i].set = int32(i / cfg.Ways)
		c.lines[i].way = int32(i % cfg.Ways)
	}
	c.hits = c.set.Counter("hits")
	c.misses = c.set.Counter("misses")
	c.installs = c.set.Counter("installs")
	c.evicts = c.set.Counter("evictions")
	c.victimFn = func(way int) bool {
		return c.victimSkip != nil && c.victimSkip(c.line(c.victimSet, way))
	}
	return c, nil
}

// MustNew is New but panics on a bad configuration. It is for tests and
// internal construction from already-validated configs.
func MustNew(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the configuration the cache was built with.
func (c *Cache) Config() Config { return c.cfg }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.cfg.Sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.cfg.Ways }

// Capacity returns the total number of lines.
func (c *Cache) Capacity() int { return c.cfg.Sets * c.cfg.Ways }

// Stats returns the cache's metric set.
func (c *Cache) Stats() *stats.Set { return c.set }

// SetIndex returns the set that block b maps to.
//
//stash:hotpath
func (c *Cache) SetIndex(b mem.Block) int {
	return int((b >> c.cfg.IndexShift) & c.mask)
}

//stash:hotpath
func (c *Cache) line(set, way int) *Line {
	return &c.lines[set*c.cfg.Ways+way]
}

// Lookup finds b and returns its line, recording a hit (and touching the
// replacement state) or a miss. It returns nil on a miss.
//
//stash:hotpath
func (c *Cache) Lookup(b mem.Block) *Line {
	set := c.SetIndex(b)
	for w := 0; w < c.cfg.Ways; w++ {
		ln := c.line(set, w)
		if ln.Valid() && ln.Block == b {
			c.hits.Inc()
			c.policy.Touch(set, w)
			return ln
		}
	}
	c.misses.Inc()
	return nil
}

// Probe finds b without touching replacement state or hit/miss counters.
// Controllers use it for snoops, audits and inclusion checks.
//
//stash:hotpath
func (c *Cache) Probe(b mem.Block) *Line {
	set := c.SetIndex(b)
	for w := 0; w < c.cfg.Ways; w++ {
		ln := c.line(set, w)
		if ln.Valid() && ln.Block == b {
			return ln
		}
	}
	return nil
}

// Victim selects a line of b's set to replace, preferring invalid lines.
// The skip predicate (optional) excludes lines the caller cannot use right
// now; it is applied to invalid lines too (callers that reserve ways for
// in-flight fills must skip them), so predicates that inspect Line.Block
// must check Valid first — an invalid line's Block is stale. Victim
// returns nil if every way is excluded.
//
//stash:hotpath
func (c *Cache) Victim(b mem.Block, skip func(*Line) bool) *Line {
	set := c.SetIndex(b)
	for w := 0; w < c.cfg.Ways; w++ {
		ln := c.line(set, w)
		if !ln.Valid() && (skip == nil || !skip(ln)) {
			return ln
		}
	}
	c.victimSkip, c.victimSet = skip, set
	w := c.policy.Victim(set, c.victimFn)
	c.victimSkip = nil
	if w < 0 {
		return nil
	}
	return c.line(set, w)
}

// Install writes block b into the given line of b's set (obtained from
// Victim or Probe), marking it most-recently-used. The line must belong to
// b's set. If the line was valid, the previous occupant is counted as an
// eviction; the caller is responsible for having handled its coherence
// obligations first.
//
//stash:hotpath
func (c *Cache) Install(ln *Line, b mem.Block, state mem.State, data uint64) {
	set, way := c.locate(ln)
	if set != c.SetIndex(b) {
		panic(fmt.Sprintf("cache %s: installing block %#x into wrong set %d", c.cfg.Name, uint64(b), set))
	}
	if ln.Valid() {
		c.evicts.Inc()
	}
	ln.Block = b
	ln.State = state
	ln.Data = data
	ln.Flags = 0
	c.installs.Inc()
	c.policy.Insert(set, way)
}

// Evict invalidates the given line, counting an eviction if it was valid.
//
//stash:hotpath
func (c *Cache) Evict(ln *Line) {
	if ln.Valid() {
		c.evicts.Inc()
	}
	ln.Invalidate()
}

// Touch marks ln most-recently-used without counting a hit.
//
//stash:hotpath
func (c *Cache) Touch(ln *Line) {
	set, way := c.locate(ln)
	c.policy.Touch(set, way)
}

// locate maps a *Line back to its (set, way) coordinates.
//
//stash:hotpath
func (c *Cache) locate(ln *Line) (set, way int) {
	set, way = int(ln.set), int(ln.way)
	idx := set*c.cfg.Ways + way
	if idx < 0 || idx >= len(c.lines) || &c.lines[idx] != ln {
		panic(fmt.Sprintf("cache %s: line not owned by this cache", c.cfg.Name))
	}
	return set, way
}

// Locate maps a *Line owned by this cache back to its (set, way)
// coordinates. The model checker uses it to serialize controller state
// canonically: TBEs hold raw line pointers, and (set, way) is the stable
// name a pointer corresponds to.
func (c *Cache) Locate(ln *Line) (set, way int) { return c.locate(ln) }

// ForEachSlot calls fn for every line — valid or not — in set-major slot
// order, passing the flat slot index (set*Ways + way). Unlike ForEach it
// exposes empty ways, so a caller can serialize the complete tag-array
// layout (which ways are free matters to victim selection).
func (c *Cache) ForEachSlot(fn func(idx int, ln *Line)) {
	for i := range c.lines {
		fn(i, &c.lines[i])
	}
}

// ForEach calls fn for every valid line. Iteration order is set-major and
// deterministic.
func (c *Cache) ForEach(fn func(*Line)) {
	for i := range c.lines {
		if c.lines[i].Valid() {
			fn(&c.lines[i])
		}
	}
}

// OccupiedLines returns the number of valid lines.
func (c *Cache) OccupiedLines() int {
	n := 0
	for i := range c.lines {
		if c.lines[i].Valid() {
			n++
		}
	}
	return n
}
