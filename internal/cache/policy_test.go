package cache

import (
	"testing"
)

func TestParsePolicy(t *testing.T) {
	for _, k := range []PolicyKind{LRU, TreePLRU, NRU, Random} {
		got, err := ParsePolicy(k.String())
		if err != nil || got != k {
			t.Errorf("ParsePolicy(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Error("ParsePolicy accepted bogus name")
	}
}

// victimAlwaysValid: for every policy, Victim returns a non-excluded way in
// range, or -1 only when everything is excluded.
func TestVictimAlwaysValid(t *testing.T) {
	const sets, ways = 4, 8
	for _, kind := range []PolicyKind{LRU, TreePLRU, NRU, Random} {
		p, err := newPolicy(kind, sets, ways, 7)
		if err != nil {
			t.Fatal(err)
		}
		// Exercise state a bit.
		for i := 0; i < 100; i++ {
			p.Touch(i%sets, (i*3)%ways)
			if i%5 == 0 {
				p.Insert(i%sets, (i*5)%ways)
			}
		}
		for set := 0; set < sets; set++ {
			w := p.Victim(set, nil)
			if w < 0 || w >= ways {
				t.Errorf("%v: victim out of range: %d", kind, w)
			}
			// Exclude even ways: victim must be odd.
			w = p.Victim(set, func(way int) bool { return way%2 == 0 })
			if w < 0 || w%2 == 0 {
				t.Errorf("%v: excluded way chosen: %d", kind, w)
			}
			// Exclude all: -1.
			if got := p.Victim(set, func(int) bool { return true }); got != -1 {
				t.Errorf("%v: all-excluded returned %d", kind, got)
			}
		}
	}
}

func TestLRUExactOrder(t *testing.T) {
	p := newLRUPolicy(1, 4)
	for w := 0; w < 4; w++ {
		p.Insert(0, w)
	}
	p.Touch(0, 0) // order (LRU→MRU): 1 2 3 0
	if v := p.Victim(0, nil); v != 1 {
		t.Fatalf("victim = %d, want 1", v)
	}
	p.Touch(0, 1) // order: 2 3 0 1
	if v := p.Victim(0, nil); v != 2 {
		t.Fatalf("victim = %d, want 2", v)
	}
	// Exclude 2: next LRU is 3.
	if v := p.Victim(0, func(w int) bool { return w == 2 }); v != 3 {
		t.Fatalf("victim with skip = %d, want 3", v)
	}
}

func TestPLRUAvoidsRecentlyTouched(t *testing.T) {
	p := newPLRUPolicy(1, 4)
	for w := 0; w < 4; w++ {
		p.Insert(0, w)
	}
	p.Touch(0, 2)
	if v := p.Victim(0, nil); v == 2 {
		t.Fatal("tree-PLRU evicted the just-touched way")
	}
}

func TestPLRUNonPowerOfTwoWays(t *testing.T) {
	p := newPLRUPolicy(2, 3) // rounds to 4 internally
	for i := 0; i < 50; i++ {
		p.Touch(i%2, i%3)
		v := p.Victim(i%2, nil)
		if v < 0 || v >= 3 {
			t.Fatalf("phantom way returned: %d", v)
		}
	}
}

func TestNRUPrefersUnreferenced(t *testing.T) {
	p := newNRUPolicy(1, 4)
	p.Touch(0, 0)
	p.Touch(0, 1)
	v := p.Victim(0, nil)
	if v != 2 {
		t.Fatalf("NRU victim = %d, want first unreferenced way 2", v)
	}
	// Saturate: all referenced; bits reset keeping the last touch.
	p.Touch(0, 2)
	p.Touch(0, 3) // now all set -> clear all but 3
	if v := p.Victim(0, nil); v != 0 {
		t.Fatalf("after saturation victim = %d, want 0", v)
	}
}

func TestRandomDeterministicPerSeed(t *testing.T) {
	pick := func(seed int64) []int {
		p := newRandomPolicy(8, seed)
		var out []int
		for i := 0; i < 20; i++ {
			out = append(out, p.Victim(0, nil))
		}
		return out
	}
	a, b := pick(3), pick(3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("random policy not reproducible for equal seeds")
		}
	}
	c := pick(4)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("random policy identical across different seeds (suspicious)")
	}
}
