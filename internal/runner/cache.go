package runner

import (
	"container/list"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/system"
)

// Cache-hit provenance values recorded on jobs and events. Memory and disk
// are the runner's own two tiers; peer and remote exist because the disk
// tier doubles as a fleet-shared content-addressed store: any worker can
// populate it and every node can probe it, so a hit is attributed to the
// node that paid for the simulation.
const (
	HitMemory = "memory"
	// HitDisk is a disk entry this node wrote itself (or a pre-fleet entry
	// with no recorded origin).
	HitDisk = "disk"
	// HitPeer is a disk entry populated by a different node sharing the
	// cache directory — the fleet's cross-worker cache reuse.
	HitPeer = "peer"
	// HitRemote is claimed by the fleet coordinator when it satisfies a
	// request from the shared store without dispatching to any worker. The
	// runner never produces it itself; the constant lives here so every
	// provenance value has one home.
	HitRemote = "remote"
)

// memCache is an LRU of completed results keyed by config key. A
// non-positive capacity means unlimited (the experiment harness keeps every
// run of a sweep alive; the server bounds it). It has no lock of its own:
// the owning Runner's mutex guards it, which keeps cache probes atomic with
// the inflight-job coalescing decisions made under the same lock.
type memCache struct {
	cap   int
	ll    *list.List               //stash:guardedby Runner.mu
	items map[string]*list.Element //stash:guardedby Runner.mu
}

type memEntry struct {
	key string
	res *system.Results
}

func newMemCache(capacity int) *memCache {
	return &memCache{cap: capacity, ll: list.New(), items: make(map[string]*list.Element)}
}

//stash:locked Runner.mu
func (c *memCache) get(key string) (*system.Results, bool) {
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*memEntry).res, true
}

//stash:locked Runner.mu
func (c *memCache) put(key string, res *system.Results) {
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*memEntry).res = res
		return
	}
	c.items[key] = c.ll.PushFront(&memEntry{key: key, res: res})
	if c.cap > 0 && c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*memEntry).key)
	}
}

// resultStore is the persistent cache tier behind the in-memory LRU.
// *diskCache is the real implementation; tests wrap it to inject latency
// and failures into the probe and persist paths.
type resultStore interface {
	// get returns the stored result for key plus the origin recorded by the
	// node that wrote it ("" for entries from before origins existed).
	get(key string) (*system.Results, string, bool)
	put(key string, cfg system.Config, res *system.Results) error
}

// diskEnvelope is the on-disk JSON schema: the key guards against renamed
// files, the config documents what produced the result, and the origin
// names the node that wrote the entry so a fleet sharing the directory can
// attribute cross-worker hits (HitPeer).
type diskEnvelope struct {
	Key     string          `json:"key"`
	Origin  string          `json:"origin,omitempty"`
	SavedAt time.Time       `json:"savedAt"`
	Config  system.Config   `json:"config"`
	Results *system.Results `json:"results"`
}

// staleTempAge is how old an orphaned temp file must be before the open-time
// sweep removes it. The write path holds a temp file only for milliseconds,
// but in a shared fleet directory another node may be mid-write right now —
// the age floor keeps the sweep from racing a live writer's rename.
const staleTempAge = time.Hour

// diskCache persists one JSON file per result under a directory. Every
// failure mode on the read path — missing file, unreadable file, corrupt
// JSON, key mismatch — degrades to a cache miss; the write path is atomic
// (temp file + rename), removes its temp file on every failure, and the
// open-time sweep collects temp files orphaned by a crashed writer, so a
// long-lived shared directory cannot accrete garbage.
type diskCache struct {
	dir    string
	origin string
	// rename is os.Rename; tests substitute it to exercise the
	// orphan-cleanup path.
	rename func(oldpath, newpath string) error
}

// newDiskCache opens (and, on first write, creates) the cache directory and
// sweeps temp files orphaned by crashed writers.
func newDiskCache(dir, origin string) *diskCache {
	d := &diskCache{dir: dir, origin: origin, rename: os.Rename}
	d.sweepStaleTemps(time.Now())
	return d
}

// sweepStaleTemps removes `*.tmp*` leftovers older than staleTempAge. A
// crashed or failed writer orphans at most one temp file, but a fleet of
// workers sharing one directory turns that slow leak into real disk
// pressure, so every node collects on open. Errors are ignored: the sweep
// is best-effort hygiene, and a file another node deletes first is fine.
func (d *diskCache) sweepStaleTemps(now time.Time) {
	matches, err := filepath.Glob(filepath.Join(d.dir, "*.tmp*"))
	if err != nil {
		return
	}
	for _, m := range matches {
		if !strings.Contains(filepath.Base(m), ".tmp") {
			continue
		}
		info, err := os.Stat(m)
		if err != nil || now.Sub(info.ModTime()) < staleTempAge {
			continue
		}
		os.Remove(m)
	}
}

// Store is a read-only view of a disk-cache directory: the fleet
// coordinator's probe into the shared content-addressed store. It never
// writes and never sweeps — population stays the workers' job.
type Store struct {
	d diskCache
}

// OpenStore opens dir for probing. The directory need not exist yet; every
// probe into a missing directory is simply a miss.
func OpenStore(dir string) *Store {
	return &Store{d: diskCache{dir: dir, rename: os.Rename}}
}

// Get returns the stored result for key and the origin of the node that
// wrote it.
func (s *Store) Get(key string) (res *system.Results, origin string, ok bool) {
	return s.d.get(key)
}

func (d *diskCache) path(key string) string {
	return filepath.Join(d.dir, key+".json")
}

func (d *diskCache) get(key string) (*system.Results, string, bool) {
	b, err := os.ReadFile(d.path(key))
	if err != nil {
		return nil, "", false
	}
	var env diskEnvelope
	if err := json.Unmarshal(b, &env); err != nil {
		return nil, "", false // corrupt file: treat as a miss
	}
	if env.Key != key || env.Results == nil {
		return nil, "", false
	}
	return env.Results, env.Origin, true
}

func (d *diskCache) put(key string, cfg system.Config, res *system.Results) error {
	if err := os.MkdirAll(d.dir, 0o755); err != nil {
		return err
	}
	b, err := json.MarshalIndent(diskEnvelope{
		Key: key, Origin: d.origin, SavedAt: time.Now().UTC(), Config: cfg, Results: res,
	}, "", " ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(d.dir, key+".tmp*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := d.rename(tmp.Name(), d.path(key)); err != nil {
		// A failed rename must not orphan the temp file: in a fleet-shared
		// directory the leak compounds across workers and restarts.
		os.Remove(tmp.Name())
		return err
	}
	return nil
}
