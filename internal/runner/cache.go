package runner

import (
	"container/list"
	"encoding/json"
	"os"
	"path/filepath"
	"time"

	"repro/internal/system"
)

// Cache-hit provenance values recorded on jobs and events.
const (
	HitMemory = "memory"
	HitDisk   = "disk"
)

// memCache is an LRU of completed results keyed by config key. A
// non-positive capacity means unlimited (the experiment harness keeps every
// run of a sweep alive; the server bounds it). It has no lock of its own:
// the owning Runner's mutex guards it, which keeps cache probes atomic with
// the inflight-job coalescing decisions made under the same lock.
type memCache struct {
	cap   int
	ll    *list.List               //stash:guardedby Runner.mu
	items map[string]*list.Element //stash:guardedby Runner.mu
}

type memEntry struct {
	key string
	res *system.Results
}

func newMemCache(capacity int) *memCache {
	return &memCache{cap: capacity, ll: list.New(), items: make(map[string]*list.Element)}
}

//stash:locked Runner.mu
func (c *memCache) get(key string) (*system.Results, bool) {
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*memEntry).res, true
}

//stash:locked Runner.mu
func (c *memCache) put(key string, res *system.Results) {
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*memEntry).res = res
		return
	}
	c.items[key] = c.ll.PushFront(&memEntry{key: key, res: res})
	if c.cap > 0 && c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*memEntry).key)
	}
}

// diskEnvelope is the on-disk JSON schema: the key guards against renamed
// files, the config documents what produced the result.
type diskEnvelope struct {
	Key     string          `json:"key"`
	SavedAt time.Time       `json:"savedAt"`
	Config  system.Config   `json:"config"`
	Results *system.Results `json:"results"`
}

// diskCache persists one JSON file per result under a directory. Every
// failure mode on the read path — missing file, unreadable file, corrupt
// JSON, key mismatch — degrades to a cache miss; the write path is atomic
// (temp file + rename) so a crashed writer can at worst leave a stale temp
// file, never a half-written entry.
type diskCache struct {
	dir string
}

func (d *diskCache) path(key string) string {
	return filepath.Join(d.dir, key+".json")
}

func (d *diskCache) get(key string) (*system.Results, bool) {
	b, err := os.ReadFile(d.path(key))
	if err != nil {
		return nil, false
	}
	var env diskEnvelope
	if err := json.Unmarshal(b, &env); err != nil {
		return nil, false // corrupt file: treat as a miss
	}
	if env.Key != key || env.Results == nil {
		return nil, false
	}
	return env.Results, true
}

func (d *diskCache) put(key string, cfg system.Config, res *system.Results) error {
	if err := os.MkdirAll(d.dir, 0o755); err != nil {
		return err
	}
	b, err := json.MarshalIndent(diskEnvelope{
		Key: key, SavedAt: time.Now().UTC(), Config: cfg, Results: res,
	}, "", " ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(d.dir, key+".tmp*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), d.path(key))
}
